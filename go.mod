module streamkf

go 1.22
