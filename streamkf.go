// Package streamkf is an adaptive stream resource management library
// built on Kalman filters, reproducing the SIGMOD 2004 paper "Adaptive
// Stream Resource Management Using Kalman Filters" (Jain, Chang, Wang).
//
// The core idea is the Dual Kalman Filter (DKF): for every continuous
// query with a precision constraint δ the system installs a Kalman filter
// at the central server and a byte-identical mirror at the remote source.
// Both predict the stream; the source transmits a reading only when the
// server's (mirrored) prediction would miss it by more than δ. The server
// thus caches a predictive procedure instead of a stale value, cutting
// communication by the stream's predictability.
//
// # Quick start
//
//	m := streamkf.LinearModel(1, 1.0, 0.05, 0.05)     // [value, rate] model
//	sess, err := streamkf.NewSession(streamkf.Config{
//		SourceID: "sensor-1",
//		Model:    m,
//		Delta:    2.0, // answers stay within ±2 of the truth
//	})
//	if err != nil { ... }
//	for _, r := range readings {
//		estimate, err := sess.Step(r) // what the server would answer now
//		...
//	}
//	fmt.Println(sess.Metrics()) // % updates sent, average error, bytes
//
// # Package layout
//
// This root package re-exports the stable public surface. The
// implementation lives in internal packages: mat (dense matrices), kalman
// (filter family), model (stream model catalogue), core (the DKF
// protocol), baseline (comparison schemes), gen (workload generators),
// dsms (the end-to-end query server with TCP/UDP transports and the
// shard-per-core ingest engine), adapt (online
// model switching), synopsis (error-bounded stream storage), netsim
// (sensor energy accounting), and experiments (the paper's evaluation).
package streamkf

import (
	"streamkf/internal/adapt"
	"streamkf/internal/baseline"
	"streamkf/internal/core"
	"streamkf/internal/cql"
	"streamkf/internal/dsms"
	"streamkf/internal/dsms/cluster"
	"streamkf/internal/gen"
	"streamkf/internal/kalman"
	"streamkf/internal/mat"
	"streamkf/internal/model"
	"streamkf/internal/netsim"
	"streamkf/internal/stream"
	"streamkf/internal/synopsis"
	"streamkf/internal/window"
)

// Stream abstractions.
type (
	// Reading is one timestamped sensor observation.
	Reading = stream.Reading
	// Source yields readings in sequence order.
	Source = stream.Source
	// SliceSource adapts an in-memory dataset to Source.
	SliceSource = stream.SliceSource
	// Query is a continuous query with a precision constraint.
	Query = stream.Query
)

// NewSliceSource wraps readings as a Source.
func NewSliceSource(readings []Reading) *SliceSource { return stream.NewSliceSource(readings) }

// FromValues builds a single-attribute dataset sampled at interval dt.
func FromValues(vals []float64, dt float64) []Reading { return stream.FromValues(vals, dt) }

// Matrix and filter layer.
type (
	// Matrix is a dense row-major float64 matrix.
	Matrix = mat.Matrix
	// Filter is the discrete Kalman filter (Eqs. 3–12 of the paper).
	Filter = kalman.Filter
	// FilterConfig configures a Filter directly; most callers should use
	// a Model instead.
	FilterConfig = kalman.Config
	// EKF is the extended Kalman filter for non-linear models.
	EKF = kalman.EKF
	// EKFConfig configures an EKF.
	EKFConfig = kalman.EKFConfig
	// RLS is recursive least squares, the zero-noise degenerate filter.
	RLS = kalman.RLS
	// IMM is the Interacting Multiple Model estimator: a Bayesian
	// mixture over a bank of dynamics hypotheses.
	IMM = kalman.IMM
	// IMMConfig configures an IMM estimator.
	IMMConfig = kalman.IMMConfig
)

// NewIMM constructs an Interacting Multiple Model estimator.
func NewIMM(cfg IMMConfig) (*IMM, error) { return kalman.NewIMM(cfg) }

// NewMatrix returns a zeroed r x c matrix.
func NewMatrix(r, c int) *Matrix { return mat.New(r, c) }

// MatrixFromRows builds a matrix from rows.
func MatrixFromRows(rows [][]float64) *Matrix { return mat.FromRows(rows) }

// NewFilter constructs a Kalman filter from an explicit configuration.
func NewFilter(cfg FilterConfig) (*Filter, error) { return kalman.New(cfg) }

// NewEKF constructs an extended Kalman filter.
func NewEKF(cfg EKFConfig) (*EKF, error) { return kalman.NewEKF(cfg) }

// NewRLS returns a recursive least squares estimator for n parameters
// with forgetting factor lambda and prior covariance scale delta.
func NewRLS(n int, lambda, delta float64) (*RLS, error) { return kalman.NewRLS(n, lambda, delta) }

// SteadyState solves the discrete Riccati recursion to a fixed point,
// returning the converged covariance and gain (paper §3.2 case 5).
func SteadyState(phi, h, q, r *Matrix, tol float64, maxIter int) (p, k *Matrix, err error) {
	return kalman.SteadyState(phi, h, q, r, tol, maxIter)
}

// Model is a stream model: transition, measurement, noise and bootstrap.
type Model = model.Model

// NonlinearModel is a non-linear stream model for the EKF-based DKF.
type NonlinearModel = model.Nonlinear

// PendulumModel returns the reference non-linear model: a damped
// pendulum measuring the angle.
func PendulumModel(dt, gOverL, damping, q, r float64) NonlinearModel {
	return model.Pendulum(dt, gOverL, damping, q, r)
}

// ConstantModel returns the paper's constant model (Eq. 15) over axes
// measured attributes with diagonal process/measurement noise q and r.
func ConstantModel(axes int, q, r float64) Model { return model.Constant(axes, q, r) }

// LinearModel returns the constant-velocity model of §4.1 (Eq. 14).
func LinearModel(axes int, dt, q, r float64) Model { return model.Linear(axes, dt, q, r) }

// AccelerationModel returns a constant-acceleration model.
func AccelerationModel(axes int, dt, q, r float64) Model { return model.Acceleration(axes, dt, q, r) }

// JerkModel returns the third-order [P, Ṗ, P̈, P⃛] model of §4.1.
func JerkModel(axes int, dt, q, r float64) Model { return model.Jerk(axes, dt, q, r) }

// SinusoidalModel returns the periodic model of §4.2 (Eq. 17).
func SinusoidalModel(omega, theta, gamma, q, r float64) Model {
	return model.Sinusoidal(omega, theta, gamma, q, r)
}

// SmoothingModel returns the one-state smoother of §4.3 whose process
// noise is the smoothing factor F.
func SmoothingModel(f, r float64) Model { return model.Smoothing(f, r) }

// The DKF protocol (the paper's primary contribution).
type (
	// Config assembles a DKF deployment for one source/query pair.
	Config = core.Config
	// Session couples a source and server node in process.
	Session = core.Session
	// SourceNode is the remote-source side: mirror filter and
	// suppression decision.
	SourceNode = core.SourceNode
	// ServerNode is the server side: the predicting filter KFs.
	ServerNode = core.ServerNode
	// Update is the wire message for a transmitted reading.
	Update = core.Update
	// Metrics aggregates a run: % updates, average error, bytes.
	Metrics = core.Metrics
	// Transport carries updates from source to server.
	Transport = core.Transport
	// TransportFunc adapts a function to Transport.
	TransportFunc = core.TransportFunc
	// AdaptiveSampler adjusts the sampling stride from the innovation
	// sequence.
	AdaptiveSampler = core.AdaptiveSampler
	// SampledSession is a DKF pair whose source skips sensing entirely
	// when the model predicts reliably.
	SampledSession = core.SampledSession
	// SampledMetrics extends Metrics with sensing duty-cycle counters.
	SampledMetrics = core.SampledMetrics
)

// NewSession builds a matched source/server DKF pair connected in
// process.
func NewSession(cfg Config) (*Session, error) { return core.NewSession(cfg) }

// NewSourceNode constructs just the source side (for custom transports).
func NewSourceNode(cfg Config) (*SourceNode, error) { return core.NewSourceNode(cfg) }

// NewServerNode constructs just the server side.
func NewServerNode(cfg Config) (*ServerNode, error) { return core.NewServerNode(cfg) }

// NewAdaptiveSampler returns a sampler for precision width delta with
// EWMA factor alpha and the given maximum stride.
func NewAdaptiveSampler(delta, alpha float64, maxStride int) (*AdaptiveSampler, error) {
	return core.NewAdaptiveSampler(delta, alpha, maxStride)
}

// NewSampledSession builds a DKF pair driven by an adaptive sampler:
// the source sleeps through readings while its mirror predicts reliably.
func NewSampledSession(cfg Config, sampler *AdaptiveSampler) (*SampledSession, error) {
	return core.NewSampledSession(cfg, sampler)
}

// SmoothResult is a fixed-interval smoothed trajectory.
type SmoothResult = kalman.SmoothResult

// Smooth runs a forward Kalman pass and a backward Rauch–Tung–Striebel
// pass over archived measurements, for offline reprocessing.
func Smooth(cfg FilterConfig, measurements []*Matrix) (*SmoothResult, error) {
	return kalman.Smooth(cfg, measurements)
}

// MeasurementsFromValues converts scalar readings into the measurement
// vectors Smooth expects.
func MeasurementsFromValues(vals []float64) []*Matrix {
	return kalman.MeasurementsFromValues(vals)
}

// Baselines.
type (
	// CacheBaseline is the precision-bound value-caching scheme of
	// Olston et al. the paper evaluates against.
	CacheBaseline = baseline.Cache
	// AdaptiveCacheBaseline grows/shrinks its bounds (SIGMOD 2001).
	AdaptiveCacheBaseline = baseline.AdaptiveCache
	// MovingAverage is the Example 3 smoothing comparison.
	MovingAverage = baseline.MovingAverage
	// BaselineMetrics aggregates a baseline run.
	BaselineMetrics = baseline.Metrics
)

// NewCacheBaseline returns a caching baseline with bound width w over
// dims attributes.
func NewCacheBaseline(w float64, dims int) (*CacheBaseline, error) {
	return baseline.NewCache(w, dims)
}

// NewAdaptiveCacheBaseline returns the grow/shrink variant.
func NewAdaptiveCacheBaseline(delta float64, dims int, grow, shrink float64) (*AdaptiveCacheBaseline, error) {
	return baseline.NewAdaptiveCache(delta, dims, grow, shrink)
}

// NewMovingAverage returns a window-length moving average.
func NewMovingAverage(window int) (*MovingAverage, error) { return baseline.NewMovingAverage(window) }

// Workload generators (deterministic given their Seed).
type (
	// MovingObjectConfig parameterizes the Example 1 trajectory.
	MovingObjectConfig = gen.MovingObjectConfig
	// PowerLoadConfig parameterizes the Example 2 load series.
	PowerLoadConfig = gen.PowerLoadConfig
	// HTTPTrafficConfig parameterizes the Example 3 traffic series.
	HTTPTrafficConfig = gen.HTTPTrafficConfig
)

// MovingObject generates the Example 1 piecewise-linear 2-D trajectory.
func MovingObject(cfg MovingObjectConfig) []Reading { return gen.MovingObject(cfg) }

// DefaultMovingObject returns the Example 1 configuration.
func DefaultMovingObject() MovingObjectConfig { return gen.DefaultMovingObject() }

// PowerLoad generates the Example 2 diurnal load series.
func PowerLoad(cfg PowerLoadConfig) []Reading { return gen.PowerLoad(cfg) }

// DefaultPowerLoad returns the Example 2 configuration.
func DefaultPowerLoad() PowerLoadConfig { return gen.DefaultPowerLoad() }

// HTTPTraffic generates the Example 3 noisy traffic series.
func HTTPTraffic(cfg HTTPTrafficConfig) []Reading { return gen.HTTPTraffic(cfg) }

// DefaultHTTPTraffic returns the Example 3 configuration.
func DefaultHTTPTraffic() HTTPTrafficConfig { return gen.DefaultHTTPTraffic() }

// End-to-end DSMS.
type (
	// DSMSServer is the central query server.
	DSMSServer = dsms.Server
	// Catalog resolves model names shared by server and sources.
	Catalog = dsms.Catalog
	// Agent is the in-process source agent.
	Agent = dsms.Agent
	// TCPServer exposes a DSMSServer over the binary framed wire
	// protocol.
	TCPServer = dsms.TCPServer
	// RemoteAgent is a TCP-connected source agent with pipelined,
	// window-limited update delivery.
	RemoteAgent = dsms.RemoteAgent
	// QueryClient asks a TCPServer for answers.
	QueryClient = dsms.QueryClient
	// DialOptions tunes a RemoteAgent connection (ack window, frame cap).
	DialOptions = dsms.DialOptions
	// UDPServer accepts the connectionless datagram transport on one
	// socket and feeds the shard-per-core ingest engine.
	UDPServer = dsms.UDPServer
	// UDPServerOptions tunes the datagram socket and the ingest engine.
	UDPServerOptions = dsms.UDPServerOptions
	// EngineOptions sizes the ingest engine (shard count, ring capacity).
	EngineOptions = dsms.EngineOptions
	// UDPAgent is a datagram-connected source agent: no acks, no resend
	// queue — the DKF protocol's loss tolerance is the reliability layer.
	UDPAgent = dsms.UDPAgent
	// UDPDialOptions tunes a UDPAgent handshake.
	UDPDialOptions = dsms.UDPDialOptions
	// UDPBatcher multiplexes many sources' updates over one datagram
	// socket, packing frames into shared datagrams (the fan-in shape).
	UDPBatcher = dsms.UDPBatcher
)

// NewCatalog returns an empty model catalog.
func NewCatalog() *Catalog { return dsms.NewCatalog() }

// DefaultCatalog returns a catalog preloaded with the paper's models for
// sampling interval dt.
func DefaultCatalog(dt float64) *Catalog { return dsms.DefaultCatalog(dt) }

// NewDSMSServer returns a query server resolving models from catalog.
func NewDSMSServer(catalog *Catalog) *DSMSServer { return dsms.NewServer(catalog) }

// NewAgent builds an in-process source agent.
func NewAgent(cfg Config, send Transport) (*Agent, error) { return dsms.NewAgent(cfg, send) }

// NewTCPServer wraps a server with a TCP listener on addr.
func NewTCPServer(server *DSMSServer, addr string) (*TCPServer, error) {
	return dsms.NewTCPServer(server, addr)
}

// DialSource connects a source agent to a TCP server.
func DialSource(addr, sourceID string, catalog *Catalog) (*RemoteAgent, error) {
	return dsms.DialSource(addr, sourceID, catalog)
}

// DialSourceOptions connects a source agent with an explicit ack window.
func DialSourceOptions(addr, sourceID string, catalog *Catalog, opts DialOptions) (*RemoteAgent, error) {
	return dsms.DialSourceOptions(addr, sourceID, catalog, opts)
}

// DialQuery connects a query client to a TCP server.
func DialQuery(addr string) (*QueryClient, error) { return dsms.DialQuery(addr) }

// NewUDPServer binds the connectionless datagram transport on addr,
// starting the server's shard ingest engine if none is attached yet.
func NewUDPServer(server *DSMSServer, addr string, opts UDPServerOptions) (*UDPServer, error) {
	return dsms.NewUDPServer(server, addr, opts)
}

// DialSourceUDP connects a datagram source agent to a UDP server.
func DialSourceUDP(addr, sourceID string, catalog *Catalog, opts UDPDialOptions) (*UDPAgent, error) {
	return dsms.DialSourceUDP(addr, sourceID, catalog, opts)
}

// DialUDPBatcher opens a batching datagram sender that multiplexes many
// sources over one socket; flushBytes 0 selects the default packing.
func DialUDPBatcher(addr string, flushBytes int) (*UDPBatcher, error) {
	return dsms.DialUDPBatcher(addr, flushBytes)
}

// Sharded cluster mode: a consistent-hash router fronting several
// shard servers with the unmodified source protocol (DESIGN.md §17).
type (
	// ClusterRouter forwards sources to their owning shards, merges
	// cross-shard aggregate partials bit-identically, and migrates
	// live streams by checkpoint snapshot.
	ClusterRouter = cluster.Router
	// ClusterOptions tunes a ClusterRouter (vnodes, aggregate
	// re-suppression budget, telemetry).
	ClusterOptions = cluster.Options
	// PlacementRing is the consistent-hash ring mapping source ids to
	// shards, with virtual nodes, pins and a topology epoch.
	PlacementRing = cluster.Ring
)

// NewClusterRouter starts a router on listenAddr fronting the given
// shard servers (shardAddrs[i] is shard index i). Call Serve to accept
// sources.
func NewClusterRouter(listenAddr string, shardAddrs []string, opts ClusterOptions) (*ClusterRouter, error) {
	return cluster.NewRouter(listenAddr, shardAddrs, opts)
}

// NewPlacementRing builds a standalone placement ring over shards
// 0..shards-1 (vnodes 0 means the default).
func NewPlacementRing(shards, vnodes int) *PlacementRing { return cluster.NewRing(shards, vnodes) }

// Aggregate continuous queries and the query language.
type (
	// AggregateQuery is a continuous aggregate over multiple sources
	// with a composed precision constraint.
	AggregateQuery = dsms.AggregateQuery
	// AggFunc names an aggregate function (avg, sum, min, max).
	AggFunc = dsms.AggFunc
	// CQLStatement is a parsed continuous-query-language statement.
	CQLStatement = cql.Statement
	// WindowQuery is a time-windowed aggregate over one source,
	// evaluated by history replay.
	WindowQuery = dsms.WindowQuery
	// WindowStats maintains sliding-window mean/variance.
	WindowStats = window.Stats
	// WindowMinMax maintains sliding-window extrema in O(1) amortized.
	WindowMinMax = window.MinMax
	// EWMA is an exponentially weighted moving average.
	EWMA = window.EWMA
)

// NewWindowStats returns a sliding-window statistic over n observations.
func NewWindowStats(n int) (*WindowStats, error) { return window.NewStats(n) }

// NewWindowMinMax returns a sliding-window extremum tracker.
func NewWindowMinMax(n int) (*WindowMinMax, error) { return window.NewMinMax(n) }

// NewEWMA returns an EWMA with smoothing factor alpha in (0, 1].
func NewEWMA(alpha float64) (*EWMA, error) { return window.NewEWMA(alpha) }

// Aggregate functions.
const (
	AggAvg = dsms.AggAvg
	AggSum = dsms.AggSum
	AggMin = dsms.AggMin
	AggMax = dsms.AggMax
)

// ParseCQL parses a continuous-query statement like
// "SELECT AVG FROM z1, z2 MODEL linear WITHIN 50 AS load".
func ParseCQL(statement string) (*CQLStatement, error) { return cql.Parse(statement) }

// InstallCQL parses the statement and registers it with the server,
// returning the query name.
func InstallCQL(server *DSMSServer, statement string) (string, error) {
	return cql.Install(server, statement)
}

// Online model adaptation (future work item 2).
type (
	// Selector tracks candidate models against the live stream.
	Selector = adapt.Selector
	// AdaptiveRunner switches DKF models online per the Selector.
	AdaptiveRunner = adapt.Runner
	// Scoring selects how the Selector ranks candidates.
	Scoring = adapt.Scoring
)

// Selector scoring rules.
const (
	ScoreAbsError      = adapt.ScoreAbsError
	ScoreLogLikelihood = adapt.ScoreLogLikelihood
)

// NewSelectorScored builds a model selector with an explicit scoring
// rule (absolute error or innovation log-likelihood).
func NewSelectorScored(models []Model, window int, hysteresis float64, scoring Scoring) (*Selector, error) {
	return adapt.NewSelectorScored(models, window, hysteresis, scoring)
}

// NewSelector builds a model selector over candidates.
func NewSelector(models []Model, window int, hysteresis float64) (*Selector, error) {
	return adapt.NewSelector(models, window, hysteresis)
}

// NewAdaptiveRunner builds an adaptive DKF runner.
func NewAdaptiveRunner(sourceID string, delta, f float64, selector *Selector) (*AdaptiveRunner, error) {
	return adapt.NewRunner(sourceID, delta, f, selector)
}

// Transport reliability decorators.
type (
	// LossyTransport injects seeded random update loss (fault testing).
	LossyTransport = core.LossyTransport
	// ReliableTransport masks detectable loss with retries.
	ReliableTransport = core.ReliableTransport
	// LossMode selects silent vs detectable loss.
	LossMode = core.LossMode
)

// Loss modes.
const (
	LossSilent = core.LossSilent
	LossDetect = core.LossDetect
)

// ErrDropped is returned by a detectably-lossy transport.
var ErrDropped = core.ErrDropped

// NewLossyTransport wraps inner with seeded random loss.
func NewLossyTransport(inner Transport, p float64, mode LossMode, seed int64) (*LossyTransport, error) {
	return core.NewLossyTransport(inner, p, mode, seed)
}

// NewReliableTransport wraps inner with up to maxRetries resends.
func NewReliableTransport(inner Transport, maxRetries int) (*ReliableTransport, error) {
	return core.NewReliableTransport(inner, maxRetries)
}

// NewSessionWithTransport builds a session whose updates flow through a
// caller-supplied transport chain (see core.NewSessionWithTransport).
func NewSessionWithTransport(cfg Config, wrap func(direct Transport) (Transport, error)) (*Session, error) {
	return core.NewSessionWithTransport(cfg, wrap)
}

// Nonlinear DKF (future work item 3).
type (
	// NonlinearConfig assembles an EKF-based DKF deployment.
	NonlinearConfig = core.NonlinearConfig
	// NonlinearSession runs the DKF protocol over an EKF pair.
	NonlinearSession = core.NonlinearSession
)

// NewNonlinearSession builds the EKF source/server pair.
func NewNonlinearSession(cfg NonlinearConfig) (*NonlinearSession, error) {
	return core.NewNonlinearSession(cfg)
}

// Threshold alerts.
type (
	// Alert is a continuous threshold predicate over a query.
	Alert = dsms.Alert
	// AlertEvent is delivered when an alert fires.
	AlertEvent = dsms.AlertEvent
	// AlertDirection selects the firing crossing.
	AlertDirection = dsms.AlertDirection
	// Notification is pushed to Subscribe listeners on fresh answers.
	Notification = dsms.Notification
)

// Alert directions.
const (
	AlertAbove = dsms.AlertAbove
	AlertBelow = dsms.AlertBelow
)

// Error-bounded stream storage (future work item 7).
type (
	// SynopsisStore summarizes a stream under a reconstruction error
	// tolerance.
	SynopsisStore = synopsis.Store
	// SynopsisArchive persists synopsis segments on disk with checksums.
	SynopsisArchive = synopsis.Archive
	// SynopsisWriter archives a live stream with segment rotation.
	SynopsisWriter = synopsis.Writer
)

// OpenSynopsisArchive opens (creating if needed) an on-disk archive.
func OpenSynopsisArchive(dir string) (*SynopsisArchive, error) { return synopsis.OpenArchive(dir) }

// NewSynopsis returns an empty synopsis store under model m with
// per-attribute reconstruction tolerance tol.
func NewSynopsis(m Model, tol float64) (*SynopsisStore, error) { return synopsis.New(m, tol) }

// DecodeSynopsis reconstructs a store from its encoding, resolving the
// model by name.
func DecodeSynopsis(data []byte, resolve func(name string) (Model, error)) (*SynopsisStore, error) {
	return synopsis.Decode(data, resolve)
}

// Sensor energy accounting (the paper's §1 motivation).
type (
	// EnergyModel prices instructions and transmitted bits.
	EnergyModel = netsim.EnergyModel
	// EnergyAccount tracks a node's cumulative energy spend.
	EnergyAccount = netsim.Account
)

// DefaultEnergyModel returns the paper's mid-range bit/instruction
// pricing.
func DefaultEnergyModel() EnergyModel { return netsim.DefaultEnergyModel() }

// NewEnergyAccount returns an account under the model; battery <= 0
// means unlimited.
func NewEnergyAccount(model EnergyModel, battery float64) (*EnergyAccount, error) {
	return netsim.NewAccount(model, battery)
}
