package streamkf_test

import (
	"math"
	"testing"

	"streamkf"
)

// TestFacadeSessionRoundTrip exercises the re-exported DKF surface the
// way a downstream user would.
func TestFacadeSessionRoundTrip(t *testing.T) {
	m := streamkf.LinearModel(1, 1, 0.05, 0.05)
	sess, err := streamkf.NewSession(streamkf.Config{SourceID: "s", Model: m, Delta: 2})
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]float64, 200)
	for i := range vals {
		vals[i] = 3 * float64(i)
	}
	data := streamkf.FromValues(vals, 1)
	for _, r := range data {
		if _, err := sess.Step(r); err != nil {
			t.Fatal(err)
		}
	}
	got := sess.Metrics()
	if got.Readings != 200 {
		t.Fatalf("readings = %d", got.Readings)
	}
	if got.PercentUpdates() > 20 {
		t.Fatalf("%% updates = %v on a noiseless ramp", got.PercentUpdates())
	}
}

func TestFacadeModels(t *testing.T) {
	models := []streamkf.Model{
		streamkf.ConstantModel(2, 0.05, 0.05),
		streamkf.LinearModel(2, 0.1, 0.05, 0.05),
		streamkf.AccelerationModel(1, 0.1, 0.05, 0.05),
		streamkf.JerkModel(1, 0.1, 0.05, 0.05),
		streamkf.SinusoidalModel(0.26, 0, 10, 0.05, 0.05),
		streamkf.SmoothingModel(1e-7, 1),
	}
	for _, m := range models {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestFacadeGeneratorsAndBaselines(t *testing.T) {
	data := streamkf.MovingObject(streamkf.DefaultMovingObject())
	if len(data) != 4000 {
		t.Fatalf("moving object len = %d", len(data))
	}
	if n := len(streamkf.PowerLoad(streamkf.DefaultPowerLoad())); n != 5831 {
		t.Fatalf("power load len = %d", n)
	}
	if n := len(streamkf.HTTPTraffic(streamkf.DefaultHTTPTraffic())); n != 5000 {
		t.Fatalf("traffic len = %d", n)
	}
	cache, err := streamkf.NewCacheBaseline(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	bm, err := cache.Run(data)
	if err != nil {
		t.Fatal(err)
	}
	if bm.Readings != len(data) {
		t.Fatalf("baseline readings = %d", bm.Readings)
	}
	if _, err := streamkf.NewAdaptiveCacheBaseline(4, 1, 1.2, 0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := streamkf.NewMovingAverage(10); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeFilterLayer(t *testing.T) {
	phi := streamkf.MatrixFromRows([][]float64{{1}})
	h := streamkf.MatrixFromRows([][]float64{{1}})
	q := streamkf.MatrixFromRows([][]float64{{0.1}})
	r := streamkf.MatrixFromRows([][]float64{{0.1}})
	p, k, err := streamkf.SteadyState(phi, h, q, r, 1e-12, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if p.At(0, 0) <= 0 || k.At(0, 0) <= 0 || k.At(0, 0) >= 1 {
		t.Fatalf("steady state p=%v k=%v", p, k)
	}
	if m := streamkf.NewMatrix(2, 3); m.Rows() != 2 || m.Cols() != 3 {
		t.Fatal("NewMatrix dims")
	}
	if _, err := streamkf.NewRLS(2, 1, 1e4); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeDSMS(t *testing.T) {
	catalog := streamkf.DefaultCatalog(1)
	srv := streamkf.NewDSMSServer(catalog)
	q := streamkf.Query{ID: "q", SourceID: "s", Delta: 2, Model: "linear"}
	if err := srv.Register(q); err != nil {
		t.Fatal(err)
	}
	cfg, err := srv.InstallFor("s")
	if err != nil {
		t.Fatal(err)
	}
	agent, err := streamkf.NewAgent(cfg, streamkf.TransportFunc(func(u streamkf.Update) error {
		return srv.HandleUpdate(u)
	}))
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(2 * i)
	}
	if err := agent.Run(streamkf.NewSliceSource(streamkf.FromValues(vals, 1))); err != nil {
		t.Fatal(err)
	}
	ans, err := srv.Answer("q", 99)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ans[0]-198) > 4 {
		t.Fatalf("answer = %v, want ~198", ans[0])
	}
}

func TestFacadeSynopsisAndAdapt(t *testing.T) {
	m := streamkf.LinearModel(1, 1, 0.05, 0.05)
	store, err := streamkf.NewSynopsis(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i)
	}
	for _, r := range streamkf.FromValues(vals, 1) {
		if err := store.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if store.CompressionRatio() > 0.2 {
		t.Fatalf("compression ratio %v on a ramp", store.CompressionRatio())
	}
	blob, err := store.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := streamkf.DecodeSynopsis(blob, func(string) (streamkf.Model, error) { return m, nil })
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != store.Len() {
		t.Fatal("synopsis round trip length mismatch")
	}

	sel, err := streamkf.NewSelector([]streamkf.Model{
		streamkf.ConstantModel(1, 0.05, 0.05),
		streamkf.LinearModel(1, 1, 0.05, 0.05),
	}, 20, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	runner, err := streamkf.NewAdaptiveRunner("s", 2, 0, sel)
	if err != nil {
		t.Fatal(err)
	}
	metrics, _, err := runner.Run(streamkf.FromValues(vals, 1))
	if err != nil {
		t.Fatal(err)
	}
	if metrics.Readings != 100 {
		t.Fatalf("adaptive readings = %d", metrics.Readings)
	}
}

func TestFacadeEnergy(t *testing.T) {
	acct, err := streamkf.NewEnergyAccount(streamkf.DefaultEnergyModel(), 0)
	if err != nil {
		t.Fatal(err)
	}
	acct.ChargeTransmit(100)
	acct.ChargeCompute(1000)
	if acct.Spent() <= 0 {
		t.Fatal("no energy recorded")
	}
}
