package adapt

import (
	"testing"

	"streamkf/internal/gen"
)

func TestNewSelectorScoredValidation(t *testing.T) {
	if _, err := NewSelectorScored(bank(), 10, 1.5, Scoring(99)); err == nil {
		t.Fatal("accepted unknown scoring")
	}
	if _, err := NewSelectorScored(bank(), 10, 1.5, ScoreLogLikelihood); err != nil {
		t.Fatal(err)
	}
}

func TestLikelihoodScoringPrefersMatchingModel(t *testing.T) {
	s, err := NewSelectorScored(bank(), 30, 1.5, ScoreLogLikelihood)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range gen.Ramp(150, 0, 5, 0.05, 1) {
		if err := s.Observe(r); err != nil {
			t.Fatal(err)
		}
	}
	m, ok := s.Propose()
	if !ok || m.Name != "linear" {
		t.Fatalf("LL Propose = %v, %v; want linear", m.Name, ok)
	}
	// Scores are negative log-likelihoods: the linear model's must be
	// lower (better).
	errs := s.Errors()
	if errs["linear"] >= errs["constant"] {
		t.Fatalf("LL scores: linear %v >= constant %v", errs["linear"], errs["constant"])
	}
}

func TestLikelihoodScoringStableOnMatchedStream(t *testing.T) {
	// On a flat stream matched by the active (constant) model, the LL
	// scorer must not propose switching.
	s, err := NewSelectorScored(bank(), 30, 1.5, ScoreLogLikelihood)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range gen.Ramp(200, 10, 0, 0.05, 2) { // slope 0, noise 0.05
		if err := s.Observe(r); err != nil {
			t.Fatal(err)
		}
	}
	if m, ok := s.Propose(); ok {
		t.Fatalf("LL scorer proposed %s on a matched flat stream", m.Name)
	}
}

func TestScoringModesAgreeOnRegimeChange(t *testing.T) {
	// Both scorers must land on the same final model across the regime
	// workload; they may differ in switch counts.
	for _, scoring := range []Scoring{ScoreAbsError, ScoreLogLikelihood} {
		s, err := NewSelectorScored(bank(), 30, 1.3, scoring)
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewRunner("s", 2, 0, s)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := r.Run(regimeData()); err != nil {
			t.Fatal(err)
		}
		if got := r.ActiveModel(); got != "constant" && got != "linear" {
			t.Fatalf("scoring %d: final model %q", scoring, got)
		}
		if r.Switches() == 0 {
			t.Fatalf("scoring %d: never switched across regimes", scoring)
		}
	}
}
