package adapt

import (
	"math"
	"testing"

	"streamkf/internal/gen"
	"streamkf/internal/model"
	"streamkf/internal/stream"
)

func bank() []model.Model {
	return []model.Model{
		model.Constant(1, 0.05, 0.05),
		model.Linear(1, 1, 0.05, 0.05),
	}
}

func TestNewSelectorValidation(t *testing.T) {
	if _, err := NewSelector(bank()[:1], 10, 1.5); err == nil {
		t.Fatal("accepted single model")
	}
	if _, err := NewSelector(bank(), 1, 1.5); err == nil {
		t.Fatal("accepted window 1")
	}
	if _, err := NewSelector(bank(), 10, 1.0); err == nil {
		t.Fatal("accepted hysteresis 1")
	}
	dup := []model.Model{model.Constant(1, 0.1, 0.1), model.Constant(1, 0.1, 0.1)}
	if _, err := NewSelector(dup, 10, 1.5); err == nil {
		t.Fatal("accepted duplicate names")
	}
	mixed := []model.Model{model.Constant(1, 0.1, 0.1), model.Linear(2, 1, 0.1, 0.1)}
	if _, err := NewSelector(mixed, 10, 1.5); err == nil {
		t.Fatal("accepted mixed measurement dims")
	}
}

func TestSelectorPrefersMatchingModel(t *testing.T) {
	s, err := NewSelector(bank(), 20, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	// Feed a steep ramp: the linear model must win decisively.
	for _, r := range gen.Ramp(100, 0, 5, 0.01, 1) {
		if err := s.Observe(r); err != nil {
			t.Fatal(err)
		}
	}
	errs := s.Errors()
	if errs["linear"] >= errs["constant"] {
		t.Fatalf("linear err %v >= constant err %v on a ramp", errs["linear"], errs["constant"])
	}
	m, ok := s.Propose()
	if !ok || m.Name != "linear" {
		t.Fatalf("Propose = %v, %v; want linear switch", m.Name, ok)
	}
	if err := s.Commit("linear"); err != nil {
		t.Fatal(err)
	}
	if s.Active().Name != "linear" {
		t.Fatal("Commit did not activate")
	}
	// Cooldown suppresses immediate re-proposals.
	if _, ok := s.Propose(); ok {
		t.Fatal("Propose fired during cooldown")
	}
}

func TestCommitUnknown(t *testing.T) {
	s, _ := NewSelector(bank(), 5, 1.5)
	if err := s.Commit("nope"); err == nil {
		t.Fatal("Commit accepted unknown model")
	}
}

func TestProposeRequiresFullWindow(t *testing.T) {
	s, _ := NewSelector(bank(), 50, 1.5)
	for _, r := range gen.Ramp(10, 0, 5, 0, 1) {
		if err := s.Observe(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s.Propose(); ok {
		t.Fatal("Propose fired before windows filled")
	}
}

func TestRunnerValidation(t *testing.T) {
	s, _ := NewSelector(bank(), 10, 1.5)
	if _, err := NewRunner("", 1, 0, s); err == nil {
		t.Fatal("accepted empty source id")
	}
	if _, err := NewRunner("s", 0, 0, s); err == nil {
		t.Fatal("accepted delta 0")
	}
}

// regimeData builds a stream that is flat, then a steep ramp, then flat:
// no single model in the bank is right throughout.
func regimeData() []stream.Reading {
	var vals []float64
	for i := 0; i < 300; i++ {
		vals = append(vals, 10)
	}
	v := 10.0
	for i := 0; i < 300; i++ {
		v += 4
		vals = append(vals, v)
	}
	for i := 0; i < 300; i++ {
		vals = append(vals, v)
	}
	return stream.FromValues(vals, 1)
}

func TestRunnerSwitchesOnRegimeChange(t *testing.T) {
	s, err := NewSelector(bank(), 30, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner("s", 2, 0, s)
	if err != nil {
		t.Fatal(err)
	}
	m, switches, err := r.Run(regimeData())
	if err != nil {
		t.Fatal(err)
	}
	if switches == 0 {
		t.Fatal("runner never switched models across regimes")
	}
	if m.Readings != 900 {
		t.Fatalf("readings = %d, want 900", m.Readings)
	}
	if r.ActiveModel() == "" {
		t.Fatal("no active model")
	}
}

func TestRunnerBeatsWorstFixedModel(t *testing.T) {
	// The adaptive runner must not send more updates than the worst
	// fixed model, and should land near the best per-regime choice.
	data := regimeData()
	runFixed := func(m model.Model) float64 {
		s, err := NewSelector([]model.Model{m, m2(m)}, 30, 1e9) // absurd hysteresis: never switches
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewRunner("s", 2, 0, s)
		if err != nil {
			t.Fatal(err)
		}
		metrics, _, err := r.Run(data)
		if err != nil {
			t.Fatal(err)
		}
		return metrics.PercentUpdates()
	}
	worst := math.Max(runFixed(bank()[0]), runFixed(bank()[1]))

	s, _ := NewSelector(bank(), 30, 1.3)
	r, _ := NewRunner("s", 2, 0, s)
	m, _, err := r.Run(data)
	if err != nil {
		t.Fatal(err)
	}
	if m.PercentUpdates() > worst {
		t.Fatalf("adaptive %.1f%% updates worse than worst fixed %.1f%%", m.PercentUpdates(), worst)
	}
}

// m2 clones a model under a different name so NewSelector's arity
// requirement is met while keeping the bank effectively single-model.
func m2(m model.Model) model.Model {
	c := m
	c.Name = m.Name + "-shadow"
	return c
}

func TestRunnerMetricsIncludeLiveSession(t *testing.T) {
	s, _ := NewSelector(bank(), 30, 1.3)
	r, _ := NewRunner("s", 2, 0, s)
	for _, reading := range gen.Ramp(50, 0, 1, 0, 2) {
		if err := r.Step(reading); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.Metrics().Readings; got != 50 {
		t.Fatalf("live metrics readings = %d, want 50", got)
	}
}
