// Package adapt implements online model selection, the paper's future
// work item 2: "investigating updating the state transition matrices
// online as the streaming data trend changes".
//
// A Selector runs a bank of candidate models as shadow filters at the
// source (which sees every reading anyway, so shadowing is free of
// network cost) and tracks each model's windowed one-step-ahead
// prediction error. When another model beats the active one by a
// hysteresis factor over a full window, the source switches: it tears
// down the current DKF pair and bootstraps a new one under the better
// model, at the cost of one reinstall message.
package adapt

import (
	"fmt"
	"math"

	"streamkf/internal/core"
	"streamkf/internal/kalman"
	"streamkf/internal/mat"
	"streamkf/internal/model"
	"streamkf/internal/stream"
)

// candidate is one shadow-tracked model.
type candidate struct {
	model  model.Model
	filter *kalman.Filter
	errs   []float64 // ring buffer of one-step |prediction - measurement|
	next   int
	filled bool
	sum    float64
}

func (c *candidate) observe(e float64, window int) {
	if c.filled {
		c.sum -= c.errs[c.next]
	}
	c.errs[c.next] = e
	c.sum += e
	c.next++
	if c.next == window {
		c.next = 0
		c.filled = true
	}
}

func (c *candidate) avgErr(window int) float64 {
	n := c.next
	if c.filled {
		n = window
	}
	if n == 0 {
		return math.Inf(1)
	}
	return c.sum / float64(n)
}

// Scoring selects how candidate models are ranked.
type Scoring int

const (
	// ScoreAbsError ranks models by windowed mean absolute one-step
	// prediction error; a challenger wins when the active model's error
	// exceeds hysteresis times the challenger's.
	ScoreAbsError Scoring = iota
	// ScoreLogLikelihood ranks models by windowed mean innovation
	// log-likelihood (the Bayesian view); a challenger wins when its
	// mean log-likelihood advantage exceeds ln(hysteresis) nats per
	// observation — a per-step Bayes-factor threshold.
	ScoreLogLikelihood
)

// Selector tracks candidate models against the live stream and decides
// when the active model should change.
type Selector struct {
	window     int
	hysteresis float64
	scoring    Scoring
	cands      []*candidate
	active     int
	steps      int
	cooldown   int // steps remaining before another switch is allowed
}

// NewSelector builds a selector over candidate models scored by absolute
// prediction error. window is the error-averaging horizon; hysteresis
// (> 1) is how decisively a challenger must win (activeErr > hysteresis
// * challengerErr) before a switch fires. The first model starts active.
func NewSelector(models []model.Model, window int, hysteresis float64) (*Selector, error) {
	return NewSelectorScored(models, window, hysteresis, ScoreAbsError)
}

// NewSelectorScored is NewSelector with an explicit scoring rule.
func NewSelectorScored(models []model.Model, window int, hysteresis float64, scoring Scoring) (*Selector, error) {
	if len(models) < 2 {
		return nil, fmt.Errorf("adapt: need at least 2 candidate models, got %d", len(models))
	}
	if window < 2 {
		return nil, fmt.Errorf("adapt: window = %d, want >= 2", window)
	}
	if hysteresis <= 1 {
		return nil, fmt.Errorf("adapt: hysteresis = %v, want > 1", hysteresis)
	}
	if scoring != ScoreAbsError && scoring != ScoreLogLikelihood {
		return nil, fmt.Errorf("adapt: unknown scoring %d", scoring)
	}
	s := &Selector{window: window, hysteresis: hysteresis, scoring: scoring}
	seen := make(map[string]bool, len(models))
	for _, m := range models {
		if err := m.Validate(); err != nil {
			return nil, fmt.Errorf("adapt: %w", err)
		}
		if m.MeasDim != models[0].MeasDim {
			return nil, fmt.Errorf("adapt: model %s has MeasDim %d, want %d", m.Name, m.MeasDim, models[0].MeasDim)
		}
		if seen[m.Name] {
			return nil, fmt.Errorf("adapt: duplicate model name %s", m.Name)
		}
		seen[m.Name] = true
		s.cands = append(s.cands, &candidate{model: m, errs: make([]float64, window)})
	}
	return s, nil
}

// Observe feeds one reading to every shadow filter and records each
// model's a priori prediction error.
func (s *Selector) Observe(r stream.Reading) error {
	s.steps++
	if s.cooldown > 0 {
		s.cooldown--
	}
	for _, c := range s.cands {
		if c.filter == nil {
			f, err := c.model.NewFilter(r.Values)
			if err != nil {
				return err
			}
			c.filter = f
			c.observe(0, s.window)
			continue
		}
		c.filter.Predict()
		score := 0.0
		switch s.scoring {
		case ScoreLogLikelihood:
			ll, err := c.filter.LogLikelihood(vecOf(r.Values))
			if err != nil {
				return err
			}
			score = -ll // lower is better, matching the error scale
		default:
			pred := c.filter.PredictedMeasurement().VecSlice()
			score = stream.AbsErrorSum(pred, r.Values)
		}
		c.observe(score, s.window)
		if err := c.filter.Correct(vecOf(r.Values)); err != nil {
			return err
		}
	}
	return nil
}

// Active returns the currently selected model.
func (s *Selector) Active() model.Model { return s.cands[s.active].model }

// Errors returns each candidate's current windowed average error, keyed
// by model name.
func (s *Selector) Errors() map[string]float64 {
	out := make(map[string]float64, len(s.cands))
	for _, c := range s.cands {
		out[c.model.Name] = c.avgErr(s.window)
	}
	return out
}

// Propose returns the model the stream should switch to, if any: the
// challenger with the lowest windowed error, provided the active model's
// error exceeds it by the hysteresis factor, every window is full, and
// no switch happened within the last window (cooldown).
func (s *Selector) Propose() (model.Model, bool) {
	if s.cooldown > 0 {
		return model.Model{}, false
	}
	for _, c := range s.cands {
		if !c.filled {
			return model.Model{}, false
		}
	}
	best := s.active
	for i, c := range s.cands {
		if c.avgErr(s.window) < s.cands[best].avgErr(s.window) {
			best = i
		}
	}
	if best == s.active {
		return model.Model{}, false
	}
	activeScore := s.cands[s.active].avgErr(s.window)
	bestScore := s.cands[best].avgErr(s.window)
	switch s.scoring {
	case ScoreLogLikelihood:
		// Scores are mean negative log-likelihoods; require a mean
		// advantage of ln(hysteresis) nats per observation.
		if activeScore-bestScore <= math.Log(s.hysteresis) {
			return model.Model{}, false
		}
	default:
		if activeScore <= s.hysteresis*bestScore {
			return model.Model{}, false
		}
	}
	return s.cands[best].model, true
}

// Commit records that the proposed switch happened and starts the
// cooldown.
func (s *Selector) Commit(name string) error {
	for i, c := range s.cands {
		if c.model.Name == name {
			s.active = i
			s.cooldown = s.window
			return nil
		}
	}
	return fmt.Errorf("adapt: Commit to unknown model %s", name)
}

// reinstallBytes approximates the cost of the control message that tells
// the server to reinstall under a new model: header + model name.
const reinstallBytes = 8 + 16

// Runner drives a stream through DKF sessions, switching models online
// per the Selector's decisions. Each switch tears down the session and
// bootstraps a new one (the bootstrap transmission and a reinstall
// control message are charged to the metrics).
type Runner struct {
	sourceID string
	delta    float64
	f        float64
	selector *Selector

	session  *core.Session
	metrics  core.Metrics
	switches int
}

// NewRunner builds an adaptive runner with precision width delta and
// optional smoothing factor f over the selector's candidates.
func NewRunner(sourceID string, delta, f float64, selector *Selector) (*Runner, error) {
	if sourceID == "" {
		return nil, fmt.Errorf("adapt: empty source id")
	}
	if delta <= 0 {
		return nil, fmt.Errorf("adapt: delta = %v, want > 0", delta)
	}
	return &Runner{sourceID: sourceID, delta: delta, f: f, selector: selector}, nil
}

// Step processes one reading: update the shadow bank, switch if
// proposed, then run the reading through the live DKF session.
func (r *Runner) Step(reading stream.Reading) error {
	if err := r.selector.Observe(reading); err != nil {
		return err
	}
	if m, ok := r.selector.Propose(); ok {
		if err := r.selector.Commit(m.Name); err != nil {
			return err
		}
		r.rotate()
		r.metrics.BytesSent += reinstallBytes
		r.switches++
	}
	if r.session == nil {
		sess, err := core.NewSession(core.Config{
			SourceID: r.sourceID,
			Model:    r.selector.Active(),
			Delta:    r.delta,
			F:        r.f,
		})
		if err != nil {
			return err
		}
		r.session = sess
	}
	_, err := r.session.Step(reading)
	return err
}

// rotate folds the finished session's metrics into the aggregate.
func (r *Runner) rotate() {
	if r.session == nil {
		return
	}
	m := r.session.Metrics()
	r.metrics.Readings += m.Readings
	r.metrics.Updates += m.Updates
	r.metrics.BytesSent += m.BytesSent
	r.metrics.SumAbsErr += m.SumAbsErr
	r.metrics.SumAbsErrRaw += m.SumAbsErrRaw
	if m.MaxAbsErr > r.metrics.MaxAbsErr {
		r.metrics.MaxAbsErr = m.MaxAbsErr
	}
	r.metrics.OutliersRejected += m.OutliersRejected
	r.session = nil
}

// Run drives a whole dataset and returns the aggregated metrics and the
// number of model switches.
func (r *Runner) Run(readings []stream.Reading) (core.Metrics, int, error) {
	for _, reading := range readings {
		if err := r.Step(reading); err != nil {
			return r.Metrics(), r.switches, err
		}
	}
	return r.Metrics(), r.switches, nil
}

// Metrics returns the aggregate including the live session.
func (r *Runner) Metrics() core.Metrics {
	agg := r.metrics
	if r.session != nil {
		m := r.session.Metrics()
		agg.Readings += m.Readings
		agg.Updates += m.Updates
		agg.BytesSent += m.BytesSent
		agg.SumAbsErr += m.SumAbsErr
		agg.SumAbsErrRaw += m.SumAbsErrRaw
		if m.MaxAbsErr > agg.MaxAbsErr {
			agg.MaxAbsErr = m.MaxAbsErr
		}
		agg.OutliersRejected += m.OutliersRejected
	}
	return agg
}

// Switches returns how many model switches have fired.
func (r *Runner) Switches() int { return r.switches }

// ActiveModel returns the name of the currently installed model.
func (r *Runner) ActiveModel() string { return r.selector.Active().Name }

func vecOf(v []float64) *mat.Matrix { return mat.Vec(v...) }
