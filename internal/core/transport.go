package core

import (
	"errors"
	"fmt"
	"math/rand"
)

// ErrDropped is returned by a detectably-lossy transport when an update
// is lost in flight.
var ErrDropped = errors.New("core: update dropped in transit")

// ErrPeerClosed reports that the remote end closed the connection
// cleanly, at a message boundary — the failure mode of an orderly server
// shutdown. Wrap it so callers can distinguish a clean close from data
// loss with errors.Is.
var ErrPeerClosed = errors.New("core: peer closed the connection")

// ErrTruncated reports a connection that died mid-message: bytes of a
// frame arrived and then the stream ended. Unlike ErrPeerClosed this is
// never the result of an orderly shutdown — data was lost in flight.
var ErrTruncated = errors.New("core: connection truncated mid-message")

// LossMode selects how a LossyTransport reports a dropped update.
type LossMode int

const (
	// LossSilent swallows the update and reports success — the failure
	// mode of a fire-and-forget datagram. Silent loss breaks mirror
	// synchrony permanently: the source's mirror has already folded in a
	// correction the server never saw. The tests use this mode to prove
	// why the protocol needs acknowledged delivery.
	LossSilent LossMode = iota
	// LossDetect returns ErrDropped, the failure mode of an
	// acknowledged send that timed out. A ReliableTransport can mask it.
	LossDetect
)

// LossyTransport wraps a Transport and drops updates with probability P.
// Deterministic given Seed.
type LossyTransport struct {
	Inner Transport
	P     float64
	Mode  LossMode

	rng     *rand.Rand
	dropped int
}

// NewLossyTransport wraps inner with seeded random loss.
func NewLossyTransport(inner Transport, p float64, mode LossMode, seed int64) (*LossyTransport, error) {
	if inner == nil {
		return nil, errors.New("core: nil inner transport")
	}
	if p < 0 || p >= 1 {
		return nil, fmt.Errorf("core: loss probability %v, want [0, 1)", p)
	}
	return &LossyTransport{Inner: inner, P: p, Mode: mode, rng: rand.New(rand.NewSource(seed))}, nil
}

// Send implements Transport with injected loss. Bootstrap updates are
// never dropped: they ride the connection-establishment handshake, which
// is reliable in any realistic deployment.
func (l *LossyTransport) Send(u Update) error {
	if !u.Bootstrap && l.rng.Float64() < l.P {
		l.dropped++
		if l.Mode == LossSilent {
			return nil
		}
		return ErrDropped
	}
	return l.Inner.Send(u)
}

// Dropped returns how many updates were lost.
func (l *LossyTransport) Dropped() int { return l.dropped }

// ReliableTransport retries a detectably-lossy inner transport until the
// update is delivered or MaxRetries is exhausted. Combined with the DKF
// design decision that the mirror corrects *before* the send, delivery
// must eventually succeed or the session must fail loudly — silently
// giving up would desynchronize the filters.
type ReliableTransport struct {
	Inner      Transport
	MaxRetries int

	retries int
}

// NewReliableTransport wraps inner with up to maxRetries resends.
func NewReliableTransport(inner Transport, maxRetries int) (*ReliableTransport, error) {
	if inner == nil {
		return nil, errors.New("core: nil inner transport")
	}
	if maxRetries < 1 {
		return nil, fmt.Errorf("core: maxRetries = %d, want >= 1", maxRetries)
	}
	return &ReliableTransport{Inner: inner, MaxRetries: maxRetries}, nil
}

// Send implements Transport with retry-until-delivered semantics.
func (r *ReliableTransport) Send(u Update) error {
	var err error
	for attempt := 0; attempt <= r.MaxRetries; attempt++ {
		if attempt > 0 {
			r.retries++
		}
		if err = r.Inner.Send(u); err == nil {
			return nil
		}
		if !errors.Is(err, ErrDropped) {
			return err // a real protocol error, not transit loss
		}
	}
	return fmt.Errorf("core: update %d undeliverable after %d retries: %w", u.Seq, r.MaxRetries, err)
}

// Retries returns the total number of resends performed.
func (r *ReliableTransport) Retries() int { return r.retries }

// NewSessionWithTransport builds a session whose updates flow through a
// caller-supplied transport chain ending at the paired server node. The
// chain is constructed by wrap, which receives the direct-to-server
// transport and returns the transport the source should use.
func NewSessionWithTransport(cfg Config, wrap func(direct Transport) (Transport, error)) (*Session, error) {
	sess, err := NewSession(cfg)
	if err != nil {
		return nil, err
	}
	if wrap != nil {
		tr, err := wrap(DirectTransport{Server: sess.server})
		if err != nil {
			return nil, err
		}
		if tr == nil {
			return nil, errors.New("core: wrap returned nil transport")
		}
		sess.transport = tr
	}
	return sess, nil
}
