package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"streamkf/internal/gen"
	"streamkf/internal/kalman"
	"streamkf/internal/model"
	"streamkf/internal/stream"
)

func linearCfg(delta float64) Config {
	return Config{
		SourceID: "s1",
		Model:    model.Linear(1, 1, 0.05, 0.05),
		Delta:    delta,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := linearCfg(3).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := map[string]Config{
		"empty source": {Model: model.Constant(1, 0.1, 0.1), Delta: 1},
		"bad model":    {SourceID: "s", Delta: 1},
		"zero delta":   {SourceID: "s", Model: model.Constant(1, 0.1, 0.1)},
		"neg F":        {SourceID: "s", Model: model.Constant(1, 0.1, 0.1), Delta: 1, F: -1},
		"neg outlier":  {SourceID: "s", Model: model.Constant(1, 0.1, 0.1), Delta: 1, OutlierNIS: -2},
	}
	for name, cfg := range cases {
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestBootstrapAlwaysTransmits(t *testing.T) {
	src, err := NewSourceNode(linearCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	u, est, err := src.Process(stream.Reading{Seq: 0, Values: []float64{10}})
	if err != nil {
		t.Fatal(err)
	}
	if u == nil || !u.Bootstrap {
		t.Fatalf("first reading must produce a bootstrap update, got %+v", u)
	}
	if est[0] != 10 {
		t.Fatalf("bootstrap estimate = %v, want 10", est)
	}
}

func TestServerRejectsNonBootstrapFirst(t *testing.T) {
	srv, err := NewServerNode(linearCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.ApplyUpdate(Update{SourceID: "s1", Values: []float64{1}}); err == nil {
		t.Fatal("server accepted non-bootstrap first update")
	}
	if _, ok := srv.Estimate(); ok {
		t.Fatal("server has estimate before bootstrap")
	}
	srv.Tick() // must be a harmless no-op before bootstrap
}

func TestProcessDimensionMismatch(t *testing.T) {
	src, _ := NewSourceNode(linearCfg(5))
	if _, _, err := src.Process(stream.Reading{Values: []float64{1, 2}}); err == nil {
		t.Fatal("accepted wrong-arity reading")
	}
}

func TestSuppressionOnPerfectLinearTrend(t *testing.T) {
	// A noiseless ramp matched by a linear model: after the filter locks
	// on, updates must become rare (the fig4 effect).
	sess, err := NewSession(linearCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	sess.CheckSync = true
	data := gen.Ramp(500, 0, 2, 0, 1)
	m, err := sess.Run(data)
	if err != nil {
		t.Fatal(err)
	}
	if m.Readings != 500 {
		t.Fatalf("readings = %d", m.Readings)
	}
	if m.PercentUpdates() > 10 {
		t.Fatalf("linear model on noiseless ramp sent %.1f%% updates, want < 10%%", m.PercentUpdates())
	}
	if m.AvgErr() > 1 {
		t.Fatalf("avg error %v exceeds precision width", m.AvgErr())
	}
}

func TestConstantModelMatchesRampPoorly(t *testing.T) {
	// The ablation behind fig4: a constant model on a steep ramp must
	// update nearly every reading, like the caching baseline.
	cfg := Config{SourceID: "s1", Model: model.Constant(1, 0.05, 0.05), Delta: 1}
	sess, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sess.Run(gen.Ramp(300, 0, 2, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if m.PercentUpdates() < 50 {
		t.Fatalf("constant model on steep ramp sent only %.1f%% updates", m.PercentUpdates())
	}
}

func TestMirrorSynchronyOnNoisyData(t *testing.T) {
	cfg := linearCfg(2)
	sess, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess.CheckSync = true
	if _, err := sess.Run(gen.RandomWalk(1000, 0, 3, 7)); err != nil {
		t.Fatal(err)
	}
	if !kalman.StateEqual(sess.Source().Mirror(), sess.Server().Filter()) {
		t.Fatal("final states differ")
	}
}

func TestMirrorSynchronyProperty(t *testing.T) {
	// Across random workloads, deltas and models, the mirror invariant
	// must hold bit-exactly at every step (CheckSync enforces per step).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		models := []model.Model{
			model.Constant(1, 0.05, 0.05),
			model.Linear(1, 1, 0.05, 0.05),
			model.Acceleration(1, 1, 0.05, 0.05),
		}
		cfg := Config{
			SourceID: "s1",
			Model:    models[rng.Intn(len(models))],
			Delta:    0.5 + rng.Float64()*5,
		}
		sess, err := NewSession(cfg)
		if err != nil {
			return false
		}
		sess.CheckSync = true
		data := gen.RandomWalk(300, rng.NormFloat64()*10, 1+rng.Float64()*4, seed)
		_, err = sess.Run(data)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestErrorNeverExceedsDeltaPlusInnovationSlack(t *testing.T) {
	// On every suppressed step the tracked error is within delta by
	// construction; on update steps the server corrects with the exact
	// measurement. The max error against the *tracked* measurement can
	// exceed delta only on the update step itself before correction —
	// our accounting measures post-correction, so max must be <= delta
	// plus the filter's residual after correction.
	deltas := []float64{0.5, 1, 3, 10}
	for _, d := range deltas {
		sess, err := NewSession(linearCfg(d))
		if err != nil {
			t.Fatal(err)
		}
		m, err := sess.Run(gen.RandomWalk(800, 0, 2, 11))
		if err != nil {
			t.Fatal(err)
		}
		// Post-correction residual is bounded by the innovation times
		// (1 - gain); with our noise settings gain is high, so allow a
		// generous 1.0 slack factor.
		if m.MaxAbsErr > 2*d+1 {
			t.Fatalf("delta=%v: max error %v far exceeds bound", d, m.MaxAbsErr)
		}
	}
}

func TestMonotoneSuppressionInDelta(t *testing.T) {
	// Larger precision width must never produce more updates (fig4/7/11's
	// x-axis behaviour).
	data := gen.MovingObject(gen.MovingObjectConfig{N: 1500, DT: 0.1, MaxSpeed: 300, MinSegment: 30, MaxSegment: 150, NoiseStd: 0.2, Seed: 5})
	prev := math.Inf(1)
	for _, d := range []float64{0.5, 1, 2, 4, 8, 16} {
		cfg := Config{SourceID: "s1", Model: model.Linear(2, 0.1, 0.05, 0.05), Delta: d}
		sess, err := NewSession(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m, err := sess.Run(data)
		if err != nil {
			t.Fatal(err)
		}
		if p := m.PercentUpdates(); p > prev+1e-9 {
			t.Fatalf("updates increased from %.2f%% to %.2f%% as delta grew to %v", prev, p, d)
		} else {
			prev = p
		}
	}
}

func TestSmoothingReducesUpdatesOnNoise(t *testing.T) {
	// The fig11/fig12 effect: on a noisy trendless stream, enabling KFc
	// with small F must cut updates dramatically.
	data := gen.HTTPTraffic(gen.HTTPTrafficConfig{N: 2000, BaseRate: 100, NoiseStd: 30, BurstProb: 0.01, BurstAmp: 200, Seed: 9})
	run := func(F float64) Metrics {
		cfg := Config{SourceID: "s1", Model: model.Linear(1, 1, 0.05, 0.05), Delta: 10, F: F}
		sess, err := NewSession(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m, err := sess.Run(data)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	raw := run(0)
	smoothed := run(1e-7)
	if smoothed.PercentUpdates() >= raw.PercentUpdates() {
		t.Fatalf("smoothing did not reduce updates: %.1f%% vs %.1f%%", smoothed.PercentUpdates(), raw.PercentUpdates())
	}
}

func TestSmoothingMonotoneInF(t *testing.T) {
	// fig12: lowering F lowers the update rate.
	data := gen.HTTPTraffic(gen.HTTPTrafficConfig{N: 2000, BaseRate: 100, NoiseStd: 30, BurstProb: 0.01, BurstAmp: 200, Seed: 9})
	var prev float64 = -1
	for _, F := range []float64{1e-9, 1e-7, 1e-5, 1e-3, 1e-1} {
		cfg := Config{SourceID: "s1", Model: model.Constant(1, 0.05, 0.05), Delta: 10, F: F}
		sess, err := NewSession(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m, err := sess.Run(data)
		if err != nil {
			t.Fatal(err)
		}
		if p := m.PercentUpdates(); p < prev {
			t.Fatalf("updates decreased from %.2f%% to %.2f%% as F grew to %v", prev, p, F)
		} else {
			prev = p
		}
	}
}

func TestSmoothingMultiAttribute(t *testing.T) {
	// A 2-D noisy stream with per-attribute KFc smoothers must suppress
	// far more than the unsmoothed run, and the smoother bank must treat
	// attributes independently.
	rng := rand.New(rand.NewSource(31))
	var data []stream.Reading
	for i := 0; i < 1500; i++ {
		data = append(data, stream.Reading{Seq: i, Values: []float64{
			50 + 20*rng.NormFloat64(),
			-30 + 15*rng.NormFloat64(),
		}})
	}
	run := func(F float64) Metrics {
		cfg := Config{SourceID: "s1", Model: model.Constant(2, 0.05, 0.05), Delta: 8, F: F}
		sess, err := NewSession(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sess.CheckSync = true
		m, err := sess.Run(data)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	raw := run(0)
	smoothed := run(1e-7)
	if smoothed.PercentUpdates() >= raw.PercentUpdates()/2 {
		t.Fatalf("2-D smoothing ineffective: %.1f%% vs %.1f%%", smoothed.PercentUpdates(), raw.PercentUpdates())
	}
	// The smoothed server estimate must sit near each attribute's mean.
	cfg := Config{SourceID: "s1", Model: model.Constant(2, 0.05, 0.05), Delta: 8, F: 1e-7}
	sess, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(data); err != nil {
		t.Fatal(err)
	}
	est, _ := sess.Server().Estimate()
	if math.Abs(est[0]-50) > 10 || math.Abs(est[1]+30) > 10 {
		t.Fatalf("smoothed estimates %v, want near [50, -30]", est)
	}
}

func TestOutlierRejection(t *testing.T) {
	cfg := linearCfg(1)
	cfg.OutlierNIS = 25
	cfg.MaxConsecutiveOutliers = 3
	sess, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess.CheckSync = true
	// Smooth ramp with one absurd glitch.
	data := gen.Ramp(200, 0, 1, 0, 1)
	data[100].Values[0] = 1e5
	m, err := sess.Run(data)
	if err != nil {
		t.Fatal(err)
	}
	if m.OutliersRejected == 0 {
		t.Fatal("glitch was not rejected")
	}
	// The glitch must not have been transmitted as a correction: the
	// server estimate right after must still be near the ramp.
	est, _ := sess.Server().Estimate()
	if math.Abs(est[0]-200) > 20 {
		t.Fatalf("final estimate %v polluted by outlier", est[0])
	}
}

func TestOutlierEscapeAfterRegimeChange(t *testing.T) {
	// A genuine level shift initially looks like outliers; after
	// MaxConsecutiveOutliers readings the protocol must force an update
	// and re-converge.
	cfg := Config{SourceID: "s1", Model: model.Constant(1, 0.05, 0.05), Delta: 1, OutlierNIS: 25, MaxConsecutiveOutliers: 3}
	sess, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess.CheckSync = true
	var data []stream.Reading
	for i := 0; i < 50; i++ {
		data = append(data, stream.Reading{Seq: i, Values: []float64{0}})
	}
	for i := 50; i < 100; i++ {
		data = append(data, stream.Reading{Seq: i, Values: []float64{500}})
	}
	if _, err := sess.Run(data); err != nil {
		t.Fatal(err)
	}
	est, _ := sess.Server().Estimate()
	if math.Abs(est[0]-500) > 5 {
		t.Fatalf("estimate %v never re-converged after regime change", est[0])
	}
}

func TestSessionMetricsAccounting(t *testing.T) {
	sess, err := NewSession(linearCfg(0.001))
	if err != nil {
		t.Fatal(err)
	}
	// Tiny delta: every reading of a noisy walk transmits.
	data := gen.RandomWalk(100, 0, 5, 3)
	m, err := sess.Run(data)
	if err != nil {
		t.Fatal(err)
	}
	if m.Updates < 95 {
		t.Fatalf("updates = %d, want nearly all of 100", m.Updates)
	}
	if m.BytesSent != sess.Source().Stats().BytesSent {
		t.Fatalf("session bytes %d != source bytes %d", m.BytesSent, sess.Source().Stats().BytesSent)
	}
	wantBytes := 0
	for i := 0; i < m.Updates; i++ {
		wantBytes += Update{SourceID: "s1", Values: []float64{0}}.WireBytes()
	}
	if m.BytesSent != wantBytes {
		t.Fatalf("bytes = %d, want %d", m.BytesSent, wantBytes)
	}
	if s := m.String(); s == "" {
		t.Fatal("empty String()")
	}
}

func TestMetricsZeroReadings(t *testing.T) {
	var m Metrics
	if m.PercentUpdates() != 0 || m.AvgErr() != 0 || m.AvgErrRaw() != 0 {
		t.Fatal("zero-reading metrics must be zero")
	}
}

func TestAdaptiveSampler(t *testing.T) {
	if _, err := NewAdaptiveSampler(0, 0.5, 4); err == nil {
		t.Fatal("accepted delta=0")
	}
	if _, err := NewAdaptiveSampler(1, 0, 4); err == nil {
		t.Fatal("accepted alpha=0")
	}
	if _, err := NewAdaptiveSampler(1, 0.5, 0); err == nil {
		t.Fatal("accepted maxStride=0")
	}
	s, err := NewAdaptiveSampler(10, 0.8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s.Stride() != 1 {
		t.Fatalf("initial stride = %d, want 1", s.Stride())
	}
	// Consistently tiny errors → stride widens to max.
	for i := 0; i < 20; i++ {
		s.Observe(0.01)
	}
	if s.Stride() != 8 {
		t.Fatalf("stride after low errors = %d, want 8", s.Stride())
	}
	// Large errors → snap back to 1.
	for i := 0; i < 20; i++ {
		s.Observe(9)
	}
	if s.Stride() != 1 {
		t.Fatalf("stride after high errors = %d, want 1", s.Stride())
	}
	if s.Ratio() <= 0.5 {
		t.Fatalf("ratio = %v, want > 0.5 after large errors", s.Ratio())
	}
}

func TestUpdateWireBytes(t *testing.T) {
	u := Update{SourceID: "abc", Values: []float64{1, 2}}
	if got := u.WireBytes(); got != 8+4+3+16 {
		t.Fatalf("WireBytes = %d, want %d", got, 8+4+3+16)
	}
}

func TestTransportFunc(t *testing.T) {
	called := false
	tr := TransportFunc(func(Update) error { called = true; return nil })
	if err := tr.Send(Update{}); err != nil || !called {
		t.Fatal("TransportFunc did not dispatch")
	}
}

func TestSessionOnMovingObjectEndToEnd(t *testing.T) {
	// Full Example 1 path: 2-D moving object with the paper's linear
	// model, checking suppression and bounded error at delta=3.
	data := gen.MovingObject(gen.MovingObjectConfig{N: 2000, DT: 0.1, MaxSpeed: 500, MinSegment: 20, MaxSegment: 200, NoiseStd: 0.1, Seed: 1})
	cfg := Config{SourceID: "obj", Model: model.Linear(2, 0.1, 0.05, 0.05), Delta: 3}
	sess, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess.CheckSync = true
	m, err := sess.Run(data)
	if err != nil {
		t.Fatal(err)
	}
	if m.PercentUpdates() > 60 {
		t.Fatalf("linear DKF on moving object sent %.1f%%; suppression broken", m.PercentUpdates())
	}
	if m.AvgErr() > 2*3 {
		t.Fatalf("avg error %v too large for delta 3", m.AvgErr())
	}
}
