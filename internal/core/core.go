// Package core implements the paper's primary contribution: the Dual
// Kalman Filter (DKF) protocol for stream update suppression (§3.1,
// Figure 2).
//
// For each continuous query with precision width δ the system installs a
// Kalman filter KFs at the central server and a byte-identical mirror
// filter KFm at the remote source. Both filters advance their prediction
// every time step. The source compares the server's (mirrored) prediction
// against the actual reading; only when the prediction misses by more
// than δ does the source transmit an update, which both filters then fold
// in. An optional smoothing filter KFc at the source, controlled by the
// user's smoothing factor F, pre-filters noisy streams (§4.3).
//
// The load-bearing invariant is mirror synchrony: because KFm and KFs
// start from the same bootstrap measurement and execute the same sequence
// of predict/correct operations, they remain bit-identical forever, so
// the source always knows exactly what the server will answer — without
// any back-channel. kalman.StateEqual checks this, and the property tests
// in this package enforce it.
package core

import (
	"errors"
	"fmt"

	"streamkf/internal/kalman"
	"streamkf/internal/mat"
	"streamkf/internal/model"
	"streamkf/internal/stream"
	"streamkf/internal/trace"
)

// Update is the wire message a source sends to the server when the
// precision constraint would be violated: the raw (or smoothed)
// measurement at sequence Seq.
type Update struct {
	// SourceID identifies the sending source object.
	SourceID string
	// Seq is the reading's discrete time index.
	Seq int
	// Time is the reading's sampling timestamp in seconds. It lets the
	// server maintain a seq↔time mapping so clients can query by wall
	// clock (dsms.AnswerAtTime).
	Time float64
	// Values is the measurement vector folded into both filters.
	Values []float64
	// Bootstrap marks the first update, which initializes rather than
	// corrects the server filter.
	Bootstrap bool
}

// WireBytes estimates the update's size on the wire: an 8-byte header,
// 4-byte sequence number, the source id, and 8 bytes per float64. Used
// for bandwidth and energy accounting.
func (u Update) WireBytes() int {
	return 8 + 4 + len(u.SourceID) + 8*len(u.Values)
}

// Config assembles a DKF deployment for one source/query pair.
type Config struct {
	// SourceID names the source object (Table 2's s_i).
	SourceID string
	// Model is the stream model installed in KFs and KFm.
	Model model.Model
	// Delta is the precision width δ_i.
	Delta float64
	// F, when positive, enables the smoothing filter KFc at the source
	// with process noise covariance F (§4.3). The smoothed value becomes
	// the measurement both KFm and KFs track, per the paper: "KFm
	// considers the output from the smoothing filter as the measurement
	// and operates normally". Multi-attribute streams get one
	// independent one-state smoother per attribute.
	F float64
	// SmootherR is the measurement noise variance assumed by KFc.
	// Defaults to 1 when F > 0 and SmootherR == 0.
	SmootherR float64
	// OutlierNIS, when positive, enables innovation-based outlier
	// rejection at the source (§3.1 advantage 5): a reading whose
	// normalized innovation squared exceeds OutlierNIS is treated as a
	// glitch — neither corrected into the mirror nor transmitted — so
	// mirror synchrony is preserved.
	OutlierNIS float64
	// MaxConsecutiveOutliers bounds how many readings in a row may be
	// rejected before one is force-transmitted, so a genuine regime
	// change cannot be starved. Defaults to 5 when outlier rejection is
	// enabled.
	MaxConsecutiveOutliers int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.SourceID == "" {
		return errors.New("core: Config.SourceID is empty")
	}
	if err := c.Model.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if c.Delta <= 0 {
		return fmt.Errorf("core: Delta = %v, want > 0", c.Delta)
	}
	if c.F < 0 {
		return fmt.Errorf("core: F = %v, want >= 0", c.F)
	}
	if c.OutlierNIS < 0 {
		return fmt.Errorf("core: OutlierNIS = %v, want >= 0", c.OutlierNIS)
	}
	return nil
}

func (c *Config) applyDefaults() {
	if c.F > 0 && c.SmootherR == 0 {
		c.SmootherR = 1
	}
	if c.OutlierNIS > 0 && c.MaxConsecutiveOutliers == 0 {
		c.MaxConsecutiveOutliers = 5
	}
}

// SourceNode runs at the remote source: the mirror filter KFm, the
// optional smoothing filter KFc, and the suppression decision.
type SourceNode struct {
	cfg       Config
	mirror    *kalman.Filter   // KFm, simulating the server's KFs
	smoothers []*kalman.Filter // KFc bank, one per attribute, optional
	outliers  int              // consecutive rejected readings
	stats     SourceStats

	// Reusable buffers for the per-reading hot path. zbuf carries the
	// measurement into NIS/Correct; predBuf receives H x. Slices handed
	// back to callers are always freshly allocated — only the matrix
	// intermediates are recycled.
	zbuf       *mat.Matrix
	predBuf    *mat.Matrix
	smoothBuf  []float64
	smoothZ    *mat.Matrix // 1 x 1 measurement for the KFc bank
	smoothPred *mat.Matrix // 1 x 1 prediction from the KFc bank

	// Flight recorder (nil when tracing is off: every recording site is
	// one branch), the per-reading trace id counter, and the evidence of
	// the latest suppression decision. lastDec is maintained even with
	// tracing off — a handful of scalar stores — so transports can ship
	// it the moment tracing is enabled.
	tr       *trace.Recorder
	traceSeq int64
	lastDec  trace.DecisionInfo
}

// SourceStats counts source-side protocol events.
type SourceStats struct {
	// Readings is the number of sensor readings processed.
	Readings int
	// Updates is the number of transmissions to the server.
	Updates int
	// Suppressed is the number of readings filtered out.
	Suppressed int
	// OutliersRejected counts readings dropped by the NIS gate.
	OutliersRejected int
	// BytesSent accumulates Update.WireBytes over all transmissions.
	BytesSent int
}

// NewSourceNode constructs the source side of a DKF pair.
func NewSourceNode(cfg Config) (*SourceNode, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.applyDefaults()
	m := cfg.Model.MeasDim
	return &SourceNode{cfg: cfg, zbuf: mat.New(m, 1), predBuf: mat.New(m, 1)}, nil
}

// smooth returns the measurement KFm tracks for the raw reading values:
// the output of the KFc bank when smoothing is enabled (one independent
// one-state smoother per attribute), the raw values otherwise. It
// advances KFc, so call exactly once per reading (Process does).
func (s *SourceNode) smooth(raw []float64) ([]float64, error) {
	if s.cfg.F <= 0 {
		return raw, nil
	}
	if s.smoothers == nil {
		s.smoothers = make([]*kalman.Filter, len(raw))
		m := model.Smoothing(s.cfg.F, s.cfg.SmootherR)
		for i, v := range raw {
			f, err := m.NewFilter([]float64{v})
			if err != nil {
				return nil, err
			}
			s.smoothers[i] = f
		}
		return clone(raw), nil
	}
	if s.smoothBuf == nil {
		s.smoothBuf = make([]float64, len(raw))
		s.smoothZ = mat.New(1, 1)
		s.smoothPred = mat.New(1, 1)
	}
	out := s.smoothBuf
	for i, v := range raw {
		f := s.smoothers[i]
		f.Predict()
		s.smoothZ.Set(0, 0, v)
		if err := f.Correct(s.smoothZ); err != nil {
			return nil, err
		}
		out[i] = f.PredictedMeasurementInto(s.smoothPred).At(0, 0)
	}
	return out, nil
}

// smoothedEstimate returns the KFc bank's current output, used by the
// session for error accounting against the tracked measurement.
func (s *SourceNode) smoothedEstimate() []float64 {
	out := make([]float64, len(s.smoothers))
	for i, f := range s.smoothers {
		out[i] = f.PredictedMeasurement().At(0, 0)
	}
	return out
}

// SetTrace attaches a flight recorder to the node. A nil recorder (the
// default) disables tracing; every recording site is then one branch.
func (s *SourceNode) SetTrace(tr *trace.Recorder) { s.tr = tr }

// Tracer returns the attached flight recorder, nil when tracing is off.
func (s *SourceNode) Tracer() *trace.Recorder { return s.tr }

// LastDecision returns the evidence of the most recent Process
// decision: what was measured, what the mirror predicted, the residual
// against δ, and the outcome. Transports ship it next to the update it
// explains (wire.TagTrace).
func (s *SourceNode) LastDecision() trace.DecisionInfo { return s.lastDec }

// Process handles one sensor reading. It returns a non-nil Update when
// the reading must be transmitted to the server, and the value the server
// will be answering queries with after this step (the mirrored server
// estimate).
func (s *SourceNode) Process(r stream.Reading) (*Update, []float64, error) {
	if len(r.Values) != s.cfg.Model.MeasDim {
		return nil, nil, fmt.Errorf("core: reading has %d values, model %s wants %d", len(r.Values), s.cfg.Model.Name, s.cfg.Model.MeasDim)
	}
	s.stats.Readings++
	s.traceSeq++
	traceID := s.traceSeq
	seq := int64(r.Seq)
	raw := r.Values[0]
	v, err := s.smooth(r.Values)
	if err != nil {
		return nil, nil, err
	}
	// Sampling gates only the routine per-reading trail (smooth,
	// predict, suppress); sends, bootstraps and outlier rejections are
	// always recorded — they are the rare, interesting events.
	sampled := s.tr.Sampled(seq)
	if sampled && s.cfg.F > 0 {
		s.tr.Record(&trace.Event{TraceID: traceID, Seq: seq, Kind: trace.KindSmooth, Raw: raw, Value: v[0]})
	}
	if s.mirror == nil {
		// Bootstrap: first measurement initializes both filters.
		f, err := s.cfg.Model.NewFilter(v)
		if err != nil {
			return nil, nil, err
		}
		s.mirror = f
		u := &Update{SourceID: s.cfg.SourceID, Seq: r.Seq, Time: r.Time, Values: clone(v), Bootstrap: true}
		s.stats.Updates++
		s.stats.BytesSent += u.WireBytes()
		s.lastDec = trace.DecisionInfo{TraceID: traceID, Seq: seq, Decision: trace.DecisionBootstrap, Raw: raw, Smoothed: v[0], Delta: s.cfg.Delta}
		if s.tr != nil {
			s.tr.Record(&trace.Event{TraceID: traceID, Seq: seq, Kind: trace.KindDecision, Dec: trace.DecisionBootstrap, Raw: raw, Value: v[0], Delta: s.cfg.Delta})
		}
		return u, s.mirror.PredictedMeasurementInto(s.predBuf).VecSlice(), nil
	}

	s.mirror.Predict()
	pred := s.mirror.PredictedMeasurementInto(s.predBuf).VecSlice()
	// The max-abs residual both decides suppression (residual <= δ is
	// exactly stream.WithinPrecision) and is the numeric evidence the
	// trace records.
	residual := maxAbsResidual(pred, v)

	if residual <= s.cfg.Delta {
		// The server's prediction is good enough: suppress.
		s.stats.Suppressed++
		s.outliers = 0
		s.lastDec = trace.DecisionInfo{TraceID: traceID, Seq: seq, Decision: trace.DecisionSuppress, Raw: raw, Smoothed: v[0], Pred: pred[0], Residual: residual, Delta: s.cfg.Delta}
		if sampled {
			s.tr.Record(&trace.Event{TraceID: traceID, Seq: seq, Kind: trace.KindPredict, Raw: raw, Value: v[0], Pred: pred[0], Residual: residual, Delta: s.cfg.Delta})
			s.tr.Record(&trace.Event{TraceID: traceID, Seq: seq, Kind: trace.KindDecision, Dec: trace.DecisionSuppress, Raw: raw, Value: v[0], Pred: pred[0], Residual: residual, Delta: s.cfg.Delta})
		}
		return nil, pred, nil
	}
	if sampled {
		s.tr.Record(&trace.Event{TraceID: traceID, Seq: seq, Kind: trace.KindPredict, Raw: raw, Value: v[0], Pred: pred[0], Residual: residual, Delta: s.cfg.Delta})
	}

	z := vecInto(s.zbuf, v)
	var lastNIS float64
	if s.cfg.OutlierNIS > 0 && s.outliers < s.cfg.MaxConsecutiveOutliers {
		nis, err := s.mirror.NIS(z)
		if err == nil {
			lastNIS = nis
			if nis > s.cfg.OutlierNIS {
				// Glitch: reject without transmitting. The mirror keeps its
				// prediction, exactly as the server will, so synchrony holds.
				s.outliers++
				s.stats.OutliersRejected++
				s.lastDec = trace.DecisionInfo{TraceID: traceID, Seq: seq, Decision: trace.DecisionOutlier, Raw: raw, Smoothed: v[0], Pred: pred[0], Residual: residual, Delta: s.cfg.Delta, NIS: nis}
				if s.tr != nil {
					s.tr.Record(&trace.Event{TraceID: traceID, Seq: seq, Kind: trace.KindDecision, Dec: trace.DecisionOutlier, Raw: raw, Value: v[0], Pred: pred[0], Residual: residual, Delta: s.cfg.Delta, NIS: nis})
				}
				return nil, pred, nil
			}
		}
	}
	s.outliers = 0

	if err := s.mirror.Correct(z); err != nil {
		return nil, nil, err
	}
	u := &Update{SourceID: s.cfg.SourceID, Seq: r.Seq, Time: r.Time, Values: clone(v)}
	s.stats.Updates++
	s.stats.BytesSent += u.WireBytes()
	s.lastDec = trace.DecisionInfo{TraceID: traceID, Seq: seq, Decision: trace.DecisionSend, Raw: raw, Smoothed: v[0], Pred: pred[0], Residual: residual, Delta: s.cfg.Delta, NIS: lastNIS}
	if s.tr != nil {
		s.tr.Record(&trace.Event{TraceID: traceID, Seq: seq, Kind: trace.KindDecision, Dec: trace.DecisionSend, Raw: raw, Value: v[0], Pred: pred[0], Residual: residual, Delta: s.cfg.Delta, NIS: lastNIS})
	}
	return u, s.mirror.PredictedMeasurementInto(s.predBuf).VecSlice(), nil
}

// maxAbsResidual returns max_i |pred[i] - v[i]| — the residual the
// suppression decision compares against δ. Comparing it to delta with
// <= is equivalent to stream.WithinPrecision (NaN components never
// raise the max, matching WithinPrecision's NaN behavior).
func maxAbsResidual(pred, v []float64) float64 {
	var m float64
	for i := range pred {
		d := pred[i] - v[i]
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}

// Stats returns the source-side counters.
func (s *SourceNode) Stats() SourceStats { return s.stats }

// Mirror exposes the mirror filter for invariant checks and diagnostics;
// nil before the bootstrap reading.
func (s *SourceNode) Mirror() *kalman.Filter { return s.mirror }

// ServerNode runs at the central server: KFs, which answers queries from
// its prediction and folds in the updates the source chooses to send.
//
// The node is sequence-driven: it tracks the last reading index it has
// advanced its prediction to, so in a distributed deployment — where the
// server sees only the sparse update stream — AdvanceTo lazily runs the
// predict steps for all suppressed readings in between. Because those
// steps are exactly the ones the mirror executed eagerly, synchrony holds
// whenever both sides are aligned at the same sequence number.
type ServerNode struct {
	cfg     Config
	filter  *kalman.Filter // KFs
	ticks   int
	lastSeq int

	zbuf    *mat.Matrix // reusable measurement buffer for ApplyUpdate
	predBuf *mat.Matrix // reusable H x buffer for Estimate

	// Filter-health diagnostics over the transmitted-update stream: the
	// NIS of the latest update against the pre-correction prediction and
	// a sliding window of innovations for the whiteness statistic. Both
	// are maintained allocation-free once the window is warm.
	lastNIS  float64
	nisValid bool
	health   *kalman.NoiseEstimator

	// Divergence tap: the max-abs innovation |z - H x̂⁻| of the latest
	// non-bootstrap update against the pre-correction prediction — the
	// same units as δ, so the trace audit can compare them directly.
	lastInnov  float64
	innovValid bool
}

// healthWindow is the number of recent innovations the per-stream
// whiteness statistic is computed over. Small enough to track regime
// changes, large enough that the ±2/√W band is meaningful.
const healthWindow = 16

// NewServerNode constructs the server side of a DKF pair.
func NewServerNode(cfg Config) (*ServerNode, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.applyDefaults()
	m := cfg.Model.MeasDim
	// The estimator is used only for its innovation window (whiteness);
	// the floor argument is irrelevant but must be positive.
	health, err := kalman.NewNoiseEstimator(m, healthWindow, 1e-12)
	if err != nil {
		return nil, err
	}
	return &ServerNode{cfg: cfg, zbuf: mat.New(m, 1), predBuf: mat.New(m, 1), health: health}, nil
}

// Tick advances the server's prediction by one time step on which no
// update arrived. Before bootstrap it is a no-op (the server has no
// estimate yet).
func (s *ServerNode) Tick() {
	if s.filter == nil {
		return
	}
	s.filter.Predict()
	s.ticks++
	s.lastSeq++
}

// AdvanceTo runs predict steps until the node's prediction corresponds to
// reading index seq. A no-op before bootstrap or when already at or past
// seq.
func (s *ServerNode) AdvanceTo(seq int) {
	if s.filter == nil {
		return
	}
	for s.lastSeq < seq {
		s.Tick()
	}
}

// Seq returns the reading index the node's estimate corresponds to.
func (s *ServerNode) Seq() int { return s.lastSeq }

// ApplyUpdate folds a transmitted update into KFs. The first (bootstrap)
// update initializes the filter; subsequent updates advance prediction up
// to the update's sequence number and correct, exactly mirroring the
// source's operation sequence.
//
// A bootstrap update on an already-bootstrapped node re-initializes it:
// that is a source that lost its mirror state (e.g. the sensor process
// restarted) starting a fresh DKF session, and folding its bootstrap as
// a correction would desynchronize the new mirror forever. The health
// window resets with the filter.
func (s *ServerNode) ApplyUpdate(u Update) error {
	if s.filter == nil || u.Bootstrap {
		if !u.Bootstrap {
			return fmt.Errorf("core: first update for %s is not a bootstrap", u.SourceID)
		}
		f, err := s.cfg.Model.NewFilter(u.Values)
		if err != nil {
			return err
		}
		if s.filter != nil {
			// Re-bootstrap: discard diagnostics from the previous session.
			s.lastNIS, s.nisValid = 0, false
			s.lastInnov, s.innovValid = 0, false
			s.health.RestoreWindow(nil)
		}
		s.filter = f
		s.lastSeq = u.Seq
		return nil
	}
	if u.Seq < s.lastSeq {
		// A query already advanced the prediction beyond this update's
		// time step: correcting now would run the server's filter ahead
		// of the mirror's operation sequence and desynchronize them.
		return fmt.Errorf("core: update for %s at seq %d arrived after prediction advanced to seq %d", u.SourceID, u.Seq, s.lastSeq)
	}
	// AdvanceTo is a no-op when a query already advanced exactly to
	// u.Seq; in that case the server has performed precisely the same
	// number of predicts as the mirror and the correction aligns.
	s.AdvanceTo(u.Seq)
	z := s.zbuf
	if len(u.Values) == z.Rows() {
		vecInto(z, u.Values)
		// Divergence tap: distance between the pre-correction prediction
		// and the transmitted measurement, in measurement units. One H x
		// into the reusable buffer per transmitted update — allocation
		// free, and transmitted updates are the rare case by design.
		pm := s.filter.PredictedMeasurementInto(s.predBuf)
		var innov float64
		for i := range u.Values {
			d := u.Values[i] - pm.At(i, 0)
			if d < 0 {
				d = -d
			}
			if d > innov {
				innov = d
			}
		}
		s.lastInnov, s.innovValid = innov, true
	} else {
		// Malformed update: hand the filter a fresh vector so it reports
		// the dimension error itself, as it always has.
		z = vec(u.Values)
	}
	// Health tap: score the update against the pre-correction prediction.
	// NIS shares the cached innovation covariance with Correct, so this
	// adds one quadratic form, no allocation, and no second inversion.
	if nis, err := s.filter.NIS(z); err == nil {
		s.lastNIS, s.nisValid = nis, true
	}
	if err := s.filter.Correct(z); err != nil {
		return err
	}
	s.health.ObserveFilter(s.filter)
	return nil
}

// FilterHealth is the server-side diagnostic snapshot for one stream's
// filter, derived from the transmitted-update innovation sequence.
//
// Transmitted updates are by construction the readings the mirror's
// prediction missed by more than δ, so their innovations are not an
// unbiased sample of the full innovation sequence; the whiteness flag is
// a mis-model detector (persistent one-sided innovations), not a strict
// χ² consistency test.
type FilterHealth struct {
	// NIS is the normalized innovation squared of the latest update
	// against the pre-correction prediction. Under a correct model it is
	// χ²(m)-distributed; persistently large values mean the model no
	// longer explains the stream.
	NIS float64
	// NISValid reports whether NIS has been computed (false until the
	// first non-bootstrap update).
	NISValid bool
	// Whiteness is the lag-1 autocorrelation of recent innovations; ~0
	// for a healthy filter.
	Whiteness float64
	// Ready reports whether the whiteness window has filled.
	Ready bool
	// Healthy is false when the whiteness window is full and Whiteness
	// exceeds the +2/√window acceptance bound — the "model mismatch"
	// gauge exposed per stream on /metrics.
	//
	// The test is one-sided because the server only sees δ-censored
	// innovations: send-on-delta truncates the small ones and the
	// correction after a drift tends to overshoot alternately, so a
	// correctly modeled stream shows zero-to-negative lag-1
	// autocorrelation. A model whose dynamics cannot track the stream
	// lags it persistently, pushing the innovations the same way update
	// after update — sustained positive correlation is the mis-model
	// signature.
	Healthy bool
}

// LastInnovation returns the max-abs innovation of the latest
// non-bootstrap update against the pre-correction prediction, and
// whether one has been observed. It shares units with δ: a value above
// δ is the expected signature of a transmitted update (the mirror's
// prediction missed), a value at or below δ is broken-mirror evidence.
func (s *ServerNode) LastInnovation() (float64, bool) { return s.lastInnov, s.innovValid }

// LastNIS returns the normalized innovation squared of the latest
// non-bootstrap update, and whether one has been computed. Unlike
// Health it touches no window state, so the ingest hot path can record
// the score without paying for the whiteness scan.
func (s *ServerNode) LastNIS() (float64, bool) { return s.lastNIS, s.nisValid }

// Health returns the stream's current filter-health diagnostics. It is
// allocation-free and safe to call on every ingest.
func (s *ServerNode) Health() FilterHealth {
	h := FilterHealth{NIS: s.lastNIS, NISValid: s.nisValid, Healthy: true}
	if s.filter == nil {
		return h
	}
	rho, ready := s.health.Whiteness()
	h.Whiteness, h.Ready = rho, ready
	if ready && rho > s.health.WhitenessBound() {
		h.Healthy = false
	}
	return h
}

// Estimate returns the server's current answer for the stream value, or
// ok=false before the bootstrap update arrives.
func (s *ServerNode) Estimate() (values []float64, ok bool) {
	if s.filter == nil {
		return nil, false
	}
	return s.filter.PredictedMeasurementInto(s.predBuf).VecSlice(), true
}

// Filter exposes KFs for invariant checks and diagnostics; nil before
// bootstrap.
func (s *ServerNode) Filter() *kalman.Filter { return s.filter }

// Bootstrapped reports whether the bootstrap update has arrived and the
// node answers queries.
func (s *ServerNode) Bootstrapped() bool { return s.filter != nil }

// NodeSnapshot is the complete mutable state of a bootstrapped
// ServerNode, in serialization-ready form: everything a checkpoint must
// persist so a restored node continues the exact same trajectory. The
// model itself is not included — it travels by name, like the DKF
// install handshake — so the restoring side must construct the node
// from the same Config.
type NodeSnapshot struct {
	X     []float64 // state estimate, n values
	P     []float64 // error covariance, n*n values row-major
	K     int       // filter discrete time index (Predict count)
	Seq   int       // reading index the prediction corresponds to
	Ticks int       // no-update predict steps taken

	LastNIS  float64
	NISValid bool
	// Innovations is the health monitor's whiteness window, oldest
	// first, each m values.
	Innovations [][]float64
}

// Snapshot captures the node's state for a checkpoint, or nil before
// bootstrap (an unbootstrapped node has nothing to persist: recovery
// reconstructs it from its Config alone).
func (s *ServerNode) Snapshot() *NodeSnapshot {
	if s.filter == nil {
		return nil
	}
	return &NodeSnapshot{
		X:           s.filter.State().VecSlice(),
		P:           s.filter.Cov().DataCopy(),
		K:           s.filter.K(),
		Seq:         s.lastSeq,
		Ticks:       s.ticks,
		LastNIS:     s.lastNIS,
		NISValid:    s.nisValid,
		Innovations: s.health.Window(),
	}
}

// RestoreSnapshot rebuilds the node's filter and diagnostics from a
// Snapshot taken on a node with the same Config. The restored filter is
// bit-identical in (x, P, k), so every subsequent Predict/Correct — and
// therefore every query answer — matches the snapshotted node exactly.
func (s *ServerNode) RestoreSnapshot(snap *NodeSnapshot) error {
	if snap == nil {
		return errors.New("core: nil node snapshot")
	}
	n := s.cfg.Model.Dim
	if len(snap.X) != n || len(snap.P) != n*n {
		return fmt.Errorf("core: snapshot for %s has %d states / %d covariances, model %s wants %d / %d",
			s.cfg.SourceID, len(snap.X), len(snap.P), s.cfg.Model.Name, n, n*n)
	}
	// Construct through the model's own bootstrap path so the filter
	// carries the right matrices, then overwrite the mutable state.
	f, err := s.cfg.Model.NewFilter(make([]float64, s.cfg.Model.MeasDim))
	if err != nil {
		return err
	}
	f.Restore(mat.FromSlice(n, 1, snap.X), mat.FromSlice(n, n, snap.P), snap.K)
	if err := s.health.RestoreWindow(snap.Innovations); err != nil {
		return err
	}
	s.filter = f
	s.lastSeq = snap.Seq
	s.ticks = snap.Ticks
	s.lastNIS = snap.LastNIS
	s.nisValid = snap.NISValid
	return nil
}

func clone(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

func vec(v []float64) *mat.Matrix { return mat.Vec(v...) }

// vecInto copies v into the reusable column buffer buf (len(v) must equal
// buf.Rows()) and returns buf.
func vecInto(buf *mat.Matrix, v []float64) *mat.Matrix {
	for i, x := range v {
		buf.Set(i, 0, x)
	}
	return buf
}
