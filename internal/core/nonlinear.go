package core

import (
	"fmt"

	"streamkf/internal/mat"
	"streamkf/internal/model"
	"streamkf/internal/stream"
)

// NonlinearConfig assembles an EKF-based DKF deployment (the paper's
// future work item 3: "developing models for non-linear systems"). The
// protocol is unchanged — predict every step, transmit only on a δ miss,
// correct both sides on transmission — with extended Kalman filters in
// place of the linear pair. The EKF linearizes at its own estimate, and
// because the mirror and server estimates are identical by construction,
// both sides linearize identically and synchrony is preserved.
type NonlinearConfig struct {
	// SourceID names the source object.
	SourceID string
	// Model is the non-linear stream model.
	Model model.Nonlinear
	// Delta is the precision width δ.
	Delta float64
}

// Validate checks the configuration.
func (c NonlinearConfig) Validate() error {
	if c.SourceID == "" {
		return fmt.Errorf("core: NonlinearConfig.SourceID is empty")
	}
	if err := c.Model.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if c.Delta <= 0 {
		return fmt.Errorf("core: Delta = %v, want > 0", c.Delta)
	}
	return nil
}

// NonlinearSession runs the DKF protocol over a pair of extended Kalman
// filters in process, with the same metrics as Session.
type NonlinearSession struct {
	cfg     NonlinearConfig
	source  *ekfNode // mirror
	server  *ekfNode // KFs
	metrics Metrics
	prevSeq int
}

// ekfNode is one side of the nonlinear pair.
type ekfNode struct {
	filter interface {
		Predict()
		Correct(z *mat.Matrix) error
		PredictedMeasurement() *mat.Matrix
		State() *mat.Matrix
		Cov() *mat.Matrix
	}
}

// NewNonlinearSession builds the EKF source/server pair.
func NewNonlinearSession(cfg NonlinearConfig) (*NonlinearSession, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &NonlinearSession{cfg: cfg, source: &ekfNode{}, server: &ekfNode{}}, nil
}

// Step processes one reading through the protocol and returns the
// server-side estimate.
func (s *NonlinearSession) Step(r stream.Reading) ([]float64, error) {
	if len(r.Values) != s.cfg.Model.MeasDim {
		return nil, fmt.Errorf("core: reading has %d values, model %s wants %d", len(r.Values), s.cfg.Model.Name, s.cfg.Model.MeasDim)
	}
	if s.metrics.Readings > 0 && r.Seq != s.prevSeq+1 {
		return nil, fmt.Errorf("core: NonlinearSession requires consecutive sequence numbers, got %d after %d", r.Seq, s.prevSeq)
	}
	s.prevSeq = r.Seq
	s.metrics.Readings++

	if s.source.filter == nil {
		// Bootstrap both filters from the first measurement.
		mf, err := s.cfg.Model.NewEKF(r.Values)
		if err != nil {
			return nil, err
		}
		sf, err := s.cfg.Model.NewEKF(r.Values)
		if err != nil {
			return nil, err
		}
		s.source.filter, s.server.filter = mf, sf
		s.metrics.Updates++
		s.metrics.BytesSent += Update{SourceID: s.cfg.SourceID, Seq: r.Seq, Values: r.Values, Bootstrap: true}.WireBytes()
		return mf.PredictedMeasurement().VecSlice(), nil
	}

	s.source.filter.Predict()
	s.server.filter.Predict()
	pred := s.source.filter.PredictedMeasurement().VecSlice()

	var est []float64
	if stream.WithinPrecision(pred, r.Values, s.cfg.Delta) {
		est = pred
	} else {
		z := mat.Vec(r.Values...)
		if err := s.source.filter.Correct(z); err != nil {
			return nil, err
		}
		if err := s.server.filter.Correct(z); err != nil {
			return nil, err
		}
		s.metrics.Updates++
		s.metrics.BytesSent += Update{SourceID: s.cfg.SourceID, Seq: r.Seq, Values: r.Values}.WireBytes()
		est = s.server.filter.PredictedMeasurement().VecSlice()
	}

	e := stream.AbsErrorSum(r.Values, est)
	s.metrics.SumAbsErr += e
	s.metrics.SumAbsErrRaw += e
	if e > s.metrics.MaxAbsErr {
		s.metrics.MaxAbsErr = e
	}
	return est, nil
}

// Run drives a whole dataset through the protocol.
func (s *NonlinearSession) Run(readings []stream.Reading) (Metrics, error) {
	for _, r := range readings {
		if _, err := s.Step(r); err != nil {
			return s.metrics, err
		}
	}
	return s.metrics, nil
}

// Metrics returns the counters so far.
func (s *NonlinearSession) Metrics() Metrics { return s.metrics }

// InSync reports whether the mirror and server EKFs hold identical state
// and covariance — the nonlinear mirror-synchrony invariant.
func (s *NonlinearSession) InSync() bool {
	if s.source.filter == nil || s.server.filter == nil {
		return s.source.filter == s.server.filter
	}
	return mat.Equal(s.source.filter.State(), s.server.filter.State()) &&
		mat.Equal(s.source.filter.Cov(), s.server.filter.Cov())
}
