package core

import (
	"math"
	"testing"

	"streamkf/internal/gen"
	"streamkf/internal/kalman"
	"streamkf/internal/model"
	"streamkf/internal/stream"
)

func TestServerNodeAdvanceToAndSeq(t *testing.T) {
	srv, err := NewServerNode(linearCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	srv.AdvanceTo(10) // no-op before bootstrap
	if srv.Seq() != 0 {
		t.Fatalf("pre-bootstrap Seq = %d", srv.Seq())
	}
	if err := srv.ApplyUpdate(Update{SourceID: "s1", Seq: 5, Values: []float64{2}, Bootstrap: true}); err != nil {
		t.Fatal(err)
	}
	if srv.Seq() != 5 {
		t.Fatalf("bootstrap Seq = %d, want 5", srv.Seq())
	}
	srv.AdvanceTo(8)
	if srv.Seq() != 8 {
		t.Fatalf("Seq after AdvanceTo(8) = %d", srv.Seq())
	}
	srv.AdvanceTo(3) // never rewinds
	if srv.Seq() != 8 {
		t.Fatalf("AdvanceTo rewound to %d", srv.Seq())
	}
}

func TestServerNodeUpdateAtCurrentSeqAllowed(t *testing.T) {
	// A query may have lazily advanced the prediction to exactly the
	// update's seq; correcting there is synchronous and must succeed.
	cfg := linearCfg(1)
	srv, err := NewServerNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewSourceNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	u, _, err := src.Process(stream.Reading{Seq: 0, Values: []float64{0}})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.ApplyUpdate(*u); err != nil {
		t.Fatal(err)
	}
	// Query advances the server to seq 1 before the source's update
	// for seq 1 arrives.
	srv.AdvanceTo(1)
	u2, _, err := src.Process(stream.Reading{Seq: 1, Values: []float64{100}})
	if err != nil {
		t.Fatal(err)
	}
	if u2 == nil {
		t.Fatal("expected an update for the jump to 100")
	}
	if err := srv.ApplyUpdate(*u2); err != nil {
		t.Fatalf("aligned-seq update rejected: %v", err)
	}
	if !kalman.StateEqual(src.Mirror(), srv.Filter()) {
		t.Fatal("mirror out of sync after aligned-seq correction")
	}
}

func TestServerNodeUpdateBehindPredictionRejected(t *testing.T) {
	cfg := linearCfg(1)
	srv, err := NewServerNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.ApplyUpdate(Update{SourceID: "s1", Seq: 0, Values: []float64{0}, Bootstrap: true}); err != nil {
		t.Fatal(err)
	}
	srv.AdvanceTo(10)
	err = srv.ApplyUpdate(Update{SourceID: "s1", Seq: 4, Values: []float64{1}})
	if err == nil {
		t.Fatal("accepted update behind the advanced prediction")
	}
}

func TestSessionRejectsNonConsecutiveSeq(t *testing.T) {
	sess, err := NewSession(linearCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Step(stream.Reading{Seq: 0, Values: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Step(stream.Reading{Seq: 7, Values: []float64{1}}); err == nil {
		t.Fatal("accepted a sequence gap")
	}
}

func TestServerExtrapolatesWhileSourceSilent(t *testing.T) {
	// The headline capability: after the source goes silent on a locked
	// trend, the server's AdvanceTo answers future queries by
	// extrapolation.
	cfg := linearCfg(1)
	sess, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data := gen.Ramp(200, 0, 2, 0, 1)
	if _, err := sess.Run(data); err != nil {
		t.Fatal(err)
	}
	sess.Server().AdvanceTo(250)
	est, ok := sess.Server().Estimate()
	if !ok {
		t.Fatal("no estimate")
	}
	if math.Abs(est[0]-500) > 5 {
		t.Fatalf("extrapolated estimate %v, want ~500", est[0])
	}
}

func TestServerNodeHealth(t *testing.T) {
	cfg := linearCfg(0.5)
	srv, err := NewServerNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Health()
	if h.NISValid || h.Ready || !h.Healthy {
		t.Fatalf("pre-bootstrap health = %+v, want zero-valued and healthy", h)
	}
	if err := srv.ApplyUpdate(Update{SourceID: "s1", Seq: 0, Values: []float64{0}, Bootstrap: true}); err != nil {
		t.Fatal(err)
	}
	if h := srv.Health(); h.NISValid {
		t.Fatal("NIS valid after bootstrap alone (no innovation yet)")
	}
	// Feed updates every step; the linear model tracks a ramp well, so
	// NIS becomes available and stays finite.
	for seq := 1; seq <= healthWindow+2; seq++ {
		u := Update{SourceID: "s1", Seq: seq, Values: []float64{float64(seq)}}
		if err := srv.ApplyUpdate(u); err != nil {
			t.Fatal(err)
		}
	}
	h = srv.Health()
	if !h.NISValid {
		t.Fatal("NIS not valid after non-bootstrap updates")
	}
	if !h.Ready {
		t.Fatalf("whiteness window not ready after %d updates", healthWindow+2)
	}
	if math.IsNaN(h.NIS) || math.IsInf(h.NIS, 0) || h.NIS < 0 {
		t.Fatalf("NIS = %v, want finite non-negative", h.NIS)
	}
}

// TestServerNodeHealthFlagsMisModel drives a constant-model filter with
// an accelerating stream: every innovation lands on the same side, the
// lag-1 autocorrelation pins near 1, and the health flag must drop.
func TestServerNodeHealthFlagsMisModel(t *testing.T) {
	m := model.Constant(1, 0.0005, 0.05)
	cfg := Config{SourceID: "s1", Model: m, Delta: 0.5}
	srv, err := NewServerNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.ApplyUpdate(Update{SourceID: "s1", Seq: 0, Values: []float64{0}, Bootstrap: true}); err != nil {
		t.Fatal(err)
	}
	for seq := 1; seq <= healthWindow+4; seq++ {
		v := float64(seq) * float64(seq) // acceleration a constant model cannot express
		if err := srv.ApplyUpdate(Update{SourceID: "s1", Seq: seq, Values: []float64{v}}); err != nil {
			t.Fatal(err)
		}
	}
	h := srv.Health()
	if !h.Ready {
		t.Fatal("whiteness window not ready")
	}
	if h.Healthy {
		t.Fatalf("mis-modeled stream reported healthy (whiteness %v)", h.Whiteness)
	}
	if h.Whiteness < 0.5 {
		t.Fatalf("whiteness = %v, want strongly positive for one-sided innovations", h.Whiteness)
	}
}
