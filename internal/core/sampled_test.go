package core

import (
	"testing"

	"streamkf/internal/gen"
	"streamkf/internal/model"
	"streamkf/internal/stream"
)

func newSampled(t *testing.T, delta float64, maxStride int) *SampledSession {
	t.Helper()
	sampler, err := NewAdaptiveSampler(delta, 0.5, maxStride)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSampledSession(linearCfg(delta), sampler)
	if err != nil {
		t.Fatal(err)
	}
	return sess
}

func TestNewSampledSessionNilSampler(t *testing.T) {
	if _, err := NewSampledSession(linearCfg(1), nil); err == nil {
		t.Fatal("accepted nil sampler")
	}
}

func TestSampledSkipsOnPredictableStream(t *testing.T) {
	sess := newSampled(t, 2, 16)
	m, err := sess.Run(gen.Ramp(1000, 0, 1.5, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if m.Skipped == 0 {
		t.Fatal("sampler never skipped on a noiseless ramp")
	}
	if m.PercentSensed() > 40 {
		t.Fatalf("duty cycle %.1f%% on a trivially predictable stream", m.PercentSensed())
	}
	// Sleeping must not wreck accuracy: the model extrapolates the ramp.
	if m.AvgErr() > 4 {
		t.Fatalf("avg error %v with sampling, want small on a ramp", m.AvgErr())
	}
	if m.Sensed+m.Skipped != m.Readings {
		t.Fatalf("sensed %d + skipped %d != readings %d", m.Sensed, m.Skipped, m.Readings)
	}
}

func TestSampledSensesEverythingOnChaos(t *testing.T) {
	sess := newSampled(t, 1, 16)
	m, err := sess.Run(gen.RandomWalk(500, 0, 5, 3))
	if err != nil {
		t.Fatal(err)
	}
	if m.PercentSensed() < 80 {
		t.Fatalf("duty cycle %.1f%% on an unpredictable stream, want near 100%%", m.PercentSensed())
	}
}

func TestSampledMirrorStaysInSyncWithServer(t *testing.T) {
	// After any run, advancing the server to the mirror's step must make
	// them agree — skipped steps are covered by lazy prediction.
	sess := newSampled(t, 2, 8)
	data := gen.Ramp(300, 0, 2, 0.05, 4)
	if _, err := sess.Run(data); err != nil {
		t.Fatal(err)
	}
	sess.server.AdvanceTo(data[len(data)-1].Seq)
	srvEst, ok := sess.server.Estimate()
	if !ok {
		t.Fatal("server has no estimate")
	}
	mirrorEst := sess.source.Mirror().PredictedMeasurement().VecSlice()
	if len(srvEst) != len(mirrorEst) {
		t.Fatal("estimate arity mismatch")
	}
	for i := range srvEst {
		if srvEst[i] != mirrorEst[i] {
			t.Fatalf("server %v != mirror %v after catch-up", srvEst, mirrorEst)
		}
	}
}

func TestSkipTickBeforeBootstrap(t *testing.T) {
	src, err := NewSourceNode(linearCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.SkipTick(); err == nil {
		t.Fatal("SkipTick before bootstrap succeeded")
	}
}

func TestSampledMetricsZero(t *testing.T) {
	var m SampledMetrics
	if m.PercentSensed() != 0 {
		t.Fatal("zero metrics PercentSensed != 0")
	}
}

func TestSampledReactsToRegimeChange(t *testing.T) {
	// Flat phase lets the stride widen; the jump must pull it back and
	// the estimate must re-converge.
	var data []stream.Reading
	for i := 0; i < 300; i++ {
		data = append(data, stream.Reading{Seq: i, Values: []float64{5}})
	}
	for i := 300; i < 600; i++ {
		data = append(data, stream.Reading{Seq: i, Values: []float64{5 + 3*float64(i-300)}})
	}
	sampler, err := NewAdaptiveSampler(2, 0.5, 16)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{SourceID: "s1", Model: model.Linear(1, 1, 0.05, 0.05), Delta: 2}
	sess, err := NewSampledSession(cfg, sampler)
	if err != nil {
		t.Fatal(err)
	}
	var lastEst []float64
	for _, r := range data {
		est, err := sess.Step(r)
		if err != nil {
			t.Fatal(err)
		}
		lastEst = est
	}
	want := 5 + 3*299.0
	if d := lastEst[0] - want; d > 20 || d < -20 {
		t.Fatalf("final estimate %v, want ~%v", lastEst[0], want)
	}
	if sess.Metrics().Skipped == 0 {
		t.Fatal("no skipping during the flat phase")
	}
}
