package core

import (
	"math"
	"math/rand"
	"testing"

	"streamkf/internal/baseline"
	"streamkf/internal/model"
	"streamkf/internal/stream"
)

// pendulumData simulates a damped pendulum's measured angle.
func pendulumData(n int, dt, gOverL, damping, noiseStd float64, seed int64) []stream.Reading {
	rng := rand.New(rand.NewSource(seed))
	th, om := 1.2, 0.0
	out := make([]stream.Reading, n)
	for k := 0; k < n; k++ {
		om = (1-damping*dt)*om - gOverL*math.Sin(th)*dt
		th += om * dt
		out[k] = stream.Reading{Seq: k, Time: float64(k) * dt, Values: []float64{th + noiseStd*rng.NormFloat64()}}
	}
	return out
}

func pendulumCfg(delta float64) NonlinearConfig {
	return NonlinearConfig{
		SourceID: "pend",
		Model:    model.Pendulum(0.02, 9.8, 0.05, 1e-6, 1e-4),
		Delta:    delta,
	}
}

func TestNonlinearConfigValidate(t *testing.T) {
	if err := pendulumCfg(0.1).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := pendulumCfg(0.1)
	bad.SourceID = ""
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted empty source")
	}
	bad = pendulumCfg(0)
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted zero delta")
	}
	bad = pendulumCfg(0.1)
	bad.Model.F = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted broken model")
	}
}

func TestNonlinearSuppressionOnPendulum(t *testing.T) {
	// The EKF locks onto the pendulum dynamics and suppresses almost
	// everything; a value cache at the same precision must chatter,
	// because the angle keeps swinging.
	data := pendulumData(3000, 0.02, 9.8, 0.05, 0.002, 1)
	sess, err := NewNonlinearSession(pendulumCfg(0.05))
	if err != nil {
		t.Fatal(err)
	}
	m, err := sess.Run(data)
	if err != nil {
		t.Fatal(err)
	}
	if !sess.InSync() {
		t.Fatal("EKF mirror out of sync")
	}
	cache, err := baseline.NewCache(0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := cache.Run(data)
	if err != nil {
		t.Fatal(err)
	}
	if m.PercentUpdates() >= cm.PercentUpdates()/2 {
		t.Fatalf("EKF-DKF %.1f%% vs cache %.1f%%: expected at least 2x suppression", m.PercentUpdates(), cm.PercentUpdates())
	}
	if m.AvgErr() > 0.1 {
		t.Fatalf("avg error %v too large for delta 0.05", m.AvgErr())
	}
}

func TestNonlinearSessionBootstrapAndSeqChecks(t *testing.T) {
	sess, err := NewNonlinearSession(pendulumCfg(0.1))
	if err != nil {
		t.Fatal(err)
	}
	if !sess.InSync() {
		t.Fatal("empty session not trivially in sync")
	}
	if _, err := sess.Step(stream.Reading{Seq: 0, Values: []float64{1, 2}}); err == nil {
		t.Fatal("accepted wrong arity")
	}
	if _, err := sess.Step(stream.Reading{Seq: 0, Values: []float64{1.0}}); err != nil {
		t.Fatal(err)
	}
	if sess.Metrics().Updates != 1 {
		t.Fatalf("bootstrap not counted: %+v", sess.Metrics())
	}
	if _, err := sess.Step(stream.Reading{Seq: 5, Values: []float64{1.0}}); err == nil {
		t.Fatal("accepted non-consecutive seq")
	}
}

func TestNonlinearMirrorSynchronyThroughout(t *testing.T) {
	data := pendulumData(1000, 0.02, 9.8, 0.05, 0.01, 9)
	sess, err := NewNonlinearSession(pendulumCfg(0.08))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range data {
		if _, err := sess.Step(r); err != nil {
			t.Fatal(err)
		}
		if !sess.InSync() {
			t.Fatalf("mirror desynchronized at seq %d", r.Seq)
		}
	}
}

func TestNonlinearBeatsLinearModelOnPendulum(t *testing.T) {
	// The point of future work 3: on genuinely non-linear dynamics the
	// EKF model suppresses more than the best linear model.
	data := pendulumData(3000, 0.02, 9.8, 0.05, 0.002, 4)
	nl, err := NewNonlinearSession(pendulumCfg(0.05))
	if err != nil {
		t.Fatal(err)
	}
	nm, err := nl.Run(data)
	if err != nil {
		t.Fatal(err)
	}
	lin, err := NewSession(Config{SourceID: "pend", Model: model.Linear(1, 1, 1e-6, 1e-4), Delta: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	lm, err := lin.Run(data)
	if err != nil {
		t.Fatal(err)
	}
	if nm.PercentUpdates() >= lm.PercentUpdates() {
		t.Fatalf("EKF %.2f%% not below linear %.2f%% on pendulum", nm.PercentUpdates(), lm.PercentUpdates())
	}
}
