package core

import (
	"fmt"
	"math"

	"streamkf/internal/kalman"
	"streamkf/internal/stream"
)

// Transport carries updates from a source to its server. Implementations
// include the in-process DirectTransport here and the binary framed TCP
// transport in internal/dsms.
type Transport interface {
	// Send delivers one update to the server side.
	Send(Update) error
}

// TransportFunc adapts a function to the Transport interface.
type TransportFunc func(Update) error

// Send implements Transport.
func (f TransportFunc) Send(u Update) error { return f(u) }

// DirectTransport delivers updates synchronously to a ServerNode. It is
// the deterministic in-memory transport the experiment harness uses.
type DirectTransport struct {
	Server *ServerNode
}

// Send implements Transport.
func (d DirectTransport) Send(u Update) error { return d.Server.ApplyUpdate(u) }

// Metrics aggregates a session run, providing the paper's two evaluation
// metrics (§5): percentage of updates and average error value.
type Metrics struct {
	// Readings is the total number of readings taken by the source (n).
	Readings int
	// Updates is the number of updates actually sent to the server.
	Updates int
	// BytesSent accumulates wire bytes across all updates.
	BytesSent int
	// SumAbsErr accumulates Σ_k |v_k^source − v_k^server| where the
	// source value is the (possibly smoothed) measurement the protocol
	// tracks. For multi-attribute streams the per-reading error is the
	// sum over attributes, matching the paper's Example 1 metric.
	SumAbsErr float64
	// SumAbsErrRaw is the same accumulated against the raw, unsmoothed
	// readings. Equal to SumAbsErr when smoothing is off.
	SumAbsErrRaw float64
	// MaxAbsErr is the worst per-reading error against the tracked
	// (smoothed) measurement.
	MaxAbsErr float64
	// OutliersRejected counts source-side NIS rejections.
	OutliersRejected int
}

// PercentUpdates returns 100 * Updates / Readings.
func (m Metrics) PercentUpdates() float64 {
	if m.Readings == 0 {
		return 0
	}
	return 100 * float64(m.Updates) / float64(m.Readings)
}

// AvgErr returns the paper's average error value Σ ε_k / n against the
// tracked measurement.
func (m Metrics) AvgErr() float64 {
	if m.Readings == 0 {
		return 0
	}
	return m.SumAbsErr / float64(m.Readings)
}

// AvgErrRaw returns the average error against the raw readings.
func (m Metrics) AvgErrRaw() float64 {
	if m.Readings == 0 {
		return 0
	}
	return m.SumAbsErrRaw / float64(m.Readings)
}

// String renders the metrics compactly for logs and tables.
func (m Metrics) String() string {
	return fmt.Sprintf("readings=%d updates=%d (%.2f%%) avgErr=%.4f maxErr=%.4f bytes=%d",
		m.Readings, m.Updates, m.PercentUpdates(), m.AvgErr(), m.MaxAbsErr, m.BytesSent)
}

// Session couples a SourceNode and a ServerNode over a Transport and
// drives readings through the protocol, collecting Metrics.
type Session struct {
	cfg       Config
	source    *SourceNode
	server    *ServerNode
	transport Transport
	metrics   Metrics

	// CheckSync, when true, verifies the mirror-synchrony invariant
	// after every reading and makes Run fail loudly on violation. Cheap
	// enough for tests; off by default in benchmarks.
	CheckSync bool

	prevSeq int
}

// NewSession builds a matched source/server pair connected by the
// in-process DirectTransport.
func NewSession(cfg Config) (*Session, error) {
	src, err := NewSourceNode(cfg)
	if err != nil {
		return nil, err
	}
	srv, err := NewServerNode(cfg)
	if err != nil {
		return nil, err
	}
	return &Session{cfg: cfg, source: src, server: srv, transport: DirectTransport{Server: srv}}, nil
}

// Source returns the session's source node.
func (s *Session) Source() *SourceNode { return s.source }

// Server returns the session's server node.
func (s *Session) Server() *ServerNode { return s.server }

// Step processes one reading through the full protocol: source decision,
// optional transmission, and server advancement. It returns the server's
// post-step estimate.
func (s *Session) Step(r stream.Reading) ([]float64, error) {
	if s.metrics.Readings > 0 && r.Seq != s.prevSeq+1 {
		return nil, fmt.Errorf("core: Session requires consecutive sequence numbers, got %d after %d", r.Seq, s.prevSeq)
	}
	s.prevSeq = r.Seq
	update, mirrorEst, err := s.source.Process(r)
	if err != nil {
		return nil, err
	}
	if update != nil {
		if err := s.transport.Send(*update); err != nil {
			return nil, err
		}
		s.metrics.Updates++
		s.metrics.BytesSent += update.WireBytes()
	} else {
		s.server.AdvanceTo(r.Seq)
	}
	s.metrics.Readings++
	s.metrics.OutliersRejected = s.source.stats.OutliersRejected

	est, ok := s.server.Estimate()
	if !ok {
		return nil, fmt.Errorf("core: server has no estimate after reading %d", r.Seq)
	}

	if s.CheckSync {
		if !kalman.StateEqual(s.source.mirror, s.server.filter) {
			return nil, fmt.Errorf("core: mirror synchrony violated at seq %d", r.Seq)
		}
		if !equalVals(est, mirrorEst) {
			return nil, fmt.Errorf("core: estimate mismatch at seq %d: server %v, mirror %v", r.Seq, est, mirrorEst)
		}
	}

	// Error accounting: tracked measurement (post-smoothing) and raw.
	tracked := r.Values
	if s.cfg.F > 0 && s.source.smoothers != nil {
		tracked = s.source.smoothedEstimate()
	}
	errTracked := stream.AbsErrorSum(tracked, est)
	s.metrics.SumAbsErr += errTracked
	s.metrics.SumAbsErrRaw += stream.AbsErrorSum(r.Values, est)
	if errTracked > s.metrics.MaxAbsErr {
		s.metrics.MaxAbsErr = errTracked
	}
	return est, nil
}

// Run drives every reading of the dataset through the protocol and
// returns the accumulated metrics.
func (s *Session) Run(readings []stream.Reading) (Metrics, error) {
	for _, r := range readings {
		if _, err := s.Step(r); err != nil {
			return s.metrics, err
		}
	}
	return s.metrics, nil
}

// Metrics returns the metrics accumulated so far.
func (s *Session) Metrics() Metrics { return s.metrics }

func equalVals(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// AdaptiveSampler adjusts the source sampling stride from the innovation
// sequence (§3.1 advantage 5, future work item 5): when recent prediction
// errors are small relative to δ the source can afford to sample less
// often; when they grow it tightens back to every reading.
type AdaptiveSampler struct {
	delta     float64
	alpha     float64 // EWMA factor
	maxStride int
	ewma      float64
	stride    int
}

// NewAdaptiveSampler returns a sampler for precision width delta with the
// given EWMA smoothing factor (0 < alpha <= 1) and maximum stride.
func NewAdaptiveSampler(delta, alpha float64, maxStride int) (*AdaptiveSampler, error) {
	if delta <= 0 {
		return nil, fmt.Errorf("core: sampler delta = %v, want > 0", delta)
	}
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("core: sampler alpha = %v, want (0, 1]", alpha)
	}
	if maxStride < 1 {
		return nil, fmt.Errorf("core: sampler maxStride = %d, want >= 1", maxStride)
	}
	return &AdaptiveSampler{delta: delta, alpha: alpha, maxStride: maxStride, stride: 1, ewma: delta}, nil
}

// Observe folds in the absolute prediction error of the latest sampled
// reading and recomputes the stride.
func (a *AdaptiveSampler) Observe(absErr float64) {
	a.ewma = a.alpha*absErr + (1-a.alpha)*a.ewma
	// Error well below δ → prediction is reliable → widen the stride.
	ratio := a.ewma / a.delta
	switch {
	case ratio < 0.3:
		a.stride = min(a.stride*2, a.maxStride)
	case ratio > 0.75:
		a.stride = 1
	default:
		if a.stride > 1 {
			a.stride--
		}
	}
}

// Stride returns how many readings to skip between samples (1 = sample
// every reading).
func (a *AdaptiveSampler) Stride() int { return a.stride }

// Ratio returns the current EWMA error as a fraction of delta.
func (a *AdaptiveSampler) Ratio() float64 {
	if a.delta == 0 {
		return math.Inf(1)
	}
	return a.ewma / a.delta
}
