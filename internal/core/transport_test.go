package core

import (
	"errors"
	"testing"

	"streamkf/internal/gen"
	"streamkf/internal/kalman"
)

func TestLossyTransportValidation(t *testing.T) {
	direct := TransportFunc(func(Update) error { return nil })
	if _, err := NewLossyTransport(nil, 0.1, LossSilent, 1); err == nil {
		t.Fatal("accepted nil inner")
	}
	if _, err := NewLossyTransport(direct, -0.1, LossSilent, 1); err == nil {
		t.Fatal("accepted negative p")
	}
	if _, err := NewLossyTransport(direct, 1.0, LossSilent, 1); err == nil {
		t.Fatal("accepted p = 1")
	}
}

func TestReliableTransportValidation(t *testing.T) {
	direct := TransportFunc(func(Update) error { return nil })
	if _, err := NewReliableTransport(nil, 3); err == nil {
		t.Fatal("accepted nil inner")
	}
	if _, err := NewReliableTransport(direct, 0); err == nil {
		t.Fatal("accepted maxRetries 0")
	}
}

func TestSilentLossBreaksMirrorSynchrony(t *testing.T) {
	// The negative result that justifies acknowledged delivery: with
	// fire-and-forget loss, the mirror and server filters diverge and
	// the server's answers blow past the precision constraint.
	cfg := linearCfg(1)
	sess, err := NewSessionWithTransport(cfg, func(direct Transport) (Transport, error) {
		return NewLossyTransport(direct, 0.3, LossSilent, 7)
	})
	if err != nil {
		t.Fatal(err)
	}
	data := gen.RandomWalk(500, 0, 3, 5)
	m, err := sess.Run(data)
	if err != nil {
		t.Fatal(err)
	}
	if kalman.StateEqual(sess.Source().Mirror(), sess.Server().Filter()) {
		t.Fatal("mirror and server still in sync despite silent loss (loss not injected?)")
	}
	// Divergence shows up as server-side error far above delta.
	if m.MaxAbsErr < 3*cfg.Delta {
		t.Fatalf("max error %v under silent loss; expected gross violation of delta=%v", m.MaxAbsErr, cfg.Delta)
	}
}

func TestReliableTransportMasksLoss(t *testing.T) {
	// With detectable loss plus retry, the run is indistinguishable from
	// a lossless one: same sync, same updates delivered.
	cfg := linearCfg(1)
	var reliable *ReliableTransport
	var lossy *LossyTransport
	sess, err := NewSessionWithTransport(cfg, func(direct Transport) (Transport, error) {
		var err error
		lossy, err = NewLossyTransport(direct, 0.3, LossDetect, 7)
		if err != nil {
			return nil, err
		}
		reliable, err = NewReliableTransport(lossy, 50)
		return reliable, err
	})
	if err != nil {
		t.Fatal(err)
	}
	sess.CheckSync = true
	data := gen.RandomWalk(500, 0, 3, 5)
	m, err := sess.Run(data)
	if err != nil {
		t.Fatal(err)
	}
	if !kalman.StateEqual(sess.Source().Mirror(), sess.Server().Filter()) {
		t.Fatal("mirror out of sync despite reliable delivery")
	}
	if lossy.Dropped() == 0 {
		t.Fatal("no losses injected; test is vacuous")
	}
	if reliable.Retries() < lossy.Dropped() {
		t.Fatalf("retries %d < drops %d", reliable.Retries(), lossy.Dropped())
	}
	// Compare against a lossless run: identical update count.
	ref, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := ref.Run(data)
	if err != nil {
		t.Fatal(err)
	}
	if m.Updates != rm.Updates {
		t.Fatalf("updates with retry %d != lossless %d", m.Updates, rm.Updates)
	}
}

func TestReliableTransportGivesUpLoudly(t *testing.T) {
	alwaysDrop := TransportFunc(func(Update) error { return ErrDropped })
	r, err := NewReliableTransport(alwaysDrop, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Send(Update{Seq: 9}); err == nil {
		t.Fatal("Send succeeded against a black hole")
	} else if !errors.Is(err, ErrDropped) {
		t.Fatalf("err = %v, want wrapped ErrDropped", err)
	}
}

func TestReliableTransportPassesRealErrors(t *testing.T) {
	boom := errors.New("protocol violation")
	bad := TransportFunc(func(Update) error { return boom })
	r, err := NewReliableTransport(bad, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Send(Update{}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the protocol error unretried", err)
	}
	if r.Retries() != 0 {
		t.Fatalf("retried a non-transit error %d times", r.Retries())
	}
}

func TestNewSessionWithTransportNilWrap(t *testing.T) {
	sess, err := NewSessionWithTransport(linearCfg(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(gen.Ramp(50, 0, 1, 0, 1)); err != nil {
		t.Fatal(err)
	}
	bad, err := NewSessionWithTransport(linearCfg(1), func(Transport) (Transport, error) { return nil, nil })
	if err == nil || bad != nil {
		t.Fatal("accepted nil transport from wrap")
	}
}
