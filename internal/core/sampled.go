package core

import (
	"fmt"

	"streamkf/internal/stream"
)

// SkipTick advances the mirror prediction across a time step on which the
// sensor chose not to take a measurement at all (adaptive sampling,
// future work item 5). It returns the mirrored server estimate for that
// step. The server needs no message: its lazy AdvanceTo covers skipped
// steps identically, so mirror synchrony is preserved.
func (s *SourceNode) SkipTick() ([]float64, error) {
	if s.mirror == nil {
		return nil, fmt.Errorf("core: SkipTick before bootstrap")
	}
	s.mirror.Predict()
	return s.mirror.PredictedMeasurement().VecSlice(), nil
}

// SampledMetrics extends the protocol metrics with sensing counters.
type SampledMetrics struct {
	Metrics
	// Sensed is how many time steps the sensor actually measured.
	Sensed int
	// Skipped is how many time steps the sensor slept through.
	Skipped int
}

// PercentSensed returns 100 * Sensed / Readings — the sensing duty cycle.
func (m SampledMetrics) PercentSensed() float64 {
	if m.Readings == 0 {
		return 0
	}
	return 100 * float64(m.Sensed) / float64(m.Readings)
}

// SampledSession couples a DKF pair with an AdaptiveSampler: when the
// innovation sequence shows the model predicting reliably, the source
// widens its sampling stride and skips whole readings — saving sensing
// and filter energy on top of the transmission savings. When errors
// grow, the stride snaps back to every reading.
//
// Error accounting uses the true readings for every step (including
// skipped ones), so the metrics expose the real accuracy cost of
// sleeping, not just the cost on sensed steps.
type SampledSession struct {
	cfg     Config
	source  *SourceNode
	server  *ServerNode
	sampler *AdaptiveSampler
	metrics SampledMetrics

	nextSense int // sequence number of the next scheduled measurement
	started   bool
}

// NewSampledSession builds a DKF pair driven by an adaptive sampler.
func NewSampledSession(cfg Config, sampler *AdaptiveSampler) (*SampledSession, error) {
	if sampler == nil {
		return nil, fmt.Errorf("core: nil sampler")
	}
	src, err := NewSourceNode(cfg)
	if err != nil {
		return nil, err
	}
	srv, err := NewServerNode(cfg)
	if err != nil {
		return nil, err
	}
	return &SampledSession{cfg: cfg, source: src, server: srv, sampler: sampler}, nil
}

// Step processes one time step. The reading carries the true value so
// metrics can report the real error, but the sensor only *uses* it on
// scheduled steps.
func (s *SampledSession) Step(r stream.Reading) ([]float64, error) {
	s.metrics.Readings++
	var est []float64
	if !s.started || r.Seq >= s.nextSense {
		update, mirrorEst, err := s.source.Process(r)
		if err != nil {
			return nil, err
		}
		if update != nil {
			if err := s.server.ApplyUpdate(*update); err != nil {
				return nil, err
			}
			s.metrics.Updates++
			s.metrics.BytesSent += update.WireBytes()
		}
		est = mirrorEst
		s.metrics.Sensed++
		s.started = true
		s.sampler.Observe(s.priorError(update, mirrorEst, r.Values))
		s.nextSense = r.Seq + s.sampler.Stride()
	} else {
		mirrorEst, err := s.source.SkipTick()
		if err != nil {
			return nil, err
		}
		est = mirrorEst
		s.metrics.Skipped++
	}
	e := stream.AbsErrorSum(r.Values, est)
	s.metrics.SumAbsErr += e
	s.metrics.SumAbsErrRaw += e
	if e > s.metrics.MaxAbsErr {
		s.metrics.MaxAbsErr = e
	}
	return est, nil
}

// priorError returns the a priori prediction error the sampler should
// learn from: on suppressed steps the mirror estimate *is* the
// prediction; on update steps the prediction error is the innovation
// magnitude (the post-correction estimate would understate how wrong the
// model was). The bootstrap step has no prediction; treat it as a full-δ
// miss so the sampler starts cautious.
func (s *SampledSession) priorError(update *Update, mirrorEst, truth []float64) float64 {
	if update == nil {
		return stream.AbsErrorSum(mirrorEst, truth)
	}
	innov := s.source.Mirror().Innovation()
	if innov == nil {
		return s.cfg.Delta
	}
	var sum float64
	for _, v := range innov.VecSlice() {
		if v < 0 {
			v = -v
		}
		sum += v
	}
	return sum
}

// Run drives a whole dataset.
func (s *SampledSession) Run(readings []stream.Reading) (SampledMetrics, error) {
	for _, r := range readings {
		if _, err := s.Step(r); err != nil {
			return s.metrics, err
		}
	}
	return s.metrics, nil
}

// Metrics returns the counters so far.
func (s *SampledSession) Metrics() SampledMetrics { return s.metrics }

// Sampler exposes the sampler for inspection.
func (s *SampledSession) Sampler() *AdaptiveSampler { return s.sampler }
