// Package baseline implements the comparison schemes from the paper's
// evaluation (§5): the cached-approximation precision-bound scheme of
// Olston et al. used by the STREAM project, its adaptive bound-width
// variant, the moving-average smoother of Example 3, and a ship-everything
// reference.
package baseline

import (
	"fmt"

	"streamkf/internal/stream"
)

// Metrics mirrors core.Metrics for the baseline schemes: the paper's
// percentage-of-updates and average-error evaluation.
type Metrics struct {
	Readings  int
	Updates   int
	BytesSent int
	SumAbsErr float64
	MaxAbsErr float64
}

// PercentUpdates returns 100 * Updates / Readings.
func (m Metrics) PercentUpdates() float64 {
	if m.Readings == 0 {
		return 0
	}
	return 100 * float64(m.Updates) / float64(m.Readings)
}

// AvgErr returns Σ ε_k / n.
func (m Metrics) AvgErr() float64 {
	if m.Readings == 0 {
		return 0
	}
	return m.SumAbsErr / float64(m.Readings)
}

// Cache is the precision-bound caching scheme of §5: each source keeps a
// bound [L, H] with H − L = W ≤ δ. When a reading falls outside the bound
// it is shipped to the server and the bound is recentred on it:
// H' = V + W/2, L' = V − W/2. The server answers queries with the cached
// midpoint. Multi-attribute streams keep an independent bound per
// attribute and transmit the whole tuple when any attribute escapes its
// bound (matching the paper's Example 1: "point P(x,y) is updated to the
// server if error in either X or Y value is greater than δ").
type Cache struct {
	width   float64
	dims    int
	lo, hi  []float64
	cached  []float64
	started bool
	metrics Metrics
}

// NewCache returns a caching baseline with bound width w (= δ) over dims
// attributes.
func NewCache(w float64, dims int) (*Cache, error) {
	if w <= 0 {
		return nil, fmt.Errorf("baseline: cache width = %v, want > 0", w)
	}
	if dims <= 0 {
		return nil, fmt.Errorf("baseline: cache dims = %d, want > 0", dims)
	}
	return &Cache{
		width:  w,
		dims:   dims,
		lo:     make([]float64, dims),
		hi:     make([]float64, dims),
		cached: make([]float64, dims),
	}, nil
}

// Process handles one reading, returning whether it was shipped to the
// server and the server's post-step answer (the cached values).
func (c *Cache) Process(r stream.Reading) (sent bool, serverValues []float64, err error) {
	if len(r.Values) != c.dims {
		return false, nil, fmt.Errorf("baseline: reading has %d values, cache wants %d", len(r.Values), c.dims)
	}
	c.metrics.Readings++
	ship := !c.started
	if c.started {
		for i, v := range r.Values {
			if v < c.lo[i] || v > c.hi[i] {
				ship = true
				break
			}
		}
	}
	if ship {
		for i, v := range r.Values {
			c.cached[i] = v
			c.lo[i] = v - c.width/2
			c.hi[i] = v + c.width/2
		}
		c.started = true
		c.metrics.Updates++
		c.metrics.BytesSent += 8 + 4 + 8*c.dims
	}
	e := stream.AbsErrorSum(r.Values, c.cached)
	c.metrics.SumAbsErr += e
	if e > c.metrics.MaxAbsErr {
		c.metrics.MaxAbsErr = e
	}
	out := make([]float64, c.dims)
	copy(out, c.cached)
	return ship, out, nil
}

// Run drives a full dataset through the cache and returns its metrics.
func (c *Cache) Run(readings []stream.Reading) (Metrics, error) {
	for _, r := range readings {
		if _, _, err := c.Process(r); err != nil {
			return c.metrics, err
		}
	}
	return c.metrics, nil
}

// Metrics returns the counters accumulated so far.
func (c *Cache) Metrics() Metrics { return c.metrics }

// AdaptiveCache extends Cache with the bound growing/shrinking of Olston,
// Loo and Widom (Adaptive precision setting for cached approximate
// values, SIGMOD 2001): bounds that keep containing readings grow by
// growFactor up to the precision constraint δ; a bound that is violated
// shrinks by shrinkFactor. The paper excludes this from its own results
// ("we do not consider dynamic bound growing and shrinking"), so it is
// provided as an extra baseline for the ablation benches.
type AdaptiveCache struct {
	delta        float64
	growFactor   float64
	shrinkFactor float64
	dims         int
	width        []float64
	lo, hi       []float64
	cached       []float64
	started      bool
	metrics      Metrics
}

// NewAdaptiveCache returns an adaptive-width caching baseline. Widths
// start at delta/2, grow by growFactor (>1) on quiet periods and shrink
// by shrinkFactor (<1) on violations, never exceeding delta.
func NewAdaptiveCache(delta float64, dims int, growFactor, shrinkFactor float64) (*AdaptiveCache, error) {
	if delta <= 0 {
		return nil, fmt.Errorf("baseline: adaptive cache delta = %v, want > 0", delta)
	}
	if dims <= 0 {
		return nil, fmt.Errorf("baseline: adaptive cache dims = %d, want > 0", dims)
	}
	if growFactor <= 1 {
		return nil, fmt.Errorf("baseline: growFactor = %v, want > 1", growFactor)
	}
	if shrinkFactor <= 0 || shrinkFactor >= 1 {
		return nil, fmt.Errorf("baseline: shrinkFactor = %v, want (0, 1)", shrinkFactor)
	}
	a := &AdaptiveCache{
		delta: delta, growFactor: growFactor, shrinkFactor: shrinkFactor,
		dims:   dims,
		width:  make([]float64, dims),
		lo:     make([]float64, dims),
		hi:     make([]float64, dims),
		cached: make([]float64, dims),
	}
	for i := range a.width {
		a.width[i] = delta / 2
	}
	return a, nil
}

// Process handles one reading.
func (a *AdaptiveCache) Process(r stream.Reading) (sent bool, serverValues []float64, err error) {
	if len(r.Values) != a.dims {
		return false, nil, fmt.Errorf("baseline: reading has %d values, cache wants %d", len(r.Values), a.dims)
	}
	a.metrics.Readings++
	ship := !a.started
	if a.started {
		for i, v := range r.Values {
			if v < a.lo[i] || v > a.hi[i] {
				ship = true
				break
			}
		}
	}
	if ship {
		for i, v := range r.Values {
			if a.started {
				a.width[i] *= a.shrinkFactor
			}
			a.cached[i] = v
			a.lo[i] = v - a.width[i]/2
			a.hi[i] = v + a.width[i]/2
		}
		a.started = true
		a.metrics.Updates++
		a.metrics.BytesSent += 8 + 4 + 8*a.dims
	} else {
		for i := range a.width {
			a.width[i] *= a.growFactor
			if a.width[i] > a.delta {
				a.width[i] = a.delta
			}
			mid := a.cached[i]
			a.lo[i] = mid - a.width[i]/2
			a.hi[i] = mid + a.width[i]/2
		}
	}
	e := stream.AbsErrorSum(r.Values, a.cached)
	a.metrics.SumAbsErr += e
	if e > a.metrics.MaxAbsErr {
		a.metrics.MaxAbsErr = e
	}
	out := make([]float64, a.dims)
	copy(out, a.cached)
	return ship, out, nil
}

// Run drives a full dataset through the adaptive cache.
func (a *AdaptiveCache) Run(readings []stream.Reading) (Metrics, error) {
	for _, r := range readings {
		if _, _, err := a.Process(r); err != nil {
			return a.metrics, err
		}
	}
	return a.metrics, nil
}

// MovingAverage is the Example 3 comparison smoother: a sliding-window
// mean over the last Window readings of a single-attribute stream.
type MovingAverage struct {
	window int
	buf    []float64
	next   int
	count  int
	sum    float64
}

// NewMovingAverage returns a window-length moving average smoother.
func NewMovingAverage(window int) (*MovingAverage, error) {
	if window <= 0 {
		return nil, fmt.Errorf("baseline: moving average window = %d, want > 0", window)
	}
	return &MovingAverage{window: window, buf: make([]float64, window)}, nil
}

// Observe folds in one value and returns the current mean.
func (m *MovingAverage) Observe(v float64) float64 {
	if m.count == m.window {
		m.sum -= m.buf[m.next]
	} else {
		m.count++
	}
	m.buf[m.next] = v
	m.sum += v
	m.next = (m.next + 1) % m.window
	return m.sum / float64(m.count)
}

// Value returns the current mean (0 before any observation).
func (m *MovingAverage) Value() float64 {
	if m.count == 0 {
		return 0
	}
	return m.sum / float64(m.count)
}

// Smooth applies the moving average to a whole series.
func (m *MovingAverage) Smooth(vals []float64) []float64 {
	out := make([]float64, len(vals))
	for i, v := range vals {
		out[i] = m.Observe(v)
	}
	return out
}

// ShipAll is the trivial baseline that transmits every reading; it bounds
// the achievable error (zero) and the bandwidth cost (100%).
type ShipAll struct {
	dims    int
	metrics Metrics
}

// NewShipAll returns a ship-everything baseline over dims attributes.
func NewShipAll(dims int) (*ShipAll, error) {
	if dims <= 0 {
		return nil, fmt.Errorf("baseline: ShipAll dims = %d, want > 0", dims)
	}
	return &ShipAll{dims: dims}, nil
}

// Process ships the reading.
func (s *ShipAll) Process(r stream.Reading) (bool, []float64, error) {
	if len(r.Values) != s.dims {
		return false, nil, fmt.Errorf("baseline: reading has %d values, want %d", len(r.Values), s.dims)
	}
	s.metrics.Readings++
	s.metrics.Updates++
	s.metrics.BytesSent += 8 + 4 + 8*s.dims
	out := make([]float64, s.dims)
	copy(out, r.Values)
	return true, out, nil
}

// Run drives a full dataset.
func (s *ShipAll) Run(readings []stream.Reading) (Metrics, error) {
	for _, r := range readings {
		if _, _, err := s.Process(r); err != nil {
			return s.metrics, err
		}
	}
	return s.metrics, nil
}
