package baseline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"streamkf/internal/gen"
	"streamkf/internal/stream"
)

func TestCacheValidation(t *testing.T) {
	if _, err := NewCache(0, 1); err == nil {
		t.Fatal("accepted width 0")
	}
	if _, err := NewCache(1, 0); err == nil {
		t.Fatal("accepted dims 0")
	}
}

func TestCacheFirstReadingShips(t *testing.T) {
	c, err := NewCache(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	sent, vals, err := c.Process(stream.Reading{Values: []float64{5}})
	if err != nil {
		t.Fatal(err)
	}
	if !sent || vals[0] != 5 {
		t.Fatalf("first reading: sent=%v vals=%v", sent, vals)
	}
}

func TestCacheBoundRecentering(t *testing.T) {
	c, _ := NewCache(2, 1) // bound [v-1, v+1]
	c.Process(stream.Reading{Values: []float64{0}})
	// Within the bound: suppressed, cached value unchanged.
	sent, vals, _ := c.Process(stream.Reading{Values: []float64{0.9}})
	if sent || vals[0] != 0 {
		t.Fatalf("in-bound reading: sent=%v cached=%v", sent, vals)
	}
	// Outside: shipped and recentred.
	sent, vals, _ = c.Process(stream.Reading{Values: []float64{1.5}})
	if !sent || vals[0] != 1.5 {
		t.Fatalf("out-of-bound reading: sent=%v cached=%v", sent, vals)
	}
	// New bound is [0.5, 2.5].
	sent, _, _ = c.Process(stream.Reading{Values: []float64{2.4}})
	if sent {
		t.Fatal("reading within recentred bound was shipped")
	}
}

func TestCacheMultiAttributeAnyEscape(t *testing.T) {
	c, _ := NewCache(2, 2)
	c.Process(stream.Reading{Values: []float64{0, 0}})
	sent, _, _ := c.Process(stream.Reading{Values: []float64{0.5, 5}})
	if !sent {
		t.Fatal("escape in second attribute not shipped")
	}
}

func TestCacheDimMismatch(t *testing.T) {
	c, _ := NewCache(1, 2)
	if _, _, err := c.Process(stream.Reading{Values: []float64{1}}); err == nil {
		t.Fatal("accepted wrong arity")
	}
}

func TestCacheRampUpdatesEveryWidthCrossing(t *testing.T) {
	// On a slope-1 noiseless ramp with width w, the cache ships roughly
	// every w/2 steps (value exits the half-width bound); the error stays
	// below w.
	c, _ := NewCache(4, 1)
	m, err := c.Run(gen.Ramp(400, 0, 1, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	wantUpdates := 400.0 / 2 // bound escapes every width/2 = 2 steps... every 3rd step recentre
	if m.Updates < 100 || m.Updates > int(wantUpdates)+5 {
		t.Fatalf("updates = %d, want around %v", m.Updates, wantUpdates)
	}
	if m.MaxAbsErr > 4 {
		t.Fatalf("max error %v exceeded width", m.MaxAbsErr)
	}
}

func TestCacheErrorBoundedProperty(t *testing.T) {
	// Invariant: the cache's answer is never farther than the bound
	// half-width from the last shipped value, so per-attribute error is
	// bounded by the width on non-shipped readings... in fact the error
	// equals |v - cached| <= width/2 on suppressed readings.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := 0.5 + rng.Float64()*5
		c, err := NewCache(w, 1)
		if err != nil {
			return false
		}
		data := gen.RandomWalk(300, 0, 1+rng.Float64()*3, seed)
		for _, r := range data {
			sent, vals, err := c.Process(r)
			if err != nil {
				return false
			}
			if !sent && math.Abs(vals[0]-r.Values[0]) > w/2+1e-12 {
				return false
			}
			if sent && vals[0] != r.Values[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveCacheValidation(t *testing.T) {
	bad := [][4]float64{{0, 1, 2, 0.5}, {1, 0, 2, 0.5}, {1, 1, 1, 0.5}, {1, 1, 2, 0}, {1, 1, 2, 1}}
	for i, b := range bad {
		if _, err := NewAdaptiveCache(b[0], int(b[1]), b[2], b[3]); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestAdaptiveCacheBeatsFixedOnMixedWorkload(t *testing.T) {
	// On a workload alternating quiet and volatile phases, adaptive
	// widths should not do worse than the fixed half-width cache by a
	// large margin, and widths must stay <= delta.
	var data []stream.Reading
	rng := rand.New(rand.NewSource(4))
	v := 0.0
	for i := 0; i < 1000; i++ {
		if (i/100)%2 == 0 {
			v += 0.01 * rng.NormFloat64() // quiet
		} else {
			v += 2 * rng.NormFloat64() // volatile
		}
		data = append(data, stream.Reading{Seq: i, Values: []float64{v}})
	}
	a, err := NewAdaptiveCache(4, 1, 1.2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	ma, err := a.Run(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range a.width {
		if w > 4+1e-9 {
			t.Fatalf("width %v exceeded delta", w)
		}
	}
	if ma.Updates == 0 || ma.Updates == len(data) {
		t.Fatalf("degenerate update count %d", ma.Updates)
	}
}

func TestMovingAverage(t *testing.T) {
	if _, err := NewMovingAverage(0); err == nil {
		t.Fatal("accepted window 0")
	}
	m, _ := NewMovingAverage(3)
	if m.Value() != 0 {
		t.Fatal("empty Value != 0")
	}
	if got := m.Observe(3); got != 3 {
		t.Fatalf("first mean = %v", got)
	}
	if got := m.Observe(5); got != 4 {
		t.Fatalf("second mean = %v", got)
	}
	m.Observe(7) // window [3 5 7] -> 5
	if got := m.Observe(9); got != 7 {
		t.Fatalf("rolled mean = %v, want (5+7+9)/3", got)
	}
	if m.Value() != 7 {
		t.Fatalf("Value = %v", m.Value())
	}
}

func TestMovingAverageSmoothLowersVariance(t *testing.T) {
	data := stream.Values(gen.HTTPTraffic(gen.DefaultHTTPTraffic()), 0)
	m, _ := NewMovingAverage(20)
	sm := m.Smooth(data)
	if len(sm) != len(data) {
		t.Fatal("length mismatch")
	}
	if varOf(sm) >= varOf(data) {
		t.Fatalf("smoothing did not lower variance: %v vs %v", varOf(sm), varOf(data))
	}
}

func TestShipAll(t *testing.T) {
	if _, err := NewShipAll(0); err == nil {
		t.Fatal("accepted dims 0")
	}
	s, _ := NewShipAll(1)
	m, err := s.Run(gen.Ramp(50, 0, 1, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if m.Updates != 50 || m.PercentUpdates() != 100 {
		t.Fatalf("ShipAll metrics = %+v", m)
	}
	if m.SumAbsErr != 0 {
		t.Fatalf("ShipAll error = %v, want 0", m.SumAbsErr)
	}
	if _, _, err := s.Process(stream.Reading{Values: []float64{1, 2}}); err == nil {
		t.Fatal("accepted wrong arity")
	}
}

func TestMetricsZero(t *testing.T) {
	var m Metrics
	if m.PercentUpdates() != 0 || m.AvgErr() != 0 {
		t.Fatal("zero metrics not zero")
	}
}

func varOf(vals []float64) float64 {
	var mean float64
	for _, v := range vals {
		mean += v
	}
	mean /= float64(len(vals))
	var s float64
	for _, v := range vals {
		s += (v - mean) * (v - mean)
	}
	return s / float64(len(vals))
}
