package kalman

import (
	"math"
	"testing"

	"streamkf/internal/mat"
)

// refFilter replays the historical allocating implementation of the
// filter recursions, operation for operation (left-associated triple
// products, AddInPlace accumulation order, Symmetrize of the fresh
// product). The workspace rewrite must reproduce its trajectories bit for
// bit — the property the DKF server/mirror synchrony invariant rests on.
type refFilter struct {
	phi    TransitionFunc
	h      *mat.Matrix
	q, r   *mat.Matrix
	x, p   *mat.Matrix
	k      int
	joseph bool
}

func newRefFilter(cfg Config) *refFilter {
	p0 := cfg.P0
	if p0 == nil {
		p0 = mat.ScaledIdentity(cfg.X0.Rows(), 1e3)
	}
	return &refFilter{
		phi: cfg.Phi, h: cfg.H.Clone(), q: cfg.Q.Clone(), r: cfg.R.Clone(),
		x: cfg.X0.Clone(), p: p0.Clone(), joseph: cfg.JosephForm,
	}
}

func (f *refFilter) predict() {
	phi := f.phi(f.k)
	f.x = mat.Mul(phi, f.x)
	f.p = mat.Symmetrize(mat.AddInPlace(mat.Mul(mat.Mul(phi, f.p), mat.Transpose(phi)), f.q))
	f.k++
}

func (f *refFilter) correct(z *mat.Matrix) {
	ht := mat.Transpose(f.h)
	s := mat.AddInPlace(mat.Mul(mat.Mul(f.h, f.p), ht), f.r)
	sInv, err := mat.Inverse(s)
	if err != nil {
		panic(err)
	}
	k := mat.Mul(mat.Mul(f.p, ht), sInv)
	innov := mat.Sub(z, mat.Mul(f.h, f.x))
	f.x = mat.AddInPlace(mat.Mul(k, innov), f.x)
	ikh := mat.Sub(mat.Identity(f.x.Rows()), mat.Mul(k, f.h))
	if f.joseph {
		f.p = mat.Symmetrize(mat.Add(
			mat.Mul(mat.Mul(ikh, f.p), mat.Transpose(ikh)),
			mat.Mul(mat.Mul(k, f.r), mat.Transpose(k)),
		))
	} else {
		f.p = mat.Symmetrize(mat.Mul(ikh, f.p))
	}
}

func (f *refFilter) nis(z *mat.Matrix) float64 {
	ht := mat.Transpose(f.h)
	s := mat.AddInPlace(mat.Mul(mat.Mul(f.h, f.p), ht), f.r)
	sInv, err := mat.Inverse(s)
	if err != nil {
		panic(err)
	}
	d := mat.Sub(z, mat.Mul(f.h, f.x))
	return mat.Mul(mat.Mul(mat.Transpose(d), sInv), d).At(0, 0)
}

// traceLCG is a tiny deterministic generator for reproducible measurement
// traces without math/rand.
type traceLCG uint64

func (g *traceLCG) next() float64 {
	*g = *g*6364136223846793005 + 1442695040888963407
	return float64(int64(*g>>11)) / float64(1<<52) // roughly [-1, 1)
}

func equivalenceConfigs() map[string]Config {
	linear2 := Config{
		Phi: Static(mat.FromRows([][]float64{{1, 1}, {0, 1}})),
		H:   mat.FromRows([][]float64{{1, 0}}),
		Q:   mat.ScaledIdentity(2, 0.05),
		R:   mat.Diag(0.05),
		X0:  mat.Vec(0, 0),
		P0:  mat.ScaledIdentity(2, 10),
	}
	joseph := linear2
	joseph.JosephForm = true
	return map[string]Config{
		"linear2-standard": linear2,
		"linear2-joseph":   joseph,
		"meas2": {
			Phi: Static(mat.FromRows([][]float64{{1, 0.1}, {-0.1, 0.95}})),
			H:   mat.FromRows([][]float64{{1, 0}, {0.5, 1}}),
			Q:   mat.ScaledIdentity(2, 0.02),
			R:   mat.ScaledIdentity(2, 0.1),
			X0:  mat.Vec(1, -1),
			P0:  mat.ScaledIdentity(2, 5),
		},
	}
}

// TestRewriteMatchesReferenceTrace drives the workspace-based filter and
// the reference implementation through a DKF-style trace — predictions,
// NIS probes, and corrections gated by an update-suppression rule — and
// requires bit-identical state, covariance and NIS at every step.
func TestRewriteMatchesReferenceTrace(t *testing.T) {
	for name, cfg := range equivalenceConfigs() {
		t.Run(name, func(t *testing.T) {
			f := MustNew(cfg)
			ref := newRefFilter(cfg)
			gen := traceLCG(12345)
			m := cfg.H.Rows()
			const delta = 0.3
			suppressed := 0
			for step := 0; step < 400; step++ {
				f.Predict()
				ref.predict()
				zv := make([]float64, m)
				for i := range zv {
					zv[i] = 0.02*float64(step) + gen.next()
				}
				z := mat.Vec(zv...)
				gotNIS, err := f.NIS(z)
				if err != nil {
					t.Fatalf("step %d: NIS: %v", step, err)
				}
				if wantNIS := ref.nis(z); gotNIS != wantNIS {
					t.Fatalf("step %d: NIS = %v, reference %v", step, gotNIS, wantNIS)
				}
				// DKF update suppression: skip the correction when the
				// prediction is within delta of the reading. Both sides must
				// take the same branch for the mirrors to stay in lockstep.
				dev := math.Abs(f.PredictedMeasurement().At(0, 0) - z.At(0, 0))
				refDev := math.Abs(mat.Mul(ref.h, ref.x).At(0, 0) - z.At(0, 0))
				if (dev < delta) != (refDev < delta) {
					t.Fatalf("step %d: suppression decisions diverge (dev %v vs %v)", step, dev, refDev)
				}
				if dev < delta {
					suppressed++
				} else {
					if err := f.Correct(z); err != nil {
						t.Fatalf("step %d: Correct: %v", step, err)
					}
					ref.correct(z)
				}
				if !mat.Equal(f.x, ref.x) {
					t.Fatalf("step %d: state diverged: %v vs %v", step, f.x, ref.x)
				}
				if !mat.Equal(f.p, ref.p) {
					t.Fatalf("step %d: covariance diverged: %v vs %v", step, f.p, ref.p)
				}
			}
			if suppressed == 0 || suppressed == 400 {
				t.Fatalf("degenerate trace: %d/400 suppressed; want a mix of branches", suppressed)
			}
		})
	}
}

// TestServerMirrorBitIdentical clones a server filter into a mirror and
// replays the DKF protocol over a recorded trace. Only the mirror runs
// the NIS/LogLikelihood probes (as the source does when gating outliers),
// which must not perturb its state relative to the probe-free server.
func TestServerMirrorBitIdentical(t *testing.T) {
	cfg := equivalenceConfigs()["linear2-standard"]
	server := MustNew(cfg)
	mirror := server.Clone()
	gen := traceLCG(999)
	const delta = 0.25
	corrections := 0
	for step := 0; step < 500; step++ {
		server.Predict()
		mirror.Predict()
		z := mat.Vec(0.05*float64(step) + 2*gen.next())
		if _, err := mirror.NIS(z); err != nil {
			t.Fatalf("step %d: mirror NIS: %v", step, err)
		}
		if _, err := mirror.LogLikelihood(z); err != nil {
			t.Fatalf("step %d: mirror LogLikelihood: %v", step, err)
		}
		if math.Abs(mirror.PredictedMeasurement().At(0, 0)-z.At(0, 0)) >= delta {
			if err := mirror.Correct(z); err != nil {
				t.Fatalf("step %d: mirror Correct: %v", step, err)
			}
			if err := server.Correct(z); err != nil {
				t.Fatalf("step %d: server Correct: %v", step, err)
			}
			corrections++
		}
		if !StateEqual(server, mirror) {
			t.Fatalf("step %d: server and mirror diverged", step)
		}
	}
	if corrections == 0 {
		t.Fatal("degenerate trace: no corrections exercised")
	}
}

// TestCloneSharesNothingMutable steps a clone far away from its original
// and checks the original's observable state is untouched, byte for byte.
func TestCloneSharesNothingMutable(t *testing.T) {
	cfg := equivalenceConfigs()["linear2-standard"]
	f := MustNew(cfg)
	z := mat.Vec(1.5)
	for i := 0; i < 10; i++ {
		if err := f.Step(z); err != nil {
			t.Fatal(err)
		}
	}
	x0, p0 := f.State(), f.Cov()
	gain0, innov0 := f.Gain(), f.Innovation()
	c := f.Clone()
	for i := 0; i < 25; i++ {
		if err := c.Step(mat.Vec(-40 + float64(i))); err != nil {
			t.Fatal(err)
		}
		if _, err := c.NIS(mat.Vec(3)); err != nil {
			t.Fatal(err)
		}
	}
	if !mat.Equal(f.x, x0) || !mat.Equal(f.p, p0) {
		t.Fatal("stepping a clone mutated the original's state")
	}
	if !mat.Equal(f.gain, gain0) || !mat.Equal(f.innov, innov0) {
		t.Fatal("stepping a clone mutated the original's gain/innovation")
	}
	if mat.Equal(c.x, x0) {
		t.Fatal("clone did not actually diverge; test is vacuous")
	}
}

// TestFilterHotPathDoesNotAllocate pins the tentpole property: after the
// first correction (which installs the persistent gain/innovation
// buffers), Predict/Correct/NIS/LogLikelihood are allocation-free.
func TestFilterHotPathDoesNotAllocate(t *testing.T) {
	for name, cfg := range equivalenceConfigs() {
		t.Run(name, func(t *testing.T) {
			f := MustNew(cfg)
			zv := make([]float64, cfg.H.Rows())
			for i := range zv {
				zv[i] = 1.5
			}
			z := mat.Vec(zv...)
			if err := f.Step(z); err != nil {
				t.Fatal(err)
			}
			if n := testing.AllocsPerRun(200, func() {
				f.Predict()
				if _, err := f.NIS(z); err != nil {
					t.Fatal(err)
				}
				if _, err := f.LogLikelihood(z); err != nil {
					t.Fatal(err)
				}
				if err := f.Correct(z); err != nil {
					t.Fatal(err)
				}
			}); n != 0 {
				t.Errorf("hot path allocates %v times per cycle", n)
			}
		})
	}
}
