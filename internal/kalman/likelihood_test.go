package kalman

import (
	"math"
	"math/rand"
	"testing"

	"streamkf/internal/mat"
)

func TestLogLikelihoodPrefersNearMeasurements(t *testing.T) {
	f := MustNew(scalarConfig(0.1, 0.1, 0))
	f.Predict()
	near, err := f.LogLikelihood(mat.Vec(0.01))
	if err != nil {
		t.Fatal(err)
	}
	far, err := f.LogLikelihood(mat.Vec(30))
	if err != nil {
		t.Fatal(err)
	}
	if near <= far {
		t.Fatalf("LL(near)=%v <= LL(far)=%v", near, far)
	}
	// Must not mutate the filter.
	if f.State().At(0, 0) != 0 {
		t.Fatal("LogLikelihood mutated the filter")
	}
}

func TestLogLikelihoodMatchesGaussianDensity(t *testing.T) {
	// Scalar case closed form: S = P + R; LL = ln N(z; Hx, S).
	f := MustNew(scalarConfig(0.2, 0.3, 1))
	// Before any Predict the filter has P0 = 1.
	s := 1.0 + 0.3
	z := 1.7
	want := -0.5 * (math.Log(2*math.Pi) + math.Log(s) + (z-1)*(z-1)/s)
	got, err := f.LogLikelihood(mat.Vec(z))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("LL = %v, want %v", got, want)
	}
}

func TestLogLikelihoodErrors(t *testing.T) {
	f := MustNew(scalarConfig(0.1, 0.1, 0))
	if _, err := f.LogLikelihood(mat.Vec(1, 2)); err == nil {
		t.Fatal("accepted wrong-dimension measurement")
	}
}

func TestLogLikelihoodSelectsTrueModel(t *testing.T) {
	// Feed a ramp to a constant and a linear filter; the cumulative
	// likelihood must favour the linear model decisively.
	rng := rand.New(rand.NewSource(6))
	linear := MustNew(cvConfig(1, 1e-4, 0.05))
	constant := MustNew(scalarConfig(1e-4, 0.05, 0))
	var llLin, llConst float64
	for k := 1; k <= 200; k++ {
		z := mat.Vec(1.5*float64(k) + 0.1*rng.NormFloat64())
		linear.Predict()
		constant.Predict()
		if k > 20 { // skip the transient
			l1, err := linear.LogLikelihood(z)
			if err != nil {
				t.Fatal(err)
			}
			l2, err := constant.LogLikelihood(z)
			if err != nil {
				t.Fatal(err)
			}
			llLin += l1
			llConst += l2
		}
		if err := linear.Correct(z); err != nil {
			t.Fatal(err)
		}
		if err := constant.Correct(z); err != nil {
			t.Fatal(err)
		}
	}
	if llLin <= llConst {
		t.Fatalf("linear LL %v <= constant LL %v on a ramp", llLin, llConst)
	}
}
