package kalman

import (
	"errors"
	"fmt"

	"streamkf/internal/mat"
)

// SteadyState iterates the discrete algebraic Riccati recursion
//
//	P^- = φ P φ^T + Q
//	K   = P^- H^T (H P^- H^T + R)^-1
//	P   = (I - K H) P^-
//
// to a fixed point, returning the converged a priori covariance and gain.
// This is the paper's §3.2 case 5: when the noise processes are
// stationary, the covariance propagation is independent of the data and
// can be run offline, yielding a constant-gain filter that skips all
// matrix inversions at run time.
//
// The recursion is run for at most maxIter steps and declared converged
// when the max-abs element change in P falls below tol.
func SteadyState(phi, h, q, r *mat.Matrix, tol float64, maxIter int) (p, k *mat.Matrix, err error) {
	n := phi.Rows()
	if phi.Cols() != n {
		panic(fmt.Sprintf("kalman: SteadyState phi is %dx%d, want square", phi.Rows(), phi.Cols()))
	}
	if tol <= 0 {
		tol = 1e-12
	}
	if maxIter <= 0 {
		maxIter = 10000
	}
	ht := mat.Transpose(h)
	p = mat.Identity(n)
	var gain *mat.Matrix
	for i := 0; i < maxIter; i++ {
		prior := mat.AddInPlace(mat.Mul3(phi, p, mat.Transpose(phi)), q)
		s := mat.AddInPlace(mat.Mul3(h, prior, ht), r)
		sInv, ierr := mat.Inverse(s)
		if ierr != nil {
			return nil, nil, fmt.Errorf("kalman: SteadyState innovation covariance singular: %w", ierr)
		}
		gain = mat.Mul3(prior, ht, sInv)
		next := mat.Symmetrize(mat.Mul(mat.Sub(mat.Identity(n), mat.Mul(gain, h)), prior))
		if mat.MaxAbs(mat.Sub(next, p)) < tol {
			return next, gain, nil
		}
		p = next
	}
	return nil, nil, errors.New("kalman: SteadyState Riccati iteration did not converge")
}

// StaticFilter is a constant-gain Kalman filter: the gain is precomputed
// with SteadyState so each step costs two small mat-vec products and no
// inversion. It trades adaptivity during the transient for throughput —
// see BenchmarkAblationSteadyState.
type StaticFilter struct {
	phi  TransitionFunc
	h    *mat.Matrix
	gain *mat.Matrix
	x    *mat.Matrix
	k    int
}

// NewStatic builds a StaticFilter for a time-invariant model.
func NewStatic(phi, h, q, r, x0 *mat.Matrix) (*StaticFilter, error) {
	if x0.Cols() != 1 || x0.Rows() != phi.Rows() {
		return nil, fmt.Errorf("kalman: NewStatic x0 is %dx%d, want %dx1", x0.Rows(), x0.Cols(), phi.Rows())
	}
	_, gain, err := SteadyState(phi, h, q, r, 1e-12, 10000)
	if err != nil {
		return nil, err
	}
	return &StaticFilter{phi: Static(phi.Clone()), h: h.Clone(), gain: gain, x: x0.Clone()}, nil
}

// Predict propagates the state one step: x = φ x.
func (f *StaticFilter) Predict() {
	f.x = mat.Mul(f.phi(f.k), f.x)
	f.k++
}

// Correct folds in measurement z with the precomputed gain.
func (f *StaticFilter) Correct(z *mat.Matrix) {
	innov := mat.Sub(z, mat.Mul(f.h, f.x))
	f.x = mat.AddInPlace(mat.Mul(f.gain, innov), f.x)
}

// PredictedMeasurement returns H x.
func (f *StaticFilter) PredictedMeasurement() *mat.Matrix { return mat.Mul(f.h, f.x) }

// State returns a copy of the state estimate.
func (f *StaticFilter) State() *mat.Matrix { return f.x.Clone() }

// Gain returns a copy of the precomputed steady-state gain.
func (f *StaticFilter) Gain() *mat.Matrix { return f.gain.Clone() }

// Clone returns a deep copy (mirror construction).
func (f *StaticFilter) Clone() *StaticFilter {
	return &StaticFilter{phi: f.phi, h: f.h.Clone(), gain: f.gain.Clone(), x: f.x.Clone(), k: f.k}
}
