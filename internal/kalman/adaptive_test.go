package kalman

import (
	"math"
	"math/rand"
	"testing"

	"streamkf/internal/mat"
)

func TestNoiseEstimatorValidation(t *testing.T) {
	if _, err := NewNoiseEstimator(0, 10, 0.01); err == nil {
		t.Fatal("accepted m=0")
	}
	if _, err := NewNoiseEstimator(1, 1, 0.01); err == nil {
		t.Fatal("accepted window=1")
	}
	if _, err := NewNoiseEstimator(1, 10, 0); err == nil {
		t.Fatal("accepted floor=0")
	}
}

func TestNoiseEstimatorWindow(t *testing.T) {
	est, err := NewNoiseEstimator(1, 3, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if est.Ready() {
		t.Fatal("Ready before any observations")
	}
	est.Observe(mat.Vec(1))
	est.Observe(mat.Vec(-1))
	if est.Ready() {
		t.Fatal("Ready before window filled")
	}
	est.Observe(mat.Vec(2))
	if !est.Ready() {
		t.Fatal("not Ready after window filled")
	}
	// Innovation second moment = (1+1+4)/3 = 2; with HPH^T = 0.5 the
	// estimate must be 1.5.
	r := est.EstimateR(mat.Diag(0.5))
	if math.Abs(r.At(0, 0)-1.5) > 1e-12 {
		t.Fatalf("EstimateR = %v, want 1.5", r.At(0, 0))
	}
}

func TestNoiseEstimatorFloor(t *testing.T) {
	est, err := NewNoiseEstimator(1, 2, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	est.Observe(mat.Vec(0.01))
	est.Observe(mat.Vec(-0.01))
	r := est.EstimateR(mat.Diag(1.0)) // estimate would be negative
	if r.At(0, 0) != 0.25 {
		t.Fatalf("floored EstimateR = %v, want 0.25", r.At(0, 0))
	}
}

func TestNoiseEstimatorNotReadyPanics(t *testing.T) {
	est, _ := NewNoiseEstimator(1, 4, 0.01)
	defer func() {
		if recover() == nil {
			t.Fatal("EstimateR before Ready did not panic")
		}
	}()
	est.EstimateR(mat.Diag(0))
}

func TestAdaptiveFilterLearnsR(t *testing.T) {
	// Feed a constant-truth stream whose real measurement noise (sigma=2,
	// R=4) is far larger than the filter's assumed R (0.01). The adaptive
	// wrapper must inflate R toward the truth, which in turn lowers the
	// steady-state gain versus the non-adaptive filter.
	rng := rand.New(rand.NewSource(11))
	base := MustNew(scalarConfig(1e-4, 0.01, 0))
	fixed := MustNew(scalarConfig(1e-4, 0.01, 0))
	ad, err := NewAdaptive(base, 50, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		z := mat.Vec(5 + 2*rng.NormFloat64())
		if err := ad.Step(z); err != nil {
			t.Fatal(err)
		}
		if err := fixed.Step(z); err != nil {
			t.Fatal(err)
		}
	}
	learned := ad.r.At(0, 0)
	if learned < 1 {
		t.Fatalf("adaptive R = %v, want inflated toward 4", learned)
	}
	if gA, gF := ad.Gain().At(0, 0), fixed.Gain().At(0, 0); gA >= gF {
		t.Fatalf("adaptive gain %v >= fixed gain %v; R inflation should lower gain", gA, gF)
	}
	// And the smoother estimate should be at least as close to truth.
	if got := ad.State().At(0, 0); math.Abs(got-5) > 0.5 {
		t.Fatalf("adaptive estimate = %v, want ~5", got)
	}
}

func TestAdaptiveCorrectPropagatesError(t *testing.T) {
	base := MustNew(scalarConfig(0.1, 0.1, 0))
	ad, err := NewAdaptive(base, 10, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	ad.Predict()
	if err := ad.Correct(mat.Vec(1, 2)); err == nil {
		t.Fatal("adaptive Correct accepted bad measurement")
	}
}
