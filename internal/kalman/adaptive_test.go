package kalman

import (
	"math"
	"math/rand"
	"testing"

	"streamkf/internal/mat"
)

func TestNoiseEstimatorValidation(t *testing.T) {
	if _, err := NewNoiseEstimator(0, 10, 0.01); err == nil {
		t.Fatal("accepted m=0")
	}
	if _, err := NewNoiseEstimator(1, 1, 0.01); err == nil {
		t.Fatal("accepted window=1")
	}
	if _, err := NewNoiseEstimator(1, 10, 0); err == nil {
		t.Fatal("accepted floor=0")
	}
}

func TestNoiseEstimatorWindow(t *testing.T) {
	est, err := NewNoiseEstimator(1, 3, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if est.Ready() {
		t.Fatal("Ready before any observations")
	}
	est.Observe(mat.Vec(1))
	est.Observe(mat.Vec(-1))
	if est.Ready() {
		t.Fatal("Ready before window filled")
	}
	est.Observe(mat.Vec(2))
	if !est.Ready() {
		t.Fatal("not Ready after window filled")
	}
	// Innovation second moment = (1+1+4)/3 = 2; with HPH^T = 0.5 the
	// estimate must be 1.5.
	r := est.EstimateR(mat.Diag(0.5))
	if math.Abs(r.At(0, 0)-1.5) > 1e-12 {
		t.Fatalf("EstimateR = %v, want 1.5", r.At(0, 0))
	}
}

func TestNoiseEstimatorFloor(t *testing.T) {
	est, err := NewNoiseEstimator(1, 2, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	est.Observe(mat.Vec(0.01))
	est.Observe(mat.Vec(-0.01))
	r := est.EstimateR(mat.Diag(1.0)) // estimate would be negative
	if r.At(0, 0) != 0.25 {
		t.Fatalf("floored EstimateR = %v, want 0.25", r.At(0, 0))
	}
}

func TestNoiseEstimatorNotReadyPanics(t *testing.T) {
	est, _ := NewNoiseEstimator(1, 4, 0.01)
	defer func() {
		if recover() == nil {
			t.Fatal("EstimateR before Ready did not panic")
		}
	}()
	est.EstimateR(mat.Diag(0))
}

func TestAdaptiveFilterLearnsR(t *testing.T) {
	// Feed a constant-truth stream whose real measurement noise (sigma=2,
	// R=4) is far larger than the filter's assumed R (0.01). The adaptive
	// wrapper must inflate R toward the truth, which in turn lowers the
	// steady-state gain versus the non-adaptive filter.
	rng := rand.New(rand.NewSource(11))
	base := MustNew(scalarConfig(1e-4, 0.01, 0))
	fixed := MustNew(scalarConfig(1e-4, 0.01, 0))
	ad, err := NewAdaptive(base, 50, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		z := mat.Vec(5 + 2*rng.NormFloat64())
		if err := ad.Step(z); err != nil {
			t.Fatal(err)
		}
		if err := fixed.Step(z); err != nil {
			t.Fatal(err)
		}
	}
	learned := ad.r.At(0, 0)
	if learned < 1 {
		t.Fatalf("adaptive R = %v, want inflated toward 4", learned)
	}
	if gA, gF := ad.Gain().At(0, 0), fixed.Gain().At(0, 0); gA >= gF {
		t.Fatalf("adaptive gain %v >= fixed gain %v; R inflation should lower gain", gA, gF)
	}
	// And the smoother estimate should be at least as close to truth.
	if got := ad.State().At(0, 0); math.Abs(got-5) > 0.5 {
		t.Fatalf("adaptive estimate = %v, want ~5", got)
	}
}

func TestAdaptiveCorrectPropagatesError(t *testing.T) {
	base := MustNew(scalarConfig(0.1, 0.1, 0))
	ad, err := NewAdaptive(base, 10, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	ad.Predict()
	if err := ad.Correct(mat.Vec(1, 2)); err == nil {
		t.Fatal("adaptive Correct accepted bad measurement")
	}
}

func TestWhitenessWhiteSequence(t *testing.T) {
	est, err := NewNoiseEstimator(1, 64, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := est.Whiteness(); ok {
		t.Fatal("Whiteness ready before window filled")
	}
	// Deterministic pseudo-white sequence: alternating-sign values with
	// varying magnitude have near-zero lag-1 autocorrelation.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 64; i++ {
		est.Observe(mat.Vec(rng.NormFloat64()))
	}
	rho, ok := est.Whiteness()
	if !ok {
		t.Fatal("Whiteness not ready after a full window")
	}
	if math.Abs(rho) > est.WhitenessBound() {
		t.Fatalf("white sequence has rho = %v beyond bound %v", rho, est.WhitenessBound())
	}
}

func TestWhitenessCorrelatedSequence(t *testing.T) {
	est, err := NewNoiseEstimator(1, 32, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	// A slow ramp is maximally correlated at lag 1.
	for i := 0; i < 32; i++ {
		est.Observe(mat.Vec(1 + 0.01*float64(i)))
	}
	rho, ok := est.Whiteness()
	if !ok {
		t.Fatal("Whiteness not ready")
	}
	if rho < 0.9 {
		t.Fatalf("ramp innovations have rho = %v, want ~1 (mis-modeled stream must be flagged)", rho)
	}
	if rho <= est.WhitenessBound() {
		t.Fatalf("rho %v within bound %v; health flag would miss the mis-model", rho, est.WhitenessBound())
	}
}

// TestObserveZeroAllocWhenWarm pins the ring-buffer reuse: a warm
// estimator records innovations and evaluates whiteness without heap
// allocation, so the per-stream health tap stays off the ingest path's
// allocation budget.
func TestObserveZeroAllocWhenWarm(t *testing.T) {
	est, err := NewNoiseEstimator(2, 8, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	d := mat.Vec(0.5, -0.5)
	for i := 0; i < 8; i++ {
		est.Observe(d)
	}
	if n := testing.AllocsPerRun(500, func() {
		est.Observe(d)
		est.Whiteness()
	}); n != 0 {
		t.Fatalf("warm Observe+Whiteness allocates %v per run, want 0", n)
	}
}

func TestObserveFilter(t *testing.T) {
	f := MustNew(scalarConfig(0.1, 0.1, 0))
	est, err := NewNoiseEstimator(1, 4, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if est.ObserveFilter(f) {
		t.Fatal("ObserveFilter before any correction reported an innovation")
	}
	for i := 0; i < 5; i++ {
		f.Predict()
		if err := f.Correct(mat.Vec(float64(i))); err != nil {
			t.Fatal(err)
		}
		if !est.ObserveFilter(f) {
			t.Fatal("ObserveFilter after Correct found no innovation")
		}
	}
	if !est.Ready() {
		t.Fatal("estimator not ready after window+1 corrections")
	}
}
