package kalman

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"streamkf/internal/mat"
)

// scalarConfig returns a 1-state constant model: x_{k+1} = x_k + w.
func scalarConfig(q, r, x0 float64) Config {
	return Config{
		Phi: Static(mat.Identity(1)),
		H:   mat.Identity(1),
		Q:   mat.Diag(q),
		R:   mat.Diag(r),
		X0:  mat.Vec(x0),
		P0:  mat.Diag(1),
	}
}

// cvConfig returns the paper's Example 1 linear (constant-velocity) model
// in one dimension: state [pos, vel], measurement pos.
func cvConfig(dt, q, r float64) Config {
	return Config{
		Phi: Static(mat.FromRows([][]float64{{1, dt}, {0, 1}})),
		H:   mat.FromRows([][]float64{{1, 0}}),
		Q:   mat.ScaledIdentity(2, q),
		R:   mat.Diag(r),
		X0:  mat.Vec(0, 0),
		P0:  mat.ScaledIdentity(2, 10),
	}
}

func TestConfigValidate(t *testing.T) {
	good := scalarConfig(0.05, 0.05, 0)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := map[string]func(*Config){
		"nil Phi":     func(c *Config) { c.Phi = nil },
		"nil H":       func(c *Config) { c.H = nil },
		"nil Q":       func(c *Config) { c.Q = nil },
		"nil R":       func(c *Config) { c.R = nil },
		"nil X0":      func(c *Config) { c.X0 = nil },
		"X0 not vec":  func(c *Config) { c.X0 = mat.New(1, 2) },
		"Q wrong dim": func(c *Config) { c.Q = mat.Identity(3) },
		"R wrong dim": func(c *Config) { c.R = mat.Identity(2) },
		"H wrong dim": func(c *Config) { c.H = mat.New(1, 5) },
		"P0 wrong":    func(c *Config) { c.P0 = mat.Identity(4) },
		"Phi wrong":   func(c *Config) { c.Phi = Static(mat.Identity(3)) },
	}
	for name, mutate := range cases {
		cfg := scalarConfig(0.05, 0.05, 0)
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: New accepted invalid config", name)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic on invalid config")
		}
	}()
	MustNew(Config{})
}

func TestDefaultP0(t *testing.T) {
	cfg := scalarConfig(0.1, 0.1, 0)
	cfg.P0 = nil
	f := MustNew(cfg)
	if got := f.Cov().At(0, 0); got != 1e3 {
		t.Fatalf("default P0 = %v, want 1e3", got)
	}
}

func TestConvergesToConstant(t *testing.T) {
	f := MustNew(scalarConfig(1e-6, 0.5, 0))
	for i := 0; i < 200; i++ {
		if err := f.Step(mat.Vec(7)); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.State().At(0, 0); math.Abs(got-7) > 0.05 {
		t.Fatalf("estimate = %v, want ~7", got)
	}
	if f.K() != 200 {
		t.Fatalf("K = %d, want 200", f.K())
	}
}

func TestTracksNoisyConstantUnbiased(t *testing.T) {
	// KF property 1: the estimate is unbiased. With a constant truth and
	// zero-mean noise, the long-run estimate must approach the truth.
	rng := rand.New(rand.NewSource(42))
	const truth = 3.25
	f := MustNew(scalarConfig(1e-5, 0.25, 0))
	var last float64
	for i := 0; i < 5000; i++ {
		z := truth + 0.5*rng.NormFloat64()
		if err := f.Step(mat.Vec(z)); err != nil {
			t.Fatal(err)
		}
		last = f.State().At(0, 0)
	}
	if math.Abs(last-truth) > 0.1 {
		t.Fatalf("estimate = %v, want within 0.1 of %v", last, truth)
	}
}

func TestTracksRamp(t *testing.T) {
	// A constant-velocity model must lock onto a linear trend and then
	// predict it with near-zero innovation.
	f := MustNew(cvConfig(1, 1e-4, 0.01))
	slope := 2.5
	for k := 1; k <= 100; k++ {
		if err := f.Step(mat.Vec(slope * float64(k))); err != nil {
			t.Fatal(err)
		}
	}
	st := f.State()
	if math.Abs(st.At(1, 0)-slope) > 0.05 {
		t.Fatalf("velocity estimate = %v, want ~%v", st.At(1, 0), slope)
	}
	// Pure prediction should extrapolate the ramp.
	f.Predict()
	want := slope * 101
	if got := f.PredictedMeasurement().At(0, 0); math.Abs(got-want) > 0.5 {
		t.Fatalf("predicted = %v, want ~%v", got, want)
	}
}

func TestPredictOnlyFollowsModel(t *testing.T) {
	f := MustNew(cvConfig(0.5, 0.01, 0.01))
	f.Reset(mat.Vec(10, 2), mat.ScaledIdentity(2, 0.1))
	f.Predict()
	// x = 10 + 2*0.5 = 11.
	if got := f.State().At(0, 0); math.Abs(got-11) > 1e-12 {
		t.Fatalf("predicted pos = %v, want 11", got)
	}
	if f.Corrected() {
		t.Fatal("Corrected() true after Predict")
	}
}

func TestCovarianceGrowsOnPredictShrinksOnCorrect(t *testing.T) {
	f := MustNew(scalarConfig(0.1, 0.1, 0))
	before := f.Cov().At(0, 0)
	f.Predict()
	grown := f.Cov().At(0, 0)
	if grown <= before {
		t.Fatalf("P after Predict = %v, want > %v", grown, before)
	}
	if err := f.Correct(mat.Vec(0)); err != nil {
		t.Fatal(err)
	}
	if shrunk := f.Cov().At(0, 0); shrunk >= grown {
		t.Fatalf("P after Correct = %v, want < %v", shrunk, grown)
	}
	if !f.Corrected() {
		t.Fatal("Corrected() false after Correct")
	}
}

func TestCorrectDimensionError(t *testing.T) {
	f := MustNew(scalarConfig(0.1, 0.1, 0))
	f.Predict()
	if err := f.Correct(mat.Vec(1, 2)); err == nil {
		t.Fatal("Correct accepted wrong-dimension measurement")
	}
	if _, err := f.NIS(mat.Vec(1, 2)); err == nil {
		t.Fatal("NIS accepted wrong-dimension measurement")
	}
}

func TestGainAndInnovationAccessors(t *testing.T) {
	f := MustNew(scalarConfig(0.1, 0.1, 0))
	if f.Gain() != nil || f.Innovation() != nil {
		t.Fatal("Gain/Innovation non-nil before first correction")
	}
	f.Predict()
	if err := f.Correct(mat.Vec(5)); err != nil {
		t.Fatal(err)
	}
	if f.Gain() == nil || f.Innovation() == nil {
		t.Fatal("Gain/Innovation nil after correction")
	}
	if got := f.Innovation().At(0, 0); math.Abs(got-5) > 1e-12 {
		t.Fatalf("innovation = %v, want 5 (x^- was 0)", got)
	}
}

func TestGainBalancesNoiseRatio(t *testing.T) {
	// With huge R relative to Q the gain must be small (trust the model);
	// with tiny R it must approach 1 (trust the measurement).
	trusting := MustNew(scalarConfig(0.01, 1e-8, 0))
	trusting.Predict()
	if err := trusting.Correct(mat.Vec(1)); err != nil {
		t.Fatal(err)
	}
	if g := trusting.Gain().At(0, 0); g < 0.999 {
		t.Fatalf("gain with tiny R = %v, want ~1", g)
	}
	skeptical := MustNew(scalarConfig(1e-8, 1e6, 0))
	skeptical.Predict()
	if err := skeptical.Correct(mat.Vec(1)); err != nil {
		t.Fatal(err)
	}
	if g := skeptical.Gain().At(0, 0); g > 0.01 {
		t.Fatalf("gain with huge R = %v, want ~0", g)
	}
}

func TestNIS(t *testing.T) {
	f := MustNew(scalarConfig(0.1, 0.1, 0))
	f.Predict()
	near, err := f.NIS(mat.Vec(0.01))
	if err != nil {
		t.Fatal(err)
	}
	far, err := f.NIS(mat.Vec(50))
	if err != nil {
		t.Fatal(err)
	}
	if far <= near {
		t.Fatalf("NIS(far) = %v <= NIS(near) = %v", far, near)
	}
	// NIS must not mutate the filter.
	if f.State().At(0, 0) != 0 {
		t.Fatal("NIS mutated filter state")
	}
}

func TestCloneIndependentAndEqual(t *testing.T) {
	f := MustNew(cvConfig(1, 0.05, 0.05))
	for k := 1; k <= 10; k++ {
		if err := f.Step(mat.Vec(float64(k))); err != nil {
			t.Fatal(err)
		}
	}
	c := f.Clone()
	if !StateEqual(f, c) {
		t.Fatal("clone not StateEqual to original")
	}
	c.Predict()
	if StateEqual(f, c) {
		t.Fatal("advancing clone affected original (or StateEqual broken)")
	}
	if f.K() == c.K() {
		t.Fatal("clone shares time index")
	}
}

func TestMirrorSynchronyProperty(t *testing.T) {
	// The DKF invariant: two filters starting identical and fed identical
	// predict/correct sequences remain bit-identical, regardless of which
	// steps carry corrections.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		server := MustNew(cvConfig(1, 0.05, 0.05))
		mirror := server.Clone()
		for k := 0; k < 50; k++ {
			server.Predict()
			mirror.Predict()
			if rng.Intn(2) == 0 {
				z := mat.Vec(rng.NormFloat64() * 10)
				if server.Correct(z) != nil || mirror.Correct(z) != nil {
					return false
				}
			}
			if !StateEqual(server, mirror) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCovarianceStaysPSDAndSymmetricProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		flt := MustNew(cvConfig(0.1+rng.Float64(), 0.01+rng.Float64(), 0.01+rng.Float64()))
		for k := 0; k < 100; k++ {
			flt.Predict()
			if rng.Intn(3) > 0 {
				if flt.Correct(mat.Vec(rng.NormFloat64()*100)) != nil {
					return false
				}
			}
			p := flt.Cov()
			if !mat.IsFinite(p) {
				return false
			}
			if !mat.ApproxEqual(p, mat.Transpose(p), 1e-9) {
				return false
			}
			// Diagonal of a PSD matrix is non-negative.
			for i := 0; i < p.Rows(); i++ {
				if p.At(i, i) < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestResetRewinds(t *testing.T) {
	f := MustNew(scalarConfig(0.1, 0.1, 0))
	for i := 0; i < 5; i++ {
		if err := f.Step(mat.Vec(9)); err != nil {
			t.Fatal(err)
		}
	}
	f.Reset(mat.Vec(1), mat.Diag(2))
	if f.K() != 0 || f.State().At(0, 0) != 1 || f.Cov().At(0, 0) != 2 {
		t.Fatalf("Reset left k=%d x=%v P=%v", f.K(), f.State(), f.Cov())
	}
	if f.Gain() != nil || f.Innovation() != nil {
		t.Fatal("Reset did not clear gain/innovation")
	}
}

func TestSetNoise(t *testing.T) {
	f := MustNew(scalarConfig(0.1, 0.1, 0))
	f.SetNoise(mat.Diag(0.5), mat.Diag(0.7))
	if f.q.At(0, 0) != 0.5 || f.r.At(0, 0) != 0.7 {
		t.Fatalf("SetNoise: Q=%v R=%v", f.q, f.r)
	}
	f.SetNoise(nil, nil) // no-op
	if f.q.At(0, 0) != 0.5 {
		t.Fatal("SetNoise(nil,nil) changed Q")
	}
}

func TestTimeVaryingPhi(t *testing.T) {
	// Sinusoidal-style model: phi depends on k. Ensure Predict consults
	// the transition for the current step index.
	var seen []int
	f := MustNew(Config{
		Phi: func(k int) *mat.Matrix {
			seen = append(seen, k)
			return mat.Identity(1)
		},
		H:  mat.Identity(1),
		Q:  mat.Diag(0.1),
		R:  mat.Diag(0.1),
		X0: mat.Vec(0),
		P0: mat.Diag(1),
	})
	f.Predict()
	f.Predict()
	f.Predict()
	// One call during Validate at k=0 plus one per Predict at k=0,1,2.
	want := []int{0, 0, 1, 2}
	if len(seen) != len(want) {
		t.Fatalf("phi calls = %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("phi calls = %v, want %v", seen, want)
		}
	}
}
