package kalman

import (
	"fmt"

	"streamkf/internal/mat"
)

// SmoothResult holds the fixed-interval (Rauch–Tung–Striebel) smoothed
// trajectory: for each step the smoothed state estimate and covariance.
type SmoothResult struct {
	States []*mat.Matrix // smoothed x_k|N, one per measurement
	Covs   []*mat.Matrix // smoothed P_k|N
}

// Smooth runs a forward Kalman filter pass over the measurements and a
// backward Rauch–Tung–Striebel pass, returning the fixed-interval
// smoothed trajectory. Where the online filter KFc (paper §4.3) smooths
// causally — each output uses only past data — the RTS smoother uses the
// whole interval, making it the right tool for offline reprocessing of
// archived streams (e.g. cleaning a synopsis before analysis).
//
// cfg describes the model exactly as for New; measurements is the ordered
// list of m×1 measurement vectors. Time-varying Phi is supported.
func Smooth(cfg Config, measurements []*mat.Matrix) (*SmoothResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := len(measurements)
	if n == 0 {
		return &SmoothResult{}, nil
	}
	f, err := New(cfg)
	if err != nil {
		return nil, err
	}

	// Forward pass, recording the prior and posterior moments each step.
	priorX := make([]*mat.Matrix, n)
	priorP := make([]*mat.Matrix, n)
	postX := make([]*mat.Matrix, n)
	postP := make([]*mat.Matrix, n)
	phis := make([]*mat.Matrix, n)
	for k, z := range measurements {
		phis[k] = f.phi(f.k).Clone()
		f.Predict()
		priorX[k] = f.State()
		priorP[k] = f.Cov()
		if err := f.Correct(z); err != nil {
			return nil, fmt.Errorf("kalman: Smooth forward pass step %d: %w", k, err)
		}
		postX[k] = f.State()
		postP[k] = f.Cov()
	}

	// Backward RTS pass:
	//   C_k = P_k φ_k^T (P_{k+1}^-)^-1
	//   x_k|N = x_k + C_k (x_{k+1}|N - x_{k+1}^-)
	//   P_k|N = P_k + C_k (P_{k+1}|N - P_{k+1}^-) C_k^T
	states := make([]*mat.Matrix, n)
	covs := make([]*mat.Matrix, n)
	states[n-1] = postX[n-1]
	covs[n-1] = postP[n-1]
	for k := n - 2; k >= 0; k-- {
		phiNext := phis[k+1]
		priorInv, err := mat.Inverse(priorP[k+1])
		if err != nil {
			return nil, fmt.Errorf("kalman: Smooth backward pass step %d: %w", k, err)
		}
		c := mat.Mul3(postP[k], mat.Transpose(phiNext), priorInv)
		dx := mat.Sub(states[k+1], priorX[k+1])
		states[k] = mat.Add(postX[k], mat.Mul(c, dx))
		dp := mat.Sub(covs[k+1], priorP[k+1])
		covs[k] = mat.Symmetrize(mat.Add(postP[k], mat.Mul3(c, dp, mat.Transpose(c))))
	}
	return &SmoothResult{States: states, Covs: covs}, nil
}

// MeasurementsFromValues converts a slice of scalar readings into the
// m=1 measurement vectors Smooth expects.
func MeasurementsFromValues(vals []float64) []*mat.Matrix {
	out := make([]*mat.Matrix, len(vals))
	for i, v := range vals {
		out[i] = mat.Vec(v)
	}
	return out
}
