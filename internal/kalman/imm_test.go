package kalman

import (
	"math"
	"math/rand"
	"testing"

	"streamkf/internal/mat"
)

// immBank builds a constant-model + constant-velocity bank over a shared
// 2-dim state (the constant model zeroes the velocity coupling).
func immBank() []*Filter {
	constant := MustNew(Config{
		Phi: Static(mat.FromRows([][]float64{{1, 0}, {0, 0}})),
		H:   mat.FromRows([][]float64{{1, 0}}),
		Q:   mat.ScaledIdentity(2, 0.01),
		R:   mat.Diag(0.25),
		X0:  mat.Vec(0, 0),
		P0:  mat.ScaledIdentity(2, 10),
	})
	cv := MustNew(Config{
		Phi: Static(mat.FromRows([][]float64{{1, 1}, {0, 1}})),
		H:   mat.FromRows([][]float64{{1, 0}}),
		Q:   mat.ScaledIdentity(2, 0.01),
		R:   mat.Diag(0.25),
		X0:  mat.Vec(0, 0),
		P0:  mat.ScaledIdentity(2, 10),
	})
	return []*Filter{constant, cv}
}

func TestNewIMMValidation(t *testing.T) {
	bank := immBank()
	if _, err := NewIMM(IMMConfig{Filters: bank[:1]}); err == nil {
		t.Fatal("accepted single-model bank")
	}
	if _, err := NewIMM(IMMConfig{Filters: []*Filter{bank[0], nil}}); err == nil {
		t.Fatal("accepted nil filter")
	}
	mixed := []*Filter{bank[0], MustNew(scalarConfig(0.1, 0.1, 0))}
	if _, err := NewIMM(IMMConfig{Filters: mixed}); err == nil {
		t.Fatal("accepted mismatched dims")
	}
	badTrans := mat.FromRows([][]float64{{0.5, 0.4}, {0.5, 0.5}})
	if _, err := NewIMM(IMMConfig{Filters: immBank(), Trans: badTrans}); err == nil {
		t.Fatal("accepted non-stochastic transition matrix")
	}
	negTrans := mat.FromRows([][]float64{{1.5, -0.5}, {0.5, 0.5}})
	if _, err := NewIMM(IMMConfig{Filters: immBank(), Trans: negTrans}); err == nil {
		t.Fatal("accepted negative transition probability")
	}
	if _, err := NewIMM(IMMConfig{Filters: immBank(), Prior: []float64{1}}); err == nil {
		t.Fatal("accepted short prior")
	}
	if _, err := NewIMM(IMMConfig{Filters: immBank(), Prior: []float64{0.7, 0.7}}); err == nil {
		t.Fatal("accepted unnormalized prior")
	}
	if _, err := NewIMM(IMMConfig{Filters: immBank()}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestIMMIdentifiesRegime(t *testing.T) {
	im, err := NewIMM(IMMConfig{Filters: immBank()})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	// Phase 1: constant level. The constant model must dominate.
	for k := 0; k < 150; k++ {
		if err := im.Step(mat.Vec(5 + 0.3*rng.NormFloat64())); err != nil {
			t.Fatal(err)
		}
	}
	if im.MostLikely() != 0 {
		t.Fatalf("constant phase: probabilities %v favour model %d", im.ModelProbabilities(), im.MostLikely())
	}
	// Phase 2: steep ramp. The CV model must take over.
	v := 5.0
	for k := 0; k < 150; k++ {
		v += 2
		if err := im.Step(mat.Vec(v + 0.3*rng.NormFloat64())); err != nil {
			t.Fatal(err)
		}
	}
	if im.MostLikely() != 1 {
		t.Fatalf("ramp phase: probabilities %v favour model %d", im.ModelProbabilities(), im.MostLikely())
	}
	if got := im.State().At(0, 0); math.Abs(got-v) > 2 {
		t.Fatalf("combined estimate %v, truth %v", got, v)
	}
}

func TestIMMProbabilitiesNormalized(t *testing.T) {
	im, err := NewIMM(IMMConfig{Filters: immBank()})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	v := 0.0
	for k := 0; k < 300; k++ {
		if k%100 < 50 {
			v += 1.5
		}
		if err := im.Step(mat.Vec(v + 0.5*rng.NormFloat64())); err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, p := range im.ModelProbabilities() {
			if p < 0 || math.IsNaN(p) {
				t.Fatalf("step %d: bad probability %v", k, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("step %d: probabilities sum to %v", k, sum)
		}
	}
}

func TestIMMBeatsWorstSingleModelOnRegimeData(t *testing.T) {
	// Mixed workload: flat then ramp then flat. The IMM's tracking RMSE
	// must beat the worse of the two fixed models and be within 2x the
	// better one.
	rng := rand.New(rand.NewSource(8))
	var truth []float64
	v := 10.0
	for i := 0; i < 200; i++ {
		truth = append(truth, v)
	}
	for i := 0; i < 200; i++ {
		v += 2
		truth = append(truth, v)
	}
	for i := 0; i < 200; i++ {
		truth = append(truth, v)
	}
	zs := make([]*mat.Matrix, len(truth))
	for i, tv := range truth {
		zs[i] = mat.Vec(tv + 0.5*rng.NormFloat64())
	}

	rmse := func(run func(z *mat.Matrix) float64) float64 {
		var s float64
		for i, z := range zs {
			e := run(z) - truth[i]
			s += e * e
		}
		return math.Sqrt(s / float64(len(zs)))
	}

	bank := immBank()
	im, err := NewIMM(IMMConfig{Filters: immBank()})
	if err != nil {
		t.Fatal(err)
	}
	immErr := rmse(func(z *mat.Matrix) float64 {
		if err := im.Step(z); err != nil {
			t.Fatal(err)
		}
		return im.State().At(0, 0)
	})
	constErr := rmse(func(z *mat.Matrix) float64 {
		if err := bank[0].Step(z); err != nil {
			t.Fatal(err)
		}
		return bank[0].State().At(0, 0)
	})
	bank2 := immBank()
	cvErr := rmse(func(z *mat.Matrix) float64 {
		if err := bank2[1].Step(z); err != nil {
			t.Fatal(err)
		}
		return bank2[1].State().At(0, 0)
	})

	worst := math.Max(constErr, cvErr)
	best := math.Min(constErr, cvErr)
	if immErr >= worst {
		t.Fatalf("IMM RMSE %v >= worst fixed %v", immErr, worst)
	}
	if immErr > 2*best {
		t.Fatalf("IMM RMSE %v more than 2x best fixed %v", immErr, best)
	}
}

func TestIMMPredictedMeasurement(t *testing.T) {
	im, err := NewIMM(IMMConfig{Filters: immBank()})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 50; k++ {
		if err := im.Step(mat.Vec(7)); err != nil {
			t.Fatal(err)
		}
	}
	if got := im.PredictedMeasurement().At(0, 0); math.Abs(got-7) > 0.5 {
		t.Fatalf("combined predicted measurement %v, want ~7", got)
	}
}
