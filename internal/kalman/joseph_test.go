package kalman

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"streamkf/internal/mat"
)

func josephConfig(q, r float64) Config {
	cfg := cvConfig(1, q, r)
	cfg.JosephForm = true
	return cfg
}

func TestJosephFormMatchesStandardInExactArithmetic(t *testing.T) {
	// On well-conditioned problems the two updates agree to near machine
	// precision.
	std := MustNew(cvConfig(1, 0.05, 0.05))
	jos := MustNew(josephConfig(0.05, 0.05))
	rng := rand.New(rand.NewSource(3))
	for k := 0; k < 200; k++ {
		z := mat.Vec(float64(k) + rng.NormFloat64())
		if err := std.Step(z); err != nil {
			t.Fatal(err)
		}
		if err := jos.Step(z); err != nil {
			t.Fatal(err)
		}
	}
	if !mat.ApproxEqual(std.State(), jos.State(), 1e-8) {
		t.Fatalf("states diverge: %v vs %v", std.State(), jos.State())
	}
	if !mat.ApproxEqual(std.Cov(), jos.Cov(), 1e-8) {
		t.Fatalf("covariances diverge: %v vs %v", std.Cov(), jos.Cov())
	}
}

func TestJosephFormKeepsCovariancePositiveDefinite(t *testing.T) {
	// Stress case: near-zero measurement noise drives the standard form
	// toward a singular covariance; Joseph must keep strictly positive
	// diagonals and pass a Cholesky after adding the next Q.
	cfg := josephConfig(1e-10, 1e-12)
	f := MustNew(cfg)
	for k := 0; k < 500; k++ {
		if err := f.Step(mat.Vec(float64(k))); err != nil {
			t.Fatal(err)
		}
		p := f.Cov()
		for i := 0; i < p.Rows(); i++ {
			if p.At(i, i) < 0 {
				t.Fatalf("step %d: negative variance %v", k, p.At(i, i))
			}
		}
		if !mat.IsFinite(p) {
			t.Fatalf("step %d: non-finite covariance", k)
		}
	}
}

func TestJosephCloneCarriesFlag(t *testing.T) {
	f := MustNew(josephConfig(0.1, 0.1))
	c := f.Clone()
	if !c.joseph {
		t.Fatal("Clone dropped JosephForm flag")
	}
}

// Property: both forms keep the mirror-synchrony property — a pair of
// Joseph filters fed identical sequences stays identical.
func TestJosephMirrorSynchronyProperty(t *testing.T) {
	fn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := MustNew(josephConfig(0.05, 0.05))
		b := a.Clone()
		for k := 0; k < 40; k++ {
			a.Predict()
			b.Predict()
			if rng.Intn(2) == 0 {
				z := mat.Vec(rng.NormFloat64() * 10)
				if a.Correct(z) != nil || b.Correct(z) != nil {
					return false
				}
			}
			if !StateEqual(a, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestJosephTracksSameAsStandard(t *testing.T) {
	// End behaviour sanity: Joseph tracks a ramp as well as standard.
	f := MustNew(josephConfig(1e-4, 0.01))
	for k := 1; k <= 100; k++ {
		if err := f.Step(mat.Vec(2.5 * float64(k))); err != nil {
			t.Fatal(err)
		}
	}
	if v := f.State().At(1, 0); math.Abs(v-2.5) > 0.05 {
		t.Fatalf("velocity = %v, want ~2.5", v)
	}
}
