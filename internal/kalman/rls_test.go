package kalman

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"streamkf/internal/mat"
)

func TestRLSRecoversLine(t *testing.T) {
	// Fit y = 3 + 2x from noisy samples.
	rng := rand.New(rand.NewSource(1))
	r, err := NewRLS(2, 1.0, 1e4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		x := rng.Float64() * 10
		y := 3 + 2*x + 0.01*rng.NormFloat64()
		r.Update(mat.Vec(1, x), y)
	}
	p := r.Params()
	if math.Abs(p.At(0, 0)-3) > 0.01 || math.Abs(p.At(1, 0)-2) > 0.01 {
		t.Fatalf("params = %v, want [3;2]", p)
	}
	if got := r.Predict(mat.Vec(1, 5)); math.Abs(got-13) > 0.05 {
		t.Fatalf("Predict(5) = %v, want ~13", got)
	}
	if r.Steps() != 500 {
		t.Fatalf("Steps = %d, want 500", r.Steps())
	}
}

func TestRLSForgettingTracksDrift(t *testing.T) {
	// With lambda < 1 the estimator must re-converge after the underlying
	// parameters jump; with lambda == 1 it adapts much more slowly.
	run := func(lambda float64) float64 {
		rng := rand.New(rand.NewSource(2))
		r, err := NewRLS(2, lambda, 1e4)
		if err != nil {
			t.Fatal(err)
		}
		slope := 1.0
		for i := 0; i < 2000; i++ {
			if i == 1000 {
				slope = 5.0 // regime change
			}
			x := rng.Float64() * 4
			r.Update(mat.Vec(1, x), slope*x)
		}
		return math.Abs(r.Params().At(1, 0) - 5)
	}
	fast := run(0.95)
	slow := run(1.0)
	if fast >= slow {
		t.Fatalf("forgetting lambda=0.95 err %v >= lambda=1 err %v", fast, slow)
	}
	if fast > 0.05 {
		t.Fatalf("lambda=0.95 final err = %v, want < 0.05", fast)
	}
}

func TestRLSValidation(t *testing.T) {
	if _, err := NewRLS(0, 1, 1); err == nil {
		t.Fatal("accepted n=0")
	}
	if _, err := NewRLS(2, 0, 1); err == nil {
		t.Fatal("accepted lambda=0")
	}
	if _, err := NewRLS(2, 1.5, 1); err == nil {
		t.Fatal("accepted lambda>1")
	}
	if _, err := NewRLS(2, 1, 0); err == nil {
		t.Fatal("accepted delta=0")
	}
}

func TestRLSUpdateDimPanics(t *testing.T) {
	r, _ := NewRLS(2, 1, 1e4)
	defer func() {
		if recover() == nil {
			t.Fatal("Update with wrong regressor dim did not panic")
		}
	}()
	r.Update(mat.Vec(1), 1)
}

// Property: on noiseless data RLS interpolates exactly once it has seen
// enough independent regressors.
func TestRLSExactFitProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := rng.NormFloat64() * 5
		b := rng.NormFloat64() * 5
		r, err := NewRLS(2, 1, 1e8)
		if err != nil {
			return false
		}
		for i := 0; i < 50; i++ {
			x := rng.NormFloat64() * 3
			r.Update(mat.Vec(1, x), a+b*x)
		}
		x := rng.NormFloat64() * 3
		return math.Abs(r.Predict(mat.Vec(1, x))-(a+b*x)) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
