package kalman

import (
	"math"
	"math/rand"
	"testing"

	"streamkf/internal/mat"
)

// pendulumEKF builds an EKF for a damped pendulum-like non-linear system
//
//	theta' = theta + omega*dt
//	omega' = omega - g*sin(theta)*dt
//
// measuring theta only. This is the footnote-1 style case in the paper:
// rotational state makes the propagation non-linear.
func pendulumEKF(dt, g, q, r float64) *EKF {
	f := func(_ int, x *mat.Matrix) *mat.Matrix {
		th, om := x.At(0, 0), x.At(1, 0)
		return mat.Vec(th+om*dt, om-g*math.Sin(th)*dt)
	}
	fJac := func(_ int, x *mat.Matrix) *mat.Matrix {
		th := x.At(0, 0)
		return mat.FromRows([][]float64{
			{1, dt},
			{-g * math.Cos(th) * dt, 1},
		})
	}
	h := func(x *mat.Matrix) *mat.Matrix { return mat.Vec(x.At(0, 0)) }
	hJac := func(_ int, _ *mat.Matrix) *mat.Matrix {
		return mat.FromRows([][]float64{{1, 0}})
	}
	e, err := NewEKF(EKFConfig{
		F: f, FJac: fJac, H: h, HJac: hJac,
		Q: mat.ScaledIdentity(2, q), R: mat.Diag(r),
		X0: mat.Vec(0.1, 0), P0: mat.ScaledIdentity(2, 1),
	})
	if err != nil {
		panic(err)
	}
	return e
}

func TestEKFTracksPendulum(t *testing.T) {
	const dt, g = 0.01, 9.8
	rng := rand.New(rand.NewSource(3))
	e := pendulumEKF(dt, g, 1e-6, 0.01)
	// Simulate the true pendulum.
	th, om := 0.5, 0.0
	var sumErr float64
	const steps = 2000
	for k := 0; k < steps; k++ {
		th, om = th+om*dt, om-g*math.Sin(th)*dt
		z := th + 0.1*rng.NormFloat64()
		if err := e.Step(mat.Vec(z)); err != nil {
			t.Fatal(err)
		}
		if k > steps/2 {
			sumErr += math.Abs(e.State().At(0, 0) - th)
		}
	}
	avg := sumErr / (steps / 2)
	if avg > 0.05 {
		t.Fatalf("EKF avg tracking error = %v, want < 0.05", avg)
	}
	if e.Innovation() == nil {
		t.Fatal("Innovation nil after corrections")
	}
}

func TestEKFBeatsDeadReckoning(t *testing.T) {
	// Without corrections the linearized model drifts under noise; the
	// EKF with corrections must end closer to the truth.
	const dt, g = 0.01, 9.8
	rng := rand.New(rand.NewSource(9))
	filtered := pendulumEKF(dt, g, 1e-6, 0.01)
	dead := pendulumEKF(dt, g, 1e-6, 0.01)
	th, om := 0.8, 0.0
	for k := 0; k < 1500; k++ {
		// Truth has unmodeled process noise.
		th, om = th+om*dt, om-g*math.Sin(th)*dt+0.002*rng.NormFloat64()
		if err := filtered.Step(mat.Vec(th + 0.05*rng.NormFloat64())); err != nil {
			t.Fatal(err)
		}
		dead.Predict()
	}
	errF := math.Abs(filtered.State().At(0, 0) - th)
	errD := math.Abs(dead.State().At(0, 0) - th)
	if errF >= errD {
		t.Fatalf("EKF err %v >= dead-reckoning err %v", errF, errD)
	}
}

func TestEKFCloneIndependent(t *testing.T) {
	e := pendulumEKF(0.01, 9.8, 1e-6, 0.01)
	if err := e.Step(mat.Vec(0.2)); err != nil {
		t.Fatal(err)
	}
	c := e.Clone()
	if !mat.Equal(c.State(), e.State()) || !mat.Equal(c.Cov(), e.Cov()) {
		t.Fatal("clone state mismatch")
	}
	c.Predict()
	if mat.Equal(c.State(), e.State()) {
		t.Fatal("clone shares state")
	}
}

func TestEKFConfigValidation(t *testing.T) {
	ok := EKFConfig{
		F:    func(_ int, x *mat.Matrix) *mat.Matrix { return x },
		FJac: func(_ int, _ *mat.Matrix) *mat.Matrix { return mat.Identity(1) },
		H:    func(x *mat.Matrix) *mat.Matrix { return x },
		HJac: func(_ int, _ *mat.Matrix) *mat.Matrix { return mat.Identity(1) },
		Q:    mat.Diag(0.1), R: mat.Diag(0.1), X0: mat.Vec(0),
	}
	if _, err := NewEKF(ok); err != nil {
		t.Fatalf("valid EKF config rejected: %v", err)
	}
	bad := ok
	bad.F = nil
	if _, err := NewEKF(bad); err == nil {
		t.Fatal("EKF accepted nil F")
	}
	bad = ok
	bad.Q = nil
	if _, err := NewEKF(bad); err == nil {
		t.Fatal("EKF accepted nil Q")
	}
	bad = ok
	bad.X0 = mat.New(1, 2)
	if _, err := NewEKF(bad); err == nil {
		t.Fatal("EKF accepted non-vector X0")
	}
	bad = ok
	bad.Q = mat.Identity(3)
	if _, err := NewEKF(bad); err == nil {
		t.Fatal("EKF accepted mismatched Q")
	}
}

func TestEKFMeasurementDimError(t *testing.T) {
	e := pendulumEKF(0.01, 9.8, 1e-6, 0.01)
	e.Predict()
	if err := e.Correct(mat.Vec(1, 2)); err == nil {
		t.Fatal("EKF.Correct accepted wrong-dimension measurement")
	}
}
