package kalman

import (
	"fmt"
	"math"

	"streamkf/internal/mat"
)

// IMM is an Interacting Multiple Model estimator: a bank of Kalman
// filters over different dynamics hypotheses, blended by Bayesian model
// probabilities with Markov switching between hypotheses.
//
// Where the hard switching of internal/adapt reinstalls one model when a
// challenger wins decisively, the IMM maintains a soft mixture at every
// step: each filter is re-initialized from a probability-weighted mix of
// the bank (the "interaction"), updated, and scored by its innovation
// likelihood. The combined estimate outperforms any single model during
// regime transitions, at N× the filtering cost. All candidate models
// must share the same state and measurement dimensions.
type IMM struct {
	filters []*Filter
	mu      []float64   // model probabilities
	trans   *mat.Matrix // Markov model-transition matrix (row-stochastic)
	n       int         // state dim
	m       int         // measurement dim
}

// IMMConfig configures an IMM estimator.
type IMMConfig struct {
	// Filters is the model bank. Each filter's state must have the same
	// dimension and measurement shape. The filters are adopted, not
	// copied: do not use them directly afterwards.
	Filters []*Filter
	// Trans is the model transition probability matrix: Trans[i][j] is
	// the prior probability of switching from model i to model j between
	// steps. Rows must sum to 1. If nil, a sticky default is used:
	// 0.95 self, the rest spread evenly.
	Trans *mat.Matrix
	// Prior is the initial model probability vector; nil means uniform.
	Prior []float64
}

// NewIMM constructs an IMM estimator.
func NewIMM(cfg IMMConfig) (*IMM, error) {
	k := len(cfg.Filters)
	if k < 2 {
		return nil, fmt.Errorf("kalman: IMM needs >= 2 filters, got %d", k)
	}
	n := cfg.Filters[0].StateDim()
	m := cfg.Filters[0].MeasDim()
	for i, f := range cfg.Filters {
		if f == nil {
			return nil, fmt.Errorf("kalman: IMM filter %d is nil", i)
		}
		if f.StateDim() != n || f.MeasDim() != m {
			return nil, fmt.Errorf("kalman: IMM filter %d has dims %d/%d, want %d/%d", i, f.StateDim(), f.MeasDim(), n, m)
		}
	}
	trans := cfg.Trans
	if trans == nil {
		trans = mat.New(k, k)
		off := 0.05 / float64(k-1)
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				if i == j {
					trans.Set(i, j, 0.95)
				} else {
					trans.Set(i, j, off)
				}
			}
		}
	}
	if trans.Rows() != k || trans.Cols() != k {
		return nil, fmt.Errorf("kalman: IMM transition matrix is %dx%d, want %dx%d", trans.Rows(), trans.Cols(), k, k)
	}
	for i := 0; i < k; i++ {
		var row float64
		for j := 0; j < k; j++ {
			if trans.At(i, j) < 0 {
				return nil, fmt.Errorf("kalman: IMM transition [%d][%d] negative", i, j)
			}
			row += trans.At(i, j)
		}
		if math.Abs(row-1) > 1e-9 {
			return nil, fmt.Errorf("kalman: IMM transition row %d sums to %v, want 1", i, row)
		}
	}
	mu := cfg.Prior
	if mu == nil {
		mu = make([]float64, k)
		for i := range mu {
			mu[i] = 1 / float64(k)
		}
	}
	if len(mu) != k {
		return nil, fmt.Errorf("kalman: IMM prior has %d entries, want %d", len(mu), k)
	}
	var sum float64
	for i, p := range mu {
		if p < 0 {
			return nil, fmt.Errorf("kalman: IMM prior[%d] negative", i)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		return nil, fmt.Errorf("kalman: IMM prior sums to %v, want 1", sum)
	}
	muCopy := make([]float64, k)
	copy(muCopy, mu)
	return &IMM{filters: cfg.Filters, mu: muCopy, trans: trans.Clone(), n: n, m: m}, nil
}

// Step runs one full IMM cycle with measurement z: interaction (mixing),
// per-model predict+correct, likelihood-based probability update, and
// combination.
func (im *IMM) Step(z *mat.Matrix) error {
	k := len(im.filters)

	// 1. Mixing probabilities: c_j = Σ_i trans[i][j] μ_i;
	//    μ_{i|j} = trans[i][j] μ_i / c_j.
	c := make([]float64, k)
	for j := 0; j < k; j++ {
		for i := 0; i < k; i++ {
			c[j] += im.trans.At(i, j) * im.mu[i]
		}
	}
	mixedX := make([]*mat.Matrix, k)
	mixedP := make([]*mat.Matrix, k)
	for j := 0; j < k; j++ {
		if c[j] < 1e-300 {
			// Dead hypothesis: keep its own state.
			mixedX[j] = im.filters[j].State()
			mixedP[j] = im.filters[j].Cov()
			continue
		}
		x := mat.New(im.n, 1)
		for i := 0; i < k; i++ {
			w := im.trans.At(i, j) * im.mu[i] / c[j]
			if w == 0 {
				continue
			}
			x = mat.AddInPlace(mat.Scale(w, im.filters[i].State()), x)
		}
		p := mat.New(im.n, im.n)
		for i := 0; i < k; i++ {
			w := im.trans.At(i, j) * im.mu[i] / c[j]
			if w == 0 {
				continue
			}
			dx := mat.Sub(im.filters[i].State(), x)
			spread := mat.AddInPlace(mat.Mul(dx, mat.Transpose(dx)), im.filters[i].Cov())
			p = mat.AddInPlace(mat.Scale(w, spread), p)
		}
		mixedX[j] = x
		mixedP[j] = mat.Symmetrize(p)
	}

	// 2. Per-model prediction and correction from the mixed initial
	// conditions, scoring each by its innovation likelihood.
	like := make([]float64, k)
	for j := 0; j < k; j++ {
		f := im.filters[j]
		f.setMoments(mixedX[j], mixedP[j])
		f.Predict()
		ll, err := f.LogLikelihood(z)
		if err != nil {
			return fmt.Errorf("kalman: IMM model %d: %w", j, err)
		}
		like[j] = ll
		if err := f.Correct(z); err != nil {
			return fmt.Errorf("kalman: IMM model %d: %w", j, err)
		}
	}

	// 3. Probability update: μ_j ∝ c_j · L_j, computed in log space for
	// numerical safety.
	maxLL := math.Inf(-1)
	for _, ll := range like {
		if ll > maxLL {
			maxLL = ll
		}
	}
	var norm float64
	for j := 0; j < k; j++ {
		im.mu[j] = c[j] * math.Exp(like[j]-maxLL)
		norm += im.mu[j]
	}
	if norm <= 0 {
		return fmt.Errorf("kalman: IMM probabilities collapsed to zero")
	}
	for j := range im.mu {
		im.mu[j] /= norm
	}
	return nil
}

// setMoments overwrites the filter's state and covariance in place,
// preserving its time index — the IMM mixing step.
func (f *Filter) setMoments(x, p *mat.Matrix) {
	f.x = x.Clone()
	f.p = p.Clone()
	f.ws.sValid = false
}

// State returns the probability-weighted combined state estimate.
func (im *IMM) State() *mat.Matrix {
	x := mat.New(im.n, 1)
	for j, f := range im.filters {
		x = mat.AddInPlace(mat.Scale(im.mu[j], f.State()), x)
	}
	return x
}

// PredictedMeasurement returns H_j-weighted combined measurement; all
// models share the measurement map in practice, so this uses the first
// filter's H applied to the combined state via each model's own
// PredictedMeasurement, weighted.
func (im *IMM) PredictedMeasurement() *mat.Matrix {
	z := mat.New(im.m, 1)
	for j, f := range im.filters {
		z = mat.AddInPlace(mat.Scale(im.mu[j], f.PredictedMeasurement()), z)
	}
	return z
}

// ModelProbabilities returns a copy of the current model probabilities.
func (im *IMM) ModelProbabilities() []float64 {
	out := make([]float64, len(im.mu))
	copy(out, im.mu)
	return out
}

// MostLikely returns the index of the currently most probable model.
func (im *IMM) MostLikely() int {
	best := 0
	for j := range im.mu {
		if im.mu[j] > im.mu[best] {
			best = j
		}
	}
	return best
}
