package kalman

import (
	"math"
	"math/rand"
	"testing"

	"streamkf/internal/mat"
)

func TestSmoothEmpty(t *testing.T) {
	res, err := Smooth(scalarConfig(0.1, 0.1, 0), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.States) != 0 {
		t.Fatal("non-empty result for no measurements")
	}
}

func TestSmoothInvalidConfig(t *testing.T) {
	if _, err := Smooth(Config{}, MeasurementsFromValues([]float64{1})); err == nil {
		t.Fatal("accepted invalid config")
	}
}

func TestSmoothBeatsFilterOnNoisyRamp(t *testing.T) {
	// The fixed-interval smoother uses future data, so its trajectory
	// RMSE must beat the causal filter's on a noisy linear trend.
	rng := rand.New(rand.NewSource(8))
	const n = 400
	truth := make([]float64, n)
	zs := make([]*mat.Matrix, n)
	for k := 0; k < n; k++ {
		truth[k] = 2 * float64(k+1)
		zs[k] = mat.Vec(truth[k] + 5*rng.NormFloat64())
	}
	cfg := cvConfig(1, 1e-4, 25)

	res, err := Smooth(cfg, zs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.States) != n || len(res.Covs) != n {
		t.Fatalf("result lengths %d/%d, want %d", len(res.States), len(res.Covs), n)
	}

	f := MustNew(cfg)
	var filtErr, smoothErr float64
	for k := 0; k < n; k++ {
		if err := f.Step(zs[k]); err != nil {
			t.Fatal(err)
		}
		fe := f.State().At(0, 0) - truth[k]
		se := res.States[k].At(0, 0) - truth[k]
		filtErr += fe * fe
		smoothErr += se * se
	}
	if smoothErr >= filtErr {
		t.Fatalf("smoother RMSE^2 %v >= filter %v", smoothErr, filtErr)
	}
}

func TestSmoothCovarianceShrinks(t *testing.T) {
	// Smoothed covariance is never larger than the filtered covariance
	// (in the diagonal entries) for interior points.
	rng := rand.New(rand.NewSource(3))
	const n = 100
	zs := make([]*mat.Matrix, n)
	for k := range zs {
		zs[k] = mat.Vec(float64(k) + rng.NormFloat64())
	}
	cfg := cvConfig(1, 0.01, 1)
	res, err := Smooth(cfg, zs)
	if err != nil {
		t.Fatal(err)
	}
	f := MustNew(cfg)
	for k := 0; k < n; k++ {
		if err := f.Step(zs[k]); err != nil {
			t.Fatal(err)
		}
		if k < n-1 {
			filtered := f.Cov().At(0, 0)
			smoothed := res.Covs[k].At(0, 0)
			if smoothed > filtered+1e-9 {
				t.Fatalf("step %d: smoothed var %v > filtered %v", k, smoothed, filtered)
			}
		}
	}
	// The final step must agree exactly with the filter (no future data).
	if got, want := res.States[n-1].At(0, 0), f.State().At(0, 0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("final smoothed state %v != filtered %v", got, want)
	}
}

func TestSmoothNoiselessExact(t *testing.T) {
	// On noiseless linear data with a matched model, the smoothed
	// positions must interpolate the data almost exactly.
	const n = 50
	vals := make([]float64, n)
	for k := range vals {
		vals[k] = 3 * float64(k+1)
	}
	res, err := Smooth(cvConfig(1, 1e-6, 1e-6), MeasurementsFromValues(vals))
	if err != nil {
		t.Fatal(err)
	}
	for k := 5; k < n; k++ {
		if d := math.Abs(res.States[k].At(0, 0) - vals[k]); d > 0.01 {
			t.Fatalf("step %d: smoothed %v, truth %v", k, res.States[k].At(0, 0), vals[k])
		}
	}
}

func TestMeasurementsFromValues(t *testing.T) {
	ms := MeasurementsFromValues([]float64{1, 2})
	if len(ms) != 2 || ms[1].At(0, 0) != 2 || ms[0].Rows() != 1 {
		t.Fatalf("MeasurementsFromValues = %v", ms)
	}
}
