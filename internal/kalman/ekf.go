package kalman

import (
	"errors"
	"fmt"

	"streamkf/internal/mat"
)

// StateFunc propagates a state vector non-linearly: x_{k+1} = f(k, x_k).
type StateFunc func(k int, x *mat.Matrix) *mat.Matrix

// MeasFunc maps a state vector to the expected measurement: z = h(x).
type MeasFunc func(x *mat.Matrix) *mat.Matrix

// JacobianFunc returns the Jacobian of a StateFunc or MeasFunc evaluated
// at x (and step k for transitions).
type JacobianFunc func(k int, x *mat.Matrix) *mat.Matrix

// EKF is an extended Kalman filter: the state propagation and measurement
// equations may be non-linear and are linearized at the most recent
// estimate (paper §3.2 cases 2–3, future work item 3). The EKF loses the
// provable optimality of the linear filter but retains its recursive
// prediction–correction structure.
type EKF struct {
	f     StateFunc
	fJac  JacobianFunc
	h     MeasFunc
	hJac  JacobianFunc
	q, r  *mat.Matrix
	x, p  *mat.Matrix
	k     int
	innov *mat.Matrix
}

// EKFConfig configures an extended Kalman filter.
type EKFConfig struct {
	F    StateFunc    // non-linear state propagation
	FJac JacobianFunc // ∂f/∂x at (k, x)
	H    MeasFunc     // non-linear measurement function
	HJac JacobianFunc // ∂h/∂x at x (k is ignored)
	Q    *mat.Matrix  // process noise covariance (n x n)
	R    *mat.Matrix  // measurement noise covariance (m x m)
	X0   *mat.Matrix  // initial state (n x 1)
	P0   *mat.Matrix  // initial covariance; nil means 1e3 * I
}

// NewEKF constructs an EKF, validating what can be validated statically.
func NewEKF(cfg EKFConfig) (*EKF, error) {
	if cfg.F == nil || cfg.FJac == nil || cfg.H == nil || cfg.HJac == nil {
		return nil, errors.New("kalman: EKFConfig requires F, FJac, H and HJac")
	}
	if cfg.Q == nil || cfg.R == nil || cfg.X0 == nil {
		return nil, errors.New("kalman: EKFConfig requires Q, R and X0")
	}
	n := cfg.X0.Rows()
	if cfg.X0.Cols() != 1 {
		return nil, fmt.Errorf("kalman: EKF X0 is %dx%d, want %dx1", cfg.X0.Rows(), cfg.X0.Cols(), n)
	}
	if cfg.Q.Rows() != n || cfg.Q.Cols() != n {
		return nil, fmt.Errorf("kalman: EKF Q is %dx%d, want %dx%d", cfg.Q.Rows(), cfg.Q.Cols(), n, n)
	}
	p0 := cfg.P0
	if p0 == nil {
		p0 = mat.ScaledIdentity(n, 1e3)
	}
	return &EKF{
		f: cfg.F, fJac: cfg.FJac, h: cfg.H, hJac: cfg.HJac,
		q: cfg.Q.Clone(), r: cfg.R.Clone(),
		x: cfg.X0.Clone(), p: p0.Clone(),
	}, nil
}

// Predict propagates the state through the non-linear model and the
// covariance through its linearization.
func (e *EKF) Predict() {
	jac := e.fJac(e.k, e.x)
	e.x = e.f(e.k, e.x)
	e.p = mat.Symmetrize(mat.AddInPlace(mat.Mul3(jac, e.p, mat.Transpose(jac)), e.q))
	e.k++
}

// Correct folds in measurement z using the measurement Jacobian at the
// current estimate.
func (e *EKF) Correct(z *mat.Matrix) error {
	hj := e.hJac(e.k, e.x)
	if z.Rows() != hj.Rows() || z.Cols() != 1 {
		return fmt.Errorf("kalman: EKF measurement is %dx%d, want %dx1", z.Rows(), z.Cols(), hj.Rows())
	}
	ht := mat.Transpose(hj)
	s := mat.AddInPlace(mat.Mul3(hj, e.p, ht), e.r)
	sInv, err := mat.Inverse(s)
	if err != nil {
		return fmt.Errorf("kalman: EKF innovation covariance singular: %w", err)
	}
	gain := mat.Mul3(e.p, ht, sInv)
	innov := mat.Sub(z, e.h(e.x))
	e.x = mat.AddInPlace(mat.Mul(gain, innov), e.x)
	e.p = mat.Symmetrize(mat.Mul(mat.Sub(mat.Identity(e.x.Rows()), mat.Mul(gain, hj)), e.p))
	e.innov = innov
	return nil
}

// Step runs Predict then Correct.
func (e *EKF) Step(z *mat.Matrix) error {
	e.Predict()
	return e.Correct(z)
}

// State returns a copy of the state estimate.
func (e *EKF) State() *mat.Matrix { return e.x.Clone() }

// Cov returns a copy of the error covariance.
func (e *EKF) Cov() *mat.Matrix { return e.p.Clone() }

// PredictedMeasurement returns h(x) for the current estimate.
func (e *EKF) PredictedMeasurement() *mat.Matrix { return e.h(e.x) }

// Innovation returns the most recent innovation, or nil before any Correct.
func (e *EKF) Innovation() *mat.Matrix {
	if e.innov == nil {
		return nil
	}
	return e.innov.Clone()
}

// Clone returns a deep copy sharing only the stateless model functions.
func (e *EKF) Clone() *EKF {
	c := &EKF{
		f: e.f, fJac: e.fJac, h: e.h, hJac: e.hJac,
		q: e.q.Clone(), r: e.r.Clone(),
		x: e.x.Clone(), p: e.p.Clone(), k: e.k,
	}
	if e.innov != nil {
		c.innov = e.innov.Clone()
	}
	return c
}
