package kalman

import (
	"errors"
	"fmt"

	"streamkf/internal/mat"
)

// StateFunc propagates a state vector non-linearly: x_{k+1} = f(k, x_k).
type StateFunc func(k int, x *mat.Matrix) *mat.Matrix

// MeasFunc maps a state vector to the expected measurement: z = h(x).
type MeasFunc func(x *mat.Matrix) *mat.Matrix

// JacobianFunc returns the Jacobian of a StateFunc or MeasFunc evaluated
// at x (and step k for transitions).
type JacobianFunc func(k int, x *mat.Matrix) *mat.Matrix

// ekfWorkspace holds the scratch matrices an EKF needs per step. Unlike
// the linear filter's workspace it carries no innovation-covariance
// cache: the measurement Jacobian is re-evaluated at every Correct, so S
// is never reusable across calls.
type ekfWorkspace struct {
	ht   *mat.Matrix // n x m: transpose of the current measurement Jacobian
	nn1  *mat.Matrix // n x n
	nn2  *mat.Matrix // n x n
	nn3  *mat.Matrix // n x n
	nm   *mat.Matrix // n x m
	mn   *mat.Matrix // m x n
	n1   *mat.Matrix // n x 1
	s    *mat.Matrix // m x m
	sInv *mat.Matrix // m x m
	mm   *mat.Matrix // m x m scratch for InverseInto
}

func newEKFWorkspace(n, m int) *ekfWorkspace {
	return &ekfWorkspace{
		ht:   mat.New(n, m),
		nn1:  mat.New(n, n),
		nn2:  mat.New(n, n),
		nn3:  mat.New(n, n),
		nm:   mat.New(n, m),
		mn:   mat.New(m, n),
		n1:   mat.New(n, 1),
		s:    mat.New(m, m),
		sInv: mat.New(m, m),
		mm:   mat.New(m, m),
	}
}

// EKF is an extended Kalman filter: the state propagation and measurement
// equations may be non-linear and are linearized at the most recent
// estimate (paper §3.2 cases 2–3, future work item 3). The EKF loses the
// provable optimality of the linear filter but retains its recursive
// prediction–correction structure.
type EKF struct {
	f     StateFunc
	fJac  JacobianFunc
	h     MeasFunc
	hJac  JacobianFunc
	q, r  *mat.Matrix
	x, p  *mat.Matrix
	k     int
	gain  *mat.Matrix // reused n x m Kalman gain buffer
	innov *mat.Matrix // reused m x 1 innovation buffer
	ws    *ekfWorkspace
}

// EKFConfig configures an extended Kalman filter.
type EKFConfig struct {
	F    StateFunc    // non-linear state propagation
	FJac JacobianFunc // ∂f/∂x at (k, x)
	H    MeasFunc     // non-linear measurement function
	HJac JacobianFunc // ∂h/∂x at x (k is ignored)
	Q    *mat.Matrix  // process noise covariance (n x n)
	R    *mat.Matrix  // measurement noise covariance (m x m)
	X0   *mat.Matrix  // initial state (n x 1)
	P0   *mat.Matrix  // initial covariance; nil means 1e3 * I
}

// NewEKF constructs an EKF, validating what can be validated statically.
func NewEKF(cfg EKFConfig) (*EKF, error) {
	if cfg.F == nil || cfg.FJac == nil || cfg.H == nil || cfg.HJac == nil {
		return nil, errors.New("kalman: EKFConfig requires F, FJac, H and HJac")
	}
	if cfg.Q == nil || cfg.R == nil || cfg.X0 == nil {
		return nil, errors.New("kalman: EKFConfig requires Q, R and X0")
	}
	n := cfg.X0.Rows()
	if cfg.X0.Cols() != 1 {
		return nil, fmt.Errorf("kalman: EKF X0 is %dx%d, want %dx1", cfg.X0.Rows(), cfg.X0.Cols(), n)
	}
	if cfg.Q.Rows() != n || cfg.Q.Cols() != n {
		return nil, fmt.Errorf("kalman: EKF Q is %dx%d, want %dx%d", cfg.Q.Rows(), cfg.Q.Cols(), n, n)
	}
	p0 := cfg.P0
	if p0 == nil {
		p0 = mat.ScaledIdentity(n, 1e3)
	}
	return &EKF{
		f: cfg.F, fJac: cfg.FJac, h: cfg.H, hJac: cfg.HJac,
		q: cfg.Q.Clone(), r: cfg.R.Clone(),
		x: cfg.X0.Clone(), p: p0.Clone(),
		ws: newEKFWorkspace(n, cfg.R.Rows()),
	}, nil
}

// Predict propagates the state through the non-linear model and the
// covariance through its linearization.
func (e *EKF) Predict() {
	jac := e.fJac(e.k, e.x)
	e.x = e.f(e.k, e.x)
	ws := e.ws
	mat.MulInto(ws.nn1, jac, e.p)
	mat.TransposeInto(ws.nn2, jac)
	mat.MulInto(ws.nn3, ws.nn1, ws.nn2)
	mat.AddInto(ws.nn3, ws.nn3, e.q)
	mat.SymmetrizeInto(e.p, ws.nn3)
	e.k++
}

// Correct folds in measurement z using the measurement Jacobian at the
// current estimate.
func (e *EKF) Correct(z *mat.Matrix) error {
	hj := e.hJac(e.k, e.x)
	if z.Rows() != hj.Rows() || z.Cols() != 1 {
		return fmt.Errorf("kalman: EKF measurement is %dx%d, want %dx1", z.Rows(), z.Cols(), hj.Rows())
	}
	ws := e.ws
	// S = H P H^T + R at the current linearization.
	mat.TransposeInto(ws.ht, hj)
	mat.MulInto(ws.mn, hj, e.p)
	mat.MulInto(ws.s, ws.mn, ws.ht)
	mat.AddInto(ws.s, ws.s, e.r)
	if _, err := mat.InverseInto(ws.sInv, ws.s, ws.mm); err != nil {
		return fmt.Errorf("kalman: EKF innovation covariance singular: %w", err)
	}
	if e.gain == nil {
		e.gain = mat.New(e.x.Rows(), e.r.Rows())
	}
	if e.innov == nil {
		e.innov = mat.New(e.r.Rows(), 1)
	}
	// K = P H^T S^-1.
	mat.MulInto(ws.nm, e.p, ws.ht)
	mat.MulInto(e.gain, ws.nm, ws.sInv)
	// d = z - h(x).
	mat.SubInto(e.innov, z, e.h(e.x))
	// x = x + K d.
	mat.MulInto(ws.n1, e.gain, e.innov)
	mat.AddInto(e.x, ws.n1, e.x)
	// P = sym((I - K H) P).
	mat.MulInto(ws.nn1, e.gain, hj)
	mat.IdentityMinusInto(ws.nn1, ws.nn1)
	mat.MulInto(ws.nn2, ws.nn1, e.p)
	mat.SymmetrizeInto(e.p, ws.nn2)
	return nil
}

// Step runs Predict then Correct.
func (e *EKF) Step(z *mat.Matrix) error {
	e.Predict()
	return e.Correct(z)
}

// State returns a copy of the state estimate.
func (e *EKF) State() *mat.Matrix { return e.x.Clone() }

// Cov returns a copy of the error covariance.
func (e *EKF) Cov() *mat.Matrix { return e.p.Clone() }

// PredictedMeasurement returns h(x) for the current estimate.
func (e *EKF) PredictedMeasurement() *mat.Matrix { return e.h(e.x) }

// Innovation returns the most recent innovation, or nil before any Correct.
func (e *EKF) Innovation() *mat.Matrix {
	if e.innov == nil {
		return nil
	}
	return e.innov.Clone()
}

// Clone returns a deep copy sharing only the stateless model functions.
// The clone gets a fresh workspace, so the pair share no mutable matrix.
func (e *EKF) Clone() *EKF {
	c := &EKF{
		f: e.f, fJac: e.fJac, h: e.h, hJac: e.hJac,
		q: e.q.Clone(), r: e.r.Clone(),
		x: e.x.Clone(), p: e.p.Clone(), k: e.k,
		ws: newEKFWorkspace(e.x.Rows(), e.r.Rows()),
	}
	if e.gain != nil {
		c.gain = e.gain.Clone()
	}
	if e.innov != nil {
		c.innov = e.innov.Clone()
	}
	return c
}
