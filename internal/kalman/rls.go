package kalman

import (
	"fmt"

	"streamkf/internal/mat"
)

// RLS implements exponentially-weighted recursive least squares.
//
// The paper observes (§3.2 case 4) that when measurements carry no
// confidence value they are treated as exact, and Kalman filtering
// degenerates to (weighted) least-squares fitting: the state is chosen to
// best explain the observations. RLS is that degenerate case, fitting
//
//	y_k = θ^T u_k + e_k
//
// recursively with forgetting factor λ ∈ (0, 1]. λ = 1 weighs all history
// equally; smaller λ adapts faster to drift.
type RLS struct {
	theta  *mat.Matrix // parameter estimate (n x 1)
	p      *mat.Matrix // inverse information matrix (n x n)
	lambda float64
	steps  int
}

// NewRLS returns an RLS estimator for n parameters with forgetting factor
// lambda. The initial estimate is zero with covariance delta * I; a large
// delta (e.g. 1e4) expresses an uninformative prior.
func NewRLS(n int, lambda, delta float64) (*RLS, error) {
	if n <= 0 {
		return nil, fmt.Errorf("kalman: NewRLS n = %d, want > 0", n)
	}
	if lambda <= 0 || lambda > 1 {
		return nil, fmt.Errorf("kalman: NewRLS lambda = %v, want (0, 1]", lambda)
	}
	if delta <= 0 {
		return nil, fmt.Errorf("kalman: NewRLS delta = %v, want > 0", delta)
	}
	return &RLS{
		theta:  mat.New(n, 1),
		p:      mat.ScaledIdentity(n, delta),
		lambda: lambda,
	}, nil
}

// Update folds in one observation: regressor u (n x 1) with response y.
// It returns the a priori prediction error y - θ^T u.
func (r *RLS) Update(u *mat.Matrix, y float64) float64 {
	if u.Rows() != r.theta.Rows() || u.Cols() != 1 {
		panic(fmt.Sprintf("kalman: RLS.Update regressor is %dx%d, want %dx1", u.Rows(), u.Cols(), r.theta.Rows()))
	}
	ut := mat.Transpose(u)
	e := y - mat.Mul(ut, r.theta).At(0, 0)
	pu := mat.Mul(r.p, u)
	denom := r.lambda + mat.Mul(ut, pu).At(0, 0)
	gain := mat.Scale(1/denom, pu)
	r.theta = mat.AddInPlace(mat.Scale(e, gain), r.theta)
	r.p = mat.Symmetrize(mat.Scale(1/r.lambda, mat.Sub(r.p, mat.Mul3(gain, ut, r.p))))
	r.steps++
	return e
}

// Predict returns the model output θ^T u for regressor u.
func (r *RLS) Predict(u *mat.Matrix) float64 {
	return mat.Mul(mat.Transpose(u), r.theta).At(0, 0)
}

// Params returns a copy of the current parameter estimate.
func (r *RLS) Params() *mat.Matrix { return r.theta.Clone() }

// Steps returns the number of observations folded in so far.
func (r *RLS) Steps() int { return r.steps }
