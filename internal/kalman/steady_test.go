package kalman

import (
	"math"
	"testing"

	"streamkf/internal/mat"
)

func TestSteadyStateScalar(t *testing.T) {
	// For phi=1, h=1 the DARE has the closed form
	// p = (q + sqrt(q^2 + 4 q r)) / 2 for the a posteriori covariance.
	q, r := 0.1, 0.5
	p, k, err := SteadyState(mat.Identity(1), mat.Identity(1), mat.Diag(q), mat.Diag(r), 1e-14, 10000)
	if err != nil {
		t.Fatal(err)
	}
	wantP := (q + math.Sqrt(q*q+4*q*r)) / 2 * r / (r + 0) // see below
	// Derive directly: fixed point of p = (p+q)r/(p+q+r).
	// Solve p^2 + p q - q r = 0 -> p = (-q + sqrt(q^2+4qr))/2.
	wantP = (-q + math.Sqrt(q*q+4*q*r)) / 2
	if math.Abs(p.At(0, 0)-wantP) > 1e-9 {
		t.Fatalf("steady P = %v, want %v", p.At(0, 0), wantP)
	}
	wantK := (wantP + q) / (wantP + q + r)
	if math.Abs(k.At(0, 0)-wantK) > 1e-9 {
		t.Fatalf("steady K = %v, want %v", k.At(0, 0), wantK)
	}
}

func TestSteadyStateMatchesDynamicFilter(t *testing.T) {
	// After many corrections a dynamic filter's gain must converge to the
	// steady-state gain.
	phi := mat.FromRows([][]float64{{1, 1}, {0, 1}})
	h := mat.FromRows([][]float64{{1, 0}})
	q := mat.ScaledIdentity(2, 0.05)
	r := mat.Diag(0.5)
	_, kSS, err := SteadyState(phi, h, q, r, 1e-13, 20000)
	if err != nil {
		t.Fatal(err)
	}
	f := MustNew(Config{Phi: Static(phi), H: h, Q: q, R: r, X0: mat.Vec(0, 0)})
	for i := 0; i < 500; i++ {
		if err := f.Step(mat.Vec(float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if !mat.ApproxEqual(f.Gain(), kSS, 1e-6) {
		t.Fatalf("dynamic gain %v, steady gain %v", f.Gain(), kSS)
	}
}

func TestSteadyStateDivergent(t *testing.T) {
	// An unstable, unobserved mode (phi=2 with zero gain path) cannot
	// converge when H observes nothing: make H zero and expect an error
	// from the singular innovation covariance (R=0) or non-convergence.
	phi := mat.Diag(2)
	h := mat.New(1, 1) // zero measurement matrix
	q := mat.Diag(1)
	r := mat.New(1, 1) // zero measurement noise -> singular S
	if _, _, err := SteadyState(phi, h, q, r, 1e-12, 100); err == nil {
		t.Fatal("SteadyState succeeded on degenerate system")
	}
}

func TestStaticFilterTracksRamp(t *testing.T) {
	phi := mat.FromRows([][]float64{{1, 1}, {0, 1}})
	h := mat.FromRows([][]float64{{1, 0}})
	sf, err := NewStatic(phi, h, mat.ScaledIdentity(2, 0.01), mat.Diag(0.1), mat.Vec(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 300; k++ {
		sf.Predict()
		sf.Correct(mat.Vec(3 * float64(k)))
	}
	if v := sf.State().At(1, 0); math.Abs(v-3) > 0.05 {
		t.Fatalf("static filter velocity = %v, want ~3", v)
	}
	sf.Predict()
	if got := sf.PredictedMeasurement().At(0, 0); math.Abs(got-3*301) > 1 {
		t.Fatalf("static filter prediction = %v, want ~%v", got, 3*301)
	}
}

func TestStaticFilterCloneIndependent(t *testing.T) {
	phi := mat.Identity(1)
	sf, err := NewStatic(phi, mat.Identity(1), mat.Diag(0.1), mat.Diag(0.1), mat.Vec(5))
	if err != nil {
		t.Fatal(err)
	}
	c := sf.Clone()
	c.Predict()
	c.Correct(mat.Vec(100))
	if sf.State().At(0, 0) != 5 {
		t.Fatal("clone mutation affected original")
	}
	if sf.Gain() == nil {
		t.Fatal("Gain accessor returned nil")
	}
}

func TestNewStaticBadState(t *testing.T) {
	if _, err := NewStatic(mat.Identity(2), mat.Identity(2), mat.Identity(2), mat.Identity(2), mat.Vec(1)); err == nil {
		t.Fatal("NewStatic accepted mismatched x0")
	}
}
