package kalman

import (
	"fmt"
	"math"

	"streamkf/internal/mat"
)

// NoiseEstimator estimates the measurement noise covariance R online from
// the innovation sequence (paper future work item 6: "robustness of the KF
// when the statistics of the noise are not known").
//
// Under a correct model the innovation d_k = z_k - H x_k^- has covariance
// S = H P^- H^T + R, so a windowed sample covariance of the innovations,
// Ĉ, yields R̂ = Ĉ - H P^- H^T. The estimate is floored element-wise on
// the diagonal to keep R̂ positive definite.
type NoiseEstimator struct {
	m      int
	window int
	floor  float64
	buf    []*mat.Matrix // ring buffer of innovations
	next   int
	filled bool
}

// NewNoiseEstimator returns an estimator for m-dimensional innovations
// using a sliding window of the given size; diagonal entries of the
// estimate are floored at floor (> 0).
func NewNoiseEstimator(m, window int, floor float64) (*NoiseEstimator, error) {
	if m <= 0 {
		return nil, fmt.Errorf("kalman: NewNoiseEstimator m = %d, want > 0", m)
	}
	if window < 2 {
		return nil, fmt.Errorf("kalman: NewNoiseEstimator window = %d, want >= 2", window)
	}
	if floor <= 0 {
		return nil, fmt.Errorf("kalman: NewNoiseEstimator floor = %v, want > 0", floor)
	}
	return &NoiseEstimator{m: m, window: window, floor: floor, buf: make([]*mat.Matrix, window)}, nil
}

// Observe records one innovation vector (m x 1). The ring buffer slots
// are allocated on first use and reused afterwards, so a warm estimator
// observes without allocating — the property that lets the DSMS server
// run one estimator per stream on the ingest hot path.
func (n *NoiseEstimator) Observe(innov *mat.Matrix) {
	if innov.Rows() != n.m || innov.Cols() != 1 {
		panic(fmt.Sprintf("kalman: NoiseEstimator.Observe innovation is %dx%d, want %dx1", innov.Rows(), innov.Cols(), n.m))
	}
	if n.buf[n.next] == nil {
		n.buf[n.next] = innov.Clone()
	} else {
		n.buf[n.next].CopyFrom(innov)
	}
	n.next++
	if n.next == n.window {
		n.next = 0
		n.filled = true
	}
}

// ObserveFilter records f's most recent innovation (the one produced by
// its last Correct), without allocating once the window is warm. It
// reports whether an innovation was available.
func (n *NoiseEstimator) ObserveFilter(f *Filter) bool {
	if f.innov == nil {
		return false
	}
	n.Observe(f.innov)
	return true
}

// Ready reports whether a full window of innovations has been observed.
func (n *NoiseEstimator) Ready() bool { return n.filled }

// Window returns the observed innovations in time order, oldest first,
// each as a fresh value slice. Together with RestoreWindow it lets a
// checkpoint persist the whiteness state of a stream's health monitor,
// so a recovered server reports the same diagnostics bit for bit.
func (n *NoiseEstimator) Window() [][]float64 {
	count := n.next
	if n.filled {
		count = n.window
	}
	out := make([][]float64, 0, count)
	for i := 0; i < count; i++ {
		idx := i
		if n.filled {
			idx = (n.next + i) % n.window
		}
		out = append(out, n.buf[idx].VecSlice())
	}
	return out
}

// RestoreWindow refills the estimator from a Window snapshot, oldest
// first. More innovations than the window holds keeps only the most
// recent windowful, matching what observing them live would have left.
func (n *NoiseEstimator) RestoreWindow(innovs [][]float64) error {
	if len(innovs) > n.window {
		innovs = innovs[len(innovs)-n.window:]
		// The ring has wrapped, exactly as live observation would have.
	}
	n.next = 0
	n.filled = false
	for _, v := range innovs {
		if len(v) != n.m {
			return fmt.Errorf("kalman: RestoreWindow innovation has %d values, want %d", len(v), n.m)
		}
		n.Observe(mat.Vec(v...))
	}
	return nil
}

// Whiteness returns the lag-1 autocorrelation of the observed innovation
// sequence,
//
//	ρ₁ = Σ_k d_k · d_{k-1} / Σ_k ‖d_k‖²,
//
// over the current window in time order. Under a correct model the
// innovations are white, so ρ₁ ≈ 0 within ±2/√window; a persistent bias
// means the installed model is mis-specified for the stream (the
// server-side filter-health signal, paper §3.2). ok is false until the
// window has filled.
func (n *NoiseEstimator) Whiteness() (rho float64, ok bool) {
	count := n.next
	if n.filled {
		count = n.window
	}
	if count < 2 {
		return 0, false
	}
	var num, den float64
	var prev *mat.Matrix
	for i := 0; i < count; i++ {
		idx := i
		if n.filled {
			idx = (n.next + i) % n.window
		}
		d := n.buf[idx]
		den += mat.Dot(d, d)
		if prev != nil {
			num += mat.Dot(prev, d)
		}
		prev = d
	}
	if den == 0 {
		return 0, false
	}
	return num / den, n.filled
}

// WhitenessBound returns the ±2/√window acceptance band for Whiteness:
// |ρ₁| beyond the bound flags a mis-modeled stream.
func (n *NoiseEstimator) WhitenessBound() float64 {
	return 2 / math.Sqrt(float64(n.window))
}

// EstimateR returns R̂ given the filter's current a priori covariance
// term H P^- H^T. Call only when Ready.
func (n *NoiseEstimator) EstimateR(hpht *mat.Matrix) *mat.Matrix {
	if !n.filled {
		panic("kalman: NoiseEstimator.EstimateR before window filled")
	}
	// Sample covariance of innovations (mean assumed ~0 under whiteness).
	c := mat.New(n.m, n.m)
	for _, d := range n.buf {
		c = mat.AddInPlace(mat.Mul(d, mat.Transpose(d)), c)
	}
	c = mat.Scale(1/float64(n.window), c)
	r := mat.Sub(c, hpht)
	for i := 0; i < n.m; i++ {
		if r.At(i, i) < n.floor {
			r.Set(i, i, n.floor)
		}
	}
	return mat.Symmetrize(r)
}

// AdaptiveFilter wraps a Filter and retunes R every window steps from the
// observed innovation sequence.
type AdaptiveFilter struct {
	*Filter
	est   *NoiseEstimator
	every int
	count int
}

// NewAdaptive wraps f with innovation-based R estimation over the given
// window. Retuning happens each time another `window` corrections have
// been observed.
func NewAdaptive(f *Filter, window int, floor float64) (*AdaptiveFilter, error) {
	est, err := NewNoiseEstimator(f.MeasDim(), window, floor)
	if err != nil {
		return nil, err
	}
	return &AdaptiveFilter{Filter: f, est: est, every: window}, nil
}

// Correct corrects the underlying filter, records the innovation, and
// periodically re-estimates R.
func (a *AdaptiveFilter) Correct(z *mat.Matrix) error {
	// H P^- H^T must be captured before the correction consumes P^-.
	hpht := mat.Mul3(a.h, a.p, mat.Transpose(a.h))
	if err := a.Filter.Correct(z); err != nil {
		return err
	}
	a.est.Observe(a.Filter.innov)
	a.count++
	if a.est.Ready() && a.count%a.every == 0 {
		a.SetNoise(nil, a.est.EstimateR(hpht))
	}
	return nil
}

// Step runs Predict then the adaptive Correct.
func (a *AdaptiveFilter) Step(z *mat.Matrix) error {
	a.Predict()
	return a.Correct(z)
}
