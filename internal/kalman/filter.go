// Package kalman implements the discrete Kalman filter family the paper
// builds on: the standard linear filter (Eq. 3–12 of the paper), the
// steady-state filter obtained by iterating the Riccati equation (§3.2
// case 5), the extended Kalman filter for non-linear models (§3.2 cases
// 2–3), recursive least squares as the zero-measurement-noise degenerate
// case (§3.2 case 4), and innovation-based adaptive noise estimation
// (future work item 6).
//
// The filter deliberately exposes Predict and Correct as separate steps:
// the Dual Kalman Filter protocol advances prediction on every time step
// but applies a correction only when an update is transmitted, so the two
// halves of a predict–correct cycle are driven independently by the
// protocol layer (internal/core).
//
// The per-reading hot path (Predict, Correct, NIS, LogLikelihood) is
// allocation-free in steady state: every filter owns a workspace of
// scratch matrices sized at construction and runs on the destination-
// taking mat kernels. The kernels replicate the floating-point operation
// order of the allocating API they replaced, so filter trajectories are
// bit-identical to the historical implementation — the property the DKF
// mirror-synchrony invariant rests on.
package kalman

import (
	"errors"
	"fmt"
	"math"

	"streamkf/internal/mat"
)

// TransitionFunc returns the state transition matrix φ_k for time step k.
// Models with a time-varying transition (the paper's sinusoidal model,
// Eq. 17) supply a function; time-invariant models wrap a constant.
type TransitionFunc func(k int) *mat.Matrix

// Static wraps a constant transition matrix as a TransitionFunc.
func Static(phi *mat.Matrix) TransitionFunc {
	return func(int) *mat.Matrix { return phi }
}

// Config assembles everything needed to construct a Filter.
type Config struct {
	// Phi produces the n x n state transition matrix for step k.
	Phi TransitionFunc
	// H is the m x n measurement matrix relating state to measurement.
	H *mat.Matrix
	// Q is the n x n process noise covariance.
	Q *mat.Matrix
	// R is the m x m measurement noise covariance.
	R *mat.Matrix
	// X0 is the initial n x 1 state estimate.
	X0 *mat.Matrix
	// P0 is the initial n x n error covariance. If nil, a large diagonal
	// (1e3 * I) is used, expressing low confidence in X0.
	P0 *mat.Matrix
	// JosephForm selects the Joseph stabilized covariance update
	// P = (I-KH) P (I-KH)^T + K R K^T, which preserves symmetry and
	// positive semi-definiteness under roundoff at ~2x the cost of the
	// standard (I-KH) P form. See BenchmarkAblationJosephForm.
	JosephForm bool
}

// Validate checks that the configuration is dimensionally consistent.
func (c Config) Validate() error {
	if c.Phi == nil {
		return errors.New("kalman: Config.Phi is nil")
	}
	if c.H == nil || c.Q == nil || c.R == nil || c.X0 == nil {
		return errors.New("kalman: Config requires H, Q, R and X0")
	}
	n := c.X0.Rows()
	if c.X0.Cols() != 1 {
		return fmt.Errorf("kalman: X0 must be a column vector, got %dx%d", c.X0.Rows(), c.X0.Cols())
	}
	phi0 := c.Phi(0)
	if phi0.Rows() != n || phi0.Cols() != n {
		return fmt.Errorf("kalman: Phi(0) is %dx%d, want %dx%d", phi0.Rows(), phi0.Cols(), n, n)
	}
	if c.Q.Rows() != n || c.Q.Cols() != n {
		return fmt.Errorf("kalman: Q is %dx%d, want %dx%d", c.Q.Rows(), c.Q.Cols(), n, n)
	}
	m := c.H.Rows()
	if c.H.Cols() != n {
		return fmt.Errorf("kalman: H is %dx%d, want %dx%d", c.H.Rows(), c.H.Cols(), m, n)
	}
	if c.R.Rows() != m || c.R.Cols() != m {
		return fmt.Errorf("kalman: R is %dx%d, want %dx%d", c.R.Rows(), c.R.Cols(), m, m)
	}
	if c.P0 != nil && (c.P0.Rows() != n || c.P0.Cols() != n) {
		return fmt.Errorf("kalman: P0 is %dx%d, want %dx%d", c.P0.Rows(), c.P0.Cols(), n, n)
	}
	return nil
}

// workspace holds the scratch matrices one filter needs to run a full
// predict/correct cycle without heap allocation, plus the cached
// innovation covariance. Every Filter owns its workspace exclusively;
// Clone builds a fresh one, so clones share nothing mutable.
type workspace struct {
	ht   *mat.Matrix // n x m: H^T, fixed for the filter's lifetime
	nn1  *mat.Matrix // n x n scratch
	nn2  *mat.Matrix // n x n scratch
	nn3  *mat.Matrix // n x n scratch
	nm   *mat.Matrix // n x m scratch
	mn   *mat.Matrix // m x n scratch
	n1   *mat.Matrix // n x 1 scratch
	m1   *mat.Matrix // m x 1 scratch
	row1 *mat.Matrix // 1 x m scratch for the NIS quadratic form
	row2 *mat.Matrix // 1 x m scratch for the NIS quadratic form
	s    *mat.Matrix // m x m: innovation covariance S = H P H^T + R
	sInv *mat.Matrix // m x m: S^-1
	mm   *mat.Matrix // m x m scratch for InverseInto

	// sValid marks s/sInv/sDet as current for the present (x, P, R).
	// Correct, NIS and LogLikelihood share the cached triple, so the DKF
	// source path (NIS gate followed by Correct on the same prediction)
	// builds and inverts S once instead of twice.
	sValid bool
	sDet   float64
}

func newWorkspace(h *mat.Matrix) *workspace {
	m, n := h.Rows(), h.Cols()
	return &workspace{
		ht:   mat.Transpose(h),
		nn1:  mat.New(n, n),
		nn2:  mat.New(n, n),
		nn3:  mat.New(n, n),
		nm:   mat.New(n, m),
		mn:   mat.New(m, n),
		n1:   mat.New(n, 1),
		m1:   mat.New(m, 1),
		row1: mat.New(1, m),
		row2: mat.New(1, m),
		s:    mat.New(m, m),
		sInv: mat.New(m, m),
		mm:   mat.New(m, m),
	}
}

// Filter is a discrete Kalman filter over the system
//
//	x_{k+1} = φ_k x_k + w_k,   w ~ N(0, Q)
//	z_k     = H x_k + ν_k,     ν ~ N(0, R)
//
// following the paper's Eqs. 3–12.
type Filter struct {
	phi TransitionFunc
	h   *mat.Matrix
	q   *mat.Matrix
	r   *mat.Matrix

	x *mat.Matrix // current state estimate (a priori after Predict, a posteriori after Correct)
	p *mat.Matrix // error covariance matching x

	k         int         // discrete time index: number of Predict steps taken
	gain      *mat.Matrix // most recent Kalman gain K_k, reused across corrections
	innov     *mat.Matrix // most recent innovation z - H x^-, reused across corrections
	corrected bool        // whether Correct has run since the last Predict
	joseph    bool        // use the Joseph stabilized covariance update

	ws *workspace
}

// New constructs a Filter from cfg, validating dimensions.
func New(cfg Config) (*Filter, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p0 := cfg.P0
	if p0 == nil {
		p0 = mat.ScaledIdentity(cfg.X0.Rows(), 1e3)
	}
	return &Filter{
		phi:    cfg.Phi,
		h:      cfg.H.Clone(),
		q:      cfg.Q.Clone(),
		r:      cfg.R.Clone(),
		x:      cfg.X0.Clone(),
		p:      p0.Clone(),
		joseph: cfg.JosephForm,
		ws:     newWorkspace(cfg.H),
	}, nil
}

// MustNew is New but panics on configuration error. For tests and
// statically known-correct model constructions.
func MustNew(cfg Config) *Filter {
	f, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return f
}

// StateDim returns n, the number of state variables.
func (f *Filter) StateDim() int { return f.x.Rows() }

// MeasDim returns m, the number of measurement variables.
func (f *Filter) MeasDim() int { return f.h.Rows() }

// K returns the current discrete time index (number of Predict calls).
func (f *Filter) K() int { return f.k }

// State returns a copy of the current state estimate vector.
func (f *Filter) State() *mat.Matrix { return f.x.Clone() }

// Cov returns a copy of the current error covariance.
func (f *Filter) Cov() *mat.Matrix { return f.p.Clone() }

// Gain returns a copy of the most recent Kalman gain, or nil before the
// first correction.
func (f *Filter) Gain() *mat.Matrix {
	if f.gain == nil {
		return nil
	}
	return f.gain.Clone()
}

// Innovation returns a copy of the most recent innovation z - Hx^-, or nil
// before the first correction. The paper uses the innovation sequence for
// outlier detection and adaptive sampling (advantage 5, §3.1).
func (f *Filter) Innovation() *mat.Matrix {
	if f.innov == nil {
		return nil
	}
	return f.innov.Clone()
}

// Predict propagates the state one step forward:
//
//	x^- = φ_k x,   P^- = φ_k P φ_k^T + Q.
//
// After Predict, State/PredictedMeasurement report the a priori estimate.
func (f *Filter) Predict() {
	phi := f.phi(f.k)
	ws := f.ws
	mat.MulInto(ws.n1, phi, f.x)
	f.x, ws.n1 = ws.n1, f.x
	mat.MulInto(ws.nn1, phi, f.p)
	mat.TransposeInto(ws.nn2, phi)
	mat.MulInto(ws.nn3, ws.nn1, ws.nn2)
	mat.AddInto(ws.nn3, ws.nn3, f.q)
	mat.SymmetrizeInto(f.p, ws.nn3)
	f.k++
	f.corrected = false
	ws.sValid = false
}

// PredictedMeasurement returns H x, the measurement the filter expects
// given the current state estimate. In the DKF protocol this is the value
// the server would answer a query with.
func (f *Filter) PredictedMeasurement() *mat.Matrix {
	return mat.Mul(f.h, f.x)
}

// PredictedMeasurementInto writes H x into dst (m x 1) without
// allocating, and returns dst. The protocol layer keeps a reusable
// destination per node to stay off the heap on every reading.
func (f *Filter) PredictedMeasurementInto(dst *mat.Matrix) *mat.Matrix {
	return mat.MulInto(dst, f.h, f.x)
}

// checkMeasurement validates the shape of a measurement vector.
func (f *Filter) checkMeasurement(z *mat.Matrix) error {
	if z.Rows() != f.h.Rows() || z.Cols() != 1 {
		return fmt.Errorf("kalman: measurement is %dx%d, want %dx1", z.Rows(), z.Cols(), f.h.Rows())
	}
	return nil
}

// refreshS (re)computes the innovation covariance S = H P H^T + R, its
// inverse and determinant into the workspace, unless the cached values
// are still current. This is the single home of the computation Correct,
// NIS and LogLikelihood previously each rebuilt from scratch.
func (f *Filter) refreshS() error {
	ws := f.ws
	if ws.sValid {
		return nil
	}
	mat.MulInto(ws.mn, f.h, f.p)
	mat.MulInto(ws.s, ws.mn, ws.ht)
	mat.AddInto(ws.s, ws.s, f.r)
	det, err := mat.InverseInto(ws.sInv, ws.s, ws.mm)
	if err != nil {
		return err
	}
	ws.sDet = det
	ws.sValid = true
	return nil
}

// quadForm returns d^T S^-1 d using the cached S^-1, replicating the
// left-associated evaluation order of mat.Mul3(Transpose(d), sInv, d).
func (f *Filter) quadForm(d *mat.Matrix) float64 {
	ws := f.ws
	mat.TransposeInto(ws.row1, d)
	mat.MulInto(ws.row2, ws.row1, ws.sInv)
	return mat.Dot(ws.row2, d)
}

// Correct folds measurement z (m x 1) into the state estimate:
//
//	K = P^- H^T (H P^- H^T + R)^-1
//	x = x^- + K (z - H x^-)
//	P = (I - K H) P^-
//
// Correct returns an error if the innovation covariance is singular, which
// indicates a degenerate model (e.g. zero R with an unobservable state).
func (f *Filter) Correct(z *mat.Matrix) error {
	if err := f.checkMeasurement(z); err != nil {
		return err
	}
	if err := f.refreshS(); err != nil {
		return fmt.Errorf("kalman: innovation covariance not invertible: %w", err)
	}
	ws := f.ws
	if f.gain == nil {
		f.gain = mat.New(f.x.Rows(), f.h.Rows())
	}
	if f.innov == nil {
		f.innov = mat.New(f.h.Rows(), 1)
	}
	// K = P H^T S^-1.
	mat.MulInto(ws.nm, f.p, ws.ht)
	mat.MulInto(f.gain, ws.nm, ws.sInv)
	// d = z - H x^-.
	mat.MulInto(f.innov, f.h, f.x)
	mat.SubInto(f.innov, z, f.innov)
	// x = x^- + K d.
	mat.MulInto(ws.n1, f.gain, f.innov)
	mat.AddInto(f.x, ws.n1, f.x)
	// I - K H.
	mat.MulInto(ws.nn1, f.gain, f.h)
	mat.IdentityMinusInto(ws.nn1, ws.nn1)
	if f.joseph {
		mat.MulInto(ws.nn2, ws.nn1, f.p)
		mat.TransposeInto(ws.nn3, ws.nn1)
		mat.MulInto(ws.nn1, ws.nn2, ws.nn3) // (I-KH) P (I-KH)^T
		mat.MulInto(ws.nm, f.gain, f.r)
		mat.TransposeInto(ws.mn, f.gain)
		mat.MulInto(ws.nn2, ws.nm, ws.mn) // K R K^T
		mat.AddInto(ws.nn2, ws.nn1, ws.nn2)
		mat.SymmetrizeInto(f.p, ws.nn2)
	} else {
		mat.MulInto(ws.nn2, ws.nn1, f.p)
		mat.SymmetrizeInto(f.p, ws.nn2)
	}
	ws.sValid = false
	f.corrected = true
	return nil
}

// Step runs one full Predict+Correct cycle with measurement z.
func (f *Filter) Step(z *mat.Matrix) error {
	f.Predict()
	return f.Correct(z)
}

// Corrected reports whether the most recent operation was a Correct
// (true) or a Predict (false). Useful for diagnostics.
func (f *Filter) Corrected() bool { return f.corrected }

// NIS returns the normalized innovation squared d^T S^-1 d for measurement
// z evaluated against the current prediction, without modifying the filter.
// Under a correct model NIS is chi-squared distributed with m degrees of
// freedom; large values indicate outliers or model mismatch.
//
// NIS shares the cached innovation covariance with Correct: the DKF
// outlier gate's NIS-then-Correct sequence inverts S once.
func (f *Filter) NIS(z *mat.Matrix) (float64, error) {
	if err := f.checkMeasurement(z); err != nil {
		return 0, err
	}
	if err := f.refreshS(); err != nil {
		return 0, fmt.Errorf("kalman: innovation covariance not invertible: %w", err)
	}
	ws := f.ws
	mat.MulInto(ws.m1, f.h, f.x)
	mat.SubInto(ws.m1, z, ws.m1)
	return f.quadForm(ws.m1), nil
}

// LogLikelihood returns the Gaussian log-likelihood of measurement z
// under the filter's current predictive distribution,
//
//	-½ (m·ln 2π + ln det S + d^T S⁻¹ d),   d = z − H x,  S = H P H^T + R,
//
// without modifying the filter. Summed over a window it scores how well
// a model explains the stream — the Bayesian counterpart of the
// prediction-error scoring used for online model selection.
func (f *Filter) LogLikelihood(z *mat.Matrix) (float64, error) {
	if err := f.checkMeasurement(z); err != nil {
		return 0, err
	}
	if err := f.refreshS(); err != nil {
		return 0, fmt.Errorf("kalman: innovation covariance not positive definite (det %v)", 0.0)
	}
	if f.ws.sDet <= 0 {
		return 0, fmt.Errorf("kalman: innovation covariance not positive definite (det %v)", f.ws.sDet)
	}
	ws := f.ws
	mat.MulInto(ws.m1, f.h, f.x)
	mat.SubInto(ws.m1, z, ws.m1)
	quad := f.quadForm(ws.m1)
	m := float64(f.h.Rows())
	return -0.5 * (m*math.Log(2*math.Pi) + math.Log(f.ws.sDet) + quad), nil
}

// Clone returns a deep copy of the filter sharing only the (stateless)
// transition function. The DKF protocol clones the server filter to build
// the byte-identical mirror filter at the source. The clone owns a fresh
// workspace, so the pair share no mutable matrix whatsoever.
func (f *Filter) Clone() *Filter {
	c := &Filter{
		phi:       f.phi,
		h:         f.h.Clone(),
		q:         f.q.Clone(),
		r:         f.r.Clone(),
		x:         f.x.Clone(),
		p:         f.p.Clone(),
		k:         f.k,
		corrected: f.corrected,
		joseph:    f.joseph,
		ws:        newWorkspace(f.h),
	}
	if f.gain != nil {
		c.gain = f.gain.Clone()
	}
	if f.innov != nil {
		c.innov = f.innov.Clone()
	}
	return c
}

// StateEqual reports whether two filters hold exactly the same state
// estimate, covariance and time index — the mirror-synchrony invariant of
// the DKF protocol.
func StateEqual(a, b *Filter) bool {
	return a.k == b.k && mat.Equal(a.x, b.x) && mat.Equal(a.p, b.p)
}

// Reset restores the filter to the given state and covariance and rewinds
// the time index to zero. Used when a model is reinstalled online.
func (f *Filter) Reset(x0, p0 *mat.Matrix) {
	if x0.Rows() != f.x.Rows() || x0.Cols() != 1 {
		panic(fmt.Sprintf("kalman: Reset state is %dx%d, want %dx1", x0.Rows(), x0.Cols(), f.x.Rows()))
	}
	if p0.Rows() != f.p.Rows() || p0.Cols() != f.p.Cols() {
		panic(fmt.Sprintf("kalman: Reset covariance is %dx%d, want %dx%d", p0.Rows(), p0.Cols(), f.p.Rows(), f.p.Cols()))
	}
	f.x = x0.Clone()
	f.p = p0.Clone()
	f.k = 0
	f.gain, f.innov = nil, nil
	f.corrected = false
	f.ws.sValid = false
}

// Restore overwrites the filter's state estimate, covariance and
// discrete time index — the checkpoint-recovery counterpart of Reset,
// which rewinds k to zero instead. The restored filter produces the
// exact same Predict/Correct trajectory as the original because those
// operations read only (x, P, k) plus the construction-time model
// matrices; the gain/innovation diagnostics reset to their
// pre-first-correction state and are rebuilt by the next Correct.
func (f *Filter) Restore(x, p *mat.Matrix, k int) {
	if x.Rows() != f.x.Rows() || x.Cols() != 1 {
		panic(fmt.Sprintf("kalman: Restore state is %dx%d, want %dx1", x.Rows(), x.Cols(), f.x.Rows()))
	}
	if p.Rows() != f.p.Rows() || p.Cols() != f.p.Cols() {
		panic(fmt.Sprintf("kalman: Restore covariance is %dx%d, want %dx%d", p.Rows(), p.Cols(), f.p.Rows(), f.p.Cols()))
	}
	if k < 0 {
		panic(fmt.Sprintf("kalman: Restore time index %d, want >= 0", k))
	}
	f.x = x.Clone()
	f.p = p.Clone()
	f.k = k
	f.gain, f.innov = nil, nil
	f.corrected = false
	f.ws.sValid = false
}

// SetNoise replaces the process and/or measurement noise covariances.
// Nil arguments leave the corresponding covariance unchanged. Used by the
// adaptive noise estimator.
func (f *Filter) SetNoise(q, r *mat.Matrix) {
	if q != nil {
		if q.Rows() != f.q.Rows() || q.Cols() != f.q.Cols() {
			panic(fmt.Sprintf("kalman: SetNoise Q is %dx%d, want %dx%d", q.Rows(), q.Cols(), f.q.Rows(), f.q.Cols()))
		}
		f.q = q.Clone()
	}
	if r != nil {
		if r.Rows() != f.r.Rows() || r.Cols() != f.r.Cols() {
			panic(fmt.Sprintf("kalman: SetNoise R is %dx%d, want %dx%d", r.Rows(), r.Cols(), f.r.Rows(), f.r.Cols()))
		}
		f.r = r.Clone()
		f.ws.sValid = false
	}
}
