// Package history gives the telemetry registry a time dimension: a
// dependency-free, fixed-size ring of periodic registry snapshots with
// a windowed rate/trend/quantile query API.
//
// Each Snapshot captures one sample per registered instrument into a
// preallocated slot: counters are delta-encoded (the slot stores the
// increment since the previous snapshot, so rates are a windowed sum),
// gauges are sampled raw, and histograms store per-bucket count diffs
// so quantiles can be answered over any trailing window rather than
// over the process lifetime. After warmup — once every instrument has
// its buffers — the steady-state Snapshot performs zero allocations
// (gated by TestHistorySnapshotAllocBudget), so a server can snapshot
// itself every second forever without disturbing its own heap profile.
// A registration after warmup is detected via Registry.Version and
// resynced on the next Snapshot (which then allocates, once).
//
// The ring is the storage layer of the DSMS self-monitoring subsystem
// (internal/dsms/selfmon.go): the windowed rates and quantiles it
// serves become the signal values the server's self-streams track with
// the paper's own DKF machinery.
package history

import (
	"strings"
	"sync"
	"time"

	"streamkf/internal/telemetry"
)

// Options configure a Ring.
type Options struct {
	// Slots is the number of snapshots retained (default 128). With the
	// default 1s cadence that is ~2 minutes of history.
	Slots int
	// Every is the nominal snapshot period. The ring does not tick
	// itself — the owner drives Snapshot — but Every sizes derived
	// defaults (Slots from Window) and is reported by Meta.
	Every time.Duration
	// Window, when set with Every, derives Slots = ceil(Window/Every)
	// unless Slots is set explicitly.
	Window time.Duration
	// MaxSeries caps how many instrument instances are tracked
	// (default 8192). Series registered past the cap are ignored;
	// Dropped reports how many.
	MaxSeries int
}

func (o *Options) defaults() {
	if o.Every <= 0 {
		o.Every = time.Second
	}
	if o.Slots <= 0 {
		if o.Window > 0 {
			o.Slots = int((o.Window + o.Every - 1) / o.Every)
		} else {
			o.Slots = 128
		}
	}
	if o.Slots < 2 {
		o.Slots = 2
	}
	if o.MaxSeries <= 0 {
		o.MaxSeries = 8192
	}
}

const nb = telemetry.NumHistogramBuckets

// series is the ring's per-instrument state: the registry handle plus
// the slot-indexed sample buffers.
type series struct {
	key string
	src telemetry.Series

	// samples is the per-slot sample: raw value for gauges and gauge
	// funcs, per-interval delta for counters and histogram counts.
	samples []float64
	// last is the latest raw (cumulative, for counters) value.
	last    float64
	hasLast bool

	// Histogram extras: per-slot bucket diffs (slots * nb, flattened)
	// and per-slot sum diffs, with the previous snapshot retained for
	// delta encoding.
	buckets []int64
	sums    []float64
	prev    telemetry.HistogramSnapshot
}

// Ring is a fixed-size time-partitioned ring of registry snapshots.
// Snapshot and the query methods are safe for concurrent use.
type Ring struct {
	reg  *telemetry.Registry
	opts Options

	mu      sync.RWMutex
	version uint64
	series  []*series
	byKey   map[string]*series
	byName  map[string][]*series
	times   []int64 // unix nanos per slot
	head    int     // newest written slot
	filled  int
	dropped int
}

// New builds a ring over reg. The instrument population is synced
// lazily on the first Snapshot (and re-synced whenever the registry
// version moves).
func New(reg *telemetry.Registry, opts Options) *Ring {
	opts.defaults()
	return &Ring{
		reg:   reg,
		opts:  opts,
		byKey: make(map[string]*series),
		times: make([]int64, opts.Slots),
		head:  -1,
	}
}

// seriesKey builds the identity of one instrument instance, matching
// the registry's (name, labels) identity.
func seriesKey(name string, labels []telemetry.Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte('\xff')
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// resync rebuilds the tracked-series list from the registry, keeping
// the sample history of series that survived. Allocates; called only
// when the registry population changed.
func (r *Ring) resync(version uint64) {
	snap := r.reg.SeriesSnapshot()
	next := make([]*series, 0, len(snap))
	nextKey := make(map[string]*series, len(snap))
	nextName := make(map[string][]*series, len(snap))
	dropped := 0
	for _, src := range snap {
		if len(next) >= r.opts.MaxSeries {
			dropped++
			continue
		}
		k := seriesKey(src.Name, src.Labels)
		s := r.byKey[k]
		if s == nil {
			s = &series{key: k, src: src, samples: make([]float64, r.opts.Slots)}
			if src.Kind == telemetry.SeriesHistogram {
				s.buckets = make([]int64, r.opts.Slots*nb)
				s.sums = make([]float64, r.opts.Slots)
			}
		} else {
			s.src = src
		}
		next = append(next, s)
		nextKey[k] = s
		nextName[src.Name] = append(nextName[src.Name], s)
	}
	r.series, r.byKey, r.byName = next, nextKey, nextName
	r.dropped = dropped
	r.version = version
}

// capture samples the instrument into slot. First-sight cumulative
// series record a zero delta (the covered interval is unknown).
func (s *series) capture(slot int) {
	switch s.src.Kind {
	case telemetry.SeriesHistogram:
		snap := s.src.Hist().Snapshot()
		base := slot * nb
		if s.hasLast {
			for i := 0; i < nb; i++ {
				s.buckets[base+i] = snap.Counts[i] - s.prev.Counts[i]
			}
			s.sums[slot] = float64(snap.Sum - s.prev.Sum)
			s.samples[slot] = float64(snap.Count - s.prev.Count)
		} else {
			for i := 0; i < nb; i++ {
				s.buckets[base+i] = 0
			}
			s.sums[slot] = 0
			s.samples[slot] = 0
			s.hasLast = true
		}
		s.prev = snap
		s.last = float64(snap.Count)
	case telemetry.SeriesCounter:
		v := s.src.Scalar()
		if s.hasLast {
			s.samples[slot] = v - s.last
		} else {
			s.samples[slot] = 0
			s.hasLast = true
		}
		s.last = v
	default:
		v := s.src.Scalar()
		s.samples[slot] = v
		s.last = v
		s.hasLast = true
	}
}

// Snapshot captures one sample of every tracked instrument, stamped
// with now. Zero allocations in steady state (no registration since
// the previous Snapshot, and no registered GaugeFunc that itself
// allocates).
func (r *Ring) Snapshot(now time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if v := r.reg.Version(); v != r.version {
		r.resync(v)
	}
	r.head = (r.head + 1) % len(r.times)
	if r.filled < len(r.times) {
		r.filled++
	}
	r.times[r.head] = now.UnixNano()
	for _, s := range r.series {
		s.capture(r.head)
	}
}

// slotAt returns the slot index k snapshots behind the newest
// (slotAt(0) == head). Caller holds the lock and has checked k < filled.
func (r *Ring) slotAt(k int) int {
	n := len(r.times)
	return ((r.head-k)%n + n) % n
}

// window resolves a trailing window to the included delta slots:
// newest-first slot offsets [0, count), plus the covered span. A slot's
// delta covers the interval since the previous snapshot, so offset k is
// included while the snapshot before it (k+1) is still within the
// window. Requires two filled slots; count == 0 means no usable span.
func (r *Ring) window(window time.Duration) (count int, span time.Duration) {
	if r.filled < 2 {
		return 0, 0
	}
	newest := r.times[r.slotAt(0)]
	for k := 0; k < r.filled-1; k++ {
		prev := r.times[r.slotAt(k+1)]
		if time.Duration(newest-prev) > window && k > 0 {
			break
		}
		count = k + 1
		span = time.Duration(newest - prev)
		if time.Duration(newest-prev) > window {
			break
		}
	}
	return count, span
}

// lookup resolves (name, labels) to series: the exact instance when
// labels are given, every instance of the family otherwise (so
// family-level queries sum across label values, e.g. all sources or
// all shards). The label match compares elementwise rather than
// building a key string, keeping the query paths allocation-free.
// Caller holds an RLock; the returned slice must not escape it — hence
// the single-series scratch parameter.
func (r *Ring) lookup(name string, labels []telemetry.Label, scratch *[1]*series) []*series {
	fam := r.byName[name]
	if len(labels) == 0 {
		return fam
	}
	for _, s := range fam {
		if labelsEqual(s.src.Labels, labels) {
			scratch[0] = s
			return scratch[:]
		}
	}
	return nil
}

// labelsEqual reports whether two label sets match exactly, in order.
func labelsEqual(a, b []telemetry.Label) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// deltaAt returns the series' per-interval delta at newest-first
// offset k: stored directly for cumulative series, derived from
// consecutive raw samples for gauges (meaningful for monotone gauges
// like high-water marks and engine drop totals).
func (r *Ring) deltaAt(s *series, k int) float64 {
	if s.src.Cumulative() {
		return s.samples[r.slotAt(k)]
	}
	return s.samples[r.slotAt(k)] - s.samples[r.slotAt(k+1)]
}

// Rate returns the per-second rate of the named series over the
// trailing window: the windowed delta sum divided by the covered span.
// With no labels it sums every instance of the family. Histograms rate
// their observation count. ok is false until two snapshots cover the
// series (or when it does not exist). Allocation-free.
func (r *Ring) Rate(name string, window time.Duration, labels ...telemetry.Label) (perSec float64, ok bool) {
	var scratch [1]*series
	r.mu.RLock()
	defer r.mu.RUnlock()
	ss := r.lookup(name, labels, &scratch)
	if len(ss) == 0 {
		return 0, false
	}
	count, span := r.window(window)
	if count == 0 || span <= 0 {
		return 0, false
	}
	var sum float64
	for _, s := range ss {
		for k := 0; k < count; k++ {
			sum += r.deltaAt(s, k)
		}
	}
	return sum / span.Seconds(), true
}

// Trend returns the newest n per-slot samples, oldest first: raw
// values for gauges, per-interval deltas for counters and histogram
// counts. With no labels the family's instances are summed per slot.
// Fewer than n slots may be returned early in the ring's life; nil
// with ok=false when the series does not exist. Allocates the result
// (query path, not snapshot path).
func (r *Ring) Trend(name string, n int, labels ...telemetry.Label) (samples []float64, ok bool) {
	var scratch [1]*series
	r.mu.RLock()
	defer r.mu.RUnlock()
	ss := r.lookup(name, labels, &scratch)
	if len(ss) == 0 || r.filled == 0 {
		return nil, len(ss) > 0
	}
	avail := r.filled
	cumulative := ss[0].src.Cumulative()
	if cumulative {
		avail-- // the oldest filled slot's delta covers an unknown span
	}
	if n > avail {
		n = avail
	}
	if n <= 0 {
		return nil, true
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		k := n - 1 - i // newest-first offset for the i-th oldest sample
		for _, s := range ss {
			if cumulative {
				out[i] += r.deltaAt(s, k)
			} else {
				out[i] += s.samples[r.slotAt(k)]
			}
		}
	}
	return out, true
}

// WindowQuantile returns an upper bound for the q-quantile of the
// named histogram's observations within the trailing window, resolved
// to the histogram's power-of-two buckets. With no labels it merges
// every instance of the family. ok is false when nothing was observed
// in the window. Allocation-free.
func (r *Ring) WindowQuantile(name string, window time.Duration, q float64, labels ...telemetry.Label) (bound float64, ok bool) {
	var scratch [1]*series
	r.mu.RLock()
	defer r.mu.RUnlock()
	ss := r.lookup(name, labels, &scratch)
	if len(ss) == 0 {
		return 0, false
	}
	count, _ := r.window(window)
	if count == 0 {
		return 0, false
	}
	var merged telemetry.HistogramSnapshot
	for _, s := range ss {
		if s.src.Kind != telemetry.SeriesHistogram {
			return 0, false
		}
		for k := 0; k < count; k++ {
			base := r.slotAt(k) * nb
			for i := 0; i < nb; i++ {
				c := s.buckets[base+i]
				merged.Counts[i] += c
				merged.Count += c
			}
		}
	}
	if merged.Count == 0 {
		return 0, false
	}
	return float64(merged.Quantile(q)), true
}

// Latest returns the series' most recently snapshotted raw value (the
// cumulative total for counters and histogram counts, the sampled
// value for gauges). With no labels the family's instances are summed.
func (r *Ring) Latest(name string, labels ...telemetry.Label) (v float64, ok bool) {
	var scratch [1]*series
	r.mu.RLock()
	defer r.mu.RUnlock()
	ss := r.lookup(name, labels, &scratch)
	if len(ss) == 0 {
		return 0, false
	}
	any := false
	for _, s := range ss {
		if s.hasLast {
			v += s.last
			any = true
		}
	}
	return v, any
}

// SeriesInfo identifies one tracked series, for enumeration surfaces
// (/metricsz).
type SeriesInfo struct {
	Name   string
	Labels []telemetry.Label
	Kind   telemetry.SeriesKind
}

// Series lists the tracked series in registry order. Query path;
// allocates.
func (r *Ring) Series() []SeriesInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]SeriesInfo, len(r.series))
	for i, s := range r.series {
		out[i] = SeriesInfo{Name: s.src.Name, Labels: s.src.Labels, Kind: s.src.Kind}
	}
	return out
}

// Meta reports the ring's shape: retained slot count, slots filled so
// far, the nominal cadence, the wall-clock span currently covered, and
// how many registry series were dropped past the MaxSeries cap.
func (r *Ring) Meta() (slots, filled int, every time.Duration, span time.Duration, dropped int) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	slots, filled, every, dropped = len(r.times), r.filled, r.opts.Every, r.dropped
	if r.filled >= 2 {
		span = time.Duration(r.times[r.slotAt(0)] - r.times[r.slotAt(r.filled-1)])
	}
	return slots, filled, every, span, dropped
}
