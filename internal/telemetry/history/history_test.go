package history

import (
	"testing"
	"time"

	"streamkf/internal/telemetry"
)

// tick advances a synthetic clock one period per Snapshot, so every
// windowed assertion is exact.
type clock struct {
	t     time.Time
	every time.Duration
}

func newClock(every time.Duration) *clock {
	return &clock{t: time.Unix(1_700_000_000, 0), every: every}
}

func (c *clock) next() time.Time {
	c.t = c.t.Add(c.every)
	return c.t
}

func TestRateCounter(t *testing.T) {
	reg := telemetry.NewRegistry()
	ctr := reg.Counter("updates_total", "")
	r := New(reg, Options{Slots: 16, Every: time.Second})
	c := newClock(time.Second)

	r.Snapshot(c.next()) // baseline: first-sight delta is zero
	for i := 0; i < 5; i++ {
		ctr.Add(10)
		r.Snapshot(c.next())
	}
	got, ok := r.Rate("updates_total", 5*time.Second)
	if !ok {
		t.Fatal("Rate not ok after 6 snapshots")
	}
	if got != 10 {
		t.Fatalf("Rate = %v, want 10/s", got)
	}
	// A 2s window sees only the last two deltas.
	ctr.Add(40)
	r.Snapshot(c.next())
	got, ok = r.Rate("updates_total", 2*time.Second)
	if !ok || got != (10+40)/2.0 {
		t.Fatalf("2s Rate = %v ok=%v, want 25", got, ok)
	}
	if _, ok := r.Rate("nope", time.Second); ok {
		t.Fatal("Rate of unknown series reported ok")
	}
}

func TestRateFamilySumAndExactLabels(t *testing.T) {
	reg := telemetry.NewRegistry()
	a := reg.Counter("rx_total", "", telemetry.L("lane", "0"))
	b := reg.Counter("rx_total", "", telemetry.L("lane", "1"))
	r := New(reg, Options{Slots: 8, Every: time.Second})
	c := newClock(time.Second)

	r.Snapshot(c.next())
	a.Add(3)
	b.Add(7)
	r.Snapshot(c.next())

	if got, ok := r.Rate("rx_total", time.Second); !ok || got != 10 {
		t.Fatalf("family Rate = %v ok=%v, want 10", got, ok)
	}
	if got, ok := r.Rate("rx_total", time.Second, telemetry.L("lane", "1")); !ok || got != 7 {
		t.Fatalf("exact Rate = %v ok=%v, want 7", got, ok)
	}
	if _, ok := r.Rate("rx_total", time.Second, telemetry.L("lane", "9")); ok {
		t.Fatal("Rate with unknown label set reported ok")
	}
}

func TestGaugeRateAndTrend(t *testing.T) {
	reg := telemetry.NewRegistry()
	g := reg.Gauge("hwm", "")
	r := New(reg, Options{Slots: 8, Every: time.Second})
	c := newClock(time.Second)

	for _, v := range []float64{10, 10, 30, 60} {
		g.Set(v)
		r.Snapshot(c.next())
	}
	// Monotone gauge rate over the last 2 intervals: (60-10)/2.
	if got, ok := r.Rate("hwm", 2*time.Second); !ok || got != 25 {
		t.Fatalf("gauge Rate = %v ok=%v, want 25", got, ok)
	}
	trend, ok := r.Trend("hwm", 3)
	if !ok || len(trend) != 3 || trend[0] != 10 || trend[1] != 30 || trend[2] != 60 {
		t.Fatalf("gauge Trend = %v ok=%v, want [10 30 60]", trend, ok)
	}
}

func TestTrendCounterDeltas(t *testing.T) {
	reg := telemetry.NewRegistry()
	ctr := reg.Counter("n", "")
	r := New(reg, Options{Slots: 8, Every: time.Second})
	c := newClock(time.Second)

	r.Snapshot(c.next())
	for _, d := range []int64{1, 2, 3} {
		ctr.Add(d)
		r.Snapshot(c.next())
	}
	trend, ok := r.Trend("n", 10) // more than available: clipped
	if !ok || len(trend) != 3 || trend[0] != 1 || trend[1] != 2 || trend[2] != 3 {
		t.Fatalf("counter Trend = %v ok=%v, want [1 2 3]", trend, ok)
	}
}

func TestWindowQuantile(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := reg.Histogram("lat_ns", "")
	r := New(reg, Options{Slots: 8, Every: time.Second})
	c := newClock(time.Second)

	r.Snapshot(c.next())
	for i := 0; i < 100; i++ {
		h.Observe(1000) // old regime: ~1µs
	}
	r.Snapshot(c.next())
	for i := 0; i < 100; i++ {
		h.Observe(1_000_000) // new regime: ~1ms
	}
	r.Snapshot(c.next())

	// The full-window quantile mixes both regimes; the 1s window sees
	// only the new one.
	all, ok := r.WindowQuantile("lat_ns", 10*time.Second, 0.50)
	if !ok || all >= 2047 == false {
		t.Fatalf("10s p50 = %v ok=%v, want the old-regime bucket (<=2047)", all, ok)
	}
	recent, ok := r.WindowQuantile("lat_ns", time.Second, 0.50)
	if !ok || recent < 500_000 {
		t.Fatalf("1s p50 = %v ok=%v, want the new-regime bucket (>=2^19)", recent, ok)
	}
	if _, ok := r.WindowQuantile("lat_ns", time.Second, 0.5, telemetry.L("x", "y")); ok {
		t.Fatal("quantile with unknown labels reported ok")
	}
}

func TestResyncPreservesHistory(t *testing.T) {
	reg := telemetry.NewRegistry()
	a := reg.Counter("a_total", "")
	r := New(reg, Options{Slots: 8, Every: time.Second})
	c := newClock(time.Second)

	r.Snapshot(c.next())
	a.Add(5)
	r.Snapshot(c.next())

	// A new instrument appears mid-flight: the next snapshot resyncs
	// without losing a's history.
	b := reg.Counter("b_total", "")
	b.Add(2)
	r.Snapshot(c.next()) // b's first sight: zero delta
	b.Add(4)
	a.Add(5)
	r.Snapshot(c.next())

	if got, ok := r.Rate("a_total", 3*time.Second); !ok || got != 10.0/3 {
		t.Fatalf("a Rate = %v ok=%v, want 10/3", got, ok)
	}
	if got, ok := r.Rate("b_total", time.Second); !ok || got != 4 {
		t.Fatalf("b Rate = %v ok=%v, want 4", got, ok)
	}
	if got := len(r.Series()); got != 2 {
		t.Fatalf("Series() = %d entries, want 2", got)
	}
}

func TestRingWrap(t *testing.T) {
	reg := telemetry.NewRegistry()
	ctr := reg.Counter("n", "")
	r := New(reg, Options{Slots: 4, Every: time.Second})
	c := newClock(time.Second)

	for i := 0; i < 20; i++ {
		ctr.Add(int64(i))
		r.Snapshot(c.next())
	}
	// Only the newest 4 slots survive: deltas 16,17,18,19 over 3
	// intervals (the oldest slot only anchors the span).
	got, ok := r.Rate("n", time.Hour)
	if !ok || got != float64(17+18+19)/3 {
		t.Fatalf("wrapped Rate = %v ok=%v, want 18", got, ok)
	}
	slots, filled, every, span, dropped := r.Meta()
	if slots != 4 || filled != 4 || every != time.Second || span != 3*time.Second || dropped != 0 {
		t.Fatalf("Meta = %d %d %v %v %d", slots, filled, every, span, dropped)
	}
}

func TestMaxSeriesCap(t *testing.T) {
	reg := telemetry.NewRegistry()
	for i := 0; i < 10; i++ {
		reg.Counter("m", "", telemetry.L("i", string(rune('a'+i))))
	}
	r := New(reg, Options{Slots: 4, MaxSeries: 3})
	r.Snapshot(time.Unix(0, 0))
	if got := len(r.Series()); got != 3 {
		t.Fatalf("tracked %d series, want 3 (capped)", got)
	}
	if _, _, _, _, dropped := r.Meta(); dropped != 7 {
		t.Fatalf("dropped = %d, want 7", dropped)
	}
}

// populatedRing builds a ring over a registry shaped like a live
// server's: counters (some labeled), gauges, a non-allocating gauge
// func, and histograms.
func populatedRing() (*Ring, *clock) {
	reg := telemetry.NewRegistry()
	c1 := reg.Counter("updates_total", "", telemetry.L("source", "s1"))
	c2 := reg.Counter("updates_total", "", telemetry.L("source", "s2"))
	reg.Counter("bytes_total", "")
	g := reg.Gauge("depth", "")
	reg.GaugeFunc("ratio", "", func() float64 { return float64(c1.Value()) / 2 })
	h := reg.Histogram("lat_ns", "")
	r := New(reg, Options{Slots: 64, Every: time.Second})
	clk := newClock(time.Second)
	for i := 0; i < 3; i++ {
		c1.Inc()
		c2.Add(2)
		g.SetInt(int64(i))
		h.Observe(int64(1000 * (i + 1)))
		r.Snapshot(clk.next())
	}
	return r, clk
}

// TestHistorySnapshotAllocBudget pins the steady-state contract: once
// every instrument has its buffers, Snapshot allocates nothing.
func TestHistorySnapshotAllocBudget(t *testing.T) {
	r, clk := populatedRing()
	allocs := testing.AllocsPerRun(100, func() {
		r.Snapshot(clk.next())
	})
	if allocs != 0 {
		t.Fatalf("steady-state Snapshot allocates %.1f/op, want 0", allocs)
	}
}

// TestHistoryQueryAllocBudget pins the read-side contract the
// self-monitor relies on: Rate, WindowQuantile and Latest are
// allocation-free, so the per-tick signal reads cost nothing.
func TestHistoryQueryAllocBudget(t *testing.T) {
	r, _ := populatedRing()
	src := []telemetry.Label{telemetry.L("source", "s1")}
	allocs := testing.AllocsPerRun(100, func() {
		r.Rate("updates_total", 30*time.Second)
		r.Rate("updates_total", 30*time.Second, src...)
		r.WindowQuantile("lat_ns", 30*time.Second, 0.99)
		r.Latest("depth")
	})
	if allocs != 0 {
		t.Fatalf("windowed queries allocate %.1f/op, want 0", allocs)
	}
}

func BenchmarkHistorySnapshot(b *testing.B) {
	r, clk := populatedRing()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Snapshot(clk.next())
	}
}
