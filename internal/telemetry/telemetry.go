// Package telemetry is a dependency-free runtime instrumentation
// library: atomic counters, gauges, fixed-bucket lock-free histograms,
// and a registry that renders Prometheus text exposition format without
// stopping writers.
//
// The design contract is that the *hot path is free*: Counter.Add,
// Gauge.Set and Histogram.Observe perform no allocation and take no
// lock, so the DKF ingest path can be instrumented without disturbing
// the allocation-free property pinned by BENCH_BASELINE.json and
// BENCH_TCP.json. Counters are striped across padded shards (folded at
// scrape time) so concurrent writers on different cores do not bounce a
// single cache line; histograms use power-of-two buckets indexed by
// bits.Len64, so bucketing is one instruction instead of a search.
//
// All instrument methods are nil-receiver safe: a component whose
// telemetry is not wired up records into nil instruments at the cost of
// one branch, which keeps instrumentation unconditional at call sites.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"unsafe"
)

// counterShard is one cache-line-padded stripe of a Counter. The padding
// keeps two shards from sharing a line, so writers on different cores do
// not invalidate each other.
type counterShard struct {
	n atomic.Int64
	_ [56]byte
}

// Counter is a monotonically increasing counter striped over shards.
// Add/Inc are allocation-free and lock-free; Value folds the shards.
type Counter struct {
	shards []counterShard
}

// NewCounter returns a counter striped over a power-of-two number of
// shards derived from GOMAXPROCS. Prefer Registry.Counter, which also
// names and exposes it.
func NewCounter() *Counter {
	n := 1
	for n < runtime.GOMAXPROCS(0) {
		n <<= 1
	}
	if n > 64 {
		n = 64
	}
	return &Counter{shards: make([]counterShard, n)}
}

// shard picks a stripe from the address of a stack variable: goroutine
// stacks are distinct and at least page-aligned, so shifting out the
// low bits spreads concurrent goroutines across shards without any
// runtime hook. The conversion to uintptr keeps the probe on the stack.
func (c *Counter) shard() *counterShard {
	var probe byte
	i := (uintptr(unsafe.Pointer(&probe)) >> 10) & uintptr(len(c.shards)-1)
	return &c.shards[i]
}

// Add increments the counter by delta. Nil-safe, allocation-free.
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.shard().n.Add(delta)
}

// Inc increments the counter by one. Nil-safe, allocation-free.
func (c *Counter) Inc() { c.Add(1) }

// Value folds all shards into the current total. Safe against
// concurrent writers (the total is a consistent lower bound of any
// later read).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var total int64
	for i := range c.shards {
		total += c.shards[i].n.Load()
	}
	return total
}

// Gauge is a last-write-wins float64 instrument.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. Nil-safe, allocation-free.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// SetInt stores an integer value (a common case for occupancies).
func (g *Gauge) SetInt(v int64) { g.Set(float64(v)) }

// SetBool stores 1 for true, 0 for false (health flags).
func (g *Gauge) SetBool(v bool) {
	if v {
		g.Set(1)
	} else {
		g.Set(0)
	}
}

// Add shifts the gauge by delta with a CAS loop — for up/down values
// tracked incrementally (active connections, window occupancy).
// Nil-safe, allocation-free.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the most recently stored value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets is the number of histogram buckets: one per power of two
// of an int64 observation (bits.Len64 yields 0..64).
const histBuckets = 65

// Histogram counts observations into fixed power-of-two buckets: bucket
// i holds observations v with bits.Len64(v) == i, i.e. 2^(i-1) <= v <
// 2^i (bucket 0 holds v <= 0). Observe is lock-free and allocation-free;
// there is no configuration, so every histogram can absorb any int64
// (nanosecond latencies, occupancies, byte sizes) without saturating.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	sum    atomic.Int64
}

// Observe records one value. Nil-safe, allocation-free, lock-free.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	var i int
	if v > 0 {
		i = bits.Len64(uint64(v))
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
type HistogramSnapshot struct {
	// Counts[i] is the number of observations in bucket i, whose upper
	// bound is 2^i - 1 (Counts[0] counts v <= 0).
	Counts [histBuckets]int64
	Sum    int64
	Count  int64
}

// Snapshot copies the bucket counts without stopping writers. The copy
// is not a single atomic cut across buckets, but each bucket value is a
// valid count and Count is their exact sum.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.Sum = h.sum.Load()
	return s
}

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1) of
// the observed distribution, resolved to bucket granularity.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var seen int64
	for i, c := range s.Counts {
		seen += c
		if seen > rank {
			if i == 0 {
				return 0
			}
			return (int64(1) << uint(i)) - 1
		}
	}
	return math.MaxInt64
}

// Label is one name/value pair attached to a metric.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

// metric is one registered instrument instance (a name plus one label
// set).
type metric struct {
	name   string
	labels []Label
	kind   metricKind

	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
	// scale divides histogram bucket bounds and sums at exposition
	// time (see HistogramScale); <= 1 means raw observed units.
	scale float64
}

// family groups every instrument sharing a metric name, so the
// exposition emits one HELP/TYPE header per name.
type family struct {
	name    string
	help    string
	kind    metricKind
	metrics []*metric
}

// Registry names instruments and renders them. Instrument creation
// takes a lock; the instruments themselves never do. Snapshots read the
// atomics in place, so scraping never stops writers.
type Registry struct {
	mu       sync.RWMutex
	families []*family
	byName   map[string]*family
	byKey    map[string]*metric
	// version counts instrument registrations, so bulk readers
	// (SeriesSnapshot holders) can detect population changes cheaply.
	version atomic.Uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family), byKey: make(map[string]*metric)}
}

// key builds the identity of one instrument instance.
func key(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte('\xff')
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// register returns the existing instrument for (name, labels) or
// installs the one built by mk. Kind mismatches panic: they are
// programming errors, not runtime conditions.
func (r *Registry) register(name, help string, kind metricKind, labels []Label, mk func() *metric) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := key(name, labels)
	if m, ok := r.byKey[k]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("telemetry: metric %s re-registered with a different type", name))
		}
		return m
	}
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric family %s holds a different type", name))
	}
	m := mk()
	m.name = name
	m.kind = kind
	m.labels = append([]Label(nil), labels...)
	f.metrics = append(f.metrics, m)
	r.byKey[k] = m
	r.version.Add(1)
	return m
}

// Counter returns the counter registered under name and labels,
// creating it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	m := r.register(name, help, kindCounter, labels, func() *metric {
		return &metric{counter: NewCounter()}
	})
	return m.counter
}

// Gauge returns the gauge registered under name and labels, creating it
// on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	m := r.register(name, help, kindGauge, labels, func() *metric {
		return &metric{gauge: &Gauge{}}
	})
	return m.gauge
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time — for derived signals (ratios) whose inputs are already counted.
// fn must be safe to call concurrently with writers.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, kindGaugeFunc, labels, func() *metric {
		return &metric{fn: fn}
	})
}

// Histogram returns the histogram registered under name and labels,
// creating it on first use.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	m := r.register(name, help, kindHistogram, labels, func() *metric {
		return &metric{hist: &Histogram{}}
	})
	return m.hist
}

// HistogramScale returns the histogram registered under name and
// labels, creating it on first use with an exposition scale: observed
// values are recorded raw (keeping Observe lock- and allocation-free),
// but the Prometheus rendering divides bucket upper bounds and the
// _sum sample by scale. A latency histogram observing nanoseconds with
// scale 1e9 therefore exposes honest seconds, per convention, without
// a hot-path division.
func (r *Registry) HistogramScale(name, help string, scale float64, labels ...Label) *Histogram {
	m := r.register(name, help, kindHistogram, labels, func() *metric {
		return &metric{hist: &Histogram{}, scale: scale}
	})
	return m.hist
}

// HistogramFor returns the histogram registered under name and labels,
// without creating one. Status surfaces use it to report quantiles for
// series some other component may or may not have registered — going
// through Histogram instead would mint an empty series as a side effect
// of looking.
func (r *Registry) HistogramFor(name string, labels ...Label) (*Histogram, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.byKey[key(name, labels)]
	if !ok || m.kind != kindHistogram {
		return nil, false
	}
	return m.hist, true
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// writeLabels renders {k="v",...}, with extra appended after the
// metric's own labels (used for histogram le bounds).
func writeLabels(b *strings.Builder, labels []Label, extra ...Label) {
	all := len(labels) + len(extra)
	if all == 0 {
		return
	}
	b.WriteByte('{')
	n := 0
	for _, set := range [][]Label{labels, extra} {
		for _, l := range set {
			if n > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l.Key)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(l.Value))
			b.WriteByte('"')
			n++
		}
	}
	b.WriteByte('}')
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered metric in Prometheus text
// exposition format (version 0.0.4). Families appear in registration
// order; instruments within a family in creation order. Writers are
// never stopped: values are read from the live atomics.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	families := make([]*family, len(r.families))
	copy(families, r.families)
	// Snapshot the per-family metric slices under the lock; the
	// instruments themselves are scraped lock-free afterwards.
	metrics := make([][]*metric, len(families))
	for i, f := range families {
		metrics[i] = append([]*metric(nil), f.metrics...)
	}
	r.mu.RUnlock()

	var b strings.Builder
	for i, f := range families {
		typ := "counter"
		switch f.kind {
		case kindGauge, kindGaugeFunc:
			typ = "gauge"
		case kindHistogram:
			typ = "histogram"
		}
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, typ)
		for _, m := range metrics[i] {
			switch m.kind {
			case kindCounter:
				b.WriteString(m.name)
				writeLabels(&b, m.labels)
				b.WriteByte(' ')
				b.WriteString(strconv.FormatInt(m.counter.Value(), 10))
				b.WriteByte('\n')
			case kindGauge:
				b.WriteString(m.name)
				writeLabels(&b, m.labels)
				b.WriteByte(' ')
				b.WriteString(formatFloat(m.gauge.Value()))
				b.WriteByte('\n')
			case kindGaugeFunc:
				b.WriteString(m.name)
				writeLabels(&b, m.labels)
				b.WriteByte(' ')
				b.WriteString(formatFloat(m.fn()))
				b.WriteByte('\n')
			case kindHistogram:
				s := m.hist.Snapshot()
				var cum int64
				for bi, c := range s.Counts {
					if c == 0 {
						continue
					}
					cum += c
					// Upper bound of bucket bi is 2^bi - 1 (bucket 0 is
					// v <= 0). Only occupied buckets are emitted; the
					// cumulative counts stay exact because cum carries
					// the skipped (empty) buckets' zero contribution.
					bound := float64(int64(1)<<uint(bi)) - 1
					if bi == 0 {
						bound = 0
					}
					if m.scale > 1 {
						bound /= m.scale
					}
					b.WriteString(m.name)
					b.WriteString("_bucket")
					writeLabels(&b, m.labels, L("le", formatFloat(bound)))
					b.WriteByte(' ')
					b.WriteString(strconv.FormatInt(cum, 10))
					b.WriteByte('\n')
				}
				b.WriteString(m.name)
				b.WriteString("_bucket")
				writeLabels(&b, m.labels, L("le", "+Inf"))
				b.WriteByte(' ')
				b.WriteString(strconv.FormatInt(s.Count, 10))
				b.WriteByte('\n')
				b.WriteString(m.name)
				b.WriteString("_sum")
				writeLabels(&b, m.labels)
				b.WriteByte(' ')
				if m.scale > 1 {
					b.WriteString(formatFloat(float64(s.Sum) / m.scale))
				} else {
					b.WriteString(strconv.FormatInt(s.Sum, 10))
				}
				b.WriteByte('\n')
				b.WriteString(m.name)
				b.WriteString("_count")
				writeLabels(&b, m.labels)
				b.WriteByte(' ')
				b.WriteString(strconv.FormatInt(s.Count, 10))
				b.WriteByte('\n')
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Value is one scraped sample, for programmatic snapshots (tests,
// /streamz internals).
type Value struct {
	Name   string
	Labels []Label
	Value  float64
}

// Snapshot returns the current value of every scalar instrument
// (counters, gauges, gauge funcs) plus _sum/_count samples for
// histograms, sorted by name then label values.
func (r *Registry) Snapshot() []Value {
	r.mu.RLock()
	ms := make([]*metric, 0, len(r.byKey))
	for _, f := range r.families {
		ms = append(ms, f.metrics...)
	}
	r.mu.RUnlock()
	out := make([]Value, 0, len(ms))
	for _, m := range ms {
		switch m.kind {
		case kindCounter:
			out = append(out, Value{m.name, m.labels, float64(m.counter.Value())})
		case kindGauge:
			out = append(out, Value{m.name, m.labels, m.gauge.Value()})
		case kindGaugeFunc:
			out = append(out, Value{m.name, m.labels, m.fn()})
		case kindHistogram:
			s := m.hist.Snapshot()
			out = append(out, Value{m.name + "_sum", m.labels, float64(s.Sum)})
			out = append(out, Value{m.name + "_count", m.labels, float64(s.Count)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return fmt.Sprint(out[i].Labels) < fmt.Sprint(out[j].Labels)
	})
	return out
}

// Get returns the scraped value of the named instrument with exactly
// the given labels, for tests asserting counter/telemetry agreement.
func (r *Registry) Get(name string, labels ...Label) (float64, bool) {
	r.mu.RLock()
	m, ok := r.byKey[key(name, labels)]
	r.mu.RUnlock()
	if !ok {
		return 0, false
	}
	switch m.kind {
	case kindCounter:
		return float64(m.counter.Value()), true
	case kindGauge:
		return m.gauge.Value(), true
	case kindGaugeFunc:
		return m.fn(), true
	case kindHistogram:
		return float64(m.hist.Snapshot().Count), true
	}
	return 0, false
}
