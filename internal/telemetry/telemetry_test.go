package telemetry

import (
	"log/slog"
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	c := NewCounter()
	for i := 0; i < 100; i++ {
		c.Inc()
	}
	c.Add(23)
	if got := c.Value(); got != 123 {
		t.Fatalf("Value = %d, want 123", got)
	}
}

func TestNilInstrumentsAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	g.Set(1)
	g.SetInt(2)
	g.SetBool(true)
	if g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	h.Observe(1)
	if h.Snapshot().Count != 0 {
		t.Fatal("nil histogram has observations")
	}
}

func TestCounterConcurrent(t *testing.T) {
	c := NewCounter()
	const goroutines, per = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*per {
		t.Fatalf("Value = %d, want %d", got, goroutines*per)
	}
}

// TestHotPathZeroAlloc pins the instrumentation contract: recording into
// any instrument must not allocate. The striped counter's shard pick
// must not force its stack probe to escape.
func TestHotPathZeroAlloc(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("t_counter", "")
	g := reg.Gauge("t_gauge", "")
	h := reg.Histogram("t_hist", "")
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(4.2)
		h.Observe(1234)
	}); n != 0 {
		t.Fatalf("hot-path instrumentation allocates %v per op, want 0", n)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(3.5)
	if g.Value() != 3.5 {
		t.Fatalf("Value = %v, want 3.5", g.Value())
	}
	g.SetBool(true)
	if g.Value() != 1 {
		t.Fatalf("SetBool(true) = %v, want 1", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	// Bucket index is bits.Len64: 0 -> bucket 0, 1 -> 1, 2..3 -> 2,
	// 4..7 -> 3, etc.
	h.Observe(0)
	h.Observe(1)
	h.Observe(2)
	h.Observe(3)
	h.Observe(1000) // bits.Len64(1000) = 10
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("Count = %d, want 5", s.Count)
	}
	if s.Sum != 1006 {
		t.Fatalf("Sum = %d, want 1006", s.Sum)
	}
	if s.Counts[0] != 1 || s.Counts[1] != 1 || s.Counts[2] != 2 || s.Counts[10] != 1 {
		t.Fatalf("bucket counts wrong: %v", s.Counts[:12])
	}
	if q := s.Quantile(0.5); q != 3 {
		t.Fatalf("median bucket bound = %d, want 3", q)
	}
	if q := s.Quantile(1); q != 1023 {
		t.Fatalf("max bucket bound = %d, want 1023", q)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "help", L("source", "s1"))
	b := reg.Counter("x_total", "help", L("source", "s1"))
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	c := reg.Counter("x_total", "help", L("source", "s2"))
	if a == c {
		t.Fatal("distinct labels returned the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter name as a gauge did not panic")
		}
	}()
	reg.Gauge("x_total", "help")
}

// TestWritePrometheusGolden locks the exposition format byte for byte:
// HELP/TYPE headers once per family, label escaping, cumulative
// histogram buckets at power-of-two bounds with +Inf, _sum and _count.
func TestWritePrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	u := reg.Counter("dkf_updates_total", "Updates folded into the server filter.", L("source", "s1"))
	u.Add(7)
	reg.Counter("dkf_updates_total", "Updates folded into the server filter.", L("source", "s2")).Add(3)
	reg.Gauge("dkf_nis", "Latest normalized innovation squared.", L("source", `quo"te`)).Set(2.5)
	reg.GaugeFunc("dkf_ratio", "Derived ratio.", func() float64 { return 0.25 })
	h := reg.Histogram("dkf_latency_ns", "Latency in nanoseconds.")
	h.Observe(1) // bucket 1, le 1
	h.Observe(1)
	h.Observe(6) // bucket 3, le 7
	h.Observe(0) // bucket 0, le 0

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP dkf_updates_total Updates folded into the server filter.
# TYPE dkf_updates_total counter
dkf_updates_total{source="s1"} 7
dkf_updates_total{source="s2"} 3
# HELP dkf_nis Latest normalized innovation squared.
# TYPE dkf_nis gauge
dkf_nis{source="quo\"te"} 2.5
# HELP dkf_ratio Derived ratio.
# TYPE dkf_ratio gauge
dkf_ratio 0.25
# HELP dkf_latency_ns Latency in nanoseconds.
# TYPE dkf_latency_ns histogram
dkf_latency_ns_bucket{le="0"} 1
dkf_latency_ns_bucket{le="1"} 3
dkf_latency_ns_bucket{le="7"} 4
dkf_latency_ns_bucket{le="+Inf"} 4
dkf_latency_ns_sum 8
dkf_latency_ns_count 4
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestScrapeDuringWrites exercises the snapshot-without-stopping-writers
// contract under the race detector.
func TestScrapeDuringWrites(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "")
	g := reg.Gauge("g", "")
	h := reg.Histogram("h_ns", "")
	const writers, per = 4, 5000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.SetInt(int64(i))
				h.Observe(int64(i % 4096))
				// Creation racing with scrape must also be safe.
				reg.Counter("c_total", "", L("w", string(rune('a'+w))))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for scraping := true; scraping; {
		select {
		case <-done:
			scraping = false
		default:
		}
		var b strings.Builder
		if err := reg.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(b.String(), "c_total") {
			t.Fatal("scrape lost a metric family")
		}
		reg.Snapshot()
	}
	if v, ok := reg.Get("c_total"); !ok || v != writers*per {
		t.Fatalf("Get(c_total) = %v, %v; want %d", v, ok, writers*per)
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo, "": slog.LevelInfo,
		"warn": slog.LevelWarn, "error": slog.LevelError, "WARN": slog.LevelWarn,
	} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("ParseLevel(loud) did not error")
	}
}

func TestNopLogger(t *testing.T) {
	l := NopLogger()
	l.Info("dropped", "k", "v") // must not panic or write
	if l.Enabled(nil, slog.LevelError) {
		t.Fatal("nop logger claims to be enabled")
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewCounter()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := int64(0)
		for pb.Next() {
			h.Observe(i)
			i++
		}
	})
}
