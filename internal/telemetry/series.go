package telemetry

// Bulk-reader API: stable handles onto every registered instrument, for
// components that sample the whole registry repeatedly (the history ring
// in internal/telemetry/history). A reader snapshots the handle list
// once, then reads values lock-free on every sample; Version tells it
// when the instrument population changed and the list must be rebuilt.

// SeriesKind identifies the instrument class behind a Series handle.
type SeriesKind int

const (
	// SeriesCounter is a monotonically increasing Counter.
	SeriesCounter SeriesKind = iota
	// SeriesGauge is a last-write-wins Gauge.
	SeriesGauge
	// SeriesGaugeFunc is a scrape-time computed gauge.
	SeriesGaugeFunc
	// SeriesHistogram is a power-of-two-bucket Histogram.
	SeriesHistogram
)

// NumHistogramBuckets is the fixed bucket count of every Histogram
// (one per power of two of an int64 observation). Exported so bulk
// readers can size per-bucket storage without depending on the
// HistogramSnapshot array type.
const NumHistogramBuckets = histBuckets

// Series is a read handle on one registered instrument instance. The
// handle stays valid for the life of the registry; reading through it
// takes no lock and allocates nothing (GaugeFunc series are as
// allocation-free as the registered fn).
type Series struct {
	// Name is the metric family name.
	Name string
	// Labels is the instance's label set (do not mutate).
	Labels []Label
	// Kind is the instrument class.
	Kind SeriesKind

	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// Scalar returns the series' current scalar value: the folded counter
// total, the gauge value, the gauge func's result, or the histogram's
// observation count.
func (s Series) Scalar() float64 {
	switch s.Kind {
	case SeriesCounter:
		return float64(s.counter.Value())
	case SeriesGauge:
		return s.gauge.Value()
	case SeriesGaugeFunc:
		return s.fn()
	case SeriesHistogram:
		return float64(s.hist.Snapshot().Count)
	}
	return 0
}

// Hist returns the underlying histogram, or nil for scalar series.
func (s Series) Hist() *Histogram { return s.hist }

// Cumulative reports whether the series is monotonically non-decreasing
// by construction (counters and histogram observation counts), i.e.
// whether per-interval deltas and rates are meaningful.
func (s Series) Cumulative() bool {
	return s.Kind == SeriesCounter || s.Kind == SeriesHistogram
}

// Version returns a generation counter incremented on every instrument
// registration. A bulk reader holding a SeriesSnapshot is complete as
// long as Version has not moved since the snapshot was taken.
func (r *Registry) Version() uint64 { return r.version.Load() }

// SeriesSnapshot returns a handle for every registered instrument, in
// family registration order then instance creation order (the same
// order WritePrometheus renders). The returned slice is the caller's.
func (r *Registry) SeriesSnapshot() []Series {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Series, 0, len(r.byKey))
	for _, f := range r.families {
		for _, m := range f.metrics {
			s := Series{Name: m.name, Labels: m.labels}
			switch m.kind {
			case kindCounter:
				s.Kind, s.counter = SeriesCounter, m.counter
			case kindGauge:
				s.Kind, s.gauge = SeriesGauge, m.gauge
			case kindGaugeFunc:
				s.Kind, s.fn = SeriesGaugeFunc, m.fn
			case kindHistogram:
				s.Kind, s.hist = SeriesHistogram, m.hist
			}
			out = append(out, s)
		}
	}
	return out
}
