package telemetry

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ParseLevel maps a -log-level flag value to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("telemetry: unknown log level %q (want debug|info|warn|error)", s)
}

// NewLogger returns a text-handler slog.Logger writing to w at the
// given level — the shared logger construction for the daemon binaries.
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
}

// discardHandler drops every record. slog.DiscardHandler exists only
// from Go 1.24, and this module's language level predates it.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// NopLogger returns a logger that discards everything; components take
// it as the default so logging is never a nil check at call sites.
func NopLogger() *slog.Logger { return slog.New(discardHandler{}) }
