// Package stream defines the data-stream abstractions the rest of the
// system is written against: timestamped multi-attribute readings,
// pull-based sources, and continuous queries with precision constraints
// in the sense of the paper's §3.1 (Table 2 notation).
package stream

import (
	"errors"
	"fmt"
)

// Reading is one sensor observation: Seq is the discrete time index k,
// Time the sampling timestamp in seconds, and Values the measured
// attribute vector (e.g. [x, y] for the moving-object example).
type Reading struct {
	Seq    int
	Time   float64
	Values []float64
}

// Clone returns a deep copy of the reading.
func (r Reading) Clone() Reading {
	v := make([]float64, len(r.Values))
	copy(v, r.Values)
	return Reading{Seq: r.Seq, Time: r.Time, Values: v}
}

// Source yields readings in sequence order. Next reports ok=false when
// the stream is exhausted.
type Source interface {
	Next() (r Reading, ok bool)
}

// SliceSource adapts an in-memory dataset to the Source interface.
type SliceSource struct {
	readings []Reading
	pos      int
}

// NewSliceSource wraps readings (not copied; callers must not mutate).
func NewSliceSource(readings []Reading) *SliceSource {
	return &SliceSource{readings: readings}
}

// Next implements Source.
func (s *SliceSource) Next() (Reading, bool) {
	if s.pos >= len(s.readings) {
		return Reading{}, false
	}
	r := s.readings[s.pos]
	s.pos++
	return r, true
}

// Len returns the total number of readings in the underlying dataset.
func (s *SliceSource) Len() int { return len(s.readings) }

// Reset rewinds the source to the beginning.
func (s *SliceSource) Reset() { s.pos = 0 }

// FuncSource adapts a generator function to the Source interface.
type FuncSource func() (Reading, bool)

// Next implements Source.
func (f FuncSource) Next() (Reading, bool) { return f() }

// ChanSource adapts a channel of readings to the Source interface; the
// stream ends when the channel is closed.
type ChanSource <-chan Reading

// Next implements Source.
func (c ChanSource) Next() (Reading, bool) {
	r, ok := <-c
	return r, ok
}

// Collect drains a source into a slice. Intended for tests and dataset
// materialization; unbounded sources will not terminate.
func Collect(s Source) []Reading {
	var out []Reading
	for {
		r, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

// Values extracts column attr from a dataset.
func Values(readings []Reading, attr int) []float64 {
	out := make([]float64, len(readings))
	for i, r := range readings {
		out[i] = r.Values[attr]
	}
	return out
}

// FromValues builds a single-attribute dataset sampled at interval dt.
func FromValues(vals []float64, dt float64) []Reading {
	out := make([]Reading, len(vals))
	for i, v := range vals {
		out[i] = Reading{Seq: i, Time: float64(i) * dt, Values: []float64{v}}
	}
	return out
}

// Query is a continuous query over one source object, following the
// paper's Table 2: Delta is the precision width Δ_j, and F the optional
// smoothing factor (0 disables the smoothing filter KFc).
type Query struct {
	// ID names the query (q_j).
	ID string
	// SourceID names the target source object (s_i).
	SourceID string
	// Delta is the precision width: the server's answer must stay within
	// Delta of the true source value in every measured dimension.
	Delta float64
	// F is the optional smoothing factor controlling KFc; 0 means the
	// raw stream is filtered directly.
	F float64
	// Model names the stream model to install (resolved by the DSMS).
	Model string
}

// Validate checks query parameters.
func (q Query) Validate() error {
	if q.ID == "" {
		return errors.New("stream: query ID is empty")
	}
	if q.SourceID == "" {
		return fmt.Errorf("stream: query %s has empty source ID", q.ID)
	}
	if q.Delta <= 0 {
		return fmt.Errorf("stream: query %s has non-positive precision width %v", q.ID, q.Delta)
	}
	if q.F < 0 {
		return fmt.Errorf("stream: query %s has negative smoothing factor %v", q.ID, q.F)
	}
	return nil
}

// WithinPrecision reports whether predicted is within delta of actual in
// every dimension — the paper's update test |v̂ - v| > δ applied
// per-attribute (Example 1: "point P is updated to the server if error in
// either X or Y value is greater than δ").
func WithinPrecision(predicted, actual []float64, delta float64) bool {
	if len(predicted) != len(actual) {
		panic(fmt.Sprintf("stream: WithinPrecision dimension mismatch %d vs %d", len(predicted), len(actual)))
	}
	for i := range predicted {
		d := predicted[i] - actual[i]
		if d < 0 {
			d = -d
		}
		if d > delta {
			return false
		}
	}
	return true
}

// AbsErrorSum returns Σ_i |a_i - b_i|, the paper's Example 1 error metric
// (sum of per-coordinate absolute errors).
func AbsErrorSum(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("stream: AbsErrorSum dimension mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		s += d
	}
	return s
}
