package stream

import (
	"math"
	"testing"
	"testing/quick"
)

func TestReadingClone(t *testing.T) {
	r := Reading{Seq: 1, Time: 0.5, Values: []float64{1, 2}}
	c := r.Clone()
	c.Values[0] = 99
	if r.Values[0] != 1 {
		t.Fatal("Clone aliases Values")
	}
}

func TestSliceSource(t *testing.T) {
	data := FromValues([]float64{10, 20, 30}, 0.1)
	s := NewSliceSource(data)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	var got []float64
	for {
		r, ok := s.Next()
		if !ok {
			break
		}
		got = append(got, r.Values[0])
	}
	if len(got) != 3 || got[2] != 30 {
		t.Fatalf("drained = %v", got)
	}
	if _, ok := s.Next(); ok {
		t.Fatal("Next after exhaustion returned ok")
	}
	s.Reset()
	if r, ok := s.Next(); !ok || r.Values[0] != 10 {
		t.Fatalf("after Reset got %v %v", r, ok)
	}
}

func TestFromValuesSeqAndTime(t *testing.T) {
	data := FromValues([]float64{5, 6}, 0.25)
	if data[1].Seq != 1 || math.Abs(data[1].Time-0.25) > 1e-12 {
		t.Fatalf("FromValues[1] = %+v", data[1])
	}
}

func TestFuncSource(t *testing.T) {
	n := 0
	src := FuncSource(func() (Reading, bool) {
		if n >= 2 {
			return Reading{}, false
		}
		n++
		return Reading{Seq: n}, true
	})
	got := Collect(src)
	if len(got) != 2 || got[1].Seq != 2 {
		t.Fatalf("Collect = %v", got)
	}
}

func TestChanSource(t *testing.T) {
	ch := make(chan Reading, 2)
	ch <- Reading{Seq: 0, Values: []float64{1}}
	ch <- Reading{Seq: 1, Values: []float64{2}}
	close(ch)
	got := Collect(ChanSource(ch))
	if len(got) != 2 || got[1].Values[0] != 2 {
		t.Fatalf("ChanSource collect = %v", got)
	}
}

func TestValuesColumn(t *testing.T) {
	data := []Reading{
		{Values: []float64{1, 10}},
		{Values: []float64{2, 20}},
	}
	col := Values(data, 1)
	if col[0] != 10 || col[1] != 20 {
		t.Fatalf("Values = %v", col)
	}
}

func TestQueryValidate(t *testing.T) {
	good := Query{ID: "q1", SourceID: "s1", Delta: 3}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid query rejected: %v", err)
	}
	bad := []Query{
		{SourceID: "s1", Delta: 1},
		{ID: "q", Delta: 1},
		{ID: "q", SourceID: "s", Delta: 0},
		{ID: "q", SourceID: "s", Delta: -1},
		{ID: "q", SourceID: "s", Delta: 1, F: -1},
	}
	for i, q := range bad {
		if err := q.Validate(); err == nil {
			t.Errorf("case %d: invalid query accepted: %+v", i, q)
		}
	}
}

func TestWithinPrecision(t *testing.T) {
	if !WithinPrecision([]float64{1, 2}, []float64{1.5, 2.5}, 0.5) {
		t.Fatal("boundary case |d| == delta must be within")
	}
	if WithinPrecision([]float64{1, 2}, []float64{1, 2.51}, 0.5) {
		t.Fatal("one dimension out of bound must fail")
	}
}

func TestWithinPrecisionDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on dim mismatch")
		}
	}()
	WithinPrecision([]float64{1}, []float64{1, 2}, 1)
}

func TestAbsErrorSum(t *testing.T) {
	if got := AbsErrorSum([]float64{1, -2}, []float64{3, 2}); got != 6 {
		t.Fatalf("AbsErrorSum = %v, want 6", got)
	}
}

// Property: WithinPrecision(a, b, δ) is symmetric in a and b, and implied
// by any δ' >= δ.
func TestWithinPrecisionMonotoneProperty(t *testing.T) {
	f := func(a, b [3]float64, d1, d2 float64) bool {
		da, db := math.Abs(d1), math.Abs(d1)+math.Abs(d2)
		as, bs := a[:], b[:]
		if WithinPrecision(as, bs, da) != WithinPrecision(bs, as, da) {
			return false
		}
		// Larger delta can only widen acceptance.
		if WithinPrecision(as, bs, da) && !WithinPrecision(as, bs, db) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
