package gen

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"streamkf/internal/stream"
)

// WriteCSV serializes readings as CSV with a header row:
// seq,time,v0,v1,...
func WriteCSV(w io.Writer, readings []stream.Reading) error {
	cw := csv.NewWriter(w)
	if len(readings) == 0 {
		cw.Flush()
		return cw.Error()
	}
	header := []string{"seq", "time"}
	for i := range readings[0].Values {
		header = append(header, fmt.Sprintf("v%d", i))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for _, r := range readings {
		if len(r.Values) != len(readings[0].Values) {
			return fmt.Errorf("gen: reading %d has %d values, want %d", r.Seq, len(r.Values), len(readings[0].Values))
		}
		row[0] = strconv.Itoa(r.Seq)
		row[1] = strconv.FormatFloat(r.Time, 'g', -1, 64)
		for i, v := range r.Values {
			row[2+i] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses readings written by WriteCSV.
func ReadCSV(r io.Reader) ([]stream.Reading, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("gen: reading CSV: %w", err)
	}
	if len(rows) == 0 {
		return nil, nil
	}
	header := rows[0]
	if len(header) < 3 || header[0] != "seq" || header[1] != "time" {
		return nil, fmt.Errorf("gen: unexpected CSV header %v", header)
	}
	nvals := len(header) - 2
	out := make([]stream.Reading, 0, len(rows)-1)
	for i, row := range rows[1:] {
		if len(row) != len(header) {
			return nil, fmt.Errorf("gen: row %d has %d fields, want %d", i+1, len(row), len(header))
		}
		seq, err := strconv.Atoi(row[0])
		if err != nil {
			return nil, fmt.Errorf("gen: row %d seq: %w", i+1, err)
		}
		ts, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return nil, fmt.Errorf("gen: row %d time: %w", i+1, err)
		}
		vals := make([]float64, nvals)
		for j := 0; j < nvals; j++ {
			vals[j], err = strconv.ParseFloat(row[2+j], 64)
			if err != nil {
				return nil, fmt.Errorf("gen: row %d value %d: %w", i+1, j, err)
			}
		}
		out = append(out, stream.Reading{Seq: seq, Time: ts, Values: vals})
	}
	return out, nil
}
