// Package gen produces the synthetic workloads used throughout the
// evaluation. It reproduces the paper's own synthetic moving-object
// generator (§5.1) exactly as described, and provides synthetic stand-ins
// for the two real datasets the paper used (zonal electric load and DEC
// HTTP traffic) that preserve the stream characteristics each experiment
// depends on — see DESIGN.md §3 for the substitution rationale.
//
// All generators are deterministic given their Seed, so experiments and
// benchmarks are reproducible run to run.
package gen

import (
	"math"
	"math/rand"

	"streamkf/internal/stream"
)

// MovingObjectConfig parameterizes the Example 1 trajectory generator.
type MovingObjectConfig struct {
	// N is the number of data points (paper: 4000).
	N int
	// DT is the sampling interval in seconds (paper: 100 ms).
	DT float64
	// MaxSpeed bounds the object speed in units/s (paper: 500).
	MaxSpeed float64
	// MinSegment and MaxSegment bound the number of samples the object
	// keeps a heading/speed before randomly changing it.
	MinSegment, MaxSegment int
	// NoiseStd is the standard deviation of measurement noise added to
	// the reported positions (the paper's Example 1 data is low-noise).
	NoiseStd float64
	// Seed makes the trajectory reproducible.
	Seed int64
}

// DefaultMovingObject returns the Example 1 configuration: 4000 points at
// 100 ms, piecewise-linear trajectories with random heading and speed
// changes. The paper caps speed at "500 units" without fixing the spatial
// unit; we pick the speed cap so that per-sample displacement (~1–3
// units) is commensurate with the paper's precision-width axis of 0.5–20,
// which is what reproduces its reported update percentages (Figure 4
// shows caching well below 100% at δ = 3, impossible if the object moved
// tens of units per sample).
func DefaultMovingObject() MovingObjectConfig {
	return MovingObjectConfig{
		N:          4000,
		DT:         0.1,
		MaxSpeed:   30,
		MinSegment: 20,
		MaxSegment: 200,
		NoiseStd:   0.1,
		Seed:       1,
	}
}

// MovingObject generates a two-attribute (X, Y) piecewise-linear
// trajectory: "the object could randomly change its speed and heading,
// and then continues on that linear path for a randomly generated length
// of time" (§5.1).
func MovingObject(cfg MovingObjectConfig) []stream.Reading {
	if cfg.N <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]stream.Reading, cfg.N)
	x, y := 0.0, 0.0
	speed := rng.Float64() * cfg.MaxSpeed
	angle := rng.Float64() * 2 * math.Pi
	remaining := segmentLen(rng, cfg)
	for k := 0; k < cfg.N; k++ {
		if remaining == 0 {
			speed = rng.Float64() * cfg.MaxSpeed
			angle = rng.Float64() * 2 * math.Pi
			remaining = segmentLen(rng, cfg)
		}
		x += speed * math.Cos(angle) * cfg.DT
		y += speed * math.Sin(angle) * cfg.DT
		remaining--
		out[k] = stream.Reading{
			Seq:  k,
			Time: float64(k) * cfg.DT,
			Values: []float64{
				x + cfg.NoiseStd*rng.NormFloat64(),
				y + cfg.NoiseStd*rng.NormFloat64(),
			},
		}
	}
	return out
}

func segmentLen(rng *rand.Rand, cfg MovingObjectConfig) int {
	lo, hi := cfg.MinSegment, cfg.MaxSegment
	if lo <= 0 {
		lo = 1
	}
	if hi < lo {
		hi = lo
	}
	return lo + rng.Intn(hi-lo+1)
}

// PowerLoadConfig parameterizes the Example 2 substitute dataset.
type PowerLoadConfig struct {
	// N is the number of hourly samples (paper: 5831, about one month
	// of hourly readings plus change).
	N int
	// Base is the mean zonal load.
	Base float64
	// DailyAmp is the amplitude of the 24-hour sinusoidal component.
	DailyAmp float64
	// WeekendFactor scales the daily amplitude on weekends, modelling
	// lower business load.
	WeekendFactor float64
	// NoiseStd is the measurement noise standard deviation.
	NoiseStd float64
	// Seed makes the series reproducible.
	Seed int64
}

// DefaultPowerLoad returns a configuration shaped like the paper's
// Figure 6: a strong diurnal sinusoid (peak in working hours, trough at
// night) with mild noise, 5831 hourly points.
func DefaultPowerLoad() PowerLoadConfig {
	return PowerLoadConfig{
		N:             5831,
		Base:          1750,
		DailyAmp:      400,
		WeekendFactor: 0.7,
		NoiseStd:      25,
		Seed:          2,
	}
}

// PowerLoad generates an hourly zonal electric load series with a
// sinusoidal daily cycle: x_k ≈ Base + A·sin(ωk + θ) with ω = 2π/24, a
// weekend amplitude dip, and white measurement noise.
func PowerLoad(cfg PowerLoadConfig) []stream.Reading {
	if cfg.N <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]stream.Reading, cfg.N)
	omega := 2 * math.Pi / 24
	// Phase chosen so the daily peak lands mid-afternoon.
	theta := -omega * 9
	for k := 0; k < cfg.N; k++ {
		amp := cfg.DailyAmp
		day := (k / 24) % 7
		if day >= 5 { // weekend
			amp *= cfg.WeekendFactor
		}
		v := cfg.Base + amp*math.Sin(omega*float64(k)+theta) + cfg.NoiseStd*rng.NormFloat64()
		out[k] = stream.Reading{Seq: k, Time: float64(k) * 3600, Values: []float64{v}}
	}
	return out
}

// HTTPTrafficConfig parameterizes the Example 3 substitute dataset.
type HTTPTrafficConfig struct {
	// N is the number of samples (counts per 10-timestamp bucket).
	N int
	// BaseRate is the mean packet count per bucket.
	BaseRate float64
	// NoiseStd is the white noise standard deviation, the dominant
	// component ("the data is extremely noisy revealing no
	// visually-identifiable trend", §4.3).
	NoiseStd float64
	// BurstProb is the per-sample probability of starting a burst.
	BurstProb float64
	// BurstAmp is the mean burst amplitude; bursts decay geometrically.
	BurstAmp float64
	// Seed makes the series reproducible.
	Seed int64
}

// DefaultHTTPTraffic returns a configuration shaped like the paper's
// Figure 9: a noise-dominated count series with occasional spikes.
func DefaultHTTPTraffic() HTTPTrafficConfig {
	return HTTPTrafficConfig{
		N:         5000,
		BaseRate:  120,
		NoiseStd:  35,
		BurstProb: 0.01,
		BurstAmp:  250,
		Seed:      3,
	}
}

// HTTPTraffic generates a noisy HTTP packet-count series: white noise
// around a base rate with geometrically decaying bursts, clipped at zero
// (packet counts cannot be negative).
func HTTPTraffic(cfg HTTPTrafficConfig) []stream.Reading {
	if cfg.N <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]stream.Reading, cfg.N)
	burst := 0.0
	for k := 0; k < cfg.N; k++ {
		if rng.Float64() < cfg.BurstProb {
			burst += cfg.BurstAmp * (0.5 + rng.Float64())
		}
		burst *= 0.85
		v := cfg.BaseRate + burst + cfg.NoiseStd*rng.NormFloat64()
		if v < 0 {
			v = 0
		}
		out[k] = stream.Reading{Seq: k, Time: float64(k) * 10, Values: []float64{v}}
	}
	return out
}

// Ramp generates v_k = start + slope*k with optional Gaussian noise.
func Ramp(n int, start, slope, noiseStd float64, seed int64) []stream.Reading {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]float64, n)
	for k := range vals {
		vals[k] = start + slope*float64(k) + noiseStd*rng.NormFloat64()
	}
	return stream.FromValues(vals, 1)
}

// Sine generates v_k = offset + amp*sin(omega*k + phase) with noise.
func Sine(n int, offset, amp, omega, phase, noiseStd float64, seed int64) []stream.Reading {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]float64, n)
	for k := range vals {
		vals[k] = offset + amp*math.Sin(omega*float64(k)+phase) + noiseStd*rng.NormFloat64()
	}
	return stream.FromValues(vals, 1)
}

// RandomWalk generates v_k = v_{k-1} + N(0, stepStd).
func RandomWalk(n int, start, stepStd float64, seed int64) []stream.Reading {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]float64, n)
	v := start
	for k := range vals {
		v += stepStd * rng.NormFloat64()
		vals[k] = v
	}
	return stream.FromValues(vals, 1)
}

// Steps generates a piecewise-constant series that jumps to a new level
// drawn from N(0, levelStd) every holdLen samples — a worst case for
// trend-following models.
func Steps(n, holdLen int, levelStd float64, seed int64) []stream.Reading {
	if holdLen <= 0 {
		holdLen = 1
	}
	rng := rand.New(rand.NewSource(seed))
	vals := make([]float64, n)
	level := 0.0
	for k := range vals {
		if k%holdLen == 0 {
			level = levelStd * rng.NormFloat64()
		}
		vals[k] = level
	}
	return stream.FromValues(vals, 1)
}
