package gen

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"streamkf/internal/stream"
)

func TestMovingObjectShape(t *testing.T) {
	cfg := DefaultMovingObject()
	data := MovingObject(cfg)
	if len(data) != cfg.N {
		t.Fatalf("len = %d, want %d", len(data), cfg.N)
	}
	if len(data[0].Values) != 2 {
		t.Fatalf("values per reading = %d, want 2", len(data[0].Values))
	}
	if math.Abs(data[1].Time-cfg.DT) > 1e-12 {
		t.Fatalf("time step = %v, want %v", data[1].Time, cfg.DT)
	}
}

func TestMovingObjectSpeedBound(t *testing.T) {
	cfg := DefaultMovingObject()
	cfg.NoiseStd = 0 // measure true kinematics
	data := MovingObject(cfg)
	for k := 1; k < len(data); k++ {
		dx := data[k].Values[0] - data[k-1].Values[0]
		dy := data[k].Values[1] - data[k-1].Values[1]
		speed := math.Hypot(dx, dy) / cfg.DT
		if speed > cfg.MaxSpeed+1e-9 {
			t.Fatalf("speed at k=%d is %v, exceeds max %v", k, speed, cfg.MaxSpeed)
		}
	}
}

func TestMovingObjectPiecewiseLinear(t *testing.T) {
	// Within a segment, consecutive velocity vectors are identical; count
	// the number of distinct velocity changes and check it is far below N
	// (i.e. the trajectory really is piecewise linear, not a random walk).
	cfg := DefaultMovingObject()
	cfg.NoiseStd = 0
	data := MovingObject(cfg)
	changes := 0
	var pvx, pvy float64
	for k := 1; k < len(data); k++ {
		vx := (data[k].Values[0] - data[k-1].Values[0]) / cfg.DT
		vy := (data[k].Values[1] - data[k-1].Values[1]) / cfg.DT
		if k > 1 && (math.Abs(vx-pvx) > 1e-6 || math.Abs(vy-pvy) > 1e-6) {
			changes++
		}
		pvx, pvy = vx, vy
	}
	if changes == 0 {
		t.Fatal("trajectory never changes heading")
	}
	if changes > cfg.N/cfg.MinSegment {
		t.Fatalf("%d velocity changes for %d points: not piecewise linear", changes, cfg.N)
	}
}

func TestMovingObjectDeterministic(t *testing.T) {
	a := MovingObject(DefaultMovingObject())
	b := MovingObject(DefaultMovingObject())
	for k := range a {
		if a[k].Values[0] != b[k].Values[0] || a[k].Values[1] != b[k].Values[1] {
			t.Fatalf("non-deterministic at k=%d", k)
		}
	}
	cfg := DefaultMovingObject()
	cfg.Seed = 99
	c := MovingObject(cfg)
	if a[100].Values[0] == c[100].Values[0] {
		t.Fatal("different seeds produced identical trajectories")
	}
}

func TestPowerLoadShape(t *testing.T) {
	cfg := DefaultPowerLoad()
	data := PowerLoad(cfg)
	if len(data) != cfg.N {
		t.Fatalf("len = %d, want %d", len(data), cfg.N)
	}
	// The series must oscillate around Base with daily period: the mean
	// must be near Base and the lag-24 autocorrelation strongly positive.
	vals := stream.Values(data, 0)
	mean := meanOf(vals)
	if math.Abs(mean-cfg.Base) > cfg.DailyAmp/4 {
		t.Fatalf("mean = %v, want near %v", mean, cfg.Base)
	}
	if ac := autocorr(vals, 24); ac < 0.5 {
		t.Fatalf("lag-24 autocorrelation = %v, want > 0.5 (diurnal cycle)", ac)
	}
	if ac12 := autocorr(vals, 12); ac12 > 0 {
		t.Fatalf("lag-12 autocorrelation = %v, want negative (half period)", ac12)
	}
}

func TestHTTPTrafficShape(t *testing.T) {
	cfg := DefaultHTTPTraffic()
	data := HTTPTraffic(cfg)
	if len(data) != cfg.N {
		t.Fatalf("len = %d, want %d", len(data), cfg.N)
	}
	vals := stream.Values(data, 0)
	for i, v := range vals {
		if v < 0 {
			t.Fatalf("negative packet count %v at %d", v, i)
		}
	}
	// Noise-dominated: weak short-lag autocorrelation relative to the
	// power-load series.
	if ac := autocorr(vals, 1); ac > 0.9 {
		t.Fatalf("lag-1 autocorrelation = %v; series too smooth for Example 3", ac)
	}
	// But bursts must exist: max well above base rate.
	var mx float64
	for _, v := range vals {
		mx = math.Max(mx, v)
	}
	if mx < cfg.BaseRate+cfg.BurstAmp {
		t.Fatalf("max = %v, no visible bursts", mx)
	}
}

func TestPrimitives(t *testing.T) {
	r := Ramp(10, 5, 2, 0, 1)
	if r[9].Values[0] != 5+2*9 {
		t.Fatalf("Ramp end = %v", r[9].Values[0])
	}
	s := Sine(100, 1, 2, 0.1, 0, 0, 1)
	if math.Abs(s[0].Values[0]-1) > 1e-12 {
		t.Fatalf("Sine start = %v, want 1", s[0].Values[0])
	}
	w := RandomWalk(50, 0, 1, 7)
	w2 := RandomWalk(50, 0, 1, 7)
	for i := range w {
		if w[i].Values[0] != w2[i].Values[0] {
			t.Fatal("RandomWalk not deterministic")
		}
	}
	st := Steps(20, 5, 10, 3)
	if st[0].Values[0] != st[4].Values[0] {
		t.Fatal("Steps changed level within hold")
	}
	if st[0].Values[0] == st[5].Values[0] {
		t.Fatal("Steps failed to change level")
	}
}

func TestGeneratorsHandleZeroN(t *testing.T) {
	if MovingObject(MovingObjectConfig{}) != nil {
		t.Fatal("MovingObject(N=0) != nil")
	}
	if PowerLoad(PowerLoadConfig{}) != nil {
		t.Fatal("PowerLoad(N=0) != nil")
	}
	if HTTPTraffic(HTTPTrafficConfig{}) != nil {
		t.Fatal("HTTPTraffic(N=0) != nil")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	data := MovingObject(MovingObjectConfig{N: 20, DT: 0.1, MaxSpeed: 100, MinSegment: 5, MaxSegment: 10, Seed: 4})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, data); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(data) {
		t.Fatalf("round trip len = %d, want %d", len(back), len(data))
	}
	for i := range data {
		if data[i].Seq != back[i].Seq || data[i].Time != back[i].Time ||
			data[i].Values[0] != back[i].Values[0] || data[i].Values[1] != back[i].Values[1] {
			t.Fatalf("row %d mismatch: %+v vs %+v", i, data[i], back[i])
		}
	}
}

func TestCSVEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil || got != nil {
		t.Fatalf("empty round trip = %v, %v", got, err)
	}
}

func TestReadCSVBadInput(t *testing.T) {
	cases := []string{
		"bogus,header\n1,2\n",
		"seq,time,v0\nnotanint,0,1\n",
		"seq,time,v0\n1,notafloat,1\n",
		"seq,time,v0\n1,0,notafloat\n",
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: bad CSV accepted", i)
		}
	}
}

func meanOf(vals []float64) float64 {
	var s float64
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}

// autocorr computes the lag-l sample autocorrelation.
func autocorr(vals []float64, lag int) float64 {
	m := meanOf(vals)
	var num, den float64
	for i := 0; i+lag < len(vals); i++ {
		num += (vals[i] - m) * (vals[i+lag] - m)
	}
	for _, v := range vals {
		den += (v - m) * (v - m)
	}
	return num / den
}
