package gen

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV asserts the CSV reader never panics and that anything it
// accepts round-trips through WriteCSV.
func FuzzReadCSV(f *testing.F) {
	var good bytes.Buffer
	if err := WriteCSV(&good, MovingObject(MovingObjectConfig{N: 5, DT: 0.1, MaxSpeed: 10, MinSegment: 2, MaxSegment: 3, Seed: 1})); err != nil {
		f.Fatal(err)
	}
	seeds := []string{
		good.String(),
		"",
		"seq,time,v0\n",
		"seq,time,v0\n1,2,3\n",
		"seq,time\n1,2\n",
		"bogus\n",
		"seq,time,v0\nx,y,z\n",
		"seq,time,v0,v1\n0,0,1\n",
		strings.Repeat("seq,", 1000),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		readings, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, readings); err != nil {
			t.Fatalf("WriteCSV failed on accepted input: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(back) != len(readings) {
			t.Fatalf("round trip length %d != %d", len(back), len(readings))
		}
	})
}
