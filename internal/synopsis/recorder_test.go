package synopsis

import (
	"math"
	"testing"

	"streamkf/internal/core"
	"streamkf/internal/gen"
	"streamkf/internal/model"
)

func TestRecorderValidation(t *testing.T) {
	s, err := New(linearModel(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RecordUpdate(1, []float64{1}); err == nil {
		t.Fatal("RecordUpdate before bootstrap accepted")
	}
	if err := s.ExtendTo(5); err == nil {
		t.Fatal("ExtendTo before bootstrap accepted")
	}
	if err := s.RecordBootstrap(0, []float64{1, 2}); err == nil {
		t.Fatal("bootstrap with wrong arity accepted")
	}
	if err := s.RecordBootstrap(0, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := s.RecordBootstrap(0, []float64{1}); err == nil {
		t.Fatal("double bootstrap accepted")
	}
	if err := s.RecordUpdate(0, []float64{1}); err == nil {
		t.Fatal("non-increasing update seq accepted")
	}
	if err := s.RecordUpdate(3, []float64{1, 2}); err == nil {
		t.Fatal("update with wrong arity accepted")
	}
	if s.FirstSeq() != 0 || s.LastSeq() != 0 {
		t.Fatalf("seq bounds %d..%d, want 0..0", s.FirstSeq(), s.LastSeq())
	}
}

// TestRecorderMatchesLiveProtocol is the load-bearing test: a store fed
// only the session's transmitted updates must reproduce, at every
// sequence number, either the exact transmitted value (update steps) or
// the very prediction the server answered live (suppressed steps).
func TestRecorderMatchesLiveProtocol(t *testing.T) {
	m := model.Linear(1, 1, 0.05, 0.05)
	cfg := core.Config{SourceID: "s", Model: m, Delta: 2}
	sess, err := core.NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	store, err := New(m, cfg.Delta)
	if err != nil {
		t.Fatal(err)
	}

	data := gen.RandomWalk(300, 0, 1.5, 17)
	liveAnswers := make([]float64, len(data))
	src := sess.Source()
	for i, r := range data {
		u, _, err := src.Process(r)
		if err != nil {
			t.Fatal(err)
		}
		if u != nil {
			if err := sess.Server().ApplyUpdate(*u); err != nil {
				t.Fatal(err)
			}
			if u.Bootstrap {
				if err := store.RecordBootstrap(u.Seq, u.Values); err != nil {
					t.Fatal(err)
				}
			} else if err := store.RecordUpdate(u.Seq, u.Values); err != nil {
				t.Fatal(err)
			}
		} else {
			sess.Server().AdvanceTo(r.Seq)
		}
		est, _ := sess.Server().Estimate()
		liveAnswers[i] = est[0]
	}
	if err := store.ExtendTo(data[len(data)-1].Seq); err != nil {
		t.Fatal(err)
	}

	rec, err := store.Range(0, len(data)-1)
	if err != nil {
		t.Fatal(err)
	}
	correctionSeqs := make(map[int]bool, len(store.corrections))
	for _, c := range store.corrections {
		correctionSeqs[c.Seq] = true
	}
	for i, r := range rec {
		if correctionSeqs[r.Seq] || r.Seq == store.FirstSeq() {
			// Update step: replay returns the exact transmitted value.
			if math.Abs(r.Values[0]-data[i].Values[0]) > 1e-12 {
				t.Fatalf("seq %d: replay %v != transmitted %v", r.Seq, r.Values[0], data[i].Values[0])
			}
			continue
		}
		// Suppressed step: replay must equal the live server answer.
		if math.Abs(r.Values[0]-liveAnswers[i]) > 1e-9 {
			t.Fatalf("seq %d: replay %v != live answer %v", r.Seq, r.Values[0], liveAnswers[i])
		}
	}
}

func TestRecorderAtAndRangeBounds(t *testing.T) {
	m := model.Linear(1, 1, 0.05, 0.05)
	s, err := New(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.At(0); err == nil {
		t.Fatal("At on empty store accepted")
	}
	if err := s.RecordBootstrap(10, []float64{5}); err != nil {
		t.Fatal(err)
	}
	if err := s.RecordUpdate(13, []float64{8}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Range(9, 12); err == nil {
		t.Fatal("Range before bootstrap accepted")
	}
	if _, err := s.Range(12, 11); err == nil {
		t.Fatal("inverted Range accepted")
	}
	if _, err := s.Range(10, 14); err == nil {
		t.Fatal("Range beyond lastSeq accepted")
	}
	v, err := s.At(13)
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != 8 {
		t.Fatalf("At(13) = %v, want the transmitted 8", v[0])
	}
	if s.Tolerance() != 1 {
		t.Fatalf("Tolerance = %v", s.Tolerance())
	}
}

func TestRecorderStreamGapsArePredictions(t *testing.T) {
	m := model.Linear(1, 1, 1e-6, 1e-6)
	s, err := New(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Bootstrap at 0 with value 0, update at 2 with 2, then silence to 5
	// on a slope-1 ramp: the replayed values at 3..5 must extrapolate.
	if err := s.RecordBootstrap(0, []float64{0}); err != nil {
		t.Fatal(err)
	}
	if err := s.RecordUpdate(1, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := s.RecordUpdate(2, []float64{2}); err != nil {
		t.Fatal(err)
	}
	if err := s.ExtendTo(5); err != nil {
		t.Fatal(err)
	}
	rec, err := s.Range(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{3, 4, 5} {
		if math.Abs(rec[i].Values[0]-want) > 0.2 {
			t.Fatalf("gap seq %d: %v, want ~%v", rec[i].Seq, rec[i].Values[0], want)
		}
	}
}
