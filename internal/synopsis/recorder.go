package synopsis

import (
	"fmt"
	"sort"

	"streamkf/internal/mat"
	"streamkf/internal/stream"
)

// The recorder entry points below build a Store directly from a DKF
// update stream instead of from raw readings. The insight is that the
// server's update log *is* a synopsis: the bootstrap plus the
// transmitted corrections are exactly the information needed to replay
// the server's per-step answers, each within the session's precision
// width of the original reading. This is what turns the paper's
// future-work item 7 into a server-side feature — historical queries
// over data the sensors never fully sent.

// RecordBootstrap starts the store from a session's bootstrap update.
// It fails if readings were already appended.
func (s *Store) RecordBootstrap(seq int, values []float64) error {
	if s.filter != nil || s.n > 0 {
		return fmt.Errorf("synopsis: RecordBootstrap on a non-empty store")
	}
	if len(values) != s.mdl.MeasDim {
		return fmt.Errorf("synopsis: bootstrap has %d values, model wants %d", len(values), s.mdl.MeasDim)
	}
	f, err := s.mdl.NewFilter(values)
	if err != nil {
		return err
	}
	s.filter = f
	s.bootSeq = seq
	s.boot = cloneVals(values)
	s.lastSeq = seq
	s.n = 1
	return nil
}

// RecordUpdate folds a transmitted (non-bootstrap) update into the
// store: the filter predicts through the suppressed gap, corrects with
// the update's values, and the correction is stored verbatim.
func (s *Store) RecordUpdate(seq int, values []float64) error {
	if s.filter == nil {
		return fmt.Errorf("synopsis: RecordUpdate before RecordBootstrap")
	}
	if seq <= s.lastSeq {
		return fmt.Errorf("synopsis: update at seq %d not after %d", seq, s.lastSeq)
	}
	if len(values) != s.mdl.MeasDim {
		return fmt.Errorf("synopsis: update has %d values, model wants %d", len(values), s.mdl.MeasDim)
	}
	for s.lastSeq < seq {
		s.filter.Predict()
		s.lastSeq++
		s.n++
	}
	if err := s.filter.Correct(mat.Vec(values...)); err != nil {
		return err
	}
	s.corrections = append(s.corrections, Point{Seq: seq, Values: cloneVals(values)})
	return nil
}

// ExtendTo marks that the stream has advanced (silently) through seq:
// suppressed steps with no correction. Replay will answer them from the
// model's prediction.
func (s *Store) ExtendTo(seq int) error {
	if s.filter == nil {
		return fmt.Errorf("synopsis: ExtendTo before RecordBootstrap")
	}
	for s.lastSeq < seq {
		s.filter.Predict()
		s.lastSeq++
		s.n++
	}
	return nil
}

// LastSeq returns the most recent sequence number covered by the store.
func (s *Store) LastSeq() int { return s.lastSeq }

// FirstSeq returns the bootstrap sequence number.
func (s *Store) FirstSeq() int { return s.bootSeq }

// At reconstructs the stored answer at one sequence number by replaying
// the model from the bootstrap. O(seq − FirstSeq) per call; use
// Reconstruct or Range for bulk access.
func (s *Store) At(seq int) ([]float64, error) {
	vals, err := s.Range(seq, seq)
	if err != nil {
		return nil, err
	}
	return vals[0].Values, nil
}

// Range reconstructs the answers for the inclusive sequence interval
// [from, to] in a single replay pass.
func (s *Store) Range(from, to int) ([]stream.Reading, error) {
	if s.n == 0 {
		return nil, fmt.Errorf("synopsis: empty store")
	}
	if from < s.bootSeq || to > s.lastSeq || from > to {
		return nil, fmt.Errorf("synopsis: range [%d, %d] outside stored [%d, %d]", from, to, s.bootSeq, s.lastSeq)
	}
	f, err := s.mdl.NewFilter(s.boot)
	if err != nil {
		return nil, err
	}
	out := make([]stream.Reading, 0, to-from+1)
	emit := func(seq int, vals []float64) {
		if seq >= from && seq <= to {
			out = append(out, stream.Reading{Seq: seq, Values: vals})
		}
	}
	emit(s.bootSeq, cloneVals(s.boot))
	// Index of the first correction at or after bootSeq+1.
	ci := sort.Search(len(s.corrections), func(i int) bool { return s.corrections[i].Seq > s.bootSeq })
	for seq := s.bootSeq + 1; seq <= to; seq++ {
		f.Predict()
		if ci < len(s.corrections) && s.corrections[ci].Seq == seq {
			if err := f.Correct(mat.Vec(s.corrections[ci].Values...)); err != nil {
				return nil, err
			}
			emit(seq, cloneVals(s.corrections[ci].Values))
			ci++
			continue
		}
		emit(seq, f.PredictedMeasurement().VecSlice())
	}
	return out, nil
}
