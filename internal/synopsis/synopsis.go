// Package synopsis implements the paper's final future-work item:
// "applications of the Kalman Filter for storing stream summaries under
// the constraint of specified reconstruction error tolerance".
//
// The idea is the storage-side twin of the DKF transmission protocol:
// instead of storing every reading, store the model plus the bootstrap
// measurement plus only the corrections a Kalman filter would have needed
// to stay within the error tolerance. Reconstruction replays the filter
// deterministically, so every reading is recovered within the tolerance
// while storage shrinks by the stream's predictability.
package synopsis

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"

	"streamkf/internal/dsms/wire"
	"streamkf/internal/kalman"
	"streamkf/internal/mat"
	"streamkf/internal/model"
	"streamkf/internal/stream"
)

// Point is one stored correction: the measurement the replaying filter
// must fold in at sequence Seq.
type Point struct {
	Seq    int
	Values []float64
}

// Store summarizes one stream under a reconstruction error tolerance.
// The zero value is not usable; construct with New.
type Store struct {
	modelName string
	mdl       model.Model
	tol       float64

	bootSeq     int
	boot        []float64
	corrections []Point
	lastSeq     int
	n           int // readings appended

	filter *kalman.Filter // append-time filter (mirrors the replay)
}

// New returns an empty store summarizing under model m with per-attribute
// reconstruction tolerance tol.
func New(m model.Model, tol float64) (*Store, error) {
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("synopsis: %w", err)
	}
	if tol <= 0 {
		return nil, fmt.Errorf("synopsis: tolerance = %v, want > 0", tol)
	}
	return &Store{modelName: m.Name, mdl: m, tol: tol}, nil
}

// Append folds one reading into the summary. Readings must arrive with
// strictly increasing, consecutive sequence numbers.
func (s *Store) Append(r stream.Reading) error {
	if len(r.Values) != s.mdl.MeasDim {
		return fmt.Errorf("synopsis: reading has %d values, model wants %d", len(r.Values), s.mdl.MeasDim)
	}
	if s.filter == nil {
		f, err := s.mdl.NewFilter(r.Values)
		if err != nil {
			return err
		}
		s.filter = f
		s.bootSeq = r.Seq
		s.boot = cloneVals(r.Values)
		s.lastSeq = r.Seq
		s.n = 1
		return nil
	}
	if r.Seq != s.lastSeq+1 {
		return fmt.Errorf("synopsis: non-consecutive seq %d after %d", r.Seq, s.lastSeq)
	}
	s.filter.Predict()
	pred := s.filter.PredictedMeasurement().VecSlice()
	if !stream.WithinPrecision(pred, r.Values, s.tol) {
		if err := s.filter.Correct(mat.Vec(r.Values...)); err != nil {
			return err
		}
		s.corrections = append(s.corrections, Point{Seq: r.Seq, Values: cloneVals(r.Values)})
	}
	s.lastSeq = r.Seq
	s.n++
	return nil
}

// AppendAll folds in a whole dataset.
func (s *Store) AppendAll(readings []stream.Reading) error {
	for _, r := range readings {
		if err := s.Append(r); err != nil {
			return err
		}
	}
	return nil
}

// Len returns the number of readings summarized.
func (s *Store) Len() int { return s.n }

// Corrections returns how many readings had to be stored verbatim
// (excluding the bootstrap).
func (s *Store) Corrections() int { return len(s.corrections) }

// Tolerance returns the reconstruction tolerance.
func (s *Store) Tolerance() float64 { return s.tol }

// CompressionRatio returns stored points (bootstrap + corrections)
// divided by total readings — lower is better.
func (s *Store) CompressionRatio() float64 {
	if s.n == 0 {
		return 0
	}
	return float64(1+len(s.corrections)) / float64(s.n)
}

// Reconstruct replays the summary into the full reading sequence. Every
// value is within Tolerance of the original per attribute.
func (s *Store) Reconstruct() ([]stream.Reading, error) {
	if s.n == 0 {
		return nil, nil
	}
	f, err := s.mdl.NewFilter(s.boot)
	if err != nil {
		return nil, err
	}
	out := make([]stream.Reading, 0, s.n)
	out = append(out, stream.Reading{Seq: s.bootSeq, Values: cloneVals(s.boot)})
	ci := 0
	for seq := s.bootSeq + 1; seq <= s.lastSeq; seq++ {
		f.Predict()
		if ci < len(s.corrections) && s.corrections[ci].Seq == seq {
			// A corrected step stored the exact measurement: emit it
			// verbatim (zero error) while the filter folds it in for the
			// following predictions. Suppressed steps emit the filter's
			// prediction, which the append-time check bounded by the
			// tolerance.
			if err := f.Correct(mat.Vec(s.corrections[ci].Values...)); err != nil {
				return nil, err
			}
			out = append(out, stream.Reading{Seq: seq, Values: cloneVals(s.corrections[ci].Values)})
			ci++
			continue
		}
		out = append(out, stream.Reading{Seq: seq, Values: f.PredictedMeasurement().VecSlice()})
	}
	return out, nil
}

// Encoding. Stores serialize in the same little-endian framed style as
// the DSMS wire protocol, self-delimited and corruption-detecting
// (model referenced by name; decoding resolves it from a
// caller-provided registry, keeping matrices off the wire exactly like
// the DSMS install handshake):
//
//	[4]byte  magic "KSYN"
//	u8       version (synVersion)
//	str      modelName   (u16 length prefix)
//	f64      tol
//	i64      bootSeq
//	u16      len(boot); f64 per value
//	i64      lastSeq
//	i64      n
//	u32      corrections; per correction: i64 seq, u16 len, f64 per value
//	u32      crc (CRC32C over everything before it)
//
// Summaries written by earlier builds used encoding/gob; Decode still
// reads those (a gob stream can never start with "KSYN").

// synMagic opens an encoded Store ("Kalman SYNopsis").
var synMagic = [4]byte{'K', 'S', 'Y', 'N'}

const synVersion = 1

var synCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// encoded is the legacy gob wire shape of a Store, kept for read-only
// decoding of pre-binary archives.
type encoded struct {
	ModelName   string
	Tol         float64
	BootSeq     int
	Boot        []float64
	Corrections []Point
	LastSeq     int
	N           int
}

// Encode serializes the summary in the framed binary format above.
func (s *Store) Encode() ([]byte, error) {
	buf := make([]byte, 0, 64+len(s.modelName)+8*len(s.boot)+16*len(s.corrections))
	buf = append(buf, synMagic[:]...)
	buf = append(buf, synVersion)
	var err error
	if buf, err = wire.AppendString(buf, s.modelName); err != nil {
		return nil, fmt.Errorf("synopsis: encode: %w", err)
	}
	buf = wire.AppendF64(buf, s.tol)
	buf = wire.AppendI64(buf, int64(s.bootSeq))
	if len(s.boot) > 0xffff {
		return nil, fmt.Errorf("synopsis: encode: bootstrap dimension %d overflows u16", len(s.boot))
	}
	buf = wire.AppendU16(buf, uint16(len(s.boot)))
	for _, v := range s.boot {
		buf = wire.AppendF64(buf, v)
	}
	buf = wire.AppendI64(buf, int64(s.lastSeq))
	buf = wire.AppendI64(buf, int64(s.n))
	buf = wire.AppendU32(buf, uint32(len(s.corrections)))
	for _, c := range s.corrections {
		buf = wire.AppendI64(buf, int64(c.Seq))
		if len(c.Values) > 0xffff {
			return nil, fmt.Errorf("synopsis: encode: correction dimension %d overflows u16", len(c.Values))
		}
		buf = wire.AppendU16(buf, uint16(len(c.Values)))
		for _, v := range c.Values {
			buf = wire.AppendF64(buf, v)
		}
	}
	buf = wire.AppendU32(buf, crc32.Checksum(buf, synCastagnoli))
	return buf, nil
}

// Decode reconstructs a summary from Encode output, resolving the model
// by name. Gob payloads from earlier builds decode via the legacy path.
func Decode(data []byte, resolve func(name string) (model.Model, error)) (*Store, error) {
	if len(data) < 4 || [4]byte(data[:4]) != synMagic {
		return decodeGob(data, resolve)
	}
	if len(data) < 9 {
		return nil, fmt.Errorf("synopsis: decode: truncated header")
	}
	if data[4] != synVersion {
		return nil, fmt.Errorf("synopsis: decode: version %d, this build reads %d", data[4], synVersion)
	}
	body := data[:len(data)-4]
	if crc32.Checksum(body, synCastagnoli) != binary.LittleEndian.Uint32(data[len(data)-4:]) {
		return nil, fmt.Errorf("synopsis: decode: crc mismatch (corrupt)")
	}
	c := wire.NewCursor(body[5:])
	e := encoded{}
	e.ModelName = string(c.Str())
	e.Tol = c.F64()
	e.BootSeq = int(c.I64())
	nb := int(c.U16())
	if !c.OK() {
		return nil, fmt.Errorf("synopsis: decode: truncated summary")
	}
	e.Boot = make([]float64, nb)
	for i := range e.Boot {
		e.Boot[i] = c.F64()
	}
	e.LastSeq = int(c.I64())
	e.N = int(c.I64())
	nc := int(c.U32())
	if !c.OK() || nc > len(data) {
		return nil, fmt.Errorf("synopsis: decode: truncated summary")
	}
	e.Corrections = make([]Point, 0, nc)
	for i := 0; i < nc; i++ {
		p := Point{Seq: int(c.I64())}
		nv := int(c.U16())
		if !c.OK() || nv > len(data) {
			return nil, fmt.Errorf("synopsis: decode: truncated correction")
		}
		p.Values = make([]float64, nv)
		for j := range p.Values {
			p.Values[j] = c.F64()
		}
		e.Corrections = append(e.Corrections, p)
	}
	if !c.Done() {
		return nil, fmt.Errorf("synopsis: decode: malformed summary")
	}
	return restore(e, resolve)
}

// decodeGob reads the legacy gob encoding (read-only fallback).
func decodeGob(data []byte, resolve func(name string) (model.Model, error)) (*Store, error) {
	var e encoded
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&e); err != nil {
		return nil, fmt.Errorf("synopsis: decode: %w", err)
	}
	return restore(e, resolve)
}

func restore(e encoded, resolve func(name string) (model.Model, error)) (*Store, error) {
	m, err := resolve(e.ModelName)
	if err != nil {
		return nil, err
	}
	s, err := New(m, e.Tol)
	if err != nil {
		return nil, err
	}
	s.bootSeq = e.BootSeq
	s.boot = e.Boot
	s.corrections = e.Corrections
	s.lastSeq = e.LastSeq
	s.n = e.N
	return s, nil
}

// SizeBytes returns the encoded summary size.
func (s *Store) SizeBytes() (int, error) {
	b, err := s.Encode()
	if err != nil {
		return 0, err
	}
	return len(b), nil
}

func cloneVals(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}
