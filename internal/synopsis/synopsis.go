// Package synopsis implements the paper's final future-work item:
// "applications of the Kalman Filter for storing stream summaries under
// the constraint of specified reconstruction error tolerance".
//
// The idea is the storage-side twin of the DKF transmission protocol:
// instead of storing every reading, store the model plus the bootstrap
// measurement plus only the corrections a Kalman filter would have needed
// to stay within the error tolerance. Reconstruction replays the filter
// deterministically, so every reading is recovered within the tolerance
// while storage shrinks by the stream's predictability.
package synopsis

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"streamkf/internal/kalman"
	"streamkf/internal/mat"
	"streamkf/internal/model"
	"streamkf/internal/stream"
)

// Point is one stored correction: the measurement the replaying filter
// must fold in at sequence Seq.
type Point struct {
	Seq    int
	Values []float64
}

// Store summarizes one stream under a reconstruction error tolerance.
// The zero value is not usable; construct with New.
type Store struct {
	modelName string
	mdl       model.Model
	tol       float64

	bootSeq     int
	boot        []float64
	corrections []Point
	lastSeq     int
	n           int // readings appended

	filter *kalman.Filter // append-time filter (mirrors the replay)
}

// New returns an empty store summarizing under model m with per-attribute
// reconstruction tolerance tol.
func New(m model.Model, tol float64) (*Store, error) {
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("synopsis: %w", err)
	}
	if tol <= 0 {
		return nil, fmt.Errorf("synopsis: tolerance = %v, want > 0", tol)
	}
	return &Store{modelName: m.Name, mdl: m, tol: tol}, nil
}

// Append folds one reading into the summary. Readings must arrive with
// strictly increasing, consecutive sequence numbers.
func (s *Store) Append(r stream.Reading) error {
	if len(r.Values) != s.mdl.MeasDim {
		return fmt.Errorf("synopsis: reading has %d values, model wants %d", len(r.Values), s.mdl.MeasDim)
	}
	if s.filter == nil {
		f, err := s.mdl.NewFilter(r.Values)
		if err != nil {
			return err
		}
		s.filter = f
		s.bootSeq = r.Seq
		s.boot = cloneVals(r.Values)
		s.lastSeq = r.Seq
		s.n = 1
		return nil
	}
	if r.Seq != s.lastSeq+1 {
		return fmt.Errorf("synopsis: non-consecutive seq %d after %d", r.Seq, s.lastSeq)
	}
	s.filter.Predict()
	pred := s.filter.PredictedMeasurement().VecSlice()
	if !stream.WithinPrecision(pred, r.Values, s.tol) {
		if err := s.filter.Correct(mat.Vec(r.Values...)); err != nil {
			return err
		}
		s.corrections = append(s.corrections, Point{Seq: r.Seq, Values: cloneVals(r.Values)})
	}
	s.lastSeq = r.Seq
	s.n++
	return nil
}

// AppendAll folds in a whole dataset.
func (s *Store) AppendAll(readings []stream.Reading) error {
	for _, r := range readings {
		if err := s.Append(r); err != nil {
			return err
		}
	}
	return nil
}

// Len returns the number of readings summarized.
func (s *Store) Len() int { return s.n }

// Corrections returns how many readings had to be stored verbatim
// (excluding the bootstrap).
func (s *Store) Corrections() int { return len(s.corrections) }

// Tolerance returns the reconstruction tolerance.
func (s *Store) Tolerance() float64 { return s.tol }

// CompressionRatio returns stored points (bootstrap + corrections)
// divided by total readings — lower is better.
func (s *Store) CompressionRatio() float64 {
	if s.n == 0 {
		return 0
	}
	return float64(1+len(s.corrections)) / float64(s.n)
}

// Reconstruct replays the summary into the full reading sequence. Every
// value is within Tolerance of the original per attribute.
func (s *Store) Reconstruct() ([]stream.Reading, error) {
	if s.n == 0 {
		return nil, nil
	}
	f, err := s.mdl.NewFilter(s.boot)
	if err != nil {
		return nil, err
	}
	out := make([]stream.Reading, 0, s.n)
	out = append(out, stream.Reading{Seq: s.bootSeq, Values: cloneVals(s.boot)})
	ci := 0
	for seq := s.bootSeq + 1; seq <= s.lastSeq; seq++ {
		f.Predict()
		if ci < len(s.corrections) && s.corrections[ci].Seq == seq {
			// A corrected step stored the exact measurement: emit it
			// verbatim (zero error) while the filter folds it in for the
			// following predictions. Suppressed steps emit the filter's
			// prediction, which the append-time check bounded by the
			// tolerance.
			if err := f.Correct(mat.Vec(s.corrections[ci].Values...)); err != nil {
				return nil, err
			}
			out = append(out, stream.Reading{Seq: seq, Values: cloneVals(s.corrections[ci].Values)})
			ci++
			continue
		}
		out = append(out, stream.Reading{Seq: seq, Values: f.PredictedMeasurement().VecSlice()})
	}
	return out, nil
}

// encoded is the gob wire shape of a Store.
type encoded struct {
	ModelName   string
	Tol         float64
	BootSeq     int
	Boot        []float64
	Corrections []Point
	LastSeq     int
	N           int
}

// Encode serializes the summary (model referenced by name; decoding
// resolves it from a caller-provided registry, keeping matrices off the
// wire exactly like the DSMS install handshake).
func (s *Store) Encode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(encoded{
		ModelName:   s.modelName,
		Tol:         s.tol,
		BootSeq:     s.bootSeq,
		Boot:        s.boot,
		Corrections: s.corrections,
		LastSeq:     s.lastSeq,
		N:           s.n,
	})
	if err != nil {
		return nil, fmt.Errorf("synopsis: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// Decode reconstructs a summary from Encode output, resolving the model
// by name.
func Decode(data []byte, resolve func(name string) (model.Model, error)) (*Store, error) {
	var e encoded
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&e); err != nil {
		return nil, fmt.Errorf("synopsis: decode: %w", err)
	}
	m, err := resolve(e.ModelName)
	if err != nil {
		return nil, err
	}
	s, err := New(m, e.Tol)
	if err != nil {
		return nil, err
	}
	s.bootSeq = e.BootSeq
	s.boot = e.Boot
	s.corrections = e.Corrections
	s.lastSeq = e.LastSeq
	s.n = e.N
	return s, nil
}

// SizeBytes returns the encoded summary size.
func (s *Store) SizeBytes() (int, error) {
	b, err := s.Encode()
	if err != nil {
		return 0, err
	}
	return len(b), nil
}

func cloneVals(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}
