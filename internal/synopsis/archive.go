package synopsis

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"streamkf/internal/model"
	"streamkf/internal/stream"
)

// archiveMagic marks a synopsis segment file, versioned.
var archiveMagic = []byte("SYN1")

// Archive persists synopsis stores on disk, one checksummed file per
// (source, segment). Segment files are immutable once written; a
// Writer rotates to a new segment after a fixed number of readings, so
// an unbounded stream archives as a sequence of bounded, independently
// reconstructable files.
type Archive struct {
	dir string
}

// OpenArchive opens (creating if needed) an archive rooted at dir.
func OpenArchive(dir string) (*Archive, error) {
	if dir == "" {
		return nil, fmt.Errorf("synopsis: empty archive directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("synopsis: creating archive: %w", err)
	}
	return &Archive{dir: dir}, nil
}

// Dir returns the archive's root directory.
func (a *Archive) Dir() string { return a.dir }

func (a *Archive) segmentPath(sourceID string, seg int) string {
	return filepath.Join(a.dir, fmt.Sprintf("%s-%06d.syn", sourceID, seg))
}

// Save writes one store as segment seg of sourceID. The file layout is
// magic ∥ crc32(payload) ∥ payload, so corruption is detected on load.
func (a *Archive) Save(sourceID string, seg int, s *Store) error {
	if sourceID == "" {
		return fmt.Errorf("synopsis: empty source id")
	}
	if seg < 0 {
		return fmt.Errorf("synopsis: negative segment %d", seg)
	}
	payload, err := s.Encode()
	if err != nil {
		return err
	}
	buf := make([]byte, 0, len(archiveMagic)+4+len(payload))
	buf = append(buf, archiveMagic...)
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	buf = append(buf, payload...)
	path := a.segmentPath(sourceID, seg)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("synopsis: writing segment: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("synopsis: publishing segment: %w", err)
	}
	return nil
}

// Load reads segment seg of sourceID, verifying the checksum and
// resolving the model by name.
func (a *Archive) Load(sourceID string, seg int, resolve func(string) (model.Model, error)) (*Store, error) {
	raw, err := os.ReadFile(a.segmentPath(sourceID, seg))
	if err != nil {
		return nil, fmt.Errorf("synopsis: reading segment: %w", err)
	}
	if len(raw) < len(archiveMagic)+4 {
		return nil, fmt.Errorf("synopsis: segment %s/%d truncated", sourceID, seg)
	}
	if string(raw[:len(archiveMagic)]) != string(archiveMagic) {
		return nil, fmt.Errorf("synopsis: segment %s/%d has bad magic", sourceID, seg)
	}
	want := binary.BigEndian.Uint32(raw[len(archiveMagic):])
	payload := raw[len(archiveMagic)+4:]
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("synopsis: segment %s/%d checksum mismatch (corrupt)", sourceID, seg)
	}
	return Decode(payload, resolve)
}

// Segments lists the stored segment numbers for sourceID, ascending.
func (a *Archive) Segments(sourceID string) ([]int, error) {
	entries, err := os.ReadDir(a.dir)
	if err != nil {
		return nil, fmt.Errorf("synopsis: listing archive: %w", err)
	}
	var out []int
	prefix := sourceID + "-"
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || filepath.Ext(name) != ".syn" {
			continue
		}
		base := name[:len(name)-len(".syn")]
		if len(base) <= len(prefix) || base[:len(prefix)] != prefix {
			continue
		}
		var seg int
		if _, err := fmt.Sscanf(base[len(prefix):], "%d", &seg); err != nil {
			continue
		}
		out = append(out, seg)
	}
	sort.Ints(out)
	return out, nil
}

// ReconstructAll loads every segment of sourceID in order and
// concatenates the reconstructed readings.
func (a *Archive) ReconstructAll(sourceID string, resolve func(string) (model.Model, error)) ([]stream.Reading, error) {
	segs, err := a.Segments(sourceID)
	if err != nil {
		return nil, err
	}
	var out []stream.Reading
	for _, seg := range segs {
		s, err := a.Load(sourceID, seg, resolve)
		if err != nil {
			return nil, err
		}
		rec, err := s.Reconstruct()
		if err != nil {
			return nil, err
		}
		out = append(out, rec...)
	}
	return out, nil
}

// Writer archives a live stream: readings append to an in-memory store
// that is flushed to disk and rotated every SegmentLen readings.
type Writer struct {
	archive  *Archive
	sourceID string
	mdl      model.Model
	tol      float64
	segLen   int

	cur    *Store
	seg    int
	closed bool
}

// NewWriter returns an archiving writer for sourceID under the given
// model and reconstruction tolerance, rotating every segLen readings.
func (a *Archive) NewWriter(sourceID string, m model.Model, tol float64, segLen int) (*Writer, error) {
	if sourceID == "" {
		return nil, fmt.Errorf("synopsis: empty source id")
	}
	if segLen < 2 {
		return nil, fmt.Errorf("synopsis: segment length %d, want >= 2", segLen)
	}
	// Validate model/tolerance eagerly via a probe store.
	if _, err := New(m, tol); err != nil {
		return nil, err
	}
	return &Writer{archive: a, sourceID: sourceID, mdl: m, tol: tol, segLen: segLen}, nil
}

// Append archives one reading, rotating segments as needed.
func (w *Writer) Append(r stream.Reading) error {
	if w.closed {
		return fmt.Errorf("synopsis: writer for %s is closed", w.sourceID)
	}
	if w.cur == nil {
		s, err := New(w.mdl, w.tol)
		if err != nil {
			return err
		}
		w.cur = s
	}
	if err := w.cur.Append(r); err != nil {
		return err
	}
	if w.cur.Len() >= w.segLen {
		return w.flush()
	}
	return nil
}

func (w *Writer) flush() error {
	if w.cur == nil || w.cur.Len() == 0 {
		return nil
	}
	if err := w.archive.Save(w.sourceID, w.seg, w.cur); err != nil {
		return err
	}
	w.seg++
	w.cur = nil
	return nil
}

// Close flushes any partial segment and seals the writer.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	return w.flush()
}

// SegmentsWritten returns how many segments have been flushed.
func (w *Writer) SegmentsWritten() int { return w.seg }
