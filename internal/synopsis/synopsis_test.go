package synopsis

import (
	"bytes"
	"encoding/gob"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"streamkf/internal/gen"
	"streamkf/internal/model"
	"streamkf/internal/stream"
)

func linearModel() model.Model { return model.Linear(1, 1, 0.05, 0.05) }

func TestNewValidation(t *testing.T) {
	if _, err := New(model.Model{}, 1); err == nil {
		t.Fatal("accepted invalid model")
	}
	if _, err := New(linearModel(), 0); err == nil {
		t.Fatal("accepted zero tolerance")
	}
}

func TestAppendValidation(t *testing.T) {
	s, err := New(linearModel(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(stream.Reading{Seq: 0, Values: []float64{1, 2}}); err == nil {
		t.Fatal("accepted wrong arity")
	}
	if err := s.Append(stream.Reading{Seq: 0, Values: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(stream.Reading{Seq: 5, Values: []float64{1}}); err == nil {
		t.Fatal("accepted seq gap")
	}
}

func TestEmptyStore(t *testing.T) {
	s, _ := New(linearModel(), 1)
	if s.Len() != 0 || s.CompressionRatio() != 0 {
		t.Fatal("empty store not empty")
	}
	got, err := s.Reconstruct()
	if err != nil || got != nil {
		t.Fatalf("Reconstruct on empty = %v, %v", got, err)
	}
}

func TestReconstructionWithinTolerance(t *testing.T) {
	data := gen.Ramp(500, 0, 2, 0.1, 7)
	const tol = 1.5
	s, err := New(linearModel(), tol)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendAll(data); err != nil {
		t.Fatal(err)
	}
	back, err := s.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(data) {
		t.Fatalf("reconstructed %d readings, want %d", len(back), len(data))
	}
	for i := range data {
		if back[i].Seq != data[i].Seq {
			t.Fatalf("seq mismatch at %d", i)
		}
		if d := math.Abs(back[i].Values[0] - data[i].Values[0]); d > tol+1e-9 {
			t.Fatalf("reconstruction error %v at seq %d exceeds tolerance %v", d, i, tol)
		}
	}
}

func TestCompressionOnPredictableStream(t *testing.T) {
	// A near-noiseless ramp under a linear model should compress hard.
	data := gen.Ramp(2000, 0, 1, 0.01, 3)
	s, _ := New(linearModel(), 1)
	if err := s.AppendAll(data); err != nil {
		t.Fatal(err)
	}
	if r := s.CompressionRatio(); r > 0.1 {
		t.Fatalf("compression ratio %v on a predictable stream, want < 0.1", r)
	}
	if s.Corrections() >= s.Len()/10 {
		t.Fatalf("%d corrections for %d readings", s.Corrections(), s.Len())
	}
}

func TestNoCompressionOnWhiteNoise(t *testing.T) {
	// Unpredictable data with a tight tolerance must store nearly
	// everything — the store must not cheat.
	rng := rand.New(rand.NewSource(2))
	vals := make([]float64, 500)
	for i := range vals {
		vals[i] = 100 * rng.NormFloat64()
	}
	s, _ := New(model.Constant(1, 0.05, 0.05), 0.5)
	if err := s.AppendAll(stream.FromValues(vals, 1)); err != nil {
		t.Fatal(err)
	}
	if r := s.CompressionRatio(); r < 0.8 {
		t.Fatalf("compression ratio %v on white noise, suspicious", r)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	data := gen.Ramp(300, 5, 1.5, 0.05, 9)
	s, _ := New(linearModel(), 1)
	if err := s.AppendAll(data); err != nil {
		t.Fatal(err)
	}
	blob, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	size, err := s.SizeBytes()
	if err != nil || size != len(blob) {
		t.Fatalf("SizeBytes = %d, %v; want %d", size, err, len(blob))
	}
	resolve := func(name string) (model.Model, error) { return linearModel(), nil }
	back, err := Decode(blob, resolve)
	if err != nil {
		t.Fatal(err)
	}
	origRec, err := s.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	backRec, err := back.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	if len(origRec) != len(backRec) {
		t.Fatalf("round-trip length %d vs %d", len(backRec), len(origRec))
	}
	for i := range origRec {
		if origRec[i].Values[0] != backRec[i].Values[0] {
			t.Fatalf("round-trip value mismatch at %d", i)
		}
	}
	// Encoded size must be far below raw storage for predictable data.
	rawBytes := len(data) * 8
	if len(blob) > rawBytes {
		t.Fatalf("encoded %d bytes >= raw %d", len(blob), rawBytes)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte("garbage"), nil); err == nil {
		t.Fatal("decoded garbage")
	}
	s, _ := New(linearModel(), 1)
	if err := s.AppendAll(gen.Ramp(10, 0, 1, 0, 1)); err != nil {
		t.Fatal(err)
	}
	blob, _ := s.Encode()
	badResolve := func(string) (model.Model, error) { return model.Model{}, errUnknown }
	if _, err := Decode(blob, badResolve); err == nil {
		t.Fatal("decoded with failing resolver")
	}
}

var errUnknown = &unknownErr{}

type unknownErr struct{}

func (*unknownErr) Error() string { return "unknown model" }

// Property: for random walks and random tolerances, reconstruction always
// honours the tolerance and the compression ratio is in (0, 1].
func TestReconstructionToleranceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tol := 0.5 + rng.Float64()*4
		data := gen.RandomWalk(300, 0, 1+rng.Float64()*2, seed)
		s, err := New(linearModel(), tol)
		if err != nil {
			return false
		}
		if err := s.AppendAll(data); err != nil {
			return false
		}
		back, err := s.Reconstruct()
		if err != nil || len(back) != len(data) {
			return false
		}
		for i := range data {
			if math.Abs(back[i].Values[0]-data[i].Values[0]) > tol+1e-9 {
				return false
			}
		}
		r := s.CompressionRatio()
		return r > 0 && r <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeGobFallback: summaries written by earlier builds used
// encoding/gob; Decode must still read them (the binary format is
// sniffed by its "KSYN" magic, which no gob stream starts with).
func TestDecodeGobFallback(t *testing.T) {
	data := gen.Ramp(120, 5, 1.5, 0.05, 9)
	s, _ := New(linearModel(), 1)
	if err := s.AppendAll(data); err != nil {
		t.Fatal(err)
	}
	legacy := encoded{
		ModelName:   s.modelName,
		Tol:         s.tol,
		BootSeq:     s.bootSeq,
		Boot:        s.boot,
		Corrections: s.corrections,
		LastSeq:     s.lastSeq,
		N:           s.n,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(legacy); err != nil {
		t.Fatal(err)
	}
	resolve := func(string) (model.Model, error) { return linearModel(), nil }
	back, err := Decode(buf.Bytes(), resolve)
	if err != nil {
		t.Fatalf("legacy gob summary no longer decodes: %v", err)
	}
	origRec, err := s.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	backRec, err := back.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	if len(origRec) != len(backRec) {
		t.Fatalf("gob round-trip length %d vs %d", len(backRec), len(origRec))
	}
	for i := range origRec {
		if origRec[i].Values[0] != backRec[i].Values[0] {
			t.Fatalf("gob round-trip value mismatch at %d", i)
		}
	}
}

// TestDecodeDetectsEveryByteFlip: the trailing CRC32C must catch any
// single corrupted byte in a binary summary.
func TestDecodeDetectsEveryByteFlip(t *testing.T) {
	s, _ := New(linearModel(), 1)
	if err := s.AppendAll(gen.Ramp(40, 0, 1.2, 0.3, 4)); err != nil {
		t.Fatal(err)
	}
	blob, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	resolve := func(string) (model.Model, error) { return linearModel(), nil }
	for i := range blob {
		bad := append([]byte(nil), blob...)
		bad[i] ^= 0x40
		if _, err := Decode(bad, resolve); err == nil {
			t.Fatalf("corruption at byte %d went undetected", i)
		}
	}
}
