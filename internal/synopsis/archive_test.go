package synopsis

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"streamkf/internal/gen"
	"streamkf/internal/model"
)

func resolveLinear(string) (model.Model, error) { return linearModel(), nil }

func TestOpenArchiveValidation(t *testing.T) {
	if _, err := OpenArchive(""); err == nil {
		t.Fatal("accepted empty dir")
	}
	a, err := OpenArchive(filepath.Join(t.TempDir(), "nested", "arch"))
	if err != nil {
		t.Fatal(err)
	}
	if a.Dir() == "" {
		t.Fatal("empty Dir()")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	a, err := OpenArchive(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, _ := New(linearModel(), 1)
	if err := s.AppendAll(gen.Ramp(100, 0, 2, 0.05, 1)); err != nil {
		t.Fatal(err)
	}
	if err := a.Save("sensor", 0, s); err != nil {
		t.Fatal(err)
	}
	back, err := a.Load("sensor", 0, resolveLinear)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != s.Len() || back.Corrections() != s.Corrections() {
		t.Fatalf("round trip mismatch: %d/%d vs %d/%d", back.Len(), back.Corrections(), s.Len(), s.Corrections())
	}
}

func TestSaveValidation(t *testing.T) {
	a, _ := OpenArchive(t.TempDir())
	s, _ := New(linearModel(), 1)
	if err := a.Save("", 0, s); err == nil {
		t.Fatal("accepted empty source id")
	}
	if err := a.Save("x", -1, s); err == nil {
		t.Fatal("accepted negative segment")
	}
}

func TestLoadDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	a, _ := OpenArchive(dir)
	s, _ := New(linearModel(), 1)
	if err := s.AppendAll(gen.Ramp(50, 0, 1, 0, 2)); err != nil {
		t.Fatal(err)
	}
	if err := a.Save("sensor", 0, s); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "sensor-000000.syn")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte.
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Load("sensor", 0, resolveLinear); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupted load err = %v, want checksum mismatch", err)
	}
	// Truncated and bad-magic files are also rejected.
	if err := os.WriteFile(path, []byte("SY"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Load("sensor", 0, resolveLinear); err == nil {
		t.Fatal("loaded truncated file")
	}
	if err := os.WriteFile(path, []byte("NOPE12345678"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Load("sensor", 0, resolveLinear); err == nil {
		t.Fatal("loaded bad-magic file")
	}
}

func TestLoadMissing(t *testing.T) {
	a, _ := OpenArchive(t.TempDir())
	if _, err := a.Load("ghost", 0, resolveLinear); err == nil {
		t.Fatal("loaded missing segment")
	}
}

func TestWriterRotationAndReconstructAll(t *testing.T) {
	a, _ := OpenArchive(t.TempDir())
	w, err := a.NewWriter("sensor", linearModel(), 1.5, 100)
	if err != nil {
		t.Fatal(err)
	}
	data := gen.Ramp(350, 0, 1.5, 0.1, 3)
	for _, r := range data {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// 350 readings at 100/segment -> 4 segments (last partial).
	if w.SegmentsWritten() != 4 {
		t.Fatalf("segments = %d, want 4", w.SegmentsWritten())
	}
	segs, err := a.Segments("sensor")
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 4 || segs[0] != 0 || segs[3] != 3 {
		t.Fatalf("Segments = %v", segs)
	}
	rec, err := a.ReconstructAll("sensor", resolveLinear)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec) != len(data) {
		t.Fatalf("reconstructed %d readings, want %d", len(rec), len(data))
	}
	for i := range data {
		if rec[i].Seq != data[i].Seq {
			t.Fatalf("seq mismatch at %d: %d vs %d", i, rec[i].Seq, data[i].Seq)
		}
		if d := math.Abs(rec[i].Values[0] - data[i].Values[0]); d > 1.5+1e-9 {
			t.Fatalf("reconstruction error %v at %d exceeds tolerance", d, i)
		}
	}
	// Closed writer refuses appends; double Close is fine.
	if err := w.Append(data[0]); err == nil {
		t.Fatal("append after Close succeeded")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestNewWriterValidation(t *testing.T) {
	a, _ := OpenArchive(t.TempDir())
	if _, err := a.NewWriter("", linearModel(), 1, 10); err == nil {
		t.Fatal("accepted empty source")
	}
	if _, err := a.NewWriter("s", linearModel(), 1, 1); err == nil {
		t.Fatal("accepted segLen 1")
	}
	if _, err := a.NewWriter("s", linearModel(), 0, 10); err == nil {
		t.Fatal("accepted zero tolerance")
	}
}

func TestSegmentsIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	a, _ := OpenArchive(dir)
	for _, name := range []string{"other-000000.syn", "sensor-notanum.syn", "sensor-000001.txt", "readme.md"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s, _ := New(linearModel(), 1)
	if err := s.AppendAll(gen.Ramp(10, 0, 1, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := a.Save("sensor", 2, s); err != nil {
		t.Fatal(err)
	}
	segs, err := a.Segments("sensor")
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0] != 2 {
		t.Fatalf("Segments = %v, want [2]", segs)
	}
}
