// Package window provides sliding-window statistics over streams: a
// ring-buffered mean/variance, O(1) amortized min/max via monotonic
// deques, and an exponentially weighted moving average. These are the
// standard DSMS building blocks for time-windowed aggregates ("average
// load over the last 24 hours"), used by the windowed query support in
// internal/dsms.
package window

import (
	"fmt"
	"math"
)

// Stats maintains mean and variance over the last N observations.
type Stats struct {
	buf   []float64
	next  int
	count int
	sum   float64
	sumSq float64
}

// NewStats returns a sliding-window statistic over n observations.
func NewStats(n int) (*Stats, error) {
	if n < 1 {
		return nil, fmt.Errorf("window: size %d, want >= 1", n)
	}
	return &Stats{buf: make([]float64, n)}, nil
}

// Observe folds in one value, evicting the oldest when full.
func (s *Stats) Observe(v float64) {
	if s.count == len(s.buf) {
		old := s.buf[s.next]
		s.sum -= old
		s.sumSq -= old * old
	} else {
		s.count++
	}
	s.buf[s.next] = v
	s.sum += v
	s.sumSq += v * v
	s.next = (s.next + 1) % len(s.buf)
}

// Count returns the number of observations currently in the window.
func (s *Stats) Count() int { return s.count }

// Full reports whether the window holds its full capacity.
func (s *Stats) Full() bool { return s.count == len(s.buf) }

// Mean returns the window mean (0 when empty).
func (s *Stats) Mean() float64 {
	if s.count == 0 {
		return 0
	}
	return s.sum / float64(s.count)
}

// Variance returns the window's population variance (0 when empty).
// Computed from running sums; clamped at zero against roundoff.
func (s *Stats) Variance() float64 {
	if s.count == 0 {
		return 0
	}
	m := s.Mean()
	v := s.sumSq/float64(s.count) - m*m
	if v < 0 {
		v = 0
	}
	return v
}

// StdDev returns the window's population standard deviation.
func (s *Stats) StdDev() float64 { return math.Sqrt(s.Variance()) }

// MinMax maintains the minimum and maximum over the last N observations
// in O(1) amortized time using a pair of monotonic deques.
type MinMax struct {
	n     int
	seq   int
	minDQ []entry // increasing values
	maxDQ []entry // decreasing values
	count int
}

type entry struct {
	seq int
	v   float64
}

// NewMinMax returns a sliding-window extremum tracker over n
// observations.
func NewMinMax(n int) (*MinMax, error) {
	if n < 1 {
		return nil, fmt.Errorf("window: size %d, want >= 1", n)
	}
	return &MinMax{n: n}, nil
}

// Observe folds in one value.
func (m *MinMax) Observe(v float64) {
	// Evict entries that fell out of the window.
	cutoff := m.seq - m.n
	for len(m.minDQ) > 0 && m.minDQ[0].seq <= cutoff {
		m.minDQ = m.minDQ[1:]
	}
	for len(m.maxDQ) > 0 && m.maxDQ[0].seq <= cutoff {
		m.maxDQ = m.maxDQ[1:]
	}
	// Maintain monotonicity.
	for len(m.minDQ) > 0 && m.minDQ[len(m.minDQ)-1].v >= v {
		m.minDQ = m.minDQ[:len(m.minDQ)-1]
	}
	for len(m.maxDQ) > 0 && m.maxDQ[len(m.maxDQ)-1].v <= v {
		m.maxDQ = m.maxDQ[:len(m.maxDQ)-1]
	}
	m.minDQ = append(m.minDQ, entry{m.seq, v})
	m.maxDQ = append(m.maxDQ, entry{m.seq, v})
	m.seq++
	if m.count < m.n {
		m.count++
	}
}

// Count returns the number of observations currently in the window.
func (m *MinMax) Count() int { return m.count }

// Min returns the window minimum; ok=false when empty.
func (m *MinMax) Min() (float64, bool) {
	if len(m.minDQ) == 0 {
		return 0, false
	}
	return m.minDQ[0].v, true
}

// Max returns the window maximum; ok=false when empty.
func (m *MinMax) Max() (float64, bool) {
	if len(m.maxDQ) == 0 {
		return 0, false
	}
	return m.maxDQ[0].v, true
}

// EWMA is an exponentially weighted moving average with smoothing factor
// alpha in (0, 1]: larger alpha weighs recent observations more.
type EWMA struct {
	alpha  float64
	value  float64
	primed bool
}

// NewEWMA returns an EWMA with the given smoothing factor.
func NewEWMA(alpha float64) (*EWMA, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("window: alpha %v, want (0, 1]", alpha)
	}
	return &EWMA{alpha: alpha}, nil
}

// Observe folds in one value and returns the updated average.
func (e *EWMA) Observe(v float64) float64 {
	if !e.primed {
		e.value = v
		e.primed = true
		return v
	}
	e.value = e.alpha*v + (1-e.alpha)*e.value
	return e.value
}

// Value returns the current average (0 before any observation).
func (e *EWMA) Value() float64 { return e.value }

// Apply computes a windowed aggregate over a complete slice: a
// convenience for batch evaluation over history replays.
func Apply(fn string, vals []float64) (float64, error) {
	if len(vals) == 0 {
		return 0, fmt.Errorf("window: empty input")
	}
	switch fn {
	case "avg":
		var s float64
		for _, v := range vals {
			s += v
		}
		return s / float64(len(vals)), nil
	case "sum":
		var s float64
		for _, v := range vals {
			s += v
		}
		return s, nil
	case "min":
		m := vals[0]
		for _, v := range vals {
			if v < m {
				m = v
			}
		}
		return m, nil
	case "max":
		m := vals[0]
		for _, v := range vals {
			if v > m {
				m = v
			}
		}
		return m, nil
	default:
		return 0, fmt.Errorf("window: unknown aggregate %q", fn)
	}
}
