package window

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := NewStats(0); err == nil {
		t.Fatal("NewStats accepted 0")
	}
	if _, err := NewMinMax(0); err == nil {
		t.Fatal("NewMinMax accepted 0")
	}
	if _, err := NewEWMA(0); err == nil {
		t.Fatal("NewEWMA accepted 0")
	}
	if _, err := NewEWMA(1.5); err == nil {
		t.Fatal("NewEWMA accepted > 1")
	}
}

func TestStatsKnown(t *testing.T) {
	s, _ := NewStats(3)
	if s.Mean() != 0 || s.Variance() != 0 || s.Count() != 0 {
		t.Fatal("empty stats not zero")
	}
	s.Observe(1)
	s.Observe(2)
	s.Observe(3)
	if !s.Full() || s.Mean() != 2 {
		t.Fatalf("mean = %v, full = %v", s.Mean(), s.Full())
	}
	// Population variance of {1,2,3} is 2/3.
	if math.Abs(s.Variance()-2.0/3) > 1e-12 {
		t.Fatalf("variance = %v", s.Variance())
	}
	s.Observe(10) // evicts 1 -> {2,3,10}
	if s.Mean() != 5 {
		t.Fatalf("rolled mean = %v, want 5", s.Mean())
	}
	if s.StdDev() <= 0 {
		t.Fatal("stddev not positive")
	}
}

func TestMinMaxKnown(t *testing.T) {
	m, _ := NewMinMax(3)
	if _, ok := m.Min(); ok {
		t.Fatal("min on empty")
	}
	for _, v := range []float64{5, 3, 8} {
		m.Observe(v)
	}
	if mn, _ := m.Min(); mn != 3 {
		t.Fatalf("min = %v", mn)
	}
	if mx, _ := m.Max(); mx != 8 {
		t.Fatalf("max = %v", mx)
	}
	m.Observe(1) // window {3,8,1}
	if mn, _ := m.Min(); mn != 1 {
		t.Fatalf("min after evict = %v", mn)
	}
	m.Observe(2) // {8,1,2}
	m.Observe(4) // {1,2,4}
	if mx, _ := m.Max(); mx != 4 {
		t.Fatalf("max after 8 left = %v", mx)
	}
	if m.Count() != 3 {
		t.Fatalf("count = %d", m.Count())
	}
}

func TestEWMA(t *testing.T) {
	e, _ := NewEWMA(0.5)
	if e.Value() != 0 {
		t.Fatal("unprimed value")
	}
	if got := e.Observe(10); got != 10 {
		t.Fatalf("first observation = %v", got)
	}
	if got := e.Observe(0); got != 5 {
		t.Fatalf("second = %v, want 5", got)
	}
}

func TestApply(t *testing.T) {
	vals := []float64{3, -1, 7}
	cases := map[string]float64{"avg": 3, "sum": 9, "min": -1, "max": 7}
	for fn, want := range cases {
		got, err := Apply(fn, vals)
		if err != nil || got != want {
			t.Errorf("Apply(%s) = %v, %v; want %v", fn, got, err, want)
		}
	}
	if _, err := Apply("median", vals); err == nil {
		t.Fatal("unknown aggregate accepted")
	}
	if _, err := Apply("avg", nil); err == nil {
		t.Fatal("empty input accepted")
	}
}

// Property: windowed Stats and MinMax agree with naive recomputation
// over the trailing window at every step.
func TestWindowAgainstNaiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		s, err := NewStats(n)
		if err != nil {
			return false
		}
		mm, err := NewMinMax(n)
		if err != nil {
			return false
		}
		var hist []float64
		for step := 0; step < 200; step++ {
			v := rng.NormFloat64() * 100
			s.Observe(v)
			mm.Observe(v)
			hist = append(hist, v)
			lo := len(hist) - n
			if lo < 0 {
				lo = 0
			}
			win := hist[lo:]
			var sum float64
			mn, mx := win[0], win[0]
			for _, w := range win {
				sum += w
				if w < mn {
					mn = w
				}
				if w > mx {
					mx = w
				}
			}
			mean := sum / float64(len(win))
			if math.Abs(s.Mean()-mean) > 1e-6 {
				return false
			}
			gmn, ok1 := mm.Min()
			gmx, ok2 := mm.Max()
			if !ok1 || !ok2 || gmn != mn || gmx != mx {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
