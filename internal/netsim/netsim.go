// Package netsim models the wireless-sensor energy economics that
// motivate the paper's bandwidth focus (§1): "the ratio of energy spent
// in sending one bit over networks to that spent in executing one
// instruction is between 220 to 2,900 on various architectures". It
// provides a simple per-node energy account replacing the physical power
// measurements of the original testbed.
package netsim

import (
	"fmt"
)

// EnergyModel prices a sensor node's two cost centres in abstract energy
// units: executing instructions and radioing bits.
type EnergyModel struct {
	// PerInstruction is the energy cost of one CPU instruction.
	PerInstruction float64
	// PerBit is the energy cost of transmitting one bit. The paper cites
	// ratios of 220–2900 over PerInstruction.
	PerBit float64
}

// DefaultEnergyModel uses the midpoint of the paper's cited ratio range:
// 1 unit per instruction, 1500 per transmitted bit.
func DefaultEnergyModel() EnergyModel {
	return EnergyModel{PerInstruction: 1, PerBit: 1500}
}

// Validate checks the model.
func (e EnergyModel) Validate() error {
	if e.PerInstruction <= 0 || e.PerBit <= 0 {
		return fmt.Errorf("netsim: energy costs must be positive, got instr=%v bit=%v", e.PerInstruction, e.PerBit)
	}
	return nil
}

// Ratio returns PerBit / PerInstruction.
func (e EnergyModel) Ratio() float64 { return e.PerBit / e.PerInstruction }

// Account tracks a node's cumulative energy expenditure against an
// optional battery budget.
type Account struct {
	model    EnergyModel
	battery  float64 // 0 means unlimited
	spent    float64
	bytesTx  int
	instrRun int64
}

// NewAccount returns an account under the given model. battery <= 0
// means unlimited.
func NewAccount(model EnergyModel, battery float64) (*Account, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	return &Account{model: model, battery: battery}, nil
}

// ChargeTransmit records transmitting n bytes and returns the energy
// spent on it.
func (a *Account) ChargeTransmit(n int) float64 {
	e := float64(n*8) * a.model.PerBit
	a.spent += e
	a.bytesTx += n
	return e
}

// ChargeCompute records executing n instructions and returns the energy
// spent on it.
func (a *Account) ChargeCompute(n int64) float64 {
	e := float64(n) * a.model.PerInstruction
	a.spent += e
	a.instrRun += n
	return e
}

// Spent returns total energy expended.
func (a *Account) Spent() float64 { return a.spent }

// BytesTransmitted returns the cumulative transmitted byte count.
func (a *Account) BytesTransmitted() int { return a.bytesTx }

// InstructionsRun returns the cumulative instruction count.
func (a *Account) InstructionsRun() int64 { return a.instrRun }

// Remaining returns the remaining battery (and ok=false if unlimited).
func (a *Account) Remaining() (float64, bool) {
	if a.battery <= 0 {
		return 0, false
	}
	r := a.battery - a.spent
	if r < 0 {
		r = 0
	}
	return r, true
}

// Depleted reports whether a finite battery has been exhausted.
func (a *Account) Depleted() bool {
	if a.battery <= 0 {
		return false
	}
	return a.spent >= a.battery
}

// KFStepInstructions estimates the instruction cost of one Kalman filter
// predict–correct cycle for an n-state, m-measurement model. Dominated by
// the n×n matrix multiplies in the covariance update (~2n³) plus the m×m
// inversion (~m³); the constant reflects multiply-accumulate plus load
// and store traffic per flop.
func KFStepInstructions(n, m int) int64 {
	flops := 4*int64(n)*int64(n)*int64(n) + 2*int64(m)*int64(m)*int64(m) + 8*int64(n)*int64(m)
	const instrPerFlop = 4
	return flops * instrPerFlop
}

// Comparison quantifies the paper's core energy argument for a workload:
// given total readings, updates actually sent, bytes per update and the
// per-step filter compute cost, it reports energy under DKF versus under
// ship-everything.
type Comparison struct {
	DKFEnergy     float64
	ShipAllEnergy float64
}

// Savings returns 1 - DKF/ShipAll, the fraction of energy saved.
func (c Comparison) Savings() float64 {
	if c.ShipAllEnergy == 0 {
		return 0
	}
	return 1 - c.DKFEnergy/c.ShipAllEnergy
}

// Compare computes the energy comparison for a run.
func Compare(model EnergyModel, readings, updates, bytesPerUpdate int, kfInstr int64) Comparison {
	perBit := model.PerBit
	perInstr := model.PerInstruction
	dkf := float64(updates*bytesPerUpdate*8)*perBit + float64(readings)*float64(kfInstr)*perInstr
	ship := float64(readings*bytesPerUpdate*8) * perBit
	return Comparison{DKFEnergy: dkf, ShipAllEnergy: ship}
}

// Link deterministically models the misbehavior of a datagram path —
// the wireless-link reality behind the energy numbers above: packets
// duplicate, reorder and vanish. All knobs are modular positions in the
// send sequence, so a schedule is reproducible without a seed.
type Link struct {
	// DropEvery drops every k-th datagram (1-based position). 0
	// disables loss.
	DropEvery int
	// DupEvery delivers every k-th datagram twice, the duplicate
	// arriving immediately after the original. 0 disables duplication.
	DupEvery int
	// SwapEvery swaps every k-th datagram with its successor —
	// adjacent reordering, the common form on multipath links. 0
	// disables reordering.
	SwapEvery int
}

// Schedule returns the delivery order for n sent datagrams as indices
// into the send sequence: reordering permutes, duplication repeats an
// index, loss omits one. An empty Link returns the identity schedule.
func (l Link) Schedule(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if l.SwapEvery > 0 {
		for i := l.SwapEvery - 1; i+1 < n; i += l.SwapEvery {
			order[i], order[i+1] = order[i+1], order[i]
		}
	}
	deliver := make([]int, 0, n)
	for pos, idx := range order {
		if l.DropEvery > 0 && (pos+1)%l.DropEvery == 0 {
			continue
		}
		deliver = append(deliver, idx)
		if l.DupEvery > 0 && (pos+1)%l.DupEvery == 0 {
			deliver = append(deliver, idx)
		}
	}
	return deliver
}
