package netsim

import "testing"

func fleet(updateRate float64, instr int64) FleetConfig {
	return FleetConfig{
		Nodes:          20,
		Battery:        1e9,
		Model:          DefaultEnergyModel(),
		BytesPerUpdate: 28,
		InstrPerRound:  instr,
		UpdateRate:     updateRate,
		Seed:           7,
	}
}

func TestFleetConfigValidation(t *testing.T) {
	good := fleet(0.1, 1000)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*FleetConfig){
		func(c *FleetConfig) { c.Nodes = 0 },
		func(c *FleetConfig) { c.Battery = 0 },
		func(c *FleetConfig) { c.Model = EnergyModel{} },
		func(c *FleetConfig) { c.BytesPerUpdate = 0 },
		func(c *FleetConfig) { c.InstrPerRound = -1 },
		func(c *FleetConfig) { c.UpdateRate = 1.5 },
		func(c *FleetConfig) { c.UpdateRate = -0.1 },
	}
	for i, mutate := range mutations {
		c := fleet(0.1, 1000)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := SimulateLifetime(good, 0); err == nil {
		t.Fatal("accepted maxRounds 0")
	}
	bad := good
	bad.Nodes = 0
	if _, err := SimulateLifetime(bad, 10); err == nil {
		t.Fatal("simulated invalid config")
	}
}

func TestSuppressionExtendsLifetime(t *testing.T) {
	// DKF at 8% updates (plus per-round filter compute) must far outlive
	// ship-everything when bits cost 1500x instructions.
	const horizon = 2_000_000
	dkf, err := SimulateLifetime(fleet(0.08, KFStepInstructions(4, 2)), horizon)
	if err != nil {
		t.Fatal(err)
	}
	ship, err := SimulateLifetime(fleet(1.0, 0), horizon)
	if err != nil {
		t.Fatal(err)
	}
	if ship.FirstDeath == 0 {
		t.Fatal("ship-all fleet never died; battery too large for the test")
	}
	if dkf.FirstDeath == 0 {
		t.Fatalf("DKF fleet died within %d rounds? first death %d", horizon, dkf.FirstDeath)
	}
	ratio := float64(dkf.FirstDeath) / float64(ship.FirstDeath)
	if ratio < 4 {
		t.Fatalf("lifetime ratio %.1f, want >= 4 at 12.5x fewer transmissions", ratio)
	}
	if dkf.HalfDead <= ship.HalfDead {
		t.Fatalf("DKF half-dead at %d, ship at %d", dkf.HalfDead, ship.HalfDead)
	}
}

func TestLifetimeAccountingConsistency(t *testing.T) {
	res, err := SimulateLifetime(fleet(1.0, 0), 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.AllDead == 0 || res.Survivors != 0 {
		t.Fatalf("deterministic full-rate fleet should fully die: %+v", res)
	}
	if !(res.FirstDeath <= res.HalfDead && res.HalfDead <= res.AllDead) {
		t.Fatalf("death milestones out of order: %+v", res)
	}
}

func TestLifetimeSurvivorsAtHorizon(t *testing.T) {
	// Tiny horizon: nobody dies, survivors = fleet size.
	res, err := SimulateLifetime(fleet(0.05, 100), 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Survivors != 20 || res.FirstDeath != 0 {
		t.Fatalf("short-horizon result %+v", res)
	}
}
