package netsim

import (
	"math"
	"testing"
)

func TestEnergyModelValidate(t *testing.T) {
	if err := DefaultEnergyModel().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (EnergyModel{PerInstruction: 0, PerBit: 1}).Validate(); err == nil {
		t.Fatal("accepted zero instruction cost")
	}
	if err := (EnergyModel{PerInstruction: 1, PerBit: 0}).Validate(); err == nil {
		t.Fatal("accepted zero bit cost")
	}
}

func TestRatioInPaperRange(t *testing.T) {
	r := DefaultEnergyModel().Ratio()
	if r < 220 || r > 2900 {
		t.Fatalf("default ratio %v outside the paper's cited 220–2900 range", r)
	}
}

func TestAccountCharges(t *testing.T) {
	a, err := NewAccount(EnergyModel{PerInstruction: 1, PerBit: 10}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e := a.ChargeTransmit(2); e != 2*8*10 {
		t.Fatalf("transmit energy = %v, want 160", e)
	}
	if e := a.ChargeCompute(5); e != 5 {
		t.Fatalf("compute energy = %v, want 5", e)
	}
	if a.Spent() != 165 || a.BytesTransmitted() != 2 || a.InstructionsRun() != 5 {
		t.Fatalf("account state: spent=%v bytes=%d instr=%d", a.Spent(), a.BytesTransmitted(), a.InstructionsRun())
	}
	if _, ok := a.Remaining(); ok {
		t.Fatal("unlimited battery reported a remaining value")
	}
	if a.Depleted() {
		t.Fatal("unlimited battery depleted")
	}
}

func TestAccountBattery(t *testing.T) {
	a, err := NewAccount(EnergyModel{PerInstruction: 1, PerBit: 1}, 100)
	if err != nil {
		t.Fatal(err)
	}
	a.ChargeTransmit(10) // 80 units
	if rem, ok := a.Remaining(); !ok || rem != 20 {
		t.Fatalf("remaining = %v %v, want 20 true", rem, ok)
	}
	a.ChargeCompute(50)
	if !a.Depleted() {
		t.Fatal("battery not depleted after overspend")
	}
	if rem, _ := a.Remaining(); rem != 0 {
		t.Fatalf("remaining = %v, want clamped to 0", rem)
	}
}

func TestNewAccountRejectsBadModel(t *testing.T) {
	if _, err := NewAccount(EnergyModel{}, 0); err == nil {
		t.Fatal("accepted invalid model")
	}
}

func TestKFStepInstructionsScales(t *testing.T) {
	small := KFStepInstructions(2, 1)
	big := KFStepInstructions(4, 2)
	if small <= 0 || big <= small {
		t.Fatalf("instruction model not increasing: %d vs %d", small, big)
	}
}

func TestCompareSavings(t *testing.T) {
	// The paper's argument: with transmit costs 1500x compute, sending
	// 10% of readings must save most of the energy despite per-reading
	// filter compute.
	model := DefaultEnergyModel()
	c := Compare(model, 1000, 100, 32, KFStepInstructions(4, 2))
	if c.DKFEnergy >= c.ShipAllEnergy {
		t.Fatalf("DKF energy %v not below ship-all %v", c.DKFEnergy, c.ShipAllEnergy)
	}
	if s := c.Savings(); s < 0.5 {
		t.Fatalf("savings = %v, want > 0.5 at 10%% update rate", s)
	}
}

func TestCompareComputeDominatedRegime(t *testing.T) {
	// If transmitting is as cheap as computing, heavy filtering cannot
	// save energy — the comparison must reflect that honestly.
	model := EnergyModel{PerInstruction: 1, PerBit: 1e-9}
	c := Compare(model, 1000, 100, 32, KFStepInstructions(4, 2))
	if c.Savings() > 0 {
		t.Fatalf("savings = %v in compute-dominated regime, want <= 0", c.Savings())
	}
}

func TestSavingsZeroDenominator(t *testing.T) {
	var c Comparison
	if s := c.Savings(); s != 0 || math.IsNaN(s) {
		t.Fatalf("Savings on zero ship-all = %v", s)
	}
}
