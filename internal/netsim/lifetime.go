package netsim

import (
	"fmt"
	"math/rand"
)

// FleetConfig describes a fleet of identical battery-powered sensor
// nodes running some reporting scheme.
type FleetConfig struct {
	// Nodes is the fleet size.
	Nodes int
	// Battery is each node's energy budget.
	Battery float64
	// Model prices transmission and computation.
	Model EnergyModel
	// BytesPerUpdate is the wire size of one update.
	BytesPerUpdate int
	// InstrPerRound is the per-round computation each node performs
	// (e.g. one Kalman predict–correct cycle; 0 for dumb shippers).
	InstrPerRound int64
	// UpdateRate is the per-round probability that a node transmits —
	// the scheme's %updates/100. 1.0 models ship-everything.
	UpdateRate float64
	// Seed makes the simulation reproducible.
	Seed int64
}

// Validate checks the fleet configuration.
func (c FleetConfig) Validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("netsim: fleet size %d, want > 0", c.Nodes)
	}
	if c.Battery <= 0 {
		return fmt.Errorf("netsim: battery %v, want > 0", c.Battery)
	}
	if err := c.Model.Validate(); err != nil {
		return err
	}
	if c.BytesPerUpdate <= 0 {
		return fmt.Errorf("netsim: bytes per update %d, want > 0", c.BytesPerUpdate)
	}
	if c.InstrPerRound < 0 {
		return fmt.Errorf("netsim: instructions per round %d, want >= 0", c.InstrPerRound)
	}
	if c.UpdateRate < 0 || c.UpdateRate > 1 {
		return fmt.Errorf("netsim: update rate %v, want [0, 1]", c.UpdateRate)
	}
	return nil
}

// LifetimeResult summarizes a fleet simulation.
type LifetimeResult struct {
	// FirstDeath is the round at which the first node died (0 if none
	// died within the horizon).
	FirstDeath int
	// HalfDead is the round at which half the fleet had died.
	HalfDead int
	// AllDead is the round at which the whole fleet had died.
	AllDead int
	// Survivors is how many nodes were still alive at the horizon.
	Survivors int
	// Rounds is the simulated horizon.
	Rounds int
}

// SimulateLifetime runs the fleet for at most maxRounds sensing rounds.
// Each round every live node pays its compute cost and, with probability
// UpdateRate, one update transmission. This reproduces the paper's §1
// argument as a population statistic: halving the update rate roughly
// doubles network lifetime when transmission dominates the budget.
func SimulateLifetime(cfg FleetConfig, maxRounds int) (LifetimeResult, error) {
	if err := cfg.Validate(); err != nil {
		return LifetimeResult{}, err
	}
	if maxRounds <= 0 {
		return LifetimeResult{}, fmt.Errorf("netsim: maxRounds %d, want > 0", maxRounds)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	nodes := make([]*Account, cfg.Nodes)
	for i := range nodes {
		acct, err := NewAccount(cfg.Model, cfg.Battery)
		if err != nil {
			return LifetimeResult{}, err
		}
		nodes[i] = acct
	}

	res := LifetimeResult{Rounds: maxRounds}
	dead := 0
	for round := 1; round <= maxRounds; round++ {
		for _, n := range nodes {
			if n.Depleted() {
				continue
			}
			n.ChargeCompute(cfg.InstrPerRound)
			if !n.Depleted() && rng.Float64() < cfg.UpdateRate {
				n.ChargeTransmit(cfg.BytesPerUpdate)
			}
			if n.Depleted() {
				dead++
				if res.FirstDeath == 0 {
					res.FirstDeath = round
				}
				if res.HalfDead == 0 && dead*2 >= cfg.Nodes {
					res.HalfDead = round
				}
				if dead == cfg.Nodes {
					res.AllDead = round
				}
			}
		}
		if dead == cfg.Nodes {
			break
		}
	}
	res.Survivors = cfg.Nodes - dead
	return res, nil
}
