// Package metrics provides the result containers and reporting used by
// the experiment harness: parameter sweeps with named series (one per
// figure curve), ASCII table rendering for terminal output, and CSV
// export for plotting.
package metrics

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sweep holds one experiment's results: a swept parameter (the figure's
// x-axis) and one or more named series (the curves).
type Sweep struct {
	// Name identifies the experiment (e.g. "fig4").
	Name string
	// Title is the human-readable caption.
	Title string
	// ParamName labels the x-axis (e.g. "precision width").
	ParamName string
	// ValueName labels the y-axis (e.g. "% updates").
	ValueName string
	// Params are the x-axis values, in presentation order.
	Params []float64
	// Series maps curve name to y values, index-aligned with Params.
	Series map[string][]float64
	// Order lists series names in presentation order; series not listed
	// are appended alphabetically.
	Order []string
}

// NewSweep constructs an empty sweep over the given parameter values.
func NewSweep(name, title, paramName, valueName string, params []float64) *Sweep {
	p := make([]float64, len(params))
	copy(p, params)
	return &Sweep{
		Name:      name,
		Title:     title,
		ParamName: paramName,
		ValueName: valueName,
		Params:    p,
		Series:    make(map[string][]float64),
	}
}

// Add appends a y value to the named series, creating it on first use and
// registering presentation order.
func (s *Sweep) Add(series string, v float64) {
	if _, ok := s.Series[series]; !ok {
		s.Order = append(s.Order, series)
	}
	s.Series[series] = append(s.Series[series], v)
}

// Validate checks that every series has exactly one value per parameter.
func (s *Sweep) Validate() error {
	for name, vals := range s.Series {
		if len(vals) != len(s.Params) {
			return fmt.Errorf("metrics: sweep %s series %s has %d values for %d params", s.Name, name, len(vals), len(s.Params))
		}
	}
	return nil
}

// SeriesNames returns the series in presentation order.
func (s *Sweep) SeriesNames() []string {
	seen := make(map[string]bool, len(s.Order))
	out := make([]string, 0, len(s.Series))
	for _, n := range s.Order {
		if _, ok := s.Series[n]; ok && !seen[n] {
			out = append(out, n)
			seen[n] = true
		}
	}
	var rest []string
	for n := range s.Series {
		if !seen[n] {
			rest = append(rest, n)
		}
	}
	sort.Strings(rest)
	return append(out, rest...)
}

// Table renders the sweep as an aligned ASCII table.
func (s *Sweep) Table() string {
	names := s.SeriesNames()
	header := append([]string{s.ParamName}, names...)
	rows := [][]string{header}
	for i, p := range s.Params {
		row := []string{formatFloat(p)}
		for _, n := range names {
			vals := s.Series[n]
			if i < len(vals) {
				row = append(row, formatFloat(vals[i]))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s (%s)\n", s.Name, s.Title, s.ValueName)
	b.WriteString(renderTable(rows))
	return b.String()
}

// WriteCSV exports the sweep with a header row: param,series1,series2,...
func (s *Sweep) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	names := s.SeriesNames()
	if err := cw.Write(append([]string{s.ParamName}, names...)); err != nil {
		return err
	}
	for i, p := range s.Params {
		row := []string{strconv.FormatFloat(p, 'g', -1, 64)}
		for _, n := range names {
			vals := s.Series[n]
			if i < len(vals) {
				row = append(row, strconv.FormatFloat(vals[i], 'g', -1, 64))
			} else {
				row = append(row, "")
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Summary holds scalar key/value results for experiments that are not
// parameter sweeps (dataset statistics, single comparisons).
type Summary struct {
	Name  string
	Title string
	rows  [][2]string
}

// NewSummary constructs an empty summary.
func NewSummary(name, title string) *Summary {
	return &Summary{Name: name, Title: title}
}

// Add appends a key/value row.
func (s *Summary) Add(key string, value any) {
	var v string
	switch x := value.(type) {
	case float64:
		v = formatFloat(x)
	case string:
		v = x
	default:
		v = fmt.Sprint(x)
	}
	s.rows = append(s.rows, [2]string{key, v})
}

// Rows returns the accumulated rows.
func (s *Summary) Rows() [][2]string {
	out := make([][2]string, len(s.rows))
	copy(out, s.rows)
	return out
}

// Table renders the summary as an aligned ASCII table.
func (s *Summary) Table() string {
	rows := [][]string{{"metric", "value"}}
	for _, r := range s.rows {
		rows = append(rows, []string{r[0], r[1]})
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", s.Name, s.Title)
	b.WriteString(renderTable(rows))
	return b.String()
}

func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e9:
		return strconv.FormatFloat(v, 'f', 0, 64)
	case math.Abs(v) >= 0.01 && math.Abs(v) < 1e6:
		return strconv.FormatFloat(v, 'f', 3, 64)
	default:
		return strconv.FormatFloat(v, 'g', 4, 64)
	}
}

func renderTable(rows [][]string) string {
	if len(rows) == 0 {
		return ""
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	for ri, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
		if ri == 0 {
			for i, w := range widths {
				if i > 0 {
					b.WriteString("  ")
				}
				b.WriteString(strings.Repeat("-", w))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
