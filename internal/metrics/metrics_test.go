package metrics

import (
	"bytes"
	"strings"
	"testing"
)

func TestSweepAddAndValidate(t *testing.T) {
	s := NewSweep("fig4", "updates vs delta", "delta", "% updates", []float64{1, 2})
	s.Add("caching", 90)
	s.Add("linear", 20)
	s.Add("caching", 70)
	s.Add("linear", 10)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	s.Add("caching", 55)
	if err := s.Validate(); err == nil {
		t.Fatal("Validate accepted ragged series")
	}
}

func TestSweepSeriesOrder(t *testing.T) {
	s := NewSweep("x", "t", "p", "v", []float64{1})
	s.Add("zeta", 1)
	s.Add("alpha", 2)
	s.Series["manual"] = []float64{3}
	names := s.SeriesNames()
	if names[0] != "zeta" || names[1] != "alpha" || names[2] != "manual" {
		t.Fatalf("order = %v", names)
	}
}

func TestSweepParamsCopied(t *testing.T) {
	params := []float64{1, 2}
	s := NewSweep("x", "t", "p", "v", params)
	params[0] = 99
	if s.Params[0] != 1 {
		t.Fatal("NewSweep aliases params")
	}
}

func TestSweepTable(t *testing.T) {
	s := NewSweep("fig4", "updates", "delta", "%", []float64{1, 2})
	s.Add("caching", 90.1234)
	s.Add("caching", 70)
	tbl := s.Table()
	if !strings.Contains(tbl, "fig4") || !strings.Contains(tbl, "caching") || !strings.Contains(tbl, "90.123") {
		t.Fatalf("table missing content:\n%s", tbl)
	}
}

func TestSweepTableRagged(t *testing.T) {
	s := NewSweep("x", "t", "p", "v", []float64{1, 2})
	s.Add("a", 5)
	tbl := s.Table()
	if !strings.Contains(tbl, "-") {
		t.Fatalf("ragged cell not dashed:\n%s", tbl)
	}
}

func TestSweepCSV(t *testing.T) {
	s := NewSweep("fig4", "updates", "delta", "%", []float64{1, 2})
	s.Add("a", 10)
	s.Add("a", 20)
	s.Add("b", 30)
	s.Add("b", 40)
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "delta,a,b\n1,10,30\n2,20,40\n"
	if buf.String() != want {
		t.Fatalf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestSummary(t *testing.T) {
	s := NewSummary("fig3", "dataset stats")
	s.Add("points", 4000)
	s.Add("max speed", 499.5)
	s.Add("note", "synthetic")
	if len(s.Rows()) != 3 {
		t.Fatalf("rows = %d", len(s.Rows()))
	}
	tbl := s.Table()
	for _, want := range []string{"fig3", "points", "4000", "499.500", "synthetic"} {
		if !strings.Contains(tbl, want) {
			t.Fatalf("summary table missing %q:\n%s", want, tbl)
		}
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		5:       "5",
		1.23456: "1.235",
		1e-9:    "1e-09",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}
