package mat

import (
	"math"
	"testing"
)

func seqMatrix(r, c int, start float64) *Matrix {
	m := New(r, c)
	for i := range m.data {
		m.data[i] = start + float64(i)*0.7
	}
	return m
}

func TestIntoKernelsMatchAllocatingAPI(t *testing.T) {
	a := seqMatrix(3, 4, 1)
	b := seqMatrix(4, 2, -2)
	c := seqMatrix(2, 5, 0.3)

	got := MulInto(New(3, 2), a, b)
	if !Equal(got, Mul(a, b)) {
		t.Fatalf("MulInto = %v, want %v", got, Mul(a, b))
	}

	got = Mul3Into(New(3, 5), a, b, c, nil)
	if !Equal(got, Mul3(a, b, c)) {
		t.Fatalf("Mul3Into = %v, want %v", got, Mul3(a, b, c))
	}

	got = TransposeInto(New(4, 3), a)
	if !Equal(got, Transpose(a)) {
		t.Fatalf("TransposeInto = %v, want %v", got, Transpose(a))
	}

	x := seqMatrix(3, 3, 2)
	y := seqMatrix(3, 3, -1)
	if got := AddInto(New(3, 3), x, y); !Equal(got, Add(x, y)) {
		t.Fatalf("AddInto mismatch")
	}
	if got := SubInto(New(3, 3), x, y); !Equal(got, Sub(x, y)) {
		t.Fatalf("SubInto mismatch")
	}
	if got := ScaleInto(New(3, 3), 2.5, x); !Equal(got, Scale(2.5, x)) {
		t.Fatalf("ScaleInto mismatch")
	}
	if got := SymmetrizeInto(New(3, 3), x); !Equal(got, Symmetrize(x)) {
		t.Fatalf("SymmetrizeInto mismatch")
	}
	if got := IdentityMinusInto(New(3, 3), x); !Equal(got, Sub(Identity(3), x)) {
		t.Fatalf("IdentityMinusInto mismatch")
	}
}

func TestElementwiseIntoAliasing(t *testing.T) {
	x := seqMatrix(3, 3, 2)
	y := seqMatrix(3, 3, -1)

	want := Add(x, y)
	got := x.Clone()
	AddInto(got, got, y)
	if !Equal(got, want) {
		t.Fatalf("aliased AddInto = %v, want %v", got, want)
	}

	want = Sub(x, y)
	got = x.Clone()
	SubInto(got, got, y)
	if !Equal(got, want) {
		t.Fatalf("aliased SubInto = %v, want %v", got, want)
	}

	want = Symmetrize(x)
	got = x.Clone()
	SymmetrizeInto(got, got)
	if !Equal(got, want) {
		t.Fatalf("aliased SymmetrizeInto = %v, want %v", got, want)
	}

	want = Sub(Identity(3), x)
	got = x.Clone()
	IdentityMinusInto(got, got)
	if !Equal(got, want) {
		t.Fatalf("aliased IdentityMinusInto = %v, want %v", got, want)
	}
}

func TestMulIntoAliasPanics(t *testing.T) {
	a := seqMatrix(2, 2, 1)
	b := seqMatrix(2, 2, 3)
	for _, fn := range []func(){
		func() { MulInto(a, a, b) },
		func() { TransposeInto(a, a) },
		func() { Mul3Into(a, b, b, b, a) },
		func() { InverseInto(a, a, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("aliased kernel did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestMul3CostAwareAssociation(t *testing.T) {
	// Shapes where right-association is far cheaper: (10x2)·(2x10)·(10x1).
	a := seqMatrix(10, 2, 1)
	b := seqMatrix(2, 10, -3)
	c := seqMatrix(10, 1, 0.5)
	if !mul3RightFirst(a, b, c) {
		t.Fatalf("expected right-first association for 10x2 * 2x10 * 10x1")
	}
	want := Mul(Mul(a, b), c)
	got := Mul3(a, b, c)
	if !ApproxEqual(got, want, 1e-9) {
		t.Fatalf("Mul3 = %v, want %v", got, want)
	}
	// Symmetric-cost products must keep left association (tie).
	h := seqMatrix(2, 4, 1)
	p := seqMatrix(4, 4, 2)
	ht := Transpose(h)
	if mul3RightFirst(h, p, ht) {
		t.Fatalf("H P H^T must stay left-associated on a cost tie")
	}
}

func TestDot(t *testing.T) {
	a := Vec(1, 2, 3)
	b := Vec(4, -5, 6)
	if got := Dot(a, b); got != 1*4+2*-5+3*6 {
		t.Fatalf("Dot = %v", got)
	}
	row := Transpose(a)
	if got := Dot(row, b); got != 12 {
		t.Fatalf("row-column Dot = %v", got)
	}
}

func TestInverseIntoClosedForms(t *testing.T) {
	// 1x1.
	a := Diag(4)
	dst := New(1, 1)
	det, err := InverseInto(dst, a, nil)
	if err != nil || det != 4 || dst.At(0, 0) != 0.25 {
		t.Fatalf("1x1 inverse: dst=%v det=%v err=%v", dst, det, err)
	}
	// 2x2 against the LU-based solver.
	b := FromRows([][]float64{{3, 1.5}, {-2, 4}})
	dst = New(2, 2)
	det, err = InverseInto(dst, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := 3*4 - 1.5*(-2); det != want {
		t.Fatalf("2x2 det = %v, want %v", det, want)
	}
	lu, err := DecomposeLU(b)
	if err != nil {
		t.Fatal(err)
	}
	want, err := lu.Solve(Identity(2))
	if err != nil {
		t.Fatal(err)
	}
	if !ApproxEqual(dst, want, 1e-12) {
		t.Fatalf("2x2 inverse = %v, want %v", dst, want)
	}
	if !ApproxEqual(Mul(dst, b), Identity(2), 1e-12) {
		t.Fatalf("2x2 inverse does not invert: %v", Mul(dst, b))
	}
}

func TestInverseIntoGaussJordan(t *testing.T) {
	a := FromRows([][]float64{
		{4, 1, 0, 0.5},
		{1, 5, 1, 0},
		{0, 1, 6, 1},
		{0.5, 0, 1, 7},
	})
	dst := New(4, 4)
	scratch := New(4, 4)
	det, err := InverseInto(dst, a, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if luDet := Det(a); math.Abs(det-luDet) > 1e-9*math.Abs(luDet) {
		t.Fatalf("det = %v, LU det = %v", det, luDet)
	}
	if !ApproxEqual(Mul(dst, a), Identity(4), 1e-10) {
		t.Fatalf("4x4 inverse does not invert")
	}
	// The scratch-free call must agree.
	dst2, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(dst, dst2) {
		t.Fatalf("Inverse wrapper disagrees with InverseInto")
	}
}

func TestInverseIntoSingular(t *testing.T) {
	for _, a := range []*Matrix{
		Diag(0),
		FromRows([][]float64{{1, 2}, {2, 4}}),
		FromRows([][]float64{{1, 2, 3}, {2, 4, 6}, {0, 1, 1}}),
	} {
		if _, err := InverseInto(New(a.Rows(), a.Cols()), a, nil); err != ErrSingular {
			t.Fatalf("%v: err = %v, want ErrSingular", a, err)
		}
	}
}

func TestReshapeReusesStorage(t *testing.T) {
	m := New(4, 4)
	data := m.data
	m.Reshape(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 || len(m.data) != 6 {
		t.Fatalf("Reshape: got %dx%d len %d", m.Rows(), m.Cols(), len(m.data))
	}
	if &m.data[0] != &data[0] {
		t.Fatalf("Reshape reallocated despite sufficient capacity")
	}
	m.Reshape(5, 5)
	if len(m.data) != 25 {
		t.Fatalf("Reshape grow: len %d", len(m.data))
	}
}

func TestIntoKernelsDoNotAllocate(t *testing.T) {
	a := seqMatrix(4, 4, 1)
	b := seqMatrix(4, 4, -2)
	dst := New(4, 4)
	scratch := New(4, 4)
	inv := New(4, 4)
	spd := FromRows([][]float64{
		{4, 1, 0, 0.5},
		{1, 5, 1, 0},
		{0, 1, 6, 1},
		{0.5, 0, 1, 7},
	})
	checks := map[string]func(){
		"MulInto":       func() { MulInto(dst, a, b) },
		"Mul3Into":      func() { Mul3Into(dst, a, b, b, scratch) },
		"TransposeInto": func() { TransposeInto(dst, a) },
		"AddInto":       func() { AddInto(dst, a, b) },
		"SubInto":       func() { SubInto(dst, a, b) },
		"Symmetrize":    func() { SymmetrizeInto(dst, a) },
		"InverseInto":   func() { InverseInto(inv, spd, scratch) },
	}
	for name, fn := range checks {
		if n := testing.AllocsPerRun(100, fn); n != 0 {
			t.Errorf("%s allocates %v times per run", name, n)
		}
	}
}
