package mat

import "fmt"

// Destination-taking kernels for allocation-free inner loops.
//
// Convention: the destination is the first argument and must already have
// the result's dimensions (Mul3Into and InverseInto reshape their scratch
// argument themselves). Element-wise kernels (AddInto, SubInto, ScaleInto,
// SymmetrizeInto, IdentityMinusInto) permit dst to alias an operand.
// Data-movement kernels (MulInto, Mul3Into, TransposeInto, InverseInto)
// require dst and scratch to be distinct from every operand and panic on
// violation. Matrices in this package never share backing storage, so
// pointer identity is a complete aliasing check.
//
// Every kernel applies the same floating-point operation order as its
// allocating counterpart (which is now a thin wrapper), so switching an
// algorithm to the Into forms is bit-identical — the property the DKF
// mirror-synchrony invariant depends on.

// checkDst stays under the inlining budget by keeping the panic
// formatting in a cold helper: the dimension guard runs on every kernel
// call in the filter hot loop, where a function call per check is
// measurable against 1x1 operands.
func checkDst(op string, dst *Matrix, r, c int) {
	if dst.rows != r || dst.cols != c {
		badDst(op, dst, r, c)
	}
}

func badDst(op string, dst *Matrix, r, c int) {
	panic(fmt.Sprintf("mat: %s destination is %dx%d, want %dx%d", op, dst.rows, dst.cols, r, c))
}

func checkNoAlias(op string, dst *Matrix, operands ...*Matrix) {
	for _, a := range operands {
		if dst == a {
			panic(fmt.Sprintf("mat: %s destination aliases an operand", op))
		}
	}
}

// Reshape resizes m to r x c, reusing the backing storage when it has the
// capacity and reallocating otherwise. The element contents after a
// reshape are unspecified. It returns m.
func (m *Matrix) Reshape(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", r, c))
	}
	n := r * c
	if cap(m.data) >= n {
		m.data = m.data[:n]
	} else {
		m.data = make([]float64, n)
	}
	m.rows, m.cols = r, c
	return m
}

// AddInto sets dst = a + b and returns dst. dst may alias a and/or b.
func AddInto(dst, a, b *Matrix) *Matrix {
	sameDims("AddInto", a, b)
	checkDst("AddInto", dst, a.rows, a.cols)
	for i := range a.data {
		dst.data[i] = a.data[i] + b.data[i]
	}
	return dst
}

// SubInto sets dst = a - b and returns dst. dst may alias a and/or b.
func SubInto(dst, a, b *Matrix) *Matrix {
	sameDims("SubInto", a, b)
	checkDst("SubInto", dst, a.rows, a.cols)
	for i := range a.data {
		dst.data[i] = a.data[i] - b.data[i]
	}
	return dst
}

// ScaleInto sets dst = s * a and returns dst. dst may alias a.
func ScaleInto(dst *Matrix, s float64, a *Matrix) *Matrix {
	checkDst("ScaleInto", dst, a.rows, a.cols)
	for i := range a.data {
		dst.data[i] = s * a.data[i]
	}
	return dst
}

// MulInto sets dst = a * b and returns dst. dst must not alias a or b.
func MulInto(dst, a, b *Matrix) *Matrix {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: MulInto dimension mismatch %dx%d * %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	checkNoAlias("MulInto", dst, a, b)
	checkDst("MulInto", dst, a.rows, b.cols)
	if a.rows == 1 && a.cols == 1 && b.cols == 1 {
		// Scalar product — every matrix of the paper's one-attribute
		// streams. The zero-operand skip mirrors the general loop below,
		// which leaves dst at its cleared 0 rather than producing 0*NaN.
		if av := a.data[0]; av == 0 {
			dst.data[0] = 0
		} else {
			dst.data[0] = av * b.data[0]
		}
		return dst
	}
	for i := range dst.data {
		dst.data[i] = 0
	}
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		orow := dst.data[i*b.cols : (i+1)*b.cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return dst
}

// mul3RightFirst reports whether computing a*(b*c) needs strictly fewer
// multiply-adds than (a*b)*c. Ties keep the left association, so shapes
// where both orders cost the same (every product in the Kalman recursions)
// are bit-identical to the historical left-to-right evaluation.
func mul3RightFirst(a, b, c *Matrix) bool {
	left := a.rows*a.cols*b.cols + a.rows*b.cols*c.cols
	right := b.rows*b.cols*c.cols + a.rows*a.cols*c.cols
	return right < left
}

// Mul3Into sets dst = a * b * c, associating whichever way is cheaper for
// the operand shapes. scratch holds the intermediate product and is
// reshaped as needed; a nil scratch allocates one. dst must not alias any
// operand, and scratch must be distinct from dst and all operands.
func Mul3Into(dst, a, b, c, scratch *Matrix) *Matrix {
	if scratch == nil {
		scratch = &Matrix{}
	}
	checkNoAlias("Mul3Into", dst, a, b, c, scratch)
	checkNoAlias("Mul3Into scratch", scratch, a, b, c)
	if mul3RightFirst(a, b, c) {
		scratch.Reshape(b.rows, c.cols)
		MulInto(scratch, b, c)
		return MulInto(dst, a, scratch)
	}
	scratch.Reshape(a.rows, b.cols)
	MulInto(scratch, a, b)
	return MulInto(dst, scratch, c)
}

// TransposeInto sets dst = a^T and returns dst. dst must not alias a.
func TransposeInto(dst, a *Matrix) *Matrix {
	checkNoAlias("TransposeInto", dst, a)
	checkDst("TransposeInto", dst, a.cols, a.rows)
	for i := 0; i < a.rows; i++ {
		for j := 0; j < a.cols; j++ {
			dst.data[j*a.rows+i] = a.data[i*a.cols+j]
		}
	}
	return dst
}

// SymmetrizeInto sets dst = (a + a^T)/2 and returns dst. dst may alias a.
func SymmetrizeInto(dst, a *Matrix) *Matrix {
	if a.rows != a.cols {
		panic(fmt.Sprintf("mat: SymmetrizeInto on non-square %dx%d", a.rows, a.cols))
	}
	checkDst("SymmetrizeInto", dst, a.rows, a.cols)
	n := a.rows
	for i := 0; i < n; i++ {
		dst.data[i*n+i] = a.data[i*n+i]
		for j := i + 1; j < n; j++ {
			v := (a.data[i*n+j] + a.data[j*n+i]) / 2
			dst.data[i*n+j] = v
			dst.data[j*n+i] = v
		}
	}
	return dst
}

// IdentityMinusInto sets dst = I - a for square a and returns dst. dst may
// alias a. Each element is produced by the single subtraction I_ij - a_ij,
// matching Sub(Identity(n), a) bit for bit.
func IdentityMinusInto(dst, a *Matrix) *Matrix {
	if a.rows != a.cols {
		panic(fmt.Sprintf("mat: IdentityMinusInto on non-square %dx%d", a.rows, a.cols))
	}
	checkDst("IdentityMinusInto", dst, a.rows, a.cols)
	n := a.rows
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var id float64
			if i == j {
				id = 1
			}
			dst.data[i*n+j] = id - a.data[i*n+j]
		}
	}
	return dst
}

// Dot returns the dot product of a and b viewed as flat element sequences
// (row and column vectors of equal length are the common case).
func Dot(a, b *Matrix) float64 {
	if len(a.data) != len(b.data) {
		panic(fmt.Sprintf("mat: Dot length mismatch %dx%d vs %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	var s float64
	for i, v := range a.data {
		s += v * b.data[i]
	}
	return s
}

// InverseInto sets dst = a^-1 for square a and returns det(a). Orders 1
// and 2 — the innovation covariance sizes of the paper's scalar and 2-D
// streams — use closed forms and touch no scratch; larger orders run
// Gauss-Jordan elimination with partial pivoting inside scratch, which is
// reshaped to a's dimensions (nil allocates one). dst must not alias a;
// scratch must be distinct from both.
func InverseInto(dst, a, scratch *Matrix) (float64, error) {
	if a.rows != a.cols {
		panic(fmt.Sprintf("mat: InverseInto on non-square %dx%d", a.rows, a.cols))
	}
	checkNoAlias("InverseInto", dst, a, scratch)
	checkDst("InverseInto", dst, a.rows, a.cols)
	n := a.rows
	switch n {
	case 0:
		return 1, nil
	case 1:
		v := a.data[0]
		if v == 0 {
			return 0, ErrSingular
		}
		dst.data[0] = 1 / v
		return v, nil
	case 2:
		a00, a01, a10, a11 := a.data[0], a.data[1], a.data[2], a.data[3]
		det := a00*a11 - a01*a10
		if det == 0 {
			return 0, ErrSingular
		}
		dst.data[0] = a11 / det
		dst.data[1] = -a01 / det
		dst.data[2] = -a10 / det
		dst.data[3] = a00 / det
		return det, nil
	}
	if scratch == nil {
		scratch = &Matrix{}
	}
	if scratch == a {
		panic("mat: InverseInto scratch aliases an operand")
	}
	scratch.Reshape(n, n)
	copy(scratch.data, a.data)
	w := scratch.data
	// dst starts as the identity and receives every row operation applied
	// to the working copy, ending as a^-1.
	for i := range dst.data {
		dst.data[i] = 0
	}
	for i := 0; i < n; i++ {
		dst.data[i*n+i] = 1
	}
	det := 1.0
	for k := 0; k < n; k++ {
		p, maxv := k, abs(w[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := abs(w[i*n+k]); v > maxv {
				p, maxv = i, v
			}
		}
		if maxv == 0 {
			return 0, ErrSingular
		}
		if p != k {
			for j := 0; j < n; j++ {
				w[p*n+j], w[k*n+j] = w[k*n+j], w[p*n+j]
				dst.data[p*n+j], dst.data[k*n+j] = dst.data[k*n+j], dst.data[p*n+j]
			}
			det = -det
		}
		piv := w[k*n+k]
		det *= piv
		inv := 1 / piv
		for j := 0; j < n; j++ {
			w[k*n+j] *= inv
			dst.data[k*n+j] *= inv
		}
		for i := 0; i < n; i++ {
			if i == k {
				continue
			}
			f := w[i*n+k]
			if f == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				w[i*n+j] -= f * w[k*n+j]
				dst.data[i*n+j] -= f * dst.data[k*n+j]
			}
		}
	}
	return det, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
