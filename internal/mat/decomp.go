package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a linear system has no unique solution.
var ErrSingular = errors.New("mat: matrix is singular to working precision")

// ErrNotPositiveDefinite is returned by Cholesky when the input is not
// symmetric positive definite.
var ErrNotPositiveDefinite = errors.New("mat: matrix is not positive definite")

// LU holds an LU decomposition with partial pivoting: P*A = L*U.
type LU struct {
	lu    *Matrix // packed L (unit lower, implicit diagonal) and U
	piv   []int   // row permutation
	sign  float64 // permutation parity, for Det
	valid bool
}

// DecomposeLU computes the LU decomposition of a square matrix using
// Doolittle's method with partial pivoting.
func DecomposeLU(a *Matrix) (*LU, error) {
	if a.rows != a.cols {
		panic(fmt.Sprintf("mat: DecomposeLU on non-square %dx%d", a.rows, a.cols))
	}
	n := a.rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1.0
	for k := 0; k < n; k++ {
		// Find pivot.
		p := k
		maxv := math.Abs(lu.data[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.data[i*n+k]); v > maxv {
				maxv, p = v, i
			}
		}
		if maxv == 0 {
			return nil, ErrSingular
		}
		if p != k {
			for j := 0; j < n; j++ {
				lu.data[p*n+j], lu.data[k*n+j] = lu.data[k*n+j], lu.data[p*n+j]
			}
			piv[p], piv[k] = piv[k], piv[p]
			sign = -sign
		}
		// Eliminate below the pivot.
		pivVal := lu.data[k*n+k]
		for i := k + 1; i < n; i++ {
			f := lu.data[i*n+k] / pivVal
			lu.data[i*n+k] = f
			for j := k + 1; j < n; j++ {
				lu.data[i*n+j] -= f * lu.data[k*n+j]
			}
		}
	}
	return &LU{lu: lu, piv: piv, sign: sign, valid: true}, nil
}

// Det returns the determinant of the decomposed matrix.
func (d *LU) Det() float64 {
	n := d.lu.rows
	det := d.sign
	for i := 0; i < n; i++ {
		det *= d.lu.data[i*n+i]
	}
	return det
}

// Solve solves A*X = B for X, where A is the decomposed matrix.
// B may have multiple right-hand-side columns.
func (d *LU) Solve(b *Matrix) (*Matrix, error) {
	n := d.lu.rows
	if b.rows != n {
		panic(fmt.Sprintf("mat: LU.Solve rhs has %d rows, want %d", b.rows, n))
	}
	nrhs := b.cols
	// Apply permutation.
	x := New(n, nrhs)
	for i := 0; i < n; i++ {
		copy(x.data[i*nrhs:(i+1)*nrhs], b.data[d.piv[i]*nrhs:(d.piv[i]+1)*nrhs])
	}
	// Forward substitution with unit lower triangular L.
	for k := 0; k < n; k++ {
		for i := k + 1; i < n; i++ {
			f := d.lu.data[i*n+k]
			if f == 0 {
				continue
			}
			for j := 0; j < nrhs; j++ {
				x.data[i*nrhs+j] -= f * x.data[k*nrhs+j]
			}
		}
	}
	// Back substitution with U.
	for k := n - 1; k >= 0; k-- {
		pivVal := d.lu.data[k*n+k]
		if pivVal == 0 {
			return nil, ErrSingular
		}
		for j := 0; j < nrhs; j++ {
			x.data[k*nrhs+j] /= pivVal
		}
		for i := 0; i < k; i++ {
			f := d.lu.data[i*n+k]
			if f == 0 {
				continue
			}
			for j := 0; j < nrhs; j++ {
				x.data[i*nrhs+j] -= f * x.data[k*nrhs+j]
			}
		}
	}
	return x, nil
}

// Solve solves the linear system a*x = b.
func Solve(a, b *Matrix) (*Matrix, error) {
	lu, err := DecomposeLU(a)
	if err != nil {
		return nil, err
	}
	return lu.Solve(b)
}

// Inverse returns a^-1. It is a thin wrapper over InverseInto: closed
// forms for orders 1 and 2, Gauss-Jordan elimination with partial
// pivoting above that.
func Inverse(a *Matrix) (*Matrix, error) {
	out := New(a.rows, a.cols)
	if _, err := InverseInto(out, a, nil); err != nil {
		return nil, err
	}
	return out, nil
}

// Det returns the determinant of a square matrix (0 if singular).
func Det(a *Matrix) float64 {
	lu, err := DecomposeLU(a)
	if err != nil {
		return 0
	}
	return lu.Det()
}

// Cholesky holds the lower-triangular factor L with A = L*L^T.
type Cholesky struct {
	l *Matrix
}

// DecomposeCholesky factors a symmetric positive-definite matrix.
// Only the lower triangle of a is read.
func DecomposeCholesky(a *Matrix) (*Cholesky, error) {
	if a.rows != a.cols {
		panic(fmt.Sprintf("mat: DecomposeCholesky on non-square %dx%d", a.rows, a.cols))
	}
	n := a.rows
	l := New(n, n)
	for j := 0; j < n; j++ {
		var d float64
		for k := 0; k < j; k++ {
			var s float64
			for i := 0; i < k; i++ {
				s += l.data[k*n+i] * l.data[j*n+i]
			}
			s = (a.data[j*n+k] - s) / l.data[k*n+k]
			l.data[j*n+k] = s
			d += s * s
		}
		d = a.data[j*n+j] - d
		if d <= 0 {
			return nil, ErrNotPositiveDefinite
		}
		l.data[j*n+j] = math.Sqrt(d)
	}
	return &Cholesky{l: l}, nil
}

// L returns a copy of the lower-triangular factor.
func (c *Cholesky) L() *Matrix { return c.l.Clone() }

// Solve solves A*X = B using the Cholesky factorization.
func (c *Cholesky) Solve(b *Matrix) *Matrix {
	n := c.l.rows
	if b.rows != n {
		panic(fmt.Sprintf("mat: Cholesky.Solve rhs has %d rows, want %d", b.rows, n))
	}
	nrhs := b.cols
	x := b.Clone()
	// Forward: L*y = b.
	for k := 0; k < n; k++ {
		for j := 0; j < nrhs; j++ {
			for i := 0; i < k; i++ {
				x.data[k*nrhs+j] -= x.data[i*nrhs+j] * c.l.data[k*n+i]
			}
			x.data[k*nrhs+j] /= c.l.data[k*n+k]
		}
	}
	// Backward: L^T*x = y.
	for k := n - 1; k >= 0; k-- {
		for j := 0; j < nrhs; j++ {
			for i := k + 1; i < n; i++ {
				x.data[k*nrhs+j] -= x.data[i*nrhs+j] * c.l.data[i*n+k]
			}
			x.data[k*nrhs+j] /= c.l.data[k*n+k]
		}
	}
	return x
}

// IsPositiveDefinite reports whether the symmetric matrix a is positive
// definite, by attempting a Cholesky factorization.
func IsPositiveDefinite(a *Matrix) bool {
	_, err := DecomposeCholesky(a)
	return err == nil
}
