// Package mat implements a small dense matrix library sufficient for Kalman
// filtering: construction, arithmetic, transposition, LU and Cholesky
// decompositions, linear solves, inversion and a handful of norms.
//
// It plays the role the JAMA Java matrix package played in the original
// SIGMOD 2004 implementation of the Dual Kalman Filter.
//
// All matrices are dense, row-major, float64. Dimension mismatches are
// programmer errors and panic with a descriptive message, mirroring the
// convention of gonum and the Go standard library (e.g. slice bounds).
// Numerical failures that depend on data values (singular systems,
// non-positive-definite inputs) are reported as errors.
package mat

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense, row-major matrix of float64 values.
// The zero value is an empty 0x0 matrix; use New or the other constructors.
type Matrix struct {
	rows, cols int
	data       []float64 // len == rows*cols, row-major
}

// New returns a zeroed r x c matrix.
func New(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", r, c))
	}
	return &Matrix{rows: r, cols: c, data: make([]float64, r*c)}
}

// FromSlice returns an r x c matrix backed by a copy of data, which must be
// row-major and of length r*c.
func FromSlice(r, c int, data []float64) *Matrix {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: FromSlice length %d != %d*%d", len(data), r, c))
	}
	m := New(r, c)
	copy(m.data, data)
	return m
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	c := len(rows[0])
	m := New(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("mat: FromRows ragged input: row %d has %d cols, want %d", i, len(row), c))
		}
		copy(m.data[i*c:(i+1)*c], row)
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Diag returns a square matrix with vals on the diagonal.
func Diag(vals ...float64) *Matrix {
	m := New(len(vals), len(vals))
	for i, v := range vals {
		m.data[i*len(vals)+i] = v
	}
	return m
}

// ScaledIdentity returns s * I(n). Commonly used for the paper's
// "diagonal matrices with value 0.05" process/measurement covariances.
func ScaledIdentity(n int, s float64) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = s
	}
	return m
}

// Vec returns a column vector (n x 1) holding vals.
func Vec(vals ...float64) *Matrix {
	m := New(len(vals), 1)
	copy(m.data, vals)
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// CopyFrom overwrites m's elements with src's. Dimensions must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.rows != src.rows || m.cols != src.cols {
		panic(fmt.Sprintf("mat: CopyFrom dimension mismatch %dx%d <- %dx%d", m.rows, m.cols, src.rows, src.cols))
	}
	copy(m.data, src.data)
}

// Col returns column j as a fresh slice.
func (m *Matrix) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: column %d out of range %dx%d", j, m.rows, m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// Row returns row i as a fresh slice.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of range %dx%d", i, m.rows, m.cols))
	}
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// DataCopy returns the matrix contents as a fresh row-major slice of
// length Rows*Cols — the serialization form used by checkpoint and
// snapshot code. FromSlice is the inverse.
func (m *Matrix) DataCopy() []float64 {
	out := make([]float64, len(m.data))
	copy(out, m.data)
	return out
}

// VecSlice returns the contents of a column vector as a fresh slice.
// m must have exactly one column.
func (m *Matrix) VecSlice() []float64 {
	if m.cols != 1 {
		panic(fmt.Sprintf("mat: VecSlice on %dx%d, want n x 1", m.rows, m.cols))
	}
	out := make([]float64, m.rows)
	copy(out, m.data)
	return out
}

// Add returns a + b.
func Add(a, b *Matrix) *Matrix {
	sameDims("Add", a, b)
	return AddInto(New(a.rows, a.cols), a, b)
}

// Sub returns a - b.
func Sub(a, b *Matrix) *Matrix {
	sameDims("Sub", a, b)
	return SubInto(New(a.rows, a.cols), a, b)
}

// AddInPlace sets a = a + b and returns a.
func AddInPlace(a, b *Matrix) *Matrix {
	sameDims("AddInPlace", a, b)
	for i := range a.data {
		a.data[i] += b.data[i]
	}
	return a
}

// sameDims keeps the panic formatting in a cold helper so the guard
// itself inlines into the element-wise kernels (see checkDst).
func sameDims(op string, a, b *Matrix) {
	if a.rows != b.rows || a.cols != b.cols {
		badDims(op, a, b)
	}
}

func badDims(op string, a, b *Matrix) {
	panic(fmt.Sprintf("mat: %s dimension mismatch %dx%d vs %dx%d", op, a.rows, a.cols, b.rows, b.cols))
}

// Mul returns the matrix product a * b.
func Mul(a, b *Matrix) *Matrix {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: Mul dimension mismatch %dx%d * %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	return MulInto(New(a.rows, b.cols), a, b)
}

// Mul3 returns a * b * c, associating whichever way costs fewer
// multiply-adds for the operand shapes. Ties keep the historical
// left-to-right association, so results stay bit-identical for the
// symmetric-cost products of the Kalman recursions.
func Mul3(a, b, c *Matrix) *Matrix {
	if mul3RightFirst(a, b, c) {
		return Mul(a, Mul(b, c))
	}
	return Mul(Mul(a, b), c)
}

// Scale returns s * a.
func Scale(s float64, a *Matrix) *Matrix {
	return ScaleInto(New(a.rows, a.cols), s, a)
}

// Transpose returns a-transpose.
func Transpose(a *Matrix) *Matrix {
	return TransposeInto(New(a.cols, a.rows), a)
}

// Symmetrize returns (a + a^T)/2. Used to keep covariance matrices
// numerically symmetric across many filter iterations.
func Symmetrize(a *Matrix) *Matrix {
	if a.rows != a.cols {
		panic(fmt.Sprintf("mat: Symmetrize on non-square %dx%d", a.rows, a.cols))
	}
	return SymmetrizeInto(New(a.rows, a.cols), a)
}

// Trace returns the sum of diagonal elements of a square matrix.
func Trace(a *Matrix) float64 {
	if a.rows != a.cols {
		panic(fmt.Sprintf("mat: Trace on non-square %dx%d", a.rows, a.cols))
	}
	var t float64
	for i := 0; i < a.rows; i++ {
		t += a.data[i*a.cols+i]
	}
	return t
}

// FrobeniusNorm returns sqrt(sum a_ij^2).
func FrobeniusNorm(a *Matrix) float64 {
	var s float64
	for _, v := range a.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns max |a_ij|, the element-wise infinity norm.
func MaxAbs(a *Matrix) float64 {
	var mx float64
	for _, v := range a.data {
		if av := math.Abs(v); av > mx {
			mx = av
		}
	}
	return mx
}

// Equal reports whether a and b have identical dimensions and elements.
func Equal(a, b *Matrix) bool {
	if a.rows != b.rows || a.cols != b.cols {
		return false
	}
	for i := range a.data {
		if a.data[i] != b.data[i] {
			return false
		}
	}
	return true
}

// ApproxEqual reports whether a and b have identical dimensions and all
// elements within tol of each other.
func ApproxEqual(a, b *Matrix, tol float64) bool {
	if a.rows != b.rows || a.cols != b.cols {
		return false
	}
	for i := range a.data {
		if math.Abs(a.data[i]-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// IsFinite reports whether every element is finite (no NaN or Inf).
func IsFinite(a *Matrix) bool {
	for _, v := range a.data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// String renders the matrix with aligned columns, for debugging and logs.
func (m *Matrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%dx%d[", m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		if i > 0 {
			b.WriteString("; ")
		}
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.6g", m.data[i*m.cols+j])
		}
	}
	b.WriteByte(']')
	return b.String()
}
