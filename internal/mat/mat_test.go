package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("dims = %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("element (%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestFromSliceRoundTrip(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6}
	m := FromSlice(2, 3, data)
	if m.At(0, 0) != 1 || m.At(0, 2) != 3 || m.At(1, 0) != 4 || m.At(1, 2) != 6 {
		t.Fatalf("FromSlice layout wrong: %v", m)
	}
	// The matrix must own a copy: mutating the source must not alias.
	data[0] = 99
	if m.At(0, 0) != 1 {
		t.Fatal("FromSlice aliases caller data")
	}
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(1, 0) != 3 {
		t.Fatalf("At(1,0) = %v, want 3", m.At(1, 0))
	}
	if got := FromRows(nil); got.Rows() != 0 || got.Cols() != 0 {
		t.Fatalf("FromRows(nil) = %dx%d, want 0x0", got.Rows(), got.Cols())
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer expectPanic(t, "ragged FromRows")
	FromRows([][]float64{{1, 2}, {3}})
}

func TestIdentityAndDiag(t *testing.T) {
	i3 := Identity(3)
	d := Diag(1, 1, 1)
	if !Equal(i3, d) {
		t.Fatalf("Identity(3) != Diag(1,1,1): %v vs %v", i3, d)
	}
	s := ScaledIdentity(2, 0.05)
	if s.At(0, 0) != 0.05 || s.At(1, 1) != 0.05 || s.At(0, 1) != 0 {
		t.Fatalf("ScaledIdentity wrong: %v", s)
	}
}

func TestVec(t *testing.T) {
	v := Vec(1, 2, 3)
	if v.Rows() != 3 || v.Cols() != 1 {
		t.Fatalf("Vec dims = %dx%d, want 3x1", v.Rows(), v.Cols())
	}
	got := v.VecSlice()
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("VecSlice = %v", got)
	}
	got[0] = 42
	if v.At(0, 0) != 1 {
		t.Fatal("VecSlice aliases matrix storage")
	}
}

func TestVecSliceNonVectorPanics(t *testing.T) {
	defer expectPanic(t, "VecSlice on non-vector")
	New(2, 2).VecSlice()
}

func TestAtOutOfRangePanics(t *testing.T) {
	defer expectPanic(t, "At out of range")
	New(2, 2).At(2, 0)
}

func TestAddSub(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{10, 20}, {30, 40}})
	sum := Add(a, b)
	want := FromRows([][]float64{{11, 22}, {33, 44}})
	if !Equal(sum, want) {
		t.Fatalf("Add = %v, want %v", sum, want)
	}
	diff := Sub(sum, b)
	if !Equal(diff, a) {
		t.Fatalf("Sub(Add(a,b),b) = %v, want a = %v", diff, a)
	}
}

func TestAddInPlace(t *testing.T) {
	a := FromRows([][]float64{{1, 1}})
	b := FromRows([][]float64{{2, 3}})
	got := AddInPlace(a, b)
	if got != a {
		t.Fatal("AddInPlace must return its receiver")
	}
	if a.At(0, 0) != 3 || a.At(0, 1) != 4 {
		t.Fatalf("AddInPlace result %v", a)
	}
}

func TestAddDimMismatchPanics(t *testing.T) {
	defer expectPanic(t, "Add dim mismatch")
	Add(New(2, 2), New(2, 3))
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	b := FromRows([][]float64{{7, 8}, {9, 10}, {11, 12}})
	got := Mul(a, b)
	want := FromRows([][]float64{{58, 64}, {139, 154}})
	if !Equal(got, want) {
		t.Fatalf("Mul = %v, want %v", got, want)
	}
}

func TestMulIdentity(t *testing.T) {
	a := randomMatrix(rand.New(rand.NewSource(1)), 4, 4)
	if !ApproxEqual(Mul(a, Identity(4)), a, 0) {
		t.Fatal("A*I != A")
	}
	if !ApproxEqual(Mul(Identity(4), a), a, 0) {
		t.Fatal("I*A != A")
	}
}

func TestMulDimMismatchPanics(t *testing.T) {
	defer expectPanic(t, "Mul dim mismatch")
	Mul(New(2, 3), New(2, 3))
}

func TestMul3(t *testing.T) {
	a := FromRows([][]float64{{2}})
	b := FromRows([][]float64{{3}})
	c := FromRows([][]float64{{4}})
	if got := Mul3(a, b, c).At(0, 0); got != 24 {
		t.Fatalf("Mul3 = %v, want 24", got)
	}
}

func TestScaleNegTrace(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	s := Scale(2, a)
	if s.At(1, 1) != 8 {
		t.Fatalf("Scale: %v", s)
	}
	if Trace(a) != 5 {
		t.Fatalf("Trace = %v, want 5", Trace(a))
	}
}

func TestTransposeKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := Transpose(a)
	if at.Rows() != 3 || at.Cols() != 2 || at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("Transpose = %v", at)
	}
}

func TestSymmetrize(t *testing.T) {
	a := FromRows([][]float64{{1, 4}, {2, 3}})
	s := Symmetrize(a)
	want := FromRows([][]float64{{1, 3}, {3, 3}})
	if !Equal(s, want) {
		t.Fatalf("Symmetrize = %v, want %v", s, want)
	}
}

func TestNorms(t *testing.T) {
	a := FromRows([][]float64{{3, -4}})
	if got := FrobeniusNorm(a); math.Abs(got-5) > 1e-12 {
		t.Fatalf("FrobeniusNorm = %v, want 5", got)
	}
	if got := MaxAbs(a); got != 4 {
		t.Fatalf("MaxAbs = %v, want 4", got)
	}
}

func TestEqualApproxEqual(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{1, 2.0000001}})
	if Equal(a, b) {
		t.Fatal("Equal on different values")
	}
	if !ApproxEqual(a, b, 1e-6) {
		t.Fatal("ApproxEqual should hold at tol 1e-6")
	}
	if ApproxEqual(a, New(1, 3), 1) {
		t.Fatal("ApproxEqual across dims")
	}
}

func TestIsFinite(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	if !IsFinite(a) {
		t.Fatal("finite matrix reported non-finite")
	}
	a.Set(0, 0, math.NaN())
	if IsFinite(a) {
		t.Fatal("NaN not detected")
	}
	a.Set(0, 0, math.Inf(1))
	if IsFinite(a) {
		t.Fatal("Inf not detected")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	c := a.Clone()
	c.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestCopyFrom(t *testing.T) {
	a := New(1, 2)
	a.CopyFrom(FromRows([][]float64{{5, 6}}))
	if a.At(0, 1) != 6 {
		t.Fatalf("CopyFrom: %v", a)
	}
}

func TestRowColAccessors(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	r := a.Row(1)
	c := a.Col(0)
	if r[0] != 3 || r[1] != 4 {
		t.Fatalf("Row(1) = %v", r)
	}
	if c[0] != 1 || c[1] != 3 {
		t.Fatalf("Col(0) = %v", c)
	}
	r[0] = 99
	if a.At(1, 0) != 3 {
		t.Fatal("Row aliases storage")
	}
}

func TestString(t *testing.T) {
	s := FromRows([][]float64{{1, 2}, {3, 4}}).String()
	if s != "2x2[1 2; 3 4]" {
		t.Fatalf("String = %q", s)
	}
}

// Property: (A^T)^T == A for random matrices.
func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(6), 1+rng.Intn(6)
		a := randomMatrix(rng, r, c)
		return Equal(Transpose(Transpose(a)), a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: (A*B)^T == B^T * A^T.
func TestMulTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, k, c := 1+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(5)
		a := randomMatrix(rng, r, k)
		b := randomMatrix(rng, k, c)
		return ApproxEqual(Transpose(Mul(a, b)), Mul(Transpose(b), Transpose(a)), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: A + B == B + A, and Trace(A+B) == Trace(A)+Trace(B) for square.
func TestAddCommutativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		a := randomMatrix(rng, n, n)
		b := randomMatrix(rng, n, n)
		if !Equal(Add(a, b), Add(b, a)) {
			return false
		}
		return math.Abs(Trace(Add(a, b))-(Trace(a)+Trace(b))) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func randomMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := New(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}

func expectPanic(t *testing.T, what string) {
	t.Helper()
	if recover() == nil {
		t.Fatalf("%s did not panic", what)
	}
}
