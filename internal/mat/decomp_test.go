package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLUSolveKnown(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	b := Vec(5, 10)
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// 2x + y = 5, x + 3y = 10 -> x = 1, y = 3.
	if math.Abs(x.At(0, 0)-1) > 1e-12 || math.Abs(x.At(1, 0)-3) > 1e-12 {
		t.Fatalf("Solve = %v, want [1;3]", x)
	}
}

func TestLUSolveMultiRHS(t *testing.T) {
	a := FromRows([][]float64{{4, 3}, {6, 3}})
	b := FromRows([][]float64{{10, 1}, {12, 0}})
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !ApproxEqual(Mul(a, x), b, 1e-10) {
		t.Fatalf("A*X != B: %v", Mul(a, x))
	}
}

func TestDetKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	if got := Det(a); math.Abs(got-(-2)) > 1e-12 {
		t.Fatalf("Det = %v, want -2", got)
	}
	if got := Det(Identity(5)); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Det(I) = %v, want 1", got)
	}
	if got := Det(FromRows([][]float64{{1, 2}, {2, 4}})); got != 0 {
		t.Fatalf("Det(singular) = %v, want 0", got)
	}
}

func TestSolveSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, Vec(1, 2)); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
	if _, err := Inverse(a); !errors.Is(err, ErrSingular) {
		t.Fatalf("Inverse err = %v, want ErrSingular", err)
	}
}

func TestInverseKnown(t *testing.T) {
	a := FromRows([][]float64{{4, 7}, {2, 6}})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	want := FromRows([][]float64{{0.6, -0.7}, {-0.2, 0.4}})
	if !ApproxEqual(inv, want, 1e-12) {
		t.Fatalf("Inverse = %v, want %v", inv, want)
	}
}

func TestLUDecomposeNonSquarePanics(t *testing.T) {
	defer expectPanic(t, "LU non-square")
	DecomposeLU(New(2, 3))
}

func TestLUPivoting(t *testing.T) {
	// Zero in the (0,0) position requires a row swap.
	a := FromRows([][]float64{{0, 1}, {1, 0}})
	x, err := Solve(a, Vec(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x.At(0, 0)-3) > 1e-12 || math.Abs(x.At(1, 0)-2) > 1e-12 {
		t.Fatalf("pivoted solve = %v, want [3;2]", x)
	}
}

func TestCholeskyKnown(t *testing.T) {
	a := FromRows([][]float64{{4, 2}, {2, 3}})
	ch, err := DecomposeCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	l := ch.L()
	if !ApproxEqual(Mul(l, Transpose(l)), a, 1e-12) {
		t.Fatalf("L*L^T = %v, want %v", Mul(l, Transpose(l)), a)
	}
	x := ch.Solve(Vec(8, 7))
	if !ApproxEqual(Mul(a, x), Vec(8, 7), 1e-10) {
		t.Fatalf("Cholesky solve wrong: %v", x)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := DecomposeCholesky(a); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("err = %v, want ErrNotPositiveDefinite", err)
	}
	if IsPositiveDefinite(a) {
		t.Fatal("indefinite matrix reported positive definite")
	}
	if !IsPositiveDefinite(Identity(4)) {
		t.Fatal("identity reported not positive definite")
	}
}

// Property: for random well-conditioned A, A * A^-1 ~= I.
func TestInverseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		// B^T*B + n*I is symmetric positive definite, hence invertible
		// and well conditioned enough for a 1e-8 check.
		b := randomMatrix(rng, n, n)
		a := Add(Mul(Transpose(b), b), ScaledIdentity(n, float64(n)))
		inv, err := Inverse(a)
		if err != nil {
			return false
		}
		return ApproxEqual(Mul(a, inv), Identity(n), 1e-8) &&
			ApproxEqual(Mul(inv, a), Identity(n), 1e-8)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: LU solve agrees with Cholesky solve on SPD systems.
func TestSolversAgreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		b := randomMatrix(rng, n, n)
		a := Add(Mul(Transpose(b), b), ScaledIdentity(n, 1))
		rhs := randomMatrix(rng, n, 1)
		x1, err := Solve(a, rhs)
		if err != nil {
			return false
		}
		ch, err := DecomposeCholesky(a)
		if err != nil {
			return false
		}
		x2 := ch.Solve(rhs)
		return ApproxEqual(x1, x2, 1e-7)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: det(A*B) == det(A)*det(B).
func TestDetMultiplicativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		a := randomMatrix(rng, n, n)
		b := randomMatrix(rng, n, n)
		lhs := Det(Mul(a, b))
		rhs := Det(a) * Det(b)
		scale := math.Max(1, math.Max(math.Abs(lhs), math.Abs(rhs)))
		return math.Abs(lhs-rhs)/scale < 1e-8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMul4x4(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	x := randomMatrix(rng, 4, 4)
	y := randomMatrix(rng, 4, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Mul(x, y)
	}
}

func BenchmarkInverse4x4(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	m := randomMatrix(rng, 4, 4)
	a := Add(Mul(Transpose(m), m), ScaledIdentity(4, 4))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Inverse(a); err != nil {
			b.Fatal(err)
		}
	}
}
