package experiments

import (
	"math"
	"math/rand"

	"streamkf/internal/core"
	"streamkf/internal/metrics"
	"streamkf/internal/model"
	"streamkf/internal/stream"
)

// pendulumStream simulates a damped pendulum's measured angle — the
// genuinely non-linear dynamics that motivate the EKF path.
func pendulumStream(n int, dt, gOverL, damping, noiseStd float64, seed int64) []stream.Reading {
	rng := rand.New(rand.NewSource(seed))
	th, om := 1.2, 0.0
	out := make([]stream.Reading, n)
	for k := 0; k < n; k++ {
		om = (1-damping*dt)*om - gOverL*math.Sin(th)*dt
		th += om * dt
		out[k] = stream.Reading{Seq: k, Time: float64(k) * dt, Values: []float64{th + noiseStd*rng.NormFloat64()}}
	}
	return out
}

// NonlinearSummary quantifies future-work item 3: the EKF-based DKF on a
// pendulum angle stream versus the linear DKF and the caching baseline
// at the same precision.
func NonlinearSummary() (*metrics.Summary, error) {
	const (
		n     = 4000
		dt    = 0.02
		delta = 0.05
	)
	data := pendulumStream(n, dt, 9.8, 0.05, 0.002, 1)

	nl, err := core.NewNonlinearSession(core.NonlinearConfig{
		SourceID: "pend",
		Model:    model.Pendulum(dt, 9.8, 0.05, 1e-6, 1e-4),
		Delta:    delta,
	})
	if err != nil {
		return nil, err
	}
	nm, err := nl.Run(data)
	if err != nil {
		return nil, err
	}

	lin, err := runDKF("pend", model.Linear(1, 1, 1e-6, 1e-4), delta, 0, data)
	if err != nil {
		return nil, err
	}
	cm, err := runCache(delta, 1, data)
	if err != nil {
		return nil, err
	}

	s := metrics.NewSummary("nonlinear", "EKF-based DKF on non-linear dynamics (future work 3)")
	s.Add("caching: % updates", cm.PercentUpdates())
	s.Add("linear DKF: % updates", lin.PercentUpdates())
	s.Add("EKF DKF: % updates", nm.PercentUpdates())
	s.Add("EKF DKF: avg error", nm.AvgErr())
	s.Add("EKF mirror in sync", nl.InSync())
	return s, nil
}

func init() {
	register(Experiment{
		ID:       "nonlinear",
		Title:    "Non-linear stream models via the extended Kalman filter",
		Expected: "EKF DKF < linear DKF < caching in updates on pendulum dynamics; mirror stays in sync",
		Run:      func() (Renderable, error) { return NonlinearSummary() },
	})
}
