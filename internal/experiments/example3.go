package experiments

import (
	"fmt"
	"math"

	"streamkf/internal/baseline"
	"streamkf/internal/gen"
	"streamkf/internal/mat"
	"streamkf/internal/metrics"
	"streamkf/internal/model"
	"streamkf/internal/stream"
)

// Example3Deltas is the precision sweep for the network-monitoring
// experiment (Figure 11).
var Example3Deltas = []float64{2, 5, 10, 20, 40, 80}

// Example3Fs is the smoothing-factor sweep for Figures 10 and 12.
var Example3Fs = []float64{1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1}

// Example3F is the fixed smoothing factor for the Figure 11 sweep,
// matching the paper (F = 1e-7).
const Example3F = 1e-7

// Example3MAWindow is the moving-average window the Figure 10 comparison
// uses.
const Example3MAWindow = 20

// example3Data returns the synthetic stand-in for the paper's DEC HTTP
// traffic dataset: noise-dominated counts with occasional bursts.
func example3Data() []stream.Reading {
	return gen.HTTPTraffic(gen.DefaultHTTPTraffic())
}

// Fig10Sweep quantifies the adherence of the KFc-smoothed stream to the
// moving average (the paper's visual Figure 10): for each F it reports
// the RMS distance between the KF-smoothed series and (a) the
// moving-average series and (b) the raw data. Small F must track the
// moving average; large F must track the raw data.
func Fig10Sweep(fs []float64) (*metrics.Sweep, error) {
	data := example3Data()
	raw := stream.Values(data, 0)
	ma, err := baseline.NewMovingAverage(Example3MAWindow)
	if err != nil {
		return nil, err
	}
	maVals := ma.Smooth(raw)
	out := metrics.NewSweep("fig10", "Example 3: KF smoothing vs moving average", "smoothing factor F", "RMS distance", fs)
	for _, f := range fs {
		sm, err := smoothSeries(raw, f)
		if err != nil {
			return nil, fmt.Errorf("F=%v: %w", f, err)
		}
		out.Add("RMS(KF, moving average)", rms(sm, maVals))
		out.Add("RMS(KF, raw data)", rms(sm, raw))
	}
	return out, nil
}

// smoothSeries runs the one-state smoothing filter KFc over a series.
func smoothSeries(vals []float64, f float64) ([]float64, error) {
	m := model.Smoothing(f, 1)
	flt, err := m.NewFilter(vals[:1])
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(vals))
	out[0] = vals[0]
	for i := 1; i < len(vals); i++ {
		flt.Predict()
		if err := flt.Correct(vecOf(vals[i])); err != nil {
			return nil, err
		}
		out[i] = flt.PredictedMeasurement().At(0, 0)
	}
	return out, nil
}

// Fig11Sweep runs DKF on the smoothed traffic stream at F = 1e-7 across
// precision widths, for the constant and linear models, with the caching
// baseline on the raw stream for reference.
func Fig11Sweep(deltas []float64) (*metrics.Sweep, error) {
	data := example3Data()
	out := metrics.NewSweep("fig11", "Example 3: DKF on smoothed data, F = 1e-7", "precision width", "% updates", deltas)
	for _, d := range deltas {
		cm, err := runCache(d, 1, data)
		if err != nil {
			return nil, fmt.Errorf("caching at δ=%v: %w", d, err)
		}
		km, err := runDKF("http", model.Constant(1, 0.05, 0.05), d, Example3F, data)
		if err != nil {
			return nil, fmt.Errorf("constant KF at δ=%v: %w", d, err)
		}
		lm, err := runDKF("http", model.Linear(1, 1, 0.05, 0.05), d, Example3F, data)
		if err != nil {
			return nil, fmt.Errorf("linear KF at δ=%v: %w", d, err)
		}
		out.Add("caching (raw)", cm.PercentUpdates())
		out.Add("constant KF", km.PercentUpdates())
		out.Add("linear KF", lm.PercentUpdates())
	}
	return out, nil
}

// Fig12Sweep fixes δ = 10 and sweeps the smoothing factor F, reporting
// the update percentage for the constant and linear models. Lowering F
// must lower the update rate monotonically.
func Fig12Sweep(fs []float64) (*metrics.Sweep, error) {
	data := example3Data()
	const delta = 10
	out := metrics.NewSweep("fig12", "Example 3: DKF performance vs smoothing factor, δ = 10", "smoothing factor F", "% updates", fs)
	for _, f := range fs {
		km, err := runDKF("http", model.Constant(1, 0.05, 0.05), delta, f, data)
		if err != nil {
			return nil, fmt.Errorf("constant KF at F=%v: %w", f, err)
		}
		lm, err := runDKF("http", model.Linear(1, 1, 0.05, 0.05), delta, f, data)
		if err != nil {
			return nil, fmt.Errorf("linear KF at F=%v: %w", f, err)
		}
		out.Add("constant KF", km.PercentUpdates())
		out.Add("linear KF", lm.PercentUpdates())
	}
	return out, nil
}

func init() {
	register(Experiment{
		ID:       "fig9",
		Title:    "Network monitoring dataset (Example 3)",
		Expected: "noise-dominated packet counts with no visible trend and occasional bursts",
		Run: func() (Renderable, error) {
			data := example3Data()
			vals := stream.Values(data, 0)
			s := metrics.NewSummary("fig9", "HTTP traffic dataset statistics")
			s.Add("points", len(data))
			mean, sd := meanStd(vals)
			s.Add("mean packets/bucket", mean)
			s.Add("std dev", sd)
			s.Add("max", maxOf(vals))
			s.Add("lag-1 autocorrelation", autocorr(vals, 1))
			return s, nil
		},
	})
	register(Experiment{
		ID:       "fig10",
		Title:    "Example 3: KF smoothing against the moving-average approach",
		Expected: "with F = 1e-9 the smoothed values match the moving average; large F tracks the raw data instead",
		Run:      func() (Renderable, error) { return Fig10Sweep(Example3Fs) },
	})
	register(Experiment{
		ID:       "fig11",
		Title:    "Example 3: performance of DKF on smoothed data with F = 1e-7",
		Expected: "after smoothing, the linear KF yields the fewest updates; both KF models beat raw caching",
		Run:      func() (Renderable, error) { return Fig11Sweep(Example3Deltas) },
	})
	register(Experiment{
		ID:       "fig12",
		Title:    "Example 3: performance of DKF for precision width δ = 10 vs F",
		Expected: "% updates decreases monotonically as F decreases",
		Run:      func() (Renderable, error) { return Fig12Sweep(Example3Fs) },
	})
}

func rms(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(a)))
}

func vecOf(v float64) *mat.Matrix { return mat.Vec(v) }
