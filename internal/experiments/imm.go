package experiments

import (
	"math"
	"math/rand"

	"streamkf/internal/adapt"
	"streamkf/internal/kalman"
	"streamkf/internal/mat"
	"streamkf/internal/metrics"
	"streamkf/internal/model"
	"streamkf/internal/stream"
)

// immRegimeTruth builds the flat→ramp→flat truth and noisy measurements
// shared by the estimator comparison.
func immRegimeTruth(seed int64) (truth []float64, readings []stream.Reading) {
	rng := rand.New(rand.NewSource(seed))
	v := 10.0
	for i := 0; i < 300; i++ {
		truth = append(truth, v)
	}
	for i := 0; i < 300; i++ {
		v += 2
		truth = append(truth, v)
	}
	for i := 0; i < 300; i++ {
		truth = append(truth, v)
	}
	readings = make([]stream.Reading, len(truth))
	for i, tv := range truth {
		readings[i] = stream.Reading{Seq: i, Time: float64(i), Values: []float64{tv + 0.5*rng.NormFloat64()}}
	}
	return truth, readings
}

// immBankFilters builds the 2-state constant/constant-velocity bank.
func immBankFilters() []*kalman.Filter {
	constant := kalman.MustNew(kalman.Config{
		Phi: kalman.Static(mat.FromRows([][]float64{{1, 0}, {0, 0}})),
		H:   mat.FromRows([][]float64{{1, 0}}),
		Q:   mat.ScaledIdentity(2, 0.01),
		R:   mat.Diag(0.25),
		X0:  mat.Vec(0, 0),
		P0:  mat.ScaledIdentity(2, 10),
	})
	cv := kalman.MustNew(kalman.Config{
		Phi: kalman.Static(mat.FromRows([][]float64{{1, 1}, {0, 1}})),
		H:   mat.FromRows([][]float64{{1, 0}}),
		Q:   mat.ScaledIdentity(2, 0.01),
		R:   mat.Diag(0.25),
		X0:  mat.Vec(0, 0),
		P0:  mat.ScaledIdentity(2, 10),
	})
	return []*kalman.Filter{constant, cv}
}

// IMMSummary compares regime-tracking RMSE across estimation strategies:
// each fixed model, the hard-switching selector, and the soft IMM
// mixture.
func IMMSummary() (*metrics.Summary, error) {
	truth, readings := immRegimeTruth(8)

	rmseOf := func(estimate func(i int, r stream.Reading) (float64, error)) (float64, error) {
		var sum float64
		for i, r := range readings {
			e, err := estimate(i, r)
			if err != nil {
				return 0, err
			}
			d := e - truth[i]
			sum += d * d
		}
		return math.Sqrt(sum / float64(len(readings))), nil
	}

	bank := immBankFilters()
	constErr, err := rmseOf(func(_ int, r stream.Reading) (float64, error) {
		if err := bank[0].Step(mat.Vec(r.Values[0])); err != nil {
			return 0, err
		}
		return bank[0].State().At(0, 0), nil
	})
	if err != nil {
		return nil, err
	}
	bank2 := immBankFilters()
	cvErr, err := rmseOf(func(_ int, r stream.Reading) (float64, error) {
		if err := bank2[1].Step(mat.Vec(r.Values[0])); err != nil {
			return 0, err
		}
		return bank2[1].State().At(0, 0), nil
	})
	if err != nil {
		return nil, err
	}

	im, err := kalman.NewIMM(kalman.IMMConfig{Filters: immBankFilters()})
	if err != nil {
		return nil, err
	}
	immErr, err := rmseOf(func(_ int, r stream.Reading) (float64, error) {
		if err := im.Step(mat.Vec(r.Values[0])); err != nil {
			return 0, err
		}
		return im.State().At(0, 0), nil
	})
	if err != nil {
		return nil, err
	}

	// Hard switching via the selector, tracked through shadow filters.
	sel, err := adapt.NewSelectorScored([]model.Model{
		model.Constant(1, 0.01, 0.25),
		model.Linear(1, 1, 0.01, 0.25),
	}, 30, 1.3, adapt.ScoreLogLikelihood)
	if err != nil {
		return nil, err
	}
	switches := 0
	var activeFilter *kalman.Filter
	activeName := ""
	switchErr, err := rmseOf(func(_ int, r stream.Reading) (float64, error) {
		if err := sel.Observe(r); err != nil {
			return 0, err
		}
		if m, ok := sel.Propose(); ok {
			if err := sel.Commit(m.Name); err != nil {
				return 0, err
			}
			switches++
			activeFilter = nil
		}
		if activeFilter == nil {
			f, err := sel.Active().NewFilter(r.Values)
			if err != nil {
				return 0, err
			}
			activeFilter = f
			activeName = sel.Active().Name
			return r.Values[0], nil
		}
		if err := activeFilter.Step(mat.Vec(r.Values[0])); err != nil {
			return 0, err
		}
		return activeFilter.PredictedMeasurement().At(0, 0), nil
	})
	if err != nil {
		return nil, err
	}

	s := metrics.NewSummary("imm", "regime tracking: fixed models vs hard switching vs IMM")
	s.Add("fixed constant RMSE", constErr)
	s.Add("fixed linear RMSE", cvErr)
	s.Add("hard switching RMSE", switchErr)
	s.Add("hard switching: switches", switches)
	s.Add("hard switching: final model", activeName)
	s.Add("IMM RMSE", immErr)
	s.Add("IMM final most-likely model", im.MostLikely())
	return s, nil
}

func init() {
	register(Experiment{
		ID:       "imm",
		Title:    "Interacting Multiple Model vs hard model switching",
		Expected: "IMM RMSE below the worst fixed model and competitive with hard switching, without reinstall events",
		Run:      func() (Renderable, error) { return IMMSummary() },
	})
}
