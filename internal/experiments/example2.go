package experiments

import (
	"fmt"
	"math"

	"streamkf/internal/gen"
	"streamkf/internal/metrics"
	"streamkf/internal/model"
	"streamkf/internal/stream"
)

// Example2Deltas is the precision-width sweep for the power-load
// experiment (Figures 7 and 8), scaled to the load units of the
// synthetic dataset (base ~1750, daily amplitude ~400).
var Example2Deltas = []float64{10, 25, 50, 100, 200, 400}

// example2Data returns the synthetic stand-in for the paper's zonal
// electric load dataset (5831 hourly points, diurnal sinusoid).
func example2Data() []stream.Reading {
	return gen.PowerLoad(gen.DefaultPowerLoad())
}

// example2Models returns the two §5.2 DKF models. The sinusoidal model
// uses the generator's true parameters (ω = 2π/24 for the hourly daily
// cycle) the way the paper's model used parameters fitted to its dataset
// (ω = 18/π, θ = π for its time base); γ = amplitude·ω is the derivative
// scale of the sinusoidal component.
func example2Models() (linear, sinusoidal model.Model) {
	cfg := gen.DefaultPowerLoad()
	omega := 2 * math.Pi / 24
	theta := -omega * 9
	gamma := cfg.DailyAmp * omega
	return model.Linear(1, 1, 0.05, 0.05),
		model.Sinusoidal(omega, theta, gamma, 0.05, 0.05)
}

// Example2Sweeps runs the full Example 2 sweep once and returns both the
// Figure 7 (% updates) and Figure 8 (average error) views.
func Example2Sweeps(deltas []float64) (updates, avgErr *metrics.Sweep, err error) {
	data := example2Data()
	linear, sinusoidal := example2Models()
	updates = metrics.NewSweep("fig7", "Example 2: updates received at the central server", "precision width", "% updates", deltas)
	avgErr = metrics.NewSweep("fig8", "Example 2: average error of different models", "precision width", "avg error", deltas)
	for _, d := range deltas {
		cm, err := runCache(d, 1, data)
		if err != nil {
			return nil, nil, fmt.Errorf("caching at δ=%v: %w", d, err)
		}
		lm, err := runDKF("load", linear, d, 0, data)
		if err != nil {
			return nil, nil, fmt.Errorf("linear KF at δ=%v: %w", d, err)
		}
		sm, err := runDKF("load", sinusoidal, d, 0, data)
		if err != nil {
			return nil, nil, fmt.Errorf("sinusoidal KF at δ=%v: %w", d, err)
		}
		updates.Add("caching", cm.PercentUpdates())
		updates.Add("linear KF", lm.PercentUpdates())
		updates.Add("sinusoidal KF", sm.PercentUpdates())
		avgErr.Add("caching", cm.AvgErr())
		avgErr.Add("linear KF", lm.AvgErr())
		avgErr.Add("sinusoidal KF", sm.AvgErr())
	}
	return updates, avgErr, nil
}

func init() {
	register(Experiment{
		ID:       "fig6",
		Title:    "Electric power load dataset (Example 2)",
		Expected: "5831 hourly points with a clear sinusoidal (diurnal) trend",
		Run: func() (Renderable, error) {
			data := example2Data()
			vals := stream.Values(data, 0)
			s := metrics.NewSummary("fig6", "power-load dataset statistics")
			s.Add("points", len(data))
			mean, sd := meanStd(vals)
			s.Add("mean load", mean)
			s.Add("std dev", sd)
			s.Add("min", minOf(vals))
			s.Add("max", maxOf(vals))
			s.Add("lag-24 autocorrelation", autocorr(vals, 24))
			s.Add("lag-12 autocorrelation", autocorr(vals, 12))
			return s, nil
		},
	})
	register(Experiment{
		ID:       "fig7",
		Title:    "Example 2: number of updates received at the central server",
		Expected: "sinusoidal KF < linear KF < caching (~10% gain for the correct model); no blow-up under mismatch",
		Run: func() (Renderable, error) {
			updates, _, err := Example2Sweeps(Example2Deltas)
			return updates, err
		},
	})
	register(Experiment{
		ID:       "fig8",
		Title:    "Example 2: average error produced by different KF models",
		Expected: "comparable at low δ; caching slightly better at high δ while DKF keeps sending fewer updates",
		Run: func() (Renderable, error) {
			_, avgErr, err := Example2Sweeps(Example2Deltas)
			return avgErr, err
		},
	})
}

func meanStd(vals []float64) (mean, sd float64) {
	for _, v := range vals {
		mean += v
	}
	mean /= float64(len(vals))
	for _, v := range vals {
		sd += (v - mean) * (v - mean)
	}
	return mean, math.Sqrt(sd / float64(len(vals)))
}

func minOf(vals []float64) float64 {
	m := vals[0]
	for _, v := range vals {
		if v < m {
			m = v
		}
	}
	return m
}

func maxOf(vals []float64) float64 {
	m := vals[0]
	for _, v := range vals {
		if v > m {
			m = v
		}
	}
	return m
}

func autocorr(vals []float64, lag int) float64 {
	mean, _ := meanStd(vals)
	var num, den float64
	for i := 0; i+lag < len(vals); i++ {
		num += (vals[i] - mean) * (vals[i+lag] - mean)
	}
	for _, v := range vals {
		den += (v - mean) * (v - mean)
	}
	return num / den
}
