package experiments

import (
	"streamkf/internal/baseline"
	"streamkf/internal/core"
	"streamkf/internal/gen"
	"streamkf/internal/metrics"
	"streamkf/internal/model"
	"streamkf/internal/netsim"
	"streamkf/internal/stream"
)

// Table1Summary quantifies the paper's Table 1 — the behavioural claims
// against STREAM-style caching, AURORA-style load shedding and
// COUGAR-style in-network dropping — with three measurable demos:
//
//  1. Trend exploitation (vs STREAM): on a trending stream, the caching
//     scheme's "best estimate for future is the last cached value"
//     generates a high number of updates, while the predictive DKF
//     adapts to the slope.
//  2. Noise degradation (vs all three): on a noisy stream the DKF with
//     smoothing degrades gracefully, keeping updates low at a modest
//     accuracy cost, where caching thrashes.
//  3. Adaptive vs indiscriminate dropping (vs AURORA/COUGAR): dropping
//     every second reading (a fixed-rate sampler, "independent of the
//     stream data arrival characteristics") loses accuracy everywhere,
//     while DKF suppression drops only readings the server can already
//     predict, for a lower error at a comparable send rate.
func Table1Summary() (*metrics.Summary, error) {
	s := metrics.NewSummary("table1", "quantified behavioural comparison (paper Table 1)")

	// Demo 1: trend exploitation on a ramp.
	ramp := gen.Ramp(2000, 0, 2, 0.05, 21)
	cacheM, err := runCache(2, 1, ramp)
	if err != nil {
		return nil, err
	}
	dkfM, err := runDKF("t1", model.Linear(1, 1, 0.05, 0.05), 2, 0, ramp)
	if err != nil {
		return nil, err
	}
	s.Add("[trend] caching % updates", cacheM.PercentUpdates())
	s.Add("[trend] linear DKF % updates", dkfM.PercentUpdates())
	s.Add("[trend] DKF reduction factor", safeDiv(cacheM.PercentUpdates(), dkfM.PercentUpdates()))

	// Demo 2: graceful degradation on noise.
	noisy := gen.HTTPTraffic(gen.DefaultHTTPTraffic())
	cacheN, err := runCache(10, 1, noisy)
	if err != nil {
		return nil, err
	}
	dkfN, err := runDKF("t1", model.Constant(1, 0.05, 0.05), 10, Example3F, noisy)
	if err != nil {
		return nil, err
	}
	s.Add("[noise] caching % updates", cacheN.PercentUpdates())
	s.Add("[noise] smoothed DKF % updates", dkfN.PercentUpdates())
	s.Add("[noise] caching avg error", cacheN.AvgErr())
	s.Add("[noise] smoothed DKF avg error (vs raw)", dkfN.AvgErrRaw())

	// Demo 3: adaptive suppression vs fixed-rate shedding at matched
	// send budgets. The shedder ships every Nth reading, holding the
	// last shipped value in between.
	walk := gen.RandomWalk(2000, 0, 1.5, 22)
	dkfW, err := runDKF("t1", model.Linear(1, 1, 0.05, 0.05), 4, 0, walk)
	if err != nil {
		return nil, err
	}
	stride := int(100 / maxFloat(dkfW.PercentUpdates(), 1e-9))
	if stride < 1 {
		stride = 1
	}
	shedErr := fixedRateShedError(walk, stride)
	s.Add("[shedding] DKF % updates", dkfW.PercentUpdates())
	s.Add("[shedding] DKF avg error", dkfW.AvgErr())
	s.Add("[shedding] fixed-rate sampler stride", float64(stride))
	s.Add("[shedding] fixed-rate sampler avg error", shedErr)
	s.Add("[shedding] error ratio (sampler/DKF)", safeDiv(shedErr, dkfW.AvgErr()))
	return s, nil
}

// fixedRateShedError simulates AURORA-style fixed-rate sampling: ship
// every stride-th reading, answer with the last shipped value, and return
// the average absolute error.
func fixedRateShedError(data []stream.Reading, stride int) float64 {
	var last float64
	var sum float64
	for i, r := range data {
		if i%stride == 0 {
			last = r.Values[0]
		}
		d := r.Values[0] - last
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum / float64(len(data))
}

// EnergySummary quantifies the §1 energy argument: the transmit/compute
// cost asymmetry makes source-side filtering a large net win.
func EnergySummary() (*metrics.Summary, error) {
	data := gen.MovingObject(gen.DefaultMovingObject())
	m, err := runDKF("obj", model.Linear(2, 0.1, 0.05, 0.05), 3, 0, data)
	if err != nil {
		return nil, err
	}
	em := netsim.DefaultEnergyModel()
	kfInstr := netsim.KFStepInstructions(4, 2)
	bytesPerUpdate := core.Update{SourceID: "obj", Values: []float64{0, 0}}.WireBytes()
	cmp := netsim.Compare(em, m.Readings, m.Updates, bytesPerUpdate, kfInstr)

	s := metrics.NewSummary("energy", "sensor energy: DKF vs ship-everything (δ = 3, Example 1)")
	s.Add("bit/instruction energy ratio", em.Ratio())
	s.Add("KF instructions per reading", float64(kfInstr))
	s.Add("% updates", m.PercentUpdates())
	s.Add("DKF energy (units)", cmp.DKFEnergy)
	s.Add("ship-all energy (units)", cmp.ShipAllEnergy)
	s.Add("energy savings", cmp.Savings())
	return s, nil
}

// ShipAllReference reports the trivial baseline's cost for Example 1, an
// upper bound every scheme must beat.
func ShipAllReference() (*metrics.Summary, error) {
	data := gen.MovingObject(gen.DefaultMovingObject())
	sa, err := baseline.NewShipAll(2)
	if err != nil {
		return nil, err
	}
	m, err := sa.Run(data)
	if err != nil {
		return nil, err
	}
	s := metrics.NewSummary("shipall", "ship-everything reference (Example 1)")
	s.Add("% updates", m.PercentUpdates())
	s.Add("bytes sent", float64(m.BytesSent))
	s.Add("avg error", m.AvgErr())
	return s, nil
}

func init() {
	register(Experiment{
		ID:       "table1",
		Title:    "Summary of existing solutions vs DKF, quantified",
		Expected: "DKF exploits trends (large update reduction vs caching), degrades gracefully on noise, and beats fixed-rate shedding on error at matched send budgets",
		Run:      func() (Renderable, error) { return Table1Summary() },
	})
	register(Experiment{
		ID:       "energy",
		Title:    "Sensor energy accounting (paper §1 motivation)",
		Expected: "with bit costs 220–2900x instruction costs, DKF saves most transmit energy despite per-reading filtering",
		Run:      func() (Renderable, error) { return EnergySummary() },
	})
	register(Experiment{
		ID:       "shipall",
		Title:    "Ship-everything reference",
		Expected: "100% updates, zero error: the bandwidth ceiling",
		Run:      func() (Renderable, error) { return ShipAllReference() },
	})
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
