package experiments

import (
	"streamkf/internal/core"
	"streamkf/internal/gen"
	"streamkf/internal/kalman"
	"streamkf/internal/metrics"
	"streamkf/internal/model"
	"streamkf/internal/netsim"
)

// LossySummary quantifies the protocol's dependence on acknowledged
// delivery: silent datagram loss permanently desynchronizes the mirror
// and blows the precision constraint, while detectable loss masked by
// retries is indistinguishable from a lossless run.
func LossySummary() (*metrics.Summary, error) {
	data := gen.RandomWalk(2000, 0, 3, 5)
	cfg := core.Config{SourceID: "s", Model: model.Linear(1, 1, 0.05, 0.05), Delta: 2}
	const lossP = 0.2

	clean, err := core.NewSession(cfg)
	if err != nil {
		return nil, err
	}
	cm, err := clean.Run(data)
	if err != nil {
		return nil, err
	}

	silent, err := core.NewSessionWithTransport(cfg, func(direct core.Transport) (core.Transport, error) {
		return core.NewLossyTransport(direct, lossP, core.LossSilent, 11)
	})
	if err != nil {
		return nil, err
	}
	sm, err := silent.Run(data)
	if err != nil {
		return nil, err
	}

	var lossy *core.LossyTransport
	var reliable *core.ReliableTransport
	retried, err := core.NewSessionWithTransport(cfg, func(direct core.Transport) (core.Transport, error) {
		var err error
		lossy, err = core.NewLossyTransport(direct, lossP, core.LossDetect, 11)
		if err != nil {
			return nil, err
		}
		reliable, err = core.NewReliableTransport(lossy, 100)
		return reliable, err
	})
	if err != nil {
		return nil, err
	}
	rm, err := retried.Run(data)
	if err != nil {
		return nil, err
	}

	s := metrics.NewSummary("lossy", "protocol robustness under 20% update loss")
	s.Add("lossless: avg error", cm.AvgErr())
	s.Add("lossless: max error", cm.MaxAbsErr)
	s.Add("silent loss: avg error", sm.AvgErr())
	s.Add("silent loss: max error", sm.MaxAbsErr)
	s.Add("silent loss: mirror in sync", kalman.StateEqual(silent.Source().Mirror(), silent.Server().Filter()))
	s.Add("ack+retry: avg error", rm.AvgErr())
	s.Add("ack+retry: max error", rm.MaxAbsErr)
	s.Add("ack+retry: mirror in sync", kalman.StateEqual(retried.Source().Mirror(), retried.Server().Filter()))
	s.Add("ack+retry: drops masked", lossy.Dropped())
	s.Add("ack+retry: resends", reliable.Retries())
	return s, nil
}

// LifetimeSummary quantifies the §1 energy motivation as a population
// statistic: rounds until the first sensor battery dies, DKF vs
// ship-everything, at the fig4 update rate.
func LifetimeSummary() (*metrics.Summary, error) {
	const horizon = 2_000_000
	base := netsim.FleetConfig{
		Nodes:          20,
		Battery:        1e9,
		Model:          netsim.DefaultEnergyModel(),
		BytesPerUpdate: 28,
		Seed:           7,
	}
	dkfCfg := base
	dkfCfg.UpdateRate = 0.08 // the measured fig4 rate at δ=3
	dkfCfg.InstrPerRound = netsim.KFStepInstructions(4, 2)
	shipCfg := base
	shipCfg.UpdateRate = 1.0

	dkf, err := netsim.SimulateLifetime(dkfCfg, horizon)
	if err != nil {
		return nil, err
	}
	ship, err := netsim.SimulateLifetime(shipCfg, horizon)
	if err != nil {
		return nil, err
	}
	s := metrics.NewSummary("lifetime", "sensor fleet lifetime: DKF vs ship-everything")
	s.Add("fleet size", base.Nodes)
	s.Add("ship-all: first death (rounds)", ship.FirstDeath)
	s.Add("ship-all: half dead", ship.HalfDead)
	s.Add("DKF: first death (rounds)", dkf.FirstDeath)
	s.Add("DKF: half dead", dkf.HalfDead)
	if ship.FirstDeath > 0 && dkf.FirstDeath > 0 {
		s.Add("lifetime extension factor", float64(dkf.FirstDeath)/float64(ship.FirstDeath))
	}
	return s, nil
}

func init() {
	register(Experiment{
		ID:       "lossy",
		Title:    "Update-loss robustness: silent loss vs acknowledged retry",
		Expected: "silent loss desynchronizes the mirror and blows max error; ack+retry matches the lossless run",
		Run:      func() (Renderable, error) { return LossySummary() },
	})
	register(Experiment{
		ID:       "lifetime",
		Title:    "Fleet battery lifetime under suppression",
		Expected: "DKF's ~12x fewer transmissions extend time-to-first-death several-fold",
		Run:      func() (Renderable, error) { return LifetimeSummary() },
	})
}
