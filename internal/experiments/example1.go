package experiments

import (
	"fmt"
	"math"

	"streamkf/internal/baseline"
	"streamkf/internal/core"
	"streamkf/internal/gen"
	"streamkf/internal/metrics"
	"streamkf/internal/model"
	"streamkf/internal/stream"
)

// Example1Deltas is the precision-width sweep for the moving-object
// experiment (Figures 4 and 5).
var Example1Deltas = []float64{0.5, 1, 2, 3, 5, 8, 12, 16, 20}

// cacheWidthFor maps a DKF precision width δ to the caching baseline's
// bound width. The DKF update rule |v̂ − v| > δ tolerates error up to δ;
// a cached midpoint with bound width W tolerates W/2. Setting W = 2δ puts
// both schemes under the same error guarantee, which is what makes the
// paper's "constant KF ≈ caching" identity hold.
func cacheWidthFor(delta float64) float64 { return 2 * delta }

// runDKF runs one DKF session over the dataset, returning metrics.
func runDKF(sourceID string, m model.Model, delta, f float64, data []stream.Reading) (core.Metrics, error) {
	cfg := core.Config{SourceID: sourceID, Model: m, Delta: delta, F: f}
	sess, err := core.NewSession(cfg)
	if err != nil {
		return core.Metrics{}, err
	}
	return sess.Run(data)
}

// runCache runs the precision-bound caching baseline.
func runCache(delta float64, dims int, data []stream.Reading) (baseline.Metrics, error) {
	c, err := baseline.NewCache(cacheWidthFor(delta), dims)
	if err != nil {
		return baseline.Metrics{}, err
	}
	return c.Run(data)
}

// example1Data reproduces the paper's §5.1 synthetic trajectory: 4000
// points at 100 ms, piecewise-linear motion, speed capped at 500.
func example1Data() []stream.Reading {
	return gen.MovingObject(gen.DefaultMovingObject())
}

// example1Models returns the two §5.1 DKF models: the constant model
// (conceptually the caching scheme) and the linear constant-velocity
// model (Eq. 13–16), both with the paper's Q = R = 0.05·I.
func example1Models() (constant, linear model.Model) {
	return model.Constant(2, 0.05, 0.05), model.Linear(2, 0.1, 0.05, 0.05)
}

// Example1Sweeps runs the full Example 1 sweep once and returns both the
// Figure 4 (% updates) and Figure 5 (average error) views.
func Example1Sweeps(deltas []float64) (updates, avgErr *metrics.Sweep, err error) {
	data := example1Data()
	constant, linear := example1Models()
	updates = metrics.NewSweep("fig4", "Example 1: updates received at the central server", "precision width", "% updates", deltas)
	avgErr = metrics.NewSweep("fig5", "Example 1: average error of different models", "precision width", "avg error (Δx+Δy)", deltas)
	for _, d := range deltas {
		cm, err := runCache(d, 2, data)
		if err != nil {
			return nil, nil, fmt.Errorf("caching at δ=%v: %w", d, err)
		}
		km, err := runDKF("obj", constant, d, 0, data)
		if err != nil {
			return nil, nil, fmt.Errorf("constant KF at δ=%v: %w", d, err)
		}
		lm, err := runDKF("obj", linear, d, 0, data)
		if err != nil {
			return nil, nil, fmt.Errorf("linear KF at δ=%v: %w", d, err)
		}
		updates.Add("caching", cm.PercentUpdates())
		updates.Add("constant KF", km.PercentUpdates())
		updates.Add("linear KF", lm.PercentUpdates())
		avgErr.Add("caching", cm.AvgErr())
		avgErr.Add("constant KF", km.AvgErr())
		avgErr.Add("linear KF", lm.AvgErr())
	}
	return updates, avgErr, nil
}

func init() {
	register(Experiment{
		ID:       "fig3",
		Title:    "Moving-object dataset (Example 1)",
		Expected: "4000 points at 100 ms; piecewise-linear 2-D trajectory with speed <= 500 units",
		Run: func() (Renderable, error) {
			cfg := gen.DefaultMovingObject()
			data := example1Data()
			s := metrics.NewSummary("fig3", "moving-object dataset statistics")
			s.Add("points", len(data))
			s.Add("sampling interval (s)", cfg.DT)
			s.Add("duration (s)", data[len(data)-1].Time)
			var maxSpeed, dist float64
			for k := 1; k < len(data); k++ {
				dx := data[k].Values[0] - data[k-1].Values[0]
				dy := data[k].Values[1] - data[k-1].Values[1]
				step := math.Hypot(dx, dy)
				dist += step
				if sp := step / cfg.DT; sp > maxSpeed {
					maxSpeed = sp
				}
			}
			s.Add("path length (units)", dist)
			s.Add("max observed speed (units/s)", maxSpeed)
			s.Add("speed cap (units/s)", cfg.MaxSpeed)
			return s, nil
		},
	})
	register(Experiment{
		ID:       "fig4",
		Title:    "Example 1: number of updates received at the central server",
		Expected: "linear KF cuts updates ~75% at δ=3; constant KF tracks caching; all converge as δ grows",
		Run: func() (Renderable, error) {
			updates, _, err := Example1Sweeps(Example1Deltas)
			return updates, err
		},
	})
	register(Experiment{
		ID:       "fig5",
		Title:    "Example 1: average error produced by different KF models",
		Expected: "constant KF ≈ caching; linear KF slightly worse at low δ, better at high δ",
		Run: func() (Renderable, error) {
			_, avgErr, err := Example1Sweeps(Example1Deltas)
			return avgErr, err
		},
	})
}
