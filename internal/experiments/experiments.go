// Package experiments regenerates every table and figure from the
// paper's evaluation (§5). Each experiment is a named, self-contained
// runner producing either a parameter Sweep (the figure's curves) or a
// Summary (dataset statistics / qualitative table), rendered by
// cmd/dkf-bench and exercised by the root bench suite.
//
// Absolute numbers differ from the paper (regenerated datasets, Go
// instead of JDK 1.2.4, no physical LAN), but each runner's doc comment
// states the shape that must hold; EXPERIMENTS.md records paper-expected
// versus measured values.
package experiments

import (
	"fmt"
	"sort"
)

// Renderable is implemented by metrics.Sweep and metrics.Summary.
type Renderable interface {
	// Table renders the result as an aligned ASCII table.
	Table() string
}

// Experiment couples an identifier from DESIGN.md's per-experiment index
// with its runner.
type Experiment struct {
	// ID is the experiment identifier, e.g. "fig4".
	ID string
	// Title is the human-readable caption.
	Title string
	// Expected states the paper's qualitative result — the shape the
	// reproduction must match.
	Expected string
	// Run executes the experiment.
	Run func() (Renderable, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic(fmt.Sprintf("experiments: duplicate id %s", e.ID))
	}
	registry[e.ID] = e
}

// Get returns the experiment with the given id.
func Get(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns every registered experiment sorted by id, figures first in
// numeric order.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return lessID(out[i].ID, out[j].ID) })
	return out
}

// IDs returns the registered experiment ids in presentation order.
func IDs() []string {
	all := All()
	ids := make([]string, len(all))
	for i, e := range all {
		ids[i] = e.ID
	}
	return ids
}

// lessID orders figN numerically, then everything else alphabetically
// after the figures.
func lessID(a, b string) bool {
	na, oka := figNum(a)
	nb, okb := figNum(b)
	switch {
	case oka && okb:
		return na < nb
	case oka:
		return true
	case okb:
		return false
	default:
		return a < b
	}
}

func figNum(id string) (int, bool) {
	var n int
	if _, err := fmt.Sscanf(id, "fig%d", &n); err != nil {
		return 0, false
	}
	return n, true
}
