package experiments

import (
	"streamkf/internal/adapt"
	"streamkf/internal/core"
	"streamkf/internal/gen"
	"streamkf/internal/metrics"
	"streamkf/internal/model"
	"streamkf/internal/stream"
	"streamkf/internal/synopsis"
)

// SamplingSummary quantifies future-work item 5: innovation-driven
// adaptive sampling. On the moving-object workload the sampler widens the
// sensing stride inside linear segments (where the mirror predicts
// reliably) and snaps back at heading changes, cutting the sensing duty
// cycle at a bounded accuracy cost.
func SamplingSummary() (*metrics.Summary, error) {
	data := gen.MovingObject(gen.DefaultMovingObject())
	cfg := core.Config{SourceID: "obj", Model: model.Linear(2, 0.1, 0.05, 0.05), Delta: 3}

	// Reference: sense every reading.
	full, err := core.NewSession(cfg)
	if err != nil {
		return nil, err
	}
	fm, err := full.Run(data)
	if err != nil {
		return nil, err
	}

	sampler, err := core.NewAdaptiveSampler(cfg.Delta, 0.3, 8)
	if err != nil {
		return nil, err
	}
	sampled, err := core.NewSampledSession(cfg, sampler)
	if err != nil {
		return nil, err
	}
	sm, err := sampled.Run(data)
	if err != nil {
		return nil, err
	}

	s := metrics.NewSummary("sampling", "innovation-driven adaptive sampling (future work 5)")
	s.Add("full sensing: % updates", fm.PercentUpdates())
	s.Add("full sensing: avg error", fm.AvgErr())
	s.Add("adaptive: sensing duty cycle %", sm.PercentSensed())
	s.Add("adaptive: % updates (of all steps)", sm.PercentUpdates())
	s.Add("adaptive: avg error", sm.AvgErr())
	s.Add("sensing steps saved", float64(sm.Skipped))
	return s, nil
}

// AdaptSummary quantifies future-work item 2: online model switching on
// a stream whose regime changes (flat → steep ramp → flat), where no
// fixed model is right throughout.
func AdaptSummary() (*metrics.Summary, error) {
	var vals []float64
	for i := 0; i < 600; i++ {
		vals = append(vals, 20)
	}
	v := 20.0
	for i := 0; i < 600; i++ {
		v += 3
		vals = append(vals, v)
	}
	for i := 0; i < 600; i++ {
		vals = append(vals, v)
	}
	data := stream.FromValues(vals, 1)
	const delta = 2.0

	fixed := func(m model.Model) (core.Metrics, error) {
		sess, err := core.NewSession(core.Config{SourceID: "s", Model: m, Delta: delta})
		if err != nil {
			return core.Metrics{}, err
		}
		return sess.Run(data)
	}
	cm, err := fixed(model.Constant(1, 0.05, 0.05))
	if err != nil {
		return nil, err
	}
	lm, err := fixed(model.Linear(1, 1, 0.05, 0.05))
	if err != nil {
		return nil, err
	}

	sel, err := adapt.NewSelector([]model.Model{
		model.Constant(1, 0.05, 0.05),
		model.Linear(1, 1, 0.05, 0.05),
	}, 40, 1.3)
	if err != nil {
		return nil, err
	}
	runner, err := adapt.NewRunner("s", delta, 0, sel)
	if err != nil {
		return nil, err
	}
	am, switches, err := runner.Run(data)
	if err != nil {
		return nil, err
	}

	s := metrics.NewSummary("adapt", "online model switching (future work 2)")
	s.Add("fixed constant: % updates", cm.PercentUpdates())
	s.Add("fixed linear: % updates", lm.PercentUpdates())
	s.Add("adaptive: % updates", am.PercentUpdates())
	s.Add("adaptive: model switches", float64(switches))
	s.Add("adaptive: final model", runner.ActiveModel())
	return s, nil
}

// SynopsisSummary quantifies future-work item 7: storing the power-load
// month under a reconstruction error tolerance.
func SynopsisSummary() (*metrics.Summary, error) {
	data := gen.PowerLoad(gen.DefaultPowerLoad())
	m := example2SinusoidalModelForSynopsis()
	store, err := synopsis.New(m, 50)
	if err != nil {
		return nil, err
	}
	if err := store.AppendAll(data); err != nil {
		return nil, err
	}
	size, err := store.SizeBytes()
	if err != nil {
		return nil, err
	}
	rec, err := store.Reconstruct()
	if err != nil {
		return nil, err
	}
	var maxErr float64
	for i := range data {
		d := data[i].Values[0] - rec[i].Values[0]
		if d < 0 {
			d = -d
		}
		if d > maxErr {
			maxErr = d
		}
	}
	s := metrics.NewSummary("synopsis", "error-bounded stream storage (future work 7)")
	s.Add("readings", store.Len())
	s.Add("corrections stored", store.Corrections())
	s.Add("points kept %", 100*store.CompressionRatio())
	s.Add("encoded bytes", size)
	s.Add("raw bytes (8/value)", len(data)*8)
	s.Add("max reconstruction error", maxErr)
	s.Add("tolerance", store.Tolerance())
	return s, nil
}

func example2SinusoidalModelForSynopsis() model.Model {
	_, sinusoidal := example2Models()
	return sinusoidal
}

func init() {
	register(Experiment{
		ID:       "sampling",
		Title:    "Adaptive sampling from the innovation sequence",
		Expected: "duty cycle well below 100% on the piecewise-linear workload at bounded extra error",
		Run:      func() (Renderable, error) { return SamplingSummary() },
	})
	register(Experiment{
		ID:       "adapt",
		Title:    "Online state-transition switching across regimes",
		Expected: "adaptive runner at or below the best fixed model's update rate, with a handful of switches",
		Run:      func() (Renderable, error) { return AdaptSummary() },
	})
	register(Experiment{
		ID:       "synopsis",
		Title:    "Stream synopsis under reconstruction error tolerance",
		Expected: "month of load stored in a fraction of the points with max error <= tolerance",
		Run:      func() (Renderable, error) { return SynopsisSummary() },
	})
}
