package experiments

import (
	"strings"
	"testing"

	"streamkf/internal/metrics"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "adapt", "energy", "imm", "lifetime", "lossy", "nonlinear", "sampling", "shipall", "synopsis", "table1"}
	ids := IDs()
	if len(ids) != len(want) {
		t.Fatalf("registry has %d experiments %v, want %d", len(ids), ids, len(want))
	}
	for i, id := range want {
		if ids[i] != id {
			t.Fatalf("ids = %v, want %v", ids, want)
		}
	}
	for _, id := range want {
		e, ok := Get(id)
		if !ok {
			t.Fatalf("Get(%q) missing", id)
		}
		if e.Title == "" || e.Expected == "" || e.Run == nil {
			t.Fatalf("experiment %s incompletely registered: %+v", id, e)
		}
	}
	if _, ok := Get("nope"); ok {
		t.Fatal("Get on unknown id returned ok")
	}
}

func TestAllExperimentsRunAndRender(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite in -short mode")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			r, err := e.Run()
			if err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			tbl := r.Table()
			if !strings.Contains(tbl, e.ID) {
				t.Fatalf("%s table missing id header:\n%s", e.ID, tbl)
			}
			if sw, ok := r.(*metrics.Sweep); ok {
				if err := sw.Validate(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestFig4Shape verifies the paper's headline result: at a moderate
// precision width the linear KF model sends far fewer updates than both
// the caching scheme and the constant KF model, which behave alike; the
// advantage shrinks as the precision width grows.
func TestFig4Shape(t *testing.T) {
	updates, _, err := Example1Sweeps([]float64{3, 20})
	if err != nil {
		t.Fatal(err)
	}
	cache3 := updates.Series["caching"][0]
	const3 := updates.Series["constant KF"][0]
	lin3 := updates.Series["linear KF"][0]
	if lin3 > 0.5*cache3 {
		t.Fatalf("at δ=3 linear KF sent %.1f%%, caching %.1f%%: want at least 2x reduction", lin3, cache3)
	}
	if ratio := const3 / cache3; ratio < 0.5 || ratio > 2 {
		t.Fatalf("constant KF (%.1f%%) not comparable to caching (%.1f%%)", const3, cache3)
	}
	// All three converge downwards as delta grows.
	for _, name := range []string{"caching", "constant KF", "linear KF"} {
		lo, hi := updates.Series[name][1], updates.Series[name][0]
		if lo > hi {
			t.Fatalf("%s updates grew with delta: %.1f%% -> %.1f%%", name, hi, lo)
		}
	}
}

// TestFig5Shape verifies the error behaviour: the constant KF tracks the
// caching scheme's average error within a small factor.
func TestFig5Shape(t *testing.T) {
	_, avgErr, err := Example1Sweeps([]float64{3})
	if err != nil {
		t.Fatal(err)
	}
	c := avgErr.Series["caching"][0]
	k := avgErr.Series["constant KF"][0]
	if k > 3*c || c > 3*k {
		t.Fatalf("constant KF error %.2f vs caching %.2f: not comparable", k, c)
	}
}

// TestFig7Shape verifies Example 2: the matched sinusoidal model sends
// no more updates than the linear model, which sends no more than
// caching.
func TestFig7Shape(t *testing.T) {
	updates, _, err := Example2Sweeps([]float64{50})
	if err != nil {
		t.Fatal(err)
	}
	c := updates.Series["caching"][0]
	l := updates.Series["linear KF"][0]
	s := updates.Series["sinusoidal KF"][0]
	if s > l {
		t.Fatalf("sinusoidal KF (%.1f%%) worse than linear (%.1f%%)", s, l)
	}
	if l > c {
		t.Fatalf("linear KF (%.1f%%) worse than caching (%.1f%%)", l, c)
	}
}

// TestFig10Shape verifies the smoothing adherence claim: at F = 1e-9 the
// KF-smoothed series is far closer to the moving average than to the raw
// data; at F = 1e-1 the opposite holds.
func TestFig10Shape(t *testing.T) {
	sw, err := Fig10Sweep([]float64{1e-9, 1e2})
	if err != nil {
		t.Fatal(err)
	}
	maLow := sw.Series["RMS(KF, moving average)"][0]
	rawLow := sw.Series["RMS(KF, raw data)"][0]
	if maLow >= rawLow {
		t.Fatalf("at F=1e-9 KF should hug the moving average: RMS(ma)=%.2f RMS(raw)=%.2f", maLow, rawLow)
	}
	maHigh := sw.Series["RMS(KF, moving average)"][1]
	rawHigh := sw.Series["RMS(KF, raw data)"][1]
	if rawHigh >= maHigh {
		t.Fatalf("at F=100 KF should hug the raw data: RMS(ma)=%.2f RMS(raw)=%.2f", maHigh, rawHigh)
	}
}

// TestFig12Shape verifies monotonicity of updates in F for the constant
// model.
func TestFig12Shape(t *testing.T) {
	fs := []float64{1e-9, 1e-6, 1e-3, 1e-1}
	sw, err := Fig12Sweep(fs)
	if err != nil {
		t.Fatal(err)
	}
	series := sw.Series["constant KF"]
	for i := 1; i < len(series); i++ {
		if series[i] < series[i-1]-1e-9 {
			t.Fatalf("updates not monotone in F: %v", series)
		}
	}
}

// TestTable1Shape verifies the quantified Table 1 demos.
func TestTable1Shape(t *testing.T) {
	s, err := Table1Summary()
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]string{}
	for _, r := range s.Rows() {
		rows[r[0]] = r[1]
	}
	if len(rows) < 10 {
		t.Fatalf("table1 rows = %d, want >= 10", len(rows))
	}
	for _, key := range []string{"[trend] DKF reduction factor", "[shedding] error ratio (sampler/DKF)"} {
		if _, ok := rows[key]; !ok {
			t.Fatalf("missing row %q", key)
		}
	}
}

// TestEnergyShape verifies the energy model yields positive savings in
// the paper's regime.
func TestEnergyShape(t *testing.T) {
	s, err := EnergySummary()
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, r := range s.Rows() {
		if r[0] == "energy savings" {
			found = true
			if strings.HasPrefix(r[1], "-") {
				t.Fatalf("energy savings negative: %s", r[1])
			}
		}
	}
	if !found {
		t.Fatal("missing energy savings row")
	}
}
