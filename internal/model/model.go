// Package model provides the catalogue of stream models from Section 4 of
// the paper: the constant model (Eq. 15), the linear constant-velocity
// model (Eq. 14), higher-order constant-acceleration and jerk models (the
// [P, Ṗ, P̈, P⃛] generalization of §4.1), the sinusoidal model for periodic
// loads (Eq. 17), and the one-state smoothing model whose process noise is
// the user-supplied smoothing factor F (§4.3).
//
// A Model bundles everything the Dual Kalman Filter protocol needs to
// instantiate matched filters at the server and the source: the transition
// function φ_k, measurement matrix H, noise covariances Q and R, and a rule
// for bootstrapping the initial state from the first measurement.
package model

import (
	"fmt"

	"streamkf/internal/kalman"
	"streamkf/internal/mat"
)

// Model describes a linear (possibly time-varying) stream model.
type Model struct {
	// Name identifies the model in logs, metrics and wire messages.
	Name string
	// Dim is n, the number of state variables.
	Dim int
	// MeasDim is m, the number of measured variables.
	MeasDim int
	// Phi returns the state transition matrix for step k.
	Phi kalman.TransitionFunc
	// H is the m x n measurement matrix.
	H *mat.Matrix
	// Q is the n x n process noise covariance.
	Q *mat.Matrix
	// R is the m x m measurement noise covariance.
	R *mat.Matrix
	// Init maps the first measurement to an initial state estimate.
	Init func(z []float64) *mat.Matrix
	// P0 is the initial covariance; nil lets the filter default apply.
	P0 *mat.Matrix
}

// Validate checks internal dimensional consistency.
func (m Model) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("model: empty name")
	}
	if m.Dim <= 0 || m.MeasDim <= 0 {
		return fmt.Errorf("model %s: non-positive dims %d/%d", m.Name, m.Dim, m.MeasDim)
	}
	if m.Phi == nil || m.H == nil || m.Q == nil || m.R == nil || m.Init == nil {
		return fmt.Errorf("model %s: missing Phi/H/Q/R/Init", m.Name)
	}
	if phi := m.Phi(0); phi.Rows() != m.Dim || phi.Cols() != m.Dim {
		return fmt.Errorf("model %s: Phi(0) is %dx%d, want %dx%d", m.Name, phi.Rows(), phi.Cols(), m.Dim, m.Dim)
	}
	if m.H.Rows() != m.MeasDim || m.H.Cols() != m.Dim {
		return fmt.Errorf("model %s: H is %dx%d, want %dx%d", m.Name, m.H.Rows(), m.H.Cols(), m.MeasDim, m.Dim)
	}
	if m.Q.Rows() != m.Dim || m.Q.Cols() != m.Dim {
		return fmt.Errorf("model %s: Q is %dx%d, want %dx%d", m.Name, m.Q.Rows(), m.Q.Cols(), m.Dim, m.Dim)
	}
	if m.R.Rows() != m.MeasDim || m.R.Cols() != m.MeasDim {
		return fmt.Errorf("model %s: R is %dx%d, want %dx%d", m.Name, m.R.Rows(), m.R.Cols(), m.MeasDim, m.MeasDim)
	}
	return nil
}

// NewFilter instantiates a Kalman filter for this model, bootstrapped
// from the first measurement z0.
func (m Model) NewFilter(z0 []float64) (*kalman.Filter, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if len(z0) != m.MeasDim {
		return nil, fmt.Errorf("model %s: initial measurement has %d values, want %d", m.Name, len(z0), m.MeasDim)
	}
	return kalman.New(kalman.Config{
		Phi: m.Phi,
		H:   m.H,
		Q:   m.Q,
		R:   m.R,
		X0:  m.Init(z0),
		P0:  m.P0,
	})
}
