package model

import (
	"fmt"
	"math"

	"streamkf/internal/kalman"
	"streamkf/internal/mat"
)

// Nonlinear describes a non-linear stream model for the extended Kalman
// filter (paper §3.2 cases 2–3, future work item 3): state propagation
// and/or measurement are arbitrary differentiable functions, linearized
// at the current estimate.
type Nonlinear struct {
	// Name identifies the model.
	Name string
	// Dim is the number of state variables.
	Dim int
	// MeasDim is the number of measured variables.
	MeasDim int
	// F propagates the state: x_{k+1} = F(k, x_k).
	F kalman.StateFunc
	// FJac is ∂F/∂x at (k, x).
	FJac kalman.JacobianFunc
	// H maps state to expected measurement.
	H kalman.MeasFunc
	// HJac is ∂H/∂x at x.
	HJac kalman.JacobianFunc
	// Q is the process noise covariance (Dim x Dim).
	Q *mat.Matrix
	// R is the measurement noise covariance (MeasDim x MeasDim).
	R *mat.Matrix
	// Init bootstraps the state from the first measurement.
	Init func(z []float64) *mat.Matrix
	// P0 is the initial covariance; nil uses the EKF default.
	P0 *mat.Matrix
}

// Validate checks dimensional consistency where statically possible.
func (m Nonlinear) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("model: nonlinear model has empty name")
	}
	if m.Dim <= 0 || m.MeasDim <= 0 {
		return fmt.Errorf("model %s: non-positive dims %d/%d", m.Name, m.Dim, m.MeasDim)
	}
	if m.F == nil || m.FJac == nil || m.H == nil || m.HJac == nil || m.Init == nil {
		return fmt.Errorf("model %s: missing F/FJac/H/HJac/Init", m.Name)
	}
	if m.Q == nil || m.Q.Rows() != m.Dim || m.Q.Cols() != m.Dim {
		return fmt.Errorf("model %s: Q must be %dx%d", m.Name, m.Dim, m.Dim)
	}
	if m.R == nil || m.R.Rows() != m.MeasDim || m.R.Cols() != m.MeasDim {
		return fmt.Errorf("model %s: R must be %dx%d", m.Name, m.MeasDim, m.MeasDim)
	}
	return nil
}

// NewEKF instantiates an extended Kalman filter bootstrapped from z0.
func (m Nonlinear) NewEKF(z0 []float64) (*kalman.EKF, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if len(z0) != m.MeasDim {
		return nil, fmt.Errorf("model %s: initial measurement has %d values, want %d", m.Name, len(z0), m.MeasDim)
	}
	return kalman.NewEKF(kalman.EKFConfig{
		F: m.F, FJac: m.FJac, H: m.H, HJac: m.HJac,
		Q: m.Q, R: m.R,
		X0: m.Init(z0), P0: m.P0,
	})
}

// Pendulum returns a reference non-linear model: a damped pendulum with
// state [angle, angular velocity], measuring the angle. The propagation
// uses semi-implicit (symplectic) Euler, which does not gain energy
// numerically the way explicit Euler does:
//
//	ω' = (1 − damping·dt)·ω − (g/L)·sin(θ)·dt
//	θ' = θ + ω'·dt
//
// It is non-linear in θ. A useful test vehicle for the EKF-based DKF.
func Pendulum(dt, gOverL, damping, q, r float64) Nonlinear {
	return Nonlinear{
		Name:    "pendulum",
		Dim:     2,
		MeasDim: 1,
		F: func(_ int, x *mat.Matrix) *mat.Matrix {
			th, om := x.At(0, 0), x.At(1, 0)
			om2 := (1-damping*dt)*om - gOverL*math.Sin(th)*dt
			return mat.Vec(th+om2*dt, om2)
		},
		FJac: func(_ int, x *mat.Matrix) *mat.Matrix {
			th := x.At(0, 0)
			// ∂ω'/∂θ = −g·dt·cosθ, ∂ω'/∂ω = 1 − damping·dt,
			// ∂θ'/∂θ = 1 − g·dt²·cosθ, ∂θ'/∂ω = (1 − damping·dt)·dt.
			dOmDth := -gOverL * math.Cos(th) * dt
			dOmDom := 1 - damping*dt
			return mat.FromRows([][]float64{
				{1 + dOmDth*dt, dOmDom * dt},
				{dOmDth, dOmDom},
			})
		},
		H: func(x *mat.Matrix) *mat.Matrix { return mat.Vec(x.At(0, 0)) },
		HJac: func(_ int, _ *mat.Matrix) *mat.Matrix {
			return mat.FromRows([][]float64{{1, 0}})
		},
		Q: mat.ScaledIdentity(2, q),
		R: mat.Diag(r),
		Init: func(z []float64) *mat.Matrix {
			return mat.Vec(z[0], 0)
		},
	}
}
