package model

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"streamkf/internal/kalman"
	"streamkf/internal/mat"
)

func TestCatalogValidates(t *testing.T) {
	models := []Model{
		Constant(1, 0.05, 0.05),
		Constant(3, 0.05, 0.05),
		Linear(2, 0.1, 0.05, 0.05),
		Acceleration(1, 0.1, 0.05, 0.05),
		Jerk(2, 0.1, 0.05, 0.05),
		Sinusoidal(18/math.Pi, math.Pi, 1, 0.05, 0.05),
		Smoothing(1e-7, 0.5),
	}
	for _, m := range models {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestValidateRejectsBroken(t *testing.T) {
	base := func() Model { return Constant(2, 0.1, 0.1) }
	cases := map[string]func(*Model){
		"empty name": func(m *Model) { m.Name = "" },
		"zero dim":   func(m *Model) { m.Dim = 0 },
		"nil phi":    func(m *Model) { m.Phi = nil },
		"nil init":   func(m *Model) { m.Init = nil },
		"bad H":      func(m *Model) { m.H = mat.New(2, 5) },
		"bad Q":      func(m *Model) { m.Q = mat.Identity(5) },
		"bad R":      func(m *Model) { m.R = mat.Identity(5) },
		"bad phi":    func(m *Model) { m.Phi = kalman.Static(mat.Identity(7)) },
	}
	for name, mutate := range cases {
		m := base()
		mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted broken model", name)
		}
	}
}

func TestLinearMatchesPaperEq14(t *testing.T) {
	// The paper's Eq. 14: 4x4 with dt in the (0,1) and (2,3) slots.
	dt := 0.25
	m := Linear(2, dt, 0.05, 0.05)
	want := mat.FromRows([][]float64{
		{1, dt, 0, 0},
		{0, 1, 0, 0},
		{0, 0, 1, dt},
		{0, 0, 0, 1},
	})
	if !mat.Equal(m.Phi(0), want) {
		t.Fatalf("Linear phi = %v, want %v", m.Phi(0), want)
	}
	// Eq. 16: H picks out positions.
	wantH := mat.FromRows([][]float64{
		{1, 0, 0, 0},
		{0, 0, 1, 0},
	})
	if !mat.Equal(m.H, wantH) {
		t.Fatalf("Linear H = %v, want %v", m.H, wantH)
	}
}

func TestConstantMatchesPaperEq15(t *testing.T) {
	m := Constant(2, 0.05, 0.05)
	if !mat.Equal(m.Phi(0), mat.Identity(2)) {
		t.Fatalf("Constant phi = %v, want I", m.Phi(0))
	}
	if !mat.Equal(m.Q, mat.ScaledIdentity(2, 0.05)) {
		t.Fatalf("Constant Q = %v", m.Q)
	}
}

func TestJerkTransitionTaylorTerms(t *testing.T) {
	dt := 2.0
	m := Jerk(1, dt, 0.01, 0.01)
	phi := m.Phi(0)
	// P_k = P + Ṗδt + ½P̈δt² + ⅙P⃛δt³.
	wants := []float64{1, dt, dt * dt / 2, dt * dt * dt / 6}
	for j, w := range wants {
		if got := phi.At(0, j); math.Abs(got-w) > 1e-12 {
			t.Fatalf("phi[0][%d] = %v, want %v", j, got, w)
		}
	}
}

func TestSinusoidalTimeVarying(t *testing.T) {
	m := Sinusoidal(18/math.Pi, math.Pi, 1, 0.05, 0.05)
	p0 := m.Phi(0).At(0, 1)
	p1 := m.Phi(1).At(0, 1)
	if p0 == p1 {
		t.Fatal("sinusoidal phi not time-varying")
	}
	if math.Abs(p0-math.Cos(math.Pi)) > 1e-12 {
		t.Fatalf("phi(0)[0][1] = %v, want cos(θ) = -1", p0)
	}
}

func TestInitBootstrapsFromMeasurement(t *testing.T) {
	m := Linear(2, 0.1, 0.05, 0.05)
	x := m.Init([]float64{7, 9})
	if x.At(0, 0) != 7 || x.At(2, 0) != 9 || x.At(1, 0) != 0 || x.At(3, 0) != 0 {
		t.Fatalf("Init = %v", x)
	}
}

func TestNewFilterRejectsBadBootstrap(t *testing.T) {
	m := Linear(2, 0.1, 0.05, 0.05)
	if _, err := m.NewFilter([]float64{1}); err == nil {
		t.Fatal("NewFilter accepted wrong measurement arity")
	}
	broken := m
	broken.Q = mat.Identity(3)
	if _, err := broken.NewFilter([]float64{1, 2}); err == nil {
		t.Fatal("NewFilter accepted invalid model")
	}
}

func TestLinearFilterTracksTrajectory(t *testing.T) {
	// End-to-end: a Linear(2) filter built via the model must track a 2-D
	// ramp and extrapolate it.
	m := Linear(2, 1, 1e-4, 0.05)
	f, err := m.NewFilter([]float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 80; k++ {
		if err := f.Step(mat.Vec(2*float64(k), -1*float64(k))); err != nil {
			t.Fatal(err)
		}
	}
	f.Predict()
	pred := f.PredictedMeasurement()
	if math.Abs(pred.At(0, 0)-2*81) > 1 || math.Abs(pred.At(1, 0)-(-81)) > 1 {
		t.Fatalf("extrapolation = %v, want ~[162, -81]", pred)
	}
}

func TestSinusoidalFilterTracksSine(t *testing.T) {
	// Verify the §4.2 model locks onto α·sin(ωk+θ).
	omega, theta, alpha := 0.1, 0.5, 10.0
	gamma := alpha * omega // d/dk α sin(ωk+θ) = αω cos(ωk+θ)
	m := Sinusoidal(omega, theta, gamma, 1e-6, 0.01)
	truth := func(k int) float64 { return alpha * math.Sin(omega*float64(k)+theta) }
	f, err := m.NewFilter([]float64{truth(0)})
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 400; k++ {
		if err := f.Step(mat.Vec(truth(k))); err != nil {
			t.Fatal(err)
		}
	}
	// One-step extrapolation without correction.
	f.Predict()
	if got, want := f.PredictedMeasurement().At(0, 0), truth(401); math.Abs(got-want) > 0.5 {
		t.Fatalf("sinusoidal extrapolation = %v, want ~%v", got, want)
	}
}

func TestSmoothingFactorControlsVariance(t *testing.T) {
	// Smaller F must produce a smoother (lower-variance) output on white
	// noise — the paper's Figure 12 mechanism.
	variance := func(F float64) float64 {
		rng := rand.New(rand.NewSource(5))
		m := Smoothing(F, 1.0)
		f, err := m.NewFilter([]float64{0})
		if err != nil {
			t.Fatal(err)
		}
		var prev, sumSq float64
		const n = 2000
		for i := 0; i < n; i++ {
			if err := f.Step(mat.Vec(rng.NormFloat64() * 10)); err != nil {
				t.Fatal(err)
			}
			cur := f.State().At(0, 0)
			d := cur - prev
			sumSq += d * d
			prev = cur
		}
		return sumSq / n
	}
	smooth := variance(1e-9)
	rough := variance(1e-1)
	if smooth >= rough {
		t.Fatalf("variance(F=1e-9) = %v >= variance(F=1e-1) = %v", smooth, rough)
	}
}

func TestCustomDefaultsInit(t *testing.T) {
	m := Custom("custom", kalman.Static(mat.Identity(2)),
		mat.FromRows([][]float64{{1, 0}}), mat.ScaledIdentity(2, 0.1), mat.Diag(0.1), nil)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	x := m.Init([]float64{42})
	if x.At(0, 0) != 42 || x.At(1, 0) != 0 {
		t.Fatalf("Custom default Init = %v", x)
	}
}

// Property: every polynomial model's transition matrix has ones on the
// diagonal and is block upper-triangular (states never mix across axes).
func TestPolynomialStructureProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		axes := 1 + rng.Intn(3)
		order := 2 + rng.Intn(3)
		dt := 0.01 + rng.Float64()
		m := polynomial("p", axes, order, dt, 0.1, 0.1)
		phi := m.Phi(0)
		for i := 0; i < m.Dim; i++ {
			if phi.At(i, i) != 1 {
				return false
			}
			for j := 0; j < m.Dim; j++ {
				sameBlock := i/order == j/order
				if !sameBlock && phi.At(i, j) != 0 {
					return false
				}
				if sameBlock && j < i && phi.At(i, j) != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
