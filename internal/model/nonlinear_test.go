package model

import (
	"math"
	"testing"

	"streamkf/internal/mat"
)

func TestNonlinearValidate(t *testing.T) {
	good := Pendulum(0.01, 9.8, 0.05, 1e-6, 1e-4)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid nonlinear model rejected: %v", err)
	}
	cases := map[string]func(*Nonlinear){
		"empty name": func(m *Nonlinear) { m.Name = "" },
		"zero dim":   func(m *Nonlinear) { m.Dim = 0 },
		"nil F":      func(m *Nonlinear) { m.F = nil },
		"nil FJac":   func(m *Nonlinear) { m.FJac = nil },
		"nil H":      func(m *Nonlinear) { m.H = nil },
		"nil HJac":   func(m *Nonlinear) { m.HJac = nil },
		"nil Init":   func(m *Nonlinear) { m.Init = nil },
		"bad Q":      func(m *Nonlinear) { m.Q = mat.Identity(3) },
		"bad R":      func(m *Nonlinear) { m.R = mat.Identity(2) },
		"nil Q":      func(m *Nonlinear) { m.Q = nil },
	}
	for name, mutate := range cases {
		m := Pendulum(0.01, 9.8, 0.05, 1e-6, 1e-4)
		mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestNonlinearNewEKF(t *testing.T) {
	m := Pendulum(0.01, 9.8, 0.05, 1e-6, 1e-4)
	if _, err := m.NewEKF([]float64{1, 2}); err == nil {
		t.Fatal("accepted wrong measurement arity")
	}
	e, err := m.NewEKF([]float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.State().At(0, 0); got != 0.5 {
		t.Fatalf("bootstrap angle = %v, want 0.5", got)
	}
}

func TestPendulumJacobianConsistency(t *testing.T) {
	// Finite-difference check of the analytic Jacobian at a few points.
	m := Pendulum(0.02, 9.8, 0.05, 1e-6, 1e-4)
	const eps = 1e-6
	for _, pt := range [][2]float64{{0.3, 0.1}, {-1.1, 2.0}, {2.9, -0.7}} {
		x := mat.Vec(pt[0], pt[1])
		jac := m.FJac(0, x)
		for j := 0; j < 2; j++ {
			xp := x.Clone()
			xp.Set(j, 0, xp.At(j, 0)+eps)
			fp := m.F(0, xp)
			f0 := m.F(0, x)
			for i := 0; i < 2; i++ {
				numeric := (fp.At(i, 0) - f0.At(i, 0)) / eps
				if d := math.Abs(numeric - jac.At(i, j)); d > 1e-4 {
					t.Fatalf("Jacobian[%d][%d] at %v: analytic %v vs numeric %v", i, j, pt, jac.At(i, j), numeric)
				}
			}
		}
	}
}

func TestPendulumEnergyDecays(t *testing.T) {
	// With damping, the model trajectory must lose amplitude over time.
	m := Pendulum(0.02, 9.8, 0.1, 1e-6, 1e-4)
	x := mat.Vec(1.0, 0)
	var firstPeak, lastPeak float64
	prev := x.At(0, 0)
	rising := false
	for k := 0; k < 5000; k++ {
		x = m.F(k, x)
		cur := x.At(0, 0)
		if cur < prev && rising { // local max
			if firstPeak == 0 {
				firstPeak = prev
			}
			lastPeak = prev
		}
		rising = cur > prev
		prev = cur
	}
	if firstPeak == 0 || lastPeak >= firstPeak {
		t.Fatalf("damped pendulum amplitude did not decay: first %v, last %v", firstPeak, lastPeak)
	}
}
