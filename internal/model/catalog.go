package model

import (
	"math"

	"streamkf/internal/kalman"
	"streamkf/internal/mat"
)

// Constant returns the paper's constant model (Eq. 15): the best
// prediction for the future is the latest value. With axes measured
// dimensions the state is the measurement itself and φ = I. This model is
// "conceptually similar to the cached approximation value model" (§5.1)
// and serves as the DKF worst case.
func Constant(axes int, q, r float64) Model {
	return Model{
		Name:    "constant",
		Dim:     axes,
		MeasDim: axes,
		Phi:     kalman.Static(mat.Identity(axes)),
		H:       mat.Identity(axes),
		Q:       mat.ScaledIdentity(axes, q),
		R:       mat.ScaledIdentity(axes, r),
		Init:    func(z []float64) *mat.Matrix { return mat.Vec(z...) },
	}
}

// Linear returns the constant-velocity model of §4.1 (Eq. 13/14/16):
// per measured axis the state holds [position, rate-of-change] with
//
//	p_k = p_{k-1} + ṗ_{k-1}·δt,   ṗ_k = ṗ_{k-1}.
//
// State ordering follows the paper: [x, ẋ, y, ẏ, ...]. Only positions are
// measured. dt is the sampling interval δt.
func Linear(axes int, dt, q, r float64) Model {
	return polynomial("linear", axes, 2, dt, q, r)
}

// Acceleration returns a constant-acceleration model: per axis the state
// is [p, ṗ, p̈] with the second-order Taylor propagation. Useful for
// "jerky" trajectories per §4.1's generalization discussion.
func Acceleration(axes int, dt, q, r float64) Model {
	return polynomial("acceleration", axes, 3, dt, q, r)
}

// Jerk returns the third-order model [P, Ṗ, P̈, P⃛] with transition
// P_k = P_{k-1} + Ṗδt + ½P̈δt² + ⅙P⃛δt³, exactly the generalization
// spelled out in §4.1.
func Jerk(axes int, dt, q, r float64) Model {
	return polynomial("jerk", axes, 4, dt, q, r)
}

// polynomial builds an order-state Taylor-series model: order=2 is
// constant velocity, 3 constant acceleration, 4 constant jerk.
func polynomial(name string, axes, order int, dt, q, r float64) Model {
	dim := axes * order
	block := mat.Identity(order)
	// block[i][j] = dt^(j-i) / (j-i)! for j >= i.
	for i := 0; i < order; i++ {
		f := 1.0
		for j := i + 1; j < order; j++ {
			f *= dt / float64(j-i)
			block.Set(i, j, f)
		}
	}
	phi := mat.New(dim, dim)
	h := mat.New(axes, dim)
	for a := 0; a < axes; a++ {
		base := a * order
		for i := 0; i < order; i++ {
			for j := 0; j < order; j++ {
				phi.Set(base+i, base+j, block.At(i, j))
			}
		}
		h.Set(a, base, 1)
	}
	return Model{
		Name:    name,
		Dim:     dim,
		MeasDim: axes,
		Phi:     kalman.Static(phi),
		H:       h,
		Q:       mat.ScaledIdentity(dim, q),
		R:       mat.ScaledIdentity(axes, r),
		Init: func(z []float64) *mat.Matrix {
			x := mat.New(dim, 1)
			for a := 0; a < axes; a++ {
				x.Set(a*order, 0, z[a])
			}
			return x
		},
	}
}

// Sinusoidal returns the two-state periodic model of §4.2 (Eq. 17):
//
//	x_k = x_{k-1} + γ·cos(ωk + θ)·s_{k-1}
//	s_k = s_{k-1}
//
// where x is the load value and s the rate of change of the sinusoidal
// component. The transition matrix is time-varying through k. Parameters
// follow the paper's experiment: ω = 18/π, θ = π for the power-load data.
func Sinusoidal(omega, theta, gamma, q, r float64) Model {
	return Model{
		Name:    "sinusoidal",
		Dim:     2,
		MeasDim: 1,
		Phi: func(k int) *mat.Matrix {
			return mat.FromRows([][]float64{
				{1, gamma * math.Cos(omega*float64(k)+theta)},
				{0, 1},
			})
		},
		H: mat.FromRows([][]float64{{1, 0}}),
		Q: mat.ScaledIdentity(2, q),
		R: mat.Diag(r),
		Init: func(z []float64) *mat.Matrix {
			return mat.Vec(z[0], 1)
		},
	}
}

// Smoothing returns the one-state smoothing model of §4.3: φ = [1], and
// the process noise covariance is the user smoothing factor F. Small F
// means the filter trusts its flat model and heavily smooths the input;
// large F lets the output follow the raw data. r is the assumed
// measurement noise variance.
func Smoothing(f, r float64) Model {
	return Model{
		Name:    "smoothing",
		Dim:     1,
		MeasDim: 1,
		Phi:     kalman.Static(mat.Identity(1)),
		H:       mat.Identity(1),
		Q:       mat.Diag(f),
		R:       mat.Diag(r),
		Init:    func(z []float64) *mat.Matrix { return mat.Vec(z[0]) },
	}
}

// Custom wraps caller-supplied matrices into a Model. phi may be
// time-varying. init may be nil, in which case measured dimensions are
// copied into the leading state entries (requires Dim >= MeasDim).
func Custom(name string, phi kalman.TransitionFunc, h, q, r *mat.Matrix, init func(z []float64) *mat.Matrix) Model {
	dim := q.Rows()
	measDim := r.Rows()
	if init == nil {
		init = func(z []float64) *mat.Matrix {
			x := mat.New(dim, 1)
			for i := 0; i < measDim && i < dim; i++ {
				x.Set(i, 0, z[i])
			}
			return x
		}
	}
	return Model{
		Name:    name,
		Dim:     dim,
		MeasDim: measDim,
		Phi:     phi,
		H:       h,
		Q:       q,
		R:       r,
		Init:    init,
	}
}
