package wal

import (
	"time"

	"streamkf/internal/telemetry"
)

// Instruments receives the log's operational telemetry. Any field (or
// the whole struct) may be nil; recording into nil instruments is a
// no-op, matching the internal/telemetry convention.
type Instruments struct {
	// RecordsAppended counts records accepted by Append.
	RecordsAppended *telemetry.Counter
	// BytesAppended counts framed bytes written (payload + overhead).
	BytesAppended *telemetry.Counter
	// Fsyncs counts explicit fsync barriers; FsyncNanos is their
	// latency distribution.
	Fsyncs     *telemetry.Counter
	FsyncNanos *telemetry.Histogram
	// Segments gauges the current number of segment files.
	Segments *telemetry.Gauge
	// Checkpoints counts checkpoints written; CheckpointNanos is the
	// end-to-end checkpoint latency distribution.
	Checkpoints     *telemetry.Counter
	CheckpointNanos *telemetry.Histogram
	// RecoveryNanos gauges the duration of the last recovery
	// (checkpoint restore + replay); RecoveredRecords the number of
	// records replayed by it.
	RecoveryNanos    *telemetry.Gauge
	RecoveredRecords *telemetry.Gauge
}

// NewInstruments registers the WAL metric family on reg.
func NewInstruments(reg *telemetry.Registry) *Instruments {
	return &Instruments{
		RecordsAppended:  reg.Counter("streamkf_wal_records_appended_total", "Records appended to the write-ahead log."),
		BytesAppended:    reg.Counter("streamkf_wal_bytes_appended_total", "Framed bytes appended to the write-ahead log."),
		Fsyncs:           reg.Counter("streamkf_wal_fsyncs_total", "fsync barriers issued by the write-ahead log."),
		FsyncNanos:       reg.Histogram("streamkf_wal_fsync_duration_nanos", "Latency of write-ahead log fsync barriers."),
		Segments:         reg.Gauge("streamkf_wal_segments", "Write-ahead log segment files currently on disk."),
		Checkpoints:      reg.Counter("streamkf_wal_checkpoints_total", "Checkpoints written."),
		CheckpointNanos:  reg.Histogram("streamkf_wal_checkpoint_duration_nanos", "End-to-end checkpoint latency."),
		RecoveryNanos:    reg.Gauge("streamkf_wal_recovery_duration_nanos", "Duration of the last crash recovery."),
		RecoveredRecords: reg.Gauge("streamkf_wal_recovered_records", "WAL records replayed by the last crash recovery."),
	}
}

func (i *Instruments) observeAppend(frameBytes int) {
	if i == nil {
		return
	}
	i.RecordsAppended.Inc()
	i.BytesAppended.Add(int64(frameBytes))
}

func (i *Instruments) observeFsync(d time.Duration) {
	if i == nil {
		return
	}
	i.Fsyncs.Inc()
	i.FsyncNanos.Observe(d.Nanoseconds())
}

func (i *Instruments) observeSegments(n int) {
	if i == nil {
		return
	}
	i.Segments.SetInt(int64(n))
}

// ObserveCheckpoint records one completed checkpoint.
func (i *Instruments) ObserveCheckpoint(d time.Duration) {
	if i == nil {
		return
	}
	i.Checkpoints.Inc()
	i.CheckpointNanos.Observe(d.Nanoseconds())
}

// ObserveRecovery records the outcome of a completed recovery.
func (i *Instruments) ObserveRecovery(d time.Duration, records int64) {
	if i == nil {
		return
	}
	i.RecoveryNanos.SetInt(d.Nanoseconds())
	i.RecoveredRecords.SetInt(records)
}
