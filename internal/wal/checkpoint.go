package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"streamkf/internal/dsms/wire"
)

// Checkpoint file. A checkpoint is one atomically-replaced file holding
// an opaque snapshot payload (internal/dsms encodes the full per-stream
// filter state into it):
//
//	[4]byte  magic    "DKFC"
//	uint8    version  (checkpointVersion)
//	[3]byte  reserved (zero)
//	uint32 LE length  (payload bytes)
//	[]byte   payload
//	uint32 LE crc     (CRC32C over everything before it)
//
// WriteCheckpoint writes to a temp file, fsyncs it, renames it over
// CheckpointName and fsyncs the directory — so at every instant the
// directory holds either the old complete checkpoint or the new one,
// never a partial write. A corrupt checkpoint (torn rename is impossible
// on POSIX, but a disk can still lie) fails recovery loudly rather than
// silently bootstrapping fresh state.

// CheckpointName is the checkpoint's file name within the data
// directory.
const CheckpointName = "state.ckpt"

// ckptMagic opens the checkpoint file ("DKF Checkpoint").
var ckptMagic = [4]byte{'D', 'K', 'F', 'C'}

const (
	checkpointVersion   = 1
	checkpointHeaderLen = 12 // magic + version + reserved + length
)

// MaxCheckpoint caps the accepted checkpoint payload, bounding recovery
// memory against a corrupt length field. 256 MiB holds tens of millions
// of stream snapshots.
const MaxCheckpoint = 256 << 20

// WriteCheckpoint atomically replaces dir's checkpoint with payload.
func WriteCheckpoint(dir string, payload []byte) error {
	if len(payload) > MaxCheckpoint {
		return fmt.Errorf("wal: checkpoint payload of %d bytes exceeds %d", len(payload), MaxCheckpoint)
	}
	buf := make([]byte, 0, checkpointHeaderLen+len(payload)+4)
	buf = append(buf, ckptMagic[:]...)
	buf = append(buf, checkpointVersion, 0, 0, 0)
	buf = wire.AppendU32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	buf = wire.AppendU32(buf, crc32.Checksum(buf, castagnoli))

	tmp := filepath.Join(dir, CheckpointName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, CheckpointName)); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// ReadCheckpoint returns the checkpoint payload, or (nil, nil) when dir
// has no checkpoint yet. Validation failures wrap ErrCorrupt.
func ReadCheckpoint(dir string) ([]byte, error) {
	raw, err := os.ReadFile(filepath.Join(dir, CheckpointName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if len(raw) < checkpointHeaderLen+4 {
		return nil, fmt.Errorf("%w: checkpoint too short (%d bytes)", ErrCorrupt, len(raw))
	}
	if [4]byte(raw[:4]) != ckptMagic {
		return nil, fmt.Errorf("%w: bad checkpoint magic", ErrCorrupt)
	}
	if raw[4] != checkpointVersion {
		return nil, fmt.Errorf("wal: checkpoint version %d, this build reads %d", raw[4], checkpointVersion)
	}
	n := binary.LittleEndian.Uint32(raw[8:12])
	if n > MaxCheckpoint || int64(len(raw)) != int64(checkpointHeaderLen)+int64(n)+4 {
		return nil, fmt.Errorf("%w: checkpoint length field %d does not match file size %d", ErrCorrupt, n, len(raw))
	}
	body := raw[:len(raw)-4]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(raw[len(raw)-4:]) {
		return nil, fmt.Errorf("%w: checkpoint crc mismatch", ErrCorrupt)
	}
	return body[checkpointHeaderLen:], nil
}
