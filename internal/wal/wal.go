// Package wal implements the durable, crash-safe persistence layer of
// the DKF server: an append-only, segmented write-ahead log plus an
// atomically-replaced checkpoint file.
//
// The paper's procedure-caching architecture makes the server's cached
// artifact a live Kalman filter that must stay byte-identical to the
// source's mirror (KFs ≡ KFm). A crash therefore cannot be repaired by
// re-reading a table — the filter trajectory itself must be recovered.
// The update stream is the minimal sufficient statistic for that
// trajectory (the same insight internal/synopsis exploits in memory), so
// the log records *updates*, not readings: durability costs bytes per
// transmitted update, and suppressed readings are free (they reappear at
// replay as the same sequence gaps the live server saw).
//
// Records reuse the internal/dsms/wire encoding (u32 LE length, u8 tag,
// payload) with a trailing CRC32C, so the server's ingest path logs the
// exact payload bytes it received from the network without re-encoding,
// and the append hot path allocates nothing. Recovery = read checkpoint
// (if any) + replay remaining segments, tolerating a torn record at the
// tail of the last segment only.
//
// The log itself is payload-agnostic: record tags and their layouts
// belong to the caller (internal/dsms defines the server's).
package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// SyncPolicy selects when appended records are forced to stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: an acknowledged update is a
	// durable update. Highest latency, zero loss window.
	SyncAlways SyncPolicy = iota
	// SyncInterval buffers appends and fsyncs on a timer (Options.
	// SyncEvery): bounded loss window, near-zero append overhead.
	SyncInterval
	// SyncOff never fsyncs except at rotation, checkpoint and Close:
	// durability only at those barriers. For benchmarks and tests.
	SyncOff
)

// String names the policy as accepted by ParseSyncPolicy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncOff:
		return "off"
	default:
		return fmt.Sprintf("syncpolicy(%d)", int(p))
	}
}

// ParseSyncPolicy parses the -fsync flag values.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "off":
		return SyncOff, nil
	default:
		return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or off)", s)
	}
}

// Options configures a Log.
type Options struct {
	// SegmentBytes rotates the active segment once it exceeds this many
	// bytes. <= 0 selects 64 MiB.
	SegmentBytes int64
	// Sync is the fsync policy; the zero value is SyncAlways.
	Sync SyncPolicy
	// SyncEvery is the SyncInterval flush period. <= 0 selects 50ms.
	SyncEvery time.Duration
	// Ins receives append/fsync/segment telemetry; nil disables.
	Ins *Instruments
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 50 * time.Millisecond
	}
	if o.Ins == nil {
		o.Ins = &Instruments{}
	}
	return o
}

// Log is an append-only segmented write-ahead log in one directory.
// Append/Sync/Rotate are safe for concurrent use; Replay is for the
// recovery phase before appending begins.
type Log struct {
	dir  string
	opts Options

	mu      sync.Mutex
	f       *os.File // active segment
	w       *segmentWriter
	seg     int   // active segment index
	size    int64 // bytes in the active segment
	scratch []byte
	closed  bool

	flushStop chan struct{}
	flushDone chan struct{}
}

// segmentWriter is a minimal buffered writer whose buffer the Log owns,
// so append stays allocation-free and flush boundaries are explicit.
type segmentWriter struct {
	f   *os.File
	buf []byte
}

func (w *segmentWriter) write(p []byte) error {
	if len(w.buf)+len(p) > cap(w.buf) {
		if err := w.flush(); err != nil {
			return err
		}
	}
	if len(p) > cap(w.buf) {
		_, err := w.f.Write(p)
		return err
	}
	w.buf = append(w.buf, p...)
	return nil
}

func (w *segmentWriter) flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	_, err := w.f.Write(w.buf)
	w.buf = w.buf[:0]
	return err
}

// Open opens (creating if necessary) the log in dir. If segments exist,
// the tail segment is scanned and any torn final record is truncated
// away before the log accepts new appends, so a crashed process's
// partial write can never corrupt records appended after recovery.
// Call Replay before the first Append to recover state.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts, scratch: make([]byte, 0, 512)}

	idxs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	if len(idxs) == 0 {
		if err := l.createSegment(1); err != nil {
			return nil, err
		}
	} else {
		last := idxs[len(idxs)-1]
		path := filepath.Join(dir, segmentName(last))
		validLen, err := scanSegment(path, true, nil)
		if err != nil {
			return nil, err
		}
		f, err := os.OpenFile(path, os.O_RDWR, 0o644)
		if err != nil {
			return nil, err
		}
		if validLen < segmentHeaderLen {
			// Crash between segment creation and header write: rebuild
			// the header in place.
			if err := f.Truncate(0); err != nil {
				f.Close()
				return nil, err
			}
			if _, err := f.Write(segmentHeader()); err != nil {
				f.Close()
				return nil, err
			}
			validLen = segmentHeaderLen
		} else if err := f.Truncate(validLen); err != nil {
			f.Close()
			return nil, err
		}
		if _, err := f.Seek(validLen, 0); err != nil {
			f.Close()
			return nil, err
		}
		l.f = f
		l.w = &segmentWriter{f: f, buf: make([]byte, 0, 1<<16)}
		l.seg = last
		l.size = validLen
	}
	l.opts.Ins.observeSegments(l.segmentCountLocked())

	if opts.Sync == SyncInterval {
		l.flushStop = make(chan struct{})
		l.flushDone = make(chan struct{})
		go l.flushLoop()
	}
	return l, nil
}

// createSegment starts segment idx as the active segment. Caller holds
// l.mu (or is Open, before the log is shared).
func (l *Log) createSegment(idx int) error {
	path := filepath.Join(l.dir, segmentName(idx))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(segmentHeader()); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	if l.w == nil {
		l.w = &segmentWriter{f: f, buf: make([]byte, 0, 1<<16)}
	} else {
		l.w.f = f
		l.w.buf = l.w.buf[:0]
	}
	l.seg = idx
	l.size = segmentHeaderLen
	return nil
}

// Append durably (per the sync policy) appends one record. The payload
// is copied into the log's scratch buffer, so the caller may reuse it
// immediately. Steady-state appends allocate nothing.
func (l *Log) Append(tag byte, payload []byte) error {
	if 1+len(payload) > MaxRecord {
		return fmt.Errorf("wal: record payload of %d bytes exceeds %d", len(payload), MaxRecord-1)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errClosed
	}
	if l.size >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	l.scratch = appendRecord(l.scratch[:0], tag, payload)
	if err := l.w.write(l.scratch); err != nil {
		return err
	}
	l.size += int64(len(l.scratch))
	l.opts.Ins.observeAppend(len(l.scratch))
	if l.opts.Sync == SyncAlways {
		return l.syncLocked()
	}
	return nil
}

var errClosed = errors.New("wal: log is closed")

// AppendBatch appends records under a single lock acquisition and, under
// SyncAlways, a single fsync covering the whole batch — the group-commit
// path for the shard ingest engine, which logs one record per applied
// update but commits once per drained batch. Records land in slice
// order; payloads may alias a caller-owned arena and are copied out
// before return. On error, records before the failure may have been
// written (the same partial-durability window a crash leaves, and the
// replay path already tolerates it).
func (l *Log) AppendBatch(tag byte, payloads [][]byte) error {
	if len(payloads) == 0 {
		return nil
	}
	for _, p := range payloads {
		if 1+len(p) > MaxRecord {
			return fmt.Errorf("wal: record payload of %d bytes exceeds %d", len(p), MaxRecord-1)
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errClosed
	}
	for _, p := range payloads {
		if l.size >= l.opts.SegmentBytes {
			if err := l.rotateLocked(); err != nil {
				return err
			}
		}
		l.scratch = appendRecord(l.scratch[:0], tag, p)
		if err := l.w.write(l.scratch); err != nil {
			return err
		}
		l.size += int64(len(l.scratch))
		l.opts.Ins.observeAppend(len(l.scratch))
	}
	if l.opts.Sync == SyncAlways {
		return l.syncLocked()
	}
	return nil
}

// Sync flushes buffered appends and fsyncs the active segment.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errClosed
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if err := l.w.flush(); err != nil {
		return err
	}
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.opts.Ins.observeFsync(time.Since(start))
	return nil
}

// flushLoop is the SyncInterval background flusher.
func (l *Log) flushLoop() {
	defer close(l.flushDone)
	t := time.NewTicker(l.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			l.mu.Lock()
			if !l.closed {
				// A failed background sync surfaces on the next
				// foreground Sync/Close; the loop keeps trying.
				_ = l.syncLocked()
			}
			l.mu.Unlock()
		case <-l.flushStop:
			return
		}
	}
}

// Rotate seals the active segment (flush + fsync + close) and starts a
// fresh one, returning the new active segment's index. The checkpoint
// procedure rotates first so every record that predates the snapshot
// lives in a sealed segment that can be removed afterwards.
func (l *Log) Rotate() (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, errClosed
	}
	if err := l.rotateLocked(); err != nil {
		return 0, err
	}
	return l.seg, nil
}

func (l *Log) rotateLocked() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	if err := l.createSegment(l.seg + 1); err != nil {
		return err
	}
	l.opts.Ins.observeSegments(l.segmentCountLocked())
	return nil
}

// RemoveSegmentsBefore deletes every sealed segment with index < idx —
// the truncation step after a successful checkpoint. The active segment
// is never removed. Returns how many segments were deleted.
func (l *Log) RemoveSegmentsBefore(idx int) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, errClosed
	}
	if idx > l.seg {
		idx = l.seg
	}
	idxs, err := listSegments(l.dir)
	if err != nil {
		return 0, err
	}
	removed := 0
	for _, i := range idxs {
		if i >= idx {
			break
		}
		if err := os.Remove(filepath.Join(l.dir, segmentName(i))); err != nil {
			return removed, err
		}
		removed++
	}
	if removed > 0 {
		if err := syncDir(l.dir); err != nil {
			return removed, err
		}
	}
	l.opts.Ins.observeSegments(l.segmentCountLocked())
	return removed, nil
}

// Replay reads every record in every segment in order, calling fn(tag,
// payload) for each; the payload slice is only valid during the call.
// A torn record at the tail of the last segment ends the replay cleanly
// (Open has already truncated it from the file); corruption anywhere
// else returns an error wrapping ErrCorrupt. Call before the first
// Append.
func (l *Log) Replay(fn func(tag byte, payload []byte) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errClosed
	}
	// Appends buffered before a replay would be invisible to the file
	// reads below; recovery replays before streaming, so just flush.
	if err := l.w.flush(); err != nil {
		return err
	}
	idxs, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	for _, idx := range idxs {
		path := filepath.Join(l.dir, segmentName(idx))
		if _, err := scanSegment(path, idx == l.seg, fn); err != nil {
			return err
		}
	}
	return nil
}

// SegmentCount returns how many segment files the log currently holds.
func (l *Log) SegmentCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.segmentCountLocked()
}

func (l *Log) segmentCountLocked() int {
	idxs, err := listSegments(l.dir)
	if err != nil {
		return 0
	}
	return len(idxs)
}

// ActiveSegment returns the index of the segment currently appended to.
func (l *Log) ActiveSegment() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seg
}

// Dir returns the log's data directory.
func (l *Log) Dir() string { return l.dir }

// Close flushes, fsyncs and closes the log. Records appended before a
// clean Close are durable under every sync policy.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	err := l.syncLocked()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.closed = true
	stop := l.flushStop
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-l.flushDone
	}
	return err
}
