package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"streamkf/internal/dsms/wire"
)

// Record framing. Every record is self-checking:
//
//	uint32 LE  length   (tag + payload bytes; never 0, capped by MaxRecord)
//	uint8      tag
//	[]byte     payload  (length-1 bytes, opaque to the log)
//	uint32 LE  crc      (CRC32C over length ‖ tag ‖ payload)
//
// The layout deliberately mirrors the wire protocol's frame header (u32
// length then u8 tag) so update payloads move between the network and
// the log without re-encoding; the trailing CRC32C is the durability
// addition — Castagnoli, the polynomial with hardware support on both
// amd64 and arm64, so checksumming never shows up in append profiles.

// MaxRecord caps a record's length field (tag + payload). It matches the
// wire protocol's frame cap: anything the server can receive, it can
// log. A record announcing a larger length is treated as corruption.
const MaxRecord = wire.DefaultMaxFrame

// recordOverhead is the framing cost per record: length prefix, tag,
// trailing CRC.
const recordOverhead = 4 + 1 + 4

// castagnoli is the CRC32C table shared by records, segment headers and
// checkpoints.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports bytes that do not parse as a valid record stream —
// a CRC mismatch, an impossible length, or a truncation before the last
// segment's tail (where truncation is expected and repaired instead).
var ErrCorrupt = errors.New("wal: corrupt record")

// appendRecord appends the full framing of one record to b and returns
// the extended slice. With spare capacity in b it allocates nothing.
func appendRecord(b []byte, tag byte, payload []byte) []byte {
	start := len(b)
	b = wire.AppendU32(b, uint32(1+len(payload)))
	b = append(b, tag)
	b = append(b, payload...)
	crc := crc32.Checksum(b[start:], castagnoli)
	return wire.AppendU32(b, crc)
}

// readRecord reads one record from r into buf (grown as needed),
// returning the tag and payload. io.EOF means a clean end exactly at a
// record boundary; errTornTail means the stream ended inside a record;
// ErrCorrupt (wrapped) means the bytes are invalid.
func readRecord(r io.Reader, buf []byte) (tag byte, payload, nextBuf []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, nil, buf, io.EOF
		}
		return 0, nil, buf, err
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, buf, errTornTail
		}
		return 0, nil, buf, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n == 0 || n > MaxRecord {
		return 0, nil, buf, fmt.Errorf("%w: record length %d", ErrCorrupt, n)
	}
	tag = hdr[4]
	plen := int(n - 1)
	need := plen + 4 // payload + trailing crc
	if cap(buf) < need {
		buf = make([]byte, need)
	}
	body := buf[:need]
	if _, err := io.ReadFull(r, body); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, buf, errTornTail
		}
		return 0, nil, buf, err
	}
	crc := crc32.Checksum(hdr[:], castagnoli)
	crc = crc32.Update(crc, castagnoli, body[:plen])
	if crc != binary.LittleEndian.Uint32(body[plen:]) {
		return 0, nil, buf, fmt.Errorf("%w: crc mismatch on tag 0x%02x record", ErrCorrupt, tag)
	}
	return tag, body[:plen], buf, nil
}

// errTornTail reports a record cut short by the stream's end — expected
// (and repaired by truncation) at the tail of the last segment, fatal
// anywhere else.
var errTornTail = errors.New("wal: torn record at end of stream")
