package wal

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Segment files. The log is a sequence of segments named
// seg-00000001.wal, seg-00000002.wal, … in a data directory; only the
// highest-numbered segment is ever appended to. Each opens with an
// 8-byte header:
//
//	[4]byte  magic    "DKFL"
//	uint8    version  (segmentVersion)
//	[3]byte  reserved (zero)
//
// so a file that is not a WAL segment — or one written by an
// incompatible future version — is rejected before any record is
// trusted.

// segMagic opens every segment file ("DKF Log").
var segMagic = [4]byte{'D', 'K', 'F', 'L'}

const (
	segmentVersion   = 1
	segmentHeaderLen = 8
	segPrefix        = "seg-"
	segSuffix        = ".wal"
)

// segmentName renders the file name of segment idx.
func segmentName(idx int) string {
	return fmt.Sprintf("%s%08d%s", segPrefix, idx, segSuffix)
}

// parseSegmentName extracts the index from a segment file name, or
// ok=false for unrelated files.
func parseSegmentName(name string) (idx int, ok bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	mid := name[len(segPrefix) : len(name)-len(segSuffix)]
	n, err := strconv.Atoi(mid)
	if err != nil || n <= 0 {
		return 0, false
	}
	return n, true
}

// listSegments returns the indices of every segment in dir, ascending.
func listSegments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var idxs []int
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if idx, ok := parseSegmentName(e.Name()); ok {
			idxs = append(idxs, idx)
		}
	}
	sort.Ints(idxs)
	return idxs, nil
}

// segmentHeader renders the 8-byte header.
func segmentHeader() []byte {
	h := make([]byte, segmentHeaderLen)
	copy(h, segMagic[:])
	h[4] = segmentVersion
	return h
}

// checkSegmentHeader validates the 8 header bytes.
func checkSegmentHeader(h []byte) error {
	if len(h) < segmentHeaderLen || [4]byte(h[:4]) != segMagic {
		return fmt.Errorf("%w: bad segment magic", ErrCorrupt)
	}
	if h[4] != segmentVersion {
		return fmt.Errorf("wal: segment version %d, this build reads %d", h[4], segmentVersion)
	}
	return nil
}

// scanSegment reads every record of the segment at path in order,
// calling fn(tag, payload) for each (payload is only valid during the
// call). tail selects the torn-write policy: the last (tail) segment may
// legitimately end mid-record after a crash, so its first invalid record
// ends the scan and its byte offset is returned as validLen for the
// caller to truncate to; any earlier segment was sealed by a rotation
// and an invalid record in it is hard corruption.
//
// A short header on an empty tail file (crash between create and header
// write) is reported as validLen 0.
func scanSegment(path string, tail bool, fn func(tag byte, payload []byte) error) (validLen int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()

	br := bufio.NewReaderSize(f, 1<<16)
	hdr := make([]byte, segmentHeaderLen)
	if _, err := io.ReadFull(br, hdr); err != nil {
		if tail && (errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)) {
			return 0, nil
		}
		return 0, fmt.Errorf("%w: short segment header in %s", ErrCorrupt, filepath.Base(path))
	}
	if err := checkSegmentHeader(hdr); err != nil {
		return 0, fmt.Errorf("%s: %w", filepath.Base(path), err)
	}

	valid := int64(segmentHeaderLen)
	var buf []byte
	for {
		tag, payload, nextBuf, rerr := readRecord(br, buf)
		buf = nextBuf
		switch {
		case rerr == nil:
			if fn != nil {
				if err := fn(tag, payload); err != nil {
					return valid, err
				}
			}
			valid += recordOverhead + int64(len(payload))
		case errors.Is(rerr, io.EOF):
			return valid, nil
		case errors.Is(rerr, errTornTail), errors.Is(rerr, ErrCorrupt):
			if tail {
				// Crash mid-append: everything before this record is
				// intact; the caller truncates the rest away.
				return valid, nil
			}
			return valid, fmt.Errorf("%s: %w", filepath.Base(path), rerr)
		default:
			return valid, rerr
		}
	}
}

// syncDir fsyncs the directory itself so segment creation, removal and
// checkpoint renames survive a power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
