package wal

import (
	"testing"
	"time"
)

// BenchmarkWALAppend measures the append hot path per fsync policy.
// SyncOff isolates the framing + buffered-write cost (the alloc budget
// below pins it at zero allocations); SyncInterval adds only the
// amortized background flush; SyncAlways is dominated by fsync latency
// and is benchmarked separately so the cheap policies stay readable.
func BenchmarkWALAppend(b *testing.B) {
	payload := make([]byte, 64)
	for _, sync := range []SyncPolicy{SyncOff, SyncInterval, SyncAlways} {
		b.Run(sync.String(), func(b *testing.B) {
			l, err := Open(b.TempDir(), Options{Sync: sync, SyncEvery: 50 * time.Millisecond})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			b.ReportAllocs()
			b.SetBytes(int64(recordOverhead + len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := l.Append(0x11, payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestWALAppendAllocBudget pins the fsync-off append path at zero
// allocations per record, the same way the filter hot path is pinned:
// logging an update must never add GC pressure to ingest.
func TestWALAppendAllocBudget(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	payload := make([]byte, 64)
	// Warm the scratch buffer.
	if err := l.Append(0x11, payload); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(1000, func() {
		if err := l.Append(0x11, payload); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("fsync-off append allocates %v/op, want 0", n)
	}
}
