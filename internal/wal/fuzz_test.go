package wal

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALReplay feeds arbitrary bytes to the log reader both as the
// mutable tail segment and as a sealed (rotated) segment. Whatever the
// bytes, Open and Replay must return clean errors or truncate cleanly —
// never panic, and never hand a record to the callback that was not
// CRC-framed as one.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add(segmentHeader())
	f.Add(appendRecord(segmentHeader(), 0x11, []byte("seed")))
	// A record whose length field lies.
	f.Add(append(segmentHeader(), 0xff, 0xff, 0xff, 0xff, 0x11, 1, 2, 3))
	// A valid record followed by garbage.
	f.Add(append(appendRecord(segmentHeader(), 0x10, []byte("ok")), 7, 7, 7))

	f.Fuzz(func(t *testing.T, data []byte) {
		// As the tail segment: invalid suffixes are truncated away, and
		// the repaired log must accept appends and replay consistently.
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, Options{Sync: SyncOff})
		if err == nil {
			records := 0
			if err := l.Replay(func(tag byte, p []byte) error {
				records++
				return nil
			}); err != nil {
				t.Errorf("tail replay after successful Open: %v", err)
			}
			if err := l.Append(0x7f, []byte("post")); err != nil {
				t.Errorf("append after repair: %v", err)
			}
			after := 0
			if err := l.Replay(func(byte, []byte) error { after++; return nil }); err != nil {
				t.Errorf("replay after append: %v", err)
			}
			if after != records+1 {
				t.Errorf("replay after append saw %d records, want %d", after, records+1)
			}
			l.Close()
		}

		// As a sealed segment (a later segment exists): same bytes, but
		// now any invalidity must surface as a Replay error, not silent
		// truncation.
		dir2 := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir2, segmentName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir2, segmentName(2)), segmentHeader(), 0o644); err != nil {
			t.Fatal(err)
		}
		if l2, err := Open(dir2, Options{Sync: SyncOff}); err == nil {
			_ = l2.Replay(func(byte, []byte) error { return nil })
			l2.Close()
		}
	})
}

// FuzzReadCheckpoint asserts the checkpoint reader rejects arbitrary
// bytes without panicking.
func FuzzReadCheckpoint(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("DKFC"))
	good := func() []byte {
		dir := f.TempDir()
		if err := WriteCheckpoint(dir, []byte("snapshot payload")); err != nil {
			f.Fatal(err)
		}
		raw, err := os.ReadFile(filepath.Join(dir, CheckpointName))
		if err != nil {
			f.Fatal(err)
		}
		return raw
	}()
	f.Add(good)
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, CheckpointName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		_, _ = ReadCheckpoint(dir)
	})
}
