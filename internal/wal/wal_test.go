package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

type rec struct {
	tag     byte
	payload []byte
}

// collect replays the log into a slice.
func collect(t *testing.T, l *Log) []rec {
	t.Helper()
	var out []rec
	err := l.Replay(func(tag byte, p []byte) error {
		out = append(out, rec{tag, append([]byte(nil), p...)})
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return out
}

func wantRecords(t *testing.T, got, want []rec) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].tag != want[i].tag || !bytes.Equal(got[i].payload, want[i].payload) {
			t.Fatalf("record %d = {0x%02x %x}, want {0x%02x %x}",
				i, got[i].tag, got[i].payload, want[i].tag, want[i].payload)
		}
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	for _, sync := range []SyncPolicy{SyncAlways, SyncInterval, SyncOff} {
		t.Run(sync.String(), func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Options{Sync: sync, SyncEvery: time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			want := []rec{
				{0x10, []byte("hello")},
				{0x11, nil},
				{0x12, bytes.Repeat([]byte{0xab}, 1000)},
				{0x11, []byte{0}},
			}
			for _, r := range want {
				if err := l.Append(r.tag, r.payload); err != nil {
					t.Fatal(err)
				}
			}
			// Replay sees buffered-but-unsynced appends too.
			wantRecords(t, collect(t, l), want)
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}

			// A clean Close makes every append durable under any policy.
			l2, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer l2.Close()
			wantRecords(t, collect(t, l2), want)
		})
	}
}

func TestAppendRejectsOversizedPayload(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(1, make([]byte, MaxRecord)); err == nil {
		t.Fatal("oversized append succeeded")
	}
}

func TestClosedLogRejectsOperations(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}
	if err := l.Append(1, nil); !errors.Is(err, errClosed) {
		t.Fatalf("Append after Close = %v", err)
	}
	if err := l.Sync(); !errors.Is(err, errClosed) {
		t.Fatalf("Sync after Close = %v", err)
	}
	if _, err := l.Rotate(); !errors.Is(err, errClosed) {
		t.Fatalf("Rotate after Close = %v", err)
	}
}

func TestRotationAndTruncation(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every append past the first rotates.
	l, err := Open(dir, Options{Sync: SyncOff, SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	var want []rec
	for i := 0; i < 5; i++ {
		r := rec{0x11, []byte{byte(i)}}
		if err := l.Append(r.tag, r.payload); err != nil {
			t.Fatal(err)
		}
		want = append(want, r)
	}
	if n := l.SegmentCount(); n < 4 {
		t.Fatalf("SegmentCount = %d, want >= 4 after 5 one-byte-threshold appends", n)
	}
	wantRecords(t, collect(t, l), want)

	// Rotate seals the tail; removing everything before the new active
	// segment leaves only records appended after.
	active, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if removed, err := l.RemoveSegmentsBefore(active); err != nil || removed == 0 {
		t.Fatalf("RemoveSegmentsBefore = %d, %v", removed, err)
	}
	if n := l.SegmentCount(); n != 1 {
		t.Fatalf("SegmentCount after truncation = %d, want 1", n)
	}
	tail := rec{0x12, []byte("after")}
	if err := l.Append(tail.tag, tail.payload); err != nil {
		t.Fatal(err)
	}
	wantRecords(t, collect(t, l), []rec{tail})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	// The one-byte threshold rotates again on the post-truncation append,
	// so the reopened tail is at least the post-checkpoint segment.
	if l2.ActiveSegment() < active {
		t.Fatalf("ActiveSegment after reopen = %d, want >= %d", l2.ActiveSegment(), active)
	}
	wantRecords(t, collect(t, l2), []rec{tail})
}

// TestTornTailEveryOffset is the crash simulation the recovery invariant
// rests on: whatever byte the last segment is cut at, Open must recover
// exactly the records whose frames fit before the cut, truncate the
// rest, and accept new appends.
func TestTornTailEveryOffset(t *testing.T) {
	// Build a reference segment.
	refDir := t.TempDir()
	l, err := Open(refDir, Options{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	var want []rec
	ends := []int64{segmentHeaderLen} // cumulative record end offsets
	for i := 0; i < 5; i++ {
		r := rec{0x10 + byte(i%3), bytes.Repeat([]byte{byte(i)}, 3+i*2)}
		if err := l.Append(r.tag, r.payload); err != nil {
			t.Fatal(err)
		}
		want = append(want, r)
		ends = append(ends, ends[len(ends)-1]+recordOverhead+int64(len(r.payload)))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(filepath.Join(refDir, segmentName(1)))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(full)) != ends[len(ends)-1] {
		t.Fatalf("segment is %d bytes, expected %d", len(full), ends[len(ends)-1])
	}

	for cut := 0; cut <= len(full); cut++ {
		// How many complete records survive a cut at this offset?
		complete := 0
		for complete < len(want) && ends[complete+1] <= int64(cut) {
			complete++
		}
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, Options{Sync: SyncOff})
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}
		got := collect(t, l)
		wantRecords(t, got, want[:complete])
		// The log must be writable after repair, and the new record must
		// land right after the surviving prefix.
		extra := rec{0x1f, []byte("post-crash")}
		if err := l.Append(extra.tag, extra.payload); err != nil {
			t.Fatalf("cut %d: Append after repair: %v", cut, err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		l2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		wantRecords(t, collect(t, l2), append(append([]rec{}, want[:complete]...), extra))
		l2.Close()
	}
}

func TestSealedSegmentCorruptionIsFatal(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(0x11, []byte("sealed payload")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(0x11, []byte("tail payload")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one payload byte in the sealed (non-tail) segment.
	path := filepath.Join(dir, segmentName(1))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[segmentHeaderLen+7] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	err = l2.Replay(func(byte, []byte) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Replay over corrupt sealed segment = %v, want ErrCorrupt", err)
	}
}

func TestOpenRejectsForeignFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, segmentName(1)), []byte("not a wal segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	// The tail-segment scan hits a bad magic; that is corruption, not a
	// torn write (the header is not a record).
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open over foreign file = %v, want ErrCorrupt", err)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if p, err := ReadCheckpoint(dir); p != nil || err != nil {
		t.Fatalf("ReadCheckpoint on empty dir = %x, %v; want nil, nil", p, err)
	}
	payload := bytes.Repeat([]byte{1, 2, 3}, 100)
	if err := WriteCheckpoint(dir, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(dir)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("ReadCheckpoint = %d bytes, %v", len(got), err)
	}
	// Overwrite is atomic-replace: the new payload fully supersedes.
	if err := WriteCheckpoint(dir, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, err = ReadCheckpoint(dir); err != nil || string(got) != "v2" {
		t.Fatalf("ReadCheckpoint after overwrite = %q, %v", got, err)
	}

	// Any in-file corruption is detected.
	path := filepath.Join(dir, CheckpointName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range raw {
		bad := append([]byte(nil), raw...)
		bad[i] ^= 0x40
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadCheckpoint(dir); err == nil {
			t.Fatalf("corruption at byte %d went undetected", i)
		}
	}
	for cut := 0; cut < len(raw); cut++ {
		if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadCheckpoint(dir); err == nil {
			t.Fatalf("truncation at byte %d went undetected", cut)
		}
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, p := range []SyncPolicy{SyncAlways, SyncInterval, SyncOff} {
		got, err := ParseSyncPolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseSyncPolicy accepted garbage")
	}
}

func TestIntervalFlusherMakesAppendsDurable(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncInterval, SyncEvery: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(0x11, []byte("ticked")); err != nil {
		t.Fatal(err)
	}
	// The background flusher must push the buffered append to the file
	// without any foreground Sync.
	deadline := time.Now().Add(2 * time.Second)
	for {
		st, err := os.Stat(filepath.Join(dir, segmentName(1)))
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() > segmentHeaderLen {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("interval flusher never flushed the append")
		}
		time.Sleep(time.Millisecond)
	}
	l.Close()
}

func TestRecordFrameSelfChecks(t *testing.T) {
	b := appendRecord(nil, 0x42, []byte("payload"))
	tag, payload, _, err := readRecord(bytes.NewReader(b), nil)
	if err != nil || tag != 0x42 || string(payload) != "payload" {
		t.Fatalf("round trip = 0x%02x %q, %v", tag, payload, err)
	}
	// Every single-byte flip must be caught by the CRC (or the length
	// bound) — never returned as a valid record.
	for i := range b {
		bad := append([]byte(nil), b...)
		bad[i] ^= 0x01
		if _, _, _, err := readRecord(bytes.NewReader(bad), nil); err == nil {
			t.Fatalf("bit flip at byte %d went undetected", i)
		}
	}
	// A cut at the boundary is a clean EOF; anywhere inside is a torn
	// tail, never a valid record.
	for cut := 0; cut < len(b); cut++ {
		_, _, _, err := readRecord(bytes.NewReader(b[:cut]), nil)
		if cut == 0 {
			if !errors.Is(err, io.EOF) {
				t.Fatalf("empty stream = %v, want io.EOF", err)
			}
			continue
		}
		if !errors.Is(err, errTornTail) {
			t.Fatalf("truncation at byte %d = %v, want errTornTail", cut, err)
		}
	}
}

func TestReplayStopsOnCallbackError(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 3; i++ {
		if err := l.Append(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	boom := fmt.Errorf("boom")
	calls := 0
	err = l.Replay(func(byte, []byte) error {
		calls++
		if calls == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || calls != 2 {
		t.Fatalf("Replay = %v after %d calls, want boom after 2", err, calls)
	}
}
