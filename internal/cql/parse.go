package cql

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"streamkf/internal/dsms"
	"streamkf/internal/stream"
)

// Selector is what the statement computes.
type Selector string

// Supported selectors.
const (
	SelValue Selector = "value"
	SelAvg   Selector = "avg"
	SelSum   Selector = "sum"
	SelMin   Selector = "min"
	SelMax   Selector = "max"
)

// Statement is a parsed continuous query.
type Statement struct {
	// Selector is VALUE or an aggregate function.
	Selector Selector
	// Sources are the target source object ids.
	Sources []string
	// Model names the stream model to install.
	Model string
	// Delta is the precision width δ (WITHIN clause).
	Delta float64
	// F is the smoothing factor (SMOOTH clause; 0 when absent).
	F float64
	// Over is the trailing window length in readings (OVER clause; 0
	// means un-windowed). Only aggregate selectors over a single source
	// may be windowed.
	Over int
	// Name is the query id (AS clause; derived when absent).
	Name string
}

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	i    int
	src  string
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) errf(tok token, format string, args ...any) error {
	return fmt.Errorf("cql: %s at offset %d in %q", fmt.Sprintf(format, args...), tok.pos, p.src)
}

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if !keyword(t, kw) {
		return p.errf(t, "expected %s, got %q", strings.ToUpper(kw), t.text)
	}
	return nil
}

func (p *parser) expectIdent(what string) (string, error) {
	t := p.next()
	if t.kind != tokIdent {
		return "", p.errf(t, "expected %s, got %s", what, t.kind)
	}
	return t.text, nil
}

func (p *parser) expectNumber(what string) (float64, error) {
	t := p.next()
	if t.kind != tokNumber {
		return 0, p.errf(t, "expected %s, got %s", what, t.kind)
	}
	v, err := strconv.ParseFloat(t.text, 64)
	if err != nil {
		return 0, p.errf(t, "bad %s %q", what, t.text)
	}
	return v, nil
}

// Parse parses one statement.
func Parse(input string) (*Statement, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: input}

	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	sel, err := p.parseSelector()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	sources, err := p.parseSources()
	if err != nil {
		return nil, err
	}

	st := &Statement{Selector: sel, Sources: sources}
	seen := map[string]bool{}
	for {
		t := p.peek()
		if t.kind == tokEOF {
			break
		}
		var clause string
		switch {
		case keyword(t, "model"):
			clause = "model"
			p.next()
			st.Model, err = p.expectIdent("model name")
		case keyword(t, "within"):
			clause = "within"
			p.next()
			st.Delta, err = p.expectNumber("precision width")
		case keyword(t, "smooth"):
			clause = "smooth"
			p.next()
			st.F, err = p.expectNumber("smoothing factor")
		case keyword(t, "over"):
			clause = "over"
			p.next()
			var n float64
			n, err = p.expectNumber("window length")
			if err == nil {
				if n < 1 || n != math.Trunc(n) {
					return nil, p.errf(t, "OVER wants a positive integer, got %v", n)
				}
				st.Over = int(n)
			}
		case keyword(t, "as"):
			clause = "as"
			p.next()
			st.Name, err = p.expectIdent("query name")
		default:
			return nil, p.errf(t, "expected MODEL, WITHIN, SMOOTH, OVER or AS, got %q", t.text)
		}
		if err != nil {
			return nil, err
		}
		if seen[clause] {
			return nil, p.errf(t, "duplicate %s clause", strings.ToUpper(clause))
		}
		seen[clause] = true
	}

	if err := st.validate(); err != nil {
		return nil, err
	}
	if st.Name == "" {
		st.Name = st.deriveName()
	}
	return st, nil
}

func (p *parser) parseSelector() (Selector, error) {
	t := p.next()
	if t.kind != tokIdent {
		return "", p.errf(t, "expected selector, got %s", t.kind)
	}
	switch strings.ToLower(t.text) {
	case "value":
		return SelValue, nil
	case "avg":
		return SelAvg, nil
	case "sum":
		return SelSum, nil
	case "min":
		return SelMin, nil
	case "max":
		return SelMax, nil
	default:
		return "", p.errf(t, "unknown selector %q (want VALUE, AVG, SUM, MIN or MAX)", t.text)
	}
}

func (p *parser) parseSources() ([]string, error) {
	var out []string
	for {
		id, err := p.expectIdent("source id")
		if err != nil {
			return nil, err
		}
		if isReserved(id) {
			return nil, fmt.Errorf("cql: %q is a reserved word, not a source id, in %q", id, p.src)
		}
		out = append(out, id)
		if p.peek().kind != tokComma {
			return out, nil
		}
		p.next()
	}
}

func isReserved(s string) bool {
	switch strings.ToLower(s) {
	case "select", "from", "model", "within", "smooth", "over", "as", "value", "avg", "sum", "min", "max":
		return true
	}
	return false
}

func (s *Statement) validate() error {
	if s.Model == "" {
		return fmt.Errorf("cql: missing MODEL clause")
	}
	if s.Delta <= 0 {
		return fmt.Errorf("cql: missing or non-positive WITHIN clause (delta = %v)", s.Delta)
	}
	if s.F < 0 {
		return fmt.Errorf("cql: negative SMOOTH factor %v", s.F)
	}
	if s.Selector == SelValue && len(s.Sources) != 1 {
		return fmt.Errorf("cql: SELECT VALUE takes exactly one source, got %d", len(s.Sources))
	}
	if s.Over > 0 {
		if s.Selector == SelValue {
			return fmt.Errorf("cql: OVER requires an aggregate selector")
		}
		if len(s.Sources) != 1 {
			return fmt.Errorf("cql: OVER windows one source over time, got %d sources", len(s.Sources))
		}
	}
	return nil
}

func (s *Statement) deriveName() string {
	return fmt.Sprintf("%s-%s", s.Selector, strings.Join(s.Sources, "-"))
}

// IsAggregate reports whether the statement is a multi-source aggregate
// query (un-windowed aggregate selector).
func (s *Statement) IsAggregate() bool { return s.Selector != SelValue && s.Over == 0 }

// IsWindowed reports whether the statement is a time-windowed aggregate
// over one source.
func (s *Statement) IsWindowed() bool { return s.Over > 0 }

// WindowQuery converts a windowed statement into the DSMS form.
func (s *Statement) WindowQuery() (dsms.WindowQuery, error) {
	if !s.IsWindowed() {
		return dsms.WindowQuery{}, fmt.Errorf("cql: statement has no OVER clause")
	}
	return dsms.WindowQuery{
		ID:       s.Name,
		SourceID: s.Sources[0],
		Func:     dsms.AggFunc(s.Selector),
		N:        s.Over,
		Delta:    s.Delta,
		F:        s.F,
		Model:    s.Model,
	}, nil
}

// Query converts a VALUE statement into the DSMS query form.
func (s *Statement) Query() (stream.Query, error) {
	if s.Selector != SelValue {
		return stream.Query{}, fmt.Errorf("cql: %s statement is an aggregate, not a value query", s.Selector)
	}
	return stream.Query{
		ID:       s.Name,
		SourceID: s.Sources[0],
		Delta:    s.Delta,
		F:        s.F,
		Model:    s.Model,
	}, nil
}

// AggregateQuery converts an aggregate statement into the DSMS form.
func (s *Statement) AggregateQuery() (dsms.AggregateQuery, error) {
	if !s.IsAggregate() {
		return dsms.AggregateQuery{}, fmt.Errorf("cql: VALUE statement is not an aggregate")
	}
	return dsms.AggregateQuery{
		ID:        s.Name,
		SourceIDs: s.Sources,
		Func:      dsms.AggFunc(s.Selector),
		Delta:     s.Delta,
		Model:     s.Model,
		F:         s.F,
	}, nil
}

// Install parses the statement and registers it with the server. It
// returns the query name under which answers can be requested.
func Install(server *dsms.Server, statement string) (name string, err error) {
	st, err := Parse(statement)
	if err != nil {
		return "", err
	}
	if st.IsWindowed() {
		q, err := st.WindowQuery()
		if err != nil {
			return "", err
		}
		return st.Name, server.RegisterWindow(q)
	}
	if st.IsAggregate() {
		q, err := st.AggregateQuery()
		if err != nil {
			return "", err
		}
		return st.Name, server.RegisterAggregate(q)
	}
	q, err := st.Query()
	if err != nil {
		return "", err
	}
	return st.Name, server.Register(q)
}
