package cql

import (
	"math"
	"strings"
	"testing"

	"streamkf/internal/core"
	"streamkf/internal/dsms"
	"streamkf/internal/gen"
	"streamkf/internal/stream"
)

func TestLex(t *testing.T) {
	toks, err := lex("SELECT avg FROM a-1, b_2 WITHIN 3.5 SMOOTH 1e-7")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []tokenKind{tokIdent, tokIdent, tokIdent, tokIdent, tokComma, tokIdent, tokIdent, tokNumber, tokIdent, tokNumber, tokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens %v, want %d", len(toks), toks, len(kinds))
	}
	for i, k := range kinds {
		if toks[i].kind != k {
			t.Fatalf("token %d = %v, want kind %v", i, toks[i], k)
		}
	}
	if toks[7].text != "3.5" || toks[9].text != "1e-7" {
		t.Fatalf("number texts: %q %q", toks[7].text, toks[9].text)
	}
}

func TestLexBadRune(t *testing.T) {
	if _, err := lex("SELECT * FROM x"); err == nil {
		t.Fatal("lexed '*' without error")
	}
}

func TestParseValueStatement(t *testing.T) {
	st, err := Parse("SELECT VALUE FROM vehicle7 MODEL linear2d WITHIN 3 AS track")
	if err != nil {
		t.Fatal(err)
	}
	if st.Selector != SelValue || st.Sources[0] != "vehicle7" || st.Model != "linear2d" ||
		st.Delta != 3 || st.F != 0 || st.Name != "track" {
		t.Fatalf("parsed %+v", st)
	}
	if st.IsAggregate() {
		t.Fatal("VALUE statement reported aggregate")
	}
	q, err := st.Query()
	if err != nil {
		t.Fatal(err)
	}
	if q.ID != "track" || q.SourceID != "vehicle7" || q.Delta != 3 {
		t.Fatalf("query = %+v", q)
	}
	if _, err := st.AggregateQuery(); err == nil {
		t.Fatal("AggregateQuery on VALUE statement succeeded")
	}
}

func TestParseAggregateStatement(t *testing.T) {
	st, err := Parse("select Sum from z1, z2, z3 within 9 model linear smooth 1e-7")
	if err != nil {
		t.Fatal(err)
	}
	if st.Selector != SelSum || len(st.Sources) != 3 || st.F != 1e-7 {
		t.Fatalf("parsed %+v", st)
	}
	if st.Name != "sum-z1-z2-z3" {
		t.Fatalf("derived name = %q", st.Name)
	}
	agg, err := st.AggregateQuery()
	if err != nil {
		t.Fatal(err)
	}
	if agg.Func != dsms.AggSum || agg.Delta != 9 || len(agg.SourceIDs) != 3 {
		t.Fatalf("aggregate = %+v", agg)
	}
	if _, err := st.Query(); err == nil {
		t.Fatal("Query on aggregate statement succeeded")
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	if _, err := Parse("sElEcT vAlUe FrOm s MoDeL constant WiThIn 1"); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                                                   // empty
		"INSERT VALUE FROM x MODEL m WITHIN 1",               // not SELECT
		"SELECT median FROM x MODEL m WITHIN 1",              // bad selector
		"SELECT VALUE x MODEL m WITHIN 1",                    // missing FROM
		"SELECT VALUE FROM MODEL m WITHIN 1",                 // reserved word as source
		"SELECT VALUE FROM x WITHIN 1",                       // missing MODEL
		"SELECT VALUE FROM x MODEL m",                        // missing WITHIN
		"SELECT VALUE FROM x MODEL m WITHIN 0",               // zero delta
		"SELECT VALUE FROM x MODEL m WITHIN -2",              // negative delta
		"SELECT VALUE FROM x, y MODEL m WITHIN 1",            // VALUE with 2 sources
		"SELECT VALUE FROM x MODEL m WITHIN 1 AS",            // dangling AS
		"SELECT VALUE FROM x MODEL m WITHIN one",             // non-numeric delta
		"SELECT VALUE FROM x MODEL m WITHIN 1 LIMIT 5",       // unknown clause
		"SELECT VALUE FROM x MODEL m WITHIN 1 WITHIN 2",      // duplicate clause
		"SELECT AVG FROM x MODEL m WITHIN 1 SMOOTH -1",       // negative F
		"SELECT VALUE FROM x, MODEL m WITHIN 1",              // comma then keyword
		"SELECT VALUE FROM x MODEL m WITHIN 1 AS 5something", // name starts numeric -> number token
	}
	for _, c := range cases {
		if _, err := Parse(c); err == nil {
			t.Errorf("Parse(%q) succeeded", c)
		}
	}
}

func TestParseIdentsWithDigitsAndDashes(t *testing.T) {
	st, err := Parse("SELECT VALUE FROM sensor-17.cpu MODEL constant WITHIN 2")
	if err != nil {
		t.Fatal(err)
	}
	if st.Sources[0] != "sensor-17.cpu" {
		t.Fatalf("source = %q", st.Sources[0])
	}
}

func TestInstallEndToEnd(t *testing.T) {
	catalog := dsms.DefaultCatalog(1)
	server := dsms.NewServer(catalog)

	name, err := Install(server, "SELECT VALUE FROM ramp MODEL linear WITHIN 2 AS r")
	if err != nil {
		t.Fatal(err)
	}
	if name != "r" {
		t.Fatalf("installed name = %q", name)
	}
	aggName, err := Install(server, "SELECT AVG FROM a, b MODEL linear WITHIN 4")
	if err != nil {
		t.Fatal(err)
	}

	stream3 := func(src string, start float64) {
		cfg, err := server.InstallFor(src)
		if err != nil {
			t.Fatal(err)
		}
		agent, err := dsms.NewAgent(cfg, core.TransportFunc(func(u core.Update) error { return server.HandleUpdate(u) }))
		if err != nil {
			t.Fatal(err)
		}
		if err := agent.Run(stream.NewSliceSource(gen.Ramp(100, start, 1, 0.01, 5))); err != nil {
			t.Fatal(err)
		}
	}
	stream3("ramp", 0)
	stream3("a", 0)
	stream3("b", 100)

	ans, err := server.Answer("r", 99)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ans[0]-99) > 4 {
		t.Fatalf("value answer = %v, want ~99", ans[0])
	}
	agg, err := server.AnswerAggregate(aggName, 99)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(agg-149) > 8 {
		t.Fatalf("aggregate answer = %v, want ~149", agg)
	}
}

func TestInstallParseError(t *testing.T) {
	server := dsms.NewServer(dsms.DefaultCatalog(1))
	if _, err := Install(server, "bogus"); err == nil {
		t.Fatal("installed bogus statement")
	}
	// Valid syntax but unknown model must surface the server error.
	if _, err := Install(server, "SELECT VALUE FROM x MODEL nope WITHIN 1"); err == nil || !strings.Contains(err.Error(), "unknown model") {
		t.Fatalf("err = %v, want unknown model", err)
	}
}
