package cql

import (
	"strings"
	"testing"
)

// FuzzParse asserts the parser never panics and that every accepted
// statement satisfies the documented invariants.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT VALUE FROM vehicle7 MODEL linear2d WITHIN 3 AS track",
		"SELECT AVG FROM z1, z2 MODEL linear WITHIN 50 SMOOTH 1e-7 AS load",
		"select min from a,b,c model constant within 0.5",
		"SELECT SUM FROM x MODEL m WITHIN 1e3",
		"",
		"SELECT",
		"SELECT VALUE FROM , MODEL m WITHIN 1",
		"SELECT VALUE FROM x MODEL m WITHIN -1",
		"ШЕLECT VALUE FROM x",
		"SELECT VALUE FROM x MODEL m WITHIN 1 AS \x00",
		strings.Repeat("a ", 100),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		st, err := Parse(input)
		if err != nil {
			return
		}
		if st.Delta <= 0 {
			t.Fatalf("accepted statement with delta %v: %q", st.Delta, input)
		}
		if st.F < 0 {
			t.Fatalf("accepted statement with F %v: %q", st.F, input)
		}
		if len(st.Sources) == 0 {
			t.Fatalf("accepted statement with no sources: %q", input)
		}
		if st.Selector == SelValue && len(st.Sources) != 1 {
			t.Fatalf("VALUE with %d sources: %q", len(st.Sources), input)
		}
		if st.Model == "" || st.Name == "" {
			t.Fatalf("accepted statement with empty model/name: %q", input)
		}
		// Conversions must succeed for the matching shape.
		if st.IsAggregate() {
			if _, err := st.AggregateQuery(); err != nil {
				t.Fatalf("aggregate conversion failed: %v (%q)", err, input)
			}
		} else {
			if _, err := st.Query(); err != nil {
				t.Fatalf("query conversion failed: %v (%q)", err, input)
			}
		}
	})
}
