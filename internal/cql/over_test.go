package cql

import (
	"math"
	"testing"

	"streamkf/internal/core"
	"streamkf/internal/dsms"
	"streamkf/internal/stream"
)

func TestParseOverClause(t *testing.T) {
	st, err := Parse("SELECT AVG FROM zone OVER 24 MODEL linear WITHIN 25 AS dayload")
	if err != nil {
		t.Fatal(err)
	}
	if !st.IsWindowed() || st.IsAggregate() {
		t.Fatalf("classification wrong: windowed=%v aggregate=%v", st.IsWindowed(), st.IsAggregate())
	}
	if st.Over != 24 {
		t.Fatalf("Over = %d", st.Over)
	}
	wq, err := st.WindowQuery()
	if err != nil {
		t.Fatal(err)
	}
	if wq.N != 24 || wq.Func != dsms.AggAvg || wq.SourceID != "zone" || wq.ID != "dayload" {
		t.Fatalf("window query = %+v", wq)
	}
	if _, err := st.Query(); err == nil {
		t.Fatal("Query() on windowed statement succeeded")
	}
	if _, err := st.AggregateQuery(); err == nil {
		t.Fatal("AggregateQuery() on windowed statement succeeded")
	}
}

func TestParseOverErrors(t *testing.T) {
	cases := []string{
		"SELECT VALUE FROM z OVER 24 MODEL m WITHIN 1",     // VALUE cannot window
		"SELECT AVG FROM a, b OVER 24 MODEL m WITHIN 1",    // multi-source window
		"SELECT AVG FROM z OVER 0 MODEL m WITHIN 1",        // zero window
		"SELECT AVG FROM z OVER 2.5 MODEL m WITHIN 1",      // fractional window
		"SELECT AVG FROM z OVER -3 MODEL m WITHIN 1",       // negative window
		"SELECT AVG FROM z OVER x MODEL m WITHIN 1",        // non-numeric
		"SELECT AVG FROM z OVER 4 OVER 8 MODEL m WITHIN 1", // duplicate
	}
	for _, c := range cases {
		if _, err := Parse(c); err == nil {
			t.Errorf("Parse(%q) succeeded", c)
		}
	}
}

func TestWindowQueryOnNonWindowed(t *testing.T) {
	st, err := Parse("SELECT AVG FROM a, b MODEL m WITHIN 1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.WindowQuery(); err == nil {
		t.Fatal("WindowQuery on un-windowed statement succeeded")
	}
}

func TestInstallWindowedEndToEnd(t *testing.T) {
	catalog := dsms.DefaultCatalog(1)
	server := dsms.NewServer(catalog)
	name, err := Install(server, "SELECT AVG FROM zone OVER 8 MODEL constant WITHIN 1 AS smooth-load")
	if err != nil {
		t.Fatal(err)
	}
	if name != "smooth-load" {
		t.Fatalf("installed name %q", name)
	}
	cfg, err := server.InstallFor("zone")
	if err != nil {
		t.Fatal(err)
	}
	agent, err := dsms.NewAgent(cfg, core.TransportFunc(server.HandleUpdate))
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]float64, 40)
	for i := range vals {
		vals[i] = 100
	}
	if err := agent.Run(stream.NewSliceSource(stream.FromValues(vals, 1))); err != nil {
		t.Fatal(err)
	}
	got, err := server.AnswerWindow("smooth-load", 39)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-100) > 2 {
		t.Fatalf("windowed answer = %v, want ~100", got)
	}
}
