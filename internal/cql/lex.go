// Package cql implements a small continuous-query language for the DSMS,
// in the spirit of STREAM's CQL, restricted to the query shapes the
// paper's architecture supports (Figure 1: a user issues a query with a
// precision constraint; the server installs filters).
//
// Grammar (keywords case-insensitive):
//
//	stmt      := SELECT selector FROM source {"," source} clause*
//	selector  := VALUE | AVG | SUM | MIN | MAX
//	clause    := MODEL ident | WITHIN number | SMOOTH number | AS ident
//
// WITHIN (the precision width δ) and MODEL are required; AS names the
// query (defaulting to a derived name); SMOOTH sets the smoothing factor
// F. VALUE takes exactly one source; the aggregate selectors take one or
// more.
//
// Examples:
//
//	SELECT VALUE FROM vehicle7 MODEL linear2d WITHIN 3 AS track
//	SELECT AVG FROM zone1, zone2 MODEL linear WITHIN 50 SMOOTH 1e-7 AS meanload
package cql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexed tokens.
type tokenKind int

const (
	tokIdent tokenKind = iota
	tokNumber
	tokComma
	tokEOF
)

func (k tokenKind) String() string {
	switch k {
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokComma:
		return "','"
	default:
		return "end of input"
	}
}

// token is one lexed unit with its source position (byte offset).
type token struct {
	kind tokenKind
	text string
	pos  int
}

// lex tokenizes a statement. Identifiers may contain letters, digits,
// '_', '-' and '.'. Numbers are Go-style floats (scientific notation
// allowed).
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == ',':
			toks = append(toks, token{kind: tokComma, text: ",", pos: i})
			i++
		case isNumStart(input, i):
			start := i
			i = scanNumber(input, i)
			toks = append(toks, token{kind: tokNumber, text: input[start:i], pos: start})
		case isIdentRune(c):
			start := i
			for i < len(input) && isIdentRune(rune(input[i])) {
				i++
			}
			toks = append(toks, token{kind: tokIdent, text: input[start:i], pos: start})
		default:
			return nil, fmt.Errorf("cql: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: len(input)})
	return toks, nil
}

func isIdentRune(c rune) bool {
	return unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' || c == '-' || c == '.'
}

// isNumStart reports whether a number begins at offset i: a digit, or a
// sign/dot immediately followed by a digit. Identifiers may contain
// digits and dashes, so a bare leading digit wins only when the whole
// token parses as a number — handled by scanNumber's maximal munch plus
// the keyword check in the parser.
func isNumStart(s string, i int) bool {
	c := s[i]
	if c >= '0' && c <= '9' {
		return true
	}
	if (c == '+' || c == '-' || c == '.') && i+1 < len(s) {
		n := s[i+1]
		return n >= '0' && n <= '9'
	}
	return false
}

// scanNumber consumes a float literal: digits, optional fraction,
// optional exponent.
func scanNumber(s string, i int) int {
	if s[i] == '+' || s[i] == '-' {
		i++
	}
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		i++
	}
	if i < len(s) && s[i] == '.' {
		i++
		for i < len(s) && s[i] >= '0' && s[i] <= '9' {
			i++
		}
	}
	if i < len(s) && (s[i] == 'e' || s[i] == 'E') {
		j := i + 1
		if j < len(s) && (s[j] == '+' || s[j] == '-') {
			j++
		}
		if j < len(s) && s[j] >= '0' && s[j] <= '9' {
			i = j
			for i < len(s) && s[i] >= '0' && s[i] <= '9' {
				i++
			}
		}
	}
	return i
}

// keyword reports whether tok is the given keyword, case-insensitively.
func keyword(tok token, kw string) bool {
	return tok.kind == tokIdent && strings.EqualFold(tok.text, kw)
}
