package trace

import (
	"sync"
	"testing"
)

func TestKindDecisionStrings(t *testing.T) {
	for k := KindSmooth; k <= KindAnswer; k++ {
		s := k.String()
		got, err := ParseKind(s)
		if err != nil || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v; want %v", s, got, err, k)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Fatal("ParseKind accepted an unknown kind")
	}
	for d := DecisionSuppress; d <= DecisionBootstrap; d++ {
		s := d.String()
		got, err := ParseDecision(s)
		if err != nil || got != d {
			t.Fatalf("ParseDecision(%q) = %v, %v; want %v", s, got, err, d)
		}
	}
	if _, err := ParseDecision("maybe"); err == nil {
		t.Fatal("ParseDecision accepted an unknown decision")
	}
	if DecisionNone.String() != "" {
		t.Fatalf("DecisionNone.String() = %q, want empty", DecisionNone.String())
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Record(&Event{Kind: KindApply})
	if got := r.Events(); got != nil {
		t.Fatalf("nil recorder Events() = %v, want nil", got)
	}
	if r.Sampled(0) {
		t.Fatal("nil recorder reports Sampled")
	}
	if r.Cap() != 0 || r.Recorded() != 0 {
		t.Fatal("nil recorder reports capacity or events")
	}
	r.Audit().Observe(1, 2, 3)
	if s := r.Audit().Snapshot(); s.Applies != 0 {
		t.Fatalf("nil audit snapshot = %+v, want zero", s)
	}
}

func TestRingSizeRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, DefaultRingSize}, {-5, DefaultRingSize}, {1, 1}, {2, 2}, {3, 4}, {100, 128}, {256, 256},
	} {
		if got := New(Options{RingSize: tc.in}).Cap(); got != tc.want {
			t.Fatalf("New(RingSize=%d).Cap() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestRecordRoundTrip(t *testing.T) {
	r := New(Options{RingSize: 8})
	in := Event{
		TraceID: 42, Seq: 7, At: 12345,
		Kind: KindDecision, Dec: DecisionSend,
		Raw: 1.5, Value: 1.25, Pred: 0.5, Residual: 0.75, Delta: 0.1, NIS: 3.5,
		Aux: 99,
	}
	r.Record(&in)
	evs := r.Events()
	if len(evs) != 1 {
		t.Fatalf("Events() returned %d events, want 1", len(evs))
	}
	if evs[0] != in {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", evs[0], in)
	}
	v := evs[0].View()
	if v.Kind != "decision" || v.Decision != "send" || v.TraceID != 42 || v.Residual != 0.75 {
		t.Fatalf("View() = %+v", v)
	}
}

func TestRecordStampsTime(t *testing.T) {
	r := New(Options{})
	r.Record(&Event{Kind: KindApply})
	evs := r.Events()
	if len(evs) != 1 || evs[0].At == 0 {
		t.Fatalf("Record did not stamp At: %+v", evs)
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	r := New(Options{RingSize: 16})
	const n = 50
	for i := 0; i < n; i++ {
		r.Record(&Event{TraceID: int64(i), Seq: int64(i), At: int64(i + 1), Kind: KindApply})
	}
	if r.Recorded() != n {
		t.Fatalf("Recorded() = %d, want %d", r.Recorded(), n)
	}
	evs := r.Events()
	if len(evs) != 16 {
		t.Fatalf("Events() returned %d events, want 16", len(evs))
	}
	for i, ev := range evs {
		want := int64(n - 16 + i)
		if ev.TraceID != want {
			t.Fatalf("event %d has TraceID %d, want %d (oldest-first order)", i, ev.TraceID, want)
		}
	}
}

func TestSampled(t *testing.T) {
	every := New(Options{})
	for seq := int64(0); seq < 5; seq++ {
		if !every.Sampled(seq) {
			t.Fatalf("Sample<=1 recorder not sampled at %d", seq)
		}
	}
	tenth := New(Options{Sample: 10})
	for seq := int64(0); seq < 30; seq++ {
		want := seq%10 == 0
		if tenth.Sampled(seq) != want {
			t.Fatalf("Sample=10 Sampled(%d) = %v, want %v", seq, tenth.Sampled(seq), want)
		}
	}
}

func TestAudit(t *testing.T) {
	r := New(Options{})
	a := r.Audit()
	const delta = 2.0
	a.Observe(10, 2.5, delta)
	a.Observe(11, 6.0, delta)
	a.Observe(12, 1.5, delta) // under δ: broken-mirror evidence
	a.Observe(13, 3.0, delta)
	s := a.Snapshot()
	if s.Applies != 4 {
		t.Fatalf("Applies = %d, want 4", s.Applies)
	}
	if s.Delta != delta {
		t.Fatalf("Delta = %v, want %v", s.Delta, delta)
	}
	if s.MaxAbsInnovation != 6.0 || s.MaxSeq != 11 {
		t.Fatalf("max = %v at seq %d, want 6.0 at 11", s.MaxAbsInnovation, s.MaxSeq)
	}
	if s.MaxOverDelta != 3.0 {
		t.Fatalf("MaxOverDelta = %v, want 3.0", s.MaxOverDelta)
	}
	if s.UnderDeltaSends != 1 {
		t.Fatalf("UnderDeltaSends = %d, want 1", s.UnderDeltaSends)
	}
	if s.LastAbsInnovation != 3.0 || s.LastSeq != 13 {
		t.Fatalf("last = %v at seq %d, want 3.0 at 13", s.LastAbsInnovation, s.LastSeq)
	}
	wantMean := (2.5 + 6.0 + 1.5 + 3.0) / 4
	if s.MeanAbsInnovation != wantMean {
		t.Fatalf("MeanAbsInnovation = %v, want %v", s.MeanAbsInnovation, wantMean)
	}
}

// TestConcurrentRecordAndSnapshot hammers one recorder from several
// writers while a reader snapshots continuously. Run with -race this
// proves the seqlock scheme is data-race-free; the field consistency
// check proves snapshots never surface a torn event (every writer
// stores TraceID == Seq == Aux, so any mix of two writes would break
// the equality).
func TestConcurrentRecordAndSnapshot(t *testing.T) {
	r := New(Options{RingSize: 64})
	a := r.Audit()
	const writers = 4
	const perWriter = 5000
	stop := make(chan struct{})
	var readerDone sync.WaitGroup
	readerDone.Add(1)
	go func() {
		defer readerDone.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, ev := range r.Events() {
				if ev.TraceID != ev.Seq || ev.TraceID != ev.Aux {
					t.Errorf("torn event surfaced: %+v", ev)
					return
				}
			}
			a.Snapshot()
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := int64(w*perWriter + i)
				r.Record(&Event{TraceID: id, Seq: id, Kind: KindApply, Aux: id})
				a.Observe(id, float64(i%7), 3)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readerDone.Wait()
	if got := r.Recorded(); got != writers*perWriter {
		t.Fatalf("Recorded() = %d, want %d", got, writers*perWriter)
	}
	if s := a.Snapshot(); s.Applies != writers*perWriter {
		t.Fatalf("audit Applies = %d, want %d", s.Applies, writers*perWriter)
	}
}
