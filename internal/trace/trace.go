// Package trace is the per-update lifecycle flight recorder behind the
// /tracez admin endpoint: a fixed-size, lock-free ring of trace events
// that records each reading's causal chain through the DKF protocol —
// KFc smoothing in/out, the mirror KFm prediction, the residual against
// δ, the send/suppress decision with its numeric evidence, the wire
// frame, the server-side apply, the WAL append, and the query Answer it
// influenced.
//
// The recorder is built for the ingest hot path: Record performs no
// allocation and takes no lock (a seqlock-style versioned slot write),
// every method is nil-receiver safe so tracing compiles down to one
// branch when disabled, and readers (the /tracez scrape) never stop
// writers — a snapshot simply skips slots that were mid-write.
//
// Alongside the ring, each recorder carries a divergence Audit over the
// server-side innovation sequence. Mirror synchrony makes every
// transmitted non-bootstrap update one the mirror's prediction missed
// by more than δ, so the server-observed |innovation| of an applied
// update exceeding δ is expected — but its running maximum bounds how
// far the answered prediction ever was from a measurement, and an
// applied update whose |innovation| is at or below δ is evidence of a
// broken mirror (the source transmitted a reading the server's own
// prediction covered). Both are per-stream signals PR 3's aggregate
// whiteness gauge cannot localize to a single update.
package trace

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// Kind identifies a trace event's stage in the update lifecycle.
type Kind uint8

// Event kinds, in causal order along one reading's chain.
const (
	KindSmooth   Kind = 1  // KFc smoothing: Raw in, Value out
	KindPredict  Kind = 2  // KFm prediction: Pred, Residual vs Delta
	KindDecision Kind = 3  // send/suppress decision with evidence (Dec set)
	KindWireTx   Kind = 4  // update frame buffered for transmission (Aux = wire bytes)
	KindWireRx   Kind = 5  // update frame received by the server (Aux = frame bytes)
	KindApply    Kind = 6  // server filter correction (Residual = |innovation|)
	KindWAL      Kind = 7  // update appended to the write-ahead log (Aux = record bytes)
	KindAnswer   Kind = 8  // query answered from the stream's prediction
	KindFwdRx    Kind = 9  // router received the traced update (Aux = route idx)
	KindFwdTx    Kind = 10 // router forwarded the update to a shard (Aux = topology epoch)
	KindFwdAck   Kind = 11 // router observed the shard's cumulative ack (Aux = target shard)
)

// String names the kind for /tracez JSON and diagnostics.
func (k Kind) String() string {
	switch k {
	case KindSmooth:
		return "smooth"
	case KindPredict:
		return "predict"
	case KindDecision:
		return "decision"
	case KindWireTx:
		return "wire_tx"
	case KindWireRx:
		return "wire_rx"
	case KindApply:
		return "apply"
	case KindWAL:
		return "wal"
	case KindAnswer:
		return "answer"
	case KindFwdRx:
		return "fwd_rx"
	case KindFwdTx:
		return "fwd_tx"
	case KindFwdAck:
		return "fwd_ack"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// ParseKind inverts Kind.String for /tracez filter parameters.
func ParseKind(s string) (Kind, error) {
	for k := KindSmooth; k <= KindFwdAck; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("trace: unknown event kind %q", s)
}

// Decision is the outcome of the source-side suppression choice.
type Decision uint8

// Decisions. The zero value means "not a decision event".
const (
	DecisionNone      Decision = 0
	DecisionSuppress  Decision = 1 // |prediction - value| <= δ: nothing sent
	DecisionSend      Decision = 2 // precision would be violated: update transmitted
	DecisionOutlier   Decision = 3 // NIS gate rejected the reading as a glitch
	DecisionBootstrap Decision = 4 // first reading: initializes both filters
)

// String names the decision for /tracez JSON and diagnostics.
func (d Decision) String() string {
	switch d {
	case DecisionNone:
		return ""
	case DecisionSuppress:
		return "suppress"
	case DecisionSend:
		return "send"
	case DecisionOutlier:
		return "outlier"
	case DecisionBootstrap:
		return "bootstrap"
	default:
		return fmt.Sprintf("decision(%d)", uint8(d))
	}
}

// ParseDecision inverts Decision.String for /tracez filter parameters.
func ParseDecision(s string) (Decision, error) {
	for d := DecisionSuppress; d <= DecisionBootstrap; d++ {
		if d.String() == s {
			return d, nil
		}
	}
	return 0, fmt.Errorf("trace: unknown decision %q", s)
}

// Event is one point on a reading's causal chain. TraceID links the
// events of one reading across layers (it is assigned by the source
// node and rides the optional wire trace tag to the server); Seq is the
// reading's stream sequence number. The float fields carry the decision
// evidence for the stream's first attribute; Residual/Delta are the
// max-abs residual across attributes against the precision width.
type Event struct {
	TraceID int64
	Seq     int64
	At      int64 // unix nanoseconds; filled by Record when zero

	Kind Kind
	Dec  Decision

	Raw      float64 // raw reading (attribute 0)
	Value    float64 // smoothed / applied / answered value (attribute 0)
	Pred     float64 // filter prediction (attribute 0)
	Residual float64 // max-abs |prediction - value| (source) or |innovation| (apply)
	Delta    float64 // precision width δ in force
	NIS      float64 // normalized innovation squared, when computed

	Aux int64 // kind-specific payload: wire/WAL bytes
}

// eventWords is the number of atomic words one ring slot stores. The
// slots hold events as word arrays — not structs — so concurrent
// Record/Events stay data-race-free by construction: every load and
// store is atomic, and the per-slot version brackets detect torn reads.
const eventWords = 11

// encode packs the event into w.
func (e *Event) encode(w *[eventWords]atomic.Uint64) {
	w[0].Store(uint64(e.TraceID))
	w[1].Store(uint64(e.Seq))
	w[2].Store(uint64(e.At))
	w[3].Store(uint64(e.Kind) | uint64(e.Dec)<<8)
	w[4].Store(f64bits(e.Raw))
	w[5].Store(f64bits(e.Value))
	w[6].Store(f64bits(e.Pred))
	w[7].Store(f64bits(e.Residual))
	w[8].Store(f64bits(e.Delta))
	w[9].Store(f64bits(e.NIS))
	w[10].Store(uint64(e.Aux))
}

// decode unpacks a slot's words into e.
func (e *Event) decode(w *[eventWords]atomic.Uint64) {
	e.TraceID = int64(w[0].Load())
	e.Seq = int64(w[1].Load())
	e.At = int64(w[2].Load())
	kd := w[3].Load()
	e.Kind = Kind(kd)
	e.Dec = Decision(kd >> 8)
	e.Raw = f64frombits(w[4].Load())
	e.Value = f64frombits(w[5].Load())
	e.Pred = f64frombits(w[6].Load())
	e.Residual = f64frombits(w[7].Load())
	e.Delta = f64frombits(w[8].Load())
	e.NIS = f64frombits(w[9].Load())
	e.Aux = int64(w[10].Load())
}

// EventView is the JSON shape of one event on /tracez. Zero-valued
// evidence fields are omitted so non-decision events stay compact.
type EventView struct {
	TraceID  int64   `json:"trace_id"`
	Seq      int64   `json:"seq"`
	AtUnixNs int64   `json:"at_unix_ns"`
	Kind     string  `json:"kind"`
	Decision string  `json:"decision,omitempty"`
	Raw      float64 `json:"raw,omitempty"`
	Value    float64 `json:"value,omitempty"`
	Pred     float64 `json:"pred,omitempty"`
	Residual float64 `json:"residual,omitempty"`
	Delta    float64 `json:"delta,omitempty"`
	NIS      float64 `json:"nis,omitempty"`
	Aux      int64   `json:"aux,omitempty"`
}

// View converts the event to its JSON shape.
func (e Event) View() EventView {
	return EventView{
		TraceID:  e.TraceID,
		Seq:      e.Seq,
		AtUnixNs: e.At,
		Kind:     e.Kind.String(),
		Decision: e.Dec.String(),
		Raw:      e.Raw,
		Value:    e.Value,
		Pred:     e.Pred,
		Residual: e.Residual,
		Delta:    e.Delta,
		NIS:      e.NIS,
		Aux:      e.Aux,
	}
}

// DecisionInfo is the evidence bundle for one source-side suppression
// decision — what the optional wire trace tag carries to the server so
// /tracez/stream/{id} can show why a transmitted update was sent.
// Scalar evidence is for the stream's first attribute; Residual is the
// max-abs residual across attributes.
type DecisionInfo struct {
	TraceID  int64
	Seq      int64
	Decision Decision
	Raw      float64
	Smoothed float64
	Pred     float64
	Residual float64
	Delta    float64
	NIS      float64
	// At is when the source made the decision, in unix nanoseconds.
	// Zero means unknown (a peer that does not carry timestamps); the
	// hop-trace wire extension fills it so downstream recorders can
	// stamp the relayed decision event with source time.
	At int64
}

// slot is one ring cell: a version word bracketing the event words.
// The version encodes the writing state in its low bit (odd = write in
// progress) and the slot's generation in the remaining bits, so a
// reader can tell both "torn" and "lapped" slots apart from settled
// ones with two loads.
type slot struct {
	ver atomic.Uint64
	w   [eventWords]atomic.Uint64
}

// Options configures a Recorder.
type Options struct {
	// RingSize is the per-stream event capacity, rounded up to a power
	// of two; <= 0 picks DefaultRingSize.
	RingSize int
	// Sample records the full per-reading trail (smooth, predict,
	// suppress decisions) only for readings whose Seq is a multiple of
	// Sample; <= 1 records every reading. Send, bootstrap, and outlier
	// decisions — the rare, interesting ones — are always recorded
	// regardless of sampling, as are all server-side events.
	Sample int
}

// DefaultRingSize is the per-stream event capacity when Options does
// not specify one. 256 events cover roughly the last 50–80 readings of
// a fully traced stream — sized to hold "what just happened" for a
// post-hoc look, not history (the WAL is history).
const DefaultRingSize = 256

// Recorder is one stream's flight recorder: the event ring plus the
// divergence audit. All methods are safe for concurrent use and
// nil-receiver safe.
type Recorder struct {
	mask   uint64
	sample int64
	cursor atomic.Uint64
	slots  []slot
	audit  Audit
}

// New builds a recorder. The ring is allocated up front; steady-state
// recording never allocates again.
func New(opts Options) *Recorder {
	n := opts.RingSize
	if n <= 0 {
		n = DefaultRingSize
	}
	size := 1
	for size < n {
		size <<= 1
	}
	sample := int64(opts.Sample)
	if sample < 1 {
		sample = 1
	}
	return &Recorder{mask: uint64(size - 1), sample: sample, slots: make([]slot, size)}
}

// Cap returns the ring capacity in events (0 on a nil recorder).
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Recorded returns the total number of events recorded since creation,
// including those the ring has since overwritten.
func (r *Recorder) Recorded() uint64 {
	if r == nil {
		return 0
	}
	return r.cursor.Load()
}

// Sampled reports whether the full per-reading trail should be recorded
// for a reading at seq. False on a nil recorder, so call sites guard
// their optional events with one method call.
func (r *Recorder) Sampled(seq int64) bool {
	if r == nil {
		return false
	}
	return r.sample <= 1 || seq%r.sample == 0
}

// Record appends one event to the ring. It is lock-free and performs no
// allocation: the event is written into the claimed slot's atomic words
// between two version stores, so a concurrent snapshot either sees the
// settled generation or skips the slot. If two writers lap the ring
// fast enough to collide on one slot the generation check discards it —
// a flight recorder trades that vanishing-probability loss for a
// wait-free hot path. Nil-receiver safe; ev.At is stamped when zero.
func (r *Recorder) Record(ev *Event) {
	if r == nil {
		return
	}
	if ev.At == 0 {
		ev.At = nowUnixNanos()
	}
	i := r.cursor.Add(1) - 1
	s := &r.slots[i&r.mask]
	s.ver.Store(i<<1 | 1) // odd: write in progress
	ev.encode(&s.w)
	s.ver.Store((i + 1) << 1) // even: generation i settled
}

// Events returns a snapshot of the ring's settled events, oldest first.
// It never blocks writers; slots written (or lapped) while the snapshot
// runs are skipped.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	c := r.cursor.Load()
	n := uint64(len(r.slots))
	start := uint64(0)
	if c > n {
		start = c - n
	}
	out := make([]Event, 0, c-start)
	for i := start; i < c; i++ {
		s := &r.slots[i&r.mask]
		want := (i + 1) << 1
		if s.ver.Load() != want {
			continue
		}
		var ev Event
		ev.decode(&s.w)
		if s.ver.Load() != want {
			continue // overwritten mid-read: torn, drop it
		}
		out = append(out, ev)
	}
	return out
}

// Audit returns the recorder's divergence audit (nil on a nil
// recorder; Audit methods are themselves nil-safe).
func (r *Recorder) Audit() *Audit {
	if r == nil {
		return nil
	}
	return &r.audit
}

// Audit accumulates the server-side divergence evidence for one stream:
// the running max |innovation| of applied updates against δ, and the
// count of applied updates whose |innovation| was at or below δ — which
// mirror synchrony says should never happen for a non-bootstrap
// transmission, so a nonzero count is broken-mirror evidence.
type Audit struct {
	applies    atomic.Int64
	underDelta atomic.Int64
	deltaBits  atomic.Uint64
	lastBits   atomic.Uint64
	lastSeq    atomic.Int64
	sumBits    atomic.Uint64
	maxBits    atomic.Uint64
	maxSeq     atomic.Int64
}

// Observe folds one applied non-bootstrap update's max-abs innovation
// into the audit. Lock-free, allocation-free, nil-receiver safe.
// Non-negative floats order identically to their IEEE 754 bit patterns,
// which is what lets the running max be a plain CAS loop on bits.
func (a *Audit) Observe(seq int64, absInnov, delta float64) {
	if a == nil {
		return
	}
	a.applies.Add(1)
	a.deltaBits.Store(f64bits(delta))
	a.lastBits.Store(f64bits(absInnov))
	a.lastSeq.Store(seq)
	if absInnov <= delta {
		a.underDelta.Add(1)
	}
	for {
		old := a.sumBits.Load()
		if a.sumBits.CompareAndSwap(old, f64bits(f64frombits(old)+absInnov)) {
			break
		}
	}
	bits := f64bits(absInnov)
	for {
		old := a.maxBits.Load()
		if bits <= old {
			return
		}
		if a.maxBits.CompareAndSwap(old, bits) {
			a.maxSeq.Store(seq)
			return
		}
	}
}

// AuditSnapshot is the JSON shape of the divergence audit on
// /tracez/stream/{id}.
type AuditSnapshot struct {
	// Applies is the number of non-bootstrap updates audited.
	Applies int64 `json:"applies"`
	// Delta is the precision width the stream is held to.
	Delta float64 `json:"delta"`
	// LastAbsInnovation / LastSeq describe the most recent audited apply.
	LastAbsInnovation float64 `json:"last_abs_innovation"`
	LastSeq           int64   `json:"last_seq"`
	// MeanAbsInnovation averages |innovation| over all audited applies.
	MeanAbsInnovation float64 `json:"mean_abs_innovation"`
	// MaxAbsInnovation / MaxSeq locate the worst observed divergence:
	// the largest distance between the server's pre-correction
	// prediction and a transmitted measurement, and the reading it
	// happened at. MaxOverDelta is the same maximum in δ units — a
	// stream behaving per its model hovers just above 1; a mis-model or
	// an injected spike stands out.
	MaxAbsInnovation float64 `json:"max_abs_innovation"`
	MaxSeq           int64   `json:"max_abs_innovation_seq"`
	MaxOverDelta     float64 `json:"max_over_delta"`
	// UnderDeltaSends counts applied updates whose |innovation| was at
	// or below δ. The mirror should have suppressed those readings, so
	// anything nonzero is evidence the mirror and server filters have
	// desynchronized.
	UnderDeltaSends int64 `json:"under_delta_sends"`
}

// Snapshot reads the audit without stopping writers. Each field is a
// settled atomic value; cross-field consistency is best-effort.
func (a *Audit) Snapshot() AuditSnapshot {
	var s AuditSnapshot
	if a == nil {
		return s
	}
	s.Applies = a.applies.Load()
	s.Delta = f64frombits(a.deltaBits.Load())
	s.LastAbsInnovation = f64frombits(a.lastBits.Load())
	s.LastSeq = a.lastSeq.Load()
	s.MaxAbsInnovation = f64frombits(a.maxBits.Load())
	s.MaxSeq = a.maxSeq.Load()
	s.UnderDeltaSends = a.underDelta.Load()
	if s.Applies > 0 {
		s.MeanAbsInnovation = f64frombits(a.sumBits.Load()) / float64(s.Applies)
	}
	if s.Delta > 0 {
		s.MaxOverDelta = s.MaxAbsInnovation / s.Delta
	}
	return s
}

// epochWall anchors event timestamps: wall-clock base plus a monotonic
// offset, so stamping an event is one time.Since (no allocation, no
// syscall-visible wall-clock jumps mid-run).
var epochWall = time.Now()
var epochUnixNs = epochWall.UnixNano()

// nowUnixNanos returns the current time as monotonic-anchored unix
// nanoseconds.
func nowUnixNanos() int64 { return epochUnixNs + int64(time.Since(epochWall)) }

// Now exposes the recorder's clock so other layers (the wire hop-trace
// extension, the cluster router) can stamp timestamps that sort
// consistently against recorded events.
func Now() int64 { return nowUnixNanos() }

// f64bits/f64frombits shorten math.Float64bits/Float64frombits at the
// encode/decode call sites.
func f64bits(f float64) uint64 { return math.Float64bits(f) }

func f64frombits(b uint64) float64 { return math.Float64frombits(b) }
