package trace

import "testing"

// BenchmarkTraceRecord pins the cost of one flight-recorder write. The
// acceptance bar is 0 allocs/op steady-state: recording must be free
// enough to sit on the DKF ingest hot path (ReportAllocs makes the
// regression visible in `make bench` output).
func BenchmarkTraceRecord(b *testing.B) {
	r := New(Options{RingSize: 256})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Record(&Event{
			TraceID: int64(i), Seq: int64(i), At: int64(i + 1),
			Kind: KindDecision, Dec: DecisionSuppress,
			Raw: 1.5, Value: 1.25, Pred: 1.3, Residual: 0.05, Delta: 0.5,
		})
	}
}

// BenchmarkTraceRecordStamped is the production shape: At == 0, so
// Record stamps the timestamp itself.
func BenchmarkTraceRecordStamped(b *testing.B) {
	r := New(Options{RingSize: 256})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Record(&Event{TraceID: int64(i), Seq: int64(i), Kind: KindApply, Residual: 0.7, Delta: 0.5})
	}
}

// TestTraceRecordAllocFree is the CI gate for the benchmark above:
// steady-state recording (timestamp stamping included) must allocate
// nothing.
func TestTraceRecordAllocFree(t *testing.T) {
	r := New(Options{RingSize: 64})
	a := r.Audit()
	var seq int64
	allocs := testing.AllocsPerRun(1000, func() {
		seq++
		r.Record(&Event{TraceID: seq, Seq: seq, Kind: KindDecision, Dec: DecisionSend, Residual: 0.7, Delta: 0.5})
		a.Observe(seq, 0.7, 0.5)
	})
	if allocs != 0 {
		t.Fatalf("Record+Observe allocated %v allocs/op, want 0", allocs)
	}
}

// TestEventsSnapshotAllocsBounded pins the read side loosely: a
// snapshot allocates only its output slice (one backing array), never
// per-event garbage.
func TestEventsSnapshotAllocsBounded(t *testing.T) {
	r := New(Options{RingSize: 64})
	for i := 0; i < 100; i++ {
		r.Record(&Event{TraceID: int64(i), Seq: int64(i), Kind: KindApply})
	}
	allocs := testing.AllocsPerRun(100, func() {
		if len(r.Events()) == 0 {
			t.Fatal("no events")
		}
	})
	if allocs > 1 {
		t.Fatalf("Events() allocated %v allocs/op, want <= 1", allocs)
	}
}
