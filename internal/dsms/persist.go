package dsms

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"streamkf/internal/core"
	"streamkf/internal/dsms/wire"
	"streamkf/internal/stream"
	"streamkf/internal/wal"
)

// Durability: the server's crash-recovery layer over internal/wal.
//
// Every state-mutating event is logged — query registrations, received
// updates (bootstrap included) and batch prediction advances — and a
// periodic checkpoint snapshots the full per-stream filter state so the
// log can be truncated. Suppressed readings cost nothing: they are
// reconstructed at replay from the same sequence gaps the live server
// counted (§3.1's update suppression is also a durability optimization:
// the update stream is the minimal sufficient statistic for KFs).
//
// Ordering contract. An update is logged *after* it applies, under the
// same per-source lock, and before the TCP layer acks it. Logging after
// applying (rather than write-ahead) matters for exactness: ApplyUpdate
// rejects updates that arrive behind an already-advanced prediction, and
// a rejected update must never enter the log or replay would apply it.
// Because append and apply share one critical section, the per-source
// record order in the log equals the per-source apply order, which is
// all replay needs — sources are independent filter pairs, so
// cross-source interleaving is immaterial.
//
// Crash windows. Applied-but-not-logged (crash between apply and
// append): the update was never acked, the source resends it after
// reconnecting, and the recovered server — which never saw it — applies
// it then. Logged-but-not-acked: the recovered server's install reply
// carries ResumeSeq = its recovered last sequence, and the source drops
// pending updates at or below it. Both windows close without double
// applies or gaps.
//
// Lock order: Server.mu → sourceState.mu → wal.Log's internal mutex
// (always a leaf); the checkpoint mutex is taken before any of them and
// never inside.

// WAL record tags. The wire protocol owns 0x01–0x0f; durability records
// start at 0x10.
const (
	walTagRegister byte = 0x10 // str queryID, str sourceID, str model, f64 delta, f64 F
	walTagUpdate   byte = 0x11 // wire update payload (wire.AppendUpdate), verbatim
	walTagAdvance  byte = 0x12 // str sourceID, i64 seq (StepAll batch advance)
)

// DurabilityOptions configures Open.
type DurabilityOptions struct {
	// Sync is the WAL fsync policy (wal.SyncAlways zero value).
	Sync wal.SyncPolicy
	// SyncEvery is the wal.SyncInterval flush period; <= 0 picks the
	// wal default.
	SyncEvery time.Duration
	// SegmentBytes is the WAL segment rotation threshold; <= 0 picks
	// the wal default.
	SegmentBytes int64
	// CheckpointEvery writes a checkpoint after this many logged
	// updates. <= 0 disables automatic checkpoints (Checkpoint can
	// still be called explicitly, and Close writes a final one).
	CheckpointEvery int
}

// durability is the server's persistence state; nil on a non-durable
// server.
type durability struct {
	log  *wal.Log
	dir  string
	ins  *wal.Instruments
	opts DurabilityOptions

	// replaying suppresses the append hooks while recovery feeds
	// historical records back through the normal apply paths. Set only
	// during Open, before the server is shared.
	replaying bool

	sinceCkpt atomic.Int64 // updates logged since the last checkpoint
	lastCkpt  atomic.Int64 // wall-clock UnixNano of the last checkpoint (0 before any)
	ckptMu    chanMutex    // serializes checkpoints without blocking ingest
}

// chanMutex is a mutex with TryLock semantics on a channel, so the
// ingest path can trigger a checkpoint opportunistically and walk away
// when one is already running.
type chanMutex chan struct{}

func newChanMutex() chanMutex {
	m := make(chanMutex, 1)
	m <- struct{}{}
	return m
}

func (m chanMutex) lock()   { <-m }
func (m chanMutex) unlock() { m <- struct{}{} }
func (m chanMutex) tryLock() bool {
	select {
	case <-m:
		return true
	default:
		return false
	}
}

// Open builds a durable server over dataDir: it opens (creating if
// empty) the write-ahead log, restores the latest checkpoint, replays
// the remaining log records, and returns a server whose filters,
// counters and seq↔time mappings are bit-identical to the process that
// wrote them. A torn final record — a crash mid-append — is truncated
// away; corruption anywhere else fails recovery loudly.
func Open(catalog *Catalog, dataDir string, opts DurabilityOptions) (*Server, error) {
	s := NewServer(catalog)
	ins := wal.NewInstruments(s.tel.reg)
	log, err := wal.Open(dataDir, wal.Options{
		SegmentBytes: opts.SegmentBytes,
		Sync:         opts.Sync,
		SyncEvery:    opts.SyncEvery,
		Ins:          ins,
	})
	if err != nil {
		return nil, fmt.Errorf("dsms: opening wal: %w", err)
	}
	s.db = &durability{log: log, dir: dataDir, ins: ins, opts: opts, replaying: true, ckptMu: newChanMutex()}

	fail := func(err error) (*Server, error) {
		log.Close()
		return nil, err
	}
	start := time.Now()
	payload, err := wal.ReadCheckpoint(dataDir)
	if err != nil {
		return fail(fmt.Errorf("dsms: reading checkpoint: %w", err))
	}
	if payload != nil {
		if err := s.restoreCheckpoint(payload); err != nil {
			return fail(fmt.Errorf("dsms: restoring checkpoint: %w", err))
		}
		// Seed the checkpoint age from the file's mtime so a freshly
		// restarted server reports how stale its recovery point is, not
		// "never checkpointed".
		if fi, err := os.Stat(filepath.Join(dataDir, wal.CheckpointName)); err == nil {
			s.db.lastCkpt.Store(fi.ModTime().UnixNano())
		}
	}
	var u core.Update
	var replayed int64
	err = log.Replay(func(tag byte, p []byte) error {
		replayed++
		return s.replayRecord(tag, p, &u)
	})
	if err != nil {
		return fail(fmt.Errorf("dsms: replaying wal: %w", err))
	}
	s.db.replaying = false
	ins.ObserveRecovery(time.Since(start), replayed)
	return s, nil
}

// Durable reports whether the server persists its state.
func (s *Server) Durable() bool { return s.db != nil }

// HasQuery reports whether a query id is already registered — how a
// restarted process discovers that its startup registrations were
// recovered from the checkpoint and need not (must not) be repeated.
func (s *Server) HasQuery(queryID string) bool {
	_, ok := s.lookupQuery(queryID)
	return ok
}

// ResumeSeq returns the last update sequence folded into sourceID's
// filter, or -1 when the source has no bootstrapped filter. The TCP
// handshake sends it so a reconnecting source with live mirror state
// resumes — resending only unacknowledged updates past it — instead of
// re-bootstrapping.
func (s *Server) ResumeSeq(sourceID string) int64 {
	s.mu.RLock()
	st := s.sources[sourceID]
	s.mu.RUnlock()
	if st == nil {
		return -1
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.node == nil || !st.node.Bootstrapped() {
		return -1
	}
	return int64(st.lastSeq)
}

// Close releases the server's durable resources: it writes a final
// checkpoint (so the next Open replays almost nothing) and closes the
// log, making everything appended so far durable regardless of the
// fsync policy. A non-durable server's Close is a no-op.
func (s *Server) Close() error {
	// Stop the self-monitor's ticker first so no snapshot races the
	// teardown below; harmless when none is attached.
	if m := s.SelfMon(); m != nil {
		m.Close()
	}
	if s.db == nil {
		return nil
	}
	ckptErr := s.Checkpoint()
	closeErr := s.db.log.Close()
	if ckptErr != nil {
		return ckptErr
	}
	return closeErr
}

// appendRegister logs one accepted registration. Caller holds s.mu.
func (db *durability) appendRegister(q stream.Query) error {
	if db == nil || db.replaying {
		return nil
	}
	buf := make([]byte, 0, 64+len(q.ID)+len(q.SourceID)+len(q.Model))
	var err error
	if buf, err = wire.AppendString(buf, q.ID); err != nil {
		return err
	}
	if buf, err = wire.AppendString(buf, q.SourceID); err != nil {
		return err
	}
	if buf, err = wire.AppendString(buf, q.Model); err != nil {
		return err
	}
	buf = wire.AppendF64(buf, q.Delta)
	buf = wire.AppendF64(buf, q.F)
	return db.log.Append(walTagRegister, buf)
}

// appendUpdate logs one applied update, reusing the source's scratch
// buffer (caller holds st.mu), so the steady-state ingest path logs
// without allocating.
func (db *durability) appendUpdate(st *sourceState, u *core.Update) error {
	var err error
	if st.walBuf, err = wire.AppendUpdate(st.walBuf[:0], u); err != nil {
		return err
	}
	if err := db.log.Append(walTagUpdate, st.walBuf); err != nil {
		return err
	}
	db.sinceCkpt.Add(1)
	return nil
}

// appendAdvance logs one batch prediction advance (caller holds st.mu).
func (db *durability) appendAdvance(st *sourceState, seq int) error {
	var err error
	if st.walBuf, err = wire.AppendString(st.walBuf[:0], st.id); err != nil {
		return err
	}
	st.walBuf = wire.AppendI64(st.walBuf, int64(seq))
	return db.log.Append(walTagAdvance, st.walBuf)
}

// shouldCheckpoint reports whether the automatic checkpoint threshold
// has been crossed.
func (db *durability) shouldCheckpoint() bool {
	return db != nil && !db.replaying && db.opts.CheckpointEvery > 0 &&
		db.sinceCkpt.Load() >= int64(db.opts.CheckpointEvery)
}

// maybeCheckpoint runs a checkpoint if one is due and none is running.
// Called from the ingest path outside all locks; the failure mode is
// "try again after the next update", so the error is only counted.
func (s *Server) maybeCheckpoint() {
	if !s.db.shouldCheckpoint() || !s.db.ckptMu.tryLock() {
		return
	}
	defer s.db.ckptMu.unlock()
	_ = s.checkpointLocked()
}

// Checkpoint snapshots the full server state into the data directory's
// checkpoint file and truncates the log's sealed segments. Safe to call
// concurrently with ingest: streams keep flowing while the snapshot is
// cut, and the per-source sequence numbers in the snapshot make replay
// of any overlapping records idempotent.
func (s *Server) Checkpoint() error {
	if s.db == nil {
		return errors.New("dsms: server is not durable")
	}
	s.db.ckptMu.lock()
	defer s.db.ckptMu.unlock()
	return s.checkpointLocked()
}

func (s *Server) checkpointLocked() error {
	start := time.Now()
	// Seal the current segment first: everything logged before this
	// instant lands in a sealed segment that the snapshot (cut after)
	// fully covers, so those segments can be removed.
	active, err := s.db.log.Rotate()
	if err != nil {
		return err
	}
	payload, seqs := s.encodeCheckpoint()
	if err := wal.WriteCheckpoint(s.db.dir, payload); err != nil {
		return err
	}
	// The snapshot is durable: publish the per-source coverage marks
	// and drop the sealed segments it supersedes.
	for st, seq := range seqs {
		st.mu.Lock()
		st.ckptSeq = seq
		st.mu.Unlock()
	}
	if _, err := s.db.log.RemoveSegmentsBefore(active); err != nil {
		return err
	}
	s.db.sinceCkpt.Store(0)
	s.db.lastCkpt.Store(time.Now().UnixNano())
	s.db.ins.ObserveCheckpoint(time.Since(start))
	return nil
}

// Checkpoint payload layout (wrapped by wal's checksummed checkpoint
// file; all integers little-endian, strings u16-length-prefixed):
//
//	u32 sources
//	per source:
//	  str sourceID
//	  u32 queries; per query: str id, str model, f64 delta, f64 F
//	  i64 lastSeq            (last transmitted update; -1 before any)
//	  i64 updates, suppressed, bytes   (counter values)
//	  u8 anchored; i64 bootSeq; f64 bootTime; i64 tmLastSeq; f64 tmLastTime
//	  u8 nodeState           (0 none, 1 installed, 2 bootstrapped)
//	  if bootstrapped: i64 k, i64 seq, i64 ticks, f64 lastNIS, u8 nisValid,
//	    u16 len(x), f64…, u32 len(p), f64…, u16 innovs, per innov: u16 len, f64…

// encodeCheckpoint cuts a consistent-per-source snapshot of the whole
// server. The topology is pinned by the read lock; each source is
// snapshotted under its runtime lock, so every stream's filter state,
// counters and sequence numbers are mutually consistent even while
// other streams keep ingesting. Returns the payload and each source's
// covered sequence number, to publish once the checkpoint is durable.
func (s *Server) encodeCheckpoint() ([]byte, map[*sourceState]int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	seqs := make(map[*sourceState]int, len(s.sources))
	buf := make([]byte, 0, 1024)
	buf = wire.AppendU32(buf, uint32(len(s.sources)))
	for _, st := range s.sources {
		var seq int
		buf, seq = appendSourceEntry(buf, st)
		seqs[st] = seq
	}
	return buf, seqs
}

// appendSourceEntry encodes one source's full state — queries, counters,
// seq↔time mapping, filter snapshot — in the checkpoint layout above,
// returning the extended buffer and the last update seq the entry
// covers. It is the shared snapshot body for whole-server checkpoints
// and single-stream migration transfers (shard.go). Caller holds s.mu
// (read suffices); the source's runtime lock is taken here.
func appendSourceEntry(buf []byte, st *sourceState) ([]byte, int) {
	buf, _ = wire.AppendString(buf, st.id)
	buf = wire.AppendU32(buf, uint32(len(st.queries)))
	for _, q := range st.queries {
		buf, _ = wire.AppendString(buf, q.ID)
		buf, _ = wire.AppendString(buf, q.Model)
		buf = wire.AppendF64(buf, q.Delta)
		buf = wire.AppendF64(buf, q.F)
	}
	st.mu.Lock()
	buf = wire.AppendI64(buf, int64(st.lastSeq))
	buf = wire.AppendI64(buf, st.ins.updates.Value())
	buf = wire.AppendI64(buf, st.ins.suppressed.Value())
	buf = wire.AppendI64(buf, st.ins.bytes.Value())
	buf = append(buf, b2u8(st.times.anchored))
	buf = wire.AppendI64(buf, int64(st.times.bootSeq))
	buf = wire.AppendF64(buf, st.times.bootTime)
	buf = wire.AppendI64(buf, int64(st.times.lastSeq))
	buf = wire.AppendF64(buf, st.times.lastTime)
	var snap *core.NodeSnapshot
	switch {
	case st.node == nil:
		buf = append(buf, 0)
	case !st.node.Bootstrapped():
		buf = append(buf, 1)
	default:
		buf = append(buf, 2)
		snap = st.node.Snapshot()
	}
	seq := st.lastSeq
	st.mu.Unlock()
	if snap != nil {
		buf = wire.AppendI64(buf, int64(snap.K))
		buf = wire.AppendI64(buf, int64(snap.Seq))
		buf = wire.AppendI64(buf, int64(snap.Ticks))
		buf = wire.AppendF64(buf, snap.LastNIS)
		buf = append(buf, b2u8(snap.NISValid))
		buf = wire.AppendU16(buf, uint16(len(snap.X)))
		for _, v := range snap.X {
			buf = wire.AppendF64(buf, v)
		}
		buf = wire.AppendU32(buf, uint32(len(snap.P)))
		for _, v := range snap.P {
			buf = wire.AppendF64(buf, v)
		}
		buf = wire.AppendU16(buf, uint16(len(snap.Innovations)))
		for _, innov := range snap.Innovations {
			buf = wire.AppendU16(buf, uint16(len(innov)))
			for _, v := range innov {
				buf = wire.AppendF64(buf, v)
			}
		}
	}
	return buf, seq
}

func b2u8(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// errBadCheckpoint wraps wal.ErrCorrupt so callers can treat a
// malformed checkpoint payload like any other on-disk corruption.
func errBadCheckpoint(what string) error {
	return fmt.Errorf("%w: checkpoint payload: %s", wal.ErrCorrupt, what)
}

// restoreCheckpoint rebuilds the server from a checkpoint payload. It
// routes queries back through Register — so the shared per-source
// configuration is recomputed by the same min-Δ rules that produced it —
// then restores each filter bit-identically from its snapshot.
func (s *Server) restoreCheckpoint(p []byte) error {
	c := wire.NewCursor(p)
	nSources := int(c.U32())
	if !c.OK() {
		return errBadCheckpoint("truncated header")
	}
	for i := 0; i < nSources; i++ {
		if _, _, err := s.restoreSourceEntry(&c); err != nil {
			return err
		}
	}
	if !c.Done() {
		return errBadCheckpoint("trailing bytes")
	}
	return nil
}

// restoreSourceEntry decodes one source entry (the appendSourceEntry
// layout) from c and installs it: queries re-registered through
// Register so the shared min-Δ configuration is recomputed, the filter
// restored bit-identically from its snapshot, counters and seq↔time
// mapping put back. It is the shared restore body for checkpoint
// recovery and migration installs (shard.go). Counters are added only
// when the source's update counter is still zero, so re-adopting a
// stream that already lived on this server (a migrate-back) does not
// double-count its history.
func (s *Server) restoreSourceEntry(c *wire.Cursor) (sourceID string, lastSeq int, err error) {
	sourceID = string(c.Str())
	nQueries := int(c.U32())
	if !c.OK() {
		return "", 0, errBadCheckpoint("truncated source entry")
	}
	for j := 0; j < nQueries; j++ {
		q := stream.Query{SourceID: sourceID}
		q.ID = string(c.Str())
		q.Model = string(c.Str())
		q.Delta = c.F64()
		q.F = c.F64()
		if !c.OK() {
			return "", 0, errBadCheckpoint("truncated query entry")
		}
		// An already-present query is adopted, not an error: a migration
		// target may have the sub-queries pre-registered by the router,
		// and a checkpoint restore starts from an empty server where
		// HasQuery is always false.
		if s.HasQuery(q.ID) {
			continue
		}
		if err := s.Register(q); err != nil {
			return "", 0, fmt.Errorf("dsms: re-registering %s: %w", q.ID, err)
		}
	}
	lastSeq = int(c.I64())
	updates := c.I64()
	suppressed := c.I64()
	bytes := c.I64()
	anchored := c.U8() != 0
	bootSeq := int(c.I64())
	bootTime := c.F64()
	tmLastSeq := int(c.I64())
	tmLastTime := c.F64()
	nodeState := c.U8()
	var snap *core.NodeSnapshot
	if nodeState == 2 {
		snap = &core.NodeSnapshot{}
		snap.K = int(c.I64())
		snap.Seq = int(c.I64())
		snap.Ticks = int(c.I64())
		snap.LastNIS = c.F64()
		snap.NISValid = c.U8() != 0
		nx := int(c.U16())
		if !c.OK() || nx > c.Remaining() {
			return "", 0, errBadCheckpoint("truncated filter state")
		}
		snap.X = make([]float64, nx)
		for k := range snap.X {
			snap.X[k] = c.F64()
		}
		np := int(c.U32())
		if !c.OK() || np > c.Remaining() {
			return "", 0, errBadCheckpoint("truncated filter state")
		}
		snap.P = make([]float64, np)
		for k := range snap.P {
			snap.P[k] = c.F64()
		}
		ni := int(c.U16())
		snap.Innovations = make([][]float64, ni)
		for k := range snap.Innovations {
			nv := int(c.U16())
			if !c.OK() || nv > c.Remaining() {
				return "", 0, errBadCheckpoint("truncated innovation window")
			}
			innov := make([]float64, nv)
			for m := range innov {
				innov[m] = c.F64()
			}
			snap.Innovations[k] = innov
		}
	}
	if !c.OK() {
		return "", 0, errBadCheckpoint("truncated source state")
	}
	if nodeState >= 1 {
		if _, err := s.InstallFor(sourceID); err != nil {
			return "", 0, fmt.Errorf("dsms: reinstalling %s: %w", sourceID, err)
		}
	}
	s.mu.RLock()
	st := s.sources[sourceID]
	s.mu.RUnlock()
	if st == nil {
		return "", 0, errBadCheckpoint("source entry with no queries")
	}
	st.mu.Lock()
	if snap != nil {
		if err := st.node.RestoreSnapshot(snap); err != nil {
			st.mu.Unlock()
			return "", 0, fmt.Errorf("dsms: restoring filter for %s: %w", sourceID, err)
		}
	}
	st.lastSeq = lastSeq
	st.ckptSeq = lastSeq
	if st.ins.updates.Value() == 0 {
		st.ins.updates.Add(updates)
		st.ins.suppressed.Add(suppressed)
		st.ins.bytes.Add(bytes)
	}
	if st.node != nil {
		st.ins.seq.SetInt(int64(st.node.Seq()))
	}
	st.times = timeMap{anchored: anchored, bootSeq: bootSeq, bootTime: bootTime, lastSeq: tmLastSeq, lastTime: tmLastTime}
	st.version.Add(1)
	st.mu.Unlock()
	return sourceID, lastSeq, nil
}

// replayRecord applies one WAL record during recovery. Records already
// covered by the checkpoint are skipped by sequence number; everything
// else flows through the same Register/HandleUpdate/AdvanceTo paths the
// live server used, so the recovered state is the state those calls
// produced the first time.
func (s *Server) replayRecord(tag byte, p []byte, u *core.Update) error {
	switch tag {
	case walTagRegister:
		c := wire.NewCursor(p)
		q := stream.Query{}
		q.ID = string(c.Str())
		q.SourceID = string(c.Str())
		q.Model = string(c.Str())
		q.Delta = c.F64()
		q.F = c.F64()
		if !c.Done() {
			return fmt.Errorf("%w: bad register record", wal.ErrCorrupt)
		}
		// Registration records are logged before the in-memory checks
		// that can still reject them (duplicate id, model conflict), so
		// a failing replay of one reproduces a failed live call: skip.
		_ = s.Register(q)
		return nil
	case walTagUpdate:
		if err := wire.DecodeUpdatePayload(p, u); err != nil {
			return fmt.Errorf("%w: bad update record: %v", wal.ErrCorrupt, err)
		}
		s.mu.RLock()
		st := s.sources[u.SourceID]
		s.mu.RUnlock()
		if st == nil {
			return fmt.Errorf("%w: update record for unregistered source %s", wal.ErrCorrupt, u.SourceID)
		}
		st.mu.Lock()
		covered := u.Seq <= st.ckptSeq
		needsNode := st.node == nil
		st.mu.Unlock()
		if covered {
			return nil
		}
		if needsNode {
			if _, err := s.InstallFor(u.SourceID); err != nil {
				return fmt.Errorf("dsms: replay install for %s: %w", u.SourceID, err)
			}
		}
		if err := s.HandleUpdate(*u); err != nil {
			return fmt.Errorf("dsms: replaying update %s/%d: %w", u.SourceID, u.Seq, err)
		}
		return nil
	case walTagAdvance:
		c := wire.NewCursor(p)
		sourceID := string(c.Str())
		seq := int(c.I64())
		if !c.Done() {
			return fmt.Errorf("%w: bad advance record", wal.ErrCorrupt)
		}
		s.mu.RLock()
		st := s.sources[sourceID]
		s.mu.RUnlock()
		if st == nil {
			return fmt.Errorf("%w: advance record for unregistered source %s", wal.ErrCorrupt, sourceID)
		}
		st.mu.Lock()
		if st.node != nil {
			st.node.AdvanceTo(seq)
			st.version.Add(1)
		}
		st.mu.Unlock()
		return nil
	default:
		return fmt.Errorf("%w: unknown record tag 0x%02x", wal.ErrCorrupt, tag)
	}
}
