package dsms

import (
	"math"
	"testing"

	"streamkf/internal/core"
	"streamkf/internal/gen"
	"streamkf/internal/stream"
)

func historyServer(t *testing.T) (*Server, []stream.Reading) {
	t.Helper()
	s := NewServer(testCatalog())
	mustRegister(t, s, stream.Query{ID: "q", SourceID: "src", Delta: 2, Model: "linear"})
	if err := s.EnableHistory("src"); err != nil {
		t.Fatal(err)
	}
	data := gen.Ramp(400, 0, 1.5, 0.05, 21)
	cfg, err := s.InstallFor("src")
	if err != nil {
		t.Fatal(err)
	}
	agent, err := NewAgent(cfg, core.TransportFunc(func(u core.Update) error { return s.HandleUpdate(u) }))
	if err != nil {
		t.Fatal(err)
	}
	if err := agent.Run(stream.NewSliceSource(data)); err != nil {
		t.Fatal(err)
	}
	return s, data
}

func TestEnableHistoryValidation(t *testing.T) {
	s := NewServer(testCatalog())
	if err := s.EnableHistory("ghost"); err == nil {
		t.Fatal("enabled history for unknown source")
	}
	mustRegister(t, s, stream.Query{ID: "q", SourceID: "src", Delta: 2, Model: "linear"})
	if err := s.EnableHistory("src"); err != nil {
		t.Fatal(err)
	}
	if err := s.EnableHistory("src"); err == nil {
		t.Fatal("enabled history twice")
	}
	if _, err := s.InstallFor("src"); err != nil {
		t.Fatal(err)
	}
	s2 := NewServer(testCatalog())
	mustRegister(t, s2, stream.Query{ID: "q", SourceID: "src", Delta: 2, Model: "linear"})
	if _, err := s2.InstallFor("src"); err != nil {
		t.Fatal(err)
	}
	if err := s2.EnableHistory("src"); err == nil {
		t.Fatal("enabled history after streaming started")
	}
}

func TestAnswerAtReplaysPastWithinDelta(t *testing.T) {
	s, data := historyServer(t)
	// Every past seq must be answerable within ~δ of the original value
	// (update steps are exact; suppressed steps within δ of the source).
	for _, seq := range []int{0, 1, 57, 123, 250, 399} {
		ans, err := s.AnswerAt("q", seq)
		if err != nil {
			t.Fatalf("seq %d: %v", seq, err)
		}
		if d := math.Abs(ans[0] - data[seq].Values[0]); d > 2+0.5 {
			t.Fatalf("seq %d: history answer %v, truth %v (err %v > δ)", seq, ans[0], data[seq].Values[0], d)
		}
	}
	if _, err := s.AnswerAt("missing", 0); err == nil {
		t.Fatal("answered history for unknown query")
	}
}

func TestHistoryRange(t *testing.T) {
	s, data := historyServer(t)
	got, err := s.HistoryRange("q", 100, 150)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 51 || got[0].Seq != 100 || got[50].Seq != 150 {
		t.Fatalf("range shape wrong: %d readings, ends %d..%d", len(got), got[0].Seq, got[len(got)-1].Seq)
	}
	for _, r := range got {
		if d := math.Abs(r.Values[0] - data[r.Seq].Values[0]); d > 2.5 {
			t.Fatalf("seq %d: range answer err %v", r.Seq, d)
		}
	}
	if _, err := s.HistoryRange("q", -5, 10); err == nil {
		t.Fatal("accepted out-of-range from")
	}
}

func TestHistoryStatsCompression(t *testing.T) {
	s, data := historyServer(t)
	readings, corrections, err := s.HistoryStats("src")
	if err != nil {
		t.Fatal(err)
	}
	// History covers readings up to the last update plus any extension
	// from earlier AnswerAt calls; at minimum the update log's span.
	if readings < 100 {
		t.Fatalf("history covers %d readings, want >= 100", readings)
	}
	if _, err := s.AnswerAt("q", len(data)-1); err != nil {
		t.Fatal(err)
	}
	readings, _, err = s.HistoryStats("src")
	if err != nil {
		t.Fatal(err)
	}
	if readings != len(data) {
		t.Fatalf("after extension history covers %d, want %d", readings, len(data))
	}
	if corrections >= len(data)/2 {
		t.Fatalf("history stored %d corrections for %d readings: no compression", corrections, len(data))
	}
	if _, _, err := s.HistoryStats("ghost"); err == nil {
		t.Fatal("stats for unknown source")
	}
}

func TestHistoryDisabledErrors(t *testing.T) {
	s := NewServer(testCatalog())
	mustRegister(t, s, stream.Query{ID: "q", SourceID: "src", Delta: 2, Model: "linear"})
	driveSource(t, s, "src", []float64{1, 2, 3})
	if _, err := s.AnswerAt("q", 1); err == nil {
		t.Fatal("AnswerAt succeeded without history")
	}
	if _, err := s.HistoryRange("q", 0, 1); err == nil {
		t.Fatal("HistoryRange succeeded without history")
	}
}
