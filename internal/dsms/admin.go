package dsms

import (
	"encoding/json"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"streamkf/internal/telemetry"
	"streamkf/internal/trace"
)

// AdminServer is the observability endpoint of a DSMS server: a small
// HTTP listener, separate from the wire-protocol port, serving
//
//	/metrics            Prometheus text exposition of the telemetry registry
//	/healthz            health probe: ok|degraded|unhealthy (?verbose=1 for JSON reasons)
//	/statusz            self-monitoring dashboard (HTML, sparklines, findings)
//	/metricsz           windowed rates and quantiles from the history ring (?window=30s&name=)
//	/streamz            JSON status: latency summaries, WAL state, per-stream records
//	/tracez             recent trace events across streams (?source=&kind=&decision=&limit=)
//	/tracez/stream/{id} one stream's decision trail and divergence audit
//	/debug/pprof/*      the standard Go profiling endpoints
//
// Scrapes never stop the data path: every handler reads live atomics or
// takes only the same short per-source locks queries do. Every response
// carries Cache-Control: no-store — all of these documents are live
// state, and a cached health verdict is worse than none.
type AdminServer struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// MetricsHandler serves reg in Prometheus text exposition format.
func MetricsHandler(reg *telemetry.Registry) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	}
}

// StreamzHandler serves the server status document: latency summaries,
// durability state, and the per-stream Stats records sorted by source
// id.
func StreamzHandler(s *Server) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.Streamz())
	}
}

// tracezResponse is the /tracez document.
type tracezResponse struct {
	Enabled bool         `json:"enabled"`
	Count   int          `json:"count"`
	Events  []TraceEntry `json:"events"`
}

// TracezHandler serves recent trace events, newest first. Query
// parameters: source (stream id), kind (event kind name), decision
// (decision name), limit (default 100).
func TracezHandler(s *Server) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		limit := 100
		if v := q.Get("limit"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n <= 0 {
				http.Error(w, "bad limit: "+v, http.StatusBadRequest)
				return
			}
			limit = n
		}
		var kind trace.Kind
		if v := q.Get("kind"); v != "" {
			k, err := trace.ParseKind(v)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			kind = k
		}
		var dec trace.Decision
		if v := q.Get("decision"); v != "" {
			d, err := trace.ParseDecision(v)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			dec = d
		}
		resp := tracezResponse{Enabled: s.TraceEnabled()}
		resp.Events = s.TraceRecent(limit, q.Get("source"), kind, dec)
		resp.Count = len(resp.Events)
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(resp)
	}
}

// TracezStreamHandler serves one stream's decision trail (by source id
// or query id) with its divergence audit.
func TracezStreamHandler(s *Server) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		id := strings.TrimPrefix(req.URL.Path, "/tracez/stream/")
		if id == "" || strings.Contains(id, "/") {
			http.Error(w, "usage: /tracez/stream/{source-or-query-id}", http.StatusBadRequest)
			return
		}
		st, err := s.TraceStream(id)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(st)
	}
}

// ServeAdmin starts an admin server for s on addr (e.g. "127.0.0.1:0")
// and returns once the listener is bound; the bound address is at
// Addr(). A nil logger discards request-path logs.
func ServeAdmin(s *Server, addr string, logger *slog.Logger) (*AdminServer, error) {
	if logger == nil {
		logger = telemetry.NopLogger()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", MetricsHandler(s.Telemetry()))
	mux.HandleFunc("/healthz", HealthzHandler(s))
	mux.HandleFunc("/statusz", StatuszHandler(s))
	mux.HandleFunc("/metricsz", MetricszHandler(s))
	mux.HandleFunc("/streamz", StreamzHandler(s))
	mux.HandleFunc("/tracez", TracezHandler(s))
	mux.HandleFunc("/tracez/stream/", TracezStreamHandler(s))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	a := &AdminServer{
		ln:   ln,
		srv:  &http.Server{Handler: noStore(mux), ReadHeaderTimeout: 10 * time.Second},
		done: make(chan struct{}),
	}
	go func() {
		defer close(a.done)
		if err := a.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			logger.Error("admin server exited", "err", err)
		}
	}()
	logger.Info("admin endpoint listening", "addr", a.Addr())
	return a, nil
}

// noStore wraps the admin mux so every endpoint forbids caching:
// metrics, verdicts and traces are live state.
func noStore(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Cache-Control", "no-store")
		next.ServeHTTP(w, req)
	})
}

// Addr returns the bound listener address.
func (a *AdminServer) Addr() string { return a.ln.Addr().String() }

// Close stops the listener, drops open admin connections, and waits for
// the serve goroutine to exit — no goroutine survives Close.
func (a *AdminServer) Close() error {
	err := a.srv.Close()
	<-a.done
	return err
}
