package dsms

import (
	"fmt"
	"math"
	"sort"

	"streamkf/internal/stream"
)

// AggFunc is an aggregate over the current values of several sources.
type AggFunc string

// Supported aggregate functions.
const (
	AggAvg AggFunc = "avg"
	AggSum AggFunc = "sum"
	AggMin AggFunc = "min"
	AggMax AggFunc = "max"
)

// AggregateQuery is a continuous aggregate over multiple single-attribute
// sources, e.g. "the average zonal load across zones a, b, c within ±50".
//
// This is the paper's answer to COUGAR-style in-network aggregation
// (Table 1) and its future-work item 4 (tuning parameters for multiple
// queries): instead of shipping raw tuples to an in-network combiner, the
// server aggregates its per-source *predictions*, and the aggregate's
// precision constraint Δ is allocated down to per-source widths δ_i so
// the composed error stays within Δ.
type AggregateQuery struct {
	// ID names the aggregate query.
	ID string
	// SourceIDs are the participating sources (at least one).
	SourceIDs []string
	// Func is the aggregate function.
	Func AggFunc
	// Delta is the aggregate precision constraint Δ.
	Delta float64
	// Model names the per-source stream model.
	Model string
	// F is the optional per-source smoothing factor.
	F float64
}

// Validate checks the aggregate query.
func (q AggregateQuery) Validate() error {
	if q.ID == "" {
		return fmt.Errorf("dsms: aggregate query ID is empty")
	}
	if len(q.SourceIDs) == 0 {
		return fmt.Errorf("dsms: aggregate query %s has no sources", q.ID)
	}
	seen := make(map[string]bool, len(q.SourceIDs))
	for _, id := range q.SourceIDs {
		if id == "" {
			return fmt.Errorf("dsms: aggregate query %s has an empty source id", q.ID)
		}
		if seen[id] {
			return fmt.Errorf("dsms: aggregate query %s lists source %s twice", q.ID, id)
		}
		seen[id] = true
	}
	switch q.Func {
	case AggAvg, AggSum, AggMin, AggMax:
	default:
		return fmt.Errorf("dsms: aggregate query %s has unknown function %q", q.ID, q.Func)
	}
	if q.Delta <= 0 {
		return fmt.Errorf("dsms: aggregate query %s has non-positive delta %v", q.ID, q.Delta)
	}
	if q.F < 0 {
		return fmt.Errorf("dsms: aggregate query %s has negative F %v", q.ID, q.F)
	}
	return nil
}

// PerSourceDelta returns the precision width δ_i allocated to each
// source so the aggregate answer stays within Δ (assuming per-source
// answers within ±δ_i):
//
//   - sum: errors add, so δ_i = Δ / t
//   - avg: the mean of t errors each ≤ δ is ≤ δ, so δ_i = Δ
//   - min/max: the extremum moves at most max_i δ_i, so δ_i = Δ
func (q AggregateQuery) PerSourceDelta() float64 {
	if q.Func == AggSum {
		return q.Delta / float64(len(q.SourceIDs))
	}
	return q.Delta
}

// Evaluate applies the aggregate function to per-source values.
func (q AggregateQuery) Evaluate(values []float64) float64 {
	switch q.Func {
	case AggSum:
		var s float64
		for _, v := range values {
			s += v
		}
		return s
	case AggAvg:
		var s float64
		for _, v := range values {
			s += v
		}
		return s / float64(len(values))
	case AggMin:
		m := math.Inf(1)
		for _, v := range values {
			if v < m {
				m = v
			}
		}
		return m
	default: // AggMax
		m := math.Inf(-1)
		for _, v := range values {
			if v > m {
				m = v
			}
		}
		return m
	}
}

// RegisterAggregate installs an aggregate query: it registers one
// implicit per-source continuous query with the allocated width δ_i, then
// records the aggregate for answering. Like Register, it must run before
// the sources start streaming.
func (s *Server) RegisterAggregate(q AggregateQuery) error {
	if err := q.Validate(); err != nil {
		return err
	}
	s.aggMu.Lock()
	defer s.aggMu.Unlock()
	if s.aggregate == nil {
		s.aggregate = make(map[string]AggregateQuery)
	}
	if _, dup := s.aggregate[q.ID]; dup {
		return fmt.Errorf("dsms: duplicate aggregate query id %s", q.ID)
	}
	delta := q.PerSourceDelta()
	installed := make([]string, 0, len(q.SourceIDs))
	for _, src := range q.SourceIDs {
		sub := stream.Query{
			ID:       q.ID + "/" + src,
			SourceID: src,
			Delta:    delta,
			F:        q.F,
			Model:    q.Model,
		}
		// A durable server recovers per-source sub-queries from the WAL
		// before the aggregate itself is re-installed at startup; the
		// namespaced id can only come from a prior install of this same
		// aggregate, so an existing sub-query is adopted, not an error.
		if s.HasQuery(sub.ID) {
			continue
		}
		if err := s.Register(sub); err != nil {
			// Roll back the sub-queries installed so far.
			for _, id := range installed {
				s.dropQuery(id)
			}
			return fmt.Errorf("dsms: aggregate %s: %w", q.ID, err)
		}
		installed = append(installed, sub.ID)
	}
	s.aggregate[q.ID] = q
	return nil
}

// dropQuery removes a registered (not yet streaming) per-source query.
func (s *Server) dropQuery(queryID string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.byQuery, queryID)
	for srcID, st := range s.sources {
		for i, q := range st.queries {
			if q.ID == queryID {
				st.queries = append(st.queries[:i], st.queries[i+1:]...)
				if len(st.queries) == 0 {
					delete(s.sources, srcID)
				}
				return
			}
		}
	}
}

// AnswerAggregate evaluates the aggregate query at reading index seq:
// every participating source's filter is advanced to seq and the
// aggregate of the predictions is returned.
func (s *Server) AnswerAggregate(queryID string, seq int) (float64, error) {
	s.aggMu.Lock()
	q, ok := s.aggregate[queryID]
	s.aggMu.Unlock()
	if !ok {
		return 0, fmt.Errorf("dsms: unknown aggregate query %s", queryID)
	}
	values := make([]float64, 0, len(q.SourceIDs))
	for _, src := range q.SourceIDs {
		vals, err := s.Answer(q.ID+"/"+src, seq)
		if err != nil {
			return 0, err
		}
		if len(vals) != 1 {
			return 0, fmt.Errorf("dsms: aggregate %s: source %s is not single-attribute", queryID, src)
		}
		values = append(values, vals[0])
	}
	return q.Evaluate(values), nil
}

// AggregateIDs returns the registered aggregate query ids, sorted.
func (s *Server) AggregateIDs() []string {
	s.aggMu.Lock()
	defer s.aggMu.Unlock()
	out := make([]string, 0, len(s.aggregate))
	for id := range s.aggregate {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
