package dsms

import (
	"fmt"
	"math"
	"sort"

	"streamkf/internal/stream"
)

// AggFunc is an aggregate over the current values of several sources.
type AggFunc string

// Supported aggregate functions.
const (
	AggAvg AggFunc = "avg"
	AggSum AggFunc = "sum"
	AggMin AggFunc = "min"
	AggMax AggFunc = "max"
)

// AggregateQuery is a continuous aggregate over multiple single-attribute
// sources, e.g. "the average zonal load across zones a, b, c within ±50".
//
// This is the paper's answer to COUGAR-style in-network aggregation
// (Table 1) and its future-work item 4 (tuning parameters for multiple
// queries): instead of shipping raw tuples to an in-network combiner, the
// server aggregates its per-source *predictions*, and the aggregate's
// precision constraint Δ is allocated down to per-source widths δ_i so
// the composed error stays within Δ.
type AggregateQuery struct {
	// ID names the aggregate query.
	ID string
	// SourceIDs are the participating sources (at least one).
	SourceIDs []string
	// Func is the aggregate function.
	Func AggFunc
	// Delta is the aggregate precision constraint Δ.
	Delta float64
	// Model names the per-source stream model.
	Model string
	// F is the optional per-source smoothing factor.
	F float64
	// Partial marks a shard-local partial aggregate in cluster mode:
	// this server owns only a subset of the aggregate's sources, and
	// answers with mergeable partial state (the exact-sum expansion for
	// sum/avg, the local extremum for min/max) instead of a finished
	// scalar. The router merges partials across shards; see
	// internal/dsms/cluster.
	Partial bool
}

// Validate checks the aggregate query.
func (q AggregateQuery) Validate() error {
	if q.ID == "" {
		return fmt.Errorf("dsms: aggregate query ID is empty")
	}
	if len(q.SourceIDs) == 0 {
		return fmt.Errorf("dsms: aggregate query %s has no sources", q.ID)
	}
	seen := make(map[string]bool, len(q.SourceIDs))
	for _, id := range q.SourceIDs {
		if id == "" {
			return fmt.Errorf("dsms: aggregate query %s has an empty source id", q.ID)
		}
		if seen[id] {
			return fmt.Errorf("dsms: aggregate query %s lists source %s twice", q.ID, id)
		}
		seen[id] = true
	}
	switch q.Func {
	case AggAvg, AggSum, AggMin, AggMax:
	default:
		return fmt.Errorf("dsms: aggregate query %s has unknown function %q", q.ID, q.Func)
	}
	if q.Delta <= 0 {
		return fmt.Errorf("dsms: aggregate query %s has non-positive delta %v", q.ID, q.Delta)
	}
	if q.F < 0 {
		return fmt.Errorf("dsms: aggregate query %s has negative F %v", q.ID, q.F)
	}
	return nil
}

// PerSourceDelta returns the precision width δ_i allocated to each
// source so the aggregate answer stays within Δ (assuming per-source
// answers within ±δ_i):
//
//   - sum: errors add, so δ_i = Δ / t
//   - avg: the mean of t errors each ≤ δ is ≤ δ, so δ_i = Δ
//   - min/max: the extremum moves at most max_i δ_i, so δ_i = Δ
func (q AggregateQuery) PerSourceDelta() float64 {
	if q.Func == AggSum {
		return q.Delta / float64(len(q.SourceIDs))
	}
	return q.Delta
}

// Evaluate applies the aggregate function to per-source values. Sum
// and avg use exact (order-independent, correctly rounded) summation,
// so the answer depends only on the multiset of member values — the
// property that lets a cluster router merge per-shard partials into an
// answer bit-identical to a single server's (see fsum.go).
func (q AggregateQuery) Evaluate(values []float64) float64 {
	switch q.Func {
	case AggSum:
		return exactSum(values, nil)
	case AggAvg:
		return exactSum(values, nil) / float64(len(values))
	case AggMin:
		m := math.Inf(1)
		for _, v := range values {
			if v < m {
				m = v
			}
		}
		return m
	default: // AggMax
		m := math.Inf(-1)
		for _, v := range values {
			if v > m {
				m = v
			}
		}
		return m
	}
}

// RegisterAggregate installs an aggregate query: it registers one
// implicit per-source continuous query with the allocated width δ_i, then
// records the aggregate for answering. Like Register, it must run before
// the sources start streaming.
func (s *Server) RegisterAggregate(q AggregateQuery) error {
	if err := q.Validate(); err != nil {
		return err
	}
	s.aggMu.Lock()
	defer s.aggMu.Unlock()
	if s.aggregate == nil {
		s.aggregate = make(map[string]AggregateQuery)
	}
	if _, dup := s.aggregate[q.ID]; dup {
		return fmt.Errorf("dsms: duplicate aggregate query id %s", q.ID)
	}
	delta := q.PerSourceDelta()
	installed := make([]string, 0, len(q.SourceIDs))
	for _, src := range q.SourceIDs {
		sub := stream.Query{
			ID:       q.ID + "/" + src,
			SourceID: src,
			Delta:    delta,
			F:        q.F,
			Model:    q.Model,
		}
		// A durable server recovers per-source sub-queries from the WAL
		// before the aggregate itself is re-installed at startup; the
		// namespaced id can only come from a prior install of this same
		// aggregate, so an existing sub-query is adopted, not an error.
		if s.HasQuery(sub.ID) {
			continue
		}
		if err := s.Register(sub); err != nil {
			// Roll back the sub-queries installed so far.
			for _, id := range installed {
				s.dropQuery(id)
			}
			return fmt.Errorf("dsms: aggregate %s: %w", q.ID, err)
		}
		installed = append(installed, sub.ID)
	}
	s.aggregate[q.ID] = q
	return nil
}

// dropQuery removes a registered (not yet streaming) per-source query.
func (s *Server) dropQuery(queryID string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.byQuery, queryID)
	for srcID, st := range s.sources {
		for i, q := range st.queries {
			if q.ID == queryID {
				st.queries = append(st.queries[:i], st.queries[i+1:]...)
				if len(st.queries) == 0 {
					delete(s.sources, srcID)
				}
				return
			}
		}
	}
}

// aggMemo caches one aggregate's last computed answer, stamped with
// the reading index it was computed at and the sum of its members'
// version counters. A repeated point read of an unchanged aggregate is
// then O(1): two atomic loads per member and no filter work, instead
// of re-advancing and re-evaluating every member under its lock. Any
// member mutation (update apply, batch advance, state restore) bumps
// its version and invalidates the memo. Guarded by Server.aggMu.
type aggMemo struct {
	members []*sourceState // resolved once; aggregate membership is fixed at registration
	valid   bool
	seq     int
	vsum    uint64

	value   float64   // Evaluate over the local members
	partial []float64 // mergeable partial: exact-sum expansion (sum/avg) or extremum (min/max)

	values  []float64 // member-value scratch
	scratch []float64 // expansion scratch
}

// versionSum folds the members' version counters — the memo's change
// detector. Reading it before the member answers makes the memo
// conservative: a mutation racing the computation lands a version the
// stored stamp misses, forcing a recompute on the next read.
func (m *aggMemo) versionSum() uint64 {
	var v uint64
	for _, st := range m.members {
		v += uint64(st.version.Load())
	}
	return v
}

// memoFor returns (creating on first use) the memo entry for q,
// resolving the member source states. Caller holds aggMu.
func (s *Server) memoFor(q AggregateQuery) (*aggMemo, error) {
	if s.aggMemo == nil {
		s.aggMemo = make(map[string]*aggMemo)
	}
	if m, ok := s.aggMemo[q.ID]; ok {
		return m, nil
	}
	m := &aggMemo{members: make([]*sourceState, 0, len(q.SourceIDs))}
	s.mu.RLock()
	for _, src := range q.SourceIDs {
		st := s.byQuery[q.ID+"/"+src]
		if st == nil {
			s.mu.RUnlock()
			return nil, fmt.Errorf("dsms: aggregate %s: sub-query for source %s not registered", q.ID, src)
		}
		m.members = append(m.members, st)
	}
	s.mu.RUnlock()
	s.aggMemo[q.ID] = m
	return m, nil
}

// answerAggregateLocked serves q's answer at seq from the memo when
// nothing changed, recomputing it otherwise. Caller holds aggMu.
func (s *Server) answerAggregateLocked(q AggregateQuery, seq int) (*aggMemo, error) {
	m, err := s.memoFor(q)
	if err != nil {
		return nil, err
	}
	vsum := m.versionSum()
	if m.valid && m.seq == seq && m.vsum == vsum {
		s.tel.aggMemoHits.Inc()
		return m, nil
	}
	m.valid = false
	m.values = m.values[:0]
	for _, src := range q.SourceIDs {
		vals, err := s.Answer(q.ID+"/"+src, seq)
		if err != nil {
			return nil, err
		}
		if len(vals) != 1 {
			return nil, fmt.Errorf("dsms: aggregate %s: source %s is not single-attribute", q.ID, src)
		}
		m.values = append(m.values, vals[0])
	}
	s.tel.aggAnswers.Inc()
	switch q.Func {
	case AggSum, AggAvg:
		m.scratch = m.scratch[:0]
		for _, v := range m.values {
			m.scratch = addToExpansion(m.scratch, v)
		}
		m.partial = append(m.partial[:0], m.scratch...)
		m.value = roundExpansion(m.scratch)
		if q.Func == AggAvg {
			m.value /= float64(len(m.values))
		}
	case AggMin:
		ext := math.Inf(1)
		for _, v := range m.values {
			if v < ext {
				ext = v
			}
		}
		m.partial = append(m.partial[:0], ext)
		m.value = ext
	default: // AggMax
		ext := math.Inf(-1)
		for _, v := range m.values {
			if v > ext {
				ext = v
			}
		}
		m.partial = append(m.partial[:0], ext)
		m.value = ext
	}
	m.seq, m.vsum, m.valid = seq, vsum, true
	return m, nil
}

// AnswerAggregate evaluates the aggregate query at reading index seq:
// every participating source's filter is advanced to seq and the
// aggregate of the predictions is returned. Repeated reads at the same
// seq with no intervening member changes are served from a memo in
// O(1) (see aggMemo).
func (s *Server) AnswerAggregate(queryID string, seq int) (float64, error) {
	s.aggMu.Lock()
	defer s.aggMu.Unlock()
	q, ok := s.aggregate[queryID]
	if !ok {
		return 0, fmt.Errorf("dsms: unknown aggregate query %s", queryID)
	}
	m, err := s.answerAggregateLocked(q, seq)
	if err != nil {
		return 0, err
	}
	return m.value, nil
}

// AnswerAggregatePartial evaluates the aggregate at seq and returns
// its mergeable partial state: for sum and avg the exact non-
// overlapping expansion of the local sum (components whose exact sum
// is the local sum — fold several shards' expansions together and
// round once for the exact global sum), for min/max the single local
// extremum. This is what a shard answers a cluster router with.
func (s *Server) AnswerAggregatePartial(queryID string, seq int) ([]float64, error) {
	s.aggMu.Lock()
	defer s.aggMu.Unlock()
	q, ok := s.aggregate[queryID]
	if !ok {
		return nil, fmt.Errorf("dsms: unknown aggregate query %s", queryID)
	}
	m, err := s.answerAggregateLocked(q, seq)
	if err != nil {
		return nil, err
	}
	return append([]float64(nil), m.partial...), nil
}

// AnswerAggregateVals is the wire-facing aggregate answer: a Partial
// aggregate answers with its mergeable partial vector, a regular one
// with its finished scalar.
func (s *Server) AnswerAggregateVals(queryID string, seq int) ([]float64, error) {
	s.aggMu.Lock()
	defer s.aggMu.Unlock()
	q, ok := s.aggregate[queryID]
	if !ok {
		return nil, fmt.Errorf("dsms: unknown aggregate query %s", queryID)
	}
	m, err := s.answerAggregateLocked(q, seq)
	if err != nil {
		return nil, err
	}
	if q.Partial {
		return append([]float64(nil), m.partial...), nil
	}
	return []float64{m.value}, nil
}

// HasAggregate reports whether an aggregate query id is registered —
// how a cluster router's re-registration after a shard restart is made
// idempotent.
func (s *Server) HasAggregate(queryID string) bool {
	s.aggMu.Lock()
	defer s.aggMu.Unlock()
	_, ok := s.aggregate[queryID]
	return ok
}

// AggregateIDs returns the registered aggregate query ids, sorted.
func (s *Server) AggregateIDs() []string {
	s.aggMu.Lock()
	defer s.aggMu.Unlock()
	out := make([]string, 0, len(s.aggregate))
	for id := range s.aggregate {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
