package dsms

import (
	"testing"
	"time"

	"streamkf/internal/core"
)

// selfClock hands Tick evenly spaced synthetic times so windowed
// assertions are exact and tests never sleep.
type selfClock struct {
	t     time.Time
	every time.Duration
}

func newSelfClock(every time.Duration) *selfClock {
	return &selfClock{t: time.Unix(1_700_000_000, 0), every: every}
}

func (c *selfClock) tick(m *SelfMonitor) {
	c.t = c.t.Add(c.every)
	m.Tick(c.t)
}

// TestSelfMonVerdictTransitions drives scripted signals through the
// full verdict lifecycle: ok at bootstrap and steady state, degraded
// on a warn-severity δ-violation with filter evidence in the reasons,
// recovery to ok after the filter re-converges, and unhealthy when the
// violating signal is critical.
func TestSelfMonVerdictTransitions(t *testing.T) {
	warn, crit := 10.0, 5.0
	s := NewServer(testCatalog())
	m, err := s.EnableSelfMon(SelfMonOptions{
		Every: time.Second, Recover: 3,
		Signals: []SelfSignal{
			{Name: "warn_sig", Model: "constant", Delta: 1,
				Read: func(*SelfMonitor) (float64, bool) { return warn, true }},
			{Name: "crit_sig", Model: "constant", Delta: 1, Critical: true,
				Read: func(*SelfMonitor) (float64, bool) { return crit, true }},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	clk := newSelfClock(time.Second)

	// Bootstrap and steady state: transmissions happen (the bootstrap)
	// but no finding, no verdict change.
	for i := 0; i < 4; i++ {
		clk.tick(m)
	}
	if h := s.Health(); h.Status != "ok" || len(h.Reasons) != 0 {
		t.Fatalf("steady state health = %+v, want ok with no reasons", h)
	}
	if f := m.Findings(10); len(f) != 0 {
		t.Fatalf("steady state recorded findings: %+v", f)
	}

	// A step change beyond δ on the warn signal: degraded, with the
	// decision evidence (value, prediction, residual, δ) in the reason.
	warn = 20
	clk.tick(m)
	h := s.Health()
	if h.Status != "degraded" {
		t.Fatalf("health after warn step = %q, want degraded", h.Status)
	}
	if len(h.Reasons) == 0 || h.Reasons[0].Signal != "warn_sig" || h.Reasons[0].Kind != "delta_violation" {
		t.Fatalf("reasons = %+v, want warn_sig delta_violation", h.Reasons)
	}
	if r := h.Reasons[0]; r.Value != 20 || r.Residual <= r.Delta || r.Delta != 1 {
		t.Fatalf("reason evidence inconsistent: %+v", r)
	}
	f := m.Findings(1)
	if len(f) != 1 || f[0].Signal != "warn_sig" || f[0].Kind != "delta_violation" || f[0].Value != 20 {
		t.Fatalf("finding = %+v, want warn_sig delta_violation at 20", f)
	}
	if v, ok := s.Telemetry().Get("dkf_selfmon_findings_total"); !ok || v < 1 {
		t.Fatalf("dkf_selfmon_findings_total = %v %v, want >= 1", v, ok)
	}

	// The signal holds at 20: the constant filter re-converges, the
	// violation ages out after Recover quiet ticks, and the verdict
	// returns to ok.
	recovered := false
	for i := 0; i < 30; i++ {
		clk.tick(m)
		if s.Health().Status == "ok" {
			recovered = true
			break
		}
	}
	if !recovered {
		t.Fatalf("verdict never recovered to ok; health = %+v", s.Health())
	}

	// A critical signal's violation makes the verdict unhealthy.
	crit = 50
	clk.tick(m)
	h = s.Health()
	if h.Status != "unhealthy" {
		t.Fatalf("health after critical step = %q, want unhealthy", h.Status)
	}
	found := false
	for _, r := range h.Reasons {
		if r.Signal == "crit_sig" && r.Critical {
			found = true
		}
	}
	if !found {
		t.Fatalf("reasons missing critical crit_sig entry: %+v", h.Reasons)
	}
	for i := 0; i < 30 && s.Health().Status != "ok"; i++ {
		clk.tick(m)
	}
	if got := s.Health().Status; got != "ok" {
		t.Fatalf("verdict stuck at %q after critical recovery", got)
	}
}

// TestSelfMonIntermittentSignalSync pins the mirror-synchrony rule for
// self-streams: a signal that skips ticks (Read ok=false) must not
// advance the reading index, or the server-side AdvanceTo would run
// more predicts than the mirror. The proof is behavioral — after many
// skipped ticks a δ-violation still lands as a finding, which only
// happens when ApplyUpdate accepts the update.
func TestSelfMonIntermittentSignalSync(t *testing.T) {
	v, feed := 5.0, 0
	s := NewServer(testCatalog())
	m, err := s.EnableSelfMon(SelfMonOptions{
		Every: time.Second, Recover: 2,
		Signals: []SelfSignal{
			{Name: "flaky", Model: "constant", Delta: 1,
				Read: func(*SelfMonitor) (float64, bool) {
					feed++
					return v, feed%3 != 0 // every third tick is skipped
				}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	clk := newSelfClock(time.Second)
	for i := 0; i < 20; i++ {
		clk.tick(m)
	}
	if h := s.Health(); h.Status != "ok" {
		t.Fatalf("steady intermittent health = %+v, want ok", h)
	}
	v = 25
	// The next two ticks include at least one fed one.
	clk.tick(m)
	clk.tick(m)
	f := m.Findings(5)
	if len(f) == 0 || f[0].Signal != "flaky" || f[0].Value != 25 {
		t.Fatalf("δ-violation after skipped ticks did not land: findings = %+v", f)
	}
	sig := m.Signals()[0]
	if sig.Updates < 2 || sig.Suppressed == 0 {
		t.Fatalf("signal accounting wrong after intermittent feeding: %+v", sig)
	}
}

// TestSelfStreamAllocBudget pins the steady-state cost of a
// self-monitoring tick on an engineless server: at most one small
// allocation per fed signal — SourceNode.Process's estimate copy, the
// same pre-existing contract TestSourceProcessTraceAllocBudget pins —
// and nothing from the ring snapshot or the signal reads.
func TestSelfStreamAllocBudget(t *testing.T) {
	s := NewServer(testCatalog())
	m, err := s.EnableSelfMon(SelfMonOptions{Every: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	clk := newSelfClock(time.Second)
	// Warm until every feedable signal has bootstrapped and the ring
	// buffers exist.
	for i := 0; i < 10; i++ {
		clk.tick(m)
	}
	fed := 0
	for _, sig := range m.Signals() {
		if sig.Fed {
			fed++
		}
	}
	if fed == 0 {
		t.Fatal("no default signal feeds on a bare server; budget test is vacuous")
	}
	allocs := testing.AllocsPerRun(100, func() {
		clk.tick(m)
	})
	if allocs > float64(fed) {
		t.Fatalf("steady-state Tick allocates %.1f/op with %d fed signals, want <= %d (one estimate copy per fed signal)", allocs, fed, fed)
	}
}

// TestSelfMonCloseIdempotent covers the ticker lifecycle: Start,
// concurrent ticks, double Close, and Server.Close stopping the
// monitor.
func TestSelfMonCloseIdempotent(t *testing.T) {
	s := NewServer(testCatalog())
	m, err := s.EnableSelfMon(SelfMonOptions{Every: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.EnableSelfMon(SelfMonOptions{}); err == nil {
		t.Fatal("second EnableSelfMon did not fail")
	}
	m.Start()
	m.Start() // idempotent
	time.Sleep(20 * time.Millisecond)
	m.Close()
	m.Close() // idempotent
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.SelfMon() != m {
		t.Fatal("SelfMon accessor lost the monitor after Close")
	}
}

// TestSelfMonOverloadE2E is the acceptance end-to-end at the verdict
// level: a real ring-shed burst on the ingest engine flips the verdict
// ok → degraded with shed_rate as the machine-readable reason, and the
// verdict recovers to ok once the burst ages out of the rate window.
// (The HTTP layer over the same scenario is TestHealthzOverloadHTTP.)
func TestSelfMonOverloadE2E(t *testing.T) {
	s := NewServer(testCatalog())
	e := s.StartEngine(EngineOptions{Shards: 1, RingSize: 8})
	defer e.Close()
	m, err := s.EnableSelfMon(SelfMonOptions{
		Every: time.Second, RateWindow: 5 * time.Second, Recover: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	clk := newSelfClock(time.Second)
	for i := 0; i < 5; i++ {
		clk.tick(m)
	}
	if h := s.Health(); h.Status != "ok" {
		t.Fatalf("pre-overload health = %+v, want ok", h)
	}

	// Stall the only shard worker, then slam the ring: TryOffer sheds
	// once the 8 slots fill, driving dkf_engine_ring_dropped_total.
	release := make(chan struct{})
	if !e.RunOnShard(0, func() { <-release }) {
		t.Fatal("RunOnShard refused on a live engine")
	}
	p := e.Producer()
	u := &core.Update{SourceID: "burst", Seq: 1, Time: 1, Values: []float64{1}, Bootstrap: true}
	for i := 0; i < 200; i++ {
		p.TryOffer(0, u)
	}
	dropped := e.Stats()[0].Dropped
	close(release)
	if dropped < 50 {
		t.Fatalf("ring shed only %d updates; overload not induced", dropped)
	}

	clk.tick(m)
	h := s.Health()
	if h.Status != "degraded" {
		t.Fatalf("health after shed burst = %+v, want degraded", h)
	}
	var reason *HealthReason
	for i := range h.Reasons {
		if h.Reasons[i].Signal == "shed_rate" {
			reason = &h.Reasons[i]
		}
	}
	if reason == nil {
		t.Fatalf("degraded without shed_rate reason: %+v", h.Reasons)
	}
	if reason.Kind != "delta_violation" || reason.Value <= reason.Delta {
		t.Fatalf("shed_rate reason evidence inconsistent: %+v", reason)
	}

	// As the burst ages out of the 5s rate window the signal decays
	// (including the sharp drop when the jump slot leaves the window,
	// which is itself a δ-violation); Recover quiet ticks later the
	// verdict is ok again.
	recovered := false
	for i := 0; i < 50; i++ {
		clk.tick(m)
		if s.Health().Status == "ok" {
			recovered = true
			break
		}
	}
	if !recovered {
		t.Fatalf("verdict never recovered after overload; health = %+v", s.Health())
	}
	if f := m.Findings(50); len(f) == 0 {
		t.Fatal("overload produced no findings")
	}
}
