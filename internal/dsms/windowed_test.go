package dsms

import (
	"math"
	"testing"

	"streamkf/internal/stream"
)

func TestWindowQueryValidate(t *testing.T) {
	good := WindowQuery{ID: "w", SourceID: "s", Func: AggAvg, N: 24, Delta: 2, Model: "linear"}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid window query rejected: %v", err)
	}
	bad := []WindowQuery{
		{SourceID: "s", Func: AggAvg, N: 2, Delta: 1},
		{ID: "w", Func: AggAvg, N: 2, Delta: 1},
		{ID: "w", SourceID: "s", Func: "median", N: 2, Delta: 1},
		{ID: "w", SourceID: "s", Func: AggAvg, N: 0, Delta: 1},
		{ID: "w", SourceID: "s", Func: AggAvg, N: 2, Delta: 0},
		{ID: "w", SourceID: "s", Func: AggAvg, N: 2, Delta: 1, F: -1},
	}
	for i, q := range bad {
		if err := q.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, q)
		}
	}
}

func TestRegisterWindowAndAnswer(t *testing.T) {
	s := NewServer(testCatalog())
	q := WindowQuery{ID: "day", SourceID: "zone", Func: AggAvg, N: 10, Delta: 1, Model: "constant"}
	if err := s.RegisterWindow(q); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterWindow(q); err == nil {
		t.Fatal("duplicate window query accepted")
	}
	if ids := s.WindowIDs(); len(ids) != 1 || ids[0] != "day" {
		t.Fatalf("WindowIDs = %v", ids)
	}
	if _, err := s.AnswerWindow("day", 5); err == nil {
		t.Fatal("answered before streaming")
	}
	if _, err := s.AnswerWindow("ghost", 5); err == nil {
		t.Fatal("answered unknown window query")
	}

	// Level 10 for 20 readings, then level 50 for 20: a trailing-10 mean
	// at seq 39 must be near 50, at seq 24 it straddles.
	var vals []float64
	for i := 0; i < 20; i++ {
		vals = append(vals, 10)
	}
	for i := 0; i < 20; i++ {
		vals = append(vals, 50)
	}
	driveSource(t, s, "zone", vals)

	end, err := s.AnswerWindow("day", 39)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(end-50) > 3 {
		t.Fatalf("trailing mean at 39 = %v, want ~50", end)
	}
	mid, err := s.AnswerWindow("day", 24)
	if err != nil {
		t.Fatal(err)
	}
	if mid < 15 || mid > 45 {
		t.Fatalf("straddling mean at 24 = %v, want between the levels", mid)
	}
	// Clamped at the stream start: seq 3 averages only seqs 0..3.
	start, err := s.AnswerWindow("day", 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(start-10) > 2 {
		t.Fatalf("clamped mean = %v, want ~10", start)
	}
}

func TestWindowMinMaxFuncs(t *testing.T) {
	s := NewServer(testCatalog())
	if err := s.RegisterWindow(WindowQuery{ID: "peak", SourceID: "z", Func: AggMax, N: 5, Delta: 1, Model: "constant"}); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterWindow(WindowQuery{ID: "trough", SourceID: "z", Func: AggMin, N: 5, Delta: 1, Model: "constant"}); err != nil {
		t.Fatal(err)
	}
	driveSource(t, s, "z", []float64{10, 10, 80, 80, 10, 10, 10, 10, 10, 10})
	peak, err := s.AnswerWindow("peak", 9) // window 5..9, the 80s at 2..3 left
	if err != nil {
		t.Fatal(err)
	}
	if peak > 30 {
		t.Fatalf("peak over trailing 5 = %v; stale maximum retained", peak)
	}
	trough, err := s.AnswerWindow("trough", 3) // window 0..3 includes the 80s and 10s
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(trough-10) > 5 {
		t.Fatalf("trough = %v, want ~10", trough)
	}
}

func TestWindowSharesHistoryWithExplicitEnable(t *testing.T) {
	// A source that already has history enabled can still take window
	// queries (and vice versa).
	s := NewServer(testCatalog())
	mustRegister(t, s, stream.Query{ID: "q", SourceID: "z", Delta: 1, Model: "constant"})
	if err := s.EnableHistory("z"); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterWindow(WindowQuery{ID: "w", SourceID: "z", Func: AggAvg, N: 4, Delta: 1, Model: "constant"}); err != nil {
		t.Fatalf("window on history-enabled source: %v", err)
	}
	driveSource(t, s, "z", []float64{5, 5, 5, 5, 5})
	got, err := s.AnswerWindow("w", 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-5) > 1 {
		t.Fatalf("window answer = %v", got)
	}
}
