// Shard ingest engine integration: pins every stream to one shard
// worker (internal/dsms/engine), which applies updates in batch and
// group-commits the WAL — the per-update lock handoff and per-update
// fsync disappear from the steady-state path. Cross-shard readers
// (Answer, Stats, Streamz, StepAll) still take the per-source lock;
// shard ownership just guarantees the ingest side of that lock is a
// single uncontended writer.
package dsms

import (
	"sync"
	"sync/atomic"

	"streamkf/internal/core"
	"streamkf/internal/dsms/engine"
	"streamkf/internal/dsms/wire"
)

// EngineOptions aliases engine.Options so callers configure the engine
// without importing the engine package.
type EngineOptions = engine.Options

// shardLog is one shard's WAL group-commit state: applied updates are
// encoded into the arena under the per-source lock, and the whole batch
// is committed with one lock acquisition (and one fsync under
// SyncAlways) after the batch finishes. Touched only by the owning
// shard worker.
type shardLog struct {
	arena []byte
	recs  [][]byte
}

// StartEngine attaches a shard-per-core ingest engine to the server and
// returns it. Callers register producer lanes on the returned engine
// (the UDP server does this per socket reader) and shut it down with
// its Close. At most one engine per server; later calls return the
// existing engine. opts.Shards <= 0 uses the same GOMAXPROCS default as
// StepAll's worker pool.
func (s *Server) StartEngine(opts EngineOptions) *engine.Engine {
	s.engMu.Lock()
	defer s.engMu.Unlock()
	if s.eng != nil {
		return s.eng
	}
	if opts.Shards <= 0 {
		opts.Shards = defaultWorkers()
	}
	s.shardLogs = make([]shardLog, opts.Shards)
	e := engine.New(engineSink{s}, opts)
	s.engIns = newEngineInstruments(s.tel.reg, e)
	s.eng = e
	return e
}

// Engine returns the attached ingest engine, or nil.
func (s *Server) Engine() *engine.Engine {
	s.engMu.Lock()
	defer s.engMu.Unlock()
	return s.eng
}

// AdvanceAll advances every stream's prediction to reading index seq.
// With an ingest engine attached, each stream advances on its owning
// shard worker (stepAllSharded) — the advance runs where the applies
// run, so no detached pool fights the shard workers for the per-stream
// locks. Without an engine it falls back to StepAll's bounded pool.
// Both paths execute the same advance body (advanceOne), so they are
// bit-identical; TestStepAllShardedEquivalence pins it.
func (s *Server) AdvanceAll(seq int) int {
	if e := s.Engine(); e != nil {
		return s.stepAllSharded(e, seq)
	}
	return s.StepAll(seq, 0)
}

// stepAllSharded is the engine-affine batch advance: streams are grouped
// by owning shard and each group advances as one task on its shard's
// worker goroutine, serialized with that shard's applies. The per-stream
// lock is still taken inside advanceOne — queries and scrapes read under
// it from other goroutines — but it is uncontended on the write side,
// because the single writer for every stream in the group is the worker
// running the task.
//
// Must not be called from inside a shard worker (a sink callback would
// wait on its own shard). The public entry points (AdvanceAll, admin)
// only run it from outside the engine.
func (s *Server) stepAllSharded(e *engine.Engine, seq int) int {
	start := nowNanos()
	defer func() { s.tel.stepAllNs.Observe(nowNanos() - start) }()
	s.mu.RLock()
	groups := make([][]*sourceState, e.Shards())
	for id, st := range s.sources {
		sh := e.ShardFor(id)
		groups[sh] = append(groups[sh], st)
	}
	s.mu.RUnlock()
	var advanced atomic.Int64
	var wg sync.WaitGroup
	for sh, group := range groups {
		if len(group) == 0 {
			continue
		}
		group := group
		wg.Add(1)
		task := func() {
			defer wg.Done()
			n := int64(0)
			for _, st := range group {
				if s.advanceOne(st, seq) {
					n++
				}
			}
			advanced.Add(n)
		}
		if !e.RunOnShard(sh, task) {
			// Engine closed under us: run the group here. Correct — the
			// workers are gone, so there is nothing to contend with.
			task()
		}
	}
	wg.Wait()
	s.tel.stepAllAdvanced.Add(advanced.Load())
	return int(advanced.Load())
}

// engineSink adapts the server to the engine's batch interface without
// exporting ApplyBatch on Server itself.
type engineSink struct{ s *Server }

// ApplyBatch applies one drained batch on the owning shard's worker.
// Consecutive updates for the same source are applied as a run under a
// single lock acquisition, and the whole batch's WAL records are
// group-committed at the end.
func (es engineSink) ApplyBatch(shard int, batch []core.Update) {
	s := es.s
	for i := 0; i < len(batch); {
		j := i + 1
		for j < len(batch) && batch[j].SourceID == batch[i].SourceID {
			j++
		}
		s.applyRun(shard, batch[i:j])
		i = j
	}
	s.commitShard(shard)
}

// applyRun folds a run of same-source updates into the stream under one
// lock acquisition. The engine path owns the datagram-transport
// semantics the synchronous TCP path does not need:
//
//   - dedup: any update with seq at or below the last applied seq is
//     dropped (duplicated or reordered datagrams; a delayed duplicate
//     bootstrap must not re-initialize the filter);
//   - pre-bootstrap drops: a non-bootstrap update arriving before the
//     stream's bootstrap is dropped — loss of the bootstrap datagram
//     delays convergence until its retransmission, never corrupts x/P;
//   - lazy install: a registered source's filter is installed on first
//     contact, since a connectionless transport has no handshake moment
//     that guarantees install-before-data.
func (s *Server) applyRun(shard int, run []core.Update) {
	id := run[0].SourceID
	ins := s.engIns
	s.mu.RLock()
	st := s.sources[id]
	s.mu.RUnlock()
	if st == nil {
		ins.unknown.Add(int64(len(run)))
		return
	}
	st.mu.Lock()
	installed := st.node != nil
	st.mu.Unlock()
	if !installed {
		if _, err := s.InstallFor(id); err != nil {
			ins.unknown.Add(int64(len(run)))
			return
		}
	}
	sl := &s.shardLogs[shard]
	durable := s.db != nil && !s.db.replaying
	maxSeq := -1
	st.mu.Lock()
	for k := range run {
		u := &run[k]
		if st.lastSeq >= 0 && u.Seq <= st.lastSeq {
			ins.shardDedup[shard].Inc()
			continue
		}
		if !u.Bootstrap && st.lastSeq < 0 {
			ins.preBootstrap.Inc()
			continue
		}
		if _, _, err := s.applyLocked(st, u, nil, 0); err != nil {
			ins.rejected.Inc()
			continue
		}
		maxSeq = u.Seq
		ins.shardApplied[shard].Inc()
		if durable {
			// Encode into the shard arena now (under the same lock as
			// the apply, preserving per-source record order) but commit
			// once per batch. Sub-slices stay valid across arena growth
			// because they pin whichever backing array they landed in.
			start := len(sl.arena)
			grown, err := wire.AppendUpdate(sl.arena, u)
			if err == nil {
				sl.arena = grown
				sl.recs = append(sl.recs, sl.arena[start:])
			} else {
				ins.walErrors.Inc()
			}
		}
	}
	st.mu.Unlock()
	if maxSeq >= 0 {
		// The batch path coalesces post-apply hooks: one alert and
		// subscriber evaluation per run, at the run's newest seq, rather
		// than one per update.
		s.checkAlerts(id, maxSeq)
		s.notifySubscribers(id, maxSeq)
	}
}

// commitShard group-commits the shard's pending WAL records: one log
// lock acquisition and, under SyncAlways, one fsync for the whole
// batch. The datagram transport sends no acks, so there is no
// acknowledgement to hold back; a commit failure is surfaced through
// the wal-errors counter and the stream re-converges from the next
// updates after recovery (the same loss-tolerance the transport
// already has).
func (s *Server) commitShard(shard int) {
	sl := &s.shardLogs[shard]
	if len(sl.recs) == 0 {
		return
	}
	if s.db != nil && !s.db.replaying {
		if err := s.db.log.AppendBatch(walTagUpdate, sl.recs); err != nil {
			s.engIns.walErrors.Inc()
		} else {
			s.db.sinceCkpt.Add(int64(len(sl.recs)))
		}
	}
	sl.recs = sl.recs[:0]
	sl.arena = sl.arena[:0]
	if s.db != nil {
		s.maybeCheckpoint()
	}
}

// ShardStreamz is one shard's occupancy block in /streamz.
type ShardStreamz struct {
	Shard        int   `json:"shard"`
	Applied      int64 `json:"applied"`
	Dedup        int64 `json:"dedup"`
	Dropped      int64 `json:"dropped"`
	RingDepthHWM int64 `json:"ring_depth_hwm"`
}

// LaneStreamz is one UDP reader lane's occupancy block in /streamz.
type LaneStreamz struct {
	Lane        int     `json:"lane"`
	DatagramsRx int64   `json:"datagrams_rx"`
	Batches     int64   `json:"batches"`
	AvgBatch    float64 `json:"avg_batch"`
}

// EngineStreamz is the ingest engine's status document: per-shard
// occupancy plus the datagram transport's rx/drop taxonomy and, when a
// UDP server feeds the engine, its reader lanes.
type EngineStreamz struct {
	Shards          int   `json:"shards"`
	DatagramsRx     int64 `json:"datagrams_rx"`
	DatagramsBad    int64 `json:"datagrams_bad"`
	FramesRx        int64 `json:"frames_rx"`
	PreBootstrap    int64 `json:"pre_bootstrap_dropped"`
	UnknownSource   int64 `json:"unknown_source_dropped"`
	Rejected        int64 `json:"rejected"`
	WALCommitErrors int64 `json:"wal_commit_errors"`
	// ShedRatePerSec is the ring-full shed rate over the self-monitor's
	// rate window, summed across shards — the first-class version of
	// the number operators used to derive from consecutive scrapes of
	// dkf_engine_ring_dropped_total. Present only with self-monitoring
	// enabled (the history ring supplies the time dimension).
	ShedRatePerSec *float64       `json:"shed_rate_per_sec,omitempty"`
	PerShard       []ShardStreamz `json:"per_shard"`
	Lanes          []LaneStreamz  `json:"lanes,omitempty"`
}

// engineStreamz assembles the engine block, or nil without an engine.
func (s *Server) engineStreamz() *EngineStreamz {
	e := s.Engine()
	if e == nil {
		return nil
	}
	ins := s.engIns
	z := &EngineStreamz{
		Shards:          e.Shards(),
		DatagramsRx:     ins.datagramsRx.Value(),
		DatagramsBad:    ins.datagramsBad.Value(),
		FramesRx:        ins.framesRx.Value(),
		PreBootstrap:    ins.preBootstrap.Value(),
		UnknownSource:   ins.unknown.Value(),
		Rejected:        ins.rejected.Value(),
		WALCommitErrors: ins.walErrors.Value(),
	}
	if m := s.SelfMon(); m != nil {
		if r, ok := m.History().Rate("dkf_engine_ring_dropped_total", m.Options().RateWindow); ok {
			z.ShedRatePerSec = &r
		}
	}
	stats := e.Stats()
	z.PerShard = make([]ShardStreamz, len(stats))
	for i, sh := range stats {
		z.PerShard[i] = ShardStreamz{
			Shard:        sh.Shard,
			Applied:      ins.shardApplied[i].Value(),
			Dedup:        ins.shardDedup[i].Value(),
			Dropped:      int64(sh.Dropped),
			RingDepthHWM: int64(sh.RingDepthHWM),
		}
	}
	z.Lanes = s.laneStreamz()
	return z
}

// laneStreamz snapshots the UDP reader-lane instruments; empty without
// a UDP server.
func (s *Server) laneStreamz() []LaneStreamz {
	s.laneMu.Lock()
	defer s.laneMu.Unlock()
	out := make([]LaneStreamz, 0, len(s.laneIns))
	for i, li := range s.laneIns {
		if li == nil {
			continue
		}
		snap := li.batch.Snapshot()
		ls := LaneStreamz{Lane: i, DatagramsRx: li.rx.Value(), Batches: snap.Count}
		if snap.Count > 0 {
			ls.AvgBatch = float64(snap.Sum) / float64(snap.Count)
		}
		out = append(out, ls)
	}
	return out
}
