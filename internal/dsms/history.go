package dsms

import (
	"fmt"

	"streamkf/internal/stream"
	"streamkf/internal/synopsis"
)

// EnableHistory turns on historical queries for a source: from then on,
// every update the server receives is also recorded into a synopsis
// store (the update log is exactly the information a synopsis needs), so
// past answers can be replayed on demand. Storage grows with the number
// of *updates*, not readings — the same compression the protocol already
// bought on the wire.
//
// Must be called after the source's queries are registered and before it
// starts streaming, so the bootstrap update is captured.
func (s *Server) EnableHistory(sourceID string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.sources[sourceID]
	if st == nil || len(st.queries) == 0 {
		return fmt.Errorf("dsms: no query registered for source %s", sourceID)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.node != nil {
		return fmt.Errorf("dsms: source %s already streaming; enable history before the bootstrap", sourceID)
	}
	if st.history != nil {
		return fmt.Errorf("dsms: history already enabled for %s", sourceID)
	}
	store, err := synopsis.New(st.cfg.Model, st.cfg.Delta)
	if err != nil {
		return err
	}
	st.history = store
	return nil
}

// recordHistory folds an update into the source's history store, if
// enabled. Called with the source's runtime lock held.
func (st *sourceState) recordHistory(seq int, values []float64, bootstrap bool) error {
	if st.history == nil {
		return nil
	}
	if bootstrap {
		return st.history.RecordBootstrap(seq, values)
	}
	return st.history.RecordUpdate(seq, values)
}

// AnswerAt evaluates a value query at any past (or current) sequence
// number by replaying the history store. Suppressed steps reproduce the
// prediction the server answered live (within the query's δ of the
// source value); update steps return the transmitted measurement
// exactly.
func (s *Server) AnswerAt(queryID string, seq int) ([]float64, error) {
	st, ok := s.lookupQuery(queryID)
	if !ok {
		return nil, fmt.Errorf("dsms: unknown query %s", queryID)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.history == nil {
		return nil, fmt.Errorf("dsms: history not enabled for source %s", st.id)
	}
	// Sequence numbers beyond the last update are the same
	// extrapolation the live node performs: extend the log's
	// prediction out to the asked-for step.
	if seq > st.history.LastSeq() {
		if err := st.history.ExtendTo(seq); err != nil {
			return nil, err
		}
	}
	return st.history.At(seq)
}

// HistoryRange replays the history store over [from, to] for the named
// query.
func (s *Server) HistoryRange(queryID string, from, to int) ([]stream.Reading, error) {
	st, ok := s.lookupQuery(queryID)
	if !ok {
		return nil, fmt.Errorf("dsms: unknown query %s", queryID)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.history == nil {
		return nil, fmt.Errorf("dsms: history not enabled for source %s", st.id)
	}
	if to > st.history.LastSeq() {
		if err := st.history.ExtendTo(to); err != nil {
			return nil, err
		}
	}
	return st.history.Range(from, to)
}

// HistoryStats reports the history store's footprint for a source.
func (s *Server) HistoryStats(sourceID string) (readings, corrections int, err error) {
	s.mu.RLock()
	st := s.sources[sourceID]
	s.mu.RUnlock()
	if st == nil {
		return 0, 0, fmt.Errorf("dsms: history not enabled for source %s", sourceID)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.history == nil {
		return 0, 0, fmt.Errorf("dsms: history not enabled for source %s", sourceID)
	}
	return st.history.Len(), st.history.Corrections(), nil
}
