package dsms

// sysSENDMMSG is __NR_sendmmsg on linux/amd64. The syscall package's
// frozen tables predate sendmmsg (kernel 3.0), so the number is spelled
// here; recvmmsg made the freeze and comes from syscall.SYS_RECVMMSG.
const sysSENDMMSG = 307
