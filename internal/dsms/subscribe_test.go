package dsms

import (
	"testing"

	"streamkf/internal/stream"
)

func TestSubscribeUnknownQuery(t *testing.T) {
	s := NewServer(testCatalog())
	if _, _, err := s.Subscribe("ghost", 4); err == nil {
		t.Fatal("subscribed to unknown query")
	}
}

func TestSubscribeReceivesFreshAnswers(t *testing.T) {
	s := NewServer(testCatalog())
	mustRegister(t, s, stream.Query{ID: "q", SourceID: "src", Delta: 1, Model: "constant"})
	ch, cancel, err := s.Subscribe("q", 64)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	driveSource(t, s, "src", []float64{10, 50, 50, 50, 200})
	var got []Notification
	for {
		select {
		case n := <-ch:
			got = append(got, n)
			continue
		default:
		}
		break
	}
	if len(got) < 2 {
		t.Fatalf("received %d notifications, want several: %+v", len(got), got)
	}
	last := got[len(got)-1]
	if last.QueryID != "q" || len(last.Values) != 1 {
		t.Fatalf("notification shape wrong: %+v", last)
	}
	// Sequence numbers must be non-decreasing.
	for i := 1; i < len(got); i++ {
		if got[i].Seq < got[i-1].Seq {
			t.Fatalf("out-of-order notifications: %+v", got)
		}
	}
}

func TestSubscribeCancelClosesChannel(t *testing.T) {
	s := NewServer(testCatalog())
	mustRegister(t, s, stream.Query{ID: "q", SourceID: "src", Delta: 1, Model: "constant"})
	ch, cancel, err := s.Subscribe("q", 1)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	cancel() // double-cancel must be safe
	if _, open := <-ch; open {
		t.Fatal("channel still open after cancel")
	}
	// Updates after cancel must not panic.
	driveSource(t, s, "src", []float64{1, 100})
}

func TestSubscribeSlowReaderDropsStale(t *testing.T) {
	s := NewServer(testCatalog())
	mustRegister(t, s, stream.Query{ID: "q", SourceID: "src", Delta: 0.001, Model: "constant"})
	ch, cancel, err := s.Subscribe("q", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	// Every reading transmits (tiny delta); the buffer holds 1, so the
	// subscriber must end up with a recent notification, not a deadlock.
	vals := make([]float64, 50)
	for i := range vals {
		vals[i] = float64(i * 10)
	}
	driveSource(t, s, "src", vals)
	var last Notification
	n := 0
	for {
		select {
		case got := <-ch:
			last, n = got, n+1
			continue
		default:
		}
		break
	}
	if n == 0 {
		t.Fatal("no notification delivered")
	}
	if last.Seq < 40 {
		t.Fatalf("stale notification retained: seq %d", last.Seq)
	}
}

func TestSubscribeAggregate(t *testing.T) {
	s := NewServer(testCatalog())
	agg := AggregateQuery{ID: "mean", SourceIDs: []string{"a", "b"}, Func: AggAvg, Delta: 2, Model: "constant"}
	if err := s.RegisterAggregate(agg); err != nil {
		t.Fatal(err)
	}
	ch, cancel, err := s.Subscribe("mean", 64)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	driveSource(t, s, "a", []float64{10, 10, 10})
	driveSource(t, s, "b", []float64{30, 30, 30})
	var last *Notification
	for {
		select {
		case n := <-ch:
			last = &n
			continue
		default:
		}
		break
	}
	if last == nil {
		t.Fatal("no aggregate notifications")
	}
	if len(last.Values) != 1 || last.Values[0] < 10 || last.Values[0] > 30 {
		t.Fatalf("aggregate notification value %v", last.Values)
	}
}
