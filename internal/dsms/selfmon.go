package dsms

import (
	"errors"
	"runtime"
	"runtime/metrics"
	"sync"
	"sync/atomic"
	"time"

	"streamkf/internal/core"
	"streamkf/internal/model"
	"streamkf/internal/stream"
	"streamkf/internal/telemetry"
	"streamkf/internal/telemetry/history"
	"streamkf/internal/trace"
)

// Self-monitoring: the server watches its own telemetry with the same
// machinery it sells to clients. Each tracked health signal — a windowed
// rate or quantile pulled from the history ring — is fed into a DKF
// pair (core.SourceNode mirror + core.ServerNode) exactly like a remote
// sensor stream: the filter predicts the signal, readings within δ of
// the prediction are suppressed, and only δ-violating innovations —
// the moments the server's behavior diverges from its own model of
// itself — become structured health findings. A healthy steady-state
// server therefore records almost nothing, and /healthz verdicts rest
// on filter evidence (prediction, residual, δ, NIS) rather than static
// thresholds alone.

// SelfSignal describes one tracked health signal.
type SelfSignal struct {
	// Name identifies the signal in findings and on /statusz.
	Name string
	// Help is the one-line description shown on /statusz.
	Help string
	// Model selects the filter dynamics: "constant" for signals that
	// should hold a level (error rates, latency quantiles), "linear"
	// for signals with legitimate drift (throughput, heap).
	Model string
	// Delta is the suppression threshold in the signal's own units: a
	// reading further than Delta from the filter's prediction is a
	// finding.
	Delta float64
	// Critical marks signals whose active findings make the verdict
	// unhealthy rather than degraded.
	Critical bool
	// Read produces the current signal value. ok=false means the
	// signal has no value this tick (metric not registered, window not
	// yet covered); the tick is skipped without advancing the filter.
	Read func(m *SelfMonitor) (float64, bool)
}

// SelfMonOptions configure EnableSelfMon.
type SelfMonOptions struct {
	// Window is the history ring's retention span (default 2m).
	Window time.Duration
	// Every is the snapshot-and-evaluate cadence (default 1s).
	Every time.Duration
	// RateWindow is the trailing window the default signals compute
	// rates and quantiles over (default 30s).
	RateWindow time.Duration
	// Recover is how many ticks a δ-violation keeps its signal active
	// (default 5): the verdict returns to ok only after Recover quiet
	// ticks, so probes don't flap on a single spike.
	Recover int
	// Signals is the tracked signal set; nil means DefaultSelfSignals.
	Signals []SelfSignal
	// Findings caps the retained finding ring (default 64).
	Findings int
}

func (o *SelfMonOptions) defaults() {
	if o.Window <= 0 {
		o.Window = 2 * time.Minute
	}
	if o.Every <= 0 {
		o.Every = time.Second
	}
	if o.RateWindow <= 0 {
		o.RateWindow = 30 * time.Second
	}
	if o.Recover <= 0 {
		o.Recover = 5
	}
	if o.Findings <= 0 {
		o.Findings = 64
	}
}

// HealthFinding is one structured self-monitoring event: a δ-violating
// innovation or a whiteness failure on a self-stream, with the filter
// evidence that produced it.
type HealthFinding struct {
	Time     time.Time `json:"time"`
	Signal   string    `json:"signal"`
	Kind     string    `json:"kind"` // "delta_violation" | "whiteness"
	Critical bool      `json:"critical,omitempty"`
	// Value is the observed signal value; Pred the filter's prediction
	// for it; Residual their distance, which exceeded Delta.
	Value    float64 `json:"value"`
	Pred     float64 `json:"pred"`
	Residual float64 `json:"residual"`
	Delta    float64 `json:"delta"`
	// NIS scores the innovation against the filter's own uncertainty
	// (0 when not computed).
	NIS float64 `json:"nis,omitempty"`
	// Whiteness is the lag-1 innovation autocorrelation, set on
	// whiteness findings.
	Whiteness float64 `json:"whiteness,omitempty"`
}

// HealthReason explains one active signal in a non-ok verdict.
type HealthReason struct {
	Signal    string  `json:"signal"`
	Kind      string  `json:"kind"`
	Critical  bool    `json:"critical,omitempty"`
	Value     float64 `json:"value"`
	Pred      float64 `json:"pred"`
	Residual  float64 `json:"residual"`
	Delta     float64 `json:"delta"`
	Whiteness float64 `json:"whiteness,omitempty"`
	// TicksAgo is how many evaluation ticks since the violation; the
	// signal deactivates after Recover quiet ticks.
	TicksAgo int64 `json:"ticks_ago"`
}

// HealthStatus is the /healthz verdict document.
type HealthStatus struct {
	Status        string         `json:"status"` // ok | degraded | unhealthy
	UptimeSeconds float64        `json:"uptime_seconds"`
	Reasons       []HealthReason `json:"reasons,omitempty"`
}

// Verdict levels, ordered by severity.
const (
	verdictOK int32 = iota
	verdictDegraded
	verdictUnhealthy
)

func verdictName(v int32) string {
	switch v {
	case verdictDegraded:
		return "degraded"
	case verdictUnhealthy:
		return "unhealthy"
	}
	return "ok"
}

// selfStream is one signal's DKF pair plus its finding state and a
// small fixed ring of recent values for the /statusz sparkline.
type selfStream struct {
	sig SelfSignal
	src *core.SourceNode
	srv *core.ServerNode

	seq  int        // reading index; advances only on fed ticks
	vals [1]float64 // reusable Reading.Values backing array

	fed          bool    // the latest tick produced a value
	value        float64 // latest read value
	lastViolTick int64   // monitor tick of the latest δ-violation (0: none)
	viol         trace.DecisionInfo
	whitenessBad bool

	samples [120]float64
	sHead   int // next write index
	sCount  int
}

func (st *selfStream) record(v float64) {
	st.samples[st.sHead] = v
	st.sHead = (st.sHead + 1) % len(st.samples)
	if st.sCount < len(st.samples) {
		st.sCount++
	}
}

// SelfMonitor drives the server's self-observation: a history ring
// snapshotted every tick, the self-stream filters fed from it, and the
// finding ring and verdict the admin endpoints surface. Tick may be
// driven manually (tests) or by Start's background ticker.
type SelfMonitor struct {
	server *Server
	ring   *history.Ring
	opts   SelfMonOptions

	// verdict is stored atomically so the dkf_selfmon_verdict gauge
	// func can read it while Tick holds mu (the ring snapshot inside
	// Tick evaluates every registered gauge func).
	verdict       atomic.Int32
	findingsTotal *telemetry.Counter

	mu       sync.Mutex
	streams  []*selfStream
	tick     int64
	findings []HealthFinding // fixed-capacity ring
	fNext    int
	fCount   int
	started  bool
	closed   bool

	stop chan struct{}
	done chan struct{}
}

// EnableSelfMon attaches a self-monitor to the server: a history ring
// over its telemetry registry and one DKF pair per signal. No
// goroutine is started — call Start for the background ticker, or
// drive Tick manually. Fails when already enabled.
func (s *Server) EnableSelfMon(opts SelfMonOptions) (*SelfMonitor, error) {
	opts.defaults()
	if opts.Signals == nil {
		opts.Signals = DefaultSelfSignals()
	}
	s.selfMu.Lock()
	defer s.selfMu.Unlock()
	if s.selfmon != nil {
		return nil, errors.New("dsms: self-monitor already enabled")
	}
	m := &SelfMonitor{
		server:   s,
		ring:     history.New(s.tel.reg, history.Options{Every: opts.Every, Window: opts.Window}),
		opts:     opts,
		findings: make([]HealthFinding, opts.Findings),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	const q, r = 0.05, 0.05 // the catalog's noise convention
	for _, sig := range opts.Signals {
		mdl := model.Constant(1, q, r)
		if sig.Model == "linear" {
			mdl = model.Linear(1, opts.Every.Seconds(), q, r)
		}
		cfg := core.Config{SourceID: "self/" + sig.Name, Model: mdl, Delta: sig.Delta}
		src, err := core.NewSourceNode(cfg)
		if err != nil {
			return nil, err
		}
		srv, err := core.NewServerNode(cfg)
		if err != nil {
			return nil, err
		}
		m.streams = append(m.streams, &selfStream{sig: sig, src: src, srv: srv})
	}
	m.findingsTotal = s.tel.reg.Counter("dkf_selfmon_findings_total", "Self-monitoring health findings recorded.")
	s.tel.reg.GaugeFunc("dkf_selfmon_verdict", "Self-monitoring verdict: 0 ok, 1 degraded, 2 unhealthy.",
		func() float64 { return float64(m.verdict.Load()) })
	s.tel.reg.GaugeFunc("dkf_selfmon_signals", "Self-monitoring signals tracked.",
		func() float64 { return float64(len(m.streams)) })
	s.selfmon = m
	return m, nil
}

// SelfMon returns the attached self-monitor, nil when not enabled.
func (s *Server) SelfMon() *SelfMonitor {
	s.selfMu.Lock()
	defer s.selfMu.Unlock()
	return s.selfmon
}

// Health returns the server's current health verdict. Without a
// self-monitor the server has no evidence of trouble and reports ok.
func (s *Server) Health() HealthStatus {
	m := s.SelfMon()
	if m == nil {
		return HealthStatus{Status: verdictName(verdictOK), UptimeSeconds: time.Since(epoch).Seconds()}
	}
	return m.Health()
}

// History returns the monitor's history ring (the /metricsz backend).
func (m *SelfMonitor) History() *history.Ring { return m.ring }

// Options returns the effective configuration.
func (m *SelfMonitor) Options() SelfMonOptions { return m.opts }

// Start launches the background ticker driving Tick every opts.Every.
// Idempotent; Close stops it.
func (m *SelfMonitor) Start() {
	m.mu.Lock()
	if m.started || m.closed {
		m.mu.Unlock()
		return
	}
	m.started = true
	m.mu.Unlock()
	go func() {
		defer close(m.done)
		t := time.NewTicker(m.opts.Every)
		defer t.Stop()
		for {
			select {
			case <-m.stop:
				return
			case now := <-t.C:
				m.Tick(now)
			}
		}
	}()
}

// Close stops the background ticker, if any, and waits for it to exit.
// The monitor's state stays readable after Close.
func (m *SelfMonitor) Close() {
	m.mu.Lock()
	started := m.started
	if m.closed {
		m.mu.Unlock()
		if started {
			<-m.done
		}
		return
	}
	m.closed = true
	m.mu.Unlock()
	close(m.stop)
	if started {
		<-m.done
	}
}

// Tick runs one self-observation cycle: snapshot the registry into the
// history ring, read every signal, feed the fed ones through their DKF
// pairs, turn δ-violations and fresh whiteness failures into findings,
// and refresh the verdict. Steady state (all signals suppressed) costs
// one small allocation per fed signal — SourceNode.Process's estimate
// copy, the contract pinned by TestSelfStreamAllocBudget.
func (m *SelfMonitor) Tick(now time.Time) {
	m.ring.Snapshot(now)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tick++
	t := float64(now.UnixNano()) / 1e9
	for _, st := range m.streams {
		v, ok := st.sig.Read(m)
		st.fed = ok
		if !ok {
			continue
		}
		st.value = v
		st.record(v)
		// The reading index advances only when the signal is fed: the
		// mirror predicts once per Process call, and the server-side
		// AdvanceTo(u.Seq) must replay exactly that many predicts.
		st.seq++
		st.vals[0] = v
		u, _, err := st.src.Process(stream.Reading{Seq: st.seq, Time: t, Values: st.vals[:]})
		if err != nil {
			continue
		}
		if u != nil {
			if err := st.srv.ApplyUpdate(*u); err == nil && !u.Bootstrap {
				st.lastViolTick = m.tick
				st.viol = st.src.LastDecision()
				m.addFinding(HealthFinding{
					Time: now, Signal: st.sig.Name, Kind: "delta_violation", Critical: st.sig.Critical,
					Value: v, Pred: st.viol.Pred, Residual: st.viol.Residual, Delta: st.sig.Delta, NIS: st.viol.NIS,
				})
			}
		}
		// Sustained one-sided whiteness failure: the self-stream's
		// model no longer explains the signal. Record on the healthy →
		// unhealthy transition only; the active flag persists while
		// the window stays bad.
		h := st.srv.Health()
		bad := h.Ready && !h.Healthy
		if bad && !st.whitenessBad {
			m.addFinding(HealthFinding{
				Time: now, Signal: st.sig.Name, Kind: "whiteness", Critical: st.sig.Critical,
				Value: v, Pred: st.viol.Pred, Residual: st.viol.Residual, Delta: st.sig.Delta, Whiteness: h.Whiteness,
			})
		}
		st.whitenessBad = bad
	}
	m.verdict.Store(m.verdictLocked())
}

// addFinding appends into the fixed finding ring. Caller holds mu.
func (m *SelfMonitor) addFinding(f HealthFinding) {
	m.findings[m.fNext] = f
	m.fNext = (m.fNext + 1) % len(m.findings)
	if m.fCount < len(m.findings) {
		m.fCount++
	}
	m.findingsTotal.Inc()
}

// active reports whether the stream contributes to a non-ok verdict:
// a δ-violation within the last Recover ticks, or a currently-bad
// whiteness window. Caller holds mu.
func (m *SelfMonitor) active(st *selfStream) bool {
	if st.whitenessBad {
		return true
	}
	return st.lastViolTick > 0 && m.tick-st.lastViolTick < int64(m.opts.Recover)
}

// verdictLocked folds the streams into a verdict. Caller holds mu.
func (m *SelfMonitor) verdictLocked() int32 {
	v := verdictOK
	for _, st := range m.streams {
		if !m.active(st) {
			continue
		}
		if st.sig.Critical {
			return verdictUnhealthy
		}
		v = verdictDegraded
	}
	return v
}

// Health assembles the verdict document with one reason per active
// signal. Query path; allocates.
func (m *SelfMonitor) Health() HealthStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := HealthStatus{Status: verdictName(m.verdictLocked()), UptimeSeconds: time.Since(epoch).Seconds()}
	for _, st := range m.streams {
		if !m.active(st) {
			continue
		}
		r := HealthReason{
			Signal: st.sig.Name, Kind: "delta_violation", Critical: st.sig.Critical,
			Value: st.value, Pred: st.viol.Pred, Residual: st.viol.Residual, Delta: st.sig.Delta,
			TicksAgo: m.tick - st.lastViolTick,
		}
		if st.whitenessBad {
			h := st.srv.Health()
			r.Whiteness = h.Whiteness
			if st.lastViolTick == 0 || m.tick-st.lastViolTick >= int64(m.opts.Recover) {
				r.Kind = "whiteness"
				r.TicksAgo = 0
			}
		}
		out.Reasons = append(out.Reasons, r)
	}
	return out
}

// Findings returns up to limit retained findings, newest first.
func (m *SelfMonitor) Findings(limit int) []HealthFinding {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := m.fCount
	if limit > 0 && limit < n {
		n = limit
	}
	out := make([]HealthFinding, n)
	for i := 0; i < n; i++ {
		idx := (m.fNext - 1 - i + len(m.findings)) % len(m.findings)
		out[i] = m.findings[idx]
	}
	return out
}

// SelfSignalView is one signal's state for /statusz.
type SelfSignalView struct {
	Name         string    `json:"name"`
	Help         string    `json:"help,omitempty"`
	Model        string    `json:"model"`
	Delta        float64   `json:"delta"`
	Critical     bool      `json:"critical,omitempty"`
	Fed          bool      `json:"fed"`
	Value        float64   `json:"value"`
	Updates      int       `json:"updates"`    // transmitted (δ-violating + bootstrap) readings
	Suppressed   int       `json:"suppressed"` // within-δ readings
	Active       bool      `json:"active"`
	WhitenessBad bool      `json:"whiteness_bad,omitempty"`
	Samples      []float64 `json:"samples,omitempty"` // recent values, oldest first
}

// Signals returns every signal's current state, in registration order.
// Query path; allocates.
func (m *SelfMonitor) Signals() []SelfSignalView {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]SelfSignalView, len(m.streams))
	for i, st := range m.streams {
		stats := st.src.Stats()
		mdl := st.sig.Model
		if mdl == "" {
			mdl = "constant"
		}
		v := SelfSignalView{
			Name: st.sig.Name, Help: st.sig.Help, Model: mdl, Delta: st.sig.Delta,
			Critical: st.sig.Critical, Fed: st.fed, Value: st.value,
			Updates: stats.Updates, Suppressed: stats.Suppressed,
			Active: m.active(st), WhitenessBad: st.whitenessBad,
		}
		if st.sCount > 0 {
			v.Samples = make([]float64, st.sCount)
			for j := 0; j < st.sCount; j++ {
				v.Samples[j] = st.samples[(st.sHead-st.sCount+j+len(st.samples))%len(st.samples)]
			}
		}
		out[i] = v
	}
	return out
}

// DefaultSelfSignals is the stock signal catalog: the server health
// dimensions called out in DESIGN.md §15. Signals whose backing metric
// is absent on a given server (no engine, no WAL, no UDP lanes) simply
// never feed — Read returns ok=false and the filter stays cold.
func DefaultSelfSignals() []SelfSignal {
	rate := func(metric string) func(m *SelfMonitor) (float64, bool) {
		return func(m *SelfMonitor) (float64, bool) {
			return m.ring.Rate(metric, m.opts.RateWindow)
		}
	}
	p99ms := func(metric string) func(m *SelfMonitor) (float64, bool) {
		return func(m *SelfMonitor) (float64, bool) {
			v, ok := m.ring.WindowQuantile(metric, m.opts.RateWindow, 0.99)
			return v / 1e6, ok
		}
	}
	// Preallocated so the variadic pass in Read allocates nothing.
	peerClosed := []telemetry.Label{telemetry.L("kind", "peer_closed")}
	heapSample := []metrics.Sample{{Name: "/memory/classes/heap/objects:bytes"}}
	return []SelfSignal{
		{Name: "ingest_rate", Help: "Updates folded into server filters per second, all sources.",
			Model: "linear", Delta: 500, Read: rate("dkf_server_updates_total")},
		{Name: "shed_rate", Help: "Updates shed per second because a shard ring was full.",
			Model: "constant", Delta: 0.5, Read: rate("dkf_engine_ring_dropped_total")},
		{Name: "ring_hwm_growth", Help: "Shard ring high-water-mark growth per second.",
			Model: "constant", Delta: 8, Read: rate("dkf_engine_ring_depth_hwm")},
		{Name: "stepall_p99_ms", Help: "StepAll batch latency p99 over the rate window, milliseconds.",
			Model: "constant", Delta: 20, Read: p99ms("dkf_server_stepall_ns")},
		{Name: "wal_fsync_p99_ms", Help: "WAL fsync latency p99 over the rate window, milliseconds.",
			Model: "constant", Delta: 10, Read: p99ms("streamkf_wal_fsync_duration_nanos")},
		{Name: "wal_error_rate", Help: "Shard batch WAL commit failures per second.",
			Model: "constant", Delta: 0.1, Critical: true, Read: rate("dkf_engine_wal_errors_total")},
		{Name: "wire_error_rate", Help: "Wire protocol failures per second, normal peer closes excluded.",
			Model: "constant", Delta: 5, Read: func(m *SelfMonitor) (float64, bool) {
				all, ok := m.ring.Rate("dkf_wire_errors_total", m.opts.RateWindow)
				if !ok {
					return 0, false
				}
				pc, _ := m.ring.Rate("dkf_wire_errors_total", m.opts.RateWindow, peerClosed...)
				return all - pc, true
			}},
		{Name: "ack_rtt_p99_ms", Help: "Agent ack round-trip p99 over the rate window, milliseconds.",
			Model: "constant", Delta: 50, Read: p99ms("dkf_agent_ack_rtt_ns")},
		{Name: "lane_rx_rate", Help: "UDP datagrams received per second across reader lanes.",
			Model: "linear", Delta: 1000, Read: rate("dkf_udp_lane_datagrams_rx_total")},
		{Name: "conns_active", Help: "Open TCP wire connections.",
			Model: "linear", Delta: 64, Read: func(m *SelfMonitor) (float64, bool) {
				return m.ring.Latest("dkf_wire_connections_active")
			}},
		{Name: "goroutines", Help: "Live goroutines.",
			Model: "linear", Delta: 200, Read: func(m *SelfMonitor) (float64, bool) {
				return float64(runtime.NumGoroutine()), true
			}},
		{Name: "heap_mb", Help: "Live heap object bytes, MiB.",
			Model: "linear", Delta: 256, Read: func(m *SelfMonitor) (float64, bool) {
				metrics.Read(heapSample)
				if heapSample[0].Value.Kind() != metrics.KindUint64 {
					return 0, false
				}
				return float64(heapSample[0].Value.Uint64()) / (1 << 20), true
			}},
	}
}
