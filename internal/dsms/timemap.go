package dsms

import (
	"fmt"
	"math"
)

// timeMap tracks the seq↔time correspondence a source's updates reveal:
// the bootstrap anchors the line and every update refines the sampling
// rate estimate. Between (and beyond) updates the mapping interpolates
// linearly, which is exact for the fixed-rate sampling the paper
// assumes.
type timeMap struct {
	bootSeq  int
	bootTime float64
	lastSeq  int
	lastTime float64
	anchored bool
}

// observe records an update's (seq, time) pair.
func (t *timeMap) observe(seq int, tim float64) {
	if !t.anchored {
		t.bootSeq, t.bootTime = seq, tim
		t.lastSeq, t.lastTime = seq, tim
		t.anchored = true
		return
	}
	if seq > t.lastSeq {
		t.lastSeq, t.lastTime = seq, tim
	}
}

// rate returns the estimated seconds per reading, or ok=false before two
// distinct anchors exist.
func (t *timeMap) rate() (float64, bool) {
	if !t.anchored || t.lastSeq == t.bootSeq {
		return 0, false
	}
	dt := (t.lastTime - t.bootTime) / float64(t.lastSeq-t.bootSeq)
	if dt <= 0 || math.IsNaN(dt) || math.IsInf(dt, 0) {
		return 0, false
	}
	return dt, true
}

// seqFor maps a timestamp to the nearest reading index.
func (t *timeMap) seqFor(tim float64) (int, error) {
	dt, ok := t.rate()
	if !ok {
		return 0, fmt.Errorf("dsms: time mapping needs at least two updates at distinct steps")
	}
	seq := t.bootSeq + int(math.Round((tim-t.bootTime)/dt))
	if seq < t.bootSeq {
		return 0, fmt.Errorf("dsms: time %v precedes the stream start (%v)", tim, t.bootTime)
	}
	return seq, nil
}

// SeqForTime maps a wall-clock timestamp to the source's reading index,
// using the sampling rate inferred from its updates.
func (s *Server) SeqForTime(sourceID string, tim float64) (int, error) {
	s.mu.RLock()
	st := s.sources[sourceID]
	s.mu.RUnlock()
	if st == nil {
		return 0, fmt.Errorf("dsms: unknown source %s", sourceID)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.times.seqFor(tim)
}

// AnswerAtTime evaluates a value query at a wall-clock timestamp: the
// timestamp maps to a reading index through the source's inferred
// sampling rate, then resolves like Answer (current/future) — and like
// AnswerAt when history is enabled and the timestamp is in the past.
func (s *Server) AnswerAtTime(queryID string, tim float64) ([]float64, error) {
	st, ok := s.lookupQuery(queryID)
	if !ok {
		return nil, fmt.Errorf("dsms: unknown query %s", queryID)
	}
	st.mu.Lock()
	seq, err := st.times.seqFor(tim)
	if err != nil {
		st.mu.Unlock()
		return nil, fmt.Errorf("dsms: source %s: %w", st.id, err)
	}
	// Past timestamps need the history store; the present and future
	// resolve from the live prediction.
	nodeSeq := 0
	if st.node != nil {
		nodeSeq = st.node.Seq()
	}
	hasHistory := st.history != nil
	st.mu.Unlock()
	if seq < nodeSeq && hasHistory {
		return s.AnswerAt(queryID, seq)
	}
	return s.Answer(queryID, seq)
}
