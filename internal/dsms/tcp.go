package dsms

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"streamkf/internal/core"
	"streamkf/internal/dsms/wire"
	"streamkf/internal/stream"
	"streamkf/internal/telemetry"
	"streamkf/internal/trace"
)

// The TCP transport speaks the length-prefixed binary framing protocol
// of internal/dsms/wire. A source connection exchanges preambles, then
// hello → install, then ships update frames *pipelined*: the agent does
// not wait for acknowledgements, the server acks cumulatively by
// sequence number, and a configurable window of unacked updates
// provides backpressure. Server-side failures arrive asynchronously as
// error frames and fail the agent's next Offer. Query clients remain
// synchronous request/response.

// DefaultWindow is the default number of unacknowledged updates a
// RemoteAgent keeps in flight before Offer blocks for acks.
const DefaultWindow = 64

// errAgentClosed reports an operation on a RemoteAgent after Close.
var errAgentClosed = errors.New("dsms: agent closed")

// DialOptions tunes a RemoteAgent connection.
type DialOptions struct {
	// Window is the maximum number of unacked updates in flight.
	// 0 means DefaultWindow; 1 reproduces the synchronous
	// ack-per-update protocol.
	Window int
	// MaxFrame caps accepted frame sizes; 0 means wire.DefaultMaxFrame.
	MaxFrame int
	// Telemetry, when non-nil, receives the agent's instrument set
	// (offers, sends, ack RTT, window occupancy) under per-source
	// labels. Recording is allocation-free, so enabling it does not
	// disturb the pipelined send path's alloc budget.
	Telemetry *telemetry.Registry
	// Trace attaches a flight recorder to the agent's source node and —
	// when the server advertises wire.FeatTrace — ships each send
	// decision's evidence ahead of its update frame so the server can
	// audit the suppression protocol end to end. Against a server
	// without the feature bit the recorder still runs locally and
	// nothing extra crosses the wire.
	Trace bool
	// TraceRing sizes the local flight recorder ring; 0 means
	// trace.DefaultRingSize. Only meaningful with Trace.
	TraceRing int
	// TraceSample records detailed per-reading events for one reading
	// in every TraceSample; <= 1 records all. Decisions that transmit
	// are always recorded. Only meaningful with Trace.
	TraceSample int
}

// ServerOptions tunes a TCPServer.
type ServerOptions struct {
	// MaxFrame caps accepted frame sizes; 0 means wire.DefaultMaxFrame.
	MaxFrame int
}

// TCPServer exposes a Server over the binary wire protocol.
type TCPServer struct {
	server   *Server
	ln       net.Listener
	maxFrame int
	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	closed   bool
	serveWG  sync.WaitGroup
}

// NewTCPServer wraps server with a listener on addr (e.g.
// "127.0.0.1:0"). Call Serve to start accepting and Close to stop.
func NewTCPServer(server *Server, addr string) (*TCPServer, error) {
	return NewTCPServerOptions(server, addr, ServerOptions{})
}

// NewTCPServerOptions is NewTCPServer with explicit limits.
func NewTCPServerOptions(server *Server, addr string, opts ServerOptions) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dsms: listen: %w", err)
	}
	return &TCPServer{server: server, ln: ln, maxFrame: opts.MaxFrame, conns: make(map[net.Conn]struct{})}, nil
}

// Addr returns the bound listener address.
func (t *TCPServer) Addr() string { return t.ln.Addr().String() }

// Serve accepts and handles connections until Close is called. It
// returns nil on graceful shutdown.
func (t *TCPServer) Serve() error {
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			t.mu.Lock()
			closed := t.closed
			if !closed {
				// A listener failure outside Close must not leak the
				// in-flight handler goroutines past Serve's return:
				// close their connections so the handlers unwind, then
				// wait them out exactly as the graceful path does.
				for c := range t.conns {
					c.Close()
				}
			}
			t.mu.Unlock()
			t.serveWG.Wait()
			if closed {
				return nil
			}
			return fmt.Errorf("dsms: accept: %w", err)
		}
		t.mu.Lock()
		t.conns[conn] = struct{}{}
		t.mu.Unlock()
		t.serveWG.Add(1)
		go func() {
			defer t.serveWG.Done()
			t.handle(conn)
		}()
	}
}

// Close stops the listener and closes every open connection.
func (t *TCPServer) Close() error {
	t.mu.Lock()
	t.closed = true
	for c := range t.conns {
		c.Close()
	}
	t.mu.Unlock()
	return t.ln.Close()
}

func (t *TCPServer) handle(conn net.Conn) {
	tel := t.server.tel
	tel.connsTotal.Inc()
	tel.connsActive.Add(1)
	defer func() {
		conn.Close()
		tel.connsActive.Add(-1)
		t.mu.Lock()
		delete(t.conns, conn)
		t.mu.Unlock()
	}()
	r := wire.NewReader(conn, 0, t.maxFrame)
	w := wire.NewWriter(conn, 0, t.maxFrame)
	r.OnFrame = tel.rx
	w.OnFrame = tel.tx

	// Preamble exchange: validate the client's, answer with ours. A
	// peer that is not speaking the protocol at all gets an error frame
	// on the off chance it can parse one, then the close.
	ver, err := r.ReadPreamble()
	if err != nil {
		tel.countWireError(err)
		w.Error(err.Error())
		w.Flush()
		return
	}
	// Advertise trace-frame acceptance only while tracing is on, so
	// non-tracing servers never have to parse the optional tag. Cluster
	// framing is always accepted — the handler below understands the
	// tags whether or not this server runs as a shard, and a router
	// requires the bit before it will forward upstream.
	feats := wire.FeatCluster
	if t.server.TraceEnabled() {
		// FeatHopTrace invites the extended TagTrace payloads that carry
		// decision/router-hop timestamps (see wire/hoptrace.go) so a
		// spliced cross-node trail can order events by source time.
		feats |= wire.FeatTrace | wire.FeatHopTrace
	}
	if w.WritePreambleFeatures(wire.Version, feats) != nil {
		return
	}
	if err := wire.CheckVersion(ver); err != nil {
		tel.countWireError(err)
		w.Error(fmt.Sprintf("dsms: %v", err))
		w.Flush()
		return
	}
	if w.Flush() != nil {
		return
	}

	// Per-connection decode state: the update struct and its Values
	// slice are reused across frames, so the steady-state ingest path
	// performs no allocations. pend holds decision evidence from a
	// trace frame until the update it describes arrives.
	var u core.Update
	var ackSeq int64
	pendingAck := false
	var pend trace.DecisionInfo
	havePend := false
	var pendHop wire.TraceHop
	haveHop := false

	// Forward-ack coalescing (cluster mode): a burst of forwarded
	// updates acks once per route index, not once per frame. fwdOrder
	// keeps the flush order deterministic (first-touched first).
	var fwdAcks map[uint32]int64
	var fwdOrder []uint32

	// flushAck writes the cumulative ack for everything folded so far.
	flushAck := func() bool {
		if pendingAck {
			if w.Ack(ackSeq) != nil {
				return false
			}
			pendingAck = false
		}
		for _, idx := range fwdOrder {
			if w.ForwardAck(idx, fwdAcks[idx]) != nil {
				return false
			}
			delete(fwdAcks, idx)
		}
		fwdOrder = fwdOrder[:0]
		return w.Flush() == nil
	}

	for {
		tag, p, err := r.Next()
		if err != nil {
			tel.countWireError(err)
			// Tell a well-behaved client why an oversized or malformed
			// frame killed the connection; a vanished peer gets nothing.
			var fse *wire.FrameSizeError
			if errors.As(err, &fse) || errors.Is(err, wire.ErrMalformed) {
				w.Error(fmt.Sprintf("dsms: %v", err))
				w.Flush()
			}
			return
		}
		switch tag {
		case wire.TagHello:
			id, err := wire.DecodeHello(p)
			if err != nil {
				tel.countWireError(err)
				w.Error(fmt.Sprintf("dsms: %v", err))
				w.Flush()
				return
			}
			cfg, err := t.server.InstallFor(id)
			if err != nil {
				if w.Error(err.Error()) != nil || !flushAck() {
					return
				}
				continue
			}
			// ResumeSeq tells a reconnecting source with live mirror
			// state how far this server's (possibly crash-recovered)
			// filter has advanced: resend unacked updates past it, no
			// re-bootstrap. A fresh source ignores it and bootstraps.
			if w.Install(cfg.SourceID, cfg.Model.Name, cfg.Delta, cfg.F, t.server.ResumeSeq(id)) != nil || !flushAck() {
				return
			}
		case wire.TagUpdate:
			if err := r.DecodeUpdate(p, &u); err != nil {
				tel.countWireError(err)
				w.Error(fmt.Sprintf("dsms: %v", err))
				w.Flush()
				return
			}
			var wd *trace.DecisionInfo
			if havePend {
				havePend, haveHop = false, false
				if pend.Seq == int64(u.Seq) {
					wd = &pend
				}
			}
			if err := t.server.HandleUpdateTraced(u, wd, len(p)+5); err != nil {
				// Delivered asynchronously: the client fails its next
				// Offer. Keep reading — the client decides when to hang up.
				if w.Error(err.Error()) != nil || !flushAck() {
					return
				}
				continue
			}
			ackSeq = int64(u.Seq)
			pendingAck = true
			// Coalesce acks: only flush when no further frames are
			// already buffered, so a burst of updates costs one ack
			// write-out instead of one per update.
			if r.Buffered() == 0 && !flushAck() {
				return
			}
		case wire.TagTrace:
			d, hop, hasHop, err := wire.DecodeTraceExt(p)
			if err != nil {
				tel.countWireError(err)
				w.Error(fmt.Sprintf("dsms: %v", err))
				w.Flush()
				return
			}
			// Not acked: the evidence travels with (and is confirmed by
			// the ack of) the update frame that follows it.
			pend, havePend = d, true
			pendHop, haveHop = hop, hasHop
		case wire.TagQuery:
			qid, seq, err := r.DecodeQuery(p)
			if err != nil {
				tel.countWireError(err)
				w.Error(fmt.Sprintf("dsms: %v", err))
				w.Flush()
				return
			}
			vals, err := t.server.Answer(qid, int(seq))
			if err != nil {
				// The id may name an aggregate or windowed query instead.
				// A Partial aggregate answers its mergeable partial vector
				// (what a router merges); others answer a scalar.
				if v, aggErr := t.server.AnswerAggregateVals(qid, int(seq)); aggErr == nil {
					vals, err = v, nil
				} else if v, winErr := t.server.AnswerWindow(qid, int(seq)); winErr == nil {
					vals, err = []float64{v}, nil
				}
			}
			if err != nil {
				if w.Error(err.Error()) != nil || !flushAck() {
					return
				}
				continue
			}
			if w.Answer(qid, vals) != nil || !flushAck() {
				return
			}
		case wire.TagForward:
			// A router-forwarded update: the envelope carries the route
			// index the ack must name (the downstream seq alone is
			// ambiguous across sources sharing the upstream connection)
			// and the topology epoch the router routed under.
			env, err := wire.DecodeForward(p)
			if err != nil {
				tel.countWireError(err)
				w.Error(fmt.Sprintf("dsms: %v", err))
				w.Flush()
				return
			}
			t.server.ObserveEpoch(env.Epoch)
			if err := r.DecodeUpdate(env.Payload, &u); err != nil {
				tel.countWireError(err)
				w.Error(fmt.Sprintf("dsms: %v", err))
				w.Flush()
				return
			}
			if _, rel := t.server.SourceReleased(u.SourceID); rel {
				// A stale owner: this stream migrated away. Rejecting —
				// never folding — keeps exactly one shard authoritative.
				if w.Error(fmt.Sprintf("dsms: source %s released from this shard", u.SourceID)) != nil || !flushAck() {
					return
				}
				continue
			}
			var wd *trace.DecisionInfo
			wdHop := false
			if havePend {
				havePend = false
				if pend.Seq == int64(u.Seq) {
					wd = &pend
					wdHop = haveHop
				}
				haveHop = false
			}
			if wd != nil && wdHop {
				// Splice the router's hop into this stream's trail before
				// the apply/wal events so the ring preserves causal order.
				t.server.RecordForwardHop(u.SourceID, wd.TraceID, wd.Seq, pendHop)
			}
			if err := t.server.HandleUpdateTraced(u, wd, len(p)+5); err != nil {
				if w.Error(err.Error()) != nil || !flushAck() {
					return
				}
				continue
			}
			if _, ok := fwdAcks[env.Idx]; !ok {
				if fwdAcks == nil {
					fwdAcks = make(map[uint32]int64)
				}
				fwdOrder = append(fwdOrder, env.Idx)
			}
			fwdAcks[env.Idx] = int64(u.Seq)
			if r.Buffered() == 0 && !flushAck() {
				return
			}
		case wire.TagClusterReg:
			kind, q, agg, err := wire.DecodeClusterReg(p)
			if err != nil {
				tel.countWireError(err)
				w.Error(fmt.Sprintf("dsms: %v", err))
				w.Flush()
				return
			}
			// Registration is idempotent-adopt: a router re-registering
			// after a shard restart finds the queries recovered from the
			// WAL and simply confirms them.
			var id string
			var regErr error
			if kind == wire.RegAggregate {
				id = agg.ID
				if !t.server.HasAggregate(agg.ID) {
					regErr = t.server.RegisterAggregate(AggregateQuery{
						ID: agg.ID, Func: AggFunc(agg.Func), Model: agg.Model,
						Delta: agg.Delta, F: agg.F, Partial: agg.Partial, SourceIDs: agg.SourceIDs,
					})
				}
			} else {
				id = q.ID
				if !t.server.HasQuery(q.ID) {
					regErr = t.server.Register(stream.Query{
						ID: q.ID, SourceID: q.SourceID, Model: q.Model, Delta: q.Delta, F: q.F,
					})
				}
			}
			if regErr != nil {
				if w.Error(regErr.Error()) != nil || !flushAck() {
					return
				}
				continue
			}
			if w.Registered(id) != nil || !flushAck() {
				return
			}
		case wire.TagSnapshot:
			srcID, epoch, err := wire.DecodeSnapshot(p)
			if err != nil {
				tel.countWireError(err)
				w.Error(fmt.Sprintf("dsms: %v", err))
				w.Flush()
				return
			}
			payload, resumeSeq, err := t.server.SnapshotSource(srcID, epoch)
			if err != nil {
				if w.Error(err.Error()) != nil || !flushAck() {
					return
				}
				continue
			}
			if w.WriteStateAck(wire.StateAck{SourceID: srcID, ResumeSeq: resumeSeq, Epoch: epoch, Payload: payload}) != nil || !flushAck() {
				return
			}
		case wire.TagRestore:
			epoch, payload, err := wire.DecodeRestore(p)
			if err != nil {
				tel.countWireError(err)
				w.Error(fmt.Sprintf("dsms: %v", err))
				w.Flush()
				return
			}
			srcID, resumeSeq, err := t.server.RestoreSource(payload, epoch)
			if err != nil {
				if w.Error(err.Error()) != nil || !flushAck() {
					return
				}
				continue
			}
			if w.WriteStateAck(wire.StateAck{SourceID: srcID, ResumeSeq: resumeSeq, Epoch: epoch}) != nil || !flushAck() {
				return
			}
		default:
			tel.errUnknownTag.Inc()
			if w.Error(fmt.Sprintf("dsms: unknown message tag 0x%02x", byte(tag))) != nil || !flushAck() {
				return
			}
		}
	}
}

// RemoteAgent is a source agent connected to a TCPServer. It performs
// the install handshake on dial and ships updates pipelined: Offer
// returns as soon as the update frame is buffered, a background reader
// consumes the server's cumulative acks, and at most Window updates stay
// unacknowledged before Offer blocks. Server errors are sticky and fail
// every subsequent Offer, Drain, and Close.
type RemoteAgent struct {
	agent  *Agent
	window int

	// Redial state for Reconnect: how this agent was built.
	addr     string
	sourceID string
	catalog  *Catalog
	opts     DialOptions
	cfg      core.Config

	mu          sync.Mutex
	cond        *sync.Cond
	conn        net.Conn
	w           *wire.Writer
	outstanding []int64 // unacked update seqs, oldest first (monotonic)
	sendTimes   []int64 // send timestamps parallel to outstanding (telemetry only)
	// pending retains the unacked updates themselves (parallel to
	// outstanding) so a reconnect can resend exactly what a crashed
	// server may have lost. Process hands each transmitted update a
	// fresh Values slice, so retention adds no per-send allocations.
	pending   []core.Update
	lastAcked int64 // highest cumulatively acked seq (-1 before any)
	err       error // sticky transport/server error
	closing   bool  // suppresses the close-induced read error

	// wireTrace is true when both sides opted into trace frames: the
	// agent asked for tracing and the connected server advertised
	// wire.FeatTrace. Re-evaluated on every (re)connect, so a tracing
	// agent keeps interoperating with servers that lack the feature.
	wireTrace bool
	// wireHop is true when the server additionally advertised
	// wire.FeatHopTrace: trace frames then carry the decision timestamp
	// (73-byte form) so downstream recorders stamp the relayed decision
	// with source time. Re-evaluated with wireTrace on every connect.
	wireHop bool
	tracer  *trace.Recorder // local flight recorder; nil unless opts.Trace

	ins *AgentInstruments // optional; set once at dial, nil-safe

	readerDone chan struct{}
}

// DialSource connects sourceID to the server at addr with default
// options, resolving the installed model from catalog — the agent and
// server must share catalog contents by name.
func DialSource(addr, sourceID string, catalog *Catalog) (*RemoteAgent, error) {
	return DialSourceOptions(addr, sourceID, catalog, DialOptions{})
}

// dialHandshake dials addr and runs the preamble + hello → install
// exchange, returning the connection, its framed writer/reader, the
// decoded install reply, and the server's advertised feature bits. On
// error the connection is already closed.
func dialHandshake(addr, sourceID string, window int, opts DialOptions) (net.Conn, *wire.Writer, *wire.Reader, wire.Install, byte, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, nil, nil, wire.Install{}, 0, fmt.Errorf("dsms: dial: %w", err)
	}
	// Size the write buffer for a full window of small update frames so
	// coalesced bursts reach the kernel in one write.
	w := wire.NewWriter(conn, 64*window, opts.MaxFrame)
	r := wire.NewReader(conn, 0, opts.MaxFrame)
	fail := func(err error) (net.Conn, *wire.Writer, *wire.Reader, wire.Install, byte, error) {
		conn.Close()
		return nil, nil, nil, wire.Install{}, 0, err
	}
	if err := w.WritePreamble(wire.Version); err != nil {
		return fail(fmt.Errorf("dsms: send: %w", err))
	}
	if err := w.Hello(sourceID); err != nil {
		return fail(fmt.Errorf("dsms: send: %w", err))
	}
	if err := w.Flush(); err != nil {
		return fail(fmt.Errorf("dsms: send: %w", err))
	}
	ver, feats, err := r.ReadPreambleFeatures()
	if err != nil {
		return fail(fmt.Errorf("dsms: handshake: %w", err))
	}
	if err := wire.CheckVersion(ver); err != nil {
		return fail(fmt.Errorf("dsms: handshake: %w", err))
	}
	tag, p, err := r.Next()
	if err != nil {
		return fail(fmt.Errorf("dsms: handshake: %w", recvErr(err)))
	}
	if tag == wire.TagError {
		msg, _ := wire.DecodeError(p)
		return fail(fmt.Errorf("dsms: server error: %s", msg))
	}
	if tag != wire.TagInstall {
		return fail(fmt.Errorf("dsms: unexpected handshake reply %v", tag))
	}
	inst, err := wire.DecodeInstall(p)
	if err != nil {
		return fail(fmt.Errorf("dsms: handshake: %w", err))
	}
	return conn, w, r, inst, feats, nil
}

// DialSourceOptions is DialSource with an explicit ack window.
func DialSourceOptions(addr, sourceID string, catalog *Catalog, opts DialOptions) (*RemoteAgent, error) {
	window := opts.Window
	if window <= 0 {
		window = DefaultWindow
	}
	conn, w, r, inst, feats, err := dialHandshake(addr, sourceID, window, opts)
	if err != nil {
		return nil, err
	}
	m, err := catalog.Resolve(inst.Model)
	if err != nil {
		conn.Close()
		return nil, err
	}
	ra := &RemoteAgent{
		conn:       conn,
		window:     window,
		addr:       addr,
		sourceID:   sourceID,
		catalog:    catalog,
		opts:       opts,
		w:          w,
		lastAcked:  -1,
		readerDone: make(chan struct{}),
	}
	ra.cond = sync.NewCond(&ra.mu)
	ra.cfg = core.Config{SourceID: sourceID, Model: m, Delta: inst.Delta, F: inst.F}
	agent, err := NewAgent(ra.cfg, core.TransportFunc(ra.sendUpdate))
	if err != nil {
		conn.Close()
		return nil, err
	}
	if opts.Telemetry != nil {
		ra.ins = NewAgentInstruments(opts.Telemetry, sourceID)
		agent.Instrument(ra.ins)
	}
	if opts.Trace {
		ra.tracer = trace.New(trace.Options{RingSize: opts.TraceRing, Sample: opts.TraceSample})
		agent.SetTrace(ra.tracer)
		ra.wireTrace = feats&wire.FeatTrace != 0
		ra.wireHop = ra.wireTrace && feats&wire.FeatHopTrace != 0
	}
	ra.agent = agent
	go ra.readLoop(r)
	return ra, nil
}

// recvErr dresses a receive failure for the caller, keeping the
// clean-close/truncation distinction inspectable with errors.Is.
func recvErr(err error) error {
	if errors.Is(err, core.ErrPeerClosed) {
		return fmt.Errorf("dsms: server closed connection: %w", err)
	}
	return fmt.Errorf("dsms: receive: %w", err)
}

// readLoop consumes ack and error frames until the connection dies. It
// also implements the flush half of the self-clocking write coalescing:
// whenever acks free window space, any frames buffered since the last
// write-out are flushed, so burst batch size adapts to the ack rate the
// way TCP's self-clocking does.
func (r *RemoteAgent) readLoop(rd *wire.Reader) {
	defer close(r.readerDone)
	for {
		tag, p, err := rd.Next()
		if err != nil {
			r.fail(recvErr(err))
			return
		}
		switch tag {
		case wire.TagAck:
			seq, err := wire.DecodeAck(p)
			if err != nil {
				r.fail(fmt.Errorf("dsms: %w", err))
				return
			}
			r.mu.Lock()
			if seq > r.lastAcked {
				r.lastAcked = seq
			}
			n := 0
			for n < len(r.outstanding) && r.outstanding[n] <= seq {
				n++
			}
			if n > 0 {
				if r.ins != nil {
					now := nowNanos()
					for i := 0; i < n; i++ {
						r.ins.observeAckRTT(now - r.sendTimes[i])
					}
					r.sendTimes = r.sendTimes[:copy(r.sendTimes, r.sendTimes[n:])]
				}
				r.outstanding = r.outstanding[:copy(r.outstanding, r.outstanding[n:])]
				r.pending = r.pending[:copy(r.pending, r.pending[n:])]
				r.ins.setWindow(len(r.outstanding))
			}
			if r.err == nil && r.w.Buffered() > 0 {
				if err := r.w.Flush(); err != nil {
					r.err = fmt.Errorf("dsms: send: %w", err)
				}
			}
			r.cond.Broadcast()
			r.mu.Unlock()
		case wire.TagError:
			msg, _ := wire.DecodeError(p)
			r.fail(fmt.Errorf("dsms: server error: %s", msg))
			return
		default:
			r.fail(fmt.Errorf("dsms: unexpected %v frame from server", tag))
			return
		}
	}
}

// fail records the first transport error and wakes all waiters. A read
// failure after Close is the expected teardown, not an error.
func (r *RemoteAgent) fail(err error) {
	r.mu.Lock()
	if r.err == nil && !r.closing {
		r.err = err
	}
	r.cond.Broadcast()
	r.mu.Unlock()
}

// sendUpdate implements core.Transport: buffer the frame, enforce the
// window, and flush only when no ack is in flight to trigger the flush
// from readLoop (pipelined sends coalesce into bursts).
func (r *RemoteAgent) sendUpdate(u core.Update) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.err == nil && !r.closing && len(r.outstanding) >= r.window {
		// Everything buffered must be on the wire before blocking, or
		// the acks we are waiting for can never be generated.
		if r.w.Buffered() > 0 {
			if err := r.w.Flush(); err != nil {
				r.err = fmt.Errorf("dsms: send: %w", err)
				break
			}
		}
		r.cond.Wait()
	}
	if r.closing {
		return errAgentClosed
	}
	if r.err != nil {
		// The connection is broken, but the mirror filter has already
		// folded this update in (core.SourceNode.Process mutates before
		// transmitting). Dropping it would silently desynchronize KFs
		// from KFm, so retain it for Reconnect to resend; the caller
		// sees the sticky error and decides when to redial.
		r.pending = append(r.pending, u)
		return r.err
	}
	if r.wireTrace {
		// Ship the decision evidence ahead of its update so the server
		// can attach it to the apply. LastDecision is the node's verdict
		// on the reading that produced this very send, so the sequence
		// numbers agree; a resent update (whose decision is long gone)
		// simply travels untraced.
		if d := r.agent.LastDecision(); d.Seq == int64(u.Seq) {
			var terr error
			if r.wireHop {
				// Stamp the decision with this node's trace clock; the
				// 73-byte form carries it to hop-capable peers.
				d.At = trace.Now()
				terr = r.w.TraceAt(&d)
			} else {
				terr = r.w.Trace(&d)
			}
			if terr != nil {
				r.err = fmt.Errorf("dsms: send: %w", terr)
				r.pending = append(r.pending, u)
				return r.err
			}
		}
	}
	if err := r.w.Update(&u); err != nil {
		r.err = fmt.Errorf("dsms: send: %w", err)
		r.pending = append(r.pending, u)
		return r.err
	}
	if r.tracer != nil {
		d := r.agent.LastDecision()
		r.tracer.Record(&trace.Event{TraceID: d.TraceID, Seq: int64(u.Seq), Kind: trace.KindWireTx, Aux: int64(u.WireBytes())})
	}
	r.outstanding = append(r.outstanding, int64(u.Seq))
	r.pending = append(r.pending, u)
	if r.ins != nil {
		r.sendTimes = append(r.sendTimes, nowNanos())
		r.ins.setWindow(len(r.outstanding))
	}
	if len(r.outstanding) == 1 {
		// No ack is due, so nothing will trigger a flush from the read
		// side: write out now. While acks are in flight, readLoop
		// flushes on their arrival instead, coalescing this frame with
		// its successors.
		if err := r.w.Flush(); err != nil {
			r.err = fmt.Errorf("dsms: send: %w", err)
			return r.err
		}
	}
	return nil
}

// Err returns the sticky transport error, if any — the asynchronous
// delivery point for server-side failures of pipelined updates.
func (r *RemoteAgent) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Offer processes one reading through the DKF source node, transmitting
// if required. It returns whether an update was shipped. An error
// reported asynchronously for an earlier pipelined update fails the
// next Offer.
func (r *RemoteAgent) Offer(reading stream.Reading) (bool, error) {
	if err := r.Err(); err != nil {
		return false, err
	}
	return r.agent.Offer(reading)
}

// Run drives an entire source stream, then drains the pipeline so the
// server has folded every update before Run returns.
func (r *RemoteAgent) Run(src stream.Source) error {
	if err := r.agent.Run(src); err != nil {
		return err
	}
	return r.Drain()
}

// Drain flushes buffered frames and blocks until the server has
// acknowledged every in-flight update, returning the sticky error if
// the pipeline broke.
func (r *RemoteAgent) Drain() error {
	if r.ins != nil {
		start := nowNanos()
		defer func() { r.ins.observeDrain(nowNanos() - start) }()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err == nil && r.w.Buffered() > 0 {
		if err := r.w.Flush(); err != nil {
			r.err = fmt.Errorf("dsms: send: %w", err)
		}
	}
	for r.err == nil && !r.closing && len(r.outstanding) > 0 {
		r.cond.Wait()
	}
	if r.err == nil && r.closing && len(r.outstanding) > 0 {
		return errAgentClosed
	}
	return r.err
}

// Stats exposes the source node counters.
func (r *RemoteAgent) Stats() core.SourceStats { return r.agent.Stats() }

// Tracer returns the agent's local flight recorder, or nil when the
// agent was dialed without Trace.
func (r *RemoteAgent) Tracer() *trace.Recorder { return r.tracer }

// TraceNegotiated reports whether the server advertised the trace
// feature, i.e. whether decision frames precede this agent's updates
// on the wire.
func (r *RemoteAgent) TraceNegotiated() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.wireTrace
}

// Reconnect re-establishes the server connection after a transport
// failure and resends every update the (possibly crash-recovered)
// server may not have durably applied. The install reply's ResumeSeq —
// the sequence the server's recovered filter has reached — decides
// what to resend: pending updates at or below it were recovered and
// are dropped, the rest are retransmitted in order. Mirror synchrony
// survives because the resent suffix is exactly the suffix the server
// missed. Reconnect fails if the server's recovered state predates an
// update it already acknowledged (state loss a resend cannot repair)
// or if the reinstalled procedure no longer matches the one this
// agent mirrors; the sticky error is cleared only on success.
func (r *RemoteAgent) Reconnect() error {
	r.mu.Lock()
	if r.closing {
		r.mu.Unlock()
		return errAgentClosed
	}
	oldConn := r.conn
	r.mu.Unlock()

	// Tear down the old connection and wait out its reader so the old
	// readLoop cannot race the swap below.
	oldConn.Close()
	<-r.readerDone

	conn, w, rd, inst, feats, err := dialHandshake(r.addr, r.sourceID, r.window, r.opts)
	if err != nil {
		return err
	}
	if inst.Model != r.cfg.Model.Name || inst.Delta != r.cfg.Delta || inst.F != r.cfg.F {
		conn.Close()
		return fmt.Errorf("dsms: reconnect: server procedure changed (model %s delta=%v F=%v; agent mirrors model %s delta=%v F=%v)",
			inst.Model, inst.Delta, inst.F, r.cfg.Model.Name, r.cfg.Delta, r.cfg.F)
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closing {
		conn.Close()
		return errAgentClosed
	}
	if inst.ResumeSeq < r.lastAcked {
		conn.Close()
		return fmt.Errorf("dsms: reconnect: server recovered to seq %d, behind acknowledged seq %d — durable state lost", inst.ResumeSeq, r.lastAcked)
	}
	// Drop the pending prefix the recovered server already holds.
	n := 0
	for n < len(r.pending) && int64(r.pending[n].Seq) <= inst.ResumeSeq {
		n++
	}
	r.pending = r.pending[:copy(r.pending, r.pending[n:])]
	r.conn = conn
	r.w = w
	r.err = nil
	// The replacement server may or may not speak trace frames;
	// renegotiate rather than assume (resent updates below carry no
	// fresh decisions, so they are untraced either way).
	r.wireTrace = r.opts.Trace && feats&wire.FeatTrace != 0
	r.wireHop = r.wireTrace && feats&wire.FeatHopTrace != 0
	r.outstanding = r.outstanding[:0]
	r.sendTimes = r.sendTimes[:0]
	r.readerDone = make(chan struct{})
	// Retransmit the suffix the server missed before starting the new
	// reader, so resent frames precede anything a concurrent Offer
	// ships on the fresh connection.
	for i := range r.pending {
		u := &r.pending[i]
		if err := r.w.Update(u); err != nil {
			r.err = fmt.Errorf("dsms: send: %w", err)
			break
		}
		r.outstanding = append(r.outstanding, int64(u.Seq))
		if r.ins != nil {
			r.sendTimes = append(r.sendTimes, nowNanos())
		}
	}
	if r.err == nil && r.w.Buffered() > 0 {
		if err := r.w.Flush(); err != nil {
			r.err = fmt.Errorf("dsms: send: %w", err)
		}
	}
	r.ins.setWindow(len(r.outstanding))
	go r.readLoop(rd)
	r.cond.Broadcast()
	return r.err
}

// Close tears down the connection after a best-effort flush and waits
// for the reader to exit. Use Drain first when every update must be
// confirmed delivered.
func (r *RemoteAgent) Close() error {
	r.mu.Lock()
	r.closing = true
	if r.err == nil && r.w.Buffered() > 0 {
		r.w.Flush()
	}
	r.cond.Broadcast()
	r.mu.Unlock()
	err := r.conn.Close()
	<-r.readerDone
	return err
}

// QueryClient asks a TCPServer for current query answers over the
// binary protocol, one synchronous request/response at a time.
type QueryClient struct {
	conn net.Conn
	mu   sync.Mutex
	w    *wire.Writer
	r    *wire.Reader
}

// DialQuery connects a query client to the server at addr and validates
// the protocol preamble.
func DialQuery(addr string) (*QueryClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dsms: dial: %w", err)
	}
	q := &QueryClient{conn: conn, w: wire.NewWriter(conn, 0, 0), r: wire.NewReader(conn, 0, 0)}
	if err := q.w.WritePreamble(wire.Version); err != nil {
		conn.Close()
		return nil, fmt.Errorf("dsms: send: %w", err)
	}
	if err := q.w.Flush(); err != nil {
		conn.Close()
		return nil, fmt.Errorf("dsms: send: %w", err)
	}
	ver, err := q.r.ReadPreamble()
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("dsms: handshake: %w", err)
	}
	if err := wire.CheckVersion(ver); err != nil {
		conn.Close()
		return nil, fmt.Errorf("dsms: handshake: %w", err)
	}
	return q, nil
}

// Ask evaluates queryID at reading index seq.
func (q *QueryClient) Ask(queryID string, seq int) ([]float64, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if err := q.w.Query(queryID, int64(seq)); err != nil {
		return nil, fmt.Errorf("dsms: send: %w", err)
	}
	if err := q.w.Flush(); err != nil {
		return nil, fmt.Errorf("dsms: send: %w", err)
	}
	tag, p, err := q.r.Next()
	if err != nil {
		return nil, recvErr(err)
	}
	switch tag {
	case wire.TagAnswer:
		_, vals, err := wire.DecodeAnswer(p)
		if err != nil {
			return nil, fmt.Errorf("dsms: %w", err)
		}
		return vals, nil
	case wire.TagError:
		msg, _ := wire.DecodeError(p)
		return nil, fmt.Errorf("dsms: server error: %s", msg)
	default:
		return nil, fmt.Errorf("dsms: expected answer, got %v", tag)
	}
}

// Close tears down the connection.
func (q *QueryClient) Close() error { return q.conn.Close() }
