package dsms

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"encoding/gob"

	"streamkf/internal/core"
	"streamkf/internal/stream"
)

// The wire protocol is a stream of gob-encoded envelopes per connection.
// A source connection performs hello → install, then ships update
// messages, each acknowledged. A query client sends query messages and
// receives answers. Any server-side failure is reported as an errmsg
// envelope and closes nothing — the client decides.
const (
	msgHello   = "hello"
	msgInstall = "install"
	msgUpdate  = "update"
	msgAck     = "ack"
	msgQuery   = "query"
	msgAnswer  = "answer"
	msgError   = "error"
)

// envelope is the single on-wire message shape. Only the fields relevant
// to Type are populated.
type envelope struct {
	Type      string
	SourceID  string
	ModelName string
	Delta     float64
	F         float64
	Update    *core.Update
	QueryID   string
	Seq       int
	Values    []float64
	Err       string
}

// TCPServer exposes a Server over gob/TCP.
type TCPServer struct {
	server  *Server
	ln      net.Listener
	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	closed  bool
	serveWG sync.WaitGroup
}

// NewTCPServer wraps server with a listener on addr (e.g.
// "127.0.0.1:0"). Call Serve to start accepting and Close to stop.
func NewTCPServer(server *Server, addr string) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dsms: listen: %w", err)
	}
	return &TCPServer{server: server, ln: ln, conns: make(map[net.Conn]struct{})}, nil
}

// Addr returns the bound listener address.
func (t *TCPServer) Addr() string { return t.ln.Addr().String() }

// Serve accepts and handles connections until Close is called. It
// returns nil on graceful shutdown.
func (t *TCPServer) Serve() error {
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			t.mu.Lock()
			closed := t.closed
			t.mu.Unlock()
			if closed {
				t.serveWG.Wait()
				return nil
			}
			return fmt.Errorf("dsms: accept: %w", err)
		}
		t.mu.Lock()
		t.conns[conn] = struct{}{}
		t.mu.Unlock()
		t.serveWG.Add(1)
		go func() {
			defer t.serveWG.Done()
			t.handle(conn)
		}()
	}
}

// Close stops the listener and closes every open connection.
func (t *TCPServer) Close() error {
	t.mu.Lock()
	t.closed = true
	for c := range t.conns {
		c.Close()
	}
	t.mu.Unlock()
	return t.ln.Close()
}

func (t *TCPServer) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.conns, conn)
		t.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var in envelope
		if err := dec.Decode(&in); err != nil {
			return // EOF or broken connection: drop it
		}
		var out envelope
		switch in.Type {
		case msgHello:
			cfg, err := t.server.InstallFor(in.SourceID)
			if err != nil {
				out = envelope{Type: msgError, Err: err.Error()}
			} else {
				out = envelope{Type: msgInstall, SourceID: cfg.SourceID, ModelName: cfg.Model.Name, Delta: cfg.Delta, F: cfg.F}
			}
		case msgUpdate:
			if in.Update == nil {
				out = envelope{Type: msgError, Err: "dsms: update envelope without payload"}
				break
			}
			if err := t.server.HandleUpdate(*in.Update); err != nil {
				out = envelope{Type: msgError, Err: err.Error()}
			} else {
				out = envelope{Type: msgAck, Seq: in.Update.Seq}
			}
		case msgQuery:
			vals, err := t.server.Answer(in.QueryID, in.Seq)
			if err != nil {
				// The id may name an aggregate or windowed query instead.
				if v, aggErr := t.server.AnswerAggregate(in.QueryID, in.Seq); aggErr == nil {
					out = envelope{Type: msgAnswer, QueryID: in.QueryID, Values: []float64{v}}
					break
				}
				if v, winErr := t.server.AnswerWindow(in.QueryID, in.Seq); winErr == nil {
					out = envelope{Type: msgAnswer, QueryID: in.QueryID, Values: []float64{v}}
					break
				}
				out = envelope{Type: msgError, Err: err.Error()}
			} else {
				out = envelope{Type: msgAnswer, QueryID: in.QueryID, Values: vals}
			}
		default:
			out = envelope{Type: msgError, Err: fmt.Sprintf("dsms: unknown message type %q", in.Type)}
		}
		if err := enc.Encode(out); err != nil {
			return
		}
	}
}

// RemoteAgent is a source agent connected to a TCPServer. It performs
// the install handshake on dial and ships updates synchronously,
// requiring an ack per update.
type RemoteAgent struct {
	agent *Agent
	conn  net.Conn
	mu    sync.Mutex
	enc   *gob.Encoder
	dec   *gob.Decoder
}

// DialSource connects sourceID to the server at addr, resolving the
// installed model from catalog — the agent and server must share
// catalog contents by name.
func DialSource(addr, sourceID string, catalog *Catalog) (*RemoteAgent, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dsms: dial: %w", err)
	}
	ra := &RemoteAgent{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
	resp, err := ra.roundTrip(envelope{Type: msgHello, SourceID: sourceID})
	if err != nil {
		conn.Close()
		return nil, err
	}
	if resp.Type != msgInstall {
		conn.Close()
		return nil, fmt.Errorf("dsms: unexpected handshake reply %q", resp.Type)
	}
	m, err := catalog.Resolve(resp.ModelName)
	if err != nil {
		conn.Close()
		return nil, err
	}
	cfg := core.Config{SourceID: sourceID, Model: m, Delta: resp.Delta, F: resp.F}
	agent, err := NewAgent(cfg, core.TransportFunc(ra.sendUpdate))
	if err != nil {
		conn.Close()
		return nil, err
	}
	ra.agent = agent
	return ra, nil
}

func (r *RemoteAgent) roundTrip(out envelope) (envelope, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.enc.Encode(out); err != nil {
		return envelope{}, fmt.Errorf("dsms: send: %w", err)
	}
	var in envelope
	if err := r.dec.Decode(&in); err != nil {
		if errors.Is(err, io.EOF) {
			return envelope{}, errors.New("dsms: server closed connection")
		}
		return envelope{}, fmt.Errorf("dsms: receive: %w", err)
	}
	if in.Type == msgError {
		return envelope{}, fmt.Errorf("dsms: server error: %s", in.Err)
	}
	return in, nil
}

func (r *RemoteAgent) sendUpdate(u core.Update) error {
	resp, err := r.roundTrip(envelope{Type: msgUpdate, Update: &u})
	if err != nil {
		return err
	}
	if resp.Type != msgAck {
		return fmt.Errorf("dsms: expected ack, got %q", resp.Type)
	}
	return nil
}

// Offer processes one reading through the DKF source node, transmitting
// if required. It returns whether an update was sent.
func (r *RemoteAgent) Offer(reading stream.Reading) (bool, error) {
	return r.agent.Offer(reading)
}

// Run drives an entire source stream.
func (r *RemoteAgent) Run(src stream.Source) error { return r.agent.Run(src) }

// Stats exposes the source node counters.
func (r *RemoteAgent) Stats() core.SourceStats { return r.agent.Stats() }

// Close tears down the connection.
func (r *RemoteAgent) Close() error { return r.conn.Close() }

// QueryClient asks a TCPServer for current query answers.
type QueryClient struct {
	conn net.Conn
	mu   sync.Mutex
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// DialQuery connects a query client to the server at addr.
func DialQuery(addr string) (*QueryClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dsms: dial: %w", err)
	}
	return &QueryClient{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}, nil
}

// Ask evaluates queryID at reading index seq.
func (q *QueryClient) Ask(queryID string, seq int) ([]float64, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if err := q.enc.Encode(envelope{Type: msgQuery, QueryID: queryID, Seq: seq}); err != nil {
		return nil, fmt.Errorf("dsms: send: %w", err)
	}
	var in envelope
	if err := q.dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("dsms: receive: %w", err)
	}
	if in.Type == msgError {
		return nil, fmt.Errorf("dsms: server error: %s", in.Err)
	}
	if in.Type != msgAnswer {
		return nil, fmt.Errorf("dsms: expected answer, got %q", in.Type)
	}
	return in.Values, nil
}

// Close tears down the connection.
func (q *QueryClient) Close() error { return q.conn.Close() }
