package dsms

import (
	"fmt"
	"sync"
	"testing"

	"streamkf/internal/stream"
	"streamkf/internal/trace"
)

// benchReading builds a reading whose value jumps by 1 each step, so a
// "constant" model with a tiny δ transmits every reading — the benchmark
// measures pure wire cost per update, not suppression.
func benchReading(seq int, base float64) stream.Reading {
	return stream.Reading{Seq: seq, Time: float64(seq), Values: []float64{base + float64(seq)}}
}

// benchTCPIngestSingle is the single-agent loopback ingest benchmark
// body: one update encoded, shipped, decoded, and folded into the
// server filter per iteration. Telemetry is fully enabled on both sides
// — the alloc budget is the instrumented cost. Shared between
// BenchmarkTCPIngest and the TestTCPIngestAllocBudget regression gate.
func benchTCPIngestSingle(b *testing.B) {
	catalog := testCatalog()
	s := NewServer(catalog)
	if err := s.Register(stream.Query{ID: "q-bench", SourceID: "bench", Delta: 1e-6, Model: "constant"}); err != nil {
		b.Fatal(err)
	}
	ts, err := NewTCPServer(s, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go ts.Serve()
	defer ts.Close()
	agent, err := DialSourceOptions(ts.Addr(), "bench", catalog, DialOptions{Telemetry: s.Telemetry()})
	if err != nil {
		b.Fatal(err)
	}
	defer agent.Close()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sent, err := agent.Offer(benchReading(i, 0))
		if err != nil {
			b.Fatal(err)
		}
		if !sent {
			b.Fatal("reading unexpectedly suppressed")
		}
	}
	if err := agent.Drain(); err != nil {
		b.Fatal(err)
	}
}

// benchTCPIngestTraced is benchTCPIngestSingle with end-to-end tracing
// on: server flight recorders, the negotiated trace frame ahead of
// every update, and the agent-local recorder. The budget pinned in
// BENCH_TCP.json proves tracing rides the ingest path without
// allocating.
func benchTCPIngestTraced(b *testing.B) {
	catalog := testCatalog()
	s := NewServer(catalog)
	s.EnableTracing(trace.Options{})
	if err := s.Register(stream.Query{ID: "q-bench", SourceID: "bench", Delta: 1e-6, Model: "constant"}); err != nil {
		b.Fatal(err)
	}
	ts, err := NewTCPServer(s, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go ts.Serve()
	defer ts.Close()
	agent, err := DialSourceOptions(ts.Addr(), "bench", catalog, DialOptions{Telemetry: s.Telemetry(), Trace: true})
	if err != nil {
		b.Fatal(err)
	}
	defer agent.Close()
	if !agent.wireTrace {
		b.Fatal("trace feature not negotiated")
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sent, err := agent.Offer(benchReading(i, 0))
		if err != nil {
			b.Fatal(err)
		}
		if !sent {
			b.Fatal("reading unexpectedly suppressed")
		}
	}
	if err := agent.Drain(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTCPIngest measures the loopback source→server update path.
func BenchmarkTCPIngest(b *testing.B) {
	b.Run("single", benchTCPIngestSingle)
	b.Run("traced", benchTCPIngestTraced)

	for _, workers := range []int{4} {
		b.Run(fmt.Sprintf("parallel/%d", workers), func(b *testing.B) {
			catalog := testCatalog()
			s := NewServer(catalog)
			for w := 0; w < workers; w++ {
				id := fmt.Sprintf("bench-%d", w)
				if err := s.Register(stream.Query{ID: "q-" + id, SourceID: id, Delta: 1e-6, Model: "constant"}); err != nil {
					b.Fatal(err)
				}
			}
			ts, err := NewTCPServer(s, "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			go ts.Serve()
			defer ts.Close()
			agents := make([]*RemoteAgent, workers)
			for w := 0; w < workers; w++ {
				a, err := DialSource(ts.Addr(), fmt.Sprintf("bench-%d", w), catalog)
				if err != nil {
					b.Fatal(err)
				}
				agents[w] = a
				defer a.Close()
			}

			per := b.N / workers
			if per == 0 {
				per = 1
			}
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			errs := make(chan error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					a := agents[w]
					for i := 0; i < per; i++ {
						if _, err := a.Offer(benchReading(i, float64(w)*1e6)); err != nil {
							errs <- err
							return
						}
					}
					errs <- a.Drain()
				}(w)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
