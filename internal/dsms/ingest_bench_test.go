package dsms

import (
	"fmt"
	"net"
	"net/netip"
	"runtime"
	"testing"
	"time"

	"streamkf/internal/core"
	"streamkf/internal/dsms/wire"
	"streamkf/internal/stream"
)

// benchUDPIngestApply is the steady-state shard apply benchmark body:
// one datagram encoded into a reused buffer, parsed, handed to the
// ring, and folded into the server filter per iteration. Shared between
// BenchmarkUDPIngest and the TestUDPIngestAllocBudget regression gate —
// the allocs/op it reports is the whole engine path, rx through apply.
func benchUDPIngestApply(b *testing.B) {
	catalog := testCatalog()
	s := NewServer(catalog)
	if err := s.Register(stream.Query{ID: "q-bench", SourceID: "bench", Delta: 1e-6, Model: "constant"}); err != nil {
		b.Fatal(err)
	}
	ts, err := NewUDPServer(s, "127.0.0.1:0", UDPServerOptions{
		Engine: EngineOptions{Shards: 1, RingSize: 4096},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer ts.Close()
	eng := s.Engine()
	defer eng.Close()

	u := core.Update{SourceID: "bench", Values: []float64{0}}
	var dg []byte
	encode := func(seq int) {
		u.Seq = seq
		u.Time = float64(seq)
		u.Values[0] = float64(seq)
		u.Bootstrap = seq == 0
		dg = wire.AppendPreamble(dg[:0], wire.Version, 0)
		if dg, err = wire.AppendUpdateFrame(dg, &u); err != nil {
			b.Fatal(err)
		}
	}
	encode(0)
	ts.processDatagram(dg, netip.AddrPort{})
	eng.Quiesce()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		encode(i + 1)
		ts.processDatagram(dg, netip.AddrPort{})
		if i&1023 == 1023 {
			// Keep the producer loop from outrunning the shard worker
			// into ring shed — the bench measures apply, not overload.
			eng.Quiesce()
		}
	}
	eng.Quiesce()
	b.StopTimer()
	if st := eng.Stats()[0]; st.Dropped != 0 {
		b.Fatalf("ring shed %d updates during the bench", st.Dropped)
	}
}

// BenchmarkUDPIngest measures the datagram rx → shard apply path.
func BenchmarkUDPIngest(b *testing.B) {
	b.Run("apply", benchUDPIngestApply)
}

// benchIngestFanIn is the aggregate-ingest benchmark body, IDENTICAL
// for both transports (the before/after comparison in BENCH_INGEST.json
// requires it): b.N pre-encoded updates from `sources` simulated
// sources — plain seq counters, no mirror filters, the dkf-bench -fanin
// workload — round-robined through the transport-specific send, then
// drained and checked ≥99% applied. Only the setup closure differs:
//
//   - tcp: one connection, one server handler goroutine, one write
//     syscall and one coalesced-but-per-sweep ack per update — the
//     per-connection model whose per-source cost the engine removes;
//   - udp: every source multiplexed over one batching datagram socket
//     feeding the shard engine, so syscalls amortize across ~28 updates.
//
// Before the timer starts, every source is driven past its noise
// estimator's whiteness window (bootstrap + warmSeqs updates): the
// first core.healthWindow (16) innovations per source clone into cold
// ring slots, a one-time warmup cost that would otherwise smear
// allocations and GC time over the steady state the before/after
// comparison records.
func benchIngestFanIn(b *testing.B, sources int, setup func(b *testing.B, s *Server, ids []string) (send func(src int, u *core.Update) error, pace func(sent int), drain func(want int))) {
	const warmSeqs = 16 + 8
	catalog := testCatalog()
	s := NewServer(catalog)
	ids := make([]string, sources)
	for i := range ids {
		ids[i] = fmt.Sprintf("src-%05d", i)
		if err := s.Register(stream.Query{ID: "q-" + ids[i], SourceID: ids[i], Delta: 1e-6, Model: "constant"}); err != nil {
			b.Fatal(err)
		}
	}
	send, pace, drain := setup(b, s, ids)

	u := core.Update{Values: make([]float64, 1)}
	emit := func(i int) {
		src := i % sources
		seq := i / sources
		u.SourceID = ids[src]
		u.Seq = seq
		u.Time = float64(seq)
		u.Values[0] = float64(src) + float64(seq)
		u.Bootstrap = seq == 0
		if err := send(src, &u); err != nil {
			b.Fatal(err)
		}
		if i&2047 == 2047 {
			// Flow control, amortized to nothing: a real source is
			// paced by its reading stream, but this loop can outrun the
			// server on a single CPU. TCP self-clocks (a blocked write
			// forces the handler to drain), so its pace is a no-op; the
			// fire-and-forget datagram path bounds in-flight updates so
			// the kernel socket buffer never overflows into loss.
			pace(i + 1)
		}
	}
	warm := warmSeqs * sources
	for i := 0; i < warm; i++ {
		emit(i)
	}
	drain(warm)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		emit(warm + i)
	}
	drain(warm + b.N)
	b.StopTimer()

	applied := 0
	for _, st := range s.Stats() {
		applied += st.Updates
	}
	if total := warm + b.N; applied < total*99/100 {
		b.Fatalf("only %d/%d updates applied (<99%%)", applied, total)
	}
}

// tcpSimSource is one simulated source on the per-connection transport:
// a raw handshaken connection whose acks a background goroutine drains,
// leaving exactly the per-update costs in the measured loop.
type tcpSimSource struct {
	conn net.Conn
	w    *wire.Writer
}

func dialSimTCP(b *testing.B, addr, id string) *tcpSimSource {
	b.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { conn.Close() })
	w := wire.NewWriter(conn, 256, 0)
	r := wire.NewReader(conn, 0, 0)
	if err := w.WritePreamble(wire.Version); err != nil {
		b.Fatal(err)
	}
	if err := w.Hello(id); err != nil {
		b.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	if _, _, err := r.ReadPreambleFeatures(); err != nil {
		b.Fatal(err)
	}
	tag, _, err := r.Next()
	if err != nil || tag != wire.TagInstall {
		b.Fatalf("handshake reply %v, %v", tag, err)
	}
	go func() {
		for {
			if _, _, err := r.Next(); err != nil {
				return
			}
		}
	}()
	return &tcpSimSource{conn: conn, w: w}
}

func setupFanInTCP(b *testing.B, s *Server, ids []string) (func(int, *core.Update) error, func(int), func(int)) {
	ts, err := NewTCPServer(s, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go ts.Serve()
	b.Cleanup(func() { ts.Close() })
	srcs := make([]*tcpSimSource, len(ids))
	for i, id := range ids {
		srcs[i] = dialSimTCP(b, ts.Addr(), id)
	}
	send := func(src int, u *core.Update) error {
		c := srcs[src]
		if err := c.w.Update(u); err != nil {
			return err
		}
		// Flush per update: the suppression protocol transmits the
		// moment δ is violated, so the per-connection model pays one
		// write syscall per update (exactly what RemoteAgent does on an
		// idle pipe).
		return c.w.Flush()
	}
	// TCP applies synchronously in the handler; when every byte has
	// been read the stats are final. The reads race the producer only
	// through the kernel socket buffers, drained by waitApplied. A
	// reliable byte stream cannot lose updates, so pace only yields.
	pace := func(int) { runtime.Gosched() }
	return send, pace, func(want int) { waitApplied(b, s, want) }
}

func setupFanInUDP(b *testing.B, s *Server, ids []string) (func(int, *core.Update) error, func(int), func(int)) {
	return setupFanInUDPOpts(b, s, UDPServerOptions{Engine: EngineOptions{RingSize: 8192}}, UDPBatcherOptions{})
}

// setupFanInUDPGram is the one-update-per-datagram wire shape — what a
// fleet of per-source UDPAgents produces, where the server-side receive
// syscall cannot be amortized by sender-side packing. batched=false
// pins every batch knob to 1 (single reader, one datagram per receive
// syscall, one write per datagram: the pre-lane transport layout, kept
// runnable so the BENCH_INGEST.json before/after stays reproducible);
// batched=true uses the recvmmsg/sendmmsg defaults.
func setupFanInUDPGram(batched bool) func(b *testing.B, s *Server, ids []string) (func(int, *core.Update) error, func(int), func(int)) {
	return func(b *testing.B, s *Server, ids []string) (func(int, *core.Update) error, func(int), func(int)) {
		sopts := UDPServerOptions{Engine: EngineOptions{RingSize: 32768}}
		bopts := UDPBatcherOptions{FlushBytes: 1}
		if !batched {
			sopts.Lanes, sopts.RxBatch = 1, 1
			bopts.SendBatch = 1
		}
		return setupFanInUDPOpts(b, s, sopts, bopts)
	}
}

func setupFanInUDPOpts(b *testing.B, s *Server, sopts UDPServerOptions, bopts UDPBatcherOptions) (func(int, *core.Update) error, func(int), func(int)) {
	us, err := NewUDPServer(s, "127.0.0.1:0", sopts)
	if err != nil {
		b.Fatal(err)
	}
	go us.Serve()
	b.Cleanup(func() {
		us.Close()
		s.Engine().Close()
	})
	batcher, err := DialUDPBatcherOpts(us.Addr().String(), bopts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { batcher.Close() })
	send := func(src int, u *core.Update) error {
		return batcher.Send(*u)
	}
	// Datagrams are fire-and-forget: nothing back-pressures the producer
	// before the kernel receive buffer or the shard ring, and an
	// overflow of either is silent loss. pace bounds in-flight updates
	// against the engine's APPLIED count, which caps the occupancy of
	// every queue on the path at one window (~2048 updates ≈ 73
	// datagrams ≈ 88 KB on the wire) no matter how slow the shard
	// worker runs relative to the socket reader.
	pace := func(sent int) {
		// Sleep rather than Gosched-spin: on one CPU a yield loop burns
		// the scheduler lock while the reader and shard worker are trying
		// to use it; a sleep hands them the core outright.
		eng := s.Engine()
		for eng.Applied()+2048 < uint64(sent) {
			time.Sleep(50 * time.Microsecond)
		}
	}
	return send, pace, func(want int) {
		if err := batcher.Flush(); err != nil {
			b.Fatal(err)
		}
		waitApplied(b, s, want)
	}
}

// waitApplied polls until the server has applied want updates (allowing
// the fan-in ≥99% shed tolerance) or a generous deadline passes — the
// drain barrier for transports without a synchronous ack to wait on.
// With an engine attached the poll reads its alloc-free counters; the
// per-source Stats snapshot (which walks every whiteness window) is too
// heavy for a loop that runs inside the timed region.
func waitApplied(b *testing.B, s *Server, want int) {
	b.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		applied := 0
		if e := s.Engine(); e != nil {
			e.Quiesce()
			applied = int(e.Applied())
		} else {
			for _, st := range s.Stats() {
				applied += st.Updates
			}
		}
		if applied >= want*99/100 {
			return
		}
		if time.Now().After(deadline) {
			min, minID := 1<<30, ""
			for _, st := range s.Stats() {
				if st.Updates < min {
					min, minID = st.Updates, st.SourceID
				}
			}
			b.Fatalf("applied %d/%d updates; ingest stalled (min source %s=%d)", applied, want, minID, min)
		}
		// Sleep, don't spin: on one CPU sleeping is what lets the
		// server's reader and shard worker run.
		time.Sleep(200 * time.Microsecond)
	}
}

// BenchmarkIngestFanIn compares aggregate multi-source ingest
// throughput: the per-connection TCP model versus the connectionless
// batched-datagram model over the shard engine. ns/op is per applied
// update across all sources.
func BenchmarkIngestFanIn(b *testing.B) {
	for _, sources := range []int{256, 4096, 8192} {
		b.Run(fmt.Sprintf("tcp/%d", sources), func(b *testing.B) {
			benchIngestFanIn(b, sources, setupFanInTCP)
		})
		b.Run(fmt.Sprintf("udp/%d", sources), func(b *testing.B) {
			benchIngestFanIn(b, sources, setupFanInUDP)
		})
	}
	// The per-source-agent wire shape, where sender-side packing cannot
	// amortize the server's receive syscalls — the case the reader lanes'
	// recvmmsg batching exists for. udpgram-unbatched reproduces the
	// pre-lane single-reader syscall pattern as the "before" side.
	for _, sources := range []int{256, 4096} {
		b.Run(fmt.Sprintf("udpgram/%d", sources), func(b *testing.B) {
			benchIngestFanIn(b, sources, setupFanInUDPGram(true))
		})
		b.Run(fmt.Sprintf("udpgram-unbatched/%d", sources), func(b *testing.B) {
			benchIngestFanIn(b, sources, setupFanInUDPGram(false))
		})
	}
}
