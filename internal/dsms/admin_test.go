package dsms

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"streamkf/internal/core"
	"streamkf/internal/gen"
	"streamkf/internal/stream"
)

// adminGet fetches a path from the admin server without connection
// reuse, so goroutine-leak checks see a quiet state after Close.
func adminGet(t *testing.T, addr, path string) (int, string) {
	t.Helper()
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}, Timeout: 30 * time.Second}
	resp, err := client.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

// streamDirect drives n ramp readings through an in-process agent into s.
func streamDirect(t *testing.T, s *Server, sourceID string, n int) {
	t.Helper()
	cfg, err := s.InstallFor(sourceID)
	if err != nil {
		t.Fatal(err)
	}
	agent, err := NewAgent(cfg, core.TransportFunc(func(u core.Update) error { return s.HandleUpdate(u) }))
	if err != nil {
		t.Fatal(err)
	}
	if err := agent.Run(stream.NewSliceSource(gen.Ramp(n, 0, 2, 0.05, 17))); err != nil {
		t.Fatal(err)
	}
}

func TestAdminEndpoints(t *testing.T) {
	s := NewServer(testCatalog())
	mustRegister(t, s, stream.Query{ID: "q1", SourceID: "walk", Delta: 0.05, Model: "linear"})
	streamDirect(t, s, "walk", 300)

	admin, err := ServeAdmin(s, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()

	code, body := adminGet(t, admin.Addr(), "/healthz")
	if code != http.StatusOK || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	code, body = adminGet(t, admin.Addr(), "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		`dkf_server_updates_total{source="walk"}`,
		`dkf_server_suppressed_total{source="walk"}`,
		`dkf_server_suppression_ratio{source="walk"}`,
		`dkf_stream_nis{source="walk"}`,
		`dkf_stream_healthy{source="walk"} 1`,
		"# TYPE dkf_server_stepall_ns histogram",
		`dkf_build_info{version="dev"`,
		"# TYPE dkf_uptime_seconds gauge",
		"dkf_uptime_seconds",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	code, body = adminGet(t, admin.Addr(), "/streamz")
	if code != http.StatusOK {
		t.Fatalf("/streamz status %d", code)
	}
	var z Streamz
	if err := json.Unmarshal([]byte(body), &z); err != nil {
		t.Fatalf("/streamz is not a JSON Streamz document: %v\n%s", err, body)
	}
	if z.Durable || z.TraceEnabled || z.WAL != nil {
		t.Fatalf("/streamz durability flags wrong for in-memory server: %+v", z)
	}
	if len(z.Streams) != 1 {
		t.Fatalf("/streamz reported %d sources, want 1", len(z.Streams))
	}
	st := z.Streams[0]
	if st.SourceID != "walk" || st.Model != "linear" || st.Delta != 0.05 {
		t.Fatalf("/streamz identity fields wrong: %+v", st)
	}
	if st.Updates == 0 || st.Suppressed == 0 || st.SuppressionPct <= 0 {
		t.Fatalf("/streamz suppression accounting empty: %+v", st)
	}
	if !st.NISValid || !st.HealthReady {
		t.Fatalf("/streamz health not populated after 300 readings: %+v", st)
	}

	// /tracez answers (empty) even with tracing off, so dashboards can
	// always probe it.
	code, body = adminGet(t, admin.Addr(), "/tracez")
	if code != http.StatusOK {
		t.Fatalf("/tracez status %d", code)
	}
	var tz struct {
		Enabled bool `json:"enabled"`
		Count   int  `json:"count"`
	}
	if err := json.Unmarshal([]byte(body), &tz); err != nil {
		t.Fatalf("/tracez is not JSON: %v\n%s", err, body)
	}
	if tz.Enabled || tz.Count != 0 {
		t.Fatalf("/tracez with tracing off = %+v, want disabled and empty", tz)
	}
	if code, _ = adminGet(t, admin.Addr(), "/tracez?kind=bogus"); code != http.StatusBadRequest {
		t.Fatalf("/tracez?kind=bogus status %d, want 400", code)
	}
	if code, _ = adminGet(t, admin.Addr(), "/tracez/stream/nope"); code != http.StatusNotFound {
		t.Fatalf("/tracez/stream/nope status %d, want 404", code)
	}
}

// TestAdminDurableScrape opens a durable server and asserts the WAL
// instruments surface on /metrics and the durability fields on
// /streamz: wiring `wal.NewInstruments` into the server registry is
// only real if a scrape can see it.
func TestAdminDurableScrape(t *testing.T) {
	s, err := Open(testCatalog(), t.TempDir(), DurabilityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	mustRegister(t, s, stream.Query{ID: "q1", SourceID: "walk", Delta: 0.05, Model: "linear"})
	streamDirect(t, s, "walk", 200)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	admin, err := ServeAdmin(s, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()

	code, body := adminGet(t, admin.Addr(), "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"# TYPE streamkf_wal_records_appended_total counter",
		"# TYPE streamkf_wal_segments gauge",
		"streamkf_wal_checkpoints_total 1",
		"streamkf_wal_fsyncs_total",
		"# TYPE streamkf_wal_fsync_duration_nanos histogram",
		`dkf_server_updates_total{source="walk"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics on a durable server missing %q", want)
		}
	}

	code, body = adminGet(t, admin.Addr(), "/streamz")
	if code != http.StatusOK {
		t.Fatalf("/streamz status %d", code)
	}
	var z Streamz
	if err := json.Unmarshal([]byte(body), &z); err != nil {
		t.Fatalf("/streamz: %v\n%s", err, body)
	}
	if !z.Durable {
		t.Fatal("/streamz does not mark the server durable")
	}
	if z.WAL == nil {
		t.Fatal("/streamz missing the wal section on a durable server")
	}
	if z.WAL.Segments < 1 || z.WAL.Checkpoints != 1 {
		t.Fatalf("/streamz wal accounting wrong: %+v", z.WAL)
	}
	if z.WAL.CheckpointAgeSeconds < 0 {
		t.Fatalf("checkpoint age unset after an explicit checkpoint: %+v", z.WAL)
	}
}

// TestAdminScrapeUnderLoad hammers /metrics and /streamz while a TCP
// agent streams — the scrape-never-stops-writers contract under -race.
func TestAdminScrapeUnderLoad(t *testing.T) {
	catalog := testCatalog()
	s := NewServer(catalog)
	mustRegister(t, s, stream.Query{ID: "q1", SourceID: "walk", Delta: 3, Model: "linear"})
	ts := startServer(t, s)
	admin, err := ServeAdmin(s, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()

	agent, err := DialSourceOptions(ts.Addr(), "walk", catalog, DialOptions{Telemetry: s.Telemetry()})
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := agent.Run(stream.NewSliceSource(gen.Ramp(2000, 0, 2, 0.05, 17))); err != nil {
			t.Errorf("Run: %v", err)
		}
	}()

	var wg sync.WaitGroup
	for _, path := range []string{"/metrics", "/streamz"} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if code, _ := adminGet(t, admin.Addr(), path); code != http.StatusOK {
					t.Errorf("GET %s: status %d", path, code)
					return
				}
			}
		}(path)
	}
	wg.Wait()
	<-done

	// After the stream drains, the scrape must agree with Stats.
	_, body := adminGet(t, admin.Addr(), "/metrics")
	st := s.Stats()[0]
	if want := fmt.Sprintf("dkf_server_updates_total{source=\"walk\"} %d", st.Updates); !strings.Contains(body, want) {
		t.Fatalf("final scrape missing %q", want)
	}
	if want := fmt.Sprintf("dkf_agent_sends_total{source=\"walk\"} %d", st.Updates); !strings.Contains(body, want) {
		t.Fatalf("final scrape missing %q (agent/server disagree)", want)
	}

	// The agent registered its instruments in the server's registry, so
	// the status document carries an ack-RTT summary; a StepAll batch
	// populates the server-side latency summary too.
	s.StepAll(5000, 0)
	z := s.Streamz()
	if z.StepAll == nil || z.StepAll.Count == 0 || z.StepAll.P99Ns < z.StepAll.P50Ns {
		t.Fatalf("stepall latency summary not populated: %+v", z.StepAll)
	}
	if len(z.Streams) != 1 || z.Streams[0].AckRTT == nil {
		t.Fatalf("ack RTT summary missing from status document: %+v", z.Streams)
	}
	if rtt := z.Streams[0].AckRTT; rtt.Count != int64(st.Updates) || rtt.P50Ns <= 0 || rtt.P99Ns < rtt.P50Ns {
		t.Fatalf("ack RTT summary inconsistent: %+v (want count %d)", rtt, st.Updates)
	}
}

// TestAdminPprofDuringIngest is the acceptance end-to-end: a live
// server ingesting over TCP serves a CPU profile without disturbing the
// stream.
func TestAdminPprofDuringIngest(t *testing.T) {
	if testing.Short() {
		t.Skip("1s CPU profile")
	}
	catalog := testCatalog()
	s := NewServer(catalog)
	mustRegister(t, s, stream.Query{ID: "q1", SourceID: "walk", Delta: 0.5, Model: "linear"})
	ts := startServer(t, s)
	admin, err := ServeAdmin(s, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()

	agent, err := DialSource(ts.Addr(), "walk", catalog)
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		data := gen.Ramp(500, 0, 2, 0.5, 17)
		for seq := 0; ; seq++ {
			select {
			case <-stop:
				return
			default:
			}
			r := data[seq%len(data)]
			r.Seq = seq
			if _, err := agent.Offer(r); err != nil {
				return
			}
		}
	}()

	code, body := adminGet(t, admin.Addr(), "/debug/pprof/profile?seconds=1")
	close(stop)
	<-done
	if code != http.StatusOK || len(body) == 0 {
		t.Fatalf("/debug/pprof/profile = %d, %d bytes", code, len(body))
	}
	if err := agent.Drain(); err != nil {
		t.Fatalf("stream broke while profiling: %v", err)
	}
}

// TestAdminCloseNoGoroutineLeak pins the clean-shutdown contract: Close
// waits for the serve goroutine and leaves nothing behind.
func TestAdminCloseNoGoroutineLeak(t *testing.T) {
	s := NewServer(testCatalog())
	before := runtime.NumGoroutine()
	admin, err := ServeAdmin(s, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	if code, _ := adminGet(t, admin.Addr(), "/healthz"); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	if err := admin.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + admin.Addr() + "/healthz"); err == nil {
		t.Fatal("admin listener still accepting after Close")
	}
	// HTTP internals wind down asynchronously; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines leaked across admin lifecycle: before %d, after %d", before, after)
	}
}
