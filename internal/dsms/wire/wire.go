// Package wire implements the compact binary framing protocol spoken
// between dsms source agents, query clients, and the central TCP
// server. It replaces the reflection-driven gob envelope protocol: every
// message is a length-prefixed frame with a one-byte tag and fixed-width
// little-endian fields, so steady-state update frames encode and decode
// with zero allocations into per-connection scratch buffers.
//
// A connection opens with a 6-byte preamble in each direction — 4 magic
// bytes, a protocol version, and a feature-bit byte (reserved and zero
// before tracing) — so a peer speaking the wrong protocol (or a future
// incompatible version) is rejected with a clear error instead of an
// opaque decode failure. Frames follow:
//
//	uint32 LE  length   (tag + payload bytes; never 0, capped by MaxFrame)
//	uint8      tag
//	[]byte     payload  (length-1 bytes, layout per tag)
//
// See DESIGN.md "Wire protocol" for the byte-by-byte payload layouts.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"streamkf/internal/core"
	"streamkf/internal/trace"
)

// Version is the protocol version this package speaks. Peers with a
// different version are rejected during the preamble exchange.
//
// Version history:
//
//	1  initial binary framing (replaced gob)
//	2  install frames carry ResumeSeq so a durable server can tell a
//	   reconnecting source to resume instead of re-bootstrapping.
//	   Within v2 the preamble's sixth byte, written 0 and ignored
//	   through PR 4, became a feature-bit field (FeatTrace): peers that
//	   predate it still write 0 (no features) and still ignore what
//	   they read, so feature negotiation is backward compatible without
//	   a version bump.
const Version byte = 2

// Feature bits carried in the preamble's reserved byte. A bit is an
// *advertisement*, not a demand: a peer that does not know a bit
// ignores it, so features must only ever enable frames the advertiser
// is prepared to receive.
const (
	// FeatTrace announces that this side accepts TagTrace frames — the
	// optional decision-evidence tag a tracing server consumes. Agents
	// must not send trace frames to a server that did not advertise it:
	// an older server would answer the unknown tag with an error frame,
	// which is sticky and would fail the agent's next Offer.
	FeatTrace byte = 0x01
)

// DefaultMaxFrame caps the accepted frame length (tag + payload). A
// frame announcing a larger length is rejected before any payload is
// read, bounding per-connection memory.
const DefaultMaxFrame = 1 << 20

// Magic opens every connection. It spells "DKFW" (Dual Kalman Filter
// Wire) and deliberately collides with no common plaintext protocol.
var Magic = [4]byte{'D', 'K', 'F', 'W'}

const preambleLen = 6 // magic + version + feature bits (reserved before tracing)

// Tag identifies a frame's message type.
type Tag byte

// Frame tags. The hello→install exchange installs a source's filter
// configuration; update/ack carry the pipelined DKF update stream;
// query/answer serve value queries; errmsg reports any server-side
// failure.
const (
	TagHello   Tag = 0x01 // client → server: sourceID
	TagInstall Tag = 0x02 // server → client: filter configuration
	TagUpdate  Tag = 0x03 // client → server: one core.Update
	TagAck     Tag = 0x04 // server → client: cumulative acked sequence
	TagQuery   Tag = 0x05 // client → server: queryID at seq
	TagAnswer  Tag = 0x06 // server → client: query result values
	TagError   Tag = 0x07 // server → client: failure description
	TagTrace   Tag = 0x08 // client → server: decision evidence for the next update (requires FeatTrace)
)

// String names the tag for diagnostics.
func (t Tag) String() string {
	switch t {
	case TagHello:
		return "hello"
	case TagInstall:
		return "install"
	case TagUpdate:
		return "update"
	case TagAck:
		return "ack"
	case TagQuery:
		return "query"
	case TagAnswer:
		return "answer"
	case TagError:
		return "error"
	case TagTrace:
		return "trace"
	default:
		if name, ok := clusterTagName(t); ok {
			return name
		}
		return fmt.Sprintf("tag(0x%02x)", byte(t))
	}
}

// ErrBadMagic reports a peer that is not speaking the streamkf wire
// protocol at all.
var ErrBadMagic = errors.New("wire: bad magic: peer is not speaking the streamkf wire protocol")

// ErrMalformed reports a frame whose payload does not parse under its
// tag's layout.
var ErrMalformed = errors.New("wire: malformed frame")

// VersionError reports a peer speaking an incompatible protocol version.
type VersionError struct {
	Got  byte // the peer's version
	Want byte // the version this side speaks
}

// Error implements error.
func (e *VersionError) Error() string {
	return fmt.Sprintf("wire: unsupported protocol version %d (speaking %d)", e.Got, e.Want)
}

// FrameSizeError reports a frame announcing a length beyond the
// configured cap.
type FrameSizeError struct {
	Len uint32
	Max uint32
}

// Error implements error.
func (e *FrameSizeError) Error() string {
	return fmt.Sprintf("wire: frame length %d exceeds limit %d", e.Len, e.Max)
}

// WritePreamble sends the magic/version preamble with no feature bits —
// the shape every peer through PR 4 emits. Tests may send a non-current
// version to exercise rejection.
func WritePreamble(w io.Writer, version byte) error {
	return WritePreambleFeatures(w, version, 0)
}

// WritePreambleFeatures sends the magic/version preamble advertising the
// given feature bits in the sixth byte.
func WritePreambleFeatures(w io.Writer, version, features byte) error {
	var p [preambleLen]byte
	copy(p[:4], Magic[:])
	p[4] = version
	p[5] = features
	if _, err := w.Write(p[:]); err != nil {
		return fmt.Errorf("wire: write preamble: %w", err)
	}
	return nil
}

// ReadPreamble consumes and validates the peer's preamble, returning its
// protocol version. The caller decides whether the version is
// acceptable (CheckVersion implements strict equality).
func ReadPreamble(r io.Reader) (byte, error) {
	version, _, err := ReadPreambleFeatures(r)
	return version, err
}

// ReadPreambleFeatures consumes and validates the peer's preamble,
// returning its protocol version and advertised feature bits. Unknown
// bits must be ignored, which is what keeps the byte forward
// compatible.
func ReadPreambleFeatures(r io.Reader) (version, features byte, err error) {
	var p [preambleLen]byte
	if _, err := io.ReadFull(r, p[:]); err != nil {
		return 0, 0, mapReadErr(err, false)
	}
	if [4]byte(p[:4]) != Magic {
		return 0, 0, ErrBadMagic
	}
	return p[4], p[5], nil
}

// CheckVersion rejects any peer version other than ours.
func CheckVersion(got byte) error {
	if got != Version {
		return &VersionError{Got: got, Want: Version}
	}
	return nil
}

// mapReadErr classifies a short read: a clean EOF at a message boundary
// becomes core.ErrPeerClosed, an EOF inside a message becomes
// core.ErrTruncated. midMessage forces the truncation classification for
// reads that began after a frame header was already consumed.
func mapReadErr(err error, midMessage bool) error {
	if errors.Is(err, io.EOF) && !midMessage {
		return core.ErrPeerClosed
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("%w: %v", core.ErrTruncated, err)
	}
	return err
}

// Writer frames and buffers outbound messages. All methods append to an
// internal bufio buffer; nothing reaches the connection until Flush (or
// the buffer overflows). Encoding reuses one scratch buffer, so
// steady-state update frames allocate nothing.
//
// Writer is not safe for concurrent use; callers serialize access.
type Writer struct {
	bw      *bufio.Writer
	scratch []byte
	max     uint32

	// OnFrame, when set, observes every framed message as it is
	// buffered: the tag and the full frame size in bytes (length prefix
	// included). The transport layer uses it for per-tag traffic
	// telemetry; the hook must not allocate or block.
	OnFrame func(tag Tag, frameBytes int)
}

// NewWriter wraps w. bufSize <= 0 picks a default sized for a full
// default send window; maxFrame <= 0 uses DefaultMaxFrame.
func NewWriter(w io.Writer, bufSize int, maxFrame int) *Writer {
	if bufSize <= 0 {
		bufSize = 8192
	}
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	return &Writer{bw: bufio.NewWriterSize(w, bufSize), max: uint32(maxFrame)}
}

// WritePreamble buffers this side's preamble with no feature bits.
func (w *Writer) WritePreamble(version byte) error {
	return w.WritePreambleFeatures(version, 0)
}

// WritePreambleFeatures buffers this side's preamble advertising the
// given feature bits.
func (w *Writer) WritePreambleFeatures(version, features byte) error {
	var p [preambleLen]byte
	copy(p[:4], Magic[:])
	p[4] = version
	p[5] = features
	_, err := w.bw.Write(p[:])
	return err
}

// Flush pushes all buffered frames to the connection.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Buffered returns the number of bytes waiting for a Flush.
func (w *Writer) Buffered() int { return w.bw.Buffered() }

// begin resets the scratch buffer with a frame header placeholder.
func (w *Writer) begin(tag Tag) {
	w.scratch = append(w.scratch[:0], 0, 0, 0, 0, byte(tag))
}

// finish patches the length prefix and writes the frame into the buffer.
func (w *Writer) finish() error {
	n := uint32(len(w.scratch) - 4) // tag + payload
	if n > w.max {
		return &FrameSizeError{Len: n, Max: w.max}
	}
	binary.LittleEndian.PutUint32(w.scratch[:4], n)
	if _, err := w.bw.Write(w.scratch); err != nil {
		return err
	}
	if w.OnFrame != nil {
		w.OnFrame(Tag(w.scratch[4]), len(w.scratch))
	}
	return nil
}

// AppendU16 appends v little-endian. The Append* helpers are the
// building blocks of every frame payload; internal/wal reuses them so
// its on-disk records share this package's encoding exactly.
func AppendU16(b []byte, v uint16) []byte {
	return append(b, byte(v), byte(v>>8))
}

// AppendU32 appends v little-endian.
func AppendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

// AppendI64 appends v little-endian as its two's-complement bits.
func AppendI64(b []byte, v int64) []byte {
	return binary.LittleEndian.AppendUint64(b, uint64(v))
}

// AppendF64 appends the IEEE 754 bits of v little-endian.
func AppendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// AppendString appends a u16 length prefix followed by the bytes of s.
func AppendString(b []byte, s string) ([]byte, error) {
	if len(s) > math.MaxUint16 {
		return b, fmt.Errorf("wire: string field of %d bytes exceeds %d", len(s), math.MaxUint16)
	}
	b = AppendU16(b, uint16(len(s)))
	return append(b, s...), nil
}

// Hello buffers the source handshake request.
func (w *Writer) Hello(sourceID string) error {
	w.begin(TagHello)
	var err error
	if w.scratch, err = AppendString(w.scratch, sourceID); err != nil {
		return err
	}
	return w.finish()
}

// Install buffers the server's handshake reply: the filter configuration
// the connecting source must run. resumeSeq >= 0 tells a source holding
// unacknowledged updates past that sequence to resend them and continue
// without re-bootstrapping (the server recovered its filter state from
// durable storage); resumeSeq < 0 means the server has no state for the
// source and expects a bootstrap.
func (w *Writer) Install(sourceID, model string, delta, f float64, resumeSeq int64) error {
	w.begin(TagInstall)
	var err error
	if w.scratch, err = AppendString(w.scratch, sourceID); err != nil {
		return err
	}
	if w.scratch, err = AppendString(w.scratch, model); err != nil {
		return err
	}
	w.scratch = AppendF64(w.scratch, delta)
	w.scratch = AppendF64(w.scratch, f)
	w.scratch = AppendI64(w.scratch, resumeSeq)
	return w.finish()
}

// AppendUpdate appends the update payload encoding of u to b — the
// exact bytes a TagUpdate frame carries, also reused verbatim as the
// WAL update record payload. Appending into a scratch buffer with spare
// capacity allocates nothing.
func AppendUpdate(b []byte, u *core.Update) ([]byte, error) {
	var err error
	if b, err = AppendString(b, u.SourceID); err != nil {
		return b, err
	}
	if len(u.Values) > math.MaxUint16 {
		return b, fmt.Errorf("wire: update with %d values exceeds %d", len(u.Values), math.MaxUint16)
	}
	b = AppendI64(b, int64(u.Seq))
	b = AppendF64(b, u.Time)
	var flags byte
	if u.Bootstrap {
		flags |= 1
	}
	b = append(b, flags)
	b = AppendU16(b, uint16(len(u.Values)))
	for _, v := range u.Values {
		b = AppendF64(b, v)
	}
	return b, nil
}

// Update buffers one DKF update frame. Seq travels as int64 so 32-bit
// sources and 64-bit servers agree on the encoding.
func (w *Writer) Update(u *core.Update) error {
	w.begin(TagUpdate)
	var err error
	if w.scratch, err = AppendUpdate(w.scratch, u); err != nil {
		return err
	}
	return w.finish()
}

// Ack buffers a cumulative acknowledgement: every update with sequence
// number <= seq has been folded into the server filter.
func (w *Writer) Ack(seq int64) error {
	w.begin(TagAck)
	w.scratch = AppendI64(w.scratch, seq)
	return w.finish()
}

// Query buffers a value-query request.
func (w *Writer) Query(queryID string, seq int64) error {
	w.begin(TagQuery)
	var err error
	if w.scratch, err = AppendString(w.scratch, queryID); err != nil {
		return err
	}
	w.scratch = AppendI64(w.scratch, seq)
	return w.finish()
}

// Answer buffers a query result.
func (w *Writer) Answer(queryID string, values []float64) error {
	w.begin(TagAnswer)
	var err error
	if w.scratch, err = AppendString(w.scratch, queryID); err != nil {
		return err
	}
	if len(values) > math.MaxUint16 {
		return fmt.Errorf("wire: answer with %d values exceeds %d", len(values), math.MaxUint16)
	}
	w.scratch = AppendU16(w.scratch, uint16(len(values)))
	for _, v := range values {
		w.scratch = AppendF64(w.scratch, v)
	}
	return w.finish()
}

// Trace buffers one decision-evidence frame. It precedes the TagUpdate
// frame for the same sequence so a tracing server can attach the
// source's suppression evidence to the apply it is about to perform.
// The frame is only legal toward a peer that advertised FeatTrace;
// servers that never saw the bit treat 0x08 as an unknown tag.
//
// Payload layout (65 bytes, fixed):
//
//	int64   traceID
//	int64   seq
//	uint8   decision (trace.Decision)
//	float64 raw, smoothed, pred, residual, delta, nis
func (w *Writer) Trace(d *trace.DecisionInfo) error {
	w.begin(TagTrace)
	w.scratch = AppendI64(w.scratch, d.TraceID)
	w.scratch = AppendI64(w.scratch, d.Seq)
	w.scratch = append(w.scratch, byte(d.Decision))
	w.scratch = AppendF64(w.scratch, d.Raw)
	w.scratch = AppendF64(w.scratch, d.Smoothed)
	w.scratch = AppendF64(w.scratch, d.Pred)
	w.scratch = AppendF64(w.scratch, d.Residual)
	w.scratch = AppendF64(w.scratch, d.Delta)
	w.scratch = AppendF64(w.scratch, d.NIS)
	return w.finish()
}

// Error buffers a failure report. Messages beyond 64 KiB are truncated
// rather than rejected — an error path must not fail on length.
func (w *Writer) Error(msg string) error {
	if len(msg) > math.MaxUint16 {
		msg = msg[:math.MaxUint16]
	}
	w.begin(TagError)
	w.scratch, _ = AppendString(w.scratch, msg)
	return w.finish()
}

// Reader decodes inbound frames. Next returns the payload in a buffer
// reused across calls; decode the frame before reading the next one.
// Source and query ids repeat per connection, so a one-entry intern
// cache makes steady-state update decoding allocation-free.
//
// Reader is not safe for concurrent use.
type Reader struct {
	br      *bufio.Reader
	hdr     [5]byte // frame header scratch; a field so io.ReadFull cannot leak it to the heap
	payload []byte
	max     uint32
	lastID  string // intern cache for Update.SourceID
	lastQID string // intern cache for query ids

	// OnFrame, when set, observes every successfully read frame: the tag
	// and the full frame size in bytes (length prefix included). Used for
	// per-tag traffic telemetry; the hook must not allocate or block.
	OnFrame func(tag Tag, frameBytes int)
}

// NewReader wraps r. bufSize <= 0 picks a default; maxFrame <= 0 uses
// DefaultMaxFrame.
func NewReader(r io.Reader, bufSize int, maxFrame int) *Reader {
	if bufSize <= 0 {
		bufSize = 8192
	}
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	return &Reader{br: bufio.NewReaderSize(r, bufSize), max: uint32(maxFrame)}
}

// ReadPreamble consumes and validates the peer's preamble.
func (r *Reader) ReadPreamble() (byte, error) {
	return ReadPreamble(r.br)
}

// ReadPreambleFeatures consumes and validates the peer's preamble,
// returning version and feature bits.
func (r *Reader) ReadPreambleFeatures() (version, features byte, err error) {
	return ReadPreambleFeatures(r.br)
}

// Buffered reports how many received bytes wait to be parsed. The
// server uses it to coalesce acks: it flushes acknowledgements only when
// no further frames are already in hand.
func (r *Reader) Buffered() int { return r.br.Buffered() }

// Next reads one frame, returning its tag and payload. The payload
// slice is only valid until the following Next call. A clean EOF at a
// frame boundary returns core.ErrPeerClosed; a connection dropped
// mid-frame returns core.ErrTruncated.
func (r *Reader) Next() (Tag, []byte, error) {
	if _, err := io.ReadFull(r.br, r.hdr[:]); err != nil {
		// A partial header is a truncation, not a clean close.
		return 0, nil, mapReadErr(err, errors.Is(err, io.ErrUnexpectedEOF))
	}
	n := binary.LittleEndian.Uint32(r.hdr[:4])
	if n == 0 {
		return 0, nil, fmt.Errorf("%w: zero-length frame", ErrMalformed)
	}
	if n > r.max {
		return 0, nil, &FrameSizeError{Len: n, Max: r.max}
	}
	tag := Tag(r.hdr[4])
	plen := int(n - 1)
	if cap(r.payload) < plen {
		r.payload = make([]byte, plen)
	}
	p := r.payload[:plen]
	if _, err := io.ReadFull(r.br, p); err != nil {
		return 0, nil, mapReadErr(err, true)
	}
	if r.OnFrame != nil {
		r.OnFrame(tag, len(r.hdr)+plen)
	}
	return tag, p, nil
}

// internID returns a string equal to b, reusing the cached copy when the
// bytes repeat (they always do: one source per connection).
func internID(cache *string, b []byte) string {
	if *cache != string(b) {
		*cache = string(b)
	}
	return *cache
}

// Cursor is a bounds-checked decode cursor over an encoded payload.
// Reads past the end latch it into a failed state (OK turns false) and
// return zero values, so a decoder can read a whole layout and check
// validity once at the end. internal/wal reuses it for on-disk records.
type Cursor struct {
	b   []byte
	off int
	ok  bool
}

// NewCursor returns a cursor positioned at the start of p.
func NewCursor(p []byte) Cursor { return Cursor{b: p, ok: true} }

// Take consumes and returns the next n bytes, or nil past the end.
func (c *Cursor) Take(n int) []byte {
	if !c.ok || c.off+n > len(c.b) {
		c.ok = false
		return nil
	}
	s := c.b[c.off : c.off+n]
	c.off += n
	return s
}

// U8 consumes one byte.
func (c *Cursor) U8() byte {
	s := c.Take(1)
	if s == nil {
		return 0
	}
	return s[0]
}

// U16 consumes a little-endian uint16.
func (c *Cursor) U16() uint16 {
	s := c.Take(2)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(s)
}

// U32 consumes a little-endian uint32.
func (c *Cursor) U32() uint32 {
	s := c.Take(4)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}

// I64 consumes a little-endian int64.
func (c *Cursor) I64() int64 {
	s := c.Take(8)
	if s == nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(s))
}

// F64 consumes a little-endian IEEE 754 float64.
func (c *Cursor) F64() float64 {
	s := c.Take(8)
	if s == nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(s))
}

// Str consumes a u16-length-prefixed byte string.
func (c *Cursor) Str() []byte {
	n := int(c.U16())
	return c.Take(n)
}

// OK reports whether every read so far stayed in bounds.
func (c *Cursor) OK() bool { return c.ok }

// Remaining returns the number of unconsumed bytes — a cheap sanity
// bound for decoded element counts before allocating for them.
func (c *Cursor) Remaining() int {
	if !c.ok {
		return 0
	}
	return len(c.b) - c.off
}

// Done reports a fully and exactly consumed payload.
func (c *Cursor) Done() bool { return c.ok && c.off == len(c.b) }

func malformed(tag Tag) error {
	return fmt.Errorf("%w: bad %v payload", ErrMalformed, tag)
}

// DecodeHello parses a hello payload.
func DecodeHello(p []byte) (sourceID string, err error) {
	c := NewCursor(p)
	id := c.Str()
	if !c.Done() {
		return "", malformed(TagHello)
	}
	return string(id), nil
}

// Install is the decoded handshake reply. ResumeSeq >= 0 means the
// server already holds filter state for the source through that
// sequence and the source should resume; < 0 means bootstrap.
type Install struct {
	SourceID  string
	Model     string
	Delta     float64
	F         float64
	ResumeSeq int64
}

// DecodeInstall parses an install payload.
func DecodeInstall(p []byte) (Install, error) {
	c := NewCursor(p)
	id := c.Str()
	model := c.Str()
	delta := c.F64()
	f := c.F64()
	resume := c.I64()
	if !c.Done() {
		return Install{}, malformed(TagInstall)
	}
	return Install{SourceID: string(id), Model: string(model), Delta: delta, F: f, ResumeSeq: resume}, nil
}

// decodeUpdateBody parses the shared update payload layout into u,
// reusing u.Values. The SourceID bytes are passed through intern (which
// may allocate or reuse a cached string).
func decodeUpdateBody(p []byte, u *core.Update, intern func([]byte) string) error {
	c := NewCursor(p)
	id := c.Str()
	seq := c.I64()
	tim := c.F64()
	flags := c.U8()
	n := int(c.U16())
	vals := c.Take(8 * n)
	if !c.Done() || id == nil {
		return malformed(TagUpdate)
	}
	u.SourceID = intern(id)
	u.Seq = int(seq)
	u.Time = tim
	u.Bootstrap = flags&1 != 0
	u.Values = u.Values[:0]
	for i := 0; i < n; i++ {
		u.Values = append(u.Values, math.Float64frombits(binary.LittleEndian.Uint64(vals[8*i:])))
	}
	return nil
}

// DecodeUpdate parses an update payload into u, reusing u.Values and the
// reader's source-id intern cache so steady-state decoding allocates
// nothing.
func (r *Reader) DecodeUpdate(p []byte, u *core.Update) error {
	return decodeUpdateBody(p, u, func(b []byte) string { return internID(&r.lastID, b) })
}

// DecodeUpdatePayload parses a standalone update payload (e.g. a WAL
// record) into u, reusing u.Values. The source id is freshly allocated;
// callers replaying many records may intern it themselves.
func DecodeUpdatePayload(p []byte, u *core.Update) error {
	return decodeUpdateBody(p, u, func(b []byte) string { return string(b) })
}

// DecodeAck parses a cumulative ack payload.
func DecodeAck(p []byte) (seq int64, err error) {
	c := NewCursor(p)
	seq = c.I64()
	if !c.Done() {
		return 0, malformed(TagAck)
	}
	return seq, nil
}

// DecodeQuery parses a query payload, interning the repeated query id.
func (r *Reader) DecodeQuery(p []byte) (queryID string, seq int64, err error) {
	c := NewCursor(p)
	id := c.Str()
	seq = c.I64()
	if !c.Done() || id == nil {
		return "", 0, malformed(TagQuery)
	}
	return internID(&r.lastQID, id), seq, nil
}

// DecodeAnswer parses an answer payload. The values slice is freshly
// allocated: answers are handed to callers who retain them.
func DecodeAnswer(p []byte) (queryID string, values []float64, err error) {
	c := NewCursor(p)
	id := c.Str()
	n := int(c.U16())
	raw := c.Take(8 * n)
	if !c.Done() || id == nil {
		return "", nil, malformed(TagAnswer)
	}
	values = make([]float64, n)
	for i := range values {
		values[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return string(id), values, nil
}

// DecodeTrace parses a decision-evidence payload.
func DecodeTrace(p []byte) (trace.DecisionInfo, error) {
	c := NewCursor(p)
	var d trace.DecisionInfo
	d.TraceID = c.I64()
	d.Seq = c.I64()
	d.Decision = trace.Decision(c.U8())
	d.Raw = c.F64()
	d.Smoothed = c.F64()
	d.Pred = c.F64()
	d.Residual = c.F64()
	d.Delta = c.F64()
	d.NIS = c.F64()
	if !c.Done() {
		return trace.DecisionInfo{}, malformed(TagTrace)
	}
	return d, nil
}

// DecodeError parses an error payload.
func DecodeError(p []byte) (msg string, err error) {
	c := NewCursor(p)
	m := c.Str()
	if !c.Done() {
		return "", malformed(TagError)
	}
	return string(m), nil
}

// Datagram helpers.
//
// A self-describing datagram is the 6-byte preamble followed by one or
// more frames in the standard u32-LE length + u8 tag layout — byte for
// byte the v2 stream encoding, just re-anchored at every datagram so a
// receiver needs no connection state to parse one. The helpers below
// build and split datagrams in caller-owned buffers; steady-state use
// with retained capacity allocates nothing.

// AppendPreamble appends the magic/version/features preamble to b.
func AppendPreamble(b []byte, version, features byte) []byte {
	b = append(b, Magic[:]...)
	return append(b, version, features)
}

// CheckPreamble validates a datagram's preamble, returning its feature
// bits and the frame bytes that follow. The version must match exactly
// (CheckVersion); unknown feature bits are passed through for the
// caller to ignore.
func CheckPreamble(p []byte) (features byte, rest []byte, err error) {
	if len(p) < preambleLen {
		return 0, nil, fmt.Errorf("%w: short preamble", core.ErrTruncated)
	}
	if [4]byte(p[:4]) != Magic {
		return 0, nil, ErrBadMagic
	}
	if err := CheckVersion(p[4]); err != nil {
		return 0, nil, err
	}
	return p[5], p[preambleLen:], nil
}

// BeginFrame appends a frame header placeholder for tag. The caller
// appends the payload with the Append* helpers, then closes the frame
// with EndFrame, passing len(b) as it was before BeginFrame.
func BeginFrame(b []byte, tag Tag) []byte {
	return append(b, 0, 0, 0, 0, byte(tag))
}

// EndFrame patches the length prefix of the frame opened at start.
func EndFrame(b []byte, start int) ([]byte, error) {
	n := uint32(len(b) - start - 4) // tag + payload
	if n > DefaultMaxFrame {
		return b, &FrameSizeError{Len: n, Max: DefaultMaxFrame}
	}
	binary.LittleEndian.PutUint32(b[start:], n)
	return b, nil
}

// NextFrame splits the first frame off p, returning its tag, payload
// and the remaining bytes. maxFrame <= 0 uses DefaultMaxFrame.
func NextFrame(p []byte, maxFrame int) (tag Tag, payload, rest []byte, err error) {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	if len(p) < 5 {
		return 0, nil, nil, fmt.Errorf("%w: short frame header", core.ErrTruncated)
	}
	n := binary.LittleEndian.Uint32(p)
	if n > uint32(maxFrame) {
		return 0, nil, nil, &FrameSizeError{Len: n, Max: uint32(maxFrame)}
	}
	if n < 1 || len(p) < 4+int(n) {
		return 0, nil, nil, fmt.Errorf("%w: frame length %d beyond datagram", ErrMalformed, n)
	}
	return Tag(p[4]), p[5 : 4+n], p[4+n:], nil
}

// AppendHelloFrame appends a complete hello frame.
func AppendHelloFrame(b []byte, sourceID string) ([]byte, error) {
	start := len(b)
	b = BeginFrame(b, TagHello)
	var err error
	if b, err = AppendString(b, sourceID); err != nil {
		return b, err
	}
	return EndFrame(b, start)
}

// AppendInstallFrame appends a complete install frame.
func AppendInstallFrame(b []byte, inst Install) ([]byte, error) {
	start := len(b)
	b = BeginFrame(b, TagInstall)
	var err error
	if b, err = AppendString(b, inst.SourceID); err != nil {
		return b, err
	}
	if b, err = AppendString(b, inst.Model); err != nil {
		return b, err
	}
	b = AppendF64(b, inst.Delta)
	b = AppendF64(b, inst.F)
	b = AppendI64(b, inst.ResumeSeq)
	return EndFrame(b, start)
}

// AppendUpdateFrame appends a complete update frame.
func AppendUpdateFrame(b []byte, u *core.Update) ([]byte, error) {
	start := len(b)
	b = BeginFrame(b, TagUpdate)
	var err error
	if b, err = AppendUpdate(b, u); err != nil {
		return b, err
	}
	return EndFrame(b, start)
}

// AppendErrorFrame appends a complete error frame.
func AppendErrorFrame(b []byte, msg string) ([]byte, error) {
	start := len(b)
	b = BeginFrame(b, TagError)
	var err error
	if b, err = AppendString(b, msg); err != nil {
		return b, err
	}
	return EndFrame(b, start)
}

// DecodeUpdateInto parses a standalone update payload into u with a
// caller-supplied intern function — the datagram receiver's hook for a
// map-based intern, where one socket multiplexes many sources and the
// reader's single-entry cache would thrash.
func DecodeUpdateInto(p []byte, u *core.Update, intern func([]byte) string) error {
	return decodeUpdateBody(p, u, intern)
}
