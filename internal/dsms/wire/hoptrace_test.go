package wire

import (
	"errors"
	"testing"

	"streamkf/internal/trace"
)

// TestTraceExtRoundTrip covers all three TagTrace payload variants
// through one decoder: the 65-byte base an untimed peer writes, the
// 73-byte timed form a hop-capable agent writes, and the 101-byte
// router form carrying the hop record.
func TestTraceExtRoundTrip(t *testing.T) {
	d := trace.DecisionInfo{
		TraceID: 17, Seq: 9, Decision: trace.DecisionSend,
		Raw: 3.25, Smoothed: 3.0, Pred: 1.5, Residual: 1.5, Delta: 0.5, NIS: 4.0,
	}
	hop := TraceHop{Idx: 3, Epoch: 7, RxUnixNs: 1_000_000, TxUnixNs: 2_000_000}

	w, r, _ := pipe()
	if err := w.Trace(&d); err != nil {
		t.Fatal(err)
	}
	dAt := d
	dAt.At = 123_456_789
	if err := w.TraceAt(&dAt); err != nil {
		t.Fatal(err)
	}
	if err := w.TraceHop(&dAt, hop); err != nil {
		t.Fatal(err)
	}
	mustFlush(t, w)

	// Base form: decision round-trips, no timestamp, no hop.
	got, gotHop, hasHop, err := DecodeTraceExt(next(t, r, TagTrace))
	if err != nil || hasHop || got != d || gotHop != (TraceHop{}) {
		t.Fatalf("base form = %+v hop=%v/%+v, %v; want %+v", got, hasHop, gotHop, err, d)
	}
	// Timed form: the decision timestamp survives the wire.
	got, _, hasHop, err = DecodeTraceExt(next(t, r, TagTrace))
	if err != nil || hasHop || got != dAt {
		t.Fatalf("timed form = %+v hop=%v, %v; want %+v", got, hasHop, err, dAt)
	}
	// Hop form: decision, timestamp and the router's hop record.
	p := next(t, r, TagTrace)
	got, gotHop, hasHop, err = DecodeTraceExt(p)
	if err != nil || !hasHop || got != dAt || gotHop != hop {
		t.Fatalf("hop form = %+v hop=%v/%+v, %v; want %+v %+v", got, hasHop, gotHop, err, dAt, hop)
	}
	// The strict base decoder must reject the extended payload rather
	// than silently truncate it — only negotiated peers receive it.
	if _, err := DecodeTrace(p); !errors.Is(err, ErrMalformed) {
		t.Fatalf("DecodeTrace on the 101-byte hop payload = %v, want ErrMalformed", err)
	}
}

// TestTraceExtMalformed walks every off-by-some length around the
// three valid payload sizes: 65, 73 and 101 are the only ones that
// decode.
func TestTraceExtMalformed(t *testing.T) {
	for size := 0; size <= 110; size++ {
		_, _, _, err := DecodeTraceExt(make([]byte, size))
		valid := size == 65 || size == 73 || size == 101
		if valid && err != nil {
			t.Errorf("DecodeTraceExt(%d bytes) = %v, want nil", size, err)
		}
		if !valid && !errors.Is(err, ErrMalformed) {
			t.Errorf("DecodeTraceExt(%d bytes) = %v, want ErrMalformed", size, err)
		}
	}
}
