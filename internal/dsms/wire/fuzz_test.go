package wire

import (
	"bytes"
	"testing"

	"streamkf/internal/core"
	"streamkf/internal/trace"
)

// FuzzFrameDecode drives arbitrary bytes through the frame reader and
// every payload decoder. All of them must fail cleanly on malformed
// input — errors, never panics — because both the TCP server and WAL
// replay hand them bytes from outside the process.
func FuzzFrameDecode(f *testing.F) {
	seed := func(build func(w *Writer) error) []byte {
		var buf bytes.Buffer
		w := NewWriter(&buf, 0, 0)
		if err := build(w); err != nil {
			f.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x02})
	f.Add(seed(func(w *Writer) error { return w.Hello("sensor-a") }))
	f.Add(seed(func(w *Writer) error { return w.Install("s", "linear", 2.5, 1e-7, 41) }))
	f.Add(seed(func(w *Writer) error {
		return w.Update(&core.Update{SourceID: "s", Seq: 7, Time: 3.5, Values: []float64{1, 2}, Bootstrap: true})
	}))
	f.Add(seed(func(w *Writer) error { return w.Answer("q", []float64{1.5}) }))
	f.Add(seed(func(w *Writer) error { return w.Query("q", 12) }))
	f.Add(seed(func(w *Writer) error { return w.Ack(-3) }))
	f.Add(seed(func(w *Writer) error { return w.Error("boom") }))
	f.Add(seed(func(w *Writer) error {
		return w.Trace(&trace.DecisionInfo{
			TraceID: 17, Seq: 9, Decision: trace.DecisionSend,
			Raw: 3.25, Smoothed: 3.0, Pred: 1.5, Residual: 1.5, Delta: 0.5, NIS: 4.0,
		})
	}))
	f.Add(seed(func(w *Writer) error {
		return w.TraceAt(&trace.DecisionInfo{
			TraceID: 17, Seq: 9, Decision: trace.DecisionSend, At: 123456789,
			Raw: 3.25, Smoothed: 3.0, Pred: 1.5, Residual: 1.5, Delta: 0.5, NIS: 4.0,
		})
	}))
	f.Add(seed(func(w *Writer) error {
		return w.TraceHop(&trace.DecisionInfo{
			TraceID: 17, Seq: 9, Decision: trace.DecisionSend, At: 123456789,
			Raw: 3.25, Smoothed: 3.0, Pred: 1.5, Residual: 1.5, Delta: 0.5, NIS: 4.0,
		}, TraceHop{Idx: 3, Epoch: 7, RxUnixNs: 1000, TxUnixNs: 2000})
	}))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data), 0, 0)
		var u core.Update
		for {
			tag, p, err := r.Next()
			if err != nil {
				return
			}
			// Try every decoder against every payload: a frame mislabeled
			// by a corrupted tag byte must still fail cleanly everywhere.
			_, _ = DecodeHello(p)
			_, _ = DecodeInstall(p)
			_ = r.DecodeUpdate(p, &u)
			_ = DecodeUpdatePayload(p, &u)
			_, _ = DecodeAck(p)
			_, _, _ = r.DecodeQuery(p)
			_, _, _ = DecodeAnswer(p)
			_, _ = DecodeError(p)
			_, _ = DecodeTrace(p)
			_, _, _, _ = DecodeTraceExt(p)
			_ = tag
		}
	})
}
