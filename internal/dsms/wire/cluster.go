package wire

import (
	"fmt"
	"math"
)

// Cluster framing: the router ↔ shard half of the protocol.
//
// A dkf-router multiplexes many sources over one upstream connection
// per shard, which breaks the v2 assumption that a connection carries
// exactly one source (acks are bare sequence numbers). The forward
// envelope fixes that with a router-assigned u32 route index: the
// shard acks (idx, seq) pairs and the router fans them back out to the
// right downstream connections. The remaining tags are the router's
// RPCs — remote registration, and the snapshot/restore pair that moves
// one stream's checkpoint state between shards during migration.
//
// Tags 0x09–0x0f extend the v2 namespace without colliding with the
// WAL's on-disk records (0x10+, see persist.go). A shard advertises
// FeatCluster in its preamble; a router refuses an upstream that does
// not, so plain v2 servers never see these tags.
const (
	TagForward    Tag = 0x09 // router → shard: u32 idx, i64 epoch, then a standard update payload
	TagForwardAck Tag = 0x0a // shard → router: u32 idx, i64 seq (cumulative per route)
	TagClusterReg Tag = 0x0b // router → shard: remote query/aggregate registration
	TagRegistered Tag = 0x0c // shard → router: str id (registration accepted or adopted)
	TagSnapshot   Tag = 0x0d // router → shard: str sourceID, i64 epoch (release + snapshot)
	TagRestore    Tag = 0x0e // router → shard: i64 epoch, u32 len, snapshot payload
	TagStateAck   Tag = 0x0f // shard → router: str sourceID, i64 resumeSeq, i64 epoch, u32 len, payload
)

// FeatCluster announces that this side accepts the cluster tags above.
// Servers advertise it unconditionally; the dkf-router requires it on
// every upstream connection and refuses to forward to a peer without
// it (an older server would answer TagForward with a sticky error).
const FeatCluster byte = 0x02

// clusterTagName names the cluster tags for Tag.String.
func clusterTagName(t Tag) (string, bool) {
	switch t {
	case TagForward:
		return "forward", true
	case TagForwardAck:
		return "forward_ack", true
	case TagClusterReg:
		return "cluster_reg", true
	case TagRegistered:
		return "registered", true
	case TagSnapshot:
		return "snapshot", true
	case TagRestore:
		return "restore", true
	case TagStateAck:
		return "state_ack", true
	}
	return "", false
}

// BeginForward opens a forward frame: the envelope (route index +
// topology epoch) is written here and the caller appends the verbatim
// update payload bytes — no re-encode of the update — then calls
// FinishFrame. Splitting the write this way keeps router forwarding
// zero-copy: the downstream payload slice is appended as-is.
func (w *Writer) BeginForward(idx uint32, epoch int64) {
	w.begin(TagForward)
	w.scratch = AppendU32(w.scratch, idx)
	w.scratch = AppendI64(w.scratch, epoch)
}

// AppendPayload appends raw payload bytes to the frame opened by a
// Begin* call.
func (w *Writer) AppendPayload(p []byte) {
	w.scratch = append(w.scratch, p...)
}

// FinishFrame closes a frame opened by a Begin* call.
func (w *Writer) FinishFrame() error { return w.finish() }

// RawFrame buffers a frame with the given tag and a verbatim payload —
// the relay path for frames a router passes through undecoded (e.g. a
// source's trace frame on its way to the owning shard).
func (w *Writer) RawFrame(tag Tag, payload []byte) error {
	w.begin(tag)
	w.scratch = append(w.scratch, payload...)
	return w.finish()
}

// Forward buffers one complete forward frame wrapping an encoded
// update payload.
func (w *Writer) Forward(idx uint32, epoch int64, updatePayload []byte) error {
	w.BeginForward(idx, epoch)
	w.AppendPayload(updatePayload)
	return w.finish()
}

// ForwardEnvelope is the decoded forward header; Payload is the
// standard update payload that follows it (aliasing the frame buffer —
// decode before the next read).
type ForwardEnvelope struct {
	Idx     uint32
	Epoch   int64
	Payload []byte
}

// DecodeForward splits a forward payload into its envelope and the
// wrapped update payload. The update itself is decoded separately with
// the usual update decoder.
func DecodeForward(p []byte) (ForwardEnvelope, error) {
	if len(p) < 12 {
		return ForwardEnvelope{}, malformed(TagForward)
	}
	c := NewCursor(p)
	env := ForwardEnvelope{Idx: c.U32(), Epoch: c.I64()}
	env.Payload = p[12:]
	return env, nil
}

// ForwardAck buffers a cumulative per-route acknowledgement.
func (w *Writer) ForwardAck(idx uint32, seq int64) error {
	w.begin(TagForwardAck)
	w.scratch = AppendU32(w.scratch, idx)
	w.scratch = AppendI64(w.scratch, seq)
	return w.finish()
}

// DecodeForwardAck parses a forward-ack payload.
func DecodeForwardAck(p []byte) (idx uint32, seq int64, err error) {
	c := NewCursor(p)
	idx = c.U32()
	seq = c.I64()
	if !c.Done() {
		return 0, 0, malformed(TagForwardAck)
	}
	return idx, seq, nil
}

// Remote registration kinds carried by TagClusterReg.
const (
	RegPlain     byte = 0 // a single-source continuous query
	RegAggregate byte = 1 // a (partial) aggregate query
)

// ClusterQuery is a remotely registered single-source query.
type ClusterQuery struct {
	ID       string
	SourceID string
	Model    string
	Delta    float64
	F        float64
}

// ClusterAggregate is a remotely registered aggregate. Partial marks a
// shard-local partial whose answer is the exact-sum expansion (or
// local extremum) the router merges, rather than a finished scalar.
type ClusterAggregate struct {
	ID        string
	Func      string
	Model     string
	Delta     float64
	F         float64
	Partial   bool
	SourceIDs []string
}

// RegisterQuery buffers a plain remote registration.
func (w *Writer) RegisterQuery(q ClusterQuery) error {
	w.begin(TagClusterReg)
	w.scratch = append(w.scratch, RegPlain)
	var err error
	if w.scratch, err = AppendString(w.scratch, q.ID); err != nil {
		return err
	}
	if w.scratch, err = AppendString(w.scratch, q.SourceID); err != nil {
		return err
	}
	if w.scratch, err = AppendString(w.scratch, q.Model); err != nil {
		return err
	}
	w.scratch = AppendF64(w.scratch, q.Delta)
	w.scratch = AppendF64(w.scratch, q.F)
	return w.finish()
}

// RegisterAggregate buffers an aggregate remote registration.
func (w *Writer) RegisterAggregate(q ClusterAggregate) error {
	if len(q.SourceIDs) > math.MaxUint16 {
		return fmt.Errorf("wire: aggregate with %d sources exceeds %d", len(q.SourceIDs), math.MaxUint16)
	}
	w.begin(TagClusterReg)
	w.scratch = append(w.scratch, RegAggregate)
	var err error
	if w.scratch, err = AppendString(w.scratch, q.ID); err != nil {
		return err
	}
	if w.scratch, err = AppendString(w.scratch, q.Func); err != nil {
		return err
	}
	if w.scratch, err = AppendString(w.scratch, q.Model); err != nil {
		return err
	}
	w.scratch = AppendF64(w.scratch, q.Delta)
	w.scratch = AppendF64(w.scratch, q.F)
	var flags byte
	if q.Partial {
		flags |= 1
	}
	w.scratch = append(w.scratch, flags)
	w.scratch = AppendU16(w.scratch, uint16(len(q.SourceIDs)))
	for _, src := range q.SourceIDs {
		if w.scratch, err = AppendString(w.scratch, src); err != nil {
			return err
		}
	}
	return w.finish()
}

// DecodeClusterReg parses a remote registration payload. Exactly one
// of the returns is meaningful, selected by kind.
func DecodeClusterReg(p []byte) (kind byte, q ClusterQuery, agg ClusterAggregate, err error) {
	c := NewCursor(p)
	kind = c.U8()
	switch kind {
	case RegPlain:
		q.ID = string(c.Str())
		q.SourceID = string(c.Str())
		q.Model = string(c.Str())
		q.Delta = c.F64()
		q.F = c.F64()
		if !c.Done() {
			return 0, ClusterQuery{}, ClusterAggregate{}, malformed(TagClusterReg)
		}
		return kind, q, ClusterAggregate{}, nil
	case RegAggregate:
		agg.ID = string(c.Str())
		agg.Func = string(c.Str())
		agg.Model = string(c.Str())
		agg.Delta = c.F64()
		agg.F = c.F64()
		agg.Partial = c.U8()&1 != 0
		n := int(c.U16())
		if !c.OK() || n > len(p) {
			return 0, ClusterQuery{}, ClusterAggregate{}, malformed(TagClusterReg)
		}
		agg.SourceIDs = make([]string, n)
		for i := range agg.SourceIDs {
			agg.SourceIDs[i] = string(c.Str())
		}
		if !c.Done() {
			return 0, ClusterQuery{}, ClusterAggregate{}, malformed(TagClusterReg)
		}
		return kind, ClusterQuery{}, agg, nil
	default:
		return 0, ClusterQuery{}, ClusterAggregate{}, malformed(TagClusterReg)
	}
}

// Registered buffers a registration acknowledgement.
func (w *Writer) Registered(id string) error {
	w.begin(TagRegistered)
	var err error
	if w.scratch, err = AppendString(w.scratch, id); err != nil {
		return err
	}
	return w.finish()
}

// DecodeRegistered parses a registration acknowledgement.
func DecodeRegistered(p []byte) (id string, err error) {
	c := NewCursor(p)
	b := c.Str()
	if !c.Done() || b == nil {
		return "", malformed(TagRegistered)
	}
	return string(b), nil
}

// Snapshot buffers a migration snapshot request: release sourceID at
// the given topology epoch and return its checkpoint state.
func (w *Writer) Snapshot(sourceID string, epoch int64) error {
	w.begin(TagSnapshot)
	var err error
	if w.scratch, err = AppendString(w.scratch, sourceID); err != nil {
		return err
	}
	w.scratch = AppendI64(w.scratch, epoch)
	return w.finish()
}

// DecodeSnapshot parses a snapshot request.
func DecodeSnapshot(p []byte) (sourceID string, epoch int64, err error) {
	c := NewCursor(p)
	id := c.Str()
	epoch = c.I64()
	if !c.Done() || id == nil {
		return "", 0, malformed(TagSnapshot)
	}
	return string(id), epoch, nil
}

// Restore buffers a migration restore request carrying one stream's
// snapshot payload (as produced by the snapshot state-ack).
func (w *Writer) Restore(epoch int64, payload []byte) error {
	w.begin(TagRestore)
	w.scratch = AppendI64(w.scratch, epoch)
	w.scratch = AppendU32(w.scratch, uint32(len(payload)))
	w.scratch = append(w.scratch, payload...)
	return w.finish()
}

// DecodeRestore parses a restore request. The payload aliases p.
func DecodeRestore(p []byte) (epoch int64, payload []byte, err error) {
	c := NewCursor(p)
	epoch = c.I64()
	n := int(c.U32())
	payload = c.Take(n)
	if !c.Done() || payload == nil {
		return 0, nil, malformed(TagRestore)
	}
	return epoch, payload, nil
}

// StateAck is the decoded reply to Snapshot and Restore requests.
// After a snapshot, Payload carries the released stream's checkpoint
// state; after a restore it is empty.
type StateAck struct {
	SourceID  string
	ResumeSeq int64
	Epoch     int64
	Payload   []byte
}

// WriteStateAck buffers a snapshot/restore acknowledgement.
func (w *Writer) WriteStateAck(a StateAck) error {
	w.begin(TagStateAck)
	var err error
	if w.scratch, err = AppendString(w.scratch, a.SourceID); err != nil {
		return err
	}
	w.scratch = AppendI64(w.scratch, a.ResumeSeq)
	w.scratch = AppendI64(w.scratch, a.Epoch)
	w.scratch = AppendU32(w.scratch, uint32(len(a.Payload)))
	w.scratch = append(w.scratch, a.Payload...)
	return w.finish()
}

// DecodeStateAck parses a snapshot/restore acknowledgement. The
// payload is copied: state acks are rare and callers retain them
// across reads.
func DecodeStateAck(p []byte) (StateAck, error) {
	c := NewCursor(p)
	var a StateAck
	id := c.Str()
	a.ResumeSeq = c.I64()
	a.Epoch = c.I64()
	n := int(c.U32())
	payload := c.Take(n)
	if !c.Done() || id == nil || payload == nil {
		return StateAck{}, malformed(TagStateAck)
	}
	a.SourceID = string(id)
	a.Payload = append([]byte(nil), payload...)
	return a, nil
}
