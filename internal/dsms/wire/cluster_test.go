package wire

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"streamkf/internal/core"
)

// TestClusterFrameRoundTrip drives every cluster tag through a
// writer/reader pair and checks the decoded structures are identical
// to what was written — the router ↔ shard half of the protocol.
func TestClusterFrameRoundTrip(t *testing.T) {
	w, r, _ := pipe()

	// Forward: envelope + verbatim update payload.
	u := core.Update{SourceID: "node-7", Seq: 1<<33 + 5, Time: 99.25, Values: []float64{-3.5, math.Pi}}
	payload, err := AppendUpdate(nil, &u)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Forward(41, 3, payload); err != nil {
		t.Fatal(err)
	}
	if err := w.ForwardAck(41, int64(u.Seq)); err != nil {
		t.Fatal(err)
	}
	q := ClusterQuery{ID: "q1", SourceID: "node-7", Model: "linear", Delta: 2.5, F: 0.125}
	if err := w.RegisterQuery(q); err != nil {
		t.Fatal(err)
	}
	agg := ClusterAggregate{
		ID: "grid", Func: "sum", Model: "linear", Delta: 8, F: 0.5,
		Partial: true, SourceIDs: []string{"node-7", "node-8", "node-9"},
	}
	if err := w.RegisterAggregate(agg); err != nil {
		t.Fatal(err)
	}
	if err := w.Registered("grid"); err != nil {
		t.Fatal(err)
	}
	if err := w.Snapshot("node-7", 4); err != nil {
		t.Fatal(err)
	}
	state := []byte{0x10, 0x20, 0x30, 0x00, 0xff}
	if err := w.Restore(4, state); err != nil {
		t.Fatal(err)
	}
	ack := StateAck{SourceID: "node-7", ResumeSeq: 1<<33 + 5, Epoch: 4, Payload: state}
	if err := w.WriteStateAck(ack); err != nil {
		t.Fatal(err)
	}
	if err := w.RawFrame(TagTrace, []byte("opaque")); err != nil {
		t.Fatal(err)
	}
	mustFlush(t, w)

	env, err := DecodeForward(next(t, r, TagForward))
	if err != nil {
		t.Fatal(err)
	}
	if env.Idx != 41 || env.Epoch != 3 {
		t.Fatalf("forward envelope = %+v, want idx 41 epoch 3", env)
	}
	if !bytes.Equal(env.Payload, payload) {
		t.Fatal("forwarded update payload not verbatim")
	}
	var got core.Update
	if err := DecodeUpdatePayload(env.Payload, &got); err != nil {
		t.Fatal(err)
	}
	if got.SourceID != u.SourceID || got.Seq != u.Seq || got.Time != u.Time || !reflect.DeepEqual(got.Values, u.Values) {
		t.Fatalf("wrapped update = %+v, want %+v", got, u)
	}

	idx, seq, err := DecodeForwardAck(next(t, r, TagForwardAck))
	if err != nil {
		t.Fatal(err)
	}
	if idx != 41 || seq != int64(u.Seq) {
		t.Fatalf("forward ack = (%d, %d), want (41, %d)", idx, seq, u.Seq)
	}

	kind, gq, _, err := DecodeClusterReg(next(t, r, TagClusterReg))
	if err != nil {
		t.Fatal(err)
	}
	if kind != RegPlain || gq != q {
		t.Fatalf("plain reg = kind %d %+v, want %+v", kind, gq, q)
	}

	kind, _, gagg, err := DecodeClusterReg(next(t, r, TagClusterReg))
	if err != nil {
		t.Fatal(err)
	}
	if kind != RegAggregate || !reflect.DeepEqual(gagg, agg) {
		t.Fatalf("aggregate reg = kind %d %+v, want %+v", kind, gagg, agg)
	}

	id, err := DecodeRegistered(next(t, r, TagRegistered))
	if err != nil {
		t.Fatal(err)
	}
	if id != "grid" {
		t.Fatalf("registered id = %q", id)
	}

	src, epoch, err := DecodeSnapshot(next(t, r, TagSnapshot))
	if err != nil {
		t.Fatal(err)
	}
	if src != "node-7" || epoch != 4 {
		t.Fatalf("snapshot = (%q, %d), want (node-7, 4)", src, epoch)
	}

	epoch, restored, err := DecodeRestore(next(t, r, TagRestore))
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 4 || !bytes.Equal(restored, state) {
		t.Fatalf("restore = (%d, %x), want (4, %x)", epoch, restored, state)
	}

	gack, err := DecodeStateAck(next(t, r, TagStateAck))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gack, ack) {
		t.Fatalf("state ack = %+v, want %+v", gack, ack)
	}

	raw := next(t, r, TagTrace)
	if string(raw) != "opaque" {
		t.Fatalf("raw frame payload = %q", raw)
	}
}

// TestClusterDecodeMalformed feeds truncated or corrupt payloads to
// every cluster decoder; all must fail cleanly.
func TestClusterDecodeMalformed(t *testing.T) {
	if _, err := DecodeForward(make([]byte, 11)); err == nil {
		t.Error("short forward accepted")
	}
	if _, _, err := DecodeForwardAck(make([]byte, 13)); err == nil {
		t.Error("overlong forward ack accepted")
	}
	if _, _, _, err := DecodeClusterReg([]byte{9}); err == nil {
		t.Error("unknown registration kind accepted")
	}
	if _, _, _, err := DecodeClusterReg([]byte{RegPlain, 0xff}); err == nil {
		t.Error("truncated plain registration accepted")
	}
	if _, err := DecodeRegistered(nil); err == nil {
		t.Error("empty registered accepted")
	}
	if _, _, err := DecodeSnapshot([]byte{0, 1}); err == nil {
		t.Error("truncated snapshot accepted")
	}
	if _, _, err := DecodeRestore([]byte{1, 2, 3}); err == nil {
		t.Error("truncated restore accepted")
	}
	if _, err := DecodeStateAck([]byte{0}); err == nil {
		t.Error("truncated state ack accepted")
	}
	// A restore whose declared payload length overruns the frame.
	var p []byte
	p = AppendI64(p, 4)
	p = AppendU32(p, 100)
	p = append(p, 1, 2, 3)
	if _, _, err := DecodeRestore(p); err == nil {
		t.Error("restore with overrun length accepted")
	}
}

// TestClusterTagNames pins the Tag.String names for the cluster range.
func TestClusterTagNames(t *testing.T) {
	want := map[Tag]string{
		TagForward:    "forward",
		TagForwardAck: "forward_ack",
		TagClusterReg: "cluster_reg",
		TagRegistered: "registered",
		TagSnapshot:   "snapshot",
		TagRestore:    "restore",
		TagStateAck:   "state_ack",
	}
	for tag, name := range want {
		if got := tag.String(); got != name {
			t.Errorf("Tag(%#x).String() = %q, want %q", byte(tag), got, name)
		}
	}
}
