package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"strings"
	"testing"
	"unsafe"

	"streamkf/internal/core"
	"streamkf/internal/trace"
)

// pipe builds a connected Writer/Reader pair over an in-memory buffer.
func pipe() (*Writer, *Reader, *bytes.Buffer) {
	var buf bytes.Buffer
	return NewWriter(&buf, 0, 0), NewReader(&buf, 0, 0), &buf
}

func mustFlush(t *testing.T, w *Writer) {
	t.Helper()
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
}

func next(t *testing.T, r *Reader, want Tag) []byte {
	t.Helper()
	tag, p, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if tag != want {
		t.Fatalf("tag = %v, want %v", tag, want)
	}
	return p
}

func TestFrameRoundTrip(t *testing.T) {
	w, r, _ := pipe()

	if err := w.Hello("sensor-a"); err != nil {
		t.Fatal(err)
	}
	if err := w.Install("sensor-a", "linear2d", 2.5, 1e-7, 314); err != nil {
		t.Fatal(err)
	}
	u := core.Update{SourceID: "sensor-a", Seq: 1 << 40, Time: 12.75, Values: []float64{1.5, -2.25, math.Pi}, Bootstrap: true}
	if err := w.Update(&u); err != nil {
		t.Fatal(err)
	}
	if err := w.Ack(-9); err != nil {
		t.Fatal(err)
	}
	if err := w.Query("q1", 42); err != nil {
		t.Fatal(err)
	}
	if err := w.Answer("q1", []float64{3.5, 4.5}); err != nil {
		t.Fatal(err)
	}
	if err := w.Error("boom"); err != nil {
		t.Fatal(err)
	}
	d := trace.DecisionInfo{
		TraceID: 88, Seq: 1 << 40, Decision: trace.DecisionSend,
		Raw: 5.5, Smoothed: 5.25, Pred: 2.0, Residual: 3.25, Delta: 0.5, NIS: 7.5,
	}
	if err := w.Trace(&d); err != nil {
		t.Fatal(err)
	}
	mustFlush(t, w)

	if id, err := DecodeHello(next(t, r, TagHello)); err != nil || id != "sensor-a" {
		t.Fatalf("hello = %q, %v", id, err)
	}
	inst, err := DecodeInstall(next(t, r, TagInstall))
	if err != nil || inst != (Install{SourceID: "sensor-a", Model: "linear2d", Delta: 2.5, F: 1e-7, ResumeSeq: 314}) {
		t.Fatalf("install = %+v, %v", inst, err)
	}
	var got core.Update
	if err := r.DecodeUpdate(next(t, r, TagUpdate), &got); err != nil {
		t.Fatal(err)
	}
	if got.SourceID != u.SourceID || got.Seq != u.Seq || got.Time != u.Time || got.Bootstrap != u.Bootstrap {
		t.Fatalf("update = %+v, want %+v", got, u)
	}
	for i, v := range u.Values {
		if got.Values[i] != v {
			t.Fatalf("update values = %v, want %v", got.Values, u.Values)
		}
	}
	if seq, err := DecodeAck(next(t, r, TagAck)); err != nil || seq != -9 {
		t.Fatalf("ack = %d, %v", seq, err)
	}
	qid, seq, err := r.DecodeQuery(next(t, r, TagQuery))
	if err != nil || qid != "q1" || seq != 42 {
		t.Fatalf("query = %q@%d, %v", qid, seq, err)
	}
	aid, vals, err := DecodeAnswer(next(t, r, TagAnswer))
	if err != nil || aid != "q1" || len(vals) != 2 || vals[0] != 3.5 || vals[1] != 4.5 {
		t.Fatalf("answer = %q %v, %v", aid, vals, err)
	}
	if msg, err := DecodeError(next(t, r, TagError)); err != nil || msg != "boom" {
		t.Fatalf("error = %q, %v", msg, err)
	}
	if got, err := DecodeTrace(next(t, r, TagTrace)); err != nil || got != d {
		t.Fatalf("trace = %+v, %v; want %+v", got, err, d)
	}
	// Stream fully consumed: a clean EOF at the frame boundary.
	if _, _, err := r.Next(); !errors.Is(err, core.ErrPeerClosed) {
		t.Fatalf("EOF at boundary = %v, want core.ErrPeerClosed", err)
	}
}

// repeatReader replays one encoded frame forever, so decoding can run an
// arbitrary number of steady-state iterations.
type repeatReader struct {
	data []byte
	off  int
}

func (r *repeatReader) Read(p []byte) (int, error) {
	n := copy(p, r.data[r.off:])
	r.off = (r.off + n) % len(r.data)
	return n, nil
}

func TestUpdateEncodeDecodeZeroAlloc(t *testing.T) {
	u := core.Update{SourceID: "sensor-a", Seq: 7, Time: 7, Values: []float64{1, 2}}

	w := NewWriter(io.Discard, 0, 0)
	// Warm the scratch buffer, then require allocation-free encoding.
	if err := w.Update(&u); err != nil {
		t.Fatal(err)
	}
	mustFlush(t, w)
	if n := testing.AllocsPerRun(1000, func() {
		u.Seq++
		if err := w.Update(&u); err != nil {
			t.Fatal(err)
		}
		if w.Buffered() > 4096 {
			mustFlush(t, w)
		}
	}); n != 0 {
		t.Fatalf("update encode allocates %v/op, want 0", n)
	}

	var buf bytes.Buffer
	wb := NewWriter(&buf, 0, 0)
	if err := wb.Update(&u); err != nil {
		t.Fatal(err)
	}
	mustFlush(t, wb)
	r := NewReader(&repeatReader{data: buf.Bytes()}, 0, 0)
	var got core.Update
	// Warm the payload buffer, Values slice, and intern cache.
	if err := r.DecodeUpdate(mustNext(t, r), &got); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(1000, func() {
		if err := r.DecodeUpdate(mustNext(t, r), &got); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("update decode allocates %v/op, want 0", n)
	}
	if got.SourceID != u.SourceID || len(got.Values) != 2 {
		t.Fatalf("decoded %+v", got)
	}
}

func mustNext(t *testing.T, r *Reader) []byte {
	t.Helper()
	tag, p, err := r.Next()
	if err != nil || tag != TagUpdate {
		t.Fatalf("Next = %v, %v", tag, err)
	}
	return p
}

func TestPreamble(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePreamble(&buf, Version); err != nil {
		t.Fatal(err)
	}
	ver, err := ReadPreamble(&buf)
	if err != nil || ver != Version {
		t.Fatalf("preamble = %d, %v", ver, err)
	}

	if _, err := ReadPreamble(strings.NewReader("GET / HTTP/1.1\r\n")); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic = %v, want ErrBadMagic", err)
	}
	if _, err := ReadPreamble(strings.NewReader("")); !errors.Is(err, core.ErrPeerClosed) {
		t.Fatalf("empty preamble = %v, want core.ErrPeerClosed", err)
	}
	if _, err := ReadPreamble(strings.NewReader("DKF")); !errors.Is(err, core.ErrTruncated) {
		t.Fatalf("partial preamble = %v, want core.ErrTruncated", err)
	}

	if err := CheckVersion(Version); err != nil {
		t.Fatal(err)
	}
	err = CheckVersion(99)
	var ve *VersionError
	if !errors.As(err, &ve) || ve.Got != 99 || !strings.Contains(err.Error(), "unsupported protocol version 99") {
		t.Fatalf("CheckVersion(99) = %v", err)
	}
}

func TestPreambleFeatures(t *testing.T) {
	// A feature-advertising preamble round-trips version and bits.
	var buf bytes.Buffer
	if err := WritePreambleFeatures(&buf, Version, FeatTrace); err != nil {
		t.Fatal(err)
	}
	ver, feats, err := ReadPreambleFeatures(&buf)
	if err != nil || ver != Version || feats != FeatTrace {
		t.Fatalf("preamble = v%d feats %#02x, %v; want v%d feats %#02x", ver, feats, err, Version, FeatTrace)
	}

	// A pre-tracing peer writes a zero feature byte: same wire shape,
	// read by the feature-aware reader as "no features".
	buf.Reset()
	if err := WritePreamble(&buf, Version); err != nil {
		t.Fatal(err)
	}
	if _, feats, err = ReadPreambleFeatures(&buf); err != nil || feats != 0 {
		t.Fatalf("legacy preamble feats = %#02x, %v; want 0", feats, err)
	}

	// And the legacy reader ignores whatever a feature-advertising peer
	// wrote in byte 5 — the compat contract both directions rely on.
	buf.Reset()
	if err := WritePreambleFeatures(&buf, Version, 0xff); err != nil {
		t.Fatal(err)
	}
	if ver, err = ReadPreamble(&buf); err != nil || ver != Version {
		t.Fatalf("legacy read of feature preamble = v%d, %v", ver, err)
	}

	// The buffered Writer/Reader pair speaks the same shape.
	buf.Reset()
	w := NewWriter(&buf, 0, 0)
	if err := w.WritePreambleFeatures(Version, FeatTrace); err != nil {
		t.Fatal(err)
	}
	mustFlush(t, w)
	r := NewReader(&buf, 0, 0)
	if ver, feats, err = r.ReadPreambleFeatures(); err != nil || ver != Version || feats != FeatTrace {
		t.Fatalf("buffered preamble = v%d feats %#02x, %v", ver, feats, err)
	}
}

func TestNextTruncation(t *testing.T) {
	// Header promises 100 payload bytes; only a few arrive.
	frame := []byte{101, 0, 0, 0, byte(TagUpdate), 1, 2, 3}
	r := NewReader(bytes.NewReader(frame), 0, 0)
	if _, _, err := r.Next(); !errors.Is(err, core.ErrTruncated) {
		t.Fatalf("truncated payload = %v, want core.ErrTruncated", err)
	}

	// A partial header is also a truncation...
	r = NewReader(bytes.NewReader([]byte{5, 0}), 0, 0)
	if _, _, err := r.Next(); !errors.Is(err, core.ErrTruncated) {
		t.Fatalf("partial header = %v, want core.ErrTruncated", err)
	}

	// ...but a clean EOF before any header byte is a peer close.
	r = NewReader(bytes.NewReader(nil), 0, 0)
	if _, _, err := r.Next(); !errors.Is(err, core.ErrPeerClosed) {
		t.Fatalf("clean EOF = %v, want core.ErrPeerClosed", err)
	}
}

func TestNextRejectsOversizedFrame(t *testing.T) {
	var hdr [5]byte
	hdr[0] = 0xff
	hdr[1] = 0xff
	hdr[2] = 0xff // 16 MiB and change
	hdr[4] = byte(TagUpdate)
	r := NewReader(bytes.NewReader(hdr[:]), 0, 0)
	_, _, err := r.Next()
	var fse *FrameSizeError
	if !errors.As(err, &fse) || fse.Max != DefaultMaxFrame {
		t.Fatalf("oversized frame = %v, want FrameSizeError", err)
	}
	// The limit is configurable.
	r = NewReader(bytes.NewReader([]byte{200, 0, 0, 0, byte(TagUpdate)}), 0, 64)
	if _, _, err := r.Next(); !errors.As(err, &fse) || fse.Max != 64 {
		t.Fatalf("oversized frame vs custom limit = %v", err)
	}
}

func TestNextRejectsZeroLengthFrame(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte{0, 0, 0, 0, byte(TagUpdate)}), 0, 0)
	if _, _, err := r.Next(); !errors.Is(err, ErrMalformed) {
		t.Fatalf("zero-length frame = %v, want ErrMalformed", err)
	}
}

func TestWriterRejectsOverlongStrings(t *testing.T) {
	w := NewWriter(io.Discard, 0, 0)
	long := strings.Repeat("x", math.MaxUint16+1)
	if err := w.Hello(long); err == nil {
		t.Fatal("overlong hello accepted")
	}
	u := core.Update{SourceID: long, Seq: 1, Values: []float64{1}}
	if err := w.Update(&u); err == nil {
		t.Fatal("overlong update source id accepted")
	}
	// Error messages are truncated, never rejected.
	if err := w.Error(long); err != nil {
		t.Fatalf("overlong error message rejected: %v", err)
	}
}

func TestWriterRejectsOversizedFrame(t *testing.T) {
	w := NewWriter(io.Discard, 0, 128)
	u := core.Update{SourceID: "s", Seq: 1, Values: make([]float64, 100)}
	err := w.Update(&u)
	var fse *FrameSizeError
	if !errors.As(err, &fse) {
		t.Fatalf("oversized update = %v, want FrameSizeError", err)
	}
}

func TestDecodeMalformedPayloads(t *testing.T) {
	var r Reader
	var u core.Update
	cases := []struct {
		name string
		err  error
	}{
		{"hello", func() error { _, err := DecodeHello([]byte{9, 0, 'x'}); return err }()},
		{"install", func() error { _, err := DecodeInstall([]byte{1, 0, 'a'}); return err }()},
		{"update", r.DecodeUpdate([]byte{1, 0, 'a', 0}, &u)},
		{"ack", func() error { _, err := DecodeAck([]byte{1, 2}); return err }()},
		{"query", func() error { _, _, err := r.DecodeQuery([]byte{2, 0, 'q'}); return err }()},
		{"answer", func() error { _, _, err := DecodeAnswer([]byte{1, 0, 'q', 9, 0}); return err }()},
		{"error", func() error { _, err := DecodeError([]byte{5, 0, 'x'}); return err }()},
		{"trace", func() error { _, err := DecodeTrace(make([]byte, 64)); return err }()},
		{"trace-long", func() error { _, err := DecodeTrace(make([]byte, 66)); return err }()},
		{"trailing", func() error { _, err := DecodeAck(append(make([]byte, 8), 0xff)); return err }()},
	}
	for _, c := range cases {
		if !errors.Is(c.err, ErrMalformed) {
			t.Errorf("%s: err = %v, want ErrMalformed", c.name, c.err)
		}
	}
}

func TestInternCacheReusesIDs(t *testing.T) {
	w, r, _ := pipe()
	u := core.Update{SourceID: "sensor-a", Seq: 1, Values: []float64{1}}
	for i := 0; i < 2; i++ {
		u.Seq = i
		if err := w.Update(&u); err != nil {
			t.Fatal(err)
		}
	}
	mustFlush(t, w)
	var a, b core.Update
	if err := r.DecodeUpdate(mustNext(t, r), &a); err != nil {
		t.Fatal(err)
	}
	id1 := a.SourceID
	if err := r.DecodeUpdate(mustNext(t, r), &b); err != nil {
		t.Fatal(err)
	}
	// Same backing string, not merely equal content.
	if unsafe.StringData(id1) != unsafe.StringData(b.SourceID) {
		t.Fatal("repeated source id was not interned")
	}
}
