package wire

import "streamkf/internal/trace"

// Hop-trace extension: cross-hop propagation of suppression-decision
// evidence through the cluster router.
//
// The base TagTrace payload (65 bytes, see Writer.Trace) carries the
// decision evidence but no timestamps, so a trail spliced across nodes
// cannot order the source's decision against the router's forwarding
// events. The extension appends up to two suffixes to the same tag —
// no new tag is minted because the v2 tag space 0x01–0x0f is full and
// the WAL owns 0x10+ (see persist.go):
//
//	65 bytes  — base evidence (plain v2 + FeatTrace peers)
//	73 bytes  — base + int64 decidedAtUnixNs (source → hop-capable peer)
//	101 bytes — base + decidedAt + uint32 routeIdx + int64 epoch
//	            + int64 hopRxUnixNs + int64 hopTxUnixNs (router → shard)
//
// The suffixes are legal only toward a peer that advertised
// FeatHopTrace; everyone else keeps receiving (or relaying verbatim)
// the 65-byte form, so plain v2 peers are untouched. DecodeTrace stays
// strict at 65 bytes; hop-aware receivers use DecodeTraceExt, which
// accepts all three lengths.

// FeatHopTrace advertises that this peer accepts extended TagTrace
// payloads carrying decision/hop timestamps (73- or 101-byte forms).
const FeatHopTrace byte = 0x04

// TraceHop is the router-hop suffix of a 101-byte TagTrace payload:
// where the traced update was routed and when the router saw and
// forwarded it, in the trace package's unix-nanosecond clock.
type TraceHop struct {
	Idx      uint32 // route table index at the router
	Epoch    int64  // topology epoch the forward was routed under
	RxUnixNs int64  // router received the traced update
	TxUnixNs int64  // router wrote the forward to the shard
}

// traceBase appends the 65-byte base evidence encoding shared by all
// three TagTrace variants.
func traceBase(b []byte, d *trace.DecisionInfo) []byte {
	b = AppendI64(b, d.TraceID)
	b = AppendI64(b, d.Seq)
	b = append(b, byte(d.Decision))
	b = AppendF64(b, d.Raw)
	b = AppendF64(b, d.Smoothed)
	b = AppendF64(b, d.Pred)
	b = AppendF64(b, d.Residual)
	b = AppendF64(b, d.Delta)
	b = AppendF64(b, d.NIS)
	return b
}

// TraceAt buffers a 73-byte decision-evidence frame: the base evidence
// plus the source's decision timestamp (d.At). Legal only toward a
// peer that advertised FeatHopTrace.
func (w *Writer) TraceAt(d *trace.DecisionInfo) error {
	w.begin(TagTrace)
	w.scratch = traceBase(w.scratch, d)
	w.scratch = AppendI64(w.scratch, d.At)
	return w.finish()
}

// TraceHop buffers a 101-byte decision-evidence frame: the base
// evidence, the source decision timestamp, and the router hop suffix.
// Written by a tracing router toward a FeatHopTrace shard so the shard
// can splice router fwd_rx/fwd_tx events into the stream's own trail.
func (w *Writer) TraceHop(d *trace.DecisionInfo, hop TraceHop) error {
	w.begin(TagTrace)
	w.scratch = traceBase(w.scratch, d)
	w.scratch = AppendI64(w.scratch, d.At)
	w.scratch = AppendU32(w.scratch, hop.Idx)
	w.scratch = AppendI64(w.scratch, hop.Epoch)
	w.scratch = AppendI64(w.scratch, hop.RxUnixNs)
	w.scratch = AppendI64(w.scratch, hop.TxUnixNs)
	return w.finish()
}

// DecodeTraceExt parses any of the three TagTrace payload variants.
// hasHop reports whether the router-hop suffix was present (101-byte
// form); for the 65-byte form d.At is zero (unknown). Returns by value
// so hot-path callers keep the result on the stack.
func DecodeTraceExt(p []byte) (d trace.DecisionInfo, hop TraceHop, hasHop bool, err error) {
	c := NewCursor(p)
	d.TraceID = c.I64()
	d.Seq = c.I64()
	d.Decision = trace.Decision(c.U8())
	d.Raw = c.F64()
	d.Smoothed = c.F64()
	d.Pred = c.F64()
	d.Residual = c.F64()
	d.Delta = c.F64()
	d.NIS = c.F64()
	if c.Done() {
		return d, TraceHop{}, false, nil
	}
	d.At = c.I64()
	if c.Done() {
		return d, TraceHop{}, false, nil
	}
	hop.Idx = c.U32()
	hop.Epoch = c.I64()
	hop.RxUnixNs = c.I64()
	hop.TxUnixNs = c.I64()
	if !c.Done() {
		return trace.DecisionInfo{}, TraceHop{}, false, malformed(TagTrace)
	}
	return d, hop, true, nil
}
