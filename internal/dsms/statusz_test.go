package dsms

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"streamkf/internal/core"
	"streamkf/internal/gen"
	"streamkf/internal/stream"
)

// adminGetResp is adminGet plus response headers, for the endpoints
// whose HTTP semantics (status codes, cache headers) are themselves
// under test.
func adminGetResp(t *testing.T, addr, path string) (*http.Response, string) {
	t.Helper()
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}, Timeout: 30 * time.Second}
	resp, err := client.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp, string(body)
}

// TestHealthzSemantics pins the probe's HTTP contract: 200 for ok and
// degraded, 503 for unhealthy, text status by default, full JSON under
// ?verbose=1, and Cache-Control: no-store on every admin endpoint.
func TestHealthzSemantics(t *testing.T) {
	crit := 1.0
	s := NewServer(testCatalog())
	m, err := s.EnableSelfMon(SelfMonOptions{
		Every: time.Second, Recover: 3,
		Signals: []SelfSignal{
			{Name: "crit_sig", Model: "constant", Delta: 1, Critical: true,
				Read: func(*SelfMonitor) (float64, bool) { return crit, true }},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	admin, err := ServeAdmin(s, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	clk := newSelfClock(time.Second)
	for i := 0; i < 3; i++ {
		clk.tick(m)
	}

	// ok: 200, plain text, and no-store everywhere.
	for _, path := range []string{"/healthz", "/metrics", "/statusz", "/metricsz", "/streamz", "/tracez"} {
		resp, _ := adminGetResp(t, admin.Addr(), path)
		if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
			t.Errorf("GET %s Cache-Control = %q, want no-store", path, cc)
		}
	}
	resp, body := adminGetResp(t, admin.Addr(), "/healthz")
	if resp.StatusCode != http.StatusOK || body != "ok\n" {
		t.Fatalf("/healthz = %d %q, want 200 ok", resp.StatusCode, body)
	}

	// unhealthy: 503 with the status in the body, and machine-readable
	// reasons under ?verbose=1.
	crit = 100
	clk.tick(m)
	resp, body = adminGetResp(t, admin.Addr(), "/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable || body != "unhealthy\n" {
		t.Fatalf("/healthz while unhealthy = %d %q, want 503 unhealthy", resp.StatusCode, body)
	}
	resp, body = adminGetResp(t, admin.Addr(), "/healthz?verbose=1")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/healthz?verbose=1 status = %d, want 503", resp.StatusCode)
	}
	var h HealthStatus
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("verbose healthz is not JSON: %v\n%s", err, body)
	}
	if h.Status != "unhealthy" || len(h.Reasons) == 0 || h.Reasons[0].Signal != "crit_sig" || !h.Reasons[0].Critical {
		t.Fatalf("verbose healthz document wrong: %+v", h)
	}
	if h.UptimeSeconds <= 0 {
		t.Fatalf("uptime missing from healthz: %+v", h)
	}

	// degraded still answers 200: the server is impaired, not down, and
	// a load balancer must not evict it.
	warnOnly := HealthStatus{Status: "degraded"}
	_ = warnOnly // documented semantics; exercised via the overload e2e below
	for i := 0; i < 30 && s.Health().Status != "ok"; i++ {
		clk.tick(m)
	}
	resp, body = adminGetResp(t, admin.Addr(), "/healthz")
	if resp.StatusCode != http.StatusOK || body != "ok\n" {
		t.Fatalf("/healthz after recovery = %d %q, want 200 ok", resp.StatusCode, body)
	}
}

// TestHealthzOverloadHTTP is the acceptance e2e at the HTTP layer: a
// real ring-shed burst flips /healthz ok → degraded (HTTP 200 both —
// degraded must not trip load-balancer eviction) with shed_rate in the
// verbose reasons, then recovers to ok.
func TestHealthzOverloadHTTP(t *testing.T) {
	s := NewServer(testCatalog())
	e := s.StartEngine(EngineOptions{Shards: 1, RingSize: 8})
	defer e.Close()
	m, err := s.EnableSelfMon(SelfMonOptions{Every: time.Second, RateWindow: 5 * time.Second, Recover: 2})
	if err != nil {
		t.Fatal(err)
	}
	admin, err := ServeAdmin(s, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	clk := newSelfClock(time.Second)
	for i := 0; i < 5; i++ {
		clk.tick(m)
	}
	if resp, body := adminGetResp(t, admin.Addr(), "/healthz"); resp.StatusCode != http.StatusOK || body != "ok\n" {
		t.Fatalf("pre-overload /healthz = %d %q", resp.StatusCode, body)
	}

	release := make(chan struct{})
	if !e.RunOnShard(0, func() { <-release }) {
		t.Fatal("RunOnShard refused on a live engine")
	}
	p := e.Producer()
	u := &core.Update{SourceID: "burst", Seq: 1, Time: 1, Values: []float64{1}, Bootstrap: true}
	for i := 0; i < 200; i++ {
		p.TryOffer(0, u)
	}
	close(release)

	clk.tick(m)
	resp, body := adminGetResp(t, admin.Addr(), "/healthz")
	if resp.StatusCode != http.StatusOK || body != "degraded\n" {
		t.Fatalf("/healthz under shed = %d %q, want 200 degraded", resp.StatusCode, body)
	}
	_, body = adminGetResp(t, admin.Addr(), "/healthz?verbose=1")
	var h HealthStatus
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("verbose healthz: %v\n%s", err, body)
	}
	found := false
	for _, r := range h.Reasons {
		if r.Signal == "shed_rate" && r.Kind == "delta_violation" {
			found = true
		}
	}
	if !found {
		t.Fatalf("verbose reasons missing shed_rate: %+v", h.Reasons)
	}

	// /streamz surfaces the same burst as a first-class shed rate.
	_, body = adminGetResp(t, admin.Addr(), "/streamz")
	var z Streamz
	if err := json.Unmarshal([]byte(body), &z); err != nil {
		t.Fatalf("/streamz: %v\n%s", err, body)
	}
	if z.Engine == nil || z.Engine.ShedRatePerSec == nil || *z.Engine.ShedRatePerSec <= 0 {
		t.Fatalf("/streamz engine shed rate not populated under shed: %+v", z.Engine)
	}

	recovered := false
	for i := 0; i < 50; i++ {
		clk.tick(m)
		if resp, body := adminGetResp(t, admin.Addr(), "/healthz"); resp.StatusCode == http.StatusOK && body == "ok\n" {
			recovered = true
			break
		}
	}
	if !recovered {
		t.Fatalf("/healthz never recovered; health = %+v", s.Health())
	}
}

// TestStatuszDashboard checks the rendered dashboard in both modes:
// with self-monitoring on (verdict badge, signal rows, sparklines,
// findings, build identity) and off (graceful pointer page).
func TestStatuszDashboard(t *testing.T) {
	val := 3.0
	s := NewServer(testCatalog())
	m, err := s.EnableSelfMon(SelfMonOptions{
		Every: time.Second, Recover: 3,
		Signals: []SelfSignal{
			{Name: "demo_sig", Help: "scripted demo signal", Model: "constant", Delta: 1,
				Read: func(*SelfMonitor) (float64, bool) { return val, true }},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	admin, err := ServeAdmin(s, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	clk := newSelfClock(time.Second)
	for i := 0; i < 5; i++ {
		clk.tick(m)
	}
	val = 30
	clk.tick(m) // one finding, so the findings table renders

	resp, body := adminGetResp(t, admin.Addr(), "/statusz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/statusz status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("/statusz Content-Type = %q", ct)
	}
	for _, want := range []string{
		"DKF server status",
		`class="badge degraded"`,
		"demo_sig",
		"scripted demo signal",
		"<polyline",   // the sparkline rendered
		"version dev", // build identity
		"delta_violation",
		"history ring:",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/statusz missing %q", want)
		}
	}

	// Without self-monitoring the page degrades to a pointer, not an
	// error.
	bare := NewServer(testCatalog())
	admin2, err := ServeAdmin(bare, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer admin2.Close()
	resp, body = adminGetResp(t, admin2.Addr(), "/statusz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "-selfmon") {
		t.Fatalf("/statusz without selfmon = %d, body should point at -selfmon:\n%s", resp.StatusCode, body)
	}
}

// TestMetricszWindowedRates drives deterministic traffic through the
// registry and asserts the windowed-rate JSON: exact counter rates,
// histogram quantiles, parameter validation, and the 503 when
// self-monitoring is off.
func TestMetricszWindowedRates(t *testing.T) {
	s := NewServer(testCatalog())
	ctr := s.Telemetry().Counter("test_ops_total", "test counter")
	hist := s.Telemetry().Histogram("test_lat_ns", "test histogram")
	m, err := s.EnableSelfMon(SelfMonOptions{Every: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	admin, err := ServeAdmin(s, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	clk := newSelfClock(time.Second)
	clk.tick(m) // baseline
	for i := 0; i < 10; i++ {
		ctr.Add(10)
		hist.Observe(1_000_000)
		clk.tick(m)
	}

	resp, body := adminGetResp(t, admin.Addr(), "/metricsz?window=5s&name=test_ops_total")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metricsz status %d", resp.StatusCode)
	}
	var doc metricszResponse
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/metricsz is not JSON: %v\n%s", err, body)
	}
	if doc.WindowSeconds != 5 || len(doc.Series) != 1 {
		t.Fatalf("/metricsz document shape wrong: %+v", doc)
	}
	sr := doc.Series[0]
	if sr.Name != "test_ops_total" || sr.Kind != "counter" || sr.Value != 100 {
		t.Fatalf("counter series wrong: %+v", sr)
	}
	if sr.RatePerSec == nil || *sr.RatePerSec != 10 {
		t.Fatalf("counter rate = %v, want exactly 10/s", sr.RatePerSec)
	}

	_, body = adminGetResp(t, admin.Addr(), "/metricsz?name=test_lat_ns")
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	hs := doc.Series[0]
	if hs.Kind != "histogram" || hs.P99 == nil || *hs.P99 < 1_000_000 || hs.P50 == nil {
		t.Fatalf("histogram series wrong: %+v", hs)
	}
	if hs.RatePerSec == nil || *hs.RatePerSec != 1 {
		t.Fatalf("histogram observation rate = %v, want exactly 1/s", hs.RatePerSec)
	}

	// Unfiltered: the document includes the server's own instruments.
	_, body = adminGetResp(t, admin.Addr(), "/metricsz")
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	names := make(map[string]bool, len(doc.Series))
	for _, sr := range doc.Series {
		names[sr.Name] = true
	}
	for _, want := range []string{"dkf_build_info", "dkf_uptime_seconds", "dkf_selfmon_verdict", "test_ops_total"} {
		if !names[want] {
			t.Errorf("/metricsz missing series %s", want)
		}
	}

	if resp, _ := adminGetResp(t, admin.Addr(), "/metricsz?window=bogus"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("/metricsz?window=bogus status %d, want 400", resp.StatusCode)
	}

	bare := NewServer(testCatalog())
	admin2, err := ServeAdmin(bare, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer admin2.Close()
	resp, body = adminGetResp(t, admin2.Addr(), "/metricsz")
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(body, "self-monitoring disabled") {
		t.Fatalf("/metricsz without selfmon = %d %q, want 503 with explanation", resp.StatusCode, body)
	}
}

// TestStatuszMetricszScrapeUnderLoad hammers the new endpoints while a
// TCP agent streams and the self-monitor's real ticker runs — the
// scrape-never-stops-writers contract under -race, now including the
// history ring snapshot path.
func TestStatuszMetricszScrapeUnderLoad(t *testing.T) {
	catalog := testCatalog()
	s := NewServer(catalog)
	mustRegister(t, s, stream.Query{ID: "q1", SourceID: "walk", Delta: 3, Model: "linear"})
	ts := startServer(t, s)
	m, err := s.EnableSelfMon(SelfMonOptions{Every: 5 * time.Millisecond, RateWindow: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	defer m.Close()
	admin, err := ServeAdmin(s, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()

	agent, err := DialSourceOptions(ts.Addr(), "walk", catalog, DialOptions{Telemetry: s.Telemetry()})
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := agent.Run(stream.NewSliceSource(gen.Ramp(2000, 0, 2, 0.05, 17))); err != nil {
			t.Errorf("Run: %v", err)
		}
	}()

	var wg sync.WaitGroup
	for _, path := range []string{"/statusz", "/metricsz", "/healthz?verbose=1"} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, _ := adminGetResp(t, admin.Addr(), path)
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
					t.Errorf("GET %s: status %d", path, resp.StatusCode)
					return
				}
			}
		}(path)
	}
	wg.Wait()
	<-done
}
