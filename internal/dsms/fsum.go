package dsms

import "math"

// Exact floating-point summation (Shewchuk's non-overlapping expansion
// algorithm, the one behind Python's math.fsum).
//
// Why the DSMS needs it: a cross-shard aggregate is merged from
// per-shard partial sums, and naive float64 addition is
// order-dependent — the same member values summed in a different
// grouping can round differently, so a routed aggregate would drift a
// few ULPs from the single-server answer. An expansion sum is a
// function of the value *multiset* only: every grouping produces the
// bit-identical, correctly rounded result. Shards therefore ship their
// partials as expansions (see AnswerAggregatePartial) and the router
// folds and rounds them; the single-server Evaluate uses the same
// machinery, which is what makes "routed == direct" an exact equality
// rather than a tolerance.

// addToExpansion folds x into the non-overlapping partial expansion,
// returning the updated slice (which reuses partials' backing array).
// The invariant: the exact real-number sum of the returned components
// equals the exact sum of the old components plus x.
func addToExpansion(partials []float64, x float64) []float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		// A non-finite value poisons the exact sum; collapse to the
		// IEEE result, which is order-independent for any one special
		// value and deterministic (NaN) when they conflict.
		total := x
		for _, v := range partials {
			total += v
		}
		return append(partials[:0], total)
	}
	i := 0
	for j := 0; j < len(partials); j++ {
		y := partials[j]
		if math.Abs(x) < math.Abs(y) {
			x, y = y, x
		}
		hi := x + y
		if math.IsInf(hi, 0) {
			// Intermediate overflow (or an already-collapsed special
			// component): same collapse as above, over the components
			// not yet folded into hi.
			total := hi
			for _, v := range partials[j+1:] {
				total += v
			}
			for _, v := range partials[:i] {
				total += v
			}
			return append(partials[:0], total)
		}
		lo := y - (hi - x)
		if lo != 0 {
			partials[i] = lo
			i++
		}
		x = hi
	}
	return append(partials[:i], x)
}

// roundExpansion rounds a non-overlapping expansion to the nearest
// float64 — the correctly rounded value of the exact sum the expansion
// represents. An empty expansion is 0.
func roundExpansion(partials []float64) float64 {
	n := len(partials)
	if n == 0 {
		return 0
	}
	hi := partials[n-1]
	n--
	if math.IsNaN(hi) || math.IsInf(hi, 0) {
		return hi
	}
	// Sum from the largest component down until a residual survives;
	// that residual decides the final rounding.
	var lo float64
	for n > 0 {
		x := hi
		y := partials[n-1]
		n--
		hi = x + y
		yr := hi - x
		lo = y - yr
		if lo != 0 {
			break
		}
	}
	// Half-way correction: if the residual and the next-lower component
	// push the same way, the exact sum sits past the round-to-even
	// midpoint and hi must move one ULP toward them.
	if n > 0 && ((lo < 0 && partials[n-1] < 0) || (lo > 0 && partials[n-1] > 0)) {
		y := lo * 2
		x := hi + y
		if y == x-hi {
			hi = x
		}
	}
	return hi
}

// exactSum returns the correctly rounded sum of values, independent of
// their order. scratch, when non-nil, provides the expansion's backing
// array so steady-state callers do not allocate.
func exactSum(values []float64, scratch []float64) float64 {
	p := scratch[:0]
	for _, v := range values {
		p = addToExpansion(p, v)
	}
	return roundExpansion(p)
}

// AddToExpansion and RoundExpansion export the expansion fold and
// rounding for the cluster router, which merges per-shard partial
// expansions (AnswerAggregatePartial) with exactly this machinery —
// the shared code path is what makes "routed == single server" an
// exact equality.

// AddToExpansion folds x into the non-overlapping expansion partials,
// returning the updated slice (reusing its backing array).
func AddToExpansion(partials []float64, x float64) []float64 {
	return addToExpansion(partials, x)
}

// RoundExpansion rounds an expansion to the nearest float64 — the
// correctly rounded value of the exact sum it represents.
func RoundExpansion(partials []float64) float64 {
	return roundExpansion(partials)
}
