package dsms

// sysSENDMMSG is __NR_sendmmsg on linux/arm64; see udp_linux_amd64.go
// for why it is spelled out.
const sysSENDMMSG = 269
