package dsms

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"streamkf/internal/core"
	"streamkf/internal/gen"
	"streamkf/internal/stream"
	"streamkf/internal/wal"
)

// The recovery invariant under test: a server recovered from checkpoint
// + WAL replay (torn tail included) answers every query bit-identically
// to a server that never died — same filter trajectory, same
// suppression accounting — and a reconnecting source resumes without
// re-bootstrapping.

// persistQuery is the query used throughout; a moderate delta so the
// stream both suppresses and transmits.
var persistQuery = stream.Query{ID: "q-dur", SourceID: "src", Delta: 2.5, Model: "linear"}

// chattyQuery has a tight precision bound so most readings transmit —
// used where the test needs real WAL volume (checkpoint cadence,
// segment rotation).
var chattyQuery = stream.Query{ID: "q-chat", SourceID: "src", Delta: 0.2, Model: "linear"}

func persistData(n int) []stream.Reading {
	return gen.Ramp(n, 0, 1.5, 0.4, 17)
}

// trajectory queries q at every seq in [0, last], returning the raw
// float bits so comparison is exact, not within-epsilon.
func trajectory(t *testing.T, s *Server, queryID string, last int) [][]uint64 {
	t.Helper()
	out := make([][]uint64, 0, last+1)
	for seq := 0; seq <= last; seq++ {
		vals, err := s.Answer(queryID, seq)
		if err != nil {
			t.Fatalf("Answer(%s, %d): %v", queryID, seq, err)
		}
		bits := make([]uint64, len(vals))
		for i, v := range vals {
			bits[i] = math.Float64bits(v)
		}
		out = append(out, bits)
	}
	return out
}

func wantSameTrajectory(t *testing.T, got, want [][]uint64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("trajectory has %d answers, want %d", len(got), len(want))
	}
	for seq := range want {
		if len(got[seq]) != len(want[seq]) {
			t.Fatalf("answer at seq %d has %d values, want %d", seq, len(got[seq]), len(want[seq]))
		}
		for i := range want[seq] {
			if got[seq][i] != want[seq][i] {
				t.Fatalf("answer at seq %d differs: %x vs %x (not bit-identical)",
					seq, got[seq], want[seq])
			}
		}
	}
}

func wantSameStats(t *testing.T, got, want []Stats) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("stats for %d sources, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.SourceID != w.SourceID || g.Updates != w.Updates || g.Suppressed != w.Suppressed ||
			g.Bytes != w.Bytes || g.Seq != w.Seq || math.Float64bits(g.NIS) != math.Float64bits(w.NIS) {
			t.Fatalf("stats diverged:\n got %+v\nwant %+v", g, w)
		}
	}
}

// nodeBits returns the bit patterns of the source's filter state vector
// and covariance, for exact x/P comparison.
func nodeBits(t *testing.T, s *Server, sourceID string) (x, p []uint64, seq int) {
	t.Helper()
	s.mu.RLock()
	st := s.sources[sourceID]
	s.mu.RUnlock()
	if st == nil {
		t.Fatalf("no source %s", sourceID)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	snap := st.node.Snapshot()
	if snap == nil {
		t.Fatalf("source %s has no bootstrapped filter", sourceID)
	}
	x = make([]uint64, len(snap.X))
	for i, v := range snap.X {
		x[i] = math.Float64bits(v)
	}
	p = make([]uint64, len(snap.P))
	for i, v := range snap.P {
		p[i] = math.Float64bits(v)
	}
	return x, p, snap.Seq
}

// runReference streams data into a fresh non-durable server, mirroring
// the exact call sequence of the durable runs (StepAll at stepAt), and
// returns the server plus the transcript of transmitted updates.
func runReference(t *testing.T, q stream.Query, data []stream.Reading, stepAt int) (*Server, []core.Update) {
	t.Helper()
	s := NewServer(testCatalog())
	mustRegister(t, s, q)
	cfg, err := s.InstallFor(q.SourceID)
	if err != nil {
		t.Fatal(err)
	}
	var transcript []core.Update
	agent, err := NewAgent(cfg, core.TransportFunc(func(u core.Update) error {
		transcript = append(transcript, u)
		return s.HandleUpdate(u)
	}))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range data {
		if _, err := agent.Offer(r); err != nil {
			t.Fatal(err)
		}
		if i == stepAt {
			s.StepAll(r.Seq, 2)
		}
	}
	return s, transcript
}

// TestDurableRecoveryEquivalence is the kill-and-recover e2e test: a
// durable server is abandoned mid-stream (no Close — the crash), a new
// server recovers from its data directory, the stream continues, and
// the final state must be bit-identical to an uninterrupted run.
func TestDurableRecoveryEquivalence(t *testing.T) {
	const n, crashAt, stepAt, ckptAt = 400, 250, 120, 200
	data := persistData(n)
	ref, _ := runReference(t, persistQuery, data, stepAt)

	dir := t.TempDir()
	opts := DurabilityOptions{Sync: wal.SyncAlways, CheckpointEvery: 64}
	s1, err := Open(testCatalog(), dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	mustRegister(t, s1, persistQuery)
	cfg, err := s1.InstallFor(persistQuery.SourceID)
	if err != nil {
		t.Fatal(err)
	}
	// The agent outlives the server crash: readings keep flowing into
	// whichever server target currently points at, exactly like a source
	// that reconnects after its server restarts.
	target := s1
	agent, err := NewAgent(cfg, core.TransportFunc(func(u core.Update) error {
		return target.HandleUpdate(u)
	}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < crashAt; i++ {
		if _, err := agent.Offer(data[i]); err != nil {
			t.Fatal(err)
		}
		if i == stepAt {
			s1.StepAll(data[i].Seq, 2)
		}
		if i == ckptAt {
			// An explicit checkpoint mid-stream: recovery below must
			// combine checkpoint restore with tail replay.
			if err := s1.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Crash: no Close, no final checkpoint. SyncAlways means every
	// applied update is already on disk.

	s2, err := Open(testCatalog(), dir, opts)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	if !s2.Durable() {
		t.Fatal("recovered server is not durable")
	}
	if !s2.HasQuery(persistQuery.ID) {
		t.Fatal("recovered server lost the registered query")
	}
	if got := s2.ResumeSeq(persistQuery.SourceID); got != int64(s1.Stats()[0].Seq) {
		t.Fatalf("ResumeSeq = %d, want %d", got, s1.Stats()[0].Seq)
	}
	target = s2
	for i := crashAt; i < n; i++ {
		if _, err := agent.Offer(data[i]); err != nil {
			t.Fatal(err)
		}
	}

	// Filter state, suppression accounting and the full answer
	// trajectory must be bit-identical to the uninterrupted server.
	refX, refP, refSeq := nodeBits(t, ref, persistQuery.SourceID)
	gotX, gotP, gotSeq := nodeBits(t, s2, persistQuery.SourceID)
	if refSeq != gotSeq {
		t.Fatalf("filter seq = %d, want %d", gotSeq, refSeq)
	}
	for i := range refX {
		if refX[i] != gotX[i] {
			t.Fatalf("x[%d] = %x, want %x (not bit-identical)", i, gotX[i], refX[i])
		}
	}
	for i := range refP {
		if refP[i] != gotP[i] {
			t.Fatalf("P[%d] = %x, want %x (not bit-identical)", i, gotP[i], refP[i])
		}
	}
	gotStats, refStats := s2.Stats(), ref.Stats()
	wantSameStats(t, gotStats, refStats)
	if !gotStats[0].Durable || refStats[0].Durable {
		t.Fatalf("Durable flags = %v/%v, want true/false", gotStats[0].Durable, refStats[0].Durable)
	}
	if gotStats[0].CheckpointSeq <= 0 {
		t.Fatalf("CheckpointSeq = %d, want > 0 after mid-stream checkpoint", gotStats[0].CheckpointSeq)
	}
	last := data[n-1].Seq + 5 // extrapolate a little past the stream too
	wantSameTrajectory(t, trajectory(t, s2, persistQuery.ID, last), trajectory(t, ref, persistQuery.ID, last))

	// A clean Close writes a final checkpoint snapshotting the live
	// in-memory state (including the query-driven extrapolation above);
	// a third open recovers from it alone and must reproduce that state
	// exactly.
	x2, p2, seq2 := nodeBits(t, s2, persistQuery.SourceID)
	preClose := s2.Stats()
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(testCatalog(), dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	x3, p3, seq3 := nodeBits(t, s3, persistQuery.SourceID)
	if seq3 != seq2 {
		t.Fatalf("post-close filter seq = %d, want %d", seq3, seq2)
	}
	for i := range x2 {
		if x3[i] != x2[i] {
			t.Fatalf("post-close x[%d] = %x, want %x (not bit-identical)", i, x3[i], x2[i])
		}
	}
	for i := range p2 {
		if p3[i] != p2[i] {
			t.Fatalf("post-close P[%d] = %x, want %x (not bit-identical)", i, p3[i], p2[i])
		}
	}
	wantSameStats(t, s3.Stats(), preClose)
}

// TestDurableTornTailEveryOffset cuts the WAL's last segment at every
// byte offset — every possible crash point of a partial append — and
// requires that recovery plus the source's resend of unacknowledged
// updates reconverges on the uninterrupted run, bit for bit.
func TestDurableTornTailEveryOffset(t *testing.T) {
	const n = 60
	data := persistData(n)
	ref, transcript := runReference(t, persistQuery, data, -1)
	refStats := ref.Stats()
	last := data[n-1].Seq
	refTraj := trajectory(t, ref, persistQuery.ID, last)

	// One durable run to produce the reference segment bytes. No
	// checkpoints: the whole history lives in segment 1.
	dir := t.TempDir()
	s1, err := Open(testCatalog(), dir, DurabilityOptions{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	mustRegister(t, s1, persistQuery)
	if _, err := s1.InstallFor(persistQuery.SourceID); err != nil {
		t.Fatal(err)
	}
	for _, u := range transcript {
		if err := s1.HandleUpdate(u); err != nil {
			t.Fatal(err)
		}
	}
	wantSameStats(t, s1.Stats(), refStats)
	segPath := filepath.Join(dir, "seg-00000001.wal")
	full, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(full); cut++ {
		cutDir := t.TempDir()
		if err := os.WriteFile(filepath.Join(cutDir, "seg-00000001.wal"), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(testCatalog(), cutDir, DurabilityOptions{Sync: wal.SyncOff})
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}
		// Startup re-registration, exactly like dkf-server -query does:
		// skipped when the WAL already recovered it.
		if !s2.HasQuery(persistQuery.ID) {
			mustRegister(t, s2, persistQuery)
		}
		if _, err := s2.InstallFor(persistQuery.SourceID); err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		// The source resends everything past the server's recovered seq —
		// the pending updates a real RemoteAgent would retransmit — and
		// the stream continues to the end.
		rs := s2.ResumeSeq(persistQuery.SourceID)
		for _, u := range transcript {
			if int64(u.Seq) <= rs {
				continue
			}
			if err := s2.HandleUpdate(u); err != nil {
				t.Fatalf("cut %d: resending %d: %v", cut, u.Seq, err)
			}
		}
		wantSameStats(t, s2.Stats(), refStats)
		wantSameTrajectory(t, trajectory(t, s2, persistQuery.ID, last), refTraj)
		s2.Close()
	}
}

// TestDurableTCPResume is the wire-level half of the recovery story: a
// RemoteAgent's server dies hard mid-stream, a recovered server takes
// over the same address, and Reconnect resumes the session — resending
// only what the server lost, never re-bootstrapping — with the final
// state bit-identical to an uninterrupted run.
func TestDurableTCPResume(t *testing.T) {
	const n, crashAt = 300, 180
	data := persistData(n)
	ref, _ := runReference(t, persistQuery, data, -1)

	dir := t.TempDir()
	opts := DurabilityOptions{Sync: wal.SyncAlways}
	s1, err := Open(testCatalog(), dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	mustRegister(t, s1, persistQuery)
	ts1, err := NewTCPServer(s1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ts1.Serve()
	addr := ts1.Addr()

	agent, err := DialSource(addr, persistQuery.SourceID, testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	for i := 0; i < crashAt; i++ {
		if _, err := agent.Offer(data[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Hard crash: connections die with in-flight unacked updates; the
	// server process never closes its WAL.
	ts1.Close()

	s2, err := Open(testCatalog(), dir, opts)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer s2.Close()
	if !s2.HasQuery(persistQuery.ID) {
		t.Fatal("recovered server lost the query")
	}
	ts2, err := NewTCPServer(s2, addr)
	if err != nil {
		t.Fatalf("rebinding %s: %v", addr, err)
	}
	go ts2.Serve()
	defer ts2.Close()

	// The dead connection surfaces as the sticky transport error once
	// the read loop notices the peer is gone (pipelining means an Offer
	// may buffer without seeing it, so wait for it explicitly).
	deadline := time.Now().Add(5 * time.Second)
	for agent.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("transport error never surfaced after server crash")
		}
		time.Sleep(time.Millisecond)
	}
	// One Reconnect resumes the session: the install reply's ResumeSeq
	// drops recovered pending updates, the rest are resent. Updates the
	// mirror already folded in are never re-offered.
	if err := agent.Reconnect(); err != nil {
		t.Fatalf("Reconnect: %v", err)
	}
	for i := crashAt; i < n; i++ {
		if _, err := agent.Offer(data[i]); err != nil {
			t.Fatalf("offer %d after reconnect: %v", i, err)
		}
	}
	if err := agent.Drain(); err != nil {
		t.Fatal(err)
	}

	// No re-bootstrap happened and the trajectories match exactly.
	ast := agent.Stats()
	refStats, gotStats := ref.Stats(), s2.Stats()
	if ast.Updates != refStats[0].Updates {
		t.Fatalf("agent sent %d updates, reference saw %d (re-bootstrap or loss)", ast.Updates, refStats[0].Updates)
	}
	wantSameStats(t, gotStats, refStats)
	last := data[n-1].Seq
	wantSameTrajectory(t, trajectory(t, s2, persistQuery.ID, last), trajectory(t, ref, persistQuery.ID, last))
}

// TestReconnectRefusesLostState: a server that recovered to *behind*
// what it acknowledged cannot be resumed — resending pending updates
// cannot repair acknowledged-then-lost state, and the agent must say so
// rather than silently diverge.
func TestReconnectRefusesLostState(t *testing.T) {
	data := persistData(100)

	s1 := NewServer(testCatalog())
	mustRegister(t, s1, persistQuery)
	ts1, err := NewTCPServer(s1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ts1.Serve()
	addr := ts1.Addr()

	agent, err := DialSource(addr, persistQuery.SourceID, testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	for i := 0; i < 50; i++ {
		if _, err := agent.Offer(data[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := agent.Drain(); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	// The replacement server is blank (no durable state at all): its
	// ResumeSeq of -1 is behind the agent's acked history.
	s2 := NewServer(testCatalog())
	mustRegister(t, s2, persistQuery)
	ts2, err := NewTCPServer(s2, addr)
	if err != nil {
		t.Fatal(err)
	}
	go ts2.Serve()
	defer ts2.Close()

	if err := agent.Reconnect(); err == nil {
		t.Fatal("Reconnect succeeded against a server that lost acknowledged state")
	}
}

// TestDurableOpenRejectsCorruptCheckpoint: recovery must fail loudly on
// a damaged checkpoint, not silently bootstrap fresh state.
func TestDurableOpenRejectsCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(testCatalog(), dir, DurabilityOptions{Sync: wal.SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	mustRegister(t, s1, persistQuery)
	if _, err := s1.InstallFor(persistQuery.SourceID); err != nil {
		t.Fatal(err)
	}
	_, transcript := runReference(t, persistQuery, persistData(50), -1)
	for _, u := range transcript {
		if err := s1.HandleUpdate(u); err != nil {
			t.Fatal(err)
		}
	}
	if err := s1.Close(); err != nil { // writes the final checkpoint
		t.Fatal(err)
	}
	path := filepath.Join(dir, wal.CheckpointName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(testCatalog(), dir, DurabilityOptions{}); err == nil {
		t.Fatal("Open accepted a corrupt checkpoint")
	}
}

// TestDurableCheckpointTruncatesSegments: automatic checkpoints must
// keep the log bounded — sealed segments behind the snapshot are
// removed while the stream keeps flowing.
func TestDurableCheckpointTruncatesSegments(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(testCatalog(), dir, DurabilityOptions{
		Sync:            wal.SyncOff,
		SegmentBytes:    512, // rotate early and often
		CheckpointEvery: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	mustRegister(t, s, chattyQuery)
	if _, err := s.InstallFor(chattyQuery.SourceID); err != nil {
		t.Fatal(err)
	}
	_, transcript := runReference(t, chattyQuery, persistData(600), -1)
	for _, u := range transcript {
		if err := s.HandleUpdate(u); err != nil {
			t.Fatal(err)
		}
	}
	if s.Stats()[0].CheckpointSeq <= 0 {
		t.Fatalf("CheckpointSeq = %d, want > 0 after %d updates with CheckpointEvery 40",
			s.Stats()[0].CheckpointSeq, len(transcript))
	}
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if err != nil {
		t.Fatal(err)
	}
	// Without truncation ~len(transcript)*45B / 512B ≈ dozens of
	// segments would pile up; checkpoints must have removed the sealed
	// prefix.
	if len(segs) > 6 {
		t.Fatalf("%d segments on disk; checkpoints are not truncating", len(segs))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// And the truncated log still recovers the full state.
	ref, _ := runReference(t, chattyQuery, persistData(600), -1)
	s2, err := Open(testCatalog(), dir, DurabilityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	wantSameStats(t, s2.Stats(), ref.Stats())
	last := persistData(600)[599].Seq
	wantSameTrajectory(t, trajectory(t, s2, chattyQuery.ID, last), trajectory(t, ref, chattyQuery.ID, last))
}

// TestDurableServerInterval exercises the SyncInterval policy end to
// end: buffered appends become durable through the background flusher
// and a clean Close, and recovery agrees with the reference.
func TestDurableServerInterval(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(testCatalog(), dir, DurabilityOptions{Sync: wal.SyncInterval, SyncEvery: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	mustRegister(t, s, persistQuery)
	if _, err := s.InstallFor(persistQuery.SourceID); err != nil {
		t.Fatal(err)
	}
	ref, transcript := runReference(t, persistQuery, persistData(200), -1)
	for _, u := range transcript {
		if err := s.HandleUpdate(u); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(testCatalog(), dir, DurabilityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	wantSameStats(t, s2.Stats(), ref.Stats())
}

// BenchmarkTCPIngestDurable is the durable twin of
// BenchmarkTCPIngest/single: same loopback wire path, but every update
// is WAL-logged under the interval fsync policy before it is
// acknowledged. The delta between the two benchmarks is the price of
// durability on the ingest hot path (budget: within 2x of the
// non-durable path — see BENCH_WAL.json).
func BenchmarkTCPIngestDurable(b *testing.B) {
	catalog := testCatalog()
	s, err := Open(catalog, b.TempDir(), DurabilityOptions{Sync: wal.SyncInterval})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	if err := s.Register(stream.Query{ID: "q-bench", SourceID: "bench", Delta: 1e-6, Model: "constant"}); err != nil {
		b.Fatal(err)
	}
	ts, err := NewTCPServer(s, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go ts.Serve()
	defer ts.Close()
	agent, err := DialSourceOptions(ts.Addr(), "bench", catalog, DialOptions{Telemetry: s.Telemetry()})
	if err != nil {
		b.Fatal(err)
	}
	defer agent.Close()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sent, err := agent.Offer(benchReading(i, 0))
		if err != nil {
			b.Fatal(err)
		}
		if !sent {
			b.Fatal("reading unexpectedly suppressed")
		}
	}
	if err := agent.Drain(); err != nil {
		b.Fatal(err)
	}
}
