package dsms

import (
	"encoding/json"
	"os"
	"testing"

	"streamkf/internal/core"
	"streamkf/internal/gen"
	"streamkf/internal/stream"
	"streamkf/internal/telemetry"
)

// TestStatsMatchTelemetryCounters replays a mixed suppressed/sent
// stream and asserts that the agent's node counters, Server.Stats, and
// the telemetry registry all report identical numbers — the counters
// ARE the stats, so the three views cannot drift.
func TestStatsMatchTelemetryCounters(t *testing.T) {
	s := NewServer(testCatalog())
	mustRegister(t, s, stream.Query{ID: "q1", SourceID: "walk", Delta: 0.5, Model: "linear"})
	cfg, err := s.InstallFor("walk")
	if err != nil {
		t.Fatal(err)
	}
	agent, err := NewAgent(cfg, core.TransportFunc(func(u core.Update) error { return s.HandleUpdate(u) }))
	if err != nil {
		t.Fatal(err)
	}
	agent.Instrument(NewAgentInstruments(s.Telemetry(), "walk"))

	data := gen.Ramp(400, 0, 2, 0.3, 23)
	// Spike the final reading so it must transmit: every suppressed
	// sequence number then sits between two transmissions, and the
	// server's gap inference accounts for all of them.
	data[len(data)-1].Values[0] += 100
	if err := agent.Run(stream.NewSliceSource(data)); err != nil {
		t.Fatal(err)
	}

	ast := agent.Stats()
	if ast.Updates == 0 || ast.Suppressed == 0 {
		t.Fatalf("replay was not mixed: %+v", ast)
	}
	if ast.Updates+ast.Suppressed != len(data) {
		t.Fatalf("agent counters do not cover the stream: %+v over %d readings", ast, len(data))
	}

	st := s.Stats()[0]
	reg := s.Telemetry()
	src := telemetry.L("source", "walk")
	get := func(name string) int {
		t.Helper()
		v, ok := reg.Get(name, src)
		if !ok {
			t.Fatalf("metric %s not registered", name)
		}
		return int(v)
	}

	if st.Updates != ast.Updates {
		t.Errorf("server saw %d updates, agent sent %d", st.Updates, ast.Updates)
	}
	if st.Suppressed != ast.Suppressed {
		t.Errorf("server inferred %d suppressed, agent suppressed %d", st.Suppressed, ast.Suppressed)
	}
	if st.Bytes != ast.BytesSent {
		t.Errorf("server counted %d bytes, agent sent %d", st.Bytes, ast.BytesSent)
	}
	if got := get("dkf_server_updates_total"); got != st.Updates {
		t.Errorf("dkf_server_updates_total = %d, Stats.Updates = %d", got, st.Updates)
	}
	if got := get("dkf_server_suppressed_total"); got != st.Suppressed {
		t.Errorf("dkf_server_suppressed_total = %d, Stats.Suppressed = %d", got, st.Suppressed)
	}
	if got := get("dkf_server_recv_bytes_total"); got != st.Bytes {
		t.Errorf("dkf_server_recv_bytes_total = %d, Stats.Bytes = %d", got, st.Bytes)
	}
	if got := get("dkf_agent_offers_total"); got != ast.Readings {
		t.Errorf("dkf_agent_offers_total = %d, agent readings = %d", got, ast.Readings)
	}
	if got := get("dkf_agent_sends_total"); got != ast.Updates {
		t.Errorf("dkf_agent_sends_total = %d, agent updates = %d", got, ast.Updates)
	}
	if got := get("dkf_agent_suppressed_total"); got != ast.Suppressed {
		t.Errorf("dkf_agent_suppressed_total = %d, agent suppressed = %d", got, ast.Suppressed)
	}
	if got := get("dkf_agent_sent_bytes_total"); got != ast.BytesSent {
		t.Errorf("dkf_agent_sent_bytes_total = %d, agent bytes = %d", got, ast.BytesSent)
	}

	wantRatio := float64(st.Suppressed) / float64(st.Updates+st.Suppressed)
	if ratio, ok := reg.Get("dkf_server_suppression_ratio", src); !ok || ratio != wantRatio {
		t.Errorf("dkf_server_suppression_ratio = %v, want %v", ratio, wantRatio)
	}
	if pct := st.SuppressionPct; pct != 100*wantRatio {
		t.Errorf("Stats.SuppressionPct = %v, want %v", pct, 100*wantRatio)
	}
}

// benchBudgets reads the allocs_per_op entries of a benchmark baseline
// file.
func benchBudgets(t *testing.T, path string) map[string]int64 {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Benchmarks map[string]struct {
			AllocsPerOp int64 `json:"allocs_per_op"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	out := make(map[string]int64, len(doc.Benchmarks))
	for name, b := range doc.Benchmarks {
		out[name] = b.AllocsPerOp
	}
	return out
}

// TestTCPIngestAllocBudget gates the instrumented TCP ingest path on
// the allocation budget pinned in BENCH_TCP.json: telemetry must ride
// along for free.
func TestTCPIngestAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a benchmark")
	}
	budget, ok := benchBudgets(t, "../../BENCH_TCP.json")["BenchmarkTCPIngest/single"]
	if !ok {
		t.Fatal("BENCH_TCP.json has no BenchmarkTCPIngest/single entry")
	}
	res := testing.Benchmark(benchTCPIngestSingle)
	if got := res.AllocsPerOp(); got > budget {
		t.Fatalf("TCP ingest with telemetry allocates %d/op, budget %d/op (BENCH_TCP.json)", got, budget)
	}
}

// TestTCPIngestTracedAllocBudget gates the fully traced TCP ingest path
// — server flight recorders, negotiated trace frames, agent recorder —
// on the budget pinned in BENCH_TCP.json: tracing must also ride along
// for free.
func TestTCPIngestTracedAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a benchmark")
	}
	budget, ok := benchBudgets(t, "../../BENCH_TCP.json")["BenchmarkTCPIngest/traced"]
	if !ok {
		t.Fatal("BENCH_TCP.json has no BenchmarkTCPIngest/traced entry")
	}
	res := testing.Benchmark(benchTCPIngestTraced)
	if got := res.AllocsPerOp(); got > budget {
		t.Fatalf("traced TCP ingest allocates %d/op, budget %d/op (BENCH_TCP.json)", got, budget)
	}
}
