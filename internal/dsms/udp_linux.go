//go:build linux && (amd64 || arm64)

// Batched datagram I/O on Linux: recvmmsg drains up to RxBatch
// datagrams in one syscall and sendmmsg transmits a sealed batch in
// one, both issued raw against the netpoller-registered fd through
// syscall.RawConn — no new dependency, and a lane still parks in the
// runtime poller on EAGAIN instead of spinning. Both callbacks are
// stored method values bound once at construction: a closure built per
// read would allocate per batch and break the rx path's 0 allocs/op
// gate (TestUDPLaneRxAllocFree pins the parse half; the e2e lane tests
// cover this half).
//
// The mmsghdr layout below matches the 64-bit layouts of linux/amd64
// and linux/arm64 (8-byte-aligned msghdr, 4-byte msg_len plus implicit
// tail padding). The build tag keeps every other GOARCH on the portable
// single-datagram path in udp_portable.go rather than guessing struct
// packing.
package dsms

import (
	"net"
	"net/netip"
	"syscall"
	"unsafe"
)

// mmsgAvailable reports that read/send batching is real on this
// platform (the batch-size knobs do something).
const mmsgAvailable = true

// mmsghdr mirrors struct mmsghdr from <sys/socket.h>.
type mmsghdr struct {
	hdr syscall.Msghdr
	len uint32
	_   [4]byte
}

// laneRx is one lane's batched receive state: a fixed arena of RxBatch
// datagram buffers and the iovec/msghdr/sockaddr tables describing them
// to recvmmsg. All tables are laid out once; a read only resets the
// per-message name lengths the kernel overwrites.
type laneRx struct {
	rc    syscall.RawConn
	bufs  [][]byte
	iovs  []syscall.Iovec
	names []syscall.RawSockaddrAny
	hdrs  []mmsghdr

	readFn func(fd uintptr) bool
	n      int
	errno  syscall.Errno
}

func newLaneRx(conn *net.UDPConn, batch, maxDatagram int) (*laneRx, error) {
	rc, err := conn.SyscallConn()
	if err != nil {
		return nil, err
	}
	rx := &laneRx{
		rc:    rc,
		bufs:  make([][]byte, batch),
		iovs:  make([]syscall.Iovec, batch),
		names: make([]syscall.RawSockaddrAny, batch),
		hdrs:  make([]mmsghdr, batch),
	}
	arena := make([]byte, batch*maxDatagram)
	for i := 0; i < batch; i++ {
		rx.bufs[i] = arena[i*maxDatagram : (i+1)*maxDatagram : (i+1)*maxDatagram]
		rx.iovs[i].Base = &rx.bufs[i][0]
		rx.iovs[i].SetLen(maxDatagram)
		h := &rx.hdrs[i].hdr
		h.Name = (*byte)(unsafe.Pointer(&rx.names[i]))
		h.Namelen = uint32(unsafe.Sizeof(rx.names[i]))
		h.Iov = &rx.iovs[i]
		h.Iovlen = 1
	}
	rx.readFn = rx.rawRead
	return rx, nil
}

// rawRead is the RawConn.Read callback: one non-blocking recvmmsg.
// Returning false on EAGAIN parks the goroutine in the netpoller until
// the socket is readable again.
func (rx *laneRx) rawRead(fd uintptr) bool {
	n, _, errno := syscall.Syscall6(syscall.SYS_RECVMMSG, fd,
		uintptr(unsafe.Pointer(&rx.hdrs[0])), uintptr(len(rx.hdrs)),
		uintptr(syscall.MSG_DONTWAIT), 0, 0)
	if errno == syscall.EAGAIN {
		return false
	}
	rx.n, rx.errno = int(n), errno
	return true
}

// read blocks until at least one datagram arrives and returns how many
// the batch drained. msg(i)/addr(i) are valid until the next read.
func (rx *laneRx) read() (int, error) {
	for i := range rx.hdrs {
		rx.hdrs[i].hdr.Namelen = uint32(unsafe.Sizeof(rx.names[0]))
	}
	rx.n, rx.errno = 0, 0
	if err := rx.rc.Read(rx.readFn); err != nil {
		return 0, err
	}
	if rx.errno != 0 {
		return 0, rx.errno
	}
	return rx.n, nil
}

// msg returns the i-th drained datagram's bytes.
func (rx *laneRx) msg(i int) []byte { return rx.bufs[i][:rx.hdrs[i].len] }

// addr decodes the i-th datagram's peer address without allocating.
// Port bytes are read individually, so the conversion from network
// byte order is endianness-agnostic.
func (rx *laneRx) addr(i int) netip.AddrPort {
	name := &rx.names[i]
	switch name.Addr.Family {
	case syscall.AF_INET:
		sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(name))
		p := (*[2]byte)(unsafe.Pointer(&sa.Port))
		return netip.AddrPortFrom(netip.AddrFrom4(sa.Addr), uint16(p[0])<<8|uint16(p[1]))
	case syscall.AF_INET6:
		sa := (*syscall.RawSockaddrInet6)(unsafe.Pointer(name))
		p := (*[2]byte)(unsafe.Pointer(&sa.Port))
		return netip.AddrPortFrom(netip.AddrFrom16(sa.Addr), uint16(p[0])<<8|uint16(p[1]))
	}
	return netip.AddrPort{}
}

// batchTx transmits a set of sealed datagrams on a connected socket
// with as few sendmmsg calls as the kernel allows (partial sends loop).
type batchTx struct {
	rc   syscall.RawConn
	iovs []syscall.Iovec
	hdrs []mmsghdr

	writeFn func(fd uintptr) bool
	count   int
	n       int
	errno   syscall.Errno
}

func newBatchTx(conn *net.UDPConn) (*batchTx, error) {
	rc, err := conn.SyscallConn()
	if err != nil {
		return nil, err
	}
	tx := &batchTx{rc: rc}
	tx.writeFn = tx.rawWrite
	return tx, nil
}

// rawWrite is the RawConn.Write callback: one non-blocking sendmmsg of
// hdrs[:count]. Returning false on EAGAIN waits for writability.
func (tx *batchTx) rawWrite(fd uintptr) bool {
	n, _, errno := syscall.Syscall6(sysSENDMMSG, fd,
		uintptr(unsafe.Pointer(&tx.hdrs[0])), uintptr(tx.count),
		uintptr(syscall.MSG_DONTWAIT), 0, 0)
	if errno == syscall.EAGAIN {
		return false
	}
	tx.n, tx.errno = int(n), errno
	return true
}

// sendAll transmits every packet. The socket is connected, so the
// msghdrs carry no destination; header tables grow to the largest batch
// seen and are reused after that.
func (tx *batchTx) sendAll(pkts [][]byte) error {
	for len(tx.hdrs) < len(pkts) {
		tx.hdrs = append(tx.hdrs, mmsghdr{})
		tx.iovs = append(tx.iovs, syscall.Iovec{})
	}
	for off := 0; off < len(pkts); {
		rem := pkts[off:]
		for i := range rem {
			tx.iovs[i].Base = &rem[i][0]
			tx.iovs[i].SetLen(len(rem[i]))
			h := &tx.hdrs[i].hdr
			h.Name = nil
			h.Namelen = 0
			h.Iov = &tx.iovs[i]
			h.Iovlen = 1
		}
		tx.count = len(rem)
		tx.n, tx.errno = 0, 0
		if err := tx.rc.Write(tx.writeFn); err != nil {
			return err
		}
		if tx.errno != 0 {
			return tx.errno
		}
		if tx.n <= 0 {
			return syscall.EIO
		}
		off += tx.n
	}
	return nil
}
