package dsms

import (
	"fmt"
	"sync"
	"sync/atomic"

	"streamkf/internal/dsms/wire"
)

// Shard-side cluster surface: what a Server exposes when it runs as one
// shard of a consistent-hash cluster behind a dkf-router (see
// internal/dsms/cluster). A shard is an ordinary server — same filters,
// same WAL, same query answers — plus three things: an identity (shard
// index and the topology epoch it has observed), a released-stream set
// recording streams migrated away, and single-stream snapshot/restore
// built on the checkpoint encoding (persist.go), which is what moves a
// live stream between shards without re-bootstrapping its filter pair.

// shardState is the cluster bookkeeping attached to a Server. The
// identity fields are atomics (read on the forward hot path and by
// scrapes); the released map is mutated only during migrations.
type shardState struct {
	index atomic.Int64 // shard index; -1 while not in a cluster
	epoch atomic.Int64 // highest topology epoch observed

	mu       sync.Mutex
	released map[string]int64 // sourceID -> epoch at which it was migrated away
}

// SetShardInfo declares this server to be shard index of a cluster at
// topology epoch. Index -1 (the default) means standalone.
func (s *Server) SetShardInfo(index int, epoch int64) {
	s.shard.index.Store(int64(index))
	s.shard.epoch.Store(epoch)
}

// ShardIndex returns the server's shard index, -1 when standalone.
func (s *Server) ShardIndex() int { return int(s.shard.index.Load()) }

// TopologyEpoch returns the highest topology epoch this shard has
// observed from its router.
func (s *Server) TopologyEpoch() int64 { return s.shard.epoch.Load() }

// ObserveEpoch folds a router-announced topology epoch into the shard's
// high-water mark.
func (s *Server) ObserveEpoch(epoch int64) {
	for {
		cur := s.shard.epoch.Load()
		if epoch <= cur || s.shard.epoch.CompareAndSwap(cur, epoch) {
			return
		}
	}
}

// SourceReleased reports whether sourceID was migrated away from this
// shard, and at which epoch. A forward for a released stream is a
// routing error (a stale owner): the shard rejects it so the update is
// never folded into a filter that stopped being authoritative.
func (s *Server) SourceReleased(sourceID string) (int64, bool) {
	s.shard.mu.Lock()
	defer s.shard.mu.Unlock()
	e, ok := s.shard.released[sourceID]
	return e, ok
}

// releasedCount returns how many streams have been migrated away.
func (s *Server) releasedCount() int {
	s.shard.mu.Lock()
	defer s.shard.mu.Unlock()
	return len(s.shard.released)
}

// SnapshotSource cuts a migration snapshot of one stream — the
// checkpoint encoding of its queries, counters, time map and filter
// state — marks the stream released at epoch, and returns the payload
// plus the last update seq it covers (the cutover ResumeSeq). From this
// moment the shard rejects forwards for the stream; the router replays
// anything past resumeSeq on the target.
func (s *Server) SnapshotSource(sourceID string, epoch int64) (payload []byte, resumeSeq int64, err error) {
	s.mu.RLock()
	st := s.sources[sourceID]
	var buf []byte
	var last int
	if st != nil {
		buf, last = appendSourceEntry(make([]byte, 0, 512), st)
	}
	s.mu.RUnlock()
	if st == nil {
		return nil, 0, fmt.Errorf("dsms: snapshot of unknown source %s", sourceID)
	}
	s.shard.mu.Lock()
	if s.shard.released == nil {
		s.shard.released = make(map[string]int64)
	}
	s.shard.released[sourceID] = epoch
	s.shard.mu.Unlock()
	s.ObserveEpoch(epoch)
	return buf, int64(last), nil
}

// RestoreSource installs a migration snapshot (a SnapshotSource
// payload) on this shard: queries are adopted or registered, the filter
// state restored bit-identically, and the stream un-released if it had
// previously been migrated away (a migrate-back). On a durable server
// the restored state is checkpointed synchronously before returning, so
// acknowledging the migration never races a crash that would lose the
// transferred filter. Returns the stream's id and the last update seq
// the snapshot covers.
func (s *Server) RestoreSource(payload []byte, epoch int64) (sourceID string, resumeSeq int64, err error) {
	c := wire.NewCursor(payload)
	id, last, err := s.restoreSourceEntry(&c)
	if err != nil {
		return "", 0, err
	}
	if !c.Done() {
		return "", 0, errBadCheckpoint("trailing bytes after source entry")
	}
	s.shard.mu.Lock()
	delete(s.shard.released, id)
	s.shard.mu.Unlock()
	s.ObserveEpoch(epoch)
	if s.db != nil {
		// The WAL never saw the transferred history, so the snapshot-
		// covered state must be durable before the migration is acked:
		// a post-ack crash then recovers the stream from this
		// checkpoint instead of losing it.
		if err := s.Checkpoint(); err != nil {
			return "", 0, fmt.Errorf("dsms: checkpointing restored source %s: %w", id, err)
		}
	}
	return id, int64(last), nil
}

// ClusterStreamz is the cluster block of the /streamz status document a
// shard serves.
type ClusterStreamz struct {
	ShardIndex      int   `json:"shard_index"`
	TopologyEpoch   int64 `json:"topology_epoch"`
	OwnedStreams    int   `json:"owned_streams"`
	ReleasedStreams int   `json:"released_streams"`
}

// clusterStreamz returns the cluster block, or nil while standalone.
func (s *Server) clusterStreamz() *ClusterStreamz {
	idx := s.ShardIndex()
	if idx < 0 {
		return nil
	}
	s.mu.RLock()
	owned := len(s.sources)
	s.mu.RUnlock()
	released := s.releasedCount()
	return &ClusterStreamz{
		ShardIndex:      idx,
		TopologyEpoch:   s.TopologyEpoch(),
		OwnedStreams:    owned - released,
		ReleasedStreams: released,
	}
}
