// Package dsms composes the DKF protocol into the end-to-end stream
// management system the paper's Figure 1 sketches and its future-work
// list calls for: a central server that accepts continuous queries with
// precision constraints, installs a Kalman filter per remote source,
// receives the (suppressed) update streams, and answers value queries
// from its predictions; plus the source-side agent that runs the mirror
// filter and decides what to transmit.
//
// Two transports are provided: direct in-process calls (deterministic,
// used by tests and the experiment harness) and a binary framed TCP
// protocol with pipelined cumulative acks (internal/dsms/wire,
// cmd/dkf-server and cmd/dkf-source).
package dsms

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"streamkf/internal/core"
	"streamkf/internal/model"
	"streamkf/internal/stream"
	"streamkf/internal/synopsis"
	"streamkf/internal/telemetry"
)

// Catalog resolves model names to stream models. The server and its
// sources share a catalog, which is how "the target sensor activates a
// mirror KF with the same parameters" without shipping matrices.
type Catalog struct {
	mu     sync.RWMutex
	models map[string]model.Model
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{models: make(map[string]model.Model)}
}

// DefaultCatalog returns a catalog preloaded with the paper's models for
// single-attribute streams sampled at interval dt, plus the 2-D tracking
// models of Example 1: "constant", "linear", "acceleration", "jerk",
// "constant2d", "linear2d". Q = R = 0.05 per the paper's experiments.
func DefaultCatalog(dt float64) *Catalog {
	c := NewCatalog()
	const q, r = 0.05, 0.05
	c.Register(model.Constant(1, q, r))
	c.Register(model.Linear(1, dt, q, r))
	c.Register(model.Acceleration(1, dt, q, r))
	c.Register(model.Jerk(1, dt, q, r))
	m2 := model.Constant(2, q, r)
	m2.Name = "constant2d"
	c.Register(m2)
	l2 := model.Linear(2, dt, q, r)
	l2.Name = "linear2d"
	c.Register(l2)
	return c
}

// Register adds (or replaces) a model under its Name.
func (c *Catalog) Register(m model.Model) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.models[m.Name] = m
}

// Resolve returns the model registered under name.
func (c *Catalog) Resolve(name string) (model.Model, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m, ok := c.models[name]
	if !ok {
		return model.Model{}, fmt.Errorf("dsms: unknown model %q", name)
	}
	return m, nil
}

// Names returns the registered model names, sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.models))
	for n := range c.models {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// sourceState is the server's bookkeeping for one source object.
//
// Topology fields (id, queries, cfg) are guarded by the server's mu;
// runtime fields (everything below the mutex) are guarded by the
// per-source mu, so ingest and queries on different sources never
// contend. The locking order is Server.mu before sourceState.mu, and
// Server.mu is never acquired while holding a sourceState.mu.
type sourceState struct {
	id      string
	cfg     core.Config
	queries []stream.Query

	mu      sync.Mutex
	node    *core.ServerNode
	ins     *sourceInstruments // update/byte counters; single source of truth for Stats
	lastSeq int                // seq of the last transmitted update (-1 before any)
	history *synopsis.Store    // optional historical-query recorder
	times   timeMap            // seq-to-time mapping from update timestamps
	walBuf  []byte             // reusable WAL record encode buffer (durable servers)
	ckptSeq int                // last update seq covered by a checkpoint (-1 before any)
}

// Server is the central DSMS node.
//
// mu is a read-write lock over the topology only: the source map, the
// byQuery index, and each source's registered queries and shared filter
// configuration. The streaming hot path (HandleUpdate, Answer) takes it
// in read mode and then locks just the one source it touches, so
// concurrent ingest and queries on different streams proceed in
// parallel; registration-time calls take it in write mode.
type Server struct {
	catalog *Catalog
	tel     *serverTelemetry

	mu      sync.RWMutex
	sources map[string]*sourceState
	byQuery map[string]*sourceState // query id -> owning source

	aggMu     sync.Mutex
	aggregate map[string]AggregateQuery

	alertMu        sync.Mutex
	alerts         map[string]*alertState
	alertsBySource map[string][]string

	subMu        sync.Mutex
	subs         map[int]*subscription
	subNext      int
	subsBySource map[string][]int

	winMu   sync.Mutex
	windows map[string]WindowQuery

	// db is the durability layer (write-ahead log + checkpoints); nil
	// on an in-memory server. See persist.go.
	db *durability
}

// NewServer returns a server resolving models from catalog. Every
// server carries a telemetry registry; instrumentation is always on
// because recording is allocation-free (see internal/telemetry).
func NewServer(catalog *Catalog) *Server {
	return &Server{
		catalog: catalog,
		tel:     newServerTelemetry(telemetry.NewRegistry()),
		sources: make(map[string]*sourceState),
		byQuery: make(map[string]*sourceState),
	}
}

// Telemetry returns the server's metric registry — what the admin
// endpoint scrapes and tests assert against.
func (s *Server) Telemetry() *telemetry.Registry { return s.tel.reg }

// lookupQuery resolves a query id to its owning source under the
// topology read-lock.
func (s *Server) lookupQuery(queryID string) (*sourceState, bool) {
	s.mu.RLock()
	st, ok := s.byQuery[queryID]
	s.mu.RUnlock()
	return st, ok
}

// Register installs a continuous query. Multiple queries over the same
// source share one filter pair under the paper's simplification: the
// effective precision width at the source is the minimum Δ over its
// queries (every query's constraint is then satisfied), and the smallest
// requested smoothing factor wins. Registration must complete before the
// source sends its bootstrap update; afterwards it fails, because
// reinstalling a filter would desynchronize the mirror.
func (s *Server) Register(q stream.Query) error {
	if err := q.Validate(); err != nil {
		return err
	}
	m, err := s.catalog.Resolve(q.Model)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Log the registration attempt before the remaining in-memory
	// checks: a record whose registration is then rejected (duplicate
	// id, model conflict) is rejected identically at replay, so the
	// log never needs unwinding.
	if err := s.db.appendRegister(q); err != nil {
		return fmt.Errorf("dsms: logging registration: %w", err)
	}
	st := s.sources[q.SourceID]
	if st == nil {
		st = &sourceState{id: q.SourceID, ins: s.tel.source(q.SourceID), lastSeq: -1, ckptSeq: -1}
		s.sources[q.SourceID] = st
	}
	st.mu.Lock()
	streaming := st.node != nil
	st.mu.Unlock()
	if streaming {
		return fmt.Errorf("dsms: source %s already streaming; cannot register %s", q.SourceID, q.ID)
	}
	for _, existing := range st.queries {
		if existing.ID == q.ID {
			return fmt.Errorf("dsms: duplicate query id %s", q.ID)
		}
	}
	st.queries = append(st.queries, q)
	cfg := core.Config{SourceID: q.SourceID, Model: m, Delta: q.Delta, F: q.F}
	if len(st.queries) > 1 {
		// Recompute the shared configuration. All queries must agree on
		// the model — mixed models over one source would need separate
		// filter pairs, which the paper excludes ("we do not have
		// queries with overlapping sources").
		if st.cfg.Model.Name != m.Name {
			st.queries = st.queries[:len(st.queries)-1]
			return fmt.Errorf("dsms: source %s already registered with model %s; query %s wants %s",
				q.SourceID, st.cfg.Model.Name, q.ID, m.Name)
		}
		if q.Delta < st.cfg.Delta {
			st.cfg.Delta = q.Delta
		}
		if q.F > 0 && (st.cfg.F == 0 || q.F < st.cfg.F) {
			st.cfg.F = q.F
		}
		s.byQuery[q.ID] = st
		return nil
	}
	st.cfg = cfg
	s.byQuery[q.ID] = st
	return nil
}

// InstallFor returns the filter configuration a connecting source agent
// must run — the handshake payload. It errors when no query targets the
// source.
func (s *Server) InstallFor(sourceID string) (core.Config, error) {
	s.mu.RLock()
	st := s.sources[sourceID]
	var cfg core.Config
	if st != nil && len(st.queries) > 0 {
		cfg = st.cfg
	}
	s.mu.RUnlock()
	if st == nil || cfg.SourceID == "" {
		return core.Config{}, fmt.Errorf("dsms: no query registered for source %s", sourceID)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.node == nil {
		node, err := core.NewServerNode(cfg)
		if err != nil {
			return core.Config{}, err
		}
		st.node = node
	}
	return cfg, nil
}

// HandleUpdate folds one transmitted update into the source's server
// filter, then evaluates any alerts watching that source (outside all
// locks, since alert evaluation re-enters Answer). Only the one source's
// runtime lock is held while the filter steps, so updates from different
// sources fold in concurrently.
func (s *Server) HandleUpdate(u core.Update) error {
	s.mu.RLock()
	st := s.sources[u.SourceID]
	s.mu.RUnlock()
	if st == nil {
		return fmt.Errorf("dsms: update for uninstalled source %s", u.SourceID)
	}
	st.mu.Lock()
	if st.node == nil {
		st.mu.Unlock()
		return fmt.Errorf("dsms: update for uninstalled source %s", u.SourceID)
	}
	if err := st.node.ApplyUpdate(u); err != nil {
		st.mu.Unlock()
		return err
	}
	if err := st.recordHistory(u.Seq, u.Values, u.Bootstrap); err != nil {
		st.mu.Unlock()
		return fmt.Errorf("dsms: recording history for %s: %w", u.SourceID, err)
	}
	st.times.observe(u.Seq, u.Time)
	// Every sequence number skipped between consecutive transmissions is
	// a reading the source suppressed (or outlier-rejected): the DKF
	// contract is that the server's prediction covered it. Counting the
	// gap server-side keeps the suppression ratio observable without any
	// extra wire traffic.
	if !u.Bootstrap && st.lastSeq >= 0 && u.Seq > st.lastSeq+1 {
		st.ins.suppressed.Add(int64(u.Seq - st.lastSeq - 1))
	}
	st.lastSeq = u.Seq
	st.ins.updates.Inc()
	st.ins.bytes.Add(int64(u.WireBytes()))
	st.ins.seq.SetInt(int64(st.node.Seq()))
	st.ins.observeHealth(st.node.Health())
	// Log after the apply, under the same lock, before the caller can
	// ack: rejected updates never enter the log, and the per-source
	// record order equals the apply order (see persist.go).
	if s.db != nil && !s.db.replaying {
		if err := s.db.appendUpdate(st, &u); err != nil {
			st.mu.Unlock()
			return fmt.Errorf("dsms: logging update %s/%d: %w", u.SourceID, u.Seq, err)
		}
	}
	st.mu.Unlock()
	s.checkAlerts(u.SourceID, u.Seq)
	s.notifySubscribers(u.SourceID, u.Seq)
	if s.db != nil {
		s.maybeCheckpoint()
	}
	return nil
}

// Answer evaluates the named query at reading index seq: it advances the
// source's filter prediction to seq and returns the predicted values.
// Only the owning source's runtime lock is taken, so queries over
// different streams evaluate in parallel.
func (s *Server) Answer(queryID string, seq int) ([]float64, error) {
	st, ok := s.lookupQuery(queryID)
	if !ok {
		return nil, fmt.Errorf("dsms: unknown query %s", queryID)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.node == nil {
		return nil, fmt.Errorf("dsms: source %s not yet streaming", st.id)
	}
	if seq > st.node.Seq() {
		st.node.AdvanceTo(seq)
	}
	vals, ok := st.node.Estimate()
	if !ok {
		return nil, fmt.Errorf("dsms: source %s has no bootstrap yet", st.id)
	}
	return vals, nil
}

// StepAll advances every streaming source's prediction to reading index
// seq, fanning the per-stream filter steps over a bounded worker pool.
// This is the batch path for a central clock tick: instead of paying one
// Answer round-trip per stream, the server brings all filters forward in
// parallel. workers <= 0 uses GOMAXPROCS. It returns the number of
// sources whose prediction actually advanced; sources without a
// bootstrap yet, or already at or past seq, are skipped.
func (s *Server) StepAll(seq, workers int) int {
	start := nowNanos()
	defer func() { s.tel.stepAllNs.Observe(nowNanos() - start) }()
	s.mu.RLock()
	batch := make([]*sourceState, 0, len(s.sources))
	for _, st := range s.sources {
		batch = append(batch, st)
	}
	s.mu.RUnlock()
	if len(batch) == 0 {
		return 0
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(batch) {
		workers = len(batch)
	}
	var advanced atomic.Int64
	work := make(chan *sourceState)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for st := range work {
				st.mu.Lock()
				if st.node != nil && st.node.Seq() < seq {
					// Batch advances move the stale-update rejection
					// boundary, so they are logged (after advancing,
					// same lock) for exact replay; a log failure here
					// surfaces on the next ingest append.
					st.node.AdvanceTo(seq)
					advanced.Add(1)
					if s.db != nil && !s.db.replaying {
						_ = s.db.appendAdvance(st, seq)
					}
				}
				st.mu.Unlock()
			}
		}()
	}
	for _, st := range batch {
		work <- st
	}
	close(work)
	wg.Wait()
	s.tel.stepAllAdvanced.Add(advanced.Load())
	return int(advanced.Load())
}

// SourceIDs returns the registered source ids, sorted.
func (s *Server) SourceIDs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.sources))
	for id := range s.sources {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Stats reports one source's ingest counters, filter position, and
// filter health — the per-stream record behind the /streamz endpoint
// (hence the JSON tags).
type Stats struct {
	SourceID string  `json:"source_id"`
	Queries  int     `json:"queries"`
	Model    string  `json:"model,omitempty"`
	Delta    float64 `json:"delta,omitempty"`

	Updates        int     `json:"updates"`
	Suppressed     int     `json:"suppressed"`
	SuppressionPct float64 `json:"suppression_pct"`
	Bytes          int     `json:"bytes"`
	Seq            int     `json:"seq"`

	NIS         float64 `json:"nis"`
	NISValid    bool    `json:"nis_valid"`
	Whiteness   float64 `json:"whiteness"`
	HealthReady bool    `json:"health_ready"`
	Healthy     bool    `json:"healthy"`

	// Durability status (meaningful when Durable): every update up to
	// Seq is in the write-ahead log, and CheckpointSeq is the last
	// update sequence captured by a checkpoint (-1 before the first).
	Durable       bool `json:"durable"`
	CheckpointSeq int  `json:"checkpoint_seq,omitempty"`
}

// Stats returns per-source statistics, sorted by source id. The update
// and byte counts are read from the telemetry counters — the same
// values /metrics exports, so the two views cannot drift. Each source's
// node state is read under its runtime lock, so the snapshot of any one
// source is consistent (the set of sources is fixed under the topology
// read-lock, but sources keep streaming while others are read).
func (s *Server) Stats() []Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Stats, 0, len(s.sources))
	for id, st := range s.sources {
		stat := Stats{SourceID: id, Queries: len(st.queries), Model: st.cfg.Model.Name, Delta: st.cfg.Delta, Healthy: true, Durable: s.db != nil}
		st.mu.Lock()
		stat.CheckpointSeq = st.ckptSeq
		stat.Updates = int(st.ins.updates.Value())
		stat.Suppressed = int(st.ins.suppressed.Value())
		stat.Bytes = int(st.ins.bytes.Value())
		if st.node != nil {
			stat.Seq = st.node.Seq()
			h := st.node.Health()
			stat.NIS, stat.NISValid = h.NIS, h.NISValid
			stat.Whiteness, stat.HealthReady, stat.Healthy = h.Whiteness, h.Ready, h.Healthy
		}
		st.mu.Unlock()
		if total := stat.Updates + stat.Suppressed; total > 0 {
			stat.SuppressionPct = 100 * float64(stat.Suppressed) / float64(total)
		}
		out = append(out, stat)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SourceID < out[j].SourceID })
	return out
}

// Agent is the source-side runtime: it performs the install handshake,
// runs the DKF source node over a reading stream, and ships updates
// through a transport.
type Agent struct {
	sourceID string
	node     *core.SourceNode
	send     core.Transport
	ins      *AgentInstruments // optional; nil-safe record methods
}

// NewAgent builds an agent for sourceID from an installed configuration
// (obtained via Server.InstallFor or the TCP handshake) and a transport
// for updates.
func NewAgent(cfg core.Config, send core.Transport) (*Agent, error) {
	if send == nil {
		return nil, errors.New("dsms: nil transport")
	}
	node, err := core.NewSourceNode(cfg)
	if err != nil {
		return nil, err
	}
	return &Agent{sourceID: cfg.SourceID, node: node, send: send}, nil
}

// Instrument attaches telemetry to the agent. Call before streaming;
// a nil set (the default) records nothing.
func (a *Agent) Instrument(ins *AgentInstruments) { a.ins = ins }

// Offer processes one reading, transmitting if the protocol requires.
// It returns whether an update was sent.
func (a *Agent) Offer(r stream.Reading) (sent bool, err error) {
	u, _, err := a.node.Process(r)
	if err != nil {
		return false, err
	}
	if u == nil {
		a.ins.recordOffer(false, 0)
		return false, nil
	}
	a.ins.recordOffer(true, u.WireBytes())
	return true, a.send.Send(*u)
}

// Run drives an entire source stream through the agent.
func (a *Agent) Run(src stream.Source) error {
	for {
		r, ok := src.Next()
		if !ok {
			return nil
		}
		if _, err := a.Offer(r); err != nil {
			return err
		}
	}
}

// Stats exposes the underlying source node counters.
func (a *Agent) Stats() core.SourceStats { return a.node.Stats() }
