// Package dsms composes the DKF protocol into the end-to-end stream
// management system the paper's Figure 1 sketches and its future-work
// list calls for: a central server that accepts continuous queries with
// precision constraints, installs a Kalman filter per remote source,
// receives the (suppressed) update streams, and answers value queries
// from its predictions; plus the source-side agent that runs the mirror
// filter and decides what to transmit.
//
// Three transports are provided: direct in-process calls
// (deterministic, used by tests and the experiment harness), a binary
// framed TCP protocol with pipelined cumulative acks (internal/dsms/
// wire, cmd/dkf-server and cmd/dkf-source), and a connectionless UDP
// datagram mode feeding the shard-per-core ingest engine (udp.go,
// ingest.go) for very high source counts.
package dsms

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"streamkf/internal/core"
	"streamkf/internal/dsms/engine"
	"streamkf/internal/dsms/wire"
	"streamkf/internal/model"
	"streamkf/internal/stream"
	"streamkf/internal/synopsis"
	"streamkf/internal/telemetry"
	"streamkf/internal/trace"
)

// Catalog resolves model names to stream models. The server and its
// sources share a catalog, which is how "the target sensor activates a
// mirror KF with the same parameters" without shipping matrices.
type Catalog struct {
	mu     sync.RWMutex
	models map[string]model.Model
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{models: make(map[string]model.Model)}
}

// DefaultCatalog returns a catalog preloaded with the paper's models for
// single-attribute streams sampled at interval dt, plus the 2-D tracking
// models of Example 1: "constant", "linear", "acceleration", "jerk",
// "constant2d", "linear2d". Q = R = 0.05 per the paper's experiments.
func DefaultCatalog(dt float64) *Catalog {
	c := NewCatalog()
	const q, r = 0.05, 0.05
	c.Register(model.Constant(1, q, r))
	c.Register(model.Linear(1, dt, q, r))
	c.Register(model.Acceleration(1, dt, q, r))
	c.Register(model.Jerk(1, dt, q, r))
	m2 := model.Constant(2, q, r)
	m2.Name = "constant2d"
	c.Register(m2)
	l2 := model.Linear(2, dt, q, r)
	l2.Name = "linear2d"
	c.Register(l2)
	return c
}

// Register adds (or replaces) a model under its Name.
func (c *Catalog) Register(m model.Model) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.models[m.Name] = m
}

// Resolve returns the model registered under name.
func (c *Catalog) Resolve(name string) (model.Model, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m, ok := c.models[name]
	if !ok {
		return model.Model{}, fmt.Errorf("dsms: unknown model %q", name)
	}
	return m, nil
}

// Names returns the registered model names, sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.models))
	for n := range c.models {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// sourceState is the server's bookkeeping for one source object.
//
// Topology fields (id, queries, cfg) are guarded by the server's mu;
// runtime fields (everything below the mutex) are guarded by the
// per-source mu, so ingest and queries on different sources never
// contend. The locking order is Server.mu before sourceState.mu, and
// Server.mu is never acquired while holding a sourceState.mu.
type sourceState struct {
	id      string
	cfg     core.Config
	queries []stream.Query

	// version counts data mutations of this stream's filter state —
	// update applies, batch advances, snapshot restores. Aggregate
	// memos sum member versions as their change detector (aggregate.go),
	// so it must be bumped by every mutation that can move a query
	// answer, and only by those (Answer's internal advance does not
	// bump: an answer at seq is a pure function of the state the memo
	// stamped). Atomic so memo validation needs no per-source lock.
	version atomic.Int64

	mu      sync.Mutex
	node    *core.ServerNode
	ins     *sourceInstruments // update/byte counters; single source of truth for Stats
	lastSeq int                // seq of the last transmitted update (-1 before any)
	history *synopsis.Store    // optional historical-query recorder
	times   timeMap            // seq-to-time mapping from update timestamps
	walBuf  []byte             // reusable WAL record encode buffer (durable servers)
	ckptSeq int                // last update seq covered by a checkpoint (-1 before any)

	// rec is the stream's flight recorder; nil unless tracing is
	// enabled. lastTrace is the trace id of the latest applied update,
	// linking query answers back to the update that shaped them.
	rec       *trace.Recorder
	lastTrace int64
}

// healthSnapshot reads the stream's current filter health under its
// runtime lock — the scrape-time callback behind the lazy whiteness
// gauges. Before bootstrap the stream reports the resting healthy
// state, matching the presumption the eager gauges used to publish.
func (st *sourceState) healthSnapshot() core.FilterHealth {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.node == nil {
		return core.FilterHealth{Healthy: true}
	}
	return st.node.Health()
}

// Server is the central DSMS node.
//
// mu is a read-write lock over the topology only: the source map, the
// byQuery index, and each source's registered queries and shared filter
// configuration. The streaming hot path (HandleUpdate, Answer) takes it
// in read mode and then locks just the one source it touches, so
// concurrent ingest and queries on different streams proceed in
// parallel; registration-time calls take it in write mode.
type Server struct {
	catalog *Catalog
	tel     *serverTelemetry

	mu      sync.RWMutex
	sources map[string]*sourceState
	byQuery map[string]*sourceState // query id -> owning source

	aggMu     sync.Mutex
	aggregate map[string]AggregateQuery
	aggMemo   map[string]*aggMemo // per-aggregate answer memo (aggregate.go)

	alertMu        sync.Mutex
	alerts         map[string]*alertState
	alertsBySource map[string][]string
	// alertCount shadows len(alerts) so the post-apply hook on the
	// ingest hot path can skip the alert lock entirely while no alerts
	// are registered — the common case for pure-ingest servers.
	alertCount atomic.Int32

	subMu        sync.Mutex
	subs         map[int]*subscription
	subNext      int
	subsBySource map[string][]int
	// subCount shadows len(subs), for the same hot-path skip.
	subCount atomic.Int32

	winMu   sync.Mutex
	windows map[string]WindowQuery

	// db is the durability layer (write-ahead log + checkpoints); nil
	// on an in-memory server. See persist.go.
	db *durability

	// engMu guards attachment of the shard ingest engine. eng, engIns
	// and shardLogs are written once by StartEngine and immutable after;
	// the shard workers read them without the lock. See ingest.go.
	engMu     sync.Mutex
	eng       *engine.Engine
	engIns    *engineInstruments
	shardLogs []shardLog

	// laneMu guards the UDP reader-lane instrument table, indexed by
	// lane id. Lanes are registered once per id (a second UDP server on
	// the same server shares the instruments, as the registry would
	// dedupe them anyway). See telemetry.go and udp.go.
	laneMu  sync.Mutex
	laneIns []*laneInstruments

	// traceOpts, guarded by mu, is non-nil while per-stream tracing is
	// on; new and existing sources get a flight recorder built from it.
	traceOpts *trace.Options

	// selfmon, guarded by selfMu, is the self-monitoring subsystem:
	// history ring, self-stream filters, health verdict. Nil until
	// EnableSelfMon. See selfmon.go.
	selfMu  sync.Mutex
	selfmon *SelfMonitor

	// shard is the cluster identity and released-stream bookkeeping;
	// inert (index -1) while the server runs standalone. See shard.go.
	shard shardState
}

// NewServer returns a server resolving models from catalog. Every
// server carries a telemetry registry; instrumentation is always on
// because recording is allocation-free (see internal/telemetry).
func NewServer(catalog *Catalog) *Server {
	s := &Server{
		catalog: catalog,
		tel:     newServerTelemetry(telemetry.NewRegistry()),
		sources: make(map[string]*sourceState),
		byQuery: make(map[string]*sourceState),
	}
	s.shard.index.Store(-1)
	return s
}

// Telemetry returns the server's metric registry — what the admin
// endpoint scrapes and tests assert against.
func (s *Server) Telemetry() *telemetry.Registry { return s.tel.reg }

// EnableTracing turns on the per-stream flight recorder: every source —
// already registered or yet to come — gets a ring of recent trace
// events and a divergence audit, served by the /tracez admin endpoints.
// Recording is allocation-free, so tracing is safe to leave on in
// production; the knob exists because the ring costs memory per stream.
func (s *Server) EnableTracing(opts trace.Options) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o := opts
	s.traceOpts = &o
	for _, st := range s.sources {
		st.mu.Lock()
		if st.rec == nil {
			st.rec = trace.New(o)
		}
		st.mu.Unlock()
	}
}

// TraceEnabled reports whether per-stream tracing is on.
func (s *Server) TraceEnabled() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.traceOpts != nil
}

// lookupQuery resolves a query id to its owning source under the
// topology read-lock.
func (s *Server) lookupQuery(queryID string) (*sourceState, bool) {
	s.mu.RLock()
	st, ok := s.byQuery[queryID]
	s.mu.RUnlock()
	return st, ok
}

// Register installs a continuous query. Multiple queries over the same
// source share one filter pair under the paper's simplification: the
// effective precision width at the source is the minimum Δ over its
// queries (every query's constraint is then satisfied), and the smallest
// requested smoothing factor wins. Registration must complete before the
// source sends its bootstrap update; afterwards it fails, because
// reinstalling a filter would desynchronize the mirror.
func (s *Server) Register(q stream.Query) error {
	if err := q.Validate(); err != nil {
		return err
	}
	m, err := s.catalog.Resolve(q.Model)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Log the registration attempt before the remaining in-memory
	// checks: a record whose registration is then rejected (duplicate
	// id, model conflict) is rejected identically at replay, so the
	// log never needs unwinding.
	if err := s.db.appendRegister(q); err != nil {
		return fmt.Errorf("dsms: logging registration: %w", err)
	}
	st := s.sources[q.SourceID]
	if st == nil {
		st = &sourceState{id: q.SourceID, lastSeq: -1, ckptSeq: -1}
		st.ins = s.tel.source(q.SourceID, st.healthSnapshot)
		if s.traceOpts != nil {
			st.rec = trace.New(*s.traceOpts)
		}
		s.sources[q.SourceID] = st
	}
	st.mu.Lock()
	streaming := st.node != nil
	st.mu.Unlock()
	if streaming {
		return fmt.Errorf("dsms: source %s already streaming; cannot register %s", q.SourceID, q.ID)
	}
	for _, existing := range st.queries {
		if existing.ID == q.ID {
			return fmt.Errorf("dsms: duplicate query id %s", q.ID)
		}
	}
	st.queries = append(st.queries, q)
	cfg := core.Config{SourceID: q.SourceID, Model: m, Delta: q.Delta, F: q.F}
	if len(st.queries) > 1 {
		// Recompute the shared configuration. All queries must agree on
		// the model — mixed models over one source would need separate
		// filter pairs, which the paper excludes ("we do not have
		// queries with overlapping sources").
		if st.cfg.Model.Name != m.Name {
			st.queries = st.queries[:len(st.queries)-1]
			return fmt.Errorf("dsms: source %s already registered with model %s; query %s wants %s",
				q.SourceID, st.cfg.Model.Name, q.ID, m.Name)
		}
		if q.Delta < st.cfg.Delta {
			st.cfg.Delta = q.Delta
		}
		if q.F > 0 && (st.cfg.F == 0 || q.F < st.cfg.F) {
			st.cfg.F = q.F
		}
		s.byQuery[q.ID] = st
		return nil
	}
	st.cfg = cfg
	s.byQuery[q.ID] = st
	return nil
}

// InstallFor returns the filter configuration a connecting source agent
// must run — the handshake payload. It errors when no query targets the
// source.
func (s *Server) InstallFor(sourceID string) (core.Config, error) {
	s.mu.RLock()
	st := s.sources[sourceID]
	var cfg core.Config
	if st != nil && len(st.queries) > 0 {
		cfg = st.cfg
	}
	s.mu.RUnlock()
	if st == nil || cfg.SourceID == "" {
		return core.Config{}, fmt.Errorf("dsms: no query registered for source %s", sourceID)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.node == nil {
		node, err := core.NewServerNode(cfg)
		if err != nil {
			return core.Config{}, err
		}
		st.node = node
	}
	return cfg, nil
}

// HandleUpdate folds one transmitted update into the source's server
// filter, then evaluates any alerts watching that source (outside all
// locks, since alert evaluation re-enters Answer). Only the one source's
// runtime lock is held while the filter steps, so updates from different
// sources fold in concurrently.
func (s *Server) HandleUpdate(u core.Update) error {
	return s.HandleUpdateTraced(u, nil, 0)
}

// HandleUpdateTraced is HandleUpdate with trace context attached: wd is
// the source's decision evidence (from a TagTrace frame; nil when the
// peer sent none) and wireBytes is the received update frame size
// (0 when the update did not arrive over the wire). With tracing off
// both are recorded nowhere and the two entry points behave
// identically.
func (s *Server) HandleUpdateTraced(u core.Update, wd *trace.DecisionInfo, wireBytes int) error {
	s.mu.RLock()
	st := s.sources[u.SourceID]
	s.mu.RUnlock()
	if st == nil {
		return fmt.Errorf("dsms: update for uninstalled source %s", u.SourceID)
	}
	st.mu.Lock()
	sampled, tid, err := s.applyLocked(st, &u, wd, wireBytes)
	if err != nil {
		st.mu.Unlock()
		return err
	}
	// Log after the apply, under the same lock, before the caller can
	// ack: rejected updates never enter the log, and the per-source
	// record order equals the apply order (see persist.go).
	if s.db != nil && !s.db.replaying {
		if err := s.db.appendUpdate(st, &u); err != nil {
			st.mu.Unlock()
			return fmt.Errorf("dsms: logging update %s/%d: %w", u.SourceID, u.Seq, err)
		}
		if sampled {
			st.rec.Record(&trace.Event{TraceID: tid, Seq: int64(u.Seq), Kind: trace.KindWAL, Aux: int64(len(st.walBuf))})
		}
	}
	st.mu.Unlock()
	s.checkAlerts(u.SourceID, u.Seq)
	s.notifySubscribers(u.SourceID, u.Seq)
	if s.db != nil {
		s.maybeCheckpoint()
	}
	return nil
}

// RecordForwardHop splices a router's hop evidence (carried by the
// 101-byte TagTrace form, see wire/hoptrace.go) into the stream's
// flight recorder: fwd_rx/fwd_tx events stamped with the router's own
// timestamps, keyed by the traceID the source minted. Called by the
// transport before the update's apply so the ring preserves causal
// order. A no-op when tracing is off, the source is unknown, or the
// sequence is not sampled.
func (s *Server) RecordForwardHop(sourceID string, traceID, seq int64, hop wire.TraceHop) {
	s.mu.RLock()
	st := s.sources[sourceID]
	s.mu.RUnlock()
	if st == nil || st.rec == nil || !st.rec.Sampled(seq) {
		return
	}
	st.rec.Record(&trace.Event{TraceID: traceID, Seq: seq, At: hop.RxUnixNs, Kind: trace.KindFwdRx, Aux: int64(hop.Idx)})
	st.rec.Record(&trace.Event{TraceID: traceID, Seq: seq, At: hop.TxUnixNs, Kind: trace.KindFwdTx, Aux: hop.Epoch})
}

// applyLocked is the single apply body shared by the synchronous TCP
// path (HandleUpdateTraced) and the shard engine's batch path
// (applyRun): filter step, history, time map, suppression accounting,
// telemetry, trace and audit. Both transports therefore produce
// bit-identical filter trajectories for the same update sequence.
// Caller holds st.mu. WAL appending stays with the caller because the
// two paths commit differently (per-update vs group commit). Returns
// whether this apply was trace-sampled and the trace id it used.
func (s *Server) applyLocked(st *sourceState, u *core.Update, wd *trace.DecisionInfo, wireBytes int) (sampled bool, tid int64, err error) {
	if st.node == nil {
		return false, 0, fmt.Errorf("dsms: update for uninstalled source %s", u.SourceID)
	}
	if err := st.node.ApplyUpdate(*u); err != nil {
		return false, 0, err
	}
	st.version.Add(1)
	if err := st.recordHistory(u.Seq, u.Values, u.Bootstrap); err != nil {
		return false, 0, fmt.Errorf("dsms: recording history for %s: %w", u.SourceID, err)
	}
	st.times.observe(u.Seq, u.Time)
	// Every sequence number skipped between consecutive transmissions is
	// a reading the source suppressed (or outlier-rejected): the DKF
	// contract is that the server's prediction covered it. Counting the
	// gap server-side keeps the suppression ratio observable without any
	// extra wire traffic.
	if !u.Bootstrap && st.lastSeq >= 0 && u.Seq > st.lastSeq+1 {
		st.ins.suppressed.Add(int64(u.Seq - st.lastSeq - 1))
	}
	st.lastSeq = u.Seq
	st.ins.updates.Inc()
	st.ins.bytes.Add(int64(u.WireBytes()))
	st.ins.seq.SetInt(int64(st.node.Seq()))
	nis, nisOK := st.node.LastNIS()
	if nisOK {
		st.ins.nis.Set(nis)
	}
	// Trace the apply under the same lock, after the filter stepped:
	// the recorded evidence (innovation, NIS) is exactly what this
	// update produced. st.cfg is written only before the source starts
	// streaming, so reading Delta here needs no topology lock.
	if wd != nil {
		tid = wd.TraceID
	}
	sampled = st.rec != nil && st.rec.Sampled(int64(u.Seq))
	innov, innovOK := st.node.LastInnovation()
	if sampled {
		if wireBytes > 0 {
			st.rec.Record(&trace.Event{TraceID: tid, Seq: int64(u.Seq), Kind: trace.KindWireRx, Aux: int64(wireBytes)})
		}
		if wd != nil {
			// At carries the source's decision timestamp when the hop
			// extension supplied one (zero lets Record stamp arrival
			// time), so spliced cross-node trails sort by source time.
			st.rec.Record(&trace.Event{
				TraceID: wd.TraceID, Seq: wd.Seq, At: wd.At, Kind: trace.KindDecision, Dec: wd.Decision,
				Raw: wd.Raw, Value: wd.Smoothed, Pred: wd.Pred,
				Residual: wd.Residual, Delta: wd.Delta, NIS: wd.NIS,
			})
		}
		ev := trace.Event{TraceID: tid, Seq: int64(u.Seq), Kind: trace.KindApply, Delta: st.cfg.Delta}
		if len(u.Values) > 0 {
			ev.Value = u.Values[0]
		}
		if u.Bootstrap {
			ev.Dec = trace.DecisionBootstrap
		} else if innovOK {
			ev.Residual = innov
			if nisOK {
				ev.NIS = nis
			}
		}
		st.rec.Record(&ev)
	}
	if st.rec != nil {
		st.lastTrace = tid
		// The divergence audit sees every non-bootstrap apply, sampled
		// or not: a transmitted update whose server-side innovation is
		// within δ is mirror-desync evidence the audit must not miss.
		if !u.Bootstrap && innovOK {
			st.rec.Audit().Observe(int64(u.Seq), innov, st.cfg.Delta)
		}
	}
	return sampled, tid, nil
}

// Answer evaluates the named query at reading index seq: it advances the
// source's filter prediction to seq and returns the predicted values.
// Only the owning source's runtime lock is taken, so queries over
// different streams evaluate in parallel.
func (s *Server) Answer(queryID string, seq int) ([]float64, error) {
	st, ok := s.lookupQuery(queryID)
	if !ok {
		return nil, fmt.Errorf("dsms: unknown query %s", queryID)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.node == nil {
		return nil, fmt.Errorf("dsms: source %s not yet streaming", st.id)
	}
	if seq > st.node.Seq() {
		st.node.AdvanceTo(seq)
	}
	vals, ok := st.node.Estimate()
	if !ok {
		return nil, fmt.Errorf("dsms: source %s has no bootstrap yet", st.id)
	}
	if st.rec != nil {
		// Close the causal chain: this answer was shaped by the stream's
		// latest applied update, so it inherits that update's trace id.
		ev := trace.Event{TraceID: st.lastTrace, Seq: int64(seq), Kind: trace.KindAnswer}
		if len(vals) > 0 {
			ev.Value = vals[0]
		}
		st.rec.Record(&ev)
	}
	return vals, nil
}

// defaultWorkers is the one parallelism knob shared by the batch
// paths: StepAll's worker pool and the ingest engine's shard count
// both default to it, so tuning GOMAXPROCS tunes both.
func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// advanceOne brings one stream's prediction forward to reading index
// seq, returning whether it actually advanced. This is the single
// advance body shared by the pooled StepAll path and the shard-affine
// path (stepAllSharded in ingest.go): both execute exactly these
// operations under the same per-source lock, so the two paths produce
// bit-identical trajectories by construction.
func (s *Server) advanceOne(st *sourceState, seq int) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.node == nil || st.node.Seq() >= seq {
		return false
	}
	// Batch advances move the stale-update rejection boundary, so they
	// are logged (after advancing, same lock) for exact replay; a log
	// failure here surfaces on the next ingest append.
	st.node.AdvanceTo(seq)
	st.version.Add(1)
	if s.db != nil && !s.db.replaying {
		_ = s.db.appendAdvance(st, seq)
	}
	return true
}

// StepAll advances every streaming source's prediction to reading index
// seq, fanning the per-stream filter steps over a bounded worker pool.
// This is the batch path for a central clock tick: instead of paying one
// Answer round-trip per stream, the server brings all filters forward in
// parallel. workers <= 0 uses GOMAXPROCS. It returns the number of
// sources whose prediction actually advanced; sources without a
// bootstrap yet, or already at or past seq, are skipped.
//
// Servers running the shard ingest engine should prefer AdvanceAll: this
// pool is detached from shard ownership, so its workers contend with the
// shard workers for the per-stream locks.
func (s *Server) StepAll(seq, workers int) int {
	start := nowNanos()
	defer func() { s.tel.stepAllNs.Observe(nowNanos() - start) }()
	s.mu.RLock()
	batch := make([]*sourceState, 0, len(s.sources))
	for _, st := range s.sources {
		batch = append(batch, st)
	}
	s.mu.RUnlock()
	if len(batch) == 0 {
		return 0
	}
	if workers <= 0 {
		workers = defaultWorkers()
	}
	if workers > len(batch) {
		workers = len(batch)
	}
	var advanced atomic.Int64
	work := make(chan *sourceState)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for st := range work {
				if s.advanceOne(st, seq) {
					advanced.Add(1)
				}
			}
		}()
	}
	for _, st := range batch {
		work <- st
	}
	close(work)
	wg.Wait()
	s.tel.stepAllAdvanced.Add(advanced.Load())
	return int(advanced.Load())
}

// SourceIDs returns the registered source ids, sorted.
func (s *Server) SourceIDs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.sources))
	for id := range s.sources {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Stats reports one source's ingest counters, filter position, and
// filter health — the per-stream record behind the /streamz endpoint
// (hence the JSON tags).
type Stats struct {
	SourceID string  `json:"source_id"`
	Queries  int     `json:"queries"`
	Model    string  `json:"model,omitempty"`
	Delta    float64 `json:"delta,omitempty"`

	Updates        int     `json:"updates"`
	Suppressed     int     `json:"suppressed"`
	SuppressionPct float64 `json:"suppression_pct"`
	Bytes          int     `json:"bytes"`
	Seq            int     `json:"seq"`

	NIS         float64 `json:"nis"`
	NISValid    bool    `json:"nis_valid"`
	Whiteness   float64 `json:"whiteness"`
	HealthReady bool    `json:"health_ready"`
	Healthy     bool    `json:"healthy"`

	// Durability status (meaningful when Durable): every update up to
	// Seq is in the write-ahead log, and CheckpointSeq is the last
	// update sequence captured by a checkpoint (-1 before the first).
	Durable       bool `json:"durable"`
	CheckpointSeq int  `json:"checkpoint_seq,omitempty"`

	// AckRTT summarizes the send-to-ack round trip for this source's
	// agent. Present only when the agent registered its instruments in
	// this server's registry (in-process transports); over TCP the
	// agent's registry lives in the source process.
	AckRTT *LatencySummary `json:"ack_rtt,omitempty"`
}

// LatencySummary is a compact quantile view of a latency histogram,
// resolved to the histogram's power-of-two bucket bounds.
type LatencySummary struct {
	Count int64 `json:"count"`
	P50Ns int64 `json:"p50_ns"`
	P99Ns int64 `json:"p99_ns"`
}

// summarize folds a histogram snapshot into a LatencySummary, or nil
// when nothing was observed.
func summarize(s telemetry.HistogramSnapshot) *LatencySummary {
	if s.Count == 0 {
		return nil
	}
	return &LatencySummary{Count: s.Count, P50Ns: s.Quantile(0.50), P99Ns: s.Quantile(0.99)}
}

// Stats returns per-source statistics, sorted by source id. The update
// and byte counts are read from the telemetry counters — the same
// values /metrics exports, so the two views cannot drift. Each source's
// node state is read under its runtime lock, so the snapshot of any one
// source is consistent (the set of sources is fixed under the topology
// read-lock, but sources keep streaming while others are read).
func (s *Server) Stats() []Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Stats, 0, len(s.sources))
	for id, st := range s.sources {
		stat := Stats{SourceID: id, Queries: len(st.queries), Model: st.cfg.Model.Name, Delta: st.cfg.Delta, Healthy: true, Durable: s.db != nil}
		st.mu.Lock()
		stat.CheckpointSeq = st.ckptSeq
		stat.Updates = int(st.ins.updates.Value())
		stat.Suppressed = int(st.ins.suppressed.Value())
		stat.Bytes = int(st.ins.bytes.Value())
		if st.node != nil {
			stat.Seq = st.node.Seq()
			h := st.node.Health()
			stat.NIS, stat.NISValid = h.NIS, h.NISValid
			stat.Whiteness, stat.HealthReady, stat.Healthy = h.Whiteness, h.Ready, h.Healthy
		}
		st.mu.Unlock()
		if total := stat.Updates + stat.Suppressed; total > 0 {
			stat.SuppressionPct = 100 * float64(stat.Suppressed) / float64(total)
		}
		if h, ok := s.tel.reg.HistogramFor("dkf_agent_ack_rtt_ns", telemetry.L("source", id)); ok {
			stat.AckRTT = summarize(h.Snapshot())
		}
		out = append(out, stat)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SourceID < out[j].SourceID })
	return out
}

// WALStreamz is the durability block of the /streamz status document.
type WALStreamz struct {
	Segments             int64   `json:"segments"`
	Checkpoints          int64   `json:"checkpoints"`
	CheckpointAgeSeconds float64 `json:"checkpoint_age_seconds"` // -1 before the first checkpoint
}

// Streamz is the full /streamz status document: server-wide latency
// summaries and durability state wrapped around the per-stream records.
type Streamz struct {
	Durable      bool            `json:"durable"`
	TraceEnabled bool            `json:"trace_enabled"`
	StepAll      *LatencySummary `json:"stepall_latency,omitempty"`
	WAL          *WALStreamz     `json:"wal,omitempty"`
	Engine       *EngineStreamz  `json:"engine,omitempty"`
	Cluster      *ClusterStreamz `json:"cluster,omitempty"`
	Streams      []Stats         `json:"streams"`
}

// Streamz assembles the status document the /streamz endpoint serves.
func (s *Server) Streamz() Streamz {
	z := Streamz{Durable: s.db != nil, TraceEnabled: s.TraceEnabled(), Streams: s.Stats()}
	z.StepAll = summarize(s.tel.stepAllNs.Snapshot())
	if s.db != nil {
		w := WALStreamz{CheckpointAgeSeconds: -1}
		if v, ok := s.tel.reg.Get("streamkf_wal_segments"); ok {
			w.Segments = int64(v)
		}
		if v, ok := s.tel.reg.Get("streamkf_wal_checkpoints_total"); ok {
			w.Checkpoints = int64(v)
		}
		if t := s.db.lastCkpt.Load(); t > 0 {
			w.CheckpointAgeSeconds = time.Since(time.Unix(0, t)).Seconds()
		}
		z.WAL = &w
	}
	z.Engine = s.engineStreamz()
	z.Cluster = s.clusterStreamz()
	return z
}

// StreamTrace is one stream's decision trail: its divergence audit plus
// the flight recorder's surviving events, oldest first — the
// /tracez/stream/{id} document.
type StreamTrace struct {
	Enabled  bool                `json:"enabled"`
	SourceID string              `json:"source_id"`
	Model    string              `json:"model,omitempty"`
	Delta    float64             `json:"delta,omitempty"`
	Audit    trace.AuditSnapshot `json:"audit"`
	Events   []trace.EventView   `json:"events"`
}

// TraceStream returns the decision trail for a source id or query id.
func (s *Server) TraceStream(id string) (StreamTrace, error) {
	s.mu.RLock()
	st := s.sources[id]
	if st == nil {
		st = s.byQuery[id]
	}
	var out StreamTrace
	if st != nil {
		out = StreamTrace{SourceID: st.id, Model: st.cfg.Model.Name, Delta: st.cfg.Delta}
	}
	s.mu.RUnlock()
	if st == nil {
		return StreamTrace{}, fmt.Errorf("dsms: unknown stream or query %s", id)
	}
	st.mu.Lock()
	rec := st.rec
	st.mu.Unlock()
	if rec == nil {
		return out, nil
	}
	out.Enabled = true
	out.Audit = rec.Audit().Snapshot()
	evs := rec.Events()
	out.Events = make([]trace.EventView, len(evs))
	for i := range evs {
		out.Events[i] = evs[i].View()
	}
	return out, nil
}

// TraceEntry is one trace event tagged with its stream — the /tracez
// cross-stream listing element.
type TraceEntry struct {
	SourceID string `json:"source_id"`
	trace.EventView
}

// TraceRecent returns up to limit recent trace events across all
// streams, newest first. source narrows to one stream; a nonzero kind
// or decision keeps only matching events.
func (s *Server) TraceRecent(limit int, source string, kind trace.Kind, dec trace.Decision) []TraceEntry {
	if limit <= 0 {
		limit = 100
	}
	type streamRec struct {
		id  string
		rec *trace.Recorder
	}
	s.mu.RLock()
	streams := make([]streamRec, 0, len(s.sources))
	for id, st := range s.sources {
		if source != "" && id != source {
			continue
		}
		st.mu.Lock()
		rec := st.rec
		st.mu.Unlock()
		if rec != nil {
			streams = append(streams, streamRec{id: id, rec: rec})
		}
	}
	s.mu.RUnlock()
	var out []TraceEntry
	for _, sr := range streams {
		for _, ev := range sr.rec.Events() {
			if kind != 0 && ev.Kind != kind {
				continue
			}
			if dec != trace.DecisionNone && ev.Dec != dec {
				continue
			}
			out = append(out, TraceEntry{SourceID: sr.id, EventView: ev.View()})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].AtUnixNs > out[j].AtUnixNs })
	if len(out) > limit {
		out = out[:limit]
	}
	return out
}

// Agent is the source-side runtime: it performs the install handshake,
// runs the DKF source node over a reading stream, and ships updates
// through a transport.
type Agent struct {
	sourceID string
	node     *core.SourceNode
	send     core.Transport
	ins      *AgentInstruments // optional; nil-safe record methods
}

// NewAgent builds an agent for sourceID from an installed configuration
// (obtained via Server.InstallFor or the TCP handshake) and a transport
// for updates.
func NewAgent(cfg core.Config, send core.Transport) (*Agent, error) {
	if send == nil {
		return nil, errors.New("dsms: nil transport")
	}
	node, err := core.NewSourceNode(cfg)
	if err != nil {
		return nil, err
	}
	return &Agent{sourceID: cfg.SourceID, node: node, send: send}, nil
}

// Instrument attaches telemetry to the agent. Call before streaming;
// a nil set (the default) records nothing.
func (a *Agent) Instrument(ins *AgentInstruments) { a.ins = ins }

// SetTrace attaches a flight recorder to the agent's source node. Call
// before streaming; a nil recorder (the default) records nothing and
// costs one nil check per reading.
func (a *Agent) SetTrace(tr *trace.Recorder) { a.node.SetTrace(tr) }

// LastDecision returns the evidence behind the node's most recent
// send/suppress decision — what the TCP transport ships ahead of a
// traced update frame.
func (a *Agent) LastDecision() trace.DecisionInfo { return a.node.LastDecision() }

// Offer processes one reading, transmitting if the protocol requires.
// It returns whether an update was sent.
func (a *Agent) Offer(r stream.Reading) (sent bool, err error) {
	u, _, err := a.node.Process(r)
	if err != nil {
		return false, err
	}
	if u == nil {
		a.ins.recordOffer(false, 0)
		return false, nil
	}
	a.ins.recordOffer(true, u.WireBytes())
	return true, a.send.Send(*u)
}

// Run drives an entire source stream through the agent.
func (a *Agent) Run(src stream.Source) error {
	for {
		r, ok := src.Next()
		if !ok {
			return nil
		}
		if _, err := a.Offer(r); err != nil {
			return err
		}
	}
}

// Stats exposes the underlying source node counters.
func (a *Agent) Stats() core.SourceStats { return a.node.Stats() }
