package dsms

import (
	"errors"
	"time"

	"streamkf/internal/core"
	"streamkf/internal/dsms/wire"
	"streamkf/internal/telemetry"
)

// epoch anchors monotonic timestamps for latency instruments: nowNanos
// is a single time.Since against it, so recording a timestamp never
// allocates and survives wall-clock adjustments.
var epoch = time.Now()

// nowNanos returns monotonic nanoseconds since process start.
func nowNanos() int64 { return int64(time.Since(epoch)) }

// numTags sizes the per-tag counter arrays: wire tags are 0x01..0x08,
// index 0 collects anything out of range.
const numTags = 9

// tagLabels names the per-tag label values, indexed by wire.Tag.
var tagLabels = [numTags]string{"other", "hello", "install", "update", "ack", "query", "answer", "error", "trace"}

// serverTelemetry bundles the server-wide instruments: the registry the
// admin endpoint scrapes, StepAll batch latency, and the wire-layer
// traffic and error taxonomy shared by every connection. Per-tag
// counters are pre-created arrays indexed by the tag byte, so the frame
// hooks are a bounds check and an atomic add — nothing on the ingest
// hot path allocates or locks.
type serverTelemetry struct {
	reg *telemetry.Registry

	stepAllNs       *telemetry.Histogram
	stepAllAdvanced *telemetry.Counter

	connsTotal  *telemetry.Counter
	connsActive *telemetry.Gauge

	rxFrames [numTags]*telemetry.Counter
	rxBytes  [numTags]*telemetry.Counter
	txFrames [numTags]*telemetry.Counter
	txBytes  [numTags]*telemetry.Counter

	errPeerClosed *telemetry.Counter
	errTruncated  *telemetry.Counter
	errOversize   *telemetry.Counter
	errMalformed  *telemetry.Counter
	errVersion    *telemetry.Counter
	errBadMagic   *telemetry.Counter
	errUnknownTag *telemetry.Counter
	errOther      *telemetry.Counter
}

func newServerTelemetry(reg *telemetry.Registry) *serverTelemetry {
	t := &serverTelemetry{reg: reg}
	t.stepAllNs = reg.Histogram("dkf_server_stepall_ns", "StepAll batch latency in nanoseconds.")
	t.stepAllAdvanced = reg.Counter("dkf_server_stepall_advanced_total", "Source filters advanced by StepAll batches.")
	t.connsTotal = reg.Counter("dkf_wire_connections_total", "TCP connections accepted.")
	t.connsActive = reg.Gauge("dkf_wire_connections_active", "TCP connections currently open.")
	for i, name := range tagLabels {
		tag := telemetry.L("tag", name)
		t.rxFrames[i] = reg.Counter("dkf_wire_rx_frames_total", "Frames received, by tag.", tag)
		t.rxBytes[i] = reg.Counter("dkf_wire_rx_bytes_total", "Bytes received in frames (length prefix included), by tag.", tag)
		t.txFrames[i] = reg.Counter("dkf_wire_tx_frames_total", "Frames sent, by tag.", tag)
		t.txBytes[i] = reg.Counter("dkf_wire_tx_bytes_total", "Bytes sent in frames (length prefix included), by tag.", tag)
	}
	const errHelp = "Wire protocol failures, by kind."
	t.errPeerClosed = reg.Counter("dkf_wire_errors_total", errHelp, telemetry.L("kind", "peer_closed"))
	t.errTruncated = reg.Counter("dkf_wire_errors_total", errHelp, telemetry.L("kind", "truncated"))
	t.errOversize = reg.Counter("dkf_wire_errors_total", errHelp, telemetry.L("kind", "oversize"))
	t.errMalformed = reg.Counter("dkf_wire_errors_total", errHelp, telemetry.L("kind", "malformed"))
	t.errVersion = reg.Counter("dkf_wire_errors_total", errHelp, telemetry.L("kind", "version"))
	t.errBadMagic = reg.Counter("dkf_wire_errors_total", errHelp, telemetry.L("kind", "bad_magic"))
	t.errUnknownTag = reg.Counter("dkf_wire_errors_total", errHelp, telemetry.L("kind", "unknown_tag"))
	t.errOther = reg.Counter("dkf_wire_errors_total", errHelp, telemetry.L("kind", "other"))
	return t
}

// rx and tx are the wire.Reader/Writer OnFrame hooks.
func (t *serverTelemetry) rx(tag wire.Tag, frameBytes int) {
	i := int(tag)
	if i >= numTags {
		i = 0
	}
	t.rxFrames[i].Inc()
	t.rxBytes[i].Add(int64(frameBytes))
}

func (t *serverTelemetry) tx(tag wire.Tag, frameBytes int) {
	i := int(tag)
	if i >= numTags {
		i = 0
	}
	t.txFrames[i].Inc()
	t.txBytes[i].Add(int64(frameBytes))
}

// countWireError buckets a connection failure into the error taxonomy.
func (t *serverTelemetry) countWireError(err error) {
	var fse *wire.FrameSizeError
	var ve *wire.VersionError
	switch {
	case errors.Is(err, core.ErrPeerClosed):
		t.errPeerClosed.Inc()
	case errors.Is(err, core.ErrTruncated):
		t.errTruncated.Inc()
	case errors.Is(err, wire.ErrBadMagic):
		t.errBadMagic.Inc()
	case errors.Is(err, wire.ErrMalformed):
		t.errMalformed.Inc()
	case errors.As(err, &fse):
		t.errOversize.Inc()
	case errors.As(err, &ve):
		t.errVersion.Inc()
	default:
		t.errOther.Inc()
	}
}

// sourceInstruments is the per-stream instrument set. The counters are
// the single source of truth for Server.Stats — there are no shadow
// ints to drift from what /metrics reports.
type sourceInstruments struct {
	updates    *telemetry.Counter
	suppressed *telemetry.Counter
	bytes      *telemetry.Counter
	seq        *telemetry.Gauge
	nis        *telemetry.Gauge
	whiteness  *telemetry.Gauge
	healthy    *telemetry.Gauge
}

// source creates (or re-fetches) the instruments for one source id.
func (t *serverTelemetry) source(id string) *sourceInstruments {
	src := telemetry.L("source", id)
	si := &sourceInstruments{
		updates:    t.reg.Counter("dkf_server_updates_total", "Updates folded into the server filter.", src),
		suppressed: t.reg.Counter("dkf_server_suppressed_total", "Source-suppressed steps, inferred from update sequence gaps.", src),
		bytes:      t.reg.Counter("dkf_server_recv_bytes_total", "Update payload bytes received (wire-cost model).", src),
		seq:        t.reg.Gauge("dkf_server_seq", "Latest reading index folded into the stream's filter.", src),
		nis:        t.reg.Gauge("dkf_stream_nis", "Normalized innovation squared of the latest update.", src),
		whiteness:  t.reg.Gauge("dkf_stream_whiteness", "Lag-1 autocorrelation of recent innovations (near 0 when healthy).", src),
		healthy:    t.reg.Gauge("dkf_stream_healthy", "1 while the innovation sequence is white; 0 flags a mis-modeled stream.", src),
	}
	// A stream is presumed healthy until a full whiteness window says
	// otherwise.
	si.healthy.Set(1)
	t.reg.GaugeFunc("dkf_server_suppression_ratio",
		"Fraction of source readings suppressed: suppressed / (updates + suppressed).",
		func() float64 {
			u := float64(si.updates.Value())
			sp := float64(si.suppressed.Value())
			if u+sp == 0 {
				return 0
			}
			return sp / (u + sp)
		}, src)
	return si
}

// observeHealth publishes a filter-health snapshot to the gauges.
func (si *sourceInstruments) observeHealth(h core.FilterHealth) {
	if h.NISValid {
		si.nis.Set(h.NIS)
	}
	si.whiteness.Set(h.Whiteness)
	si.healthy.SetBool(h.Healthy)
}

// AgentInstruments is the source-agent instrument set: the offer/send
// split that realizes the paper's update suppression, plus transport
// behavior (ack round-trips, window occupancy, drain latency) for the
// pipelined TCP path. All record methods are nil-receiver safe so
// agents without telemetry pay one branch.
type AgentInstruments struct {
	offers    *telemetry.Counter
	sends     *telemetry.Counter
	unsent    *telemetry.Counter
	sentBytes *telemetry.Counter
	ackRTTNs  *telemetry.Histogram
	drainNs   *telemetry.Histogram
	window    *telemetry.Gauge
}

// NewAgentInstruments registers the agent instrument set for sourceID.
func NewAgentInstruments(reg *telemetry.Registry, sourceID string) *AgentInstruments {
	src := telemetry.L("source", sourceID)
	ai := &AgentInstruments{
		offers:    reg.Counter("dkf_agent_offers_total", "Readings offered to the source node.", src),
		sends:     reg.Counter("dkf_agent_sends_total", "Updates transmitted to the server.", src),
		unsent:    reg.Counter("dkf_agent_suppressed_total", "Readings not transmitted (suppressed or outlier-rejected).", src),
		sentBytes: reg.Counter("dkf_agent_sent_bytes_total", "Update payload bytes transmitted (wire-cost model).", src),
		ackRTTNs:  reg.Histogram("dkf_agent_ack_rtt_ns", "Send-to-cumulative-ack round trip in nanoseconds.", src),
		drainNs:   reg.Histogram("dkf_agent_drain_ns", "Drain latency in nanoseconds (flush plus wait for all acks).", src),
		window:    reg.Gauge("dkf_agent_window_occupancy", "Unacknowledged updates currently in flight.", src),
	}
	reg.GaugeFunc("dkf_agent_send_ratio",
		"Fraction of offered readings actually transmitted: sends / offers.",
		func() float64 {
			o := float64(ai.offers.Value())
			if o == 0 {
				return 0
			}
			return float64(ai.sends.Value()) / o
		}, src)
	return ai
}

func (ai *AgentInstruments) recordOffer(sent bool, wireBytes int) {
	if ai == nil {
		return
	}
	ai.offers.Inc()
	if sent {
		ai.sends.Inc()
		ai.sentBytes.Add(int64(wireBytes))
	} else {
		ai.unsent.Inc()
	}
}

func (ai *AgentInstruments) observeAckRTT(ns int64) {
	if ai == nil {
		return
	}
	ai.ackRTTNs.Observe(ns)
}

func (ai *AgentInstruments) observeDrain(ns int64) {
	if ai == nil {
		return
	}
	ai.drainNs.Observe(ns)
}

func (ai *AgentInstruments) setWindow(n int) {
	if ai == nil {
		return
	}
	ai.window.SetInt(int64(n))
}
