package dsms

import (
	"errors"
	"runtime"
	"strconv"
	"sync"
	"time"

	"streamkf/internal/core"
	"streamkf/internal/dsms/engine"
	"streamkf/internal/dsms/wire"
	"streamkf/internal/telemetry"
)

// epoch anchors monotonic timestamps for latency instruments: nowNanos
// is a single time.Since against it, so recording a timestamp never
// allocates and survives wall-clock adjustments.
var epoch = time.Now()

// Version identifies the build in dkf_build_info and on /statusz.
// Overridden at link time: -ldflags "-X streamkf/internal/dsms.Version=v1.2.3".
var Version = "dev"

// nowNanos returns monotonic nanoseconds since process start.
func nowNanos() int64 { return int64(time.Since(epoch)) }

// numTags sizes the per-tag counter arrays: wire tags are 0x01..0x08
// plus the cluster tags 0x09..0x0f; index 0 collects anything out of
// range.
const numTags = 16

// tagLabels names the per-tag label values, indexed by wire.Tag.
var tagLabels = [numTags]string{
	"other", "hello", "install", "update", "ack", "query", "answer", "error", "trace",
	"forward", "forward_ack", "cluster_reg", "registered", "snapshot", "restore", "state_ack",
}

// serverTelemetry bundles the server-wide instruments: the registry the
// admin endpoint scrapes, StepAll batch latency, and the wire-layer
// traffic and error taxonomy shared by every connection. Per-tag
// counters are pre-created arrays indexed by the tag byte, so the frame
// hooks are a bounds check and an atomic add — nothing on the ingest
// hot path allocates or locks.
type serverTelemetry struct {
	reg *telemetry.Registry

	stepAllNs       *telemetry.Histogram
	stepAllAdvanced *telemetry.Counter

	connsTotal  *telemetry.Counter
	connsActive *telemetry.Gauge

	aggAnswers  *telemetry.Counter
	aggMemoHits *telemetry.Counter

	rxFrames [numTags]*telemetry.Counter
	rxBytes  [numTags]*telemetry.Counter
	txFrames [numTags]*telemetry.Counter
	txBytes  [numTags]*telemetry.Counter

	errPeerClosed *telemetry.Counter
	errTruncated  *telemetry.Counter
	errOversize   *telemetry.Counter
	errMalformed  *telemetry.Counter
	errVersion    *telemetry.Counter
	errBadMagic   *telemetry.Counter
	errUnknownTag *telemetry.Counter
	errOther      *telemetry.Counter

	// Per-source instrument cardinality cap: at 100k sources, seven
	// labeled series per source would swamp the registry and every
	// scrape. Sources past the limit share one overflow instrument set
	// (label source="_other") — aggregates stay correct, per-source
	// resolution degrades gracefully.
	srcMu       sync.Mutex
	srcCount    int
	srcLimit    int
	srcOverflow *sourceInstruments
}

// DefaultSourceMetricLimit caps how many sources get individually
// labeled metric series before falling back to the shared overflow set.
const DefaultSourceMetricLimit = 4096

func newServerTelemetry(reg *telemetry.Registry) *serverTelemetry {
	t := &serverTelemetry{reg: reg}
	// Build identity and uptime, so any scrape names the binary it came
	// from and restarts are visible as an uptime reset.
	reg.Gauge("dkf_build_info", "Build identity; the value is always 1.",
		telemetry.L("version", Version), telemetry.L("goversion", runtime.Version())).Set(1)
	reg.GaugeFunc("dkf_uptime_seconds", "Seconds since process start.",
		func() float64 { return time.Since(epoch).Seconds() })
	t.stepAllNs = reg.Histogram("dkf_server_stepall_ns", "StepAll batch latency in nanoseconds.")
	t.stepAllAdvanced = reg.Counter("dkf_server_stepall_advanced_total", "Source filters advanced by StepAll batches.")
	t.connsTotal = reg.Counter("dkf_wire_connections_total", "TCP connections accepted.")
	t.connsActive = reg.Gauge("dkf_wire_connections_active", "TCP connections currently open.")
	t.aggAnswers = reg.Counter("dkf_aggregate_answers_total", "Aggregate answers computed from member filters (memo misses).")
	t.aggMemoHits = reg.Counter("dkf_aggregate_memo_hits_total", "Aggregate answers served from the seq-stamped memo.")
	for i, name := range tagLabels {
		tag := telemetry.L("tag", name)
		t.rxFrames[i] = reg.Counter("dkf_wire_rx_frames_total", "Frames received, by tag.", tag)
		t.rxBytes[i] = reg.Counter("dkf_wire_rx_bytes_total", "Bytes received in frames (length prefix included), by tag.", tag)
		t.txFrames[i] = reg.Counter("dkf_wire_tx_frames_total", "Frames sent, by tag.", tag)
		t.txBytes[i] = reg.Counter("dkf_wire_tx_bytes_total", "Bytes sent in frames (length prefix included), by tag.", tag)
	}
	const errHelp = "Wire protocol failures, by kind."
	t.errPeerClosed = reg.Counter("dkf_wire_errors_total", errHelp, telemetry.L("kind", "peer_closed"))
	t.errTruncated = reg.Counter("dkf_wire_errors_total", errHelp, telemetry.L("kind", "truncated"))
	t.errOversize = reg.Counter("dkf_wire_errors_total", errHelp, telemetry.L("kind", "oversize"))
	t.errMalformed = reg.Counter("dkf_wire_errors_total", errHelp, telemetry.L("kind", "malformed"))
	t.errVersion = reg.Counter("dkf_wire_errors_total", errHelp, telemetry.L("kind", "version"))
	t.errBadMagic = reg.Counter("dkf_wire_errors_total", errHelp, telemetry.L("kind", "bad_magic"))
	t.errUnknownTag = reg.Counter("dkf_wire_errors_total", errHelp, telemetry.L("kind", "unknown_tag"))
	t.errOther = reg.Counter("dkf_wire_errors_total", errHelp, telemetry.L("kind", "other"))
	return t
}

// rx and tx are the wire.Reader/Writer OnFrame hooks.
func (t *serverTelemetry) rx(tag wire.Tag, frameBytes int) {
	i := int(tag)
	if i >= numTags {
		i = 0
	}
	t.rxFrames[i].Inc()
	t.rxBytes[i].Add(int64(frameBytes))
}

func (t *serverTelemetry) tx(tag wire.Tag, frameBytes int) {
	i := int(tag)
	if i >= numTags {
		i = 0
	}
	t.txFrames[i].Inc()
	t.txBytes[i].Add(int64(frameBytes))
}

// countWireError buckets a connection failure into the error taxonomy.
func (t *serverTelemetry) countWireError(err error) {
	var fse *wire.FrameSizeError
	var ve *wire.VersionError
	switch {
	case errors.Is(err, core.ErrPeerClosed):
		t.errPeerClosed.Inc()
	case errors.Is(err, core.ErrTruncated):
		t.errTruncated.Inc()
	case errors.Is(err, wire.ErrBadMagic):
		t.errBadMagic.Inc()
	case errors.Is(err, wire.ErrMalformed):
		t.errMalformed.Inc()
	case errors.As(err, &fse):
		t.errOversize.Inc()
	case errors.As(err, &ve):
		t.errVersion.Inc()
	default:
		t.errOther.Inc()
	}
}

// sourceInstruments is the per-stream instrument set. The counters are
// the single source of truth for Server.Stats — there are no shadow
// ints to drift from what /metrics reports.
type sourceInstruments struct {
	updates    *telemetry.Counter
	suppressed *telemetry.Counter
	bytes      *telemetry.Counter
	seq        *telemetry.Gauge
	nis        *telemetry.Gauge
}

// source creates (or re-fetches) the instruments for one source id,
// falling back to the shared overflow set past the cardinality cap.
// health is the scrape-time callback behind the whiteness gauges; it
// may be nil (the overflow set, whose sources cannot share one window).
func (t *serverTelemetry) source(id string, health func() core.FilterHealth) *sourceInstruments {
	t.srcMu.Lock()
	limit := t.srcLimit
	if limit == 0 {
		limit = DefaultSourceMetricLimit
	}
	if t.srcCount >= limit {
		if t.srcOverflow == nil {
			t.srcOverflow = t.newSourceInstruments("_other", nil)
		}
		ovf := t.srcOverflow
		t.srcMu.Unlock()
		return ovf
	}
	t.srcCount++
	t.srcMu.Unlock()
	return t.newSourceInstruments(id, health)
}

func (t *serverTelemetry) newSourceInstruments(id string, health func() core.FilterHealth) *sourceInstruments {
	src := telemetry.L("source", id)
	si := &sourceInstruments{
		updates:    t.reg.Counter("dkf_server_updates_total", "Updates folded into the server filter.", src),
		suppressed: t.reg.Counter("dkf_server_suppressed_total", "Source-suppressed steps, inferred from update sequence gaps.", src),
		bytes:      t.reg.Counter("dkf_server_recv_bytes_total", "Update payload bytes received (wire-cost model).", src),
		seq:        t.reg.Gauge("dkf_server_seq", "Latest reading index folded into the stream's filter.", src),
		nis:        t.reg.Gauge("dkf_stream_nis", "Normalized innovation squared of the latest update.", src),
	}
	// The whiteness diagnostics are gauge funcs evaluated at scrape time
	// rather than on every apply: the O(window) autocorrelation scan
	// leaves the ingest hot path, and a scrape still reads exactly the
	// value an eager update would have published (the window state is
	// the same at the moment of observation). A stream is presumed
	// healthy until a full window says otherwise; the overflow set
	// (health == nil) reports that resting state permanently, since the
	// streams sharing it cannot share one innovation window.
	if health == nil {
		health = func() core.FilterHealth { return core.FilterHealth{Healthy: true} }
	}
	t.reg.GaugeFunc("dkf_stream_whiteness",
		"Lag-1 autocorrelation of recent innovations (near 0 when healthy).",
		func() float64 { return health().Whiteness }, src)
	t.reg.GaugeFunc("dkf_stream_healthy",
		"1 while the innovation sequence is white; 0 flags a mis-modeled stream.",
		func() float64 {
			if health().Healthy {
				return 1
			}
			return 0
		}, src)
	t.reg.GaugeFunc("dkf_server_suppression_ratio",
		"Fraction of source readings suppressed: suppressed / (updates + suppressed).",
		func() float64 {
			u := float64(si.updates.Value())
			sp := float64(si.suppressed.Value())
			if u+sp == 0 {
				return 0
			}
			return sp / (u + sp)
		}, src)
	return si
}

// engineInstruments is the shard ingest engine and datagram transport
// instrument set: per-shard occupancy (applies, dedups, ring depth
// high-water mark, ring-full sheds) plus the datagram rx/drop taxonomy.
// Everything touched per update is a pre-created counter; ring stats
// are read from the engine at scrape time via gauge funcs.
type engineInstruments struct {
	shardApplied []*telemetry.Counter
	shardDedup   []*telemetry.Counter

	datagramsRx  *telemetry.Counter
	datagramsBad *telemetry.Counter
	framesRx     *telemetry.Counter
	preBootstrap *telemetry.Counter
	unknown      *telemetry.Counter
	rejected     *telemetry.Counter
	walErrors    *telemetry.Counter
}

func newEngineInstruments(reg *telemetry.Registry, e *engine.Engine) *engineInstruments {
	n := e.Shards()
	ei := &engineInstruments{
		shardApplied: make([]*telemetry.Counter, n),
		shardDedup:   make([]*telemetry.Counter, n),
	}
	for i := 0; i < n; i++ {
		sh := telemetry.L("shard", strconv.Itoa(i))
		ei.shardApplied[i] = reg.Counter("dkf_engine_applied_total", "Updates applied by the shard worker, by shard.", sh)
		ei.shardDedup[i] = reg.Counter("dkf_engine_dedup_total", "Duplicate updates (seq at or below last applied) dropped, by shard.", sh)
		i := i
		reg.GaugeFunc("dkf_engine_ring_depth_hwm", "High-water mark of SPSC ring occupancy, by shard.",
			func() float64 { return float64(e.Stats()[i].RingDepthHWM) }, sh)
		reg.GaugeFunc("dkf_engine_ring_dropped_total", "Updates shed because the shard's ring was full, by shard.",
			func() float64 { return float64(e.Stats()[i].Dropped) }, sh)
	}
	ei.datagramsRx = reg.Counter("dkf_udp_datagrams_rx_total", "UDP datagrams received.")
	ei.datagramsBad = reg.Counter("dkf_udp_datagrams_bad_total", "UDP datagrams rejected (bad preamble, malformed frame).")
	ei.framesRx = reg.Counter("dkf_udp_frames_rx_total", "Frames decoded from UDP datagrams.")
	ei.preBootstrap = reg.Counter("dkf_engine_pre_bootstrap_total", "Updates dropped because they arrived before their stream's bootstrap.")
	ei.unknown = reg.Counter("dkf_engine_unknown_source_total", "Updates dropped for unregistered or uninstallable sources.")
	ei.rejected = reg.Counter("dkf_engine_rejected_total", "Updates the filter apply rejected (stale, malformed).")
	ei.walErrors = reg.Counter("dkf_engine_wal_errors_total", "Shard batch WAL commits that failed.")
	return ei
}

// laneInstruments is one UDP reader lane's instrument set: how many
// datagrams the lane received and how many each receive syscall
// drained. A healthy batched receiver shows avg batch > 1 under load;
// pinned at 1 it is either idle, portable-fallback, or syscall-bound.
type laneInstruments struct {
	rx    *telemetry.Counter
	batch *telemetry.Histogram
}

// laneInstruments returns (creating on first sight) the instruments for
// one reader lane id.
func (s *Server) laneInstruments(lane int) *laneInstruments {
	s.laneMu.Lock()
	defer s.laneMu.Unlock()
	for len(s.laneIns) <= lane {
		s.laneIns = append(s.laneIns, nil)
	}
	if s.laneIns[lane] == nil {
		l := telemetry.L("lane", strconv.Itoa(lane))
		s.laneIns[lane] = &laneInstruments{
			rx:    s.tel.reg.Counter("dkf_udp_lane_datagrams_rx_total", "UDP datagrams received, by reader lane.", l),
			batch: s.tel.reg.Histogram("dkf_udp_lane_batch_size", "Datagrams drained per receive syscall, by reader lane.", l),
		}
	}
	return s.laneIns[lane]
}

// AgentInstruments is the source-agent instrument set: the offer/send
// split that realizes the paper's update suppression, plus transport
// behavior (ack round-trips, window occupancy, drain latency) for the
// pipelined TCP path. All record methods are nil-receiver safe so
// agents without telemetry pay one branch.
type AgentInstruments struct {
	offers    *telemetry.Counter
	sends     *telemetry.Counter
	unsent    *telemetry.Counter
	sentBytes *telemetry.Counter
	ackRTTNs  *telemetry.Histogram
	drainNs   *telemetry.Histogram
	window    *telemetry.Gauge
}

// NewAgentInstruments registers the agent instrument set for sourceID.
func NewAgentInstruments(reg *telemetry.Registry, sourceID string) *AgentInstruments {
	src := telemetry.L("source", sourceID)
	ai := &AgentInstruments{
		offers:    reg.Counter("dkf_agent_offers_total", "Readings offered to the source node.", src),
		sends:     reg.Counter("dkf_agent_sends_total", "Updates transmitted to the server.", src),
		unsent:    reg.Counter("dkf_agent_suppressed_total", "Readings not transmitted (suppressed or outlier-rejected).", src),
		sentBytes: reg.Counter("dkf_agent_sent_bytes_total", "Update payload bytes transmitted (wire-cost model).", src),
		ackRTTNs:  reg.Histogram("dkf_agent_ack_rtt_ns", "Send-to-cumulative-ack round trip in nanoseconds.", src),
		drainNs:   reg.Histogram("dkf_agent_drain_ns", "Drain latency in nanoseconds (flush plus wait for all acks).", src),
		window:    reg.Gauge("dkf_agent_window_occupancy", "Unacknowledged updates currently in flight.", src),
	}
	reg.GaugeFunc("dkf_agent_send_ratio",
		"Fraction of offered readings actually transmitted: sends / offers.",
		func() float64 {
			o := float64(ai.offers.Value())
			if o == 0 {
				return 0
			}
			return float64(ai.sends.Value()) / o
		}, src)
	return ai
}

func (ai *AgentInstruments) recordOffer(sent bool, wireBytes int) {
	if ai == nil {
		return
	}
	ai.offers.Inc()
	if sent {
		ai.sends.Inc()
		ai.sentBytes.Add(int64(wireBytes))
	} else {
		ai.unsent.Inc()
	}
}

func (ai *AgentInstruments) observeAckRTT(ns int64) {
	if ai == nil {
		return
	}
	ai.ackRTTNs.Observe(ns)
}

func (ai *AgentInstruments) observeDrain(ns int64) {
	if ai == nil {
		return
	}
	ai.drainNs.Observe(ns)
}

func (ai *AgentInstruments) setWindow(n int) {
	if ai == nil {
		return
	}
	ai.window.SetInt(int64(n))
}
