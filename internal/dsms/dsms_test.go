package dsms

import (
	"math"
	"strings"
	"testing"

	"streamkf/internal/core"
	"streamkf/internal/gen"
	"streamkf/internal/model"
	"streamkf/internal/stream"
)

func testCatalog() *Catalog { return DefaultCatalog(1) }

func TestCatalogResolve(t *testing.T) {
	c := testCatalog()
	for _, name := range []string{"constant", "linear", "acceleration", "jerk", "constant2d", "linear2d"} {
		if _, err := c.Resolve(name); err != nil {
			t.Errorf("Resolve(%q): %v", name, err)
		}
	}
	if _, err := c.Resolve("nope"); err == nil {
		t.Fatal("Resolve accepted unknown model")
	}
	names := c.Names()
	if len(names) != 6 || names[0] != "acceleration" {
		t.Fatalf("Names = %v", names)
	}
	custom := model.Constant(1, 0.1, 0.1)
	custom.Name = "mine"
	c.Register(custom)
	if _, err := c.Resolve("mine"); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterValidation(t *testing.T) {
	s := NewServer(testCatalog())
	if err := s.Register(stream.Query{ID: "", SourceID: "s", Delta: 1, Model: "linear"}); err == nil {
		t.Fatal("accepted invalid query")
	}
	if err := s.Register(stream.Query{ID: "q", SourceID: "s", Delta: 1, Model: "nope"}); err == nil {
		t.Fatal("accepted unknown model")
	}
	if err := s.Register(stream.Query{ID: "q", SourceID: "s", Delta: 1, Model: "linear"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Register(stream.Query{ID: "q", SourceID: "s", Delta: 2, Model: "linear"}); err == nil {
		t.Fatal("accepted duplicate query id")
	}
}

func TestMultiQueryMinDeltaSharing(t *testing.T) {
	s := NewServer(testCatalog())
	mustRegister(t, s, stream.Query{ID: "q1", SourceID: "s", Delta: 5, Model: "linear"})
	mustRegister(t, s, stream.Query{ID: "q2", SourceID: "s", Delta: 2, Model: "linear"})
	mustRegister(t, s, stream.Query{ID: "q3", SourceID: "s", Delta: 9, F: 1e-7, Model: "linear"})
	cfg, err := s.InstallFor("s")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Delta != 2 {
		t.Fatalf("effective delta = %v, want min 2", cfg.Delta)
	}
	if cfg.F != 1e-7 {
		t.Fatalf("effective F = %v, want 1e-7", cfg.F)
	}
	// Conflicting model on the same source is rejected.
	if err := s.Register(stream.Query{ID: "q4", SourceID: "s", Delta: 1, Model: "constant"}); err == nil {
		t.Fatal("accepted conflicting model")
	}
}

func TestInstallForUnknownSource(t *testing.T) {
	s := NewServer(testCatalog())
	if _, err := s.InstallFor("ghost"); err == nil {
		t.Fatal("installed for unregistered source")
	}
}

func TestRegisterAfterStreamingRejected(t *testing.T) {
	s := NewServer(testCatalog())
	mustRegister(t, s, stream.Query{ID: "q1", SourceID: "s", Delta: 2, Model: "linear"})
	if _, err := s.InstallFor("s"); err != nil {
		t.Fatal(err)
	}
	if err := s.Register(stream.Query{ID: "q2", SourceID: "s", Delta: 1, Model: "linear"}); err == nil {
		t.Fatal("accepted registration after install")
	}
}

func TestEndToEndInProcess(t *testing.T) {
	s := NewServer(testCatalog())
	mustRegister(t, s, stream.Query{ID: "q1", SourceID: "walk", Delta: 3, Model: "linear"})
	cfg, err := s.InstallFor("walk")
	if err != nil {
		t.Fatal(err)
	}
	agent, err := NewAgent(cfg, core.TransportFunc(func(u core.Update) error { return s.HandleUpdate(u) }))
	if err != nil {
		t.Fatal(err)
	}
	data := gen.Ramp(500, 0, 1.5, 0.05, 13)
	if err := agent.Run(stream.NewSliceSource(data)); err != nil {
		t.Fatal(err)
	}
	// Query answer at the final seq must be within delta-ish of truth.
	ans, err := s.Answer("q1", data[len(data)-1].Seq)
	if err != nil {
		t.Fatal(err)
	}
	truth := data[len(data)-1].Values[0]
	if math.Abs(ans[0]-truth) > 2*3 {
		t.Fatalf("answer %v, truth %v: outside tolerance", ans[0], truth)
	}
	// Suppression happened.
	st := agent.Stats()
	if st.Updates >= st.Readings/2 {
		t.Fatalf("agent sent %d/%d updates; no suppression", st.Updates, st.Readings)
	}
	stats := s.Stats()
	if len(stats) != 1 || stats[0].Updates != st.Updates {
		t.Fatalf("server stats %+v do not match agent %+v", stats, st)
	}
	if ids := s.SourceIDs(); len(ids) != 1 || ids[0] != "walk" {
		t.Fatalf("SourceIDs = %v", ids)
	}
}

func TestAnswerErrors(t *testing.T) {
	s := NewServer(testCatalog())
	mustRegister(t, s, stream.Query{ID: "q1", SourceID: "s", Delta: 1, Model: "constant"})
	if _, err := s.Answer("missing", 0); err == nil {
		t.Fatal("answered unknown query")
	}
	if _, err := s.Answer("q1", 0); err == nil {
		t.Fatal("answered before source streaming")
	}
	if _, err := s.InstallFor("s"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Answer("q1", 0); err == nil {
		t.Fatal("answered before bootstrap")
	}
}

func TestHandleUpdateUninstalled(t *testing.T) {
	s := NewServer(testCatalog())
	err := s.HandleUpdate(core.Update{SourceID: "ghost", Seq: 0, Values: []float64{1}, Bootstrap: true})
	if err == nil || !strings.Contains(err.Error(), "uninstalled") {
		t.Fatalf("err = %v, want uninstalled-source error", err)
	}
}

func TestNewAgentNilTransport(t *testing.T) {
	cfg := core.Config{SourceID: "s", Model: model.Constant(1, 0.1, 0.1), Delta: 1}
	if _, err := NewAgent(cfg, nil); err == nil {
		t.Fatal("accepted nil transport")
	}
}

func TestQueryAnswerFutureSeqExtrapolates(t *testing.T) {
	// The DKF selling point: asking about a future step extrapolates the
	// model rather than returning the stale cached value.
	s := NewServer(testCatalog())
	mustRegister(t, s, stream.Query{ID: "q1", SourceID: "r", Delta: 2, Model: "linear"})
	cfg, err := s.InstallFor("r")
	if err != nil {
		t.Fatal(err)
	}
	agent, err := NewAgent(cfg, core.TransportFunc(func(u core.Update) error { return s.HandleUpdate(u) }))
	if err != nil {
		t.Fatal(err)
	}
	data := gen.Ramp(200, 0, 3, 0, 3)
	if err := agent.Run(stream.NewSliceSource(data)); err != nil {
		t.Fatal(err)
	}
	ahead := 220
	ans, err := s.Answer("q1", ahead)
	if err != nil {
		t.Fatal(err)
	}
	want := 3 * float64(ahead)
	if math.Abs(ans[0]-want) > 10 {
		t.Fatalf("extrapolated answer %v, want ~%v", ans[0], want)
	}
}

func mustRegister(t *testing.T, s *Server, q stream.Query) {
	t.Helper()
	if err := s.Register(q); err != nil {
		t.Fatal(err)
	}
}
