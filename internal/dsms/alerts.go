package dsms

import (
	"fmt"
	"sort"
	"sync"
)

// AlertDirection says which crossing fires an alert.
type AlertDirection int

const (
	// AlertAbove fires when the value rises above the threshold.
	AlertAbove AlertDirection = iota
	// AlertBelow fires when the value falls below the threshold.
	AlertBelow
)

// Alert is a continuous threshold predicate over a registered query
// (value or aggregate): "tell me when the answer crosses T". Because the
// server answers from its prediction, the alert reacts to every update
// without the sources knowing the predicate exists — the same filters
// serve both query shapes, the paper's "building block" argument.
//
// Hysteresis suppresses flapping: after firing, the alert re-arms only
// once the value retreats past Threshold ∓ Hysteresis. Picking
// Hysteresis ≥ the query's δ guarantees prediction error alone can never
// re-fire an armed alert.
type Alert struct {
	// ID names the alert.
	ID string
	// QueryID is the registered (value or aggregate) query to watch.
	// Value queries must be single-attribute.
	QueryID string
	// Threshold is the crossing level.
	Threshold float64
	// Direction selects which crossing fires.
	Direction AlertDirection
	// Hysteresis is the re-arm band width (>= 0).
	Hysteresis float64
}

// Validate checks the alert definition.
func (a Alert) Validate() error {
	if a.ID == "" {
		return fmt.Errorf("dsms: alert ID is empty")
	}
	if a.QueryID == "" {
		return fmt.Errorf("dsms: alert %s has empty query id", a.ID)
	}
	if a.Direction != AlertAbove && a.Direction != AlertBelow {
		return fmt.Errorf("dsms: alert %s has unknown direction %d", a.ID, a.Direction)
	}
	if a.Hysteresis < 0 {
		return fmt.Errorf("dsms: alert %s has negative hysteresis %v", a.ID, a.Hysteresis)
	}
	return nil
}

// AlertEvent is delivered to the alert's callback when it fires.
type AlertEvent struct {
	AlertID string
	QueryID string
	Seq     int
	Value   float64
}

// alertState tracks one registered alert.
type alertState struct {
	cfg   Alert
	fn    func(AlertEvent)
	fired bool
}

// alertBook is the server's alert registry.
type alertBook struct {
	mu     sync.Mutex
	alerts map[string]*alertState
	// bySource maps a source id to the alert ids that may be affected
	// when that source updates.
	bySource map[string][]string
}

// RegisterAlert installs a threshold alert over an existing query. The
// callback runs synchronously on the update path; keep it short.
func (s *Server) RegisterAlert(a Alert, fn func(AlertEvent)) error {
	if err := a.Validate(); err != nil {
		return err
	}
	if fn == nil {
		return fmt.Errorf("dsms: alert %s has nil callback", a.ID)
	}
	sources, err := s.querySources(a.QueryID)
	if err != nil {
		return err
	}
	s.alertMu.Lock()
	defer s.alertMu.Unlock()
	if s.alerts == nil {
		s.alerts = make(map[string]*alertState)
		s.alertsBySource = make(map[string][]string)
	}
	if _, dup := s.alerts[a.ID]; dup {
		return fmt.Errorf("dsms: duplicate alert id %s", a.ID)
	}
	s.alerts[a.ID] = &alertState{cfg: a, fn: fn}
	s.alertCount.Add(1)
	for _, src := range sources {
		s.alertsBySource[src] = append(s.alertsBySource[src], a.ID)
	}
	return nil
}

// AlertIDs returns the registered alert ids, sorted.
func (s *Server) AlertIDs() []string {
	s.alertMu.Lock()
	defer s.alertMu.Unlock()
	out := make([]string, 0, len(s.alerts))
	for id := range s.alerts {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// querySources resolves which sources feed a (value or aggregate) query.
func (s *Server) querySources(queryID string) ([]string, error) {
	s.aggMu.Lock()
	if q, ok := s.aggregate[queryID]; ok {
		s.aggMu.Unlock()
		return q.SourceIDs, nil
	}
	s.aggMu.Unlock()
	s.mu.RLock()
	defer s.mu.RUnlock()
	for srcID, st := range s.sources {
		for _, q := range st.queries {
			if q.ID == queryID {
				return []string{srcID}, nil
			}
		}
	}
	return nil, fmt.Errorf("dsms: alert references unknown query %s", queryID)
}

// checkAlerts evaluates every alert touched by an update from sourceID
// at the given sequence number. Called after HandleUpdate releases the
// server lock.
func (s *Server) checkAlerts(sourceID string, seq int) {
	if s.alertCount.Load() == 0 {
		// No alerts anywhere: skip the lock and map probe. This runs
		// once per applied update (or per same-source run on the engine
		// path), so the empty case must cost one atomic load.
		return
	}
	s.alertMu.Lock()
	ids := append([]string(nil), s.alertsBySource[sourceID]...)
	s.alertMu.Unlock()
	for _, id := range ids {
		s.evalAlert(id, seq)
	}
}

func (s *Server) evalAlert(alertID string, seq int) {
	s.alertMu.Lock()
	st, ok := s.alerts[alertID]
	s.alertMu.Unlock()
	if !ok {
		return
	}
	value, err := s.queryValue(st.cfg.QueryID, seq)
	if err != nil {
		return // sources not all streaming yet; nothing to evaluate
	}

	a := st.cfg
	inZone := value > a.Threshold
	if a.Direction == AlertBelow {
		inZone = value < a.Threshold
	}
	rearm := a.Threshold - a.Hysteresis
	if a.Direction == AlertBelow {
		rearm = a.Threshold + a.Hysteresis
	}

	s.alertMu.Lock()
	fire := false
	switch {
	case inZone && !st.fired:
		st.fired = true
		fire = true
	case st.fired:
		// Re-arm only once the value retreats past the hysteresis band.
		if (a.Direction == AlertAbove && value < rearm) ||
			(a.Direction == AlertBelow && value > rearm) {
			st.fired = false
		}
	}
	fn := st.fn
	s.alertMu.Unlock()

	if fire {
		fn(AlertEvent{AlertID: a.ID, QueryID: a.QueryID, Seq: seq, Value: value})
	}
}

// queryValue answers a value or aggregate query as a scalar.
func (s *Server) queryValue(queryID string, seq int) (float64, error) {
	if vals, err := s.Answer(queryID, seq); err == nil {
		if len(vals) != 1 {
			return 0, fmt.Errorf("dsms: alert query %s is not single-attribute", queryID)
		}
		return vals[0], nil
	}
	return s.AnswerAggregate(queryID, seq)
}
