package dsms

import (
	"math"
	"testing"

	"streamkf/internal/core"
	"streamkf/internal/gen"
	"streamkf/internal/stream"
)

func TestAggregateQueryValidate(t *testing.T) {
	good := AggregateQuery{ID: "a", SourceIDs: []string{"s1", "s2"}, Func: AggAvg, Delta: 10, Model: "linear"}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid aggregate rejected: %v", err)
	}
	bad := []AggregateQuery{
		{SourceIDs: []string{"s"}, Func: AggAvg, Delta: 1},
		{ID: "a", Func: AggAvg, Delta: 1},
		{ID: "a", SourceIDs: []string{""}, Func: AggAvg, Delta: 1},
		{ID: "a", SourceIDs: []string{"s", "s"}, Func: AggAvg, Delta: 1},
		{ID: "a", SourceIDs: []string{"s"}, Func: "median", Delta: 1},
		{ID: "a", SourceIDs: []string{"s"}, Func: AggAvg, Delta: 0},
		{ID: "a", SourceIDs: []string{"s"}, Func: AggAvg, Delta: 1, F: -1},
	}
	for i, q := range bad {
		if err := q.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, q)
		}
	}
}

func TestPerSourceDeltaAllocation(t *testing.T) {
	q := AggregateQuery{ID: "a", SourceIDs: []string{"x", "y", "z", "w"}, Delta: 8}
	q.Func = AggSum
	if got := q.PerSourceDelta(); got != 2 {
		t.Fatalf("sum allocation = %v, want Δ/t = 2", got)
	}
	for _, f := range []AggFunc{AggAvg, AggMin, AggMax} {
		q.Func = f
		if got := q.PerSourceDelta(); got != 8 {
			t.Fatalf("%s allocation = %v, want Δ = 8", f, got)
		}
	}
}

func TestEvaluate(t *testing.T) {
	vals := []float64{3, -1, 7}
	cases := map[AggFunc]float64{AggSum: 9, AggAvg: 3, AggMin: -1, AggMax: 7}
	for f, want := range cases {
		q := AggregateQuery{Func: f}
		if got := q.Evaluate(vals); got != want {
			t.Errorf("%s = %v, want %v", f, got, want)
		}
	}
}

// runAggregate registers an aggregate over n ramps and streams them all,
// returning the server and the datasets.
func runAggregate(t *testing.T, q AggregateQuery, slopes []float64) (*Server, map[string][]stream.Reading) {
	t.Helper()
	s := NewServer(testCatalog())
	if err := s.RegisterAggregate(q); err != nil {
		t.Fatal(err)
	}
	data := make(map[string][]stream.Reading, len(q.SourceIDs))
	for i, src := range q.SourceIDs {
		data[src] = gen.Ramp(200, float64(i)*10, slopes[i], 0.02, int64(i+1))
	}
	for _, src := range q.SourceIDs {
		cfg, err := s.InstallFor(src)
		if err != nil {
			t.Fatal(err)
		}
		agent, err := NewAgent(cfg, core.TransportFunc(func(u core.Update) error { return s.HandleUpdate(u) }))
		if err != nil {
			t.Fatal(err)
		}
		if err := agent.Run(stream.NewSliceSource(data[src])); err != nil {
			t.Fatal(err)
		}
	}
	return s, data
}

func TestAggregateEndToEnd(t *testing.T) {
	for _, fn := range []AggFunc{AggAvg, AggSum, AggMin, AggMax} {
		q := AggregateQuery{
			ID:        "agg-" + string(fn),
			SourceIDs: []string{"a", "b", "c"},
			Func:      fn,
			Delta:     6,
			Model:     "linear",
		}
		s, data := runAggregate(t, q, []float64{1, 2, 3})
		got, err := s.AnswerAggregate(q.ID, 199)
		if err != nil {
			t.Fatalf("%s: %v", fn, err)
		}
		truths := make([]float64, 0, 3)
		for _, src := range q.SourceIDs {
			truths = append(truths, data[src][199].Values[0])
		}
		want := q.Evaluate(truths)
		// Per-source answers are within ~2δ_i of the truth (correction
		// residual slack), so allow 2Δ for the aggregate.
		if math.Abs(got-want) > 2*q.Delta {
			t.Fatalf("%s aggregate = %v, truth %v, outside 2Δ", fn, got, want)
		}
	}
}

func TestAggregateInstalledDeltaIsAllocated(t *testing.T) {
	s := NewServer(testCatalog())
	q := AggregateQuery{ID: "sum", SourceIDs: []string{"a", "b", "c", "d"}, Func: AggSum, Delta: 8, Model: "constant"}
	if err := s.RegisterAggregate(q); err != nil {
		t.Fatal(err)
	}
	cfg, err := s.InstallFor("a")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Delta != 2 {
		t.Fatalf("installed per-source delta = %v, want 2", cfg.Delta)
	}
}

func TestAggregateDuplicateAndRollback(t *testing.T) {
	s := NewServer(testCatalog())
	q := AggregateQuery{ID: "a", SourceIDs: []string{"x"}, Func: AggAvg, Delta: 5, Model: "linear"}
	if err := s.RegisterAggregate(q); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterAggregate(q); err == nil {
		t.Fatal("duplicate aggregate accepted")
	}
	// Unknown model must fail and roll back all sub-queries.
	bad := AggregateQuery{ID: "b", SourceIDs: []string{"y", "z"}, Func: AggAvg, Delta: 5, Model: "nope"}
	if err := s.RegisterAggregate(bad); err == nil {
		t.Fatal("aggregate with unknown model accepted")
	}
	if _, err := s.InstallFor("y"); err == nil {
		t.Fatal("rollback left a sub-query behind for y")
	}
	if got := s.AggregateIDs(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("AggregateIDs = %v", got)
	}
}

func TestAnswerAggregateErrors(t *testing.T) {
	s := NewServer(testCatalog())
	if _, err := s.AnswerAggregate("ghost", 0); err == nil {
		t.Fatal("answered unknown aggregate")
	}
	q := AggregateQuery{ID: "a", SourceIDs: []string{"x"}, Func: AggAvg, Delta: 5, Model: "linear"}
	if err := s.RegisterAggregate(q); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AnswerAggregate("a", 0); err == nil {
		t.Fatal("answered before sources streamed")
	}
}

func TestAggregateOverTCP(t *testing.T) {
	catalog := testCatalog()
	s := NewServer(catalog)
	q := AggregateQuery{ID: "meanload", SourceIDs: []string{"z1", "z2"}, Func: AggAvg, Delta: 4, Model: "linear"}
	if err := s.RegisterAggregate(q); err != nil {
		t.Fatal(err)
	}
	ts := startServer(t, s)
	for i, src := range q.SourceIDs {
		agent, err := DialSource(ts.Addr(), src, catalog)
		if err != nil {
			t.Fatal(err)
		}
		if err := agent.Run(stream.NewSliceSource(gen.Ramp(100, float64(i*100), 1, 0.01, int64(i+9)))); err != nil {
			t.Fatal(err)
		}
		agent.Close()
	}
	qc, err := DialQuery(ts.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer qc.Close()
	ans, err := qc.Ask("meanload", 99)
	if err != nil {
		t.Fatal(err)
	}
	want := (99.0 + (100 + 99)) / 2 // mean of the two ramp endpoints
	if math.Abs(ans[0]-want) > 8 {
		t.Fatalf("TCP aggregate = %v, want ~%v", ans[0], want)
	}
}

// TestAnswerAggregateMemo pins the memo contract: a repeated point
// read of an unchanged aggregate is served from the seq-stamped memo
// (O(1), allocation-free) instead of re-advancing and re-evaluating
// every member, and any member mutation or seq change invalidates it.
func TestAnswerAggregateMemo(t *testing.T) {
	q := AggregateQuery{ID: "memo", SourceIDs: []string{"a", "b", "c"}, Func: AggSum, Delta: 6, Model: "linear"}
	s, data := runAggregate(t, q, []float64{1, 2, 3})

	hits := func() int64 { return s.tel.aggMemoHits.Value() }
	misses := func() int64 { return s.tel.aggAnswers.Value() }

	first, err := s.AnswerAggregate(q.ID, 150)
	if err != nil {
		t.Fatal(err)
	}
	h0, m0 := hits(), misses()
	if m0 == 0 {
		t.Fatal("first read did not count as a computed answer")
	}

	// Repeated reads at the same seq: all memo hits, bit-identical.
	for i := 0; i < 10; i++ {
		again, err := s.AnswerAggregate(q.ID, 150)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(again) != math.Float64bits(first) {
			t.Fatalf("memoized read %v differs from computed %v", again, first)
		}
	}
	if got := hits() - h0; got != 10 {
		t.Fatalf("10 repeated reads produced %d memo hits", got)
	}
	if got := misses() - m0; got != 0 {
		t.Fatalf("repeated reads recomputed %d times", got)
	}

	// The hit path does no allocation — the O(1) claim in practice.
	if allocs := testing.AllocsPerRun(50, func() {
		if _, err := s.AnswerAggregate(q.ID, 150); err != nil {
			t.Fatal(err)
		}
	}); allocs > 0 {
		t.Fatalf("memoized AnswerAggregate allocates %.1f per read, want 0", allocs)
	}

	// A different seq is a recompute.
	h1, m1 := hits(), misses()
	if _, err := s.AnswerAggregate(q.ID, 180); err != nil {
		t.Fatal(err)
	}
	if hits() != h1 || misses() != m1+1 {
		t.Fatal("read at a new seq was not recomputed")
	}

	// A member mutation (one applied update) invalidates the memo even
	// at the same seq.
	upd := core.Update{SourceID: "a", Seq: 199, Time: data["a"][199].Time, Values: []float64{1234.5}}
	if err := s.HandleUpdate(upd); err != nil {
		t.Fatal(err)
	}
	h2, m2 := hits(), misses()
	if _, err := s.AnswerAggregate(q.ID, 180); err != nil {
		t.Fatal(err)
	}
	if hits() != h2 || misses() != m2+1 {
		t.Fatal("member mutation did not invalidate the memo")
	}
}
