package cluster

import (
	"runtime"
	"strconv"
	"time"

	"streamkf/internal/dsms"
	"streamkf/internal/telemetry"
)

// Router telemetry. Counters and histograms are per-shard where the
// shard dimension matters for capacity decisions: forwards and forward
// latency tell the operator which shard is hot, the connection gauges
// whether the router has lost an upstream.

// telEpoch anchors the monotonic clock used for forward-latency
// stamps; only differences are ever observed.
var telEpoch = time.Now()

func nowNanos() int64 { return int64(time.Since(telEpoch)) }

type routerTelemetry struct {
	reg *telemetry.Registry

	// Indexed by shard.
	forwarded  []*telemetry.Counter
	fwdLatency []*telemetry.Histogram

	upstreamConns *telemetry.Gauge
	downConns     *telemetry.Gauge
	helloTotal    *telemetry.Counter
	aggAnswers    *telemetry.Counter
	aggSuppressed *telemetry.Counter
	migrations    *telemetry.Counter
	reconnects    *telemetry.Counter

	// Per-hop latency attribution for traced forwards: stage="router"
	// is trace-frame receipt to forward write (time spent inside the
	// router), stage="shard" is forward write to shard ack (wire +
	// shard apply). Observed in nanoseconds, exposed in seconds.
	hopRouter *telemetry.Histogram
	hopShard  *telemetry.Histogram
}

func newRouterTelemetry(reg *telemetry.Registry, shards int) *routerTelemetry {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	t := &routerTelemetry{
		reg:        reg,
		forwarded:  make([]*telemetry.Counter, shards),
		fwdLatency: make([]*telemetry.Histogram, shards),
	}
	// Build identity and uptime, matching the server's admin surface so
	// a fleet scrape names every binary uniformly.
	reg.Gauge("dkf_build_info", "Build identity; the value is always 1.",
		telemetry.L("version", dsms.Version), telemetry.L("goversion", runtime.Version())).Set(1)
	reg.GaugeFunc("dkf_uptime_seconds", "Seconds since process start.",
		func() float64 { return time.Since(telEpoch).Seconds() })
	for i := 0; i < shards; i++ {
		lbl := telemetry.L("shard", strconv.Itoa(i))
		t.forwarded[i] = reg.Counter("dkf_router_forwarded_total",
			"Updates forwarded to the owning shard.", lbl)
		t.fwdLatency[i] = reg.Histogram("dkf_router_forward_latency_nanos",
			"Forward round-trip: update written upstream to shard ack received.", lbl)
	}
	t.upstreamConns = reg.Gauge("dkf_router_upstream_conns",
		"Live upstream shard connections.")
	t.downConns = reg.Gauge("dkf_router_downstream_conns",
		"Live downstream source connections.")
	t.helloTotal = reg.Counter("dkf_router_hello_total",
		"Source hello handshakes relayed to shards.")
	t.aggAnswers = reg.Counter("dkf_router_aggregate_answers_total",
		"Cross-shard aggregate answers merged from shard partials.")
	t.aggSuppressed = reg.Counter("dkf_router_aggregate_suppressed_total",
		"Aggregate answers served from the cached merged value (outbound re-suppression).")
	t.migrations = reg.Counter("dkf_router_migrations_total",
		"Stream migrations completed.")
	t.reconnects = reg.Counter("dkf_router_upstream_reconnects_total",
		"Upstream shard reconnects completed.")
	const hopHelp = "Per-hop latency of traced forwards, by stage (router: trace rx to forward tx; shard: forward tx to ack)."
	t.hopRouter = reg.HistogramScale("dkf_router_hop_latency_seconds", hopHelp, 1e9,
		telemetry.L("stage", "router"))
	t.hopShard = reg.HistogramScale("dkf_router_hop_latency_seconds", hopHelp, 1e9,
		telemetry.L("stage", "shard"))
	return t
}
